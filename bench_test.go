package clof_test

// One testing.B benchmark per table and figure of the paper's evaluation
// (the per-experiment index in DESIGN.md §4). Each bench regenerates its
// experiment on the NUMA simulator at reduced (Quick) scale so that
// `go test -bench=. -benchmem` finishes in minutes; cmd/clof-figures runs
// the full-scale versions. Key results are attached via b.ReportMetric
// (unit suffixes name the series), so the bench output doubles as a compact
// paper-vs-measured record.

import (
	"strings"
	"sync"
	"testing"

	clof "github.com/clof-go/clof"
	"github.com/clof-go/clof/internal/figures"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/topo"
	"github.com/clof-go/clof/internal/workload"
)

var quick = figures.Options{Quick: true}

// BenchmarkFig1Heatmap regenerates the §3.1 pairwise ping-pong heatmaps.
func BenchmarkFig1Heatmap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		x86, arm := figures.Fig1(quick)
		b.ReportMetric(x86.Tput[0][1], "x86-near-pair-inc/us")
		b.ReportMetric(arm.Tput[0][1], "arm-near-pair-inc/us")
	}
}

// BenchmarkTable2Speedups regenerates the cohort-speedup table.
func BenchmarkTable2Speedups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := figures.Table2(quick)
		if s, ok := f.Get("x86-measured"); ok {
			b.ReportMetric(s.At(int(topo.Core)), "x86-core-speedup")
			b.ReportMetric(s.At(int(topo.CacheGroup)), "x86-group-speedup")
		}
		if s, ok := f.Get("armv8-measured"); ok {
			b.ReportMetric(s.At(int(topo.CacheGroup)), "arm-group-speedup")
		}
	}
}

// BenchmarkFig2HMCSLevels regenerates the x86 HMCS⟨2/3/4⟩ vs CLoF⟨4⟩ curves.
func BenchmarkFig2HMCSLevels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := figures.Fig2(quick)
		report(b, f, "hmcs<2>", 95)
		report(b, f, "hmcs<4>", 95)
		report(b, f, "clof<4>-x86", 95)
	}
}

// BenchmarkFig3CohortLocks regenerates the per-cohort basic-lock comparison.
func BenchmarkFig3CohortLocks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs := figures.Fig3(quick)
		for _, f := range figs {
			if s, ok := f.Get("hem-ctr"); ok {
				b.ReportMetric(s.At(int(topo.NUMA)), strings.TrimPrefix(f.ID, "fig3-")+"-hemctr-numa-iter/us")
			}
		}
	}
}

// BenchmarkFig4ArmStateOfArt regenerates the Armv8 state-of-the-art curves.
func BenchmarkFig4ArmStateOfArt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := figures.Fig4(quick)
		report(b, f, "clof<4>-arm", 127)
		report(b, f, "hmcs<4>", 127)
		report(b, f, "cna", 127)
	}
}

// BenchmarkFig9Compositions runs one composition sweep (Armv8, 3-level) with
// both selection policies — the scripted benchmark of §4.3.
func BenchmarkFig9Compositions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := figures.Fig9Panel(figures.Arm(), 3, quick)
		b.ReportMetric(res.Selection.HCBest.Score(clof.HighContention), "hc-best-score")
		b.ReportMetric(res.Selection.LCBest.Score(clof.LowContention), "lc-best-score")
	}
}

// BenchmarkFig10BestLocks regenerates the LevelDB+Kyoto cross-validation.
func BenchmarkFig10BestLocks(b *testing.B) {
	o := quick
	o.Runs = 1
	for i := 0; i < b.N; i++ {
		figs := figures.Fig10(o)
		for _, f := range figs {
			if !strings.Contains(f.ID, "leveldb-armv8") {
				continue
			}
			report(b, f, "clof<4>-arm", 127)
			report(b, f, "cna", 127)
		}
	}
}

// BenchmarkFairness regenerates the §5.2.3 Jain-index comparison.
func BenchmarkFairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := figures.Fairness(quick)
		if s, ok := f.Get("clof<4>-armv8"); ok && len(s.Y) > 0 {
			b.ReportMetric(s.Y[len(s.Y)-1], "clof-jain")
		}
		if s, ok := f.Get("hmcs<4>-armv8"); ok && len(s.Y) > 0 {
			b.ReportMetric(s.Y[len(s.Y)-1], "hmcs-jain")
		}
	}
}

// BenchmarkAblationKeepLocal sweeps the keep_local threshold H.
func BenchmarkAblationKeepLocal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := figures.AblationKeepLocal(quick)
		if s, ok := f.Get("throughput"); ok {
			b.ReportMetric(s.At(1), "H1-iter/us")
			b.ReportMetric(s.At(128), "H128-iter/us")
		}
	}
}

// BenchmarkAblationHasWaiters compares custom has_waiters vs the counter.
func BenchmarkAblationHasWaiters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := figures.AblationHasWaiters(quick)
		if s, ok := f.Get("custom-detector"); ok {
			b.ReportMetric(s.At(95), "custom-iter/us")
		}
		if s, ok := f.Get("waiters-counter"); ok {
			b.ReportMetric(s.At(95), "counter-iter/us")
		}
	}
}

// BenchmarkAblationFastPath measures the §6 TAS fast-path extension.
func BenchmarkAblationFastPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := figures.AblationFastPath(quick)
		if s, ok := f.Get("plain"); ok {
			b.ReportMetric(s.At(1), "plain-1t-iter/us")
		}
		if s, ok := f.Get("tas-fastpath"); ok {
			b.ReportMetric(s.At(1), "fast-1t-iter/us")
		}
	}
}

// BenchmarkBigLittle measures the §7 asymmetric-SoC experiment.
func BenchmarkBigLittle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := figures.BigLittle(quick)
		report(b, f, "mcs", 8)
		report(b, f, "clof tkt-tkt", 8)
	}
}

// BenchmarkSimulatedLevelDB measures the simulated LevelDB preset per lock
// at full contention — the per-lock core numbers behind Figs. 2/4.
func BenchmarkSimulatedLevelDB(b *testing.B) {
	m := topo.Armv8Server()
	h := topo.ArmHierarchy4()
	for _, e := range []struct {
		name string
		mk   workload.LockFactory
	}{
		{"mcs", func() clof.Lock { return locks.NewMCS() }},
		{"clof4", func() clof.Lock { return clof.MustNewLock(h, "tkt-clh-tkt-tkt") }},
		{"cna", func() clof.Lock { return clof.NewCNA(m) }},
	} {
		e := e
		b.Run(e.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := workload.Run(e.mk, workload.LevelDB(m, 64))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.ThroughputOpsPerUs(), "iter/us")
			}
		})
	}
}

// BenchmarkNativeLocks measures raw goroutine-level acquire/release pairs of
// every lock on the host — honest native numbers (see DESIGN.md §1 on why
// the paper's figures use the simulator instead).
func BenchmarkNativeLocks(b *testing.B) {
	for _, name := range []string{"tkt", "mcs", "clh", "hem"} {
		typ := locks.MustType(name)
		b.Run(name+"/uncontended", func(b *testing.B) {
			l := typ.New()
			ctx := l.NewCtx()
			p := clof.NewNativeProc(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Acquire(p, ctx)
				l.Release(p, ctx)
			}
		})
		b.Run(name+"/contended4", func(b *testing.B) {
			l := typ.New()
			const workers = 4
			ctxs := make([]clof.Ctx, workers)
			for i := range ctxs {
				ctxs[i] = l.NewCtx()
			}
			var wg sync.WaitGroup
			per := b.N/workers + 1
			b.ResetTimer()
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					p := clof.NewNativeProc(id)
					for i := 0; i < per; i++ {
						l.Acquire(p, ctxs[id])
						l.Release(p, ctxs[id])
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

// BenchmarkNativeCLoFLock measures the composed lock natively.
func BenchmarkNativeCLoFLock(b *testing.B) {
	h := topo.X86Hierarchy3()
	l := clof.MustNewLock(h, "tkt-mcs-mcs")
	ctx := l.NewCtx()
	p := clof.NewNativeProc(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Acquire(p, ctx)
		l.Release(p, ctx)
	}
}

// report attaches one curve point as a metric named after its series
// (whitespace is not allowed in metric units).
func report(b *testing.B, f *figures.Figure, prefix string, x int) {
	b.Helper()
	unit := strings.ReplaceAll(prefix, " ", "_") + "-iter/us"
	for _, s := range f.Series {
		if strings.HasPrefix(s.Name, prefix) {
			b.ReportMetric(s.At(x), unit)
			return
		}
	}
}
