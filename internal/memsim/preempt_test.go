package memsim

import (
	"testing"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/topo"
)

// TestPreemptDelaysObservers: a writer that preempts between two stores
// delays the second store's observer by at least the preemption length.
func TestPreemptDelaysObservers(t *testing.T) {
	const hold = 50_000
	m := New(Config{Machine: topo.X86Server()})
	var flag lockapi.Cell
	var sawAt int64
	m.Spawn(0, func(p *Proc) {
		p.Store(&flag, 1, lockapi.Release)
		p.Preempt(hold)
		p.Store(&flag, 2, lockapi.Release)
	})
	m.Spawn(16, func(p *Proc) {
		for p.Load(&flag, lockapi.Acquire) != 2 {
			p.Spin()
		}
		sawAt = p.Time()
	})
	res := m.Run(0)
	if res.Deadlock {
		t.Fatalf("unexpected deadlock: %+v", res)
	}
	if sawAt < hold {
		t.Fatalf("observer saw the post-preemption store at t=%d, want >= %d", sawAt, hold)
	}
}

// TestPreemptStats: the counter increments and the suspension is unscaled
// even on a slowed CPU (descheduled cores do not compute).
func TestPreemptStats(t *testing.T) {
	speeds := make([]float64, topo.X86Server().NumCPUs())
	for i := range speeds {
		speeds[i] = 3.0
	}
	m := New(Config{Machine: topo.X86Server(), CPUSpeed: speeds})
	var end int64
	var proc *Proc
	proc = m.Spawn(0, func(p *Proc) {
		p.Preempt(10_000)
		end = p.Time()
	})
	m.Run(0)
	if proc.Preempts != 1 {
		t.Fatalf("Preempts = %d, want 1", proc.Preempts)
	}
	if end != 10_000 {
		t.Fatalf("preempt advanced time to %d on a 3x-slow CPU, want exactly 10000 (unscaled)", end)
	}
}

// TestPreemptInvalidatesPrivateView: after a preemption the thread re-misses
// on a line it had cached, charging a transfer instead of a hit.
func TestPreemptInvalidatesPrivateView(t *testing.T) {
	m := New(Config{Machine: topo.X86Server()})
	var cell lockapi.Cell
	var tBefore, tAfterHit, tResume, tAfterMiss int64
	m.Spawn(0, func(p *Proc) {
		p.Load(&cell, lockapi.Relaxed) // populate
		tBefore = p.Time()
		p.Load(&cell, lockapi.Relaxed) // cached: hit
		tAfterHit = p.Time()
		p.Preempt(1_000)
		tResume = p.Time()
		p.Load(&cell, lockapi.Relaxed) // view dropped: miss again
		tAfterMiss = p.Time()
	})
	m.Run(0)
	hitCost := tAfterHit - tBefore
	missCost := tAfterMiss - tResume
	if missCost <= hitCost {
		t.Fatalf("post-preemption reload cost %d <= cached hit cost %d; private view not invalidated", missCost, hitCost)
	}
}

// TestPreemptLockHolderConvoy: with a TAS-style word, preempting the holder
// stalls the waiter for the whole preemption.
func TestPreemptLockHolderConvoy(t *testing.T) {
	const hold = 80_000
	m := New(Config{Machine: topo.X86Server()})
	var word lockapi.Cell
	var acquiredAt int64
	m.Spawn(0, func(p *Proc) {
		if !p.CAS(&word, 0, 1, lockapi.Acquire) {
			t.Error("cpu0 failed to take the free lock")
			return
		}
		p.Preempt(hold) // lock-holder preemption
		p.Store(&word, 0, lockapi.Release)
	})
	m.Spawn(32, func(p *Proc) {
		p.Work(10) // let cpu0 win the first CAS
		for !p.CAS(&word, 0, 1, lockapi.Acquire) {
			p.Spin()
		}
		acquiredAt = p.Time()
		p.Store(&word, 0, lockapi.Release)
	})
	res := m.Run(0)
	if res.Deadlock {
		t.Fatalf("unexpected deadlock: %+v", res)
	}
	if acquiredAt < hold {
		t.Fatalf("waiter acquired at t=%d despite holder preempted for %d", acquiredAt, hold)
	}
}
