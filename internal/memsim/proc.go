package memsim

import (
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/xrand"
)

// simStop is the sentinel panic used to unwind a virtual CPU's stack when
// the machine shuts down while the thread is still blocked or spinning.
type simStop struct{}

// plstate is a thread's private view of one line: which version it has
// cached (if any).
type plstate struct {
	haveSeen bool
	seenVer  uint64
}

// Proc is a virtual CPU: it implements lockapi.Proc by charging the
// machine's cost model for every operation and by parking spinning threads
// until the watched line changes (an MWAIT-like fast-forward that keeps the
// event count proportional to actual coherence traffic, not to spin
// iterations).
type Proc struct {
	m      *Machine
	cpu    int
	time   int64
	resume chan struct{}
	state  int32
	// panicVal carries a workload panic to the scheduler goroutine.
	panicVal any

	// lines is this thread's private per-line state, densely indexed by
	// line.id. Entry pointers handed out by pls stay valid across parks:
	// the slice only grows when THIS thread touches a previously unseen
	// line, and the one cross-thread writer (wakeWatchers) only addresses
	// lines the parked thread has already seen.
	lines []plstate

	// lastCell / lastLine short-circuit the machine's cell→line map for
	// the dominant access pattern, a thread re-touching the cell it just
	// touched (spin loops, data-cell walks).
	lastCell *lockapi.Cell
	lastLine *line

	// lastPollLine / spunSincePoll detect spin loops: a cached re-read of
	// the same unchanged line with a Spin() hint in between parks the
	// thread. The Spin() requirement distinguishes genuine spin loops from
	// straight-line code that merely reads a cell twice.
	lastPollLine  *line
	spunSincePoll bool

	// rmwLine / rmwStreak / storming detect RMW spin loops for the Armv8
	// LL/SC model: consecutive RMWs on one line mark this thread as a
	// "stormer" of that line until it performs any other memory operation.
	rmwLine   *line
	rmwStreak int
	storming  *line

	// justWoke marks the window right after a park wake-up: an out-of-order
	// core speculatively issues the loads that follow a spin loop while the
	// wake is still settling, so the first miss after a wake overlaps with
	// the notice latency and is charged at half cost. Cleared by the first
	// miss it discounts, or by local work / a new spin.
	justWoke bool

	rng *xrand.Rand

	// Stats, readable after Run returns.
	Ops      uint64
	Parks    uint64
	Spins    uint64
	LLSCPens uint64
	Preempts uint64
}

// CPU returns the CPU this virtual thread is pinned to.
func (p *Proc) CPU() int { return p.cpu }

// ID implements lockapi.Proc; it equals CPU().
func (p *Proc) ID() int { return p.cpu }

// Time returns the thread's local virtual time.
func (p *Proc) Time() int64 { return p.time }

// Expired reports whether the run horizon has passed for this thread;
// workload loops use it as their stop condition.
func (p *Proc) Expired() bool {
	return p.m.horizon > 0 && p.time >= p.m.horizon
}

// Rand returns this thread's private deterministic random stream.
func (p *Proc) Rand() *xrand.Rand { return p.rng }

// stackReserve pre-grows the calling goroutine's stack in a single step.
// Virtual CPU goroutines are numerous and short-lived, and their first lock
// acquisition otherwise pays a cascade of incremental 2K→4K→8K→16K stack
// copies (runtime.copystack shows up prominently in profiles of quick
// sweeps); one oversized dead frame reserves the depth up front.
//
//go:noinline
func stackReserve() byte {
	var pad [16 << 10]byte
	return pad[len(pad)-1]
}

// run is the virtual CPU goroutine body.
func (p *Proc) run(fn func(*Proc)) {
	defer func() {
		if r := recover(); r != nil {
			if _, stop := r.(simStop); !stop {
				p.panicVal = r
				p.m.panicked = p
			}
		}
		p.state = stDone
		p.m.yield <- struct{}{}
	}()
	stackReserve()
	p.waitTurn()
	fn(p)
}

// waitTurn blocks until the scheduler grants this thread its next event.
func (p *Proc) waitTurn() {
	if _, ok := <-p.resume; !ok {
		panic(simStop{})
	}
}

// yieldAt schedules this thread's next event at its local time and returns
// once the event is granted.
//
// This is the execution core's run-ahead fast path: while this thread
// remains strictly the globally earliest event — the exact condition under
// which the scheduler's next pop would re-grant it anyway (a tie loses to
// the queued entry, whose earlier push holds the smaller sequence number) —
// and the horizon has not passed, the grant happens inline: advance the
// machine clock and event count and keep executing, paying no channel
// handoff. Otherwise fall back to the scheduler round-trip. Both routes
// grant the same (time, seq) order, so the simulation is bit-identical with
// the fast path on or off.
func (p *Proc) yieldAt() {
	m := p.m
	if !m.noRA {
		if t, ok := m.q.MinTime(); (!ok || p.time < t) && (m.horizon <= 0 || p.time <= m.horizon) {
			m.now = p.time
			m.events++
			return
		}
	}
	p.state = stReady
	m.q.Push(p.time, p)
	p.handoff()
}

// handoff gives up the turn. When run-ahead is enabled this is a direct
// thread-to-thread grant: the yielding thread performs the scheduler's next
// step itself — pop the earliest event, advance the clock, count the event —
// and resumes the winner with a single channel send, waking the scheduler
// goroutine only to finalize (horizon overrun or an empty queue). The grant
// sequence is the queue's (time, seq) pop order either way, so this is
// invisible in simulation results. With DisableRunAhead it degenerates to
// the original protocol: wake the scheduler, let it re-grant.
func (p *Proc) handoff() {
	m := p.m
	if m.noRA {
		m.yield <- struct{}{}
		p.waitTurn()
		return
	}
	t, next, ok := m.q.Pop()
	switch {
	case !ok:
		// Nothing runnable: the scheduler decides (run end or deadlock).
		m.yield <- struct{}{}
	case m.horizon > 0 && t > m.horizon:
		m.now = m.horizon
		m.horizonHit = true
		m.yield <- struct{}{}
	default:
		m.now = t
		m.events++
		next.resume <- struct{}{}
	}
	p.waitTurn()
}

// emit reports a trace event if tracing is enabled. The TraceEvent is only
// constructed behind the nil check, so the no-trace hot path pays one
// predictable branch and zero allocations.
func (p *Proc) emit(op string, c *lockapi.Cell, v uint64, cost int64) {
	if p.m.trace != nil {
		p.m.trace(TraceEvent{Time: p.time, CPU: p.cpu, Op: op, Cell: c, Value: v, Cost: cost})
	}
}

// advance charges cost (plus configured jitter) and grants the next event —
// inline when this thread may run ahead, through the scheduler otherwise.
func (p *Proc) advance(cost int64) {
	p.Ops++
	if p.m.jitter > 0 {
		cost += p.rng.Int63n(p.m.jitter + 1)
	}
	p.time += cost
	p.yieldAt()
}

// park registers this thread as a watcher of ln and blocks until a writer
// wakes it. The waker forwards the new data (seenVer) and sets the wake
// time, so on return the load can be satisfied as a local hit.
func (p *Proc) park(ln *line) {
	p.state = stParked
	p.Parks++
	ln.watchers = append(ln.watchers, p)
	p.handoff()
	// The waker forwarded fresh data; do not immediately re-park on it.
	p.spunSincePoll = false
	p.justWoke = true
}

// lineOf resolves a cell to its coherence line through the per-thread
// one-entry cache, falling back to the machine's maps.
func (p *Proc) lineOf(c *lockapi.Cell) *line {
	if p.lastCell == c {
		return p.lastLine
	}
	ln := p.m.lineOf(c)
	p.lastCell, p.lastLine = c, ln
	return ln
}

// pls returns this thread's private state for ln, growing the dense
// line-indexed slice on first contact. Growth can invalidate previously
// returned pointers, so it must only happen at the top of an operation —
// which it does: within one operation only ln is addressed, and wakers
// address parked threads only through lines those threads already grew for
// (a thread parks on a line it has accessed).
func (p *Proc) pls(ln *line) *plstate {
	for ln.id >= len(p.lines) {
		p.lines = append(p.lines, plstate{})
	}
	return &p.lines[ln.id]
}

// transferCost is the cost of pulling a line from its current owner.
func (p *Proc) transferCost(ln *line) int64 {
	switch {
	case ln.owner < 0:
		return p.m.lat.MemBase
	case ln.owner == p.cpu:
		return p.m.lat.Hit
	default:
		return p.m.lat.Transfer[p.m.topo.ShareLevel(p.cpu, ln.owner)]
	}
}

// invalCost is the extra cost a write pays to invalidate shared copies held
// by other CPUs (the shared→modified upgrade broadcast).
func (p *Proc) invalCost(ln *line) int64 {
	n := ln.sharers.count()
	if ln.sharers.has(p.cpu) {
		n--
	}
	if n <= 0 {
		return 0
	}
	if n > p.m.lat.SharerInvalCap {
		n = p.m.lat.SharerInvalCap
	}
	return int64(n) * p.m.lat.SharerInval
}

// llscCost models Armv8 load-exclusive/store-exclusive retry pressure: an
// RMW pays per thread *storming* the line with back-to-back RMWs, because
// the stormers keep stealing the exclusive reservation. This is what
// collapses Hemlock's CTR optimization on Armv8 (paper Fig. 3): the
// successor's fetch_add(0) spin loop livelocks the releaser's
// compare-and-swap. Alternating RMWs (ticket handovers, queue swaps) are
// not storms and pay nothing.
func (p *Proc) llscCost(ln *line) int64 {
	if p.m.lat.LLSCRetry == 0 {
		return 0
	}
	n := ln.stormers
	if p.storming == ln {
		n--
	}
	if n <= 0 {
		return 0
	}
	if n > p.m.lat.LLSCRetryCap {
		n = p.m.lat.LLSCRetryCap
	}
	p.LLSCPens++
	return int64(n) * p.m.lat.LLSCRetry
}

// noteRMW tracks consecutive RMWs for storm detection (Armv8 only).
func (p *Proc) noteRMW(ln *line) {
	if p.m.lat.LLSCRetry == 0 {
		return
	}
	if p.rmwLine != ln {
		p.endStorm()
		p.rmwLine = ln
		p.rmwStreak = 1
		return
	}
	p.rmwStreak++
	if p.rmwStreak >= 2 && p.storming == nil {
		p.storming = ln
		ln.stormers++
	}
}

// endStorm clears this thread's RMW-spin status, if any.
func (p *Proc) endStorm() {
	if p.storming != nil {
		p.storming.stormers--
		p.storming = nil
	}
	p.rmwLine = nil
	p.rmwStreak = 0
}

// wakeWatchers wakes every thread parked on ln, forwarding the new version
// so their pending load completes as a hit. Responses are staggered: the
// writer's cache serves one copy per transfer latency, so the k-th watcher
// notices the change later — the reload storm that makes globally spinning
// locks (Ticketlock) degrade with the waiter count (§2.1).
func (p *Proc) wakeWatchers(ln *line) {
	if len(ln.watchers) == 0 {
		return
	}
	acc := int64(0)
	for _, w := range ln.watchers {
		acc += p.m.lat.Transfer[p.m.topo.ShareLevel(p.cpu, w.cpu)]
		w.time = p.time + acc
		st := w.pls(ln)
		st.haveSeen = true
		st.seenVer = ln.version
		ln.sharers.add(w.cpu)
		w.state = stReady
		p.m.q.Push(w.time, w)
	}
	ln.watchers = ln.watchers[:0]
}

// markWrite applies the coherence effects of a modification: bump version,
// take ownership, drop sharers, and wake parked spinners.
func (p *Proc) markWrite(ln *line) {
	ln.version++
	ln.owner = p.cpu
	ln.sharers.reset()
	st := p.pls(ln)
	st.haveSeen = true
	st.seenVer = ln.version
	p.wakeWatchers(ln)
}

// Load implements lockapi.Proc.
func (p *Proc) Load(c *lockapi.Cell, _ lockapi.Order) uint64 {
	ln := p.lineOf(c)
	st := p.pls(ln)
	p.endStorm()
	for {
		if st.haveSeen && st.seenVer == ln.version {
			// Cached copy still valid.
			if p.lastPollLine == ln && p.spunSincePoll {
				// Spin-looping on an unchanged line: park until a writer
				// changes it.
				p.park(ln)
				continue
			}
			p.lastPollLine = ln
			p.spunSincePoll = false
			p.advance(p.m.lat.Hit)
			v := c.Raw().Load()
			p.emit("load", c, v, p.m.lat.Hit)
			return v
		}
		// Miss: pull the line from its owner and join the sharers. The
		// cost is charged first; the read commits at completion time.
		cost := p.transferCost(ln)
		if p.justWoke {
			// Speculative post-wake load: overlaps the wake notice.
			cost /= 2
			p.justWoke = false
		}
		p.lastPollLine = ln
		p.spunSincePoll = false
		p.advance(cost)
		st.haveSeen = true
		st.seenVer = ln.version
		ln.sharers.add(p.cpu)
		v := c.Raw().Load()
		p.emit("load", c, v, cost)
		return v
	}
}

// Store implements lockapi.Proc.
func (p *Proc) Store(c *lockapi.Cell, v uint64, _ lockapi.Order) {
	ln := p.lineOf(c)
	st := p.pls(ln)
	p.endStorm()
	cost := p.m.lat.Hit
	switch {
	case st.haveSeen && st.seenVer == ln.version && ln.owner == p.cpu:
		// Already modified/exclusive here.
	case st.haveSeen && st.seenVer == ln.version:
		// Valid shared copy: S→M upgrade, no data fetch.
		cost += p.m.lat.Upgrade
	default:
		cost = p.transferCost(ln)
	}
	cost += p.invalCost(ln)
	p.lastPollLine = nil
	// Charge first: the store (and the watcher wake-up it triggers) commits
	// at completion time, so expensive writes delay their observers.
	p.advance(cost)
	c.Raw().Store(v)
	p.markWrite(ln)
	p.emit("store", c, v, cost)
}

// rmwCost charges the common cost of a read-modify-write.
func (p *Proc) rmwCost(ln *line, st *plstate) int64 {
	cost := p.m.lat.RMWBase
	switch {
	case st.haveSeen && st.seenVer == ln.version && ln.owner == p.cpu:
		cost += p.m.lat.Hit
	case st.haveSeen && st.seenVer == ln.version:
		// Valid shared copy: S→M upgrade, no data fetch.
		cost += p.m.lat.Hit + p.m.lat.Upgrade
	default:
		cost += p.transferCost(ln)
	}
	cost += p.invalCost(ln)
	cost += p.llscCost(ln)
	return cost
}

// Add implements lockapi.Proc (fetch-and-add returning the new value).
//
// Add with delta 0 is the CTR "load" idiom. On x86 an exclusive-held line
// being re-read by its owner costs nothing externally, so a repeated
// Add(0) by the owner parks like a spin load (keeping the line exclusive —
// that absence of sharers is the CTR benefit). On Armv8 every Add is a real
// LL/SC pair, so the loop stays live and feeds the retry storm.
func (p *Proc) Add(c *lockapi.Cell, delta uint64, _ lockapi.Order) uint64 {
	ln := p.lineOf(c)
	st := p.pls(ln)
	for {
		if delta == 0 && p.m.lat.LLSCRetry == 0 &&
			st.haveSeen && st.seenVer == ln.version && ln.owner == p.cpu {
			// CTR spin-read of a line we already own exclusively: on x86
			// this costs nothing externally. Poll once, then park on the
			// Spin()-marked repeat, like a plain load spin.
			if p.lastPollLine == ln && p.spunSincePoll {
				p.park(ln)
				continue
			}
			p.lastPollLine = ln
			p.spunSincePoll = false
			p.advance(p.m.lat.Hit + p.m.lat.RMWBase)
			nv := c.Raw().Add(delta)
			p.emit("add", c, nv, p.m.lat.Hit+p.m.lat.RMWBase)
			return nv
		}
		cost := p.rmwCost(ln, st)
		p.noteRMW(ln)
		p.lastPollLine = nil
		p.advance(cost)
		nv := c.Raw().Add(delta)
		if delta != 0 {
			p.markWrite(ln)
		} else {
			// fetch_add(0): takes the line exclusive but the value is
			// unchanged, so cached copies stay semantically valid; no
			// version bump (watchers must not wake for an unchanged value)
			// but ownership and sharers move as for a write.
			ln.owner = p.cpu
			ln.sharers.reset()
			st.haveSeen = true
			st.seenVer = ln.version
		}
		p.emit("add", c, nv, cost)
		return nv
	}
}

// Swap implements lockapi.Proc (returns the old value).
func (p *Proc) Swap(c *lockapi.Cell, v uint64, _ lockapi.Order) uint64 {
	ln := p.lineOf(c)
	st := p.pls(ln)
	cost := p.rmwCost(ln, st)
	p.noteRMW(ln)
	p.lastPollLine = nil
	p.advance(cost)
	old := c.Raw().Swap(v)
	p.markWrite(ln)
	p.emit("swap", c, v, cost)
	return old
}

// CAS implements lockapi.Proc. A failed CAS still pulls the line and pays
// the RMW cost (the LL happened) but does not modify it.
func (p *Proc) CAS(c *lockapi.Cell, old, new uint64, _ lockapi.Order) bool {
	ln := p.lineOf(c)
	st := p.pls(ln)
	cost := p.rmwCost(ln, st)
	p.noteRMW(ln)
	p.lastPollLine = nil
	p.advance(cost)
	// The compare happens at completion time: an RMW that committed while
	// this one was in flight wins, exactly as on real hardware.
	ok := c.Raw().CompareAndSwap(old, new)
	if ok {
		ln.version++
		ln.owner = p.cpu
		ln.sharers.reset()
		p.wakeWatchers(ln)
	}
	st.haveSeen = true
	st.seenVer = ln.version
	if ok {
		p.emit("cas", c, new, cost)
	} else {
		p.emit("cas!", c, old, cost)
	}
	return ok
}

// Fence implements lockapi.Proc. The simulator executes operations in
// program order (it models coherence cost, not reordering — internal/mcheck
// covers reordering), so a fence only costs time.
func (p *Proc) Fence(_ lockapi.Order) {
	p.advance(p.m.lat.RMWBase)
}

// Spin implements lockapi.Proc: one spin-loop iteration of local delay.
// It also marks the thread as spinning, which arms the park heuristic for
// the next cached re-read.
func (p *Proc) Spin() {
	p.Spins++
	p.spunSincePoll = true
	p.advance(p.m.lat.SpinGap)
}

// Preempt suspends this virtual CPU for d nanoseconds of *wall-clock*
// descheduling, as when the OS takes the core away: virtual time advances
// unscaled (CPUSpeed does not apply — a descheduled core computes nothing),
// and the thread's private cache view is dropped, so it repopulates its
// working set through misses on resume — the realistic handover penalty of
// lock-holder preemption. Global coherence state (owners, sharers, parked
// watchers) is deliberately untouched: other CPUs still believe this CPU may
// hold lines, which is the conservative direction for writers' invalidation
// costs. The fault-injection harness (internal/faultinject via
// internal/workload) calls this mid-critical-section to model preempted
// lock holders, and outside it to model stalled cores.
func (p *Proc) Preempt(d int64) {
	if d < 0 {
		panic("memsim: negative Preempt duration")
	}
	p.Preempts++
	clear(p.lines)
	p.endStorm()
	p.lastPollLine = nil
	p.justWoke = false
	p.time += d
	p.emit("preempt", nil, 0, d)
	p.yieldAt()
}

// Work advances this thread's local time by d nanoseconds of private
// computation (no coherence traffic), scaled by this CPU's speed factor
// (big.LITTLE support). Workloads use it for critical- and non-critical-
// section "think time".
func (p *Proc) Work(d int64) {
	if d < 0 {
		panic("memsim: negative Work duration")
	}
	if p.m.speeds != nil {
		d = int64(float64(d) * p.m.speeds[p.cpu])
	}
	p.lastPollLine = nil
	p.justWoke = false
	p.endStorm()
	p.advance(d)
}

var _ lockapi.Proc = (*Proc)(nil)
