package memsim

import (
	"strings"
	"testing"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/topo"
)

func TestSingleThreadDeterministicCost(t *testing.T) {
	m := New(Config{Machine: topo.X86Server()})
	var cell lockapi.Cell
	var finalTime int64
	m.Spawn(0, func(p *Proc) {
		p.Store(&cell, 1, lockapi.Relaxed) // cold: MemBase
		p.Store(&cell, 2, lockapi.Relaxed) // owned: Hit
		if got := p.Load(&cell, lockapi.Relaxed); got != 2 {
			t.Errorf("Load = %d, want 2", got)
		}
		p.Work(100)
		finalTime = p.Time()
	})
	res := m.Run(0)
	lat := DefaultLatency(topo.X86)
	want := lat.MemBase + lat.Hit + lat.Hit + 100
	if finalTime != want {
		t.Errorf("final time = %d, want %d", finalTime, want)
	}
	if res.Deadlock {
		t.Error("unexpected deadlock")
	}
}

func TestTransferCostByLevel(t *testing.T) {
	// A remote read costs the transfer latency of the sharing level.
	mach := topo.Armv8Server()
	lat := DefaultLatency(topo.ArmV8)
	pairs := []struct {
		a, b int
		lvl  topo.Level
	}{
		{0, 1, topo.CacheGroup},
		{0, 4, topo.NUMA},
		{0, 32, topo.Package},
		{0, 64, topo.System},
	}
	for _, pair := range pairs {
		m := New(Config{Machine: mach})
		var cell lockapi.Cell
		var readCost int64
		m.Spawn(pair.a, func(p *Proc) {
			p.Store(&cell, 7, lockapi.Relaxed)
		})
		m.Spawn(pair.b, func(p *Proc) {
			p.Work(1000) // ensure the writer ran first in virtual time
			before := p.Time()
			if got := p.Load(&cell, lockapi.Relaxed); got != 7 {
				t.Errorf("Load = %d, want 7", got)
			}
			readCost = p.Time() - before
		})
		m.Run(0)
		if want := lat.Transfer[pair.lvl]; readCost != want {
			t.Errorf("read %d<-%d (level %v): cost %d, want %d", pair.b, pair.a, pair.lvl, readCost, want)
		}
	}
}

// pingPong measures the paper's §3.1 microbenchmark on two CPUs: threads
// alternate incrementing a shared counter for the given virtual duration.
func pingPong(t *testing.T, mach *topo.Machine, cpuA, cpuB int, dur int64) uint64 {
	t.Helper()
	m := New(Config{Machine: mach})
	var counter lockapi.Cell
	var incs uint64
	turn := func(p *Proc, parity uint64) {
		for !p.Expired() {
			for p.Load(&counter, lockapi.Acquire)%2 != parity {
				p.Spin()
				if p.Expired() {
					return
				}
			}
			p.Add(&counter, 1, lockapi.AcqRel)
			incs++
		}
	}
	m.Spawn(cpuA, func(p *Proc) { turn(p, 0) })
	m.Spawn(cpuB, func(p *Proc) { turn(p, 1) })
	m.Run(dur)
	return incs
}

func TestPingPongFasterWhenCloser(t *testing.T) {
	mach := topo.Armv8Server()
	const dur = 200_000 // 200µs
	group := pingPong(t, mach, 0, 1, dur)
	numa := pingPong(t, mach, 0, 4, dur)
	pkg := pingPong(t, mach, 0, 32, dur)
	sys := pingPong(t, mach, 0, 64, dur)
	if !(group > numa && numa > pkg && pkg > sys) {
		t.Errorf("throughput not monotone in distance: group=%d numa=%d pkg=%d sys=%d", group, numa, pkg, sys)
	}
	if sys == 0 {
		t.Fatal("no progress at system distance")
	}
}

// TestTable2Calibration checks the simulator reproduces the paper's Table 2
// speedups (throughput of a cohort relative to the system cohort) within
// 25% relative tolerance.
func TestTable2Calibration(t *testing.T) {
	const dur = 400_000
	check := func(name string, got, want float64) {
		t.Helper()
		if got < want*0.75 || got > want*1.25 {
			t.Errorf("%s speedup = %.2f, want %.2f ±25%%", name, got, want)
		}
	}

	x := topo.X86Server()
	xsys := float64(pingPong(t, x, 0, 48, dur))
	check("x86 numa/package", float64(pingPong(t, x, 0, 24, dur))/xsys, 1.54)
	check("x86 cache-group", float64(pingPong(t, x, 0, 2, dur))/xsys, 9.07)
	check("x86 core", float64(pingPong(t, x, 0, 1, dur))/xsys, 12.18)

	a := topo.Armv8Server()
	asys := float64(pingPong(t, a, 0, 64, dur))
	check("armv8 package", float64(pingPong(t, a, 0, 32, dur))/asys, 1.76)
	check("armv8 numa", float64(pingPong(t, a, 0, 4, dur))/asys, 2.98)
	check("armv8 cache-group", float64(pingPong(t, a, 0, 1, dur))/asys, 7.04)
}

// runLock drives `n` simulated threads through a critical-section workload
// and returns total completed iterations.
func runLock(t *testing.T, mach *topo.Machine, mk func() lockapi.Lock, n int, dur int64) (uint64, int64) {
	t.Helper()
	m := New(Config{Machine: mach})
	l := mk()
	ctxs := make([]lockapi.Ctx, n)
	for i := range ctxs {
		ctxs[i] = l.NewCtx()
	}
	var shared lockapi.Cell
	counts := make([]uint64, n)
	var held int32
	step := mach.NumCPUs() / n
	if step == 0 {
		step = 1
	}
	for i := 0; i < n; i++ {
		i := i
		m.Spawn((i*step)%mach.NumCPUs(), func(p *Proc) {
			for !p.Expired() {
				l.Acquire(p, ctxs[i])
				if held != 0 {
					t.Error("mutual exclusion violated")
				}
				held = 1
				p.Add(&shared, 1, lockapi.Relaxed)
				p.Work(80)
				held = 0
				l.Release(p, ctxs[i])
				p.Work(120)
				counts[i]++
			}
		})
	}
	res := m.Run(dur)
	if res.Deadlock {
		t.Fatalf("deadlock: parked CPUs %v", res.ParkedCPUs)
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	return total, res.Now
}

func TestAllLocksOnSimulator(t *testing.T) {
	for _, machine := range []*topo.Machine{topo.X86Server(), topo.Armv8Server()} {
		for _, name := range locks.Names() {
			if machine.Arch == topo.ArmV8 && name == "hem-ctr" {
				continue // intentionally pathological; covered below
			}
			typ := locks.MustType(name)
			t.Run(machine.Arch.String()+"/"+name, func(t *testing.T) {
				total, _ := runLock(t, machine, typ.New, 8, 300_000)
				if total == 0 {
					t.Error("no iterations completed")
				}
			})
		}
	}
}

// TestHemlockCTRAsymmetry reproduces the paper's Fig. 3 CTR observation:
// CTR must not hurt on x86 but must collapse throughput on Armv8.
func TestHemlockCTRAsymmetry(t *testing.T) {
	const n, dur = 4, 400_000
	x86ctr, _ := runLock(t, topo.X86Server(), locks.MustType("hem-ctr").New, n, dur)
	x86plain, _ := runLock(t, topo.X86Server(), locks.MustType("hem").New, n, dur)
	armctr, _ := runLock(t, topo.Armv8Server(), locks.MustType("hem-ctr").New, n, dur)
	armplain, _ := runLock(t, topo.Armv8Server(), locks.MustType("hem").New, n, dur)

	if float64(x86ctr) < 0.8*float64(x86plain) {
		t.Errorf("x86: CTR hurt throughput: ctr=%d plain=%d", x86ctr, x86plain)
	}
	if float64(armctr) > 0.4*float64(armplain) {
		t.Errorf("armv8: CTR did not collapse: ctr=%d plain=%d", armctr, armplain)
	}
}

// TestTicketGlobalSpinPenalty: with many waiters, local-spinning MCS must
// beat globally-spinning Ticket (the motivation for queue locks, §2.1).
func TestTicketGlobalSpinPenalty(t *testing.T) {
	mach := topo.Armv8Server()
	const n, dur = 32, 400_000
	tkt, _ := runLock(t, mach, locks.MustType("tkt").New, n, dur)
	mcs, _ := runLock(t, mach, locks.MustType("mcs").New, n, dur)
	if mcs <= tkt {
		t.Errorf("MCS (%d) not better than Ticket (%d) at %d threads", mcs, tkt, n)
	}
}

func TestSpinParkingBoundsEvents(t *testing.T) {
	// A thread spinning on a line that changes once must park rather than
	// burn events.
	m := New(Config{Machine: topo.X86Server()})
	var flag lockapi.Cell
	var spinner *Proc
	spinner = m.Spawn(0, func(p *Proc) {
		for p.Load(&flag, lockapi.Acquire) == 0 {
			p.Spin()
		}
	})
	m.Spawn(48, func(p *Proc) {
		p.Work(50_000)
		p.Store(&flag, 1, lockapi.Release)
	})
	res := m.Run(0)
	if res.Deadlock {
		t.Fatal("deadlock")
	}
	if spinner.Parks == 0 {
		t.Error("spinner never parked")
	}
	if res.Events > 100 {
		t.Errorf("events = %d; spin fast-forward not effective", res.Events)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, int64) {
		return runLock(t, topo.Armv8Server(), locks.MustType("mcs").New, 8, 200_000)
	}
	c1, t1 := run()
	c2, t2 := run()
	if c1 != c2 || t1 != t2 {
		t.Errorf("two identical runs diverged: (%d,%d) vs (%d,%d)", c1, t1, c2, t2)
	}
}

func TestSeedChangesJitteredRun(t *testing.T) {
	final := func(seed uint64) int64 {
		m := New(Config{Machine: topo.X86Server(), Seed: seed, JitterNS: 5})
		var c lockapi.Cell
		var ft int64
		m.Spawn(0, func(p *Proc) {
			for i := 0; i < 200; i++ {
				p.Store(&c, uint64(i), lockapi.Relaxed)
			}
			ft = p.Time()
		})
		m.Run(0)
		return ft
	}
	a, b := final(1), final(2)
	if a == b {
		t.Errorf("jittered runs with different seeds identical (%d); jitter inert", a)
	}
	if a2 := final(1); a2 != a {
		t.Errorf("same seed diverged: %d vs %d", a, a2)
	}
}

func TestDeadlockDetection(t *testing.T) {
	m := New(Config{Machine: topo.X86Server()})
	var flag lockapi.Cell
	m.Spawn(0, func(p *Proc) {
		for p.Load(&flag, lockapi.Acquire) == 0 {
			p.Spin()
		}
	})
	res := m.Run(0)
	if !res.Deadlock {
		t.Error("deadlock not detected")
	}
	if len(res.ParkedCPUs) != 1 || res.ParkedCPUs[0] != 0 {
		t.Errorf("ParkedCPUs = %v, want [0]", res.ParkedCPUs)
	}
}

func TestWorkloadPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic not propagated")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
			t.Errorf("unexpected panic value: %v", r)
		}
	}()
	m := New(Config{Machine: topo.X86Server()})
	m.Spawn(0, func(p *Proc) {
		p.Work(10)
		panic("boom")
	})
	m.Run(0)
}

func TestSpawnValidation(t *testing.T) {
	m := New(Config{Machine: topo.X86Server()})
	for _, cpu := range []int{-1, 96, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Spawn(%d) did not panic", cpu)
				}
			}()
			m.Spawn(cpu, func(*Proc) {})
		}()
	}
}

func TestRunTwicePanics(t *testing.T) {
	m := New(Config{Machine: topo.X86Server()})
	m.Spawn(0, func(p *Proc) { p.Work(1) })
	m.Run(0)
	defer func() {
		if recover() == nil {
			t.Error("second Run did not panic")
		}
	}()
	m.Run(0)
}

func TestHorizonStopsRun(t *testing.T) {
	m := New(Config{Machine: topo.X86Server()})
	iters := 0
	m.Spawn(0, func(p *Proc) {
		for !p.Expired() {
			p.Work(100)
			iters++
		}
	})
	res := m.Run(10_000)
	if res.Deadlock {
		t.Error("horizon run reported deadlock")
	}
	if iters < 95 || iters > 105 {
		t.Errorf("iters = %d, want ~100", iters)
	}
}

func TestCPUSpeedScalesWork(t *testing.T) {
	mach := topo.BigLittleSoC()
	speeds := topo.BigLittleSpeeds(mach, 3.0)
	m := New(Config{Machine: mach, CPUSpeed: speeds})
	var tBig, tLittle int64
	m.Spawn(0, func(p *Proc) { p.Work(100); tBig = p.Time() })
	m.Spawn(4, func(p *Proc) { p.Work(100); tLittle = p.Time() })
	m.Run(0)
	if tBig != 100 || tLittle != 300 {
		t.Errorf("work times big=%d little=%d, want 100/300", tBig, tLittle)
	}
}

func TestCPUSpeedValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched CPUSpeed length accepted")
		}
	}()
	New(Config{Machine: topo.BigLittleSoC(), CPUSpeed: []float64{1, 2}})
}

func TestTraceHook(t *testing.T) {
	var events []TraceEvent
	m := New(Config{Machine: topo.X86Server(), Trace: func(ev TraceEvent) {
		events = append(events, ev)
	}})
	var c lockapi.Cell
	m.Spawn(0, func(p *Proc) {
		p.Store(&c, 5, lockapi.Relaxed)
		if p.Load(&c, lockapi.Acquire) != 5 {
			t.Error("bad load")
		}
		p.CAS(&c, 5, 6, lockapi.AcqRel)
		p.CAS(&c, 5, 7, lockapi.AcqRel) // fails
		p.Add(&c, 1, lockapi.AcqRel)
		p.Swap(&c, 9, lockapi.AcqRel)
	})
	m.Run(0)
	want := []string{"store", "load", "cas", "cas!", "add", "swap"}
	if len(events) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(events), len(want), events)
	}
	for i, ev := range events {
		if ev.Op != want[i] {
			t.Errorf("event %d op = %s, want %s", i, ev.Op, want[i])
		}
		if ev.Cell != &c || ev.CPU != 0 {
			t.Errorf("event %d misattributed: %+v", i, ev)
		}
	}
	// Values: store 5, load 5, cas new=6, cas! expected=5, add ->7, swap put 9.
	wantVals := []uint64{5, 5, 6, 5, 7, 9}
	for i, ev := range events {
		if ev.Value != wantVals[i] {
			t.Errorf("event %d value = %d, want %d", i, ev.Value, wantVals[i])
		}
	}
}
