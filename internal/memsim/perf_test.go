package memsim

import (
	"fmt"
	"hash/fnv"
	"testing"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/topo"
)

// lockRun executes one contended-lock simulation and returns everything
// observable about it: the machine Result, a hash of the full trace stream,
// per-thread op/park/spin counters, and the final shared-cell value. It is
// the probe used to prove the run-ahead fast path is semantically invisible.
func lockRun(mach *topo.Machine, mk func() lockapi.Lock, n int, dur int64, cfg Config) (Result, uint64, string, uint64) {
	h := fnv.New64a()
	cfg.Machine = mach
	cfg.Trace = func(ev TraceEvent) {
		fmt.Fprintf(h, "%d/%d/%s/%d/%d;", ev.Time, ev.CPU, ev.Op, ev.Value, ev.Cost)
	}
	m := New(cfg)
	l := mk()
	var shared lockapi.Cell
	var total uint64
	stats := ""
	procs := make([]*Proc, n)
	step := mach.NumCPUs() / n
	if step == 0 {
		step = 1
	}
	for i := 0; i < n; i++ {
		i := i
		ctx := l.NewCtx()
		procs[i] = m.Spawn((i*step)%mach.NumCPUs(), func(p *Proc) {
			for !p.Expired() {
				l.Acquire(p, ctx)
				p.Add(&shared, 1, lockapi.Relaxed)
				p.Work(50)
				l.Release(p, ctx)
				p.Work(200)
				total++
				// A sprinkle of preemption keeps the slow path's
				// park/preempt interactions in the compared schedule.
				if total%97 == 0 {
					p.Preempt(500)
				}
			}
		})
	}
	res := m.Run(dur)
	for _, p := range procs {
		stats += fmt.Sprintf("[ops=%d parks=%d spins=%d preempts=%d t=%d]", p.Ops, p.Parks, p.Spins, p.Preempts, p.time)
	}
	return res, h.Sum64(), stats, total
}

// TestRunAheadEquivalence proves the fast path's core claim: with
// DisableRunAhead toggled, every observable of the simulation — final time,
// event count, the complete (time, cpu, op, value, cost) trace stream,
// per-thread counters — is bit-identical. Jitter is on so the RNG draw
// order is part of what is being compared.
func TestRunAheadEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		mach *topo.Machine
		lock string
	}{
		{"mcs/x86", topo.X86Server(), "mcs"},
		{"tkt/x86", topo.X86Server(), "tkt"},
		{"hem-ctr/armv8", topo.Armv8Server(), "hem-ctr"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := Config{Seed: 42, JitterNS: 3}
			fast := base
			slow := base
			slow.DisableRunAhead = true
			fr, fh, fs, ft := lockRun(tc.mach, locks.MustType(tc.lock).New, 8, 150_000, fast)
			sr, sh, ss, st := lockRun(tc.mach, locks.MustType(tc.lock).New, 8, 150_000, slow)
			if fmt.Sprintf("%+v", fr) != fmt.Sprintf("%+v", sr) {
				t.Errorf("Result differs: fast %+v, scheduler-only %+v", fr, sr)
			}
			if fh != sh {
				t.Errorf("trace stream differs: fast %x, scheduler-only %x", fh, sh)
			}
			if fs != ss {
				t.Errorf("proc stats differ:\nfast: %s\nslow: %s", fs, ss)
			}
			if ft != st {
				t.Errorf("acquire totals differ: fast %d, scheduler-only %d", ft, st)
			}
		})
	}
}

// pingPongOps runs the two-thread ping-pong workload (spin, park, wake,
// RMW — the simulator's steady-state shape) with tracing and jitter off,
// and reports the number of simulated operations executed.
func pingPongOps(horizon int64) uint64 {
	m := New(Config{Machine: topo.X86Server()})
	var counter lockapi.Cell
	turn := func(p *Proc, parity uint64) {
		for !p.Expired() {
			for p.Load(&counter, lockapi.Acquire)%2 != parity {
				p.Spin()
				if p.Expired() {
					return
				}
			}
			p.Add(&counter, 1, lockapi.AcqRel)
		}
	}
	pa := m.Spawn(0, func(p *Proc) { turn(p, 0) })
	pb := m.Spawn(5, func(p *Proc) { turn(p, 1) })
	m.Run(horizon)
	return pa.Ops + pb.Ops
}

// mcsOps runs a two-thread contended MCS loop with the lock's protocol
// instrumentation compiled in but detached (the embedded lockapi.Probe has
// no observer), tracing and jitter off, and reports simulated operations.
// It is the probe for the observability layer's zero-overhead-when-off
// guarantee: every Emit* on the grant path must reduce to a nil check.
func mcsOps(horizon int64) uint64 {
	m := New(Config{Machine: topo.X86Server()})
	l := locks.NewMCS()
	var shared lockapi.Cell
	ctxA, ctxB := l.NewCtx(), l.NewCtx()
	loop := func(ctx lockapi.Ctx) func(p *Proc) {
		return func(p *Proc) {
			for !p.Expired() {
				l.Acquire(p, ctx)
				p.Add(&shared, 1, lockapi.Relaxed)
				l.Release(p, ctx)
			}
		}
	}
	pa := m.Spawn(0, loop(ctxA))
	pb := m.Spawn(5, loop(ctxB))
	m.Run(horizon)
	return pa.Ops + pb.Ops
}

// TestNoTraceZeroAllocs enforces the zero-allocations-per-operation
// guarantee: in no-trace, no-jitter steady state, running 10x longer must
// not allocate more. All per-run setup (machine, lines, goroutines, slice
// growth to steady state) cancels out in the subtraction, so any residue
// would be a per-operation allocation on the hot path. The instrumented
// subtest runs a lock that carries observability hooks (lockapi.Probe) with
// no observer attached, proving the off path of the observability layer is
// allocation-free too.
func TestNoTraceZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement in -short mode")
	}
	for _, tc := range []struct {
		name string
		run  func(horizon int64) uint64
	}{
		{"pingpong", pingPongOps},
		{"instrumented-lock-detached", mcsOps},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var opsShort, opsLong uint64
			allocShort := testing.AllocsPerRun(5, func() { opsShort = tc.run(100_000) })
			allocLong := testing.AllocsPerRun(5, func() { opsLong = tc.run(1_000_000) })
			extraOps := opsLong - opsShort
			if extraOps == 0 {
				t.Fatal("horizon change produced no extra ops; test is vacuous")
			}
			// Tolerate a few stray allocations (runtime bookkeeping noise),
			// but a per-op allocation would show up as thousands here.
			if delta := allocLong - allocShort; delta > 8 {
				t.Errorf("hot path allocates: %.0f extra allocs over %d extra ops (%.4f/op)",
					delta, extraOps, delta/float64(extraOps))
			}
		})
	}
}

// The BenchmarkMachine suite measures the simulator's real-time throughput
// (reported as simulated memory operations per wall-clock second) on its two
// dominant shapes. The *SchedulerOnly variants disable the run-ahead fast
// path, so the pair quantifies exactly what the fast path buys.

func benchLock(b *testing.B, mach *topo.Machine, lockName string, n int, disableRA bool) {
	b.ReportAllocs()
	var ops uint64
	for i := 0; i < b.N; i++ {
		m := New(Config{Machine: mach, DisableRunAhead: disableRA})
		l := locks.MustType(lockName).New()
		var shared lockapi.Cell
		step := mach.NumCPUs() / n
		if step == 0 {
			step = 1
		}
		procs := make([]*Proc, n)
		for j := 0; j < n; j++ {
			ctx := l.NewCtx()
			procs[j] = m.Spawn((j*step)%mach.NumCPUs(), func(p *Proc) {
				for !p.Expired() {
					l.Acquire(p, ctx)
					p.Add(&shared, 1, lockapi.Relaxed)
					p.Work(50)
					l.Release(p, ctx)
					p.Work(200)
				}
			})
		}
		m.Run(300_000)
		for _, p := range procs {
			ops += p.Ops
		}
	}
	b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "simops/s")
}

func BenchmarkMachineMCS8(b *testing.B)  { benchLock(b, topo.X86Server(), "mcs", 8, false) }
func BenchmarkMachineTkt8(b *testing.B)  { benchLock(b, topo.X86Server(), "tkt", 8, false) }
func BenchmarkMachineMCS32(b *testing.B) { benchLock(b, topo.X86Server(), "mcs", 32, false) }

func BenchmarkMachineMCS8SchedulerOnly(b *testing.B) {
	benchLock(b, topo.X86Server(), "mcs", 8, true)
}

func BenchmarkMachinePingPong(b *testing.B) {
	b.ReportAllocs()
	var ops uint64
	for i := 0; i < b.N; i++ {
		ops += pingPongOps(300_000)
	}
	b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "simops/s")
}

func BenchmarkMachinePingPongSchedulerOnly(b *testing.B) {
	b.ReportAllocs()
	var ops uint64
	for i := 0; i < b.N; i++ {
		m := New(Config{Machine: topo.X86Server(), DisableRunAhead: true})
		var counter lockapi.Cell
		turn := func(p *Proc, parity uint64) {
			for !p.Expired() {
				for p.Load(&counter, lockapi.Acquire)%2 != parity {
					p.Spin()
					if p.Expired() {
						return
					}
				}
				p.Add(&counter, 1, lockapi.AcqRel)
			}
		}
		pa := m.Spawn(0, func(p *Proc) { turn(p, 0) })
		pb := m.Spawn(5, func(p *Proc) { turn(p, 1) })
		m.Run(300_000)
		ops += pa.Ops + pb.Ops
	}
	b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "simops/s")
}
