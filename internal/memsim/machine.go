// Package memsim is a deterministic discrete-event simulator of a
// multi-level NUMA machine. It is this repository's substitute for the
// paper's physical x86 and Armv8 servers (see DESIGN.md §1): Go cannot pin
// goroutines to CPUs and its scheduler/GC distort spin behavior, so all
// paper experiments run on simulated hardware instead.
//
// The model is deliberately first-order: performance of contended locks is
// dominated by cache-line transfer latencies between levels of the memory
// hierarchy, by the invalidation cost of writes to widely shared lines, and
// — on Armv8 — by load-exclusive/store-exclusive retry storms under
// competing read-modify-writes. memsim charges per-operation costs from a
// latency table calibrated against the paper's Table 2 and serializes all
// operations in virtual-time order, so results are exactly reproducible for
// a given seed.
//
// Virtual CPUs are goroutines in a strict turn-taking protocol with the
// scheduler: at any instant at most one simulated operation executes, so
// the machine state needs no locking and the simulation is deterministic.
//
// # Execution core: the run-ahead fast path
//
// The turn-taking protocol alone would cost two channel handoffs (four
// goroutine context switches on one OS thread) per simulated memory
// operation. The execution core avoids almost all of them: after charging
// an operation, the running virtual CPU checks the event queue's cached
// minimum inline, and if it is still strictly the globally earliest thread
// — and inside the horizon — it simply keeps executing, advancing the
// machine clock itself. Spin loops and uncontended critical sections, the
// dominant operation streams of every lock benchmark, therefore run
// handoff-free. When a thread does lose eligibility (or parks), it hands
// the turn directly to the next-earliest thread with a single channel send
// (Proc.handoff) instead of detouring through the scheduler goroutine,
// which is left only termination, deadlock and thread-exit duty.
//
// The fast path is semantically invisible. A thread may run ahead only
// under exactly the condition that would make the scheduler re-grant it the
// very next event (queue empty, or its time strictly below the queue
// minimum — ties go to the queued entry, which was pushed earlier and holds
// the smaller sequence number), so the (time, seq) grant order — and with
// it every simulated result, including Result.Events — is bit-identical to
// the scheduler-only protocol. Config.DisableRunAhead forces the old
// protocol for benchmarks and equivalence tests.
package memsim

import (
	"fmt"
	"sort"

	"github.com/clof-go/clof/internal/eventq"
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/topo"
	"github.com/clof-go/clof/internal/xrand"
)

// Latency is the cost model, in virtual nanoseconds. Defaults are produced
// by DefaultLatency and calibrated (see calibration tests) so that the
// two-thread ping-pong benchmark reproduces the paper's Table 2 speedups.
type Latency struct {
	// Hit is the cost of an access satisfied by the local cache.
	Hit int64
	// MemBase is the cost of the first access to a line nobody owns.
	MemBase int64
	// Transfer[l] is the cache-to-cache transfer cost when the line's
	// current owner shares level l (topo.Core..topo.System) with the
	// requester. It also serves as the invalidation-notice latency for
	// parked spinners.
	Transfer [5]int64
	// RMWBase is the extra cost of a read-modify-write over a load/store.
	RMWBase int64
	// Upgrade is the cost of a write by a CPU that already holds a valid
	// shared copy (MESI S→M upgrade: an invalidation round, no data
	// fetch). Read-then-write patterns pay this instead of a transfer.
	Upgrade int64
	// SharerInval is the per-sharer cost a write pays to invalidate shared
	// copies (the MESI shared→modified upgrade broadcast). This is what
	// makes global spinning (Ticketlock) expensive at high contention.
	SharerInval int64
	// SharerInvalCap bounds the number of sharers charged.
	SharerInvalCap int
	// LLSCRetry is the Armv8-only retry cost an RMW pays per *storming*
	// competitor: a thread continuously issuing RMWs on the same line (a
	// fetch_add(0) or CAS spin loop) keeps stealing the exclusive
	// reservation, so load-exclusive/store-exclusive pairs of other CPUs
	// fail repeatedly. Alternating, non-overlapping RMWs (e.g. a ticket
	// handover) carry no penalty. Zero on x86.
	LLSCRetry int64
	// LLSCRetryCap bounds the number of stormers charged to one RMW.
	LLSCRetryCap int
	// SpinGap is the cost of one Proc.Spin() hint.
	SpinGap int64
}

// DefaultLatency returns the calibrated cost model for an architecture.
//
// The transfer table is fitted to the paper's Table 2: throughput of the
// ping-pong counter is ∝ 1/(2·Transfer[l] + c), so the table is chosen to
// reproduce the reported speedups (x86: 1.00/1.54/1.54/9.07/12.18 for
// system/package/NUMA/cache-group/core; Armv8: 1.00/1.76/2.98/7.04 for
// system/package/NUMA/cache-group).
func DefaultLatency(arch topo.Arch) Latency {
	l := Latency{
		Hit:            2,
		MemBase:        90,
		RMWBase:        2,
		Upgrade:        10,
		SharerInval:    8,
		SharerInvalCap: 48,
		SpinGap:        3,
	}
	if arch == topo.X86 {
		//                  core  cache  numa  pkg  system
		l.Transfer = [5]int64{14, 22, 191, 191, 300}
	} else {
		l.Transfer = [5]int64{15, 32, 93, 165, 300}
		l.LLSCRetry = 2000
		l.LLSCRetryCap = 4
	}
	return l
}

// Config configures a Machine.
type Config struct {
	// Machine is the simulated topology (required).
	Machine *topo.Machine
	// Latency overrides DefaultLatency(Machine.Arch) when non-nil.
	Latency *Latency
	// Seed seeds all randomness (jitter). Equal seeds ⇒ identical runs.
	Seed uint64
	// JitterNS adds a uniform [0, JitterNS) per-operation delay to break
	// artificial lockstep patterns. 0 disables jitter.
	JitterNS int64
	// CPUSpeed optionally scales each CPU's compute time (Proc.Work):
	// factor 3 means local work takes 3x longer (a LITTLE core). Memory
	// latencies are unaffected. nil = all CPUs at factor 1.
	CPUSpeed []float64
	// Trace, when non-nil, receives one event per memory operation (after
	// its effects commit). For debugging lock protocols; adds overhead.
	Trace func(ev TraceEvent)
	// DisableRunAhead routes every operation through the scheduler channel
	// handoff (the pre-fast-path protocol). Results are bit-identical
	// either way; the flag exists for benchmarks quantifying the run-ahead
	// fast path and for the equivalence tests that prove the claim.
	DisableRunAhead bool
}

// TraceEvent describes one committed simulated memory operation.
type TraceEvent struct {
	// Time is the operation's completion time (ns).
	Time int64
	// CPU is the issuing virtual CPU.
	CPU int
	// Op is the operation kind: "load", "store", "cas", "cas!", "add",
	// "swap", "spin", "work", "park", "wake", "preempt" ("cas!" = failed
	// compare).
	Op string
	// Cell is the accessed cell (nil for spin/work).
	Cell *lockapi.Cell
	// Value is the value read/written (CAS: the new value on success).
	Value uint64
	// Cost is the charged latency in ns.
	Cost int64
}

// cpuSet is a fixed-size CPU bitset with a cached population count. It
// replaces the per-line sharer map: add/has/reset are branch-cheap and
// allocation-free, which the zero-allocs-per-op guarantee depends on.
type cpuSet struct {
	bits []uint64
	n    int
}

func (s *cpuSet) init(ncpu int) { s.bits = make([]uint64, (ncpu+63)/64) }

func (s *cpuSet) add(cpu int) {
	w, b := cpu>>6, uint64(1)<<uint(cpu&63)
	if s.bits[w]&b == 0 {
		s.bits[w] |= b
		s.n++
	}
}

func (s *cpuSet) has(cpu int) bool {
	return s.bits[cpu>>6]&(uint64(1)<<uint(cpu&63)) != 0
}

func (s *cpuSet) reset() {
	if s.n == 0 {
		return
	}
	clear(s.bits)
	s.n = 0
}

func (s *cpuSet) count() int { return s.n }

// line is the coherence state of one simulated cache line (one Cell or one
// Colocate group).
type line struct {
	// id is the dense line index assigned at creation; per-thread private
	// state lives in a slice indexed by it (Proc.pls).
	id int
	// version counts modifications; used for cached-copy validity.
	version uint64
	// owner is the CPU of the last writer, or -1.
	owner int
	// sharers holds CPUs with a shared copy since the last write.
	sharers cpuSet
	// watchers are procs parked until this line changes.
	watchers []*Proc
	// stormers counts threads currently in an RMW spin loop on this line
	// (consecutive RMWs with no other memory operation in between); used by
	// the Armv8 LL/SC retry model.
	stormers int
}

// Thread run states.
const (
	stReady int32 = iota
	stParked
	stDone
)

// Result summarizes a completed run.
type Result struct {
	// Now is the virtual time at which the run stopped.
	Now int64
	// Events is the number of simulation events granted: one per simulated
	// operation slot, whether the grant went through the scheduler channel
	// or the run-ahead fast path. The count is bit-identical under both
	// protocols (and to the pre-fast-path simulator).
	Events uint64
	// Deadlock reports that the event queue drained with threads still
	// parked before the horizon was reached.
	Deadlock bool
	// ParkedCPUs lists the CPUs that were still parked at the end.
	ParkedCPUs []int
}

// Machine is a simulated multi-level NUMA machine. Create with New, add
// virtual CPUs with Spawn, then call Run exactly once.
type Machine struct {
	topo   *topo.Machine
	lat    Latency
	arch   topo.Arch
	ncpu   int
	rng    *xrand.Rand
	jitter int64
	speeds []float64
	trace  func(ev TraceEvent)
	// lines resolves a Cell's LineKey (the Colocate tag or the cell
	// itself) to coherence state; cellLine is the pointer-keyed cache in
	// front of it, so the steady-state per-op lookup hashes a *Cell
	// directly instead of an interface key.
	lines    map[any]*line
	cellLine map[*lockapi.Cell]*line
	lineSeq  int
	q        eventq.Queue[*Proc]
	yield    chan struct{}
	threads  []*Proc
	horizon  int64
	now      int64
	events   uint64
	started  bool
	noRA     bool
	// horizonHit is set by a thread whose direct handoff (Proc.handoff)
	// found the next event past the horizon; the scheduler finalizes.
	horizonHit bool
	// panicked is the thread whose workload function panicked; set by the
	// thread wrapper before its final yield so the scheduler can propagate.
	panicked *Proc
}

// New builds a machine from cfg. It panics on an invalid topology, since
// that is a programming error in test/benchmark setup.
func New(cfg Config) *Machine {
	if cfg.Machine == nil {
		panic("memsim: Config.Machine is required")
	}
	if err := cfg.Machine.Validate(); err != nil {
		panic(err)
	}
	lat := DefaultLatency(cfg.Machine.Arch)
	if cfg.Latency != nil {
		lat = *cfg.Latency
	}
	if cfg.CPUSpeed != nil && len(cfg.CPUSpeed) != cfg.Machine.NumCPUs() {
		panic(fmt.Sprintf("memsim: CPUSpeed has %d entries for %d CPUs", len(cfg.CPUSpeed), cfg.Machine.NumCPUs()))
	}
	return &Machine{
		topo:     cfg.Machine,
		lat:      lat,
		arch:     cfg.Machine.Arch,
		ncpu:     cfg.Machine.NumCPUs(),
		rng:      xrand.New(cfg.Seed ^ 0xC10F),
		jitter:   cfg.JitterNS,
		speeds:   cfg.CPUSpeed,
		trace:    cfg.Trace,
		lines:    make(map[any]*line),
		cellLine: make(map[*lockapi.Cell]*line),
		yield:    make(chan struct{}),
		noRA:     cfg.DisableRunAhead,
	}
}

// Topo returns the simulated topology.
func (m *Machine) Topo() *topo.Machine { return m.topo }

// Latency returns the active cost model.
func (m *Machine) Latency() Latency { return m.lat }

// Now returns the current virtual time in nanoseconds.
func (m *Machine) Now() int64 { return m.now }

// Spawn creates a virtual CPU thread pinned to the given CPU and running fn.
// All Spawn calls must precede Run. fn runs entirely in virtual time; it
// must perform all shared-memory accesses through the provided Proc.
func (m *Machine) Spawn(cpu int, fn func(p *Proc)) *Proc {
	if m.started {
		panic("memsim: Spawn after Run")
	}
	if cpu < 0 || cpu >= m.topo.NumCPUs() {
		panic(fmt.Sprintf("memsim: cpu %d out of range [0,%d)", cpu, m.topo.NumCPUs()))
	}
	p := &Proc{
		m:      m,
		cpu:    cpu,
		resume: make(chan struct{}),
		rng:    m.rng.Split(),
	}
	m.threads = append(m.threads, p)
	m.q.Push(0, p)
	go p.run(fn)
	return p
}

// Run executes the simulation until the event queue drains or virtual time
// exceeds horizon (horizon 0 means "no horizon": run to completion). It
// returns statistics; Deadlock is set if every remaining thread is parked
// with no pending event before the horizon.
//
// The scheduler loop below is mostly idle: fast-path operations advance
// m.now and m.events inline from the running thread (Proc.yieldAt), and
// slow-path grants hand off thread-to-thread (Proc.handoff) without waking
// the scheduler. The loop only runs to start threads, to re-grant after a
// thread exits, and to finalize on horizon overrun, queue exhaustion, or a
// workload panic. (With Config.DisableRunAhead both shortcuts are off and
// every grant flows through this loop, as in the original protocol.)
func (m *Machine) Run(horizon int64) Result {
	if m.started {
		panic("memsim: Run called twice")
	}
	m.started = true
	m.horizon = horizon

	horizonHit := false
	for {
		t, p, ok := m.q.Pop()
		if !ok {
			break
		}
		if horizon > 0 && t > horizon {
			m.now = horizon
			horizonHit = true
			break
		}
		m.now = t
		m.events++
		p.resume <- struct{}{}
		<-m.yield
		if m.panicked != nil {
			m.shutdown()
			panic(m.panicked.panicVal)
		}
		if m.horizonHit {
			horizonHit = true
			break
		}
	}

	res := Result{Now: m.now, Events: m.events}
	for _, p := range m.threads {
		if p.state == stParked {
			res.ParkedCPUs = append(res.ParkedCPUs, p.cpu)
		}
	}
	sort.Ints(res.ParkedCPUs)
	if !horizonHit && len(res.ParkedCPUs) > 0 {
		res.Deadlock = true
	}
	m.shutdown()
	return res
}

// shutdown terminates all live virtual CPUs. Each is blocked waiting for its
// turn; closing its resume channel makes waitTurn panic with the stop
// sentinel, which the thread wrapper converts into a final yield.
func (m *Machine) shutdown() {
	for _, p := range m.threads {
		if p.state == stDone {
			continue
		}
		close(p.resume)
		<-m.yield
	}
}

// lineOf returns (creating on demand) the coherence state for a cell's
// cache line (colocated cells share one line, see lockapi.Colocate). The
// per-cell pointer cache makes the steady-state lookup a single
// pointer-keyed map access; the interface-keyed map is only consulted the
// first time each cell is touched.
func (m *Machine) lineOf(c *lockapi.Cell) *line {
	if ln, ok := m.cellLine[c]; ok {
		return ln
	}
	key := c.LineKey()
	ln := m.lines[key]
	if ln == nil {
		ln = &line{id: m.lineSeq, owner: -1}
		ln.sharers.init(m.ncpu)
		m.lineSeq++
		m.lines[key] = ln
	}
	m.cellLine[c] = ln
	return ln
}
