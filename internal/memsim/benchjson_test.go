package memsim

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/topo"
)

// benchArtifact is the BENCH_*.json schema: the simulator's host-side
// throughput on its canonical scenarios, for before/after comparison of
// execution-core changes (see EXPERIMENTS.md "Profiling the simulator").
type benchArtifact struct {
	Schema     int              `json:"schema"`
	GoVersion  string           `json:"go_version"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	Quick      bool             `json:"quick,omitempty"`
	Benchmarks []benchJSONEntry `json:"benchmarks"`
}

type benchJSONEntry struct {
	Name string `json:"name"`
	// Iterations of the whole scenario (one simulation run each).
	Iterations int `json:"iterations"`
	// NSPerOp is host nanoseconds per scenario iteration.
	NSPerOp float64 `json:"ns_per_op"`
	// SimOpsPerSec is simulated memory operations per host second — the
	// simulator's real-time throughput, the headline number.
	SimOpsPerSec float64 `json:"simops_per_sec"`
}

// lockScenario runs one fixed-horizon contended-lock simulation and returns
// the number of simulated operations (the same shape as benchLock).
func lockScenario(mach *topo.Machine, lockName string, n int, disableRA bool) uint64 {
	m := New(Config{Machine: mach, DisableRunAhead: disableRA})
	l := locks.MustType(lockName).New()
	var shared lockapi.Cell
	step := mach.NumCPUs() / n
	if step == 0 {
		step = 1
	}
	procs := make([]*Proc, n)
	for j := 0; j < n; j++ {
		ctx := l.NewCtx()
		procs[j] = m.Spawn((j*step)%mach.NumCPUs(), func(p *Proc) {
			for !p.Expired() {
				l.Acquire(p, ctx)
				p.Add(&shared, 1, lockapi.Relaxed)
				p.Work(50)
				l.Release(p, ctx)
				p.Work(200)
			}
		})
	}
	m.Run(300_000)
	var ops uint64
	for _, p := range procs {
		ops += p.Ops
	}
	return ops
}

// TestWriteBenchArtifact measures the canonical scenarios and writes the
// JSON artifact named by CLOF_BENCH_OUT (skipped when unset — the normal
// test run never pays for this). CLOF_BENCH_QUICK=1 runs each scenario once
// (CI smoke); otherwise each is timed over ~300ms of repetitions.
// Driven by `make bench` / `make bench-smoke`.
func TestWriteBenchArtifact(t *testing.T) {
	out := os.Getenv("CLOF_BENCH_OUT")
	if out == "" {
		t.Skip("CLOF_BENCH_OUT not set")
	}
	quick := os.Getenv("CLOF_BENCH_QUICK") != ""

	scenarios := []struct {
		name string
		run  func() uint64
	}{
		{"machine_pingpong", func() uint64 { return pingPongOps(300_000) }},
		{"machine_mcs8", func() uint64 { return lockScenario(topo.X86Server(), "mcs", 8, false) }},
		{"machine_mcs32", func() uint64 { return lockScenario(topo.X86Server(), "mcs", 32, false) }},
		{"machine_tkt8", func() uint64 { return lockScenario(topo.X86Server(), "tkt", 8, false) }},
		{"machine_hemctr8_armv8", func() uint64 { return lockScenario(topo.Armv8Server(), "hem-ctr", 8, false) }},
		{"machine_mcs8_scheduler_only", func() uint64 { return lockScenario(topo.X86Server(), "mcs", 8, true) }},
	}

	art := benchArtifact{
		Schema:    1,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Quick:     quick,
	}
	for _, sc := range scenarios {
		iters := 1
		if !quick {
			// Calibrate: one warm-up run sizes ~300ms of repetitions.
			warm := time.Now()
			sc.run()
			if d := time.Since(warm); d > 0 {
				if iters = int(300 * time.Millisecond / d); iters < 1 {
					iters = 1
				}
			}
		}
		var ops uint64
		start := time.Now()
		for i := 0; i < iters; i++ {
			ops += sc.run()
		}
		elapsed := time.Since(start)
		art.Benchmarks = append(art.Benchmarks, benchJSONEntry{
			Name:         sc.name,
			Iterations:   iters,
			NSPerOp:      float64(elapsed.Nanoseconds()) / float64(iters),
			SimOpsPerSec: float64(ops) / elapsed.Seconds(),
		})
		t.Logf("%s: %d iters, %.2fms/iter, %.0f simops/s",
			sc.name, iters, float64(elapsed.Nanoseconds())/float64(iters)/1e6, float64(ops)/elapsed.Seconds())
	}

	b, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	b = append(b, '\n')
	if err := os.WriteFile(out, b, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
