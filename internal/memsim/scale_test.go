package memsim

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/clof-go/clof/internal/clof"
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/topo"
)

// scaleScenario runs a full-machine contended-lock simulation on a deep
// topology: every vCPU runs one thread, all hammering one lock. lockName is
// either a basic lock ("tkt", "mcs") or a 4-level CLoF composition over
// DeepHierarchy ("tkt-tkt-tkt-tkt"). Returns total simulated operations.
func scaleScenario(mach *topo.Machine, lockName string, horizon int64) uint64 {
	m := New(Config{Machine: mach})
	l := mustScaleLock(mach, lockName)
	var shared lockapi.Cell
	n := mach.NumCPUs()
	procs := make([]*Proc, n)
	for j := 0; j < n; j++ {
		ctx := l.NewCtx()
		procs[j] = m.Spawn(j, func(p *Proc) {
			for !p.Expired() {
				l.Acquire(p, ctx)
				p.Add(&shared, 1, lockapi.Relaxed)
				p.Work(50)
				l.Release(p, ctx)
				p.Work(200)
			}
		})
	}
	m.Run(horizon)
	var ops uint64
	for _, p := range procs {
		ops += p.Ops
	}
	return ops
}

// mustScaleLock builds lockName for mach: a CLoF composition when the name
// contains a '-' separated per-level list matching DeepHierarchy, a basic
// lock otherwise.
func mustScaleLock(mach *topo.Machine, lockName string) lockapi.Lock {
	if comp, err := clof.ParseComposition(lockName); err == nil && len(comp) == 4 {
		l, err := clof.New(topo.DeepHierarchy(mach), comp)
		if err != nil {
			panic(err)
		}
		return l
	}
	return locks.MustType(lockName).New()
}

// TestSharerSetBeyond64 pins the per-line sharer representation across the
// 64-CPU word boundary: the bitset must track membership and population
// exactly for CPU ids spanning multiple words, and reset must clear every
// word (a one-word reset would silently undercharge invalidations on deep
// machines).
func TestSharerSetBeyond64(t *testing.T) {
	var s cpuSet
	s.init(1024)
	if got := len(s.bits); got != 16 {
		t.Fatalf("1024-CPU set allocated %d words, want 16", got)
	}
	boundary := []int{0, 1, 63, 64, 65, 127, 128, 255, 256, 511, 512, 1023}
	for _, cpu := range boundary {
		s.add(cpu)
		s.add(cpu) // idempotent: count must not double
	}
	if got := s.count(); got != len(boundary) {
		t.Fatalf("count = %d, want %d", got, len(boundary))
	}
	for _, cpu := range boundary {
		if !s.has(cpu) {
			t.Errorf("has(%d) = false after add", cpu)
		}
	}
	for _, cpu := range []int{2, 62, 66, 129, 1022} {
		if s.has(cpu) {
			t.Errorf("has(%d) = true, never added", cpu)
		}
	}
	s.reset()
	if s.count() != 0 {
		t.Fatalf("count = %d after reset", s.count())
	}
	for _, cpu := range boundary {
		if s.has(cpu) {
			t.Errorf("has(%d) = true after reset", cpu)
		}
	}
}

// TestSharerInvalAcrossWords drives the >64-sharer case end to end: on a
// 256-vCPU machine, readers on CPUs spanning all four bitset words share one
// line, and the next write must observe every one of them (capped by
// SharerInvalCap) in its invalidation charge.
func TestSharerInvalAcrossWords(t *testing.T) {
	mach := topo.DeepServer256()
	lat := DefaultLatency(mach.Arch)
	lat.SharerInvalCap = 1 << 30 // uncap: we want the true sharer count
	m := New(Config{Machine: mach, Latency: &lat})
	var cell lockapi.Cell
	readers := []int{1, 63, 64, 127, 128, 200, 255}
	var writeCost int64
	m.Spawn(0, func(p *Proc) {
		p.Store(&cell, 1, lockapi.Relaxed) // take ownership
		p.Work(1000)                       // let every reader join the sharer set
		t0 := p.Time()
		p.Store(&cell, 2, lockapi.Relaxed)
		writeCost = p.Time() - t0
	})
	for _, cpu := range readers {
		m.Spawn(cpu, func(p *Proc) {
			p.Work(100) // after the first store
			p.Load(&cell, lockapi.Relaxed)
		})
	}
	res := m.Run(0)
	if res.Deadlock {
		t.Fatal("unexpected deadlock")
	}
	// The second store is by the owner (Hit, no upgrade fetch) plus one
	// SharerInval per reader; any reader lost to a truncated bitset word
	// would shrink the charge.
	want := lat.Hit + int64(len(readers))*lat.SharerInval
	if writeCost != want {
		t.Fatalf("write over %d cross-word sharers cost %d, want %d", len(readers), writeCost, want)
	}
}

// TestScaleDeterminism pins that a full-machine 1024-vCPU run is
// reproducible operation for operation: same seed, same event count, same
// total ops. This is the deep-topology extension of the golden-SHA pins.
func TestScaleDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-vCPU run in -short mode")
	}
	run := func() (uint64, uint64) {
		m := New(Config{Machine: topo.DeepServer1024(), Seed: 7, JitterNS: 3})
		l := locks.MustType("mcs").New()
		var shared lockapi.Cell
		n := 1024
		procs := make([]*Proc, n)
		for j := 0; j < n; j++ {
			ctx := l.NewCtx()
			procs[j] = m.Spawn(j, func(p *Proc) {
				for !p.Expired() {
					l.Acquire(p, ctx)
					p.Add(&shared, 1, lockapi.Relaxed)
					l.Release(p, ctx)
					p.Work(500)
				}
			})
		}
		res := m.Run(150_000)
		var ops uint64
		for _, p := range procs {
			ops += p.Ops
		}
		return res.Events, ops
	}
	e1, o1 := run()
	e2, o2 := run()
	if e1 != e2 || o1 != o2 {
		t.Fatalf("1024-vCPU run not deterministic: events %d/%d, ops %d/%d", e1, e2, o1, o2)
	}
	if o1 == 0 {
		t.Fatal("no operations simulated; scenario is vacuous")
	}
}

// The BenchmarkMachineScale suite measures full-machine throughput on the
// deep topologies: every vCPU contends for one lock. The tkt scenarios are
// the event-queue stress (global spinning parks every waiter on one line, so
// each release wakes hundreds of watchers at once); the CLoF scenario is the
// representative composed-lock shape.

func BenchmarkMachineScale256(b *testing.B)  { benchScale(b, topo.DeepServer256(), "tkt") }
func BenchmarkMachineScale512(b *testing.B)  { benchScale(b, topo.DeepServer512(), "tkt") }
func BenchmarkMachineScale1024(b *testing.B) { benchScale(b, topo.DeepServer1024(), "tkt") }

func BenchmarkMachineScale1024CLoF(b *testing.B) {
	benchScale(b, topo.DeepServer1024(), "tkt-tkt-tkt-tkt")
}

func benchScale(b *testing.B, mach *topo.Machine, lockName string) {
	b.ReportAllocs()
	var ops uint64
	for i := 0; i < b.N; i++ {
		ops += scaleScenario(mach, lockName, 300_000)
	}
	b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "simops/s")
}

// TestWriteBenchScaleArtifact measures the deep-topology scenarios and
// writes BENCH_scale.json (same schema as BENCH.json) to CLOF_SCALE_OUT.
// Driven by `make bench-scale`; CLOF_BENCH_QUICK=1 runs each scenario once.
func TestWriteBenchScaleArtifact(t *testing.T) {
	out := os.Getenv("CLOF_SCALE_OUT")
	if out == "" {
		t.Skip("CLOF_SCALE_OUT not set")
	}
	quick := os.Getenv("CLOF_BENCH_QUICK") != ""

	scenarios := []struct {
		name string
		run  func() uint64
	}{
		{"scale_tkt256", func() uint64 { return scaleScenario(topo.DeepServer256(), "tkt", 300_000) }},
		{"scale_tkt512", func() uint64 { return scaleScenario(topo.DeepServer512(), "tkt", 300_000) }},
		{"scale_tkt1024", func() uint64 { return scaleScenario(topo.DeepServer1024(), "tkt", 300_000) }},
		{"scale_mcs1024", func() uint64 { return scaleScenario(topo.DeepServer1024(), "mcs", 300_000) }},
		{"scale_clof1024", func() uint64 { return scaleScenario(topo.DeepServer1024(), "tkt-tkt-tkt-tkt", 300_000) }},
	}

	art := benchArtifact{
		Schema:    1,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Quick:     quick,
	}
	for _, sc := range scenarios {
		iters := 1
		if !quick {
			warm := time.Now()
			sc.run()
			if d := time.Since(warm); d > 0 {
				if iters = int(300 * time.Millisecond / d); iters < 1 {
					iters = 1
				}
			}
		}
		var ops uint64
		start := time.Now()
		for i := 0; i < iters; i++ {
			ops += sc.run()
		}
		elapsed := time.Since(start)
		art.Benchmarks = append(art.Benchmarks, benchJSONEntry{
			Name:         sc.name,
			Iterations:   iters,
			NSPerOp:      float64(elapsed.Nanoseconds()) / float64(iters),
			SimOpsPerSec: float64(ops) / elapsed.Seconds(),
		})
		t.Logf("%s: %d iters, %.2fms/iter, %.0f simops/s",
			sc.name, iters, float64(elapsed.Nanoseconds())/float64(iters)/1e6, float64(ops)/elapsed.Seconds())
	}

	b, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	b = append(b, '\n')
	if err := os.WriteFile(out, b, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
