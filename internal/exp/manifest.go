package exp

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

// Manifest is the results.json artifact: every Result the engine produced,
// in completion order (spec by spec, point order within a spec). It is safe
// for concurrent use by one Runner's workers and doubles as the resume
// cache — Lookup hits skip re-measurement.
type Manifest struct {
	mu       sync.Mutex
	path     string
	specs    []Spec
	specSeen map[string]bool
	results  []Result
	index    map[string]int // spec_hash + "\x00" + key -> results slot
}

// manifestFile is the on-disk schema of results.json.
type manifestFile struct {
	Version int      `json:"version"`
	Summary Summary  `json:"summary"`
	Specs   []Spec   `json:"specs"`
	Results []Result `json:"results"`
}

// Summary aggregates a manifest's host-side cost: how many points were
// measured, how long the measuring took, and the resulting measurement rate.
// Like Result.WallMS it is nondeterministic provenance — nothing derived
// from a manifest may depend on it. Cached (resumed) points contribute their
// counts but not wall time or rate, since their cost was paid by an earlier
// run.
type Summary struct {
	// Points / CachedPoints count all recorded results and the subset that
	// was served from the resume cache.
	Points       int `json:"points"`
	CachedPoints int `json:"cached_points,omitempty"`
	// Errors counts failed runs across all points.
	Errors int `json:"errors,omitempty"`
	// WallMSTotal is the summed host wall time of all freshly measured
	// points. Workers run in parallel, so this is CPU-ish time, not elapsed.
	WallMSTotal float64 `json:"wall_ms_total"`
	// TotalIters sums the median completed-iteration counts of fresh points.
	TotalIters uint64 `json:"total_iters"`
	// ItersPerSec is TotalIters per wall second of measurement — the
	// throughput of the simulator itself, the number the memsim fast-path
	// work moves.
	ItersPerSec float64 `json:"iters_per_sec"`
}

// Summary computes the aggregate over the currently recorded results.
func (m *Manifest) Summary() Summary {
	m.mu.Lock()
	defer m.mu.Unlock()
	return summarize(m.results)
}

func summarize(results []Result) Summary {
	var s Summary
	for _, r := range results {
		s.Points++
		s.Errors += len(r.Errors)
		if r.Cached {
			s.CachedPoints++
			continue
		}
		s.WallMSTotal += r.WallMS
		s.TotalIters += r.Total
	}
	if s.WallMSTotal > 0 {
		s.ItersPerSec = float64(s.TotalIters) / (s.WallMSTotal / 1e3)
	}
	return s
}

// NewManifest returns an empty manifest that Save writes to path.
func NewManifest(path string) *Manifest {
	return &Manifest{path: path, specSeen: map[string]bool{}, index: map[string]int{}}
}

// LoadManifest reads a results.json for resuming. A missing file yields an
// empty manifest (first run); a malformed or version-mismatched file is an
// error rather than a silent cache miss.
func LoadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return NewManifest(path), nil
	}
	if err != nil {
		return nil, err
	}
	var f manifestFile
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("exp: parse %s: %w", path, err)
	}
	if f.Version != SchemaVersion {
		return nil, fmt.Errorf("exp: %s has schema version %d, want %d", path, f.Version, SchemaVersion)
	}
	m := NewManifest(path)
	for _, s := range f.Specs {
		m.AddSpec(s)
	}
	for _, r := range f.Results {
		r.Cached = false // staleness of the *previous* run does not persist
		m.Add(r)
	}
	return m, nil
}

// AddSpec records a spec for provenance (deduplicated by hash).
func (m *Manifest) AddSpec(s Spec) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := s.Hash()
	if !m.specSeen[h] {
		m.specSeen[h] = true
		m.specs = append(m.specs, s)
	}
}

// Specs returns a copy of the recorded specs in insertion order.
func (m *Manifest) Specs() []Spec {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Spec(nil), m.specs...)
}

// Path returns the file Save writes to.
func (m *Manifest) Path() string { return m.path }

// Len returns the number of recorded results.
func (m *Manifest) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.results)
}

// Lookup returns the recorded result for (specHash, key), if present.
func (m *Manifest) Lookup(specHash, key string) (Result, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	i, ok := m.index[specHash+"\x00"+key]
	if !ok {
		return Result{}, false
	}
	return m.results[i], true
}

// Add records a result; a later Add for the same (spec hash, key) replaces
// the earlier record, so re-measured points shadow stale cache entries.
func (m *Manifest) Add(r Result) {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := r.SpecHash + "\x00" + r.Key
	if i, ok := m.index[k]; ok {
		m.results[i] = r
		return
	}
	m.index[k] = len(m.results)
	m.results = append(m.results, r)
}

// Results returns a copy of the recorded results in insertion order.
func (m *Manifest) Results() []Result {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Result(nil), m.results...)
}

// Save writes the artifact (indented JSON, trailing newline) atomically via
// a sibling temp file.
func (m *Manifest) Save() error {
	m.mu.Lock()
	f := manifestFile{Version: SchemaVersion, Summary: summarize(m.results), Specs: m.specs, Results: m.results}
	path := m.path
	m.mu.Unlock()
	if path == "" {
		return fmt.Errorf("exp: manifest has no path")
	}
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
