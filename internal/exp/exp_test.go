package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"github.com/clof-go/clof/internal/xrand"
)

// synthetic builds n points whose value is a pure function of the seed, so
// any dependence on scheduling or pool width shows up as a value change.
func synthetic(n int, executed *atomic.Int64) []Point {
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		i := i
		pts[i] = Point{
			Key: fmt.Sprintf("lock=l%d/threads=%d", i%4, i),
			Run: func(seed uint64) Sample {
				if executed != nil {
					executed.Add(1)
				}
				r := xrand.New(seed)
				return Sample{
					Throughput: r.Float64(),
					Jain:       r.Float64(),
					Total:      uint64(r.Intn(1000)),
					Metrics:    map[string]float64{"aux": r.Float64()},
				}
			},
		}
	}
	return pts
}

func stripWall(rs []Result) []Result {
	out := append([]Result(nil), rs...)
	for i := range out {
		out[i].WallMS = 0
		out[i].Cached = false
	}
	return out
}

func TestRunnerDeterministicAcrossJobs(t *testing.T) {
	spec := Spec{Name: "synthetic", Platform: "none", Threads: []int{1, 8}, Runs: 3, Seed: 7}
	var a, b, c []Result
	a = (&Runner{Jobs: 1}).Run(spec, synthetic(33, nil))
	b = (&Runner{Jobs: 8}).Run(spec, synthetic(33, nil))
	c = (&Runner{Jobs: 8}).Run(spec, synthetic(33, nil))
	if !reflect.DeepEqual(stripWall(a), stripWall(b)) {
		t.Error("results differ between -j 1 and -j 8")
	}
	if !reflect.DeepEqual(stripWall(b), stripWall(c)) {
		t.Error("results differ between two -j 8 runs")
	}
	for i := 1; i < len(a); i++ {
		if a[i].Seed == a[0].Seed {
			t.Fatalf("points %d and 0 share a seed", i)
		}
	}
}

func TestSpecHashCoversFields(t *testing.T) {
	base := Spec{Name: "x", Platform: "x86", Threads: []int{1, 2}, Runs: 3, Seed: 1}
	same := Spec{Name: "x", Platform: "x86", Threads: []int{1, 2}, Runs: 3, Seed: 1}
	if base.Hash() != same.Hash() {
		t.Error("equal specs hash differently")
	}
	variants := []Spec{
		{Name: "y", Platform: "x86", Threads: []int{1, 2}, Runs: 3, Seed: 1},
		{Name: "x", Platform: "armv8", Threads: []int{1, 2}, Runs: 3, Seed: 1},
		{Name: "x", Platform: "x86", Threads: []int{1, 2, 4}, Runs: 3, Seed: 1},
		{Name: "x", Platform: "x86", Threads: []int{1, 2}, Runs: 4, Seed: 1},
		{Name: "x", Platform: "x86", Threads: []int{1, 2}, Runs: 3, Seed: 2},
		{Name: "x", Platform: "x86", Threads: []int{1, 2}, Runs: 3, Seed: 1, Quick: true},
	}
	for i, v := range variants {
		if v.Hash() == base.Hash() {
			t.Errorf("variant %d hashes equal to base", i)
		}
	}
	if PointSeed(base, "a") == PointSeed(base, "b") {
		t.Error("distinct keys share a point seed")
	}
	if PointSeed(base, "a") != PointSeed(same, "a") {
		t.Error("point seed unstable across equal specs")
	}
}

func TestRunnerResumeSkipsRecordedPoints(t *testing.T) {
	spec := Spec{Name: "resume", Runs: 2, Seed: 3}
	dir := t.TempDir()
	path := filepath.Join(dir, "results.json")

	var firstExec atomic.Int64
	m1 := NewManifest(path)
	first := (&Runner{Jobs: 4, Manifest: m1}).Run(spec, synthetic(10, &firstExec))
	if got := firstExec.Load(); got != 10*2 {
		t.Fatalf("first pass executed %d runs, want 20", got)
	}
	if err := m1.Save(); err != nil {
		t.Fatal(err)
	}

	m2, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	var secondExec atomic.Int64
	second := (&Runner{Jobs: 4, Manifest: m2}).Run(spec, synthetic(10, &secondExec))
	if got := secondExec.Load(); got != 0 {
		t.Fatalf("resume executed %d runs, want 0", got)
	}
	for i := range second {
		if !second[i].Cached {
			t.Fatalf("point %d not served from cache", i)
		}
	}
	if !reflect.DeepEqual(stripWall(first), stripWall(second)) {
		t.Error("cached results differ from the original run")
	}

	// A different spec hash must not hit the cache.
	other := spec
	other.Seed = 99
	var otherExec atomic.Int64
	(&Runner{Jobs: 4, Manifest: m2}).Run(other, synthetic(10, &otherExec))
	if got := otherExec.Load(); got != 10*2 {
		t.Fatalf("changed spec reused cache: executed %d runs, want 20", got)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.json")
	m := NewManifest(path)
	spec := Spec{Name: "rt", Platform: "x86", Workload: "leveldb", Locks: []string{"mcs"}, Threads: []int{8}, Runs: 3, Seed: 11}
	rs := (&Runner{Jobs: 2, Manifest: m}).Run(spec, synthetic(5, nil))
	if err := m.Save(); err != nil {
		t.Fatal(err)
	}

	// Schema check: the artifact parses as the documented shape.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		Version int      `json:"version"`
		Specs   []Spec   `json:"specs"`
		Results []Result `json:"results"`
	}
	if err := json.Unmarshal(b, &f); err != nil {
		t.Fatalf("artifact not valid JSON: %v", err)
	}
	if f.Version != SchemaVersion {
		t.Errorf("version %d, want %d", f.Version, SchemaVersion)
	}
	if len(f.Specs) != 1 || !reflect.DeepEqual(f.Specs[0], spec) {
		t.Errorf("artifact specs = %+v, want the one run spec", f.Specs)
	}
	if !reflect.DeepEqual(f.Results, rs) {
		t.Error("artifact results differ from the engine's return value")
	}

	// Round trip through LoadManifest preserves every record.
	m2, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m2.Results(), rs) {
		t.Error("LoadManifest round trip lost or altered records")
	}

	// Corrupt and version-mismatched files are errors, not cache misses.
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); err == nil {
		t.Error("corrupt manifest loaded without error")
	}
	if err := os.WriteFile(path, []byte(`{"version":99,"results":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); err == nil {
		t.Error("version-mismatched manifest loaded without error")
	}
}

func TestRunnerErrorSamples(t *testing.T) {
	spec := Spec{Name: "err", Runs: 3}
	pts := []Point{{
		Key: "lock=broken/threads=2",
		Run: func(seed uint64) Sample { return Sample{Err: "deadlock"} },
	}}
	rs := (&Runner{Jobs: 2}).Run(spec, pts)
	if len(rs[0].Errors) != 3 {
		t.Fatalf("want 3 recorded errors, got %v", rs[0].Errors)
	}
	if rs[0].Tput.Median != 0 {
		t.Errorf("failed runs must report zero throughput, got %v", rs[0].Tput)
	}
}

func TestStats(t *testing.T) {
	vs := []float64{3, 1, 2}
	if m := Median(vs); m != 2 {
		t.Errorf("Median = %v, want 2", m)
	}
	if !reflect.DeepEqual(vs, []float64{3, 1, 2}) {
		t.Error("Median mutated its input")
	}
	// Upper median on even counts, matching the historic medianTput.
	if m := Median([]float64{1, 2, 3, 4}); m != 3 {
		t.Errorf("even-count Median = %v, want 3", m)
	}
	st := Summarize([]float64{2, 4, 6})
	if st.Median != 4 || st.Mean != 4 || st.Min != 2 || st.Max != 6 {
		t.Errorf("Summarize = %+v", st)
	}
	if (Summarize(nil) != Stats{}) {
		t.Error("Summarize(nil) not zero")
	}
}
