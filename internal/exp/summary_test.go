package exp

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestManifestSummary checks the run-level aggregate: fresh points
// contribute wall time and iterations, cached points only counts, and the
// saved artifact carries the same summary.
func TestManifestSummary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.json")
	m := NewManifest(path)
	m.Add(Result{SpecHash: "s", Key: "a", Total: 100, WallMS: 40})
	m.Add(Result{SpecHash: "s", Key: "b", Total: 300, WallMS: 60})
	m.Add(Result{SpecHash: "s", Key: "c", Total: 999, WallMS: 999, Cached: true})
	m.Add(Result{SpecHash: "s", Key: "d", Errors: []string{"deadlock", "deadlock"}})

	sum := m.Summary()
	if sum.Points != 4 || sum.CachedPoints != 1 || sum.Errors != 2 {
		t.Errorf("counts = %+v", sum)
	}
	if sum.WallMSTotal != 100 {
		t.Errorf("WallMSTotal = %v, want 100 (cached point excluded)", sum.WallMSTotal)
	}
	if sum.TotalIters != 400 {
		t.Errorf("TotalIters = %v, want 400", sum.TotalIters)
	}
	if want := 400 / 0.1; sum.ItersPerSec != want {
		t.Errorf("ItersPerSec = %v, want %v", sum.ItersPerSec, want)
	}

	if err := m.Save(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		Version int     `json:"version"`
		Summary Summary `json:"summary"`
	}
	if err := json.Unmarshal(b, &f); err != nil {
		t.Fatal(err)
	}
	if f.Version != SchemaVersion {
		t.Errorf("version = %d, want %d", f.Version, SchemaVersion)
	}
	if f.Summary != sum {
		t.Errorf("saved summary %+v differs from computed %+v", f.Summary, sum)
	}
}

// TestManifestSummaryEmpty: an empty manifest reports zeroes, not NaN.
func TestManifestSummaryEmpty(t *testing.T) {
	m := NewManifest(filepath.Join(t.TempDir(), "results.json"))
	if sum := m.Summary(); sum != (Summary{}) {
		t.Errorf("empty summary = %+v", sum)
	}
}
