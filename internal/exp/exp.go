// Package exp is the repository's experiment engine: one declarative,
// parallel, deterministic sweep runner underneath every figure and CLI
// (DESIGN.md S27).
//
// A Spec names a measurement grid — platform, hierarchy, workload, locks or
// compositions, thread counts, repetition count, base seed. The grid points
// are independent jobs: each owns its simulator instance, so a Runner may
// execute them on a bounded worker pool (the CLIs' -j flag). Per-point seeds
// are derived by stable hashing of (spec hash, point key) *before* any job
// is dispatched, so the measured values — and therefore the CSVs assembled
// from them — are byte-for-byte identical at any parallelism level.
//
// Each point yields a typed Result (spec hash, key, seed, throughput and
// fairness stats, wall time); a Manifest persists the results as a
// results.json artifact next to the CSVs and doubles as the resume cache:
// a rerun skips points whose (spec hash, key) already appear in it.
package exp

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"time"

	"github.com/clof-go/clof/internal/xrand"
)

// SchemaVersion is the results.json artifact schema version.
const SchemaVersion = 1

// Spec declares one experiment grid. All fields are descriptive inputs —
// the hash over them identifies the experiment configuration in the
// artifact, and seeds every point. Widening a Spec (more locks, more
// threads) keeps the untouched points' hashes only if the declarative
// fields are unchanged; changing any field re-runs the whole grid.
type Spec struct {
	// Name is the experiment identifier, e.g. "fig9b" or "chaos".
	Name string `json:"name"`
	// Platform names the simulated machine ("x86", "armv8", "biglittle").
	Platform string `json:"platform,omitempty"`
	// Hierarchy names the hierarchy configuration, when one applies.
	Hierarchy string `json:"hierarchy,omitempty"`
	// Workload names the driving workload ("leveldb", "kyoto", ...).
	Workload string `json:"workload,omitempty"`
	// Locks lists the catalog locks / compositions swept, for provenance.
	Locks []string `json:"locks,omitempty"`
	// Threads is the contention grid.
	Threads []int `json:"threads,omitempty"`
	// Runs is the per-point repetition count (median reported); 0 = 1.
	Runs int `json:"runs,omitempty"`
	// Seed is the experiment's base seed; every point seed derives from it.
	Seed uint64 `json:"seed,omitempty"`
	// Quick marks reduced-grid smoke configurations.
	Quick bool `json:"quick,omitempty"`
	// Notes carries free-form provenance (fault plans, pinning policy...).
	Notes string `json:"notes,omitempty"`
}

// Hash returns the spec's stable identity: FNV-1a/64 over the canonical
// JSON encoding, in hex. Two specs hash equal iff every declarative field
// matches.
func (s Spec) Hash() string {
	return fmt.Sprintf("%016x", s.hash64())
}

func (s Spec) hash64() uint64 {
	b, err := json.Marshal(s)
	if err != nil {
		// Spec contains only marshalable fields; keep the signature clean.
		panic("exp: spec not marshalable: " + err.Error())
	}
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// PointSeed derives the deterministic base seed of one grid point. It mixes
// the spec hash (which covers Spec.Seed) with a hash of the point key, then
// whitens through one SplitMix64 step — execution order never enters.
func PointSeed(s Spec, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return xrand.New(s.hash64() ^ h.Sum64()).Uint64()
}

// Sample is one run's raw measurement at one grid point.
type Sample struct {
	// Throughput in operations per microsecond (the paper's y-axis).
	Throughput float64 `json:"tput"`
	// Jain is the per-thread fairness index of the run.
	Jain float64 `json:"jain,omitempty"`
	// Total is the completed-iteration count.
	Total uint64 `json:"total,omitempty"`
	// Metrics carries experiment-specific scalars (robustness counters,
	// handover gaps, ...); keys must be stable across runs.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Err is a non-empty string when the run failed (deadlock). Failed
	// runs contribute zero throughput, matching the sweeps' historic
	// "report, don't abort" policy.
	Err string `json:"err,omitempty"`
	// Obs optionally carries an internal/obs Report as raw JSON. The engine
	// treats it as opaque: the first run's block is copied onto the point's
	// Result verbatim, so observability data rides the manifest without the
	// engine depending on the obs package (or changing any existing
	// artifact byte when absent).
	Obs json.RawMessage `json:"obs,omitempty"`
}

// Point is one independent grid job: a stable key (unique within its spec)
// and the measurement closure. Run must be safe to call concurrently with
// other points' Run functions — each call owns its simulator.
type Point struct {
	Key string
	Run func(seed uint64) Sample
}

// Result is the persisted record of one measured point.
type Result struct {
	Spec     string `json:"spec"`
	SpecHash string `json:"spec_hash"`
	Key      string `json:"key"`
	Seed     uint64 `json:"seed"`
	Runs     int    `json:"runs"`
	// Tput / Jain summarize the per-run samples.
	Tput Stats `json:"tput"`
	Jain Stats `json:"jain"`
	// Total is the median completed-iteration count.
	Total uint64 `json:"total,omitempty"`
	// Metrics holds the medians of the samples' metric scalars.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Errors lists failed runs' messages (empty on success).
	Errors []string `json:"errors,omitempty"`
	// Obs is the first run's observability block (exp.Sample.Obs), opaque
	// to the engine; empty when the point was measured without observation.
	Obs json.RawMessage `json:"obs,omitempty"`
	// WallMS is the host wall time spent measuring this point (all runs).
	// It is the one nondeterministic field; nothing derived from a Result
	// may depend on it.
	WallMS float64 `json:"wall_ms"`
	// Cached marks results served from the resume manifest.
	Cached bool `json:"cached,omitempty"`
}

// Throughput returns the point's reported value: the median over runs.
func (r Result) Throughput() float64 { return r.Tput.Median }

// Runner executes a spec's points on a bounded worker pool.
type Runner struct {
	// Jobs is the pool width; <= 0 means GOMAXPROCS.
	Jobs int
	// Manifest, when non-nil, is consulted before running a point (resume)
	// and receives every fresh result (artifact).
	Manifest *Manifest
	// Progress, if non-nil, receives one line per completed point. Calls
	// are serialized by the runner.
	Progress func(string)
}

// Run measures every point of the spec and returns the results in point
// order. Output is independent of Jobs: seeds are derived before dispatch
// and each point's simulator is isolated, so only wall time changes with
// parallelism.
func (r *Runner) Run(spec Spec, points []Point) []Result {
	jobs := r.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	runs := spec.Runs
	if runs <= 0 {
		runs = 1
	}
	specHash := spec.Hash()
	if r.Manifest != nil {
		r.Manifest.AddSpec(spec)
	}

	out := make([]Result, len(points))
	var pending []int
	for i, p := range points {
		if r.Manifest != nil {
			if res, ok := r.Manifest.Lookup(specHash, p.Key); ok {
				res.Cached = true
				out[i] = res
				continue
			}
		}
		pending = append(pending, i)
	}

	var mu sync.Mutex
	done := 0
	report := func(key string) {
		if r.Progress == nil {
			return
		}
		mu.Lock()
		done++
		r.Progress(fmt.Sprintf("%s: %s (%d/%d)", spec.Name, key, done, len(pending)))
		mu.Unlock()
	}

	ch := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				out[i] = r.measure(spec, specHash, points[i], runs)
				report(points[i].Key)
			}
		}()
	}
	for _, i := range pending {
		ch <- i
	}
	close(ch)
	wg.Wait()

	if r.Manifest != nil {
		for _, i := range pending {
			r.Manifest.Add(out[i])
		}
	}
	return out
}

// measure executes all runs of one point and summarizes them.
func (r *Runner) measure(spec Spec, specHash string, p Point, runs int) Result {
	base := PointSeed(spec, p.Key)
	start := time.Now()
	res := Result{
		Spec:     spec.Name,
		SpecHash: specHash,
		Key:      p.Key,
		Seed:     base,
		Runs:     runs,
	}
	seeds := xrand.New(base)
	tputs := make([]float64, 0, runs)
	jains := make([]float64, 0, runs)
	totals := make([]float64, 0, runs)
	metricAcc := map[string][]float64{}
	for k := 0; k < runs; k++ {
		s := p.Run(seeds.Uint64())
		if s.Err != "" {
			res.Errors = append(res.Errors, s.Err)
		}
		tputs = append(tputs, s.Throughput)
		jains = append(jains, s.Jain)
		totals = append(totals, float64(s.Total))
		for name, v := range s.Metrics {
			metricAcc[name] = append(metricAcc[name], v)
		}
		if res.Obs == nil && s.Obs != nil {
			res.Obs = s.Obs
		}
	}
	res.Tput = Summarize(tputs)
	res.Jain = Summarize(jains)
	res.Total = uint64(Median(totals))
	if len(metricAcc) > 0 {
		res.Metrics = make(map[string]float64, len(metricAcc))
		for name, vs := range metricAcc {
			res.Metrics[name] = Median(vs)
		}
	}
	res.WallMS = float64(time.Since(start)) / 1e6
	return res
}
