package exp

import "sort"

// Stats summarizes a set of per-run samples. The Median is the value every
// sweep reports (the CSVs' cell); Min/Max/Mean are provenance for the
// artifact.
type Stats struct {
	Median float64 `json:"median"`
	Mean   float64 `json:"mean,omitempty"`
	Min    float64 `json:"min,omitempty"`
	Max    float64 `json:"max,omitempty"`
}

// Median returns the upper median of vs (0 when empty) without mutating the
// input. The upper median matches the historic medianTput helper the
// figures and bench CLIs used, so refactored sweeps reproduce the same
// per-point values for a given sample set.
func Median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// Summarize computes the full Stats of vs (zero Stats when empty).
func Summarize(vs []float64) Stats {
	if len(vs) == 0 {
		return Stats{}
	}
	st := Stats{Median: Median(vs), Min: vs[0], Max: vs[0]}
	var sum float64
	for _, v := range vs {
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
		sum += v
	}
	st.Mean = sum / float64(len(vs))
	return st
}
