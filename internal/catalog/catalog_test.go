package catalog

import (
	"strings"
	"testing"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/topo"
)

// TestCatalogConstructsEverywhere: every entry builds and performs one
// uncontended acquire/release on both evaluation platforms.
func TestCatalogConstructsEverywhere(t *testing.T) {
	for _, m := range []*topo.Machine{topo.X86Server(), topo.Armv8Server()} {
		for _, e := range Locks() {
			l := e.New(m)
			p := lockapi.NewNativeProc(0)
			c := l.NewCtx()
			l.Acquire(p, c)
			l.Release(p, c)
		}
	}
}

func TestCatalogOrderStable(t *testing.T) {
	a, b := Names(), Names()
	if len(a) == 0 {
		t.Fatal("empty catalog")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("catalog order unstable at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestCatalogNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, n := range Names() {
		if seen[n] {
			t.Errorf("duplicate catalog name %q", n)
		}
		seen[n] = true
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("mcs"); !ok {
		t.Error("mcs missing from catalog")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("bogus name resolved")
	}
}

func TestLookup(t *testing.T) {
	e, err := Lookup("mcs")
	if err != nil || e.Name != "mcs" {
		t.Errorf("Lookup(mcs) = %v, %v", e.Name, err)
	}
	_, err = Lookup("nope")
	if err == nil {
		t.Fatal("Lookup(nope) did not fail")
	}
	// The error must name the catalog so CLI users can self-correct.
	if !strings.Contains(err.Error(), "mcs") || !strings.Contains(err.Error(), "nope") {
		t.Errorf("Lookup error unhelpful: %v", err)
	}
}

func TestByFamily(t *testing.T) {
	for _, fam := range Families() {
		es := ByFamily(fam)
		if len(es) == 0 {
			t.Errorf("family %q has no entries", fam)
		}
		for _, e := range es {
			if e.Family != fam {
				t.Errorf("ByFamily(%q) returned %q of family %q", fam, e.Name, e.Family)
			}
		}
	}
	if es := ByFamily("nope"); es != nil {
		t.Errorf("bogus family resolved to %d entries", len(es))
	}
}

func TestSelect(t *testing.T) {
	all, err := Select(nil)
	if err != nil || len(all) != len(Locks()) {
		t.Fatalf("empty Select = %d entries, %v; want full catalog", len(all), err)
	}
	es, err := Select([]string{"mcs", "family:clof", "mcs"})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"mcs": true}
	for _, e := range ByFamily("clof") {
		want[e.Name] = true
	}
	if len(es) != len(want) {
		t.Errorf("Select returned %d entries, want %d (deduplicated)", len(es), len(want))
	}
	// Catalog order must be preserved regardless of selector order.
	order := map[string]int{}
	for i, n := range Names() {
		order[n] = i
	}
	for i := 1; i < len(es); i++ {
		if order[es[i-1].Name] >= order[es[i].Name] {
			t.Errorf("Select output out of catalog order: %s before %s", es[i-1].Name, es[i].Name)
		}
	}
	if _, err := Select([]string{"family:nope"}); err == nil {
		t.Error("bogus family selector did not fail")
	}
	if _, err := Select([]string{"nope"}); err == nil {
		t.Error("bogus name selector did not fail")
	}
}

// TestFamiliesCoverIssueMinimum: the chaos sweep needs >= 3 families.
func TestFamiliesCoverIssueMinimum(t *testing.T) {
	if f := Families(); len(f) < 3 {
		t.Fatalf("catalog has %d families, need >= 3: %v", len(f), f)
	}
}
