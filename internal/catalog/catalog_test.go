package catalog

import (
	"testing"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/topo"
)

// TestCatalogConstructsEverywhere: every entry builds and performs one
// uncontended acquire/release on both evaluation platforms.
func TestCatalogConstructsEverywhere(t *testing.T) {
	for _, m := range []*topo.Machine{topo.X86Server(), topo.Armv8Server()} {
		for _, e := range Locks() {
			l := e.New(m)
			p := lockapi.NewNativeProc(0)
			c := l.NewCtx()
			l.Acquire(p, c)
			l.Release(p, c)
		}
	}
}

func TestCatalogOrderStable(t *testing.T) {
	a, b := Names(), Names()
	if len(a) == 0 {
		t.Fatal("empty catalog")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("catalog order unstable at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestCatalogNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, n := range Names() {
		if seen[n] {
			t.Errorf("duplicate catalog name %q", n)
		}
		seen[n] = true
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("mcs"); !ok {
		t.Error("mcs missing from catalog")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("bogus name resolved")
	}
}

// TestFamiliesCoverIssueMinimum: the chaos sweep needs >= 3 families.
func TestFamiliesCoverIssueMinimum(t *testing.T) {
	if f := Families(); len(f) < 3 {
		t.Fatalf("catalog has %d families, need >= 3: %v", len(f), f)
	}
}
