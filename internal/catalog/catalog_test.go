package catalog

import (
	"strings"
	"testing"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/topo"
)

// TestCatalogConstructsEverywhere: every entry builds and performs one
// uncontended acquire/release on both evaluation platforms.
func TestCatalogConstructsEverywhere(t *testing.T) {
	for _, m := range []*topo.Machine{topo.X86Server(), topo.Armv8Server()} {
		for _, e := range Locks() {
			l := e.New(m)
			p := lockapi.NewNativeProc(0)
			c := l.NewCtx()
			l.Acquire(p, c)
			l.Release(p, c)
		}
	}
}

func TestCatalogOrderStable(t *testing.T) {
	a, b := Names(), Names()
	if len(a) == 0 {
		t.Fatal("empty catalog")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("catalog order unstable at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestCatalogNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, n := range Names() {
		if seen[n] {
			t.Errorf("duplicate catalog name %q", n)
		}
		seen[n] = true
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("mcs"); !ok {
		t.Error("mcs missing from catalog")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("bogus name resolved")
	}
}

func TestLookup(t *testing.T) {
	e, err := Lookup("mcs")
	if err != nil || e.Name != "mcs" {
		t.Errorf("Lookup(mcs) = %v, %v", e.Name, err)
	}
	_, err = Lookup("nope")
	if err == nil {
		t.Fatal("Lookup(nope) did not fail")
	}
	// The error must name the catalog so CLI users can self-correct.
	if !strings.Contains(err.Error(), "mcs") || !strings.Contains(err.Error(), "nope") {
		t.Errorf("Lookup error unhelpful: %v", err)
	}
}

func TestByFamily(t *testing.T) {
	for _, fam := range Families() {
		es := ByFamily(fam)
		if len(es) == 0 {
			t.Errorf("family %q has no entries", fam)
		}
		for _, e := range es {
			if e.Family != fam {
				t.Errorf("ByFamily(%q) returned %q of family %q", fam, e.Name, e.Family)
			}
		}
	}
	if es := ByFamily("nope"); es != nil {
		t.Errorf("bogus family resolved to %d entries", len(es))
	}
}

func TestSelect(t *testing.T) {
	all, err := Select(nil)
	if err != nil || len(all) != len(Locks()) {
		t.Fatalf("empty Select = %d entries, %v; want full catalog", len(all), err)
	}
	es, err := Select([]string{"mcs", "family:clof", "mcs"})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"mcs": true}
	for _, e := range ByFamily("clof") {
		want[e.Name] = true
	}
	if len(es) != len(want) {
		t.Errorf("Select returned %d entries, want %d (deduplicated)", len(es), len(want))
	}
	// Catalog order must be preserved regardless of selector order.
	order := map[string]int{}
	for i, n := range Names() {
		order[n] = i
	}
	for i := 1; i < len(es); i++ {
		if order[es[i-1].Name] >= order[es[i].Name] {
			t.Errorf("Select output out of catalog order: %s before %s", es[i-1].Name, es[i].Name)
		}
	}
	if _, err := Select([]string{"family:nope"}); err == nil {
		t.Error("bogus family selector did not fail")
	}
	if _, err := Select([]string{"nope"}); err == nil {
		t.Error("bogus name selector did not fail")
	}
}

// TestLookupDynamicWrappers: wrapper-prefixed names outside the static list
// resolve by composing seq:/cr: over any resolvable inner lock, in either
// stacking order, and the built locks carry the right capabilities.
func TestLookupDynamicWrappers(t *testing.T) {
	m := topo.X86Server()
	for _, name := range []string{"seq:rwlock", "seq:mcs", "cr:seq:tkt", "seq:cr:tkt", "cr:cr:mcs"} {
		e, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", name, err)
		}
		if e.Name != name {
			t.Errorf("Lookup(%s) named itself %q", name, e.Name)
		}
		l := e.New(m)
		p := lockapi.NewNativeProc(0)
		c := l.NewCtx()
		l.Acquire(p, c)
		l.Release(p, c)
		if strings.HasPrefix(name, "seq:") {
			if _, ok := l.(lockapi.SeqReader); !ok {
				t.Errorf("%s lost the SeqReader capability", name)
			}
		}
	}
	// The seqlock wrapper preserves the inner reader-writer path.
	e, _ := Lookup("seq:rwlock")
	if _, ok := e.New(m).(lockapi.RWLocker); !ok {
		t.Error("seq:rwlock lost the RWLocker capability")
	}
	// A bogus inner lock fails no matter how it is wrapped.
	for _, name := range []string{"seq:nope", "cr:seq:nope", "seq:"} {
		if _, err := Lookup(name); err == nil {
			t.Errorf("Lookup(%s) resolved a bogus inner lock", name)
		}
	}
}

// TestSelectWrapperFamilies: satellite regression — mixing family filters
// with dynamic wrapper-composed names must dedupe and keep every resolved
// entry in a deterministic order (static catalog entries in catalog order,
// then dynamic names in first-selected order). The pre-fix Select dropped
// dynamic names on the floor.
func TestSelectWrapperFamilies(t *testing.T) {
	sel := []string{"seq:rwlock", "family:seq", "cr:seq:tkt", "seq:tkt", "seq:rwlock"}
	es, err := Select(sel)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range es {
		names = append(names, e.Name)
	}
	// family:seq contributes the static entries; seq:tkt is one of them
	// (deduped); the two dynamic names follow in first-selected order.
	want := []string{"seq:tkt", "seq:clof:tkt-tkt-tkt-tkt", "seq:rwlock", "cr:seq:tkt"}
	if strings.Join(names, " ") != strings.Join(want, " ") {
		t.Fatalf("Select(%v) = %v, want %v", sel, names, want)
	}
	// Deterministic: a second resolution is identical.
	es2, err := Select(sel)
	if err != nil {
		t.Fatal(err)
	}
	for i := range es {
		if es[i].Name != es2[i].Name {
			t.Fatalf("Select unstable at %d: %q vs %q", i, es[i].Name, es2[i].Name)
		}
	}
	// Every selected entry constructs.
	m := topo.X86Server()
	for _, e := range es {
		l := e.New(m)
		p := lockapi.NewNativeProc(0)
		c := l.NewCtx()
		l.Acquire(p, c)
		l.Release(p, c)
	}
}

// TestFamiliesCoverIssueMinimum: the chaos sweep needs >= 3 families.
func TestFamiliesCoverIssueMinimum(t *testing.T) {
	if f := Families(); len(f) < 3 {
		t.Fatalf("catalog has %d families, need >= 3: %v", len(f), f)
	}
}
