// Package catalog enumerates the repository's lock families behind one
// machine-parameterized constructor list, for harnesses that sweep "every
// lock" — the chaos CLI (cmd/clof-chaos), the trylock conformance suite
// (internal/locktest), and future benchmark drivers.
//
// It exists as a separate package (rather than in locktest) because the
// lock packages' own tests import locktest: a catalog inside locktest would
// close an import cycle through internal/locks et al.
//
// The catalog order is fixed and documented: basics first (sorted by name),
// then the NUMA-aware singles, then the hierarchical families. Sweeps that
// iterate in catalog order are therefore deterministic without sorting.
package catalog

import (
	"fmt"
	"sort"
	"strings"

	"github.com/clof-go/clof/internal/clof"
	"github.com/clof-go/clof/internal/cna"
	"github.com/clof-go/clof/internal/cohort"
	"github.com/clof-go/clof/internal/cr"
	"github.com/clof-go/clof/internal/hmcs"
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/rwlock"
	"github.com/clof-go/clof/internal/seqlock"
	"github.com/clof-go/clof/internal/shfllock"
	"github.com/clof-go/clof/internal/topo"
)

// Entry is one catalog lock: a stable name, the family it belongs to, and a
// constructor taking the target machine (NUMA-oblivious locks ignore it).
type Entry struct {
	// Name identifies the lock in reports, e.g. "mcs", "c-bo-mcs",
	// "clof:tkt-clh-tkt-tkt".
	Name string
	// Family groups entries for filtering: "basic", "hbo", "cna", "shfl",
	// "rwlock", "hmcs", "cohort", "clof", "cr", "seq".
	Family string
	// New builds a fresh, unheld instance for machine m.
	New func(m *topo.Machine) lockapi.Lock
}

// hierFor returns the paper's hierarchy configuration for m's architecture
// (the 4-level configurations of §5.2.1).
func hierFor(m *topo.Machine) *topo.Hierarchy {
	if m.Arch == topo.X86 {
		return topo.MustHierarchy(m, topo.Core, topo.CacheGroup, topo.NUMA, topo.System)
	}
	return topo.MustHierarchy(m, topo.CacheGroup, topo.NUMA, topo.Package, topo.System)
}

// compFor resolves a composition string against the catalog machine.
func compFor(notation string) clof.Composition {
	comp, err := clof.ParseComposition(notation)
	if err != nil {
		panic(err)
	}
	return comp
}

// Locks returns the full catalog in its fixed order. Each call returns
// fresh Entry values; constructors may be called many times.
func Locks() []Entry {
	var out []Entry
	// Basic NUMA-oblivious locks, in locks.Names() (sorted) order.
	for _, name := range locks.Names() {
		t := locks.MustType(name)
		out = append(out, Entry{
			Name:   t.Name,
			Family: "basic",
			New:    func(*topo.Machine) lockapi.Lock { return t.New() },
		})
	}
	// NUMA-aware single-level-aware baselines.
	out = append(out,
		Entry{Name: "hbo", Family: "hbo", New: func(m *topo.Machine) lockapi.Lock { return locks.NewHBO(m) }},
		Entry{Name: "cna", Family: "cna", New: func(m *topo.Machine) lockapi.Lock { return cna.New(m) }},
		Entry{Name: "shfllock", Family: "shfl", New: func(m *topo.Machine) lockapi.Lock { return shfllock.New(m) }},
		// The NUMA-aware reader-writer lock, adapted to the Lock interface:
		// its exclusive path is a proper mutex (writers through MCS, then
		// reader drain), and it additionally satisfies lockapi.RWLocker, so
		// the sharded store's read paths take shared acquisitions on it.
		Entry{Name: "rwlock", Family: "rwlock", New: func(m *topo.Machine) lockapi.Lock {
			return rwlock.Adapt(rwlock.New(m, topo.CacheGroup, locks.NewMCS()))
		}},
	)
	// Hierarchical baselines and CLoF compositions.
	out = append(out,
		Entry{Name: "hmcs<4>", Family: "hmcs", New: func(m *topo.Machine) lockapi.Lock {
			return hmcs.Must(hierFor(m))
		}},
		Entry{Name: "c-bo-mcs", Family: "cohort", New: func(m *topo.Machine) lockapi.Lock {
			return cohort.NewBOMCS(m)
		}},
		Entry{Name: "c-tkt-tkt", Family: "cohort", New: func(m *topo.Machine) lockapi.Lock {
			return cohort.NewTKTTKT(m)
		}},
		Entry{Name: "clof:tkt-tkt-tkt-tkt", Family: "clof", New: func(m *topo.Machine) lockapi.Lock {
			return clof.Must(hierFor(m), compFor("tkt-tkt-tkt-tkt"))
		}},
		Entry{Name: "clof:mcs-mcs-mcs-mcs", Family: "clof", New: func(m *topo.Machine) lockapi.Lock {
			return clof.Must(hierFor(m), compFor("mcs-mcs-mcs-mcs"))
		}},
		Entry{Name: "clof:tkt-clh-tkt-tkt", Family: "clof", New: func(m *topo.Machine) lockapi.Lock {
			return clof.Must(hierFor(m), compFor("tkt-clh-tkt-tkt"))
		}},
		Entry{Name: "clof:tas-fastpath", Family: "clof", New: func(m *topo.Machine) lockapi.Lock {
			return clof.Must(hierFor(m), compFor("tkt-tkt-tkt-tkt"), clof.WithTASFastPath())
		}},
	)
	// Concurrency-restricted variants (internal/cr): the Dice & Kogan
	// admission-control combinator over a global-spinning basic lock, a
	// local-spinning one, and a full CLoF composition — the wrapper is
	// generic, these three cover its interaction space (global spin, queue
	// handoff, hierarchical handoff).
	out = append(out,
		Entry{Name: "cr:tkt", Family: "cr", New: func(m *topo.Machine) lockapi.Lock {
			return cr.Restrict(m, locks.NewTicket(), cr.Opts{})
		}},
		Entry{Name: "cr:mcs", Family: "cr", New: func(m *topo.Machine) lockapi.Lock {
			return cr.Restrict(m, locks.NewMCS(), cr.Opts{})
		}},
		Entry{Name: "cr:clof:tkt-tkt-tkt-tkt", Family: "cr", New: func(m *topo.Machine) lockapi.Lock {
			return cr.Restrict(m, clof.Must(hierFor(m), compFor("tkt-tkt-tkt-tkt")), cr.Opts{})
		}},
	)
	// Seqlock-wrapped variants (internal/seqlock): the writer-side version
	// bump over a basic lock and over the full CLoF composition — the seq:
	// family whose lockapi.SeqReader capability the sharded store's
	// optimistic read path keys on. Other combinations resolve dynamically
	// (see dynamic); these two are the swept representatives.
	out = append(out,
		Entry{Name: "seq:tkt", Family: "seq", New: func(*topo.Machine) lockapi.Lock {
			return seqlock.Wrap(locks.NewTicket(), seqlock.Opts{})
		}},
		Entry{Name: "seq:clof:tkt-tkt-tkt-tkt", Family: "seq", New: func(m *topo.Machine) lockapi.Lock {
			return seqlock.Wrap(clof.Must(hierFor(m), compFor("tkt-tkt-tkt-tkt")), seqlock.Opts{})
		}},
	)
	return out
}

// ByName returns the named entry.
func ByName(name string) (Entry, bool) {
	for _, e := range Locks() {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// Lookup returns the named entry, or an error that names the full catalog —
// the one place sweep CLIs resolve user-supplied lock names. Names the
// static list doesn't carry still resolve when they compose the wrapper
// families over a resolvable inner lock ("seq:rwlock", "cr:seq:tkt", ...).
func Lookup(name string) (Entry, error) {
	if e, ok := ByName(name); ok {
		return e, nil
	}
	if e, ok := dynamic(name); ok {
		return e, nil
	}
	return Entry{}, fmt.Errorf("unknown lock %q (catalog: %s; wrapper prefixes seq:/cr: compose over any entry)",
		name, strings.Join(Names(), ", "))
}

// dynamic resolves wrapper-composed names absent from the static list: a
// "seq:" or "cr:" prefix over any resolvable inner name, recursively, so
// every wrapper stacking order is nameable without a catalog entry per
// combination. The static entries win first (Lookup checks ByName before
// this), keeping the swept representatives canonical.
func dynamic(name string) (Entry, bool) {
	wrappers := []struct {
		prefix, family string
		wrap           func(m *topo.Machine, inner lockapi.Lock) lockapi.Lock
	}{
		{"seq:", "seq", func(_ *topo.Machine, inner lockapi.Lock) lockapi.Lock {
			return seqlock.Wrap(inner, seqlock.Opts{})
		}},
		{"cr:", "cr", func(m *topo.Machine, inner lockapi.Lock) lockapi.Lock {
			return cr.Restrict(m, inner, cr.Opts{})
		}},
	}
	for _, w := range wrappers {
		rest, ok := strings.CutPrefix(name, w.prefix)
		if !ok {
			continue
		}
		inner, ok := ByName(rest)
		if !ok {
			inner, ok = dynamic(rest)
		}
		if !ok {
			return Entry{}, false
		}
		w := w
		return Entry{Name: name, Family: w.family, New: func(m *topo.Machine) lockapi.Lock {
			return w.wrap(m, inner.New(m))
		}}, true
	}
	return Entry{}, false
}

// ByFamily returns the entries of one family tag, in catalog order.
func ByFamily(family string) []Entry {
	var out []Entry
	for _, e := range Locks() {
		if e.Family == family {
			out = append(out, e)
		}
	}
	return out
}

// Select resolves selectors — catalog names, wrapper-composed names, or
// "family:<tag>" filters — to deduplicated entries in a deterministic
// order: static catalog entries first in catalog order, then dynamic
// (wrapper-composed) names in first-selected order. An empty selector list
// yields the full catalog.
//
// The two-tier ordering is what lets the wrapper families compose with the
// rest of a sweep: the earlier implementation filtered a want-set against
// the static listing, which silently dropped any dynamic name ("seq:rwlock",
// "cr:seq:tkt") that Lookup had happily resolved.
func Select(selectors []string) ([]Entry, error) {
	if len(selectors) == 0 {
		return Locks(), nil
	}
	var resolved []Entry
	for _, sel := range selectors {
		if fam, ok := strings.CutPrefix(sel, "family:"); ok {
			es := ByFamily(fam)
			if len(es) == 0 {
				return nil, fmt.Errorf("unknown lock family %q (families: %s)", fam, strings.Join(Families(), ", "))
			}
			resolved = append(resolved, es...)
			continue
		}
		e, err := Lookup(sel)
		if err != nil {
			return nil, err
		}
		resolved = append(resolved, e)
	}
	order := map[string]int{}
	for i, n := range Names() {
		order[n] = i
	}
	var static, dyn []Entry
	seen := map[string]bool{}
	for _, e := range resolved {
		if seen[e.Name] {
			continue
		}
		seen[e.Name] = true
		if _, ok := order[e.Name]; ok {
			static = append(static, e)
		} else {
			dyn = append(dyn, e)
		}
	}
	sort.SliceStable(static, func(i, j int) bool { return order[static[i].Name] < order[static[j].Name] })
	return append(static, dyn...), nil
}

// Names lists the catalog names in catalog order.
func Names() []string {
	ls := Locks()
	out := make([]string, len(ls))
	for i, e := range ls {
		out[i] = e.Name
	}
	return out
}

// Families lists the catalog's family tags in catalog order (deduplicated).
func Families() []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range Locks() {
		if !seen[e.Family] {
			seen[e.Family] = true
			out = append(out, e.Family)
		}
	}
	return out
}
