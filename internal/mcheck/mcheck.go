// Package mcheck is an exhaustive-interleaving model checker for lock
// algorithms written against lockapi.Proc. It is this repository's
// substitute for the paper's TLA+/TLC and GenMC/VSync toolchain (§4.2):
// the same properties are checked — mutual exclusion, deadlock freedom,
// spinloop termination, and (per program) data invariants and bounded
// bypass — on the same small thread counts, including the CLoF induction
// step and the negative results (inverted release order, missing release
// barrier, TTAS unfairness).
//
// # Exploration
//
// The checker performs stateless depth-first search over schedules: each
// schedule prefix is replayed on a fresh program instance, and every
// enabled choice (run a thread's next shared-memory operation, or flush one
// store-buffer entry) forks the search. Two reductions keep this tractable:
//
//   - Await collapsing: a Spin() after a memory operation turns the spin
//     loop into an await — the thread is disabled until the watched cell is
//     written, so failed polls are never scheduled. A spin loop that can
//     never be satisfied therefore surfaces as a deadlock, which is exactly
//     the spinloop-termination property.
//   - State deduplication: a 64+64-bit fingerprint of (per-thread history,
//     status, buffers; per-cell last-writer and value) prunes re-explored
//     states. Threads are deterministic, so equal fingerprints imply equal
//     futures. Pruning on a hash admits a (vanishingly unlikely) collision;
//     unlike GenMC we do not claim certified soundness, and we say so here
//     rather than in fine print.
//
// # Memory models
//
// SC interleaves operations atomically. TSO gives every thread a FIFO store
// buffer with nondeterministic flushes (store→load reordering). WMM
// additionally lets Relaxed stores flush out of order — only Release stores
// wait for their predecessors — which is the Armv8-style behavior that
// breaks under-fenced locks (§3.3).
//
// Load reordering is opt-in via Config.StaleLoads (WMM only): a Relaxed load
// of a cell the thread has read before may nondeterministically return the
// thread's last-seen value instead of the current one — the two-value
// stale-read approximation of Armv8 load buffering. It respects per-location
// coherence (a thread never travels backwards past its own last observation)
// and is discharged by Acquire/SeqCst loads, non-Relaxed fences, and RMWs,
// which discard the thread's stale view. This is the relaxation that catches
// under-fenced *readers* — seqlock validation without its Acquire fence
// (SeqlockProgram) — where the store-ordering models cannot: the bug is a
// load observing the past, not a store arriving late. Programs whose bugs
// are store-ordering bugs do not need it, and it is off by default because
// each possible stale read forks the search.
package mcheck

import (
	"fmt"

	"github.com/clof-go/clof/internal/lockapi"
)

// Mode selects the memory model.
type Mode int

const (
	// SC is sequential consistency: operations take effect atomically in
	// schedule order.
	SC Mode = iota
	// TSO adds per-thread FIFO store buffers (x86-like).
	TSO
	// WMM additionally allows Relaxed stores to flush out of order;
	// Release stores still wait for all earlier buffered stores
	// (Armv8-store-ordering-like).
	WMM
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case SC:
		return "sc"
	case TSO:
		return "tso"
	default:
		return "wmm"
	}
}

// Config bounds the exploration.
type Config struct {
	Mode Mode
	// MaxDepth bounds schedule length; exceeding it reports potential
	// non-termination. Default 4000.
	MaxDepth int
	// MaxStates budgets distinct explored states (default 2,000,000);
	// exceeding it sets Result.Truncated.
	MaxStates int
	// FairnessK, when > 0, reports a violation if some thread is bypassed
	// K times while continuously waiting (bounded-bypass check). The
	// per-thread bypass counters become part of the state fingerprint, so
	// expect a correspondingly larger state space.
	FairnessK int
	// StaleLoads, under WMM, additionally lets a Relaxed load return the
	// thread's last-seen value of the cell instead of the current one (see
	// the package comment, "Memory models"). Per-thread stale views join the
	// state fingerprint, so expect a larger state space. Ignored under
	// SC/TSO, where loads are always current.
	StaleLoads bool
	// POR enables dynamic partial-order reduction (see por.go): same
	// verdicts as exhaustive exploration over fewer states, at the price
	// of giving up state-fingerprint pruning (incompatible with
	// backtrack-set computation) — witnesses may differ between the two
	// searches. The reduction pays off on SC compositions (independent
	// per-level lock cells commute); under TSO/WMM the stateless search
	// must pay one replay per Mazurkiewicz trace, which for queue locks
	// can exceed the deduped exhaustive search's replay count — verdicts
	// stay identical, wall time may not improve. Ignored (exhaustive
	// fallback) when StaleLoads is active, whose mid-operation forks the
	// footprint protocol does not cover.
	POR bool
}

// Result summarizes a check.
type Result struct {
	// OK is true when no violation was found and the search was not
	// truncated.
	OK bool
	// Violation describes the first property violation found ("" if none).
	Violation string
	// Witness is the schedule prefix leading to the violation.
	Witness []Choice
	// Executions is the number of replays performed.
	Executions int
	// States is the number of distinct states explored.
	States int
	// MaxDepthSeen is the longest schedule explored.
	MaxDepthSeen int
	// Truncated reports that a budget was exhausted before exhaustion of
	// the state space.
	Truncated bool
	// Reduced reports that the partial-order-reduced search produced this
	// result (Config.POR honored; false on the StaleLoads fallback).
	Reduced bool
}

// Choice is one scheduling decision: run thread TID's pending operation, or
// (Flush >= 0) flush that index of TID's store buffer. Stale resolves a
// pending stale-read fork (Config.StaleLoads): true delivers the thread's
// last-seen value, false the current one.
type Choice struct {
	TID   int
	Flush int
	Stale bool
}

// String renders the choice compactly for counterexample traces.
func (c Choice) String() string {
	if c.Flush >= 0 {
		return fmt.Sprintf("t%d.flush[%d]", c.TID, c.Flush)
	}
	if c.Stale {
		return fmt.Sprintf("t%d.stale", c.TID)
	}
	return fmt.Sprintf("t%d", c.TID)
}

// Program is a finite concurrent program to verify.
type Program struct {
	Name string
	// Make builds a fresh instance: one body per thread. Bodies perform
	// all shared accesses through the provided Proc and must be
	// deterministic given their observation sequence.
	Make func() []func(p *Proc)
	// Final, if non-nil, validates the quiesced final state (all threads
	// done, all buffers flushed) and returns a violation message or "".
	Final func(read func(c *lockapi.Cell) uint64) string
	// ExpectFair marks the program for the bounded-bypass check (used with
	// Config.FairnessK).
	ExpectFair bool
}

// Check explores prog under cfg.
func Check(prog Program, cfg Config) Result {
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 4000
	}
	if cfg.MaxStates == 0 {
		cfg.MaxStates = 2_000_000
	}
	if cfg.POR && !(cfg.StaleLoads && cfg.Mode == WMM) {
		return checkPOR(prog, cfg)
	}
	c := &checker{prog: prog, cfg: cfg, visited: make(map[fingerprint]struct{})}
	c.explore(nil)
	res := Result{
		Violation:    c.violation,
		Witness:      c.witness,
		Executions:   c.execs,
		States:       len(c.visited),
		MaxDepthSeen: c.maxDepth,
		Truncated:    c.truncated,
	}
	res.OK = res.Violation == "" && !res.Truncated
	return res
}

// CheckGuided runs ONE execution of prog under an explicit scheduling
// policy instead of exploring all interleavings: at every step, pick
// receives the step index and the enabled transitions and returns the one
// to take (it must return an element of enabled). The run ends at the first
// violation, at quiescence (all threads done, Final validated), or at
// cfg.MaxDepth.
//
// This is the tool for properties whose witness schedules exhaustive search
// cannot reach within budget. A bypass/starvation witness needs the victim
// to announce its wait *before* the bypassers run, but depth-first search
// backtracks from the end of the schedule, so witness prefixes — which
// deviate from the default exploration order at the very beginning — are
// the last thing it visits. A guided run demonstrates the witness directly
// on the same executor and monitors as Check: the schedule is validated
// step by step, and the reported Violation comes from the same bounded-
// bypass/exclusion/deadlock machinery, so a guided conviction is exactly as
// trustworthy as an explored one — it just does not claim exhaustiveness.
func CheckGuided(prog Program, cfg Config, pick func(step int, enabled []Choice) Choice) Result {
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 4000
	}
	ex := newExec(prog, cfg)
	defer ex.shutdown()
	res := Result{Executions: 1}
	var schedule []Choice
	for {
		if ex.violation != "" {
			res.Violation = ex.violation
			res.Witness = schedule
			return res
		}
		if ex.allDone() {
			if prog.Final != nil {
				if msg := prog.Final(func(cl *lockapi.Cell) uint64 { return ex.cell(cl).value }); msg != "" {
					res.Violation = "final state: " + msg
					res.Witness = schedule
					return res
				}
			}
			res.OK = true
			return res
		}
		enabled := ex.enabledChoices()
		if len(enabled) == 0 {
			res.Violation = "deadlock (threads blocked with no enabled transition)"
			res.Witness = schedule
			return res
		}
		if len(schedule) >= cfg.MaxDepth {
			res.Truncated = true
			return res
		}
		ch := pick(len(schedule), enabled)
		if ch.Flush >= 0 {
			ex.flush(ch.TID, ch.Flush)
		} else {
			ex.step(ch.TID, ch.Stale)
		}
		schedule = append(schedule, ch)
		res.MaxDepthSeen = len(schedule)
	}
}

// RoundRobin is a CheckGuided policy that rotates fairly through the
// enabled threads: each step runs the enabled choice with the smallest
// thread id strictly greater (modulo wrap-around) than the last scheduled
// one, preferring a thread's pending operation over its buffer flushes.
// Threads parked in an await (spin loop on an unchanged cell) are not
// enabled and are skipped automatically — so a round-robin run of a lock
// program is the canonical "fair scheduler" execution, and a starvation
// found under it is a starvation the scheduler cannot be blamed for.
func RoundRobin() func(step int, enabled []Choice) Choice {
	last := -1
	return func(_ int, enabled []Choice) Choice {
		best := enabled[0]
		bestKey := -1
		for _, ch := range enabled {
			if ch.Flush >= 0 {
				continue
			}
			key := ch.TID - last - 1
			if key < 0 {
				key += 1 << 30
			}
			if bestKey == -1 || key < bestKey {
				best, bestKey = ch, key
			}
		}
		if best.Flush < 0 {
			last = best.TID
		}
		return best
	}
}

type fingerprint [2]uint64

type checker struct {
	prog      Program
	cfg       Config
	visited   map[fingerprint]struct{}
	execs     int
	maxDepth  int
	violation string
	witness   []Choice
	truncated bool
}

func (c *checker) explore(prefix []Choice) {
	if c.violation != "" || c.truncated {
		return
	}
	c.execs++
	if len(prefix) > c.maxDepth {
		c.maxDepth = len(prefix)
	}
	st := c.replay(prefix)
	if st.violation != "" {
		c.violation = st.violation
		c.witness = append([]Choice(nil), prefix...)
		return
	}
	if len(st.enabled) == 0 {
		if st.allDone {
			if c.prog.Final != nil {
				if msg := c.prog.Final(st.readFinal); msg != "" {
					c.violation = "final state: " + msg
					c.witness = append([]Choice(nil), prefix...)
				}
			}
			return
		}
		c.violation = "deadlock (threads blocked with no enabled transition)"
		c.witness = append([]Choice(nil), prefix...)
		return
	}
	if _, seen := c.visited[st.fp]; seen {
		return
	}
	c.visited[st.fp] = struct{}{}
	if len(c.visited) > c.cfg.MaxStates {
		c.truncated = true
		return
	}
	if len(prefix) >= c.cfg.MaxDepth {
		c.violation = "depth limit exceeded (potential non-termination)"
		c.witness = append([]Choice(nil), prefix...)
		return
	}
	for _, ch := range st.enabled {
		c.explore(append(prefix, ch))
		if c.violation != "" || c.truncated {
			return
		}
	}
}
