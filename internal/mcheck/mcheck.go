// Package mcheck is an exhaustive-interleaving model checker for lock
// algorithms written against lockapi.Proc. It is this repository's
// substitute for the paper's TLA+/TLC and GenMC/VSync toolchain (§4.2):
// the same properties are checked — mutual exclusion, deadlock freedom,
// spinloop termination, and (per program) data invariants and bounded
// bypass — on the same small thread counts, including the CLoF induction
// step and the negative results (inverted release order, missing release
// barrier, TTAS unfairness).
//
// # Exploration
//
// The checker performs stateless depth-first search over schedules: each
// schedule prefix is replayed on a fresh program instance, and every
// enabled choice (run a thread's next shared-memory operation, or flush one
// store-buffer entry) forks the search. Two reductions keep this tractable:
//
//   - Await collapsing: a Spin() after a memory operation turns the spin
//     loop into an await — the thread is disabled until the watched cell is
//     written, so failed polls are never scheduled. A spin loop that can
//     never be satisfied therefore surfaces as a deadlock, which is exactly
//     the spinloop-termination property.
//   - State deduplication: a 64+64-bit fingerprint of (per-thread history,
//     status, buffers; per-cell last-writer and value) prunes re-explored
//     states. Threads are deterministic, so equal fingerprints imply equal
//     futures. Pruning on a hash admits a (vanishingly unlikely) collision;
//     unlike GenMC we do not claim certified soundness, and we say so here
//     rather than in fine print.
//
// # Memory models
//
// SC interleaves operations atomically. TSO gives every thread a FIFO store
// buffer with nondeterministic flushes (store→load reordering). WMM
// additionally lets Relaxed stores flush out of order — only Release stores
// wait for their predecessors — which is the Armv8-style behavior that
// breaks under-fenced locks (§3.3). Load reordering is not modeled; the
// demonstration programs are chosen so the bugs they document are
// store-ordering bugs.
package mcheck

import (
	"fmt"

	"github.com/clof-go/clof/internal/lockapi"
)

// Mode selects the memory model.
type Mode int

const (
	// SC is sequential consistency: operations take effect atomically in
	// schedule order.
	SC Mode = iota
	// TSO adds per-thread FIFO store buffers (x86-like).
	TSO
	// WMM additionally allows Relaxed stores to flush out of order;
	// Release stores still wait for all earlier buffered stores
	// (Armv8-store-ordering-like).
	WMM
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case SC:
		return "sc"
	case TSO:
		return "tso"
	default:
		return "wmm"
	}
}

// Config bounds the exploration.
type Config struct {
	Mode Mode
	// MaxDepth bounds schedule length; exceeding it reports potential
	// non-termination. Default 4000.
	MaxDepth int
	// MaxStates budgets distinct explored states (default 2,000,000);
	// exceeding it sets Result.Truncated.
	MaxStates int
	// FairnessK, when > 0, reports a violation if some thread is bypassed
	// K times while continuously waiting (bounded-bypass check). The
	// per-thread bypass counters become part of the state fingerprint, so
	// expect a correspondingly larger state space.
	FairnessK int
}

// Result summarizes a check.
type Result struct {
	// OK is true when no violation was found and the search was not
	// truncated.
	OK bool
	// Violation describes the first property violation found ("" if none).
	Violation string
	// Witness is the schedule prefix leading to the violation.
	Witness []Choice
	// Executions is the number of replays performed.
	Executions int
	// States is the number of distinct states explored.
	States int
	// MaxDepthSeen is the longest schedule explored.
	MaxDepthSeen int
	// Truncated reports that a budget was exhausted before exhaustion of
	// the state space.
	Truncated bool
}

// Choice is one scheduling decision: run thread TID's pending operation, or
// (Flush >= 0) flush that index of TID's store buffer.
type Choice struct {
	TID   int
	Flush int
}

// String renders the choice compactly for counterexample traces.
func (c Choice) String() string {
	if c.Flush >= 0 {
		return fmt.Sprintf("t%d.flush[%d]", c.TID, c.Flush)
	}
	return fmt.Sprintf("t%d", c.TID)
}

// Program is a finite concurrent program to verify.
type Program struct {
	Name string
	// Make builds a fresh instance: one body per thread. Bodies perform
	// all shared accesses through the provided Proc and must be
	// deterministic given their observation sequence.
	Make func() []func(p *Proc)
	// Final, if non-nil, validates the quiesced final state (all threads
	// done, all buffers flushed) and returns a violation message or "".
	Final func(read func(c *lockapi.Cell) uint64) string
	// ExpectFair marks the program for the bounded-bypass check (used with
	// Config.FairnessK).
	ExpectFair bool
}

// Check explores prog under cfg.
func Check(prog Program, cfg Config) Result {
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 4000
	}
	if cfg.MaxStates == 0 {
		cfg.MaxStates = 2_000_000
	}
	c := &checker{prog: prog, cfg: cfg, visited: make(map[fingerprint]struct{})}
	c.explore(nil)
	res := Result{
		Violation:    c.violation,
		Witness:      c.witness,
		Executions:   c.execs,
		States:       len(c.visited),
		MaxDepthSeen: c.maxDepth,
		Truncated:    c.truncated,
	}
	res.OK = res.Violation == "" && !res.Truncated
	return res
}

type fingerprint [2]uint64

type checker struct {
	prog      Program
	cfg       Config
	visited   map[fingerprint]struct{}
	execs     int
	maxDepth  int
	violation string
	witness   []Choice
	truncated bool
}

func (c *checker) explore(prefix []Choice) {
	if c.violation != "" || c.truncated {
		return
	}
	c.execs++
	if len(prefix) > c.maxDepth {
		c.maxDepth = len(prefix)
	}
	st := c.replay(prefix)
	if st.violation != "" {
		c.violation = st.violation
		c.witness = append([]Choice(nil), prefix...)
		return
	}
	if len(st.enabled) == 0 {
		if st.allDone {
			if c.prog.Final != nil {
				if msg := c.prog.Final(st.readFinal); msg != "" {
					c.violation = "final state: " + msg
					c.witness = append([]Choice(nil), prefix...)
				}
			}
			return
		}
		c.violation = "deadlock (threads blocked with no enabled transition)"
		c.witness = append([]Choice(nil), prefix...)
		return
	}
	if _, seen := c.visited[st.fp]; seen {
		return
	}
	c.visited[st.fp] = struct{}{}
	if len(c.visited) > c.cfg.MaxStates {
		c.truncated = true
		return
	}
	if len(prefix) >= c.cfg.MaxDepth {
		c.violation = "depth limit exceeded (potential non-termination)"
		c.witness = append([]Choice(nil), prefix...)
		return
	}
	for _, ch := range st.enabled {
		c.explore(append(prefix, ch))
		if c.violation != "" || c.truncated {
			return
		}
	}
}
