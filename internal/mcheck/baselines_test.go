package mcheck

import (
	"testing"

	"github.com/clof-go/clof/internal/cna"
	"github.com/clof-go/clof/internal/cohort"
	"github.com/clof-go/clof/internal/hmcs"
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/shfllock"
	"github.com/clof-go/clof/internal/topo"
)

// TestBaselinesVerified model-checks the baseline NUMA-aware locks on the
// 2-level verification machine — the assurance the paper notes CNA and
// ShflLock originally lacked (§1: "running them on Armv8 quickly causes
// hangs or mutual exclusion violations" without barriers; our
// implementations carry explicit order annotations and must pass).
func TestBaselinesVerified(t *testing.T) {
	mach := VerifyMachine()
	h := topo.MustHierarchy(mach, topo.CacheGroup, topo.System)
	tkt := locks.MustType("tkt")
	mcs := locks.MustType("mcs")
	cases := []struct {
		name string
		mk   func() lockapi.Lock
	}{
		{"hmcs2", func() lockapi.Lock { return hmcs.Must(h, hmcs.WithThreshold(2)) }},
		{"cna", func() lockapi.Lock { return cna.New(mach) }},
		{"shfllock", func() lockapi.Lock { return shfllock.New(mach) }},
		{"cohort-tkt-mcs", func() lockapi.Lock {
			return cohort.Must(mach, topo.CacheGroup, tkt, mcs)
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name+"/sc", func(t *testing.T) {
			res := Check(LockProgram(c.name, 2, 2, c.mk), Config{Mode: SC})
			if !res.OK {
				t.Fatalf("2x2: %s (witness %v)", res.Violation, res.Witness)
			}
			res = Check(LockProgram(c.name, 3, 1, c.mk), Config{Mode: SC})
			if !res.OK {
				t.Fatalf("3x1: %s (witness %v)", res.Violation, res.Witness)
			}
			t.Logf("3x1: %d states, %d executions", res.States, res.Executions)
		})
		t.Run(c.name+"/wmm", func(t *testing.T) {
			res := Check(LockProgram(c.name, 2, 2, c.mk), Config{Mode: WMM})
			if !res.OK {
				t.Fatalf("wmm 2x2: %s (witness %v)", res.Violation, res.Witness)
			}
		})
	}
}
