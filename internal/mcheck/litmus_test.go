package mcheck

import (
	"strings"
	"testing"
)

// TestDeadlockProgramABBA pins the litmus-bridge contract: the canonical
// two-lock inversion must surface as a deadlock, and the aligned-order
// control must not.
func TestDeadlockProgramABBA(t *testing.T) {
	res := Check(DeadlockProgram("abba", [][]string{{"a", "b"}, {"b", "a"}}), Config{Mode: SC})
	if !strings.Contains(res.Violation, "deadlock") {
		t.Fatalf("ABBA chains: violation = %q, want a deadlock", res.Violation)
	}

	ctrl := Check(DeadlockProgram("aligned", [][]string{{"a", "b"}, {"a", "b"}}), Config{Mode: SC})
	if !ctrl.OK {
		t.Fatalf("aligned chains: violation = %q, want none", ctrl.Violation)
	}
}

// TestDeadlockProgramSelfCycle covers the self-edge shape: a class nested
// inside itself is rendered as two instances taken in opposite orders.
func TestDeadlockProgramSelfCycle(t *testing.T) {
	res := Check(DeadlockProgram("self", [][]string{
		{"c#0", "c#1"}, {"c#1", "c#0"},
	}), Config{Mode: SC})
	if !strings.Contains(res.Violation, "deadlock") {
		t.Fatalf("self-cycle chains: violation = %q, want a deadlock", res.Violation)
	}
}

// TestDeadlockProgramThreeCycle exercises a k=3 rotation.
func TestDeadlockProgramThreeCycle(t *testing.T) {
	res := Check(DeadlockProgram("ring3", [][]string{
		{"a", "b"}, {"b", "c"}, {"c", "a"},
	}), Config{Mode: SC})
	if !strings.Contains(res.Violation, "deadlock") {
		t.Fatalf("3-cycle chains: violation = %q, want a deadlock", res.Violation)
	}
}
