package mcheck

import "testing"

// livenessIters is sized so the 2K escalation is meaningful: with 2 threads,
// a continuously-waiting thread can be bypassed at most iters times, so
// iters must be >= 2K = 4 (see the liveness package comment).
const livenessIters = 5

// TestTTASUnboundedBypass: TTAS's winner can re-acquire arbitrarily often
// while the loser spins — the bypass witness must survive the escalation
// from K=2 to K=4, classifying as unbounded passover (starvation).
func TestTTASUnboundedBypass(t *testing.T) {
	cfg := Config{Mode: SC, MaxStates: 1_000_000}
	res := CheckLiveness(LockProgram("ttas", 2, livenessIters, lk("ttas")), cfg, 2)
	if res.Verdict != LivenessUnboundedBypass {
		t.Fatalf("ttas verdict = %v, want unbounded-bypass (atK: %q, at2K: %q)",
			res.Verdict, res.AtK.Violation, res.At2K.Violation)
	}
	t.Logf("ttas: K=%d witness %q, 2K witness %q", res.K, res.AtK.Violation, res.At2K.Violation)
}

// TestTicketLiveness: the FIFO Ticketlock admits no bypass at K=2, so the
// verdict is fair without escalating. A fair verdict needs only the K
// search, so iters does not need the 2K-reachability sizing — 3 keeps the
// exhaustive exploration cheap (same sizing as TestTTASUnfair).
func TestTicketLiveness(t *testing.T) {
	cfg := Config{Mode: SC, MaxStates: 1_000_000}
	res := CheckLiveness(LockProgram("tkt", 2, 3, lk("tkt")), cfg, 2)
	if res.Verdict != LivenessFair {
		t.Fatalf("tkt verdict = %v, want fair (atK: %q, truncated=%v)",
			res.Verdict, res.AtK.Violation, res.AtK.Truncated)
	}
	if res.At2K.Executions != 0 {
		t.Error("escalation ran despite a clean K verdict")
	}
}

func TestLivenessVerdictStrings(t *testing.T) {
	want := map[LivenessVerdict]string{
		LivenessFair:            "fair",
		LivenessBoundedBypass:   "bounded-bypass",
		LivenessUnboundedBypass: "unbounded-bypass",
		LivenessOtherViolation:  "other-violation",
		LivenessInconclusive:    "inconclusive",
	}
	for v, s := range want {
		if v.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(v), v.String(), s)
		}
	}
}
