package mcheck

import (
	"testing"

	"github.com/clof-go/clof/internal/catalog"
	"github.com/clof-go/clof/internal/lockapi"
)

// porPair checks one program under both searches and pins the equivalence
// contract: identical verdict class and States(POR) <= States(exhaustive).
// Witnesses (and, for multi-bug programs, the specific violation found
// first) may legitimately differ between the searches; the verdict may not.
func porPair(t *testing.T, name string, prog Program, cfg Config) (exh, por Result) {
	t.Helper()
	cfg.POR = false
	exh = Check(prog, cfg)
	cfg.POR = true
	por = Check(prog, cfg)
	if !por.Reduced {
		t.Fatalf("%s: POR search did not run (Reduced=false)", name)
	}
	if exh.OK != por.OK || (exh.Violation == "") != (por.Violation == "") {
		t.Fatalf("%s: verdict mismatch: exhaustive OK=%v %q, POR OK=%v %q",
			name, exh.OK, exh.Violation, por.OK, por.Violation)
	}
	if por.States > exh.States {
		t.Fatalf("%s: POR explored more states than exhaustive (%d > %d)",
			name, por.States, exh.States)
	}
	t.Logf("%s: states %d -> %d (%.1fx), executions %d -> %d",
		name, exh.States, por.States,
		float64(exh.States)/float64(max(por.States, 1)), exh.Executions, por.Executions)
	return exh, por
}

// TestPORMatchesExhaustiveBasics runs the base-step lock set under both
// searches across all three memory models. The SC legs run 2 iterations;
// the store-buffer legs run 1: without fingerprint dedup the reduced
// search must pay one replay per Mazurkiewicz trace, and flush
// interleavings multiply traces far beyond the deduped state count for
// queue locks (MCS at 2x2 TSO needs minutes of replays for a 1.1x state
// win), so POR on store-buffer models is verified for equivalence, not
// advertised as a speedup — see the Config.POR doc.
func TestPORMatchesExhaustiveBasics(t *testing.T) {
	for _, name := range []string{"tas", "ttas", "bo", "tkt", "mcs", "clh", "hem", "hem-ctr", "qspin"} {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, leg := range []struct {
				mode  Mode
				iters int
			}{{SC, 2}, {TSO, 1}, {WMM, 1}} {
				exh, _ := porPair(t, name+"/"+leg.mode.String(),
					LockProgram(name, 2, leg.iters, lk(name)), Config{Mode: leg.mode})
				if !exh.OK {
					t.Fatalf("%s/%v: baseline unexpectedly broken: %s", name, leg.mode, exh.Violation)
				}
			}
		})
	}
}

// TestPORMatchesExhaustiveNegatives pins that the reduced search still finds
// every violation class the exhaustive search finds: mutual exclusion,
// deadlock (both the inverted-release CLoF bug and a lock-order cycle), the
// weak-memory barrier bug, and bounded-bypass starvation.
func TestPORMatchesExhaustiveNegatives(t *testing.T) {
	cases := []struct {
		name string
		prog Program
		cfg  Config
	}{
		{"mutex-violation", LockProgram("none", 2, 1, func() lockapi.Lock { return noLock{} }), Config{Mode: SC}},
		{"release-order-deadlock", InductionProgram(2, true, "mcs", "mcs"), Config{Mode: SC}},
		{"broken-ticket-wmm", BrokenTicketProgram(2, 1), Config{Mode: WMM}},
		{"lock-order-cycle", DeadlockProgram("ab-ba", [][]string{{"a", "b"}, {"b", "a"}}), Config{Mode: SC}},
		{"ttas-starvation", LockProgram("ttas", 2, 3, lk("ttas")), Config{Mode: SC, FairnessK: 2}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			exh, por := porPair(t, c.name, c.prog, c.cfg)
			if exh.OK || por.OK {
				t.Fatalf("expected a violation (exhaustive %q, POR %q)", exh.Violation, por.Violation)
			}
		})
	}
}

// TestPORCatalogEquivalence2T is the equivalence matrix over the full lock
// catalog at 2 threads on the verification machine: every entry must reach
// the same verdict under both searches, with the reduced search visiting no
// more states.
func TestPORCatalogEquivalence2T(t *testing.T) {
	mach := VerifyMachine()
	for _, e := range catalog.Locks() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			mk := func() lockapi.Lock { return e.New(mach) }
			exh, _ := porPair(t, e.Name, LockProgram(e.Name, 2, 1, mk), Config{Mode: SC})
			if !exh.OK {
				t.Fatalf("catalog baseline unexpectedly broken: %s", exh.Violation)
			}
		})
	}
}

// TestPORFairnessEquivalence runs the bounded-bypass check under both
// searches: the monitor footprint (mon bit) must keep fairness verdicts
// aligned — ttas starves, tkt does not.
func TestPORFairnessEquivalence(t *testing.T) {
	cfg := Config{Mode: SC, FairnessK: 2}
	exh, _ := porPair(t, "ttas/K=2", LockProgram("ttas", 2, 3, lk("ttas")), cfg)
	if exh.OK || !IsBypassViolation(exh) {
		t.Fatalf("ttas: expected bypass violation, got OK=%v %q", exh.OK, exh.Violation)
	}
	exh, _ = porPair(t, "tkt/K=2", LockProgram("tkt", 2, 3, lk("tkt")), cfg)
	if !exh.OK {
		t.Fatalf("tkt: expected fair, got %s", exh.Violation)
	}
}

// TestPORInductionReduction is the acceptance gate for the reduced search:
// the 3-thread CLoF induction step must verify with at least 2x fewer
// states than exhaustive exploration, with the same verdict.
func TestPORInductionReduction(t *testing.T) {
	prog := InductionProgram(1, false, "tkt", "tkt")
	exh, por := porPair(t, "clof:tkt-tkt/3t", prog, Config{Mode: SC})
	if !exh.OK {
		t.Fatalf("induction step unexpectedly broken: %s", exh.Violation)
	}
	if exh.States < 2*por.States {
		t.Fatalf("POR reduction below 2x on the 3-thread CLoF composition: exhaustive %d states, POR %d",
			exh.States, por.States)
	}
}

// TestPORDeterministic pins bitwise-reproducible reduced results.
func TestPORDeterministic(t *testing.T) {
	cfg := Config{Mode: SC, POR: true}
	a := Check(LockProgram("mcs", 2, 2, lk("mcs")), cfg)
	b := Check(LockProgram("mcs", 2, 2, lk("mcs")), cfg)
	if a.States != b.States || a.Executions != b.Executions || a.Violation != b.Violation {
		t.Fatalf("nondeterministic POR results: %+v vs %+v", a, b)
	}
}

// TestPORStaleFallback pins the documented fallback: the stale-load
// relaxation forks transitions mid-execution, so Config.POR is ignored and
// the exhaustive search runs (Reduced=false).
func TestPORStaleFallback(t *testing.T) {
	res := Check(SeqlockProgram(1, 1, false), Config{Mode: WMM, StaleLoads: true, POR: true})
	if res.Reduced {
		t.Fatal("POR must fall back to exhaustive search under StaleLoads")
	}
	if !res.OK {
		t.Fatalf("fenced seqlock unexpectedly broken: %s", res.Violation)
	}
}
