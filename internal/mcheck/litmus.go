package mcheck

import (
	"sort"

	"github.com/clof-go/clof/internal/lockapi"
)

// DeadlockProgram builds the dynamic witness for a statically detected
// lock-order cycle (the clof-lint -litmus bridge): one thread per chain,
// where thread i acquires the locks named in chains[i] in order and releases
// them in reverse. Locks are plain TAS spinlocks keyed by name, shared
// across chains. For chains generated from a k-class cycle — thread i takes
// cycle[i] then cycle[(i+1) mod k] — exhaustive exploration must reach the
// state where every thread holds its first lock and awaits its second, and
// report it as a deadlock; for acyclic chains the check passes.
func DeadlockProgram(name string, chains [][]string) Program {
	// Deterministic cell allocation order (map iteration would not change
	// the verdict, but keeps traces reproducible).
	var lockNames []string
	seen := map[string]bool{}
	for _, ch := range chains {
		for _, n := range ch {
			if !seen[n] {
				seen[n] = true
				lockNames = append(lockNames, n)
			}
		}
	}
	sort.Strings(lockNames)
	return Program{
		Name: name,
		Make: func() []func(p *Proc) {
			cells := map[string]*lockapi.Cell{}
			for _, n := range lockNames {
				cells[n] = &lockapi.Cell{}
			}
			bodies := make([]func(p *Proc), len(chains))
			for i, ch := range chains {
				locks := make([]*lockapi.Cell, len(ch))
				for j, n := range ch {
					locks[j] = cells[n]
				}
				bodies[i] = func(p *Proc) {
					for _, c := range locks {
						tasLock(p, c)
					}
					for j := len(locks) - 1; j >= 0; j-- {
						tasUnlock(p, locks[j])
					}
				}
			}
			return bodies
		},
	}
}

// tasLock is a minimal test-and-set acquire. A plain function, not a lock
// type: the litmus program models only the acquisition ORDER of the cycle
// under test, and a deliberately tiny primitive keeps the product state
// space small. The failed-CAS path Spins, so a lock that is never released
// parks the thread in an await — which is what lets the checker call the
// stuck state a deadlock instead of exploring the poll loop forever.
func tasLock(p *Proc, c *lockapi.Cell) {
	for {
		if p.Load(c, lockapi.Acquire) == 0 && p.CAS(c, 0, 1, lockapi.Acquire) {
			return
		}
		p.Spin()
	}
}

func tasUnlock(p *Proc, c *lockapi.Cell) {
	p.Store(c, 0, lockapi.Release)
}
