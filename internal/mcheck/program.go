package mcheck

import (
	"fmt"

	"github.com/clof-go/clof/internal/clof"
	"github.com/clof-go/clof/internal/cr"
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/seqlock"
	"github.com/clof-go/clof/internal/topo"
)

// LockProgram builds the canonical verification program for a lock: each of
// `threads` threads performs `iters` critical sections. Inside the critical
// section the program checks mutual exclusion directly and additionally
// increments a shared counter with a non-atomic load/store pair using
// Relaxed accesses — under the WMM mode this is the data whose visibility
// depends on the lock's release barrier, so a lock with a wrongly relaxed
// release fails the final-count check even when raw mutual exclusion holds.
//
// The mkLock factory is invoked once per replay, so every exploration path
// starts from a pristine lock.
func LockProgram(name string, threads, iters int, mkLock func() lockapi.Lock) Program {
	counter := struct{ c *lockapi.Cell }{}
	return Program{
		Name: name,
		Make: func() []func(p *Proc) {
			l := mkLock()
			cnt := &lockapi.Cell{}
			counter.c = cnt
			ctxs := make([]lockapi.Ctx, threads)
			for i := range ctxs {
				ctxs[i] = l.NewCtx()
			}
			bodies := make([]func(p *Proc), threads)
			for i := 0; i < threads; i++ {
				i := i
				bodies[i] = func(p *Proc) {
					for it := 0; it < iters; it++ {
						p.BeginWait()
						l.Acquire(p, ctxs[i])
						p.EndWait()
						p.EnterCS()
						v := p.Load(cnt, lockapi.Relaxed)
						p.Store(cnt, v+1, lockapi.Relaxed)
						p.ExitCS()
						l.Release(p, ctxs[i])
					}
				}
			}
			return bodies
		},
		Final: func(read func(c *lockapi.Cell) uint64) string {
			want := uint64(threads * iters)
			if got := read(counter.c); got != want {
				return fmt.Sprintf("counter = %d, want %d (lost update: release barrier too weak?)", got, want)
			}
			return ""
		},
		ExpectFair: true,
	}
}

// VerifyMachine is the smallest machine exhibiting two hierarchy levels
// with two leaf cohorts: 2 cache groups of 2 CPUs. The paper's induction
// step needs exactly this shape (one cohort with two threads, a second
// cohort with one).
func VerifyMachine() *topo.Machine {
	return &topo.Machine{
		Name:           "verify4",
		Arch:           topo.ArmV8,
		Packages:       1,
		NUMAPerPackage: 1,
		GroupsPerNUMA:  2,
		CoresPerGroup:  2,
		ThreadsPerCore: 1,
	}
}

// InductionProgram is the paper's §4.2 induction step: a 2-level CLoF lock
// over abstract fair locks (verified Ticketlocks), 3 threads — two in one
// cache-group cohort, one in the other — each acquiring once. Checked
// properties: mutual exclusion, deadlock freedom, spinloop termination, and
// the data invariant. `buggy` builds the §4.1.3 inverted-release-order
// variant, whose exploration must find a violation.
func InductionProgram(iters int, buggy bool, low, high string) Program {
	mach := VerifyMachine()
	h := topo.MustHierarchy(mach, topo.CacheGroup, topo.System)
	comp := clof.Composition{locks.MustType(low), locks.MustType(high)}
	name := fmt.Sprintf("clof-induction-%s-%s", low, high)
	if buggy {
		name += "-release-order-bug"
	}

	// Thread→CPU: threads 0,1 share cohort 0 (CPUs 0,1); thread 2 is alone
	// in cohort 1 (CPU 2). The checker Proc's ID() is the thread id, which
	// is also a valid CPU id on this machine by construction.
	counter := struct{ c *lockapi.Cell }{}
	threads := 3
	return Program{
		Name: name,
		Make: func() []func(p *Proc) {
			opts := []clof.Option{clof.WithThreshold(2)}
			if buggy {
				opts = append(opts, clof.WithReleaseOrderBug())
			}
			l := clof.Must(h, comp, opts...)
			cnt := &lockapi.Cell{}
			counter.c = cnt
			ctxs := make([]lockapi.Ctx, threads)
			for i := range ctxs {
				ctxs[i] = l.NewCtx()
			}
			bodies := make([]func(p *Proc), threads)
			for i := 0; i < threads; i++ {
				i := i
				bodies[i] = func(p *Proc) {
					for it := 0; it < iters; it++ {
						p.BeginWait()
						l.Acquire(p, ctxs[i])
						p.EndWait()
						p.EnterCS()
						v := p.Load(cnt, lockapi.Relaxed)
						p.Store(cnt, v+1, lockapi.Relaxed)
						p.ExitCS()
						l.Release(p, ctxs[i])
					}
				}
			}
			return bodies
		},
		Final: func(read func(c *lockapi.Cell) uint64) string {
			want := uint64(threads * iters)
			if got := read(counter.c); got != want {
				return fmt.Sprintf("counter = %d, want %d", got, want)
			}
			return ""
		},
		ExpectFair: true,
	}
}

// FastPathProgram verifies the §6 TAS fast-path extension: the 2-level
// CLoF lock with stealing enabled, 3 threads. Mutual exclusion, deadlock
// freedom and spinloop termination must hold; strict fairness is forfeited
// by design and not checked here.
func FastPathProgram(iters int) Program {
	mach := VerifyMachine()
	h := topo.MustHierarchy(mach, topo.CacheGroup, topo.System)
	comp := clof.Composition{locks.MustType("tkt"), locks.MustType("tkt")}
	counter := struct{ c *lockapi.Cell }{}
	threads := 3
	return Program{
		Name: "clof-fastpath-tkt-tkt",
		Make: func() []func(p *Proc) {
			l := clof.Must(h, comp, clof.WithThreshold(2), clof.WithTASFastPath())
			cnt := &lockapi.Cell{}
			counter.c = cnt
			ctxs := make([]lockapi.Ctx, threads)
			for i := range ctxs {
				ctxs[i] = l.NewCtx()
			}
			bodies := make([]func(p *Proc), threads)
			for i := 0; i < threads; i++ {
				i := i
				bodies[i] = func(p *Proc) {
					for it := 0; it < iters; it++ {
						l.Acquire(p, ctxs[i])
						p.EnterCS()
						v := p.Load(cnt, lockapi.Relaxed)
						p.Store(cnt, v+1, lockapi.Relaxed)
						p.ExitCS()
						l.Release(p, ctxs[i])
					}
				}
			}
			return bodies
		},
		Final: func(read func(c *lockapi.Cell) uint64) string {
			want := uint64(threads * iters)
			if got := read(counter.c); got != want {
				return fmt.Sprintf("counter = %d, want %d", got, want)
			}
			return ""
		},
	}
}

// CRProgram verifies the concurrency-restriction combinator (internal/cr):
// `threads` threads each acquire `iters` times through cr.Restrict over a
// verified Ticketlock with Target 1 and PassLimit 1, the tightest admission
// control that still must recirculate every waiter. Checked properties:
// mutual exclusion, deadlock freedom (a passive waiter parked on its wake
// slot must always eventually be granted), the release-barrier data
// invariant, and — via CheckLiveness — the bounded-bypass guarantee for a
// lone remote waiter.
//
// Thread→cohort mapping: with threads <= 2 the program runs on a 2-CPU
// machine, one CPU per cache group (one thread per cohort; exhaustible).
// With threads >= 3 it runs on VerifyMachine, the induction shape: threads
// 0..threads-2 share cache-group cohort 0 and the last thread is alone in
// cohort 1. The 3-thread state space exceeds the practical exhaustion
// budget — a probe still truncates past 1.5M states — so 3-thread safety
// checks run under an explicit MaxStates bound (see TestCRVerified).
//
// broken selects the BreakRecirculation variant: refills always favor the
// releaser's own cohort and heads barge without designation, so the threads
// sharing cohort 0 can recycle the single active slot between themselves
// forever while the remote head waits parked. Exhaustive search cannot
// reach that witness within budget (the victim's wait announcement must
// precede the bypassers' entire runs — the last deviation depth-first
// backtracking visits), so the starvation is demonstrated with CheckGuided
// under a RoundRobin schedule: a fair scheduler alone starves the remote
// cohort at every bypass bound, while the intact rotation admits it on the
// first PassLimit rotation (see TestCRBrokenRecirculationStarves).
func CRProgram(threads, iters int, broken bool) Program {
	var mach *topo.Machine
	if threads <= 2 {
		// A 2-CPU machine, one CPU per cache group, keeps the search
		// tractable: one wake slot per cohort instead of VerifyMachine's two.
		mach = &topo.Machine{
			Name:           "verify2",
			Arch:           topo.ArmV8,
			Packages:       1,
			NUMAPerPackage: 1,
			GroupsPerNUMA:  2,
			CoresPerGroup:  1,
			ThreadsPerCore: 1,
		}
	} else {
		mach = VerifyMachine()
	}
	name := "cr-tkt"
	if broken {
		name += "-broken-recirculation"
	}
	prog := LockProgram(name, threads, iters, func() lockapi.Lock {
		return cr.Restrict(mach, locks.NewTicket(), cr.Opts{
			Level:              topo.CacheGroup,
			Target:             1,
			PassLimit:          1,
			DisableAdapt:       true,
			BackoffBase:        1,
			BackoffCap:         1,
			BreakRecirculation: broken,
		})
	})
	prog.ExpectFair = !broken
	return prog
}

// relaxedReleaseTicket is a deliberately broken Ticketlock whose release is
// a plain Relaxed store of grant+1 instead of a releasing increment. Under
// SC it is indistinguishable from the correct lock; under WMM the unlock
// can become visible before the critical section's buffered data stores,
// losing updates — the class of bug the paper's A4 aspect is about.
type relaxedReleaseTicket struct {
	ticket, grant lockapi.Cell
}

func (l *relaxedReleaseTicket) NewCtx() lockapi.Ctx { return nil }

func (l *relaxedReleaseTicket) Acquire(p lockapi.Proc, _ lockapi.Ctx) {
	t := p.Add(&l.ticket, 1, lockapi.Relaxed) - 1
	for p.Load(&l.grant, lockapi.Acquire) != t {
		p.Spin()
	}
}

//lint:order relaxed-ok deliberate missing-Release fixture; the WMM negative test depends on this bug (run clof-lint -nowaiver to see it flagged)
func (l *relaxedReleaseTicket) Release(p lockapi.Proc, _ lockapi.Ctx) {
	g := p.Load(&l.grant, lockapi.Relaxed)
	//lint:order relaxed-ok deliberate missing-Release fixture for the WMM negative test
	p.Store(&l.grant, g+1, lockapi.Relaxed) // BUG: must be Release
}

// BrokenTicketProgram exhibits the missing-release-barrier bug: correct on
// SC, violating on WMM.
func BrokenTicketProgram(threads, iters int) Program {
	prog := LockProgram("ticket-relaxed-release", threads, iters,
		func() lockapi.Lock { return &relaxedReleaseTicket{} })
	prog.ExpectFair = true
	return prog
}

// releaseTicket is the correct counterpart of relaxedReleaseTicket, using a
// store-release. Having both verifies the WMM mode can tell them apart.
type releaseTicket struct {
	ticket, grant lockapi.Cell
}

func (l *releaseTicket) NewCtx() lockapi.Ctx { return nil }

func (l *releaseTicket) Acquire(p lockapi.Proc, _ lockapi.Ctx) {
	t := p.Add(&l.ticket, 1, lockapi.Relaxed) - 1
	for p.Load(&l.grant, lockapi.Acquire) != t {
		p.Spin()
	}
}

func (l *releaseTicket) Release(p lockapi.Proc, _ lockapi.Ctx) {
	g := p.Load(&l.grant, lockapi.Relaxed)
	p.Store(&l.grant, g+1, lockapi.Release)
}

// FixedTicketProgram is BrokenTicketProgram with the barrier restored.
func FixedTicketProgram(threads, iters int) Program {
	return LockProgram("ticket-release-store", threads, iters,
		func() lockapi.Lock { return &releaseTicket{} })
}

// SeqlockProgram verifies the optimistic read-validation protocol of
// internal/seqlock (DESIGN.md S33): one writer updates two data cells with
// Relaxed stores inside a seq:tkt critical section while `readers` readers
// take optimistic snapshots — ReadSeq, two Relaxed data loads, ReadValidate
// — asserting that every snapshot that survives validation is consistent
// (d0 == d1). A reader whose `attempts` optimistic tries all fail
// validation falls back to the pessimistic lock, mirroring the adaptive
// fallback in internal/store.
//
// The interesting mode is WMM with Config.StaleLoads: the reader bug class
// this protocol exists to prevent is a *load* observing the past, invisible
// to the store-ordering models. omitReadFence seeds that bug (the classic
// missing Acquire fence in validation, seqlock.Opts.OmitReadFence); under
// StaleLoads the checker must find the torn snapshot the stale version
// re-read certifies, and with the fence intact it must find nothing.
func SeqlockProgram(readers, attempts int, omitReadFence bool) Program {
	name := "seqlock-tkt"
	if omitReadFence {
		name += "-missing-read-fence"
	}
	data := struct{ d0, d1 *lockapi.Cell }{}
	return Program{
		Name: name,
		Make: func() []func(p *Proc) {
			l := seqlock.Wrap(locks.NewTicket(), seqlock.Opts{OmitReadFence: omitReadFence})
			sr := l.(lockapi.SeqReader)
			d0, d1 := &lockapi.Cell{}, &lockapi.Cell{}
			data.d0, data.d1 = d0, d1
			bodies := make([]func(p *Proc), readers+1)
			wctx := l.NewCtx()
			bodies[0] = func(p *Proc) {
				l.Acquire(p, wctx)
				p.Store(d0, 1, lockapi.Relaxed)
				p.Store(d1, 1, lockapi.Relaxed)
				l.Release(p, wctx)
			}
			for i := 1; i <= readers; i++ {
				c := l.NewCtx()
				bodies[i] = func(p *Proc) {
					var v0, v1 uint64
					ok := false
					for a := 0; a < attempts && !ok; a++ {
						s := sr.ReadSeq(p)
						v0 = p.Load(d0, lockapi.Relaxed)
						v1 = p.Load(d1, lockapi.Relaxed)
						ok = sr.ReadValidate(p, s)
					}
					if !ok {
						// Pessimistic fallback, as in internal/store: the
						// exclusive lock excludes the writer, so the plain
						// loads below are stable.
						l.Acquire(p, c)
						v0 = p.Load(d0, lockapi.Relaxed)
						v1 = p.Load(d1, lockapi.Relaxed)
						l.Release(p, c)
					}
					p.Assert(v0 == v1, "torn snapshot escaped validation")
				}
			}
			return bodies
		},
		Final: func(read func(c *lockapi.Cell) uint64) string {
			if d0, d1 := read(data.d0), read(data.d1); d0 != 1 || d1 != 1 {
				return fmt.Sprintf("data = (%d,%d), want (1,1)", d0, d1)
			}
			return ""
		},
	}
}
