package mcheck

import "testing"

// crBudget caps the 3-thread searches: the asymmetric shape (two threads
// sharing cohort 0, one alone in cohort 1) is not exhaustible — a probe run
// still truncates past 1.5M states — so the 3-thread checks are explicitly
// bounded model checking: every state within the budget satisfies the
// properties, and the budget is reported, not hidden.
const crBudget = 300_000

// TestCRVerified model-checks the concurrency-restriction combinator over a
// Ticketlock: mutual exclusion, deadlock freedom (every parked passive
// waiter is eventually granted), spinloop termination and the data
// invariant. The 2-thread cross-cohort program is verified exhaustively;
// the 3-thread induction shape runs under crBudget and must stay
// violation-free to truncation.
func TestCRVerified(t *testing.T) {
	res := Check(CRProgram(2, 1, false), Config{Mode: SC})
	if !res.OK {
		t.Fatalf("sc 2x1: %s (witness %v)", res.Violation, res.Witness)
	}
	t.Logf("sc 2x1: %d states, %d executions (exhaustive)", res.States, res.Executions)

	res = Check(CRProgram(3, 1, false), Config{Mode: SC, MaxStates: crBudget})
	if res.Violation != "" {
		t.Fatalf("sc 3x1: %s (witness %v)", res.Violation, res.Witness)
	}
	if !res.Truncated {
		t.Logf("sc 3x1: exhausted at %d states — crBudget can likely drop", res.States)
	}
	t.Logf("sc 3x1: %d states, %d executions, violation-free to budget", res.States, res.Executions)
}

// TestCRVerifiedWMM repeats the exhaustive 2-thread check under the weak
// memory mode: the combinator's grant edges (qgrant/wake publishes, the
// active-slot CAS) must carry release/acquire barriers strong enough that
// the inner lock's critical-section data stays visible across admission.
func TestCRVerifiedWMM(t *testing.T) {
	res := Check(CRProgram(2, 1, false), Config{Mode: WMM})
	if !res.OK {
		t.Fatalf("wmm 2x1: %s (witness %v)", res.Violation, res.Witness)
	}
	t.Logf("wmm 2x1: %d states, %d executions (exhaustive)", res.States, res.Executions)
}

// TestCRBoundedBypass checks the recirculation guarantee from two angles.
//
// Guided: under a round-robin (fair) scheduler the restricted lock may pass
// over a waiter a small constant number of times (an arriving head can slip
// into the admission window between a release's slot decrement and the
// refill) — the monitor at K=2 is allowed to trip — but at K=4 the run must
// complete cleanly: PassLimit 1 hands the active slot to the waiting cohort
// on the first rotation, so the passover does not scale with the bound.
// That K-trips/2K-clean shape is exactly CheckLiveness's bounded-bypass
// classification, and the broken variant's contrast is the same schedule
// tripping BOTH bounds (TestCRBrokenRecirculationStarves).
//
// Searched: the bounded 3x2 exploration must find no bypass witness at
// K=2 within its budget: with (T-1)*I = 4 = 2K acquisitions available, an
// unbounded-passover lock would have witness schedules in range.
func TestCRBoundedBypass(t *testing.T) {
	res := CheckGuided(CRProgram(3, 3, false), Config{Mode: SC, FairnessK: 4}, RoundRobin())
	if !res.OK {
		t.Fatalf("guided round-robin k=4: %s (witness %v)", res.Violation, res.Witness)
	}
	t.Logf("guided round-robin k=4: clean completion in %d steps", res.MaxDepthSeen)
	if atk2 := CheckGuided(CRProgram(3, 3, false), Config{Mode: SC, FairnessK: 2}, RoundRobin()); !atk2.OK {
		t.Logf("guided round-robin k=2: %q — bounded passover, does not scale to k=4", atk2.Violation)
	}
	lr := CheckLiveness(CRProgram(3, 2, false), Config{Mode: SC, MaxStates: 150_000}, 2)
	if IsBypassViolation(lr.AtK) || IsBypassViolation(lr.At2K) {
		t.Fatalf("bounded 3x2 search found a bypass witness: verdict %v (atK %q, at2K %q)",
			lr.Verdict, lr.AtK.Violation, lr.At2K.Violation)
	}
	if lr.Verdict == LivenessOtherViolation {
		t.Fatalf("bounded 3x2 search: non-fairness violation %q", lr.AtK.Violation)
	}
	t.Logf("bounded 3x2 search: verdict %v, %d states, no bypass witness", lr.Verdict, lr.AtK.States)
}

// TestCRBrokenRecirculationStarves: the BreakRecirculation variant always
// refills from the releaser's own cohort and lets heads barge without
// designation, so the threads sharing cohort 0 recycle the single active
// slot between themselves while the remote head waits parked. The guided
// round-robin run — the canonical fair schedule, so the starvation cannot
// be blamed on an adversarial scheduler — must trip the bypass monitor at
// K=2 AND at K=4: the passover scales with the bound, i.e. starvation, the
// same escalation logic CheckLiveness uses. (Exhaustive search cannot reach
// these witnesses: the victim's wait announcement must precede the
// bypassers' runs, which is the last deviation depth-first backtracking
// visits; see CheckGuided.)
func TestCRBrokenRecirculationStarves(t *testing.T) {
	for _, k := range []int{2, 4} {
		res := CheckGuided(CRProgram(3, 3, true), Config{Mode: SC, FairnessK: k}, RoundRobin())
		if !IsBypassViolation(res) {
			t.Fatalf("broken cr, guided round-robin k=%d: got %q, want bounded-bypass violation", k, res.Violation)
		}
		t.Logf("broken cr k=%d: starvation witness at depth %d", k, res.MaxDepthSeen)
	}
	// The identical schedule with recirculation intact completes cleanly —
	// the starvation is the variant's, not the schedule's.
	res := CheckGuided(CRProgram(3, 3, false), Config{Mode: SC, FairnessK: 4}, RoundRobin())
	if !res.OK {
		t.Fatalf("correct cr under the broken variant's schedule: %s", res.Violation)
	}
}
