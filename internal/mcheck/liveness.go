package mcheck

import "strings"

// Liveness mode: bounded-bypass escalation.
//
// A single FairnessK check cannot distinguish "a waiter may be passed over a
// few times" (acceptable for TAS-family locks under light contention) from
// "a waiter can be passed over forever" (starvation). The checker's state
// fingerprints include a monotone per-thread operation index, so lasso-style
// cycle detection is unavailable; instead CheckLiveness runs the bounded
// check twice, at K and at 2K. A lock whose bypass is genuinely bounded by
// some constant B violates K for K <= B but verifies clean once K > B;
// a lock with an unbounded passover loop (e.g. TTAS, where the winner can
// re-acquire arbitrarily often while a spinner waits) violates every K. The
// K/2K escalation therefore classifies:
//
//   - clean at K                 → LivenessFair
//   - violation at K, clean at 2K → LivenessBoundedBypass
//   - violation at K and at 2K    → LivenessUnboundedBypass
//
// The classification is exact only when the program performs enough
// acquisitions for 2K bypasses to be reachable: with T threads of I
// iterations each, a continuously-waiting thread can be bypassed at most
// (T-1)*I times, so callers must pick I with (T-1)*I >= 2K (CheckLiveness
// does not enforce this; too-small programs degrade toward
// LivenessBoundedBypass, the conservative direction for a starvation
// verdict).

// LivenessVerdict classifies a program's waiter-passover behavior.
type LivenessVerdict int

const (
	// LivenessFair: no waiter is ever bypassed K times (bounded bypass
	// holds at the requested K).
	LivenessFair LivenessVerdict = iota
	// LivenessBoundedBypass: waiters can be bypassed at least K times but
	// provably fewer than 2K — passover exists but is bounded.
	LivenessBoundedBypass
	// LivenessUnboundedBypass: waiters are bypassed at both K and 2K —
	// the passover pattern scales with the bound, i.e. starvation.
	LivenessUnboundedBypass
	// LivenessOtherViolation: the search hit a non-fairness violation
	// (mutual exclusion, deadlock, final-state) before any verdict on
	// bypass could be made; see AtK/At2K for the message.
	LivenessOtherViolation
	// LivenessInconclusive: a state or depth budget was exhausted before
	// the search could decide.
	LivenessInconclusive
)

// String names the verdict.
func (v LivenessVerdict) String() string {
	switch v {
	case LivenessFair:
		return "fair"
	case LivenessBoundedBypass:
		return "bounded-bypass"
	case LivenessUnboundedBypass:
		return "unbounded-bypass"
	case LivenessOtherViolation:
		return "other-violation"
	default:
		return "inconclusive"
	}
}

// LivenessResult carries the verdict and the underlying search results.
type LivenessResult struct {
	Verdict LivenessVerdict
	// K is the base bypass bound the escalation started from.
	K int
	// AtK is the search result with FairnessK = K; At2K is the escalated
	// search (zero value when the first search already decided).
	AtK, At2K Result
}

// bypassViolationPrefix matches the violation emitted by Proc.EndWait.
const bypassViolationPrefix = "bounded bypass violated"

// IsBypassViolation reports whether a result's violation is the fairness
// (bounded-bypass) property, as opposed to exclusion/deadlock/final-state.
func IsBypassViolation(r Result) bool {
	return strings.HasPrefix(r.Violation, bypassViolationPrefix)
}

// CheckLiveness explores prog under cfg with the bounded-bypass check at
// FairnessK = k, escalating to 2k when a bypass witness is found, and
// classifies the passover behavior (see the package comment above). k <= 0
// defaults to 2 — the smallest bound a FIFO lock can pass, since a thread
// may be overtaken once between announcing its wait and publishing its
// queue/ticket position. cfg.FairnessK is overwritten by the escalation.
func CheckLiveness(prog Program, cfg Config, k int) LivenessResult {
	if k <= 0 {
		k = 2
	}
	cfg.FairnessK = k
	out := LivenessResult{K: k, AtK: Check(prog, cfg)}
	switch {
	case out.AtK.OK:
		out.Verdict = LivenessFair
		return out
	case out.AtK.Violation == "":
		// Truncated without a witness.
		out.Verdict = LivenessInconclusive
		return out
	case !IsBypassViolation(out.AtK):
		out.Verdict = LivenessOtherViolation
		return out
	}
	cfg.FairnessK = 2 * k
	out.At2K = Check(prog, cfg)
	switch {
	case IsBypassViolation(out.At2K):
		out.Verdict = LivenessUnboundedBypass
	case out.At2K.OK:
		out.Verdict = LivenessBoundedBypass
	case out.At2K.Violation == "":
		out.Verdict = LivenessInconclusive
	default:
		out.Verdict = LivenessOtherViolation
	}
	return out
}
