package mcheck

import (
	"testing"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
)

func lk(name string) func() lockapi.Lock {
	return locks.MustType(name).New
}

// TestBaseStepSC is the paper's base step (§4.2): every basic lock, small
// configurations, sequential consistency.
func TestBaseStepSC(t *testing.T) {
	for _, name := range []string{"tas", "ttas", "bo", "tkt", "mcs", "clh", "hem", "hem-ctr", "qspin"} {
		name := name
		t.Run(name, func(t *testing.T) {
			res := Check(LockProgram(name, 2, 2, lk(name)), Config{Mode: SC})
			if !res.OK {
				t.Fatalf("2x2: %s (witness %v, %d states)", res.Violation, res.Witness, res.States)
			}
			res = Check(LockProgram(name, 3, 1, lk(name)), Config{Mode: SC})
			if !res.OK {
				t.Fatalf("3x1: %s (witness %v, %d states)", res.Violation, res.Witness, res.States)
			}
			t.Logf("%s: 3 threads, %d states, %d executions", name, res.States, res.Executions)
		})
	}
}

// TestBaseStepWMM verifies the basic locks under the weak-memory mode.
func TestBaseStepWMM(t *testing.T) {
	for _, name := range []string{"tkt", "mcs", "clh", "hem"} {
		name := name
		t.Run(name, func(t *testing.T) {
			res := Check(LockProgram(name, 2, 2, lk(name)), Config{Mode: WMM})
			if !res.OK {
				t.Fatalf("wmm 2x2: %s (witness %v)", res.Violation, res.Witness)
			}
		})
	}
}

// TestInductionStep is the paper's §4.2 induction step: 2-level CLoF over
// fair basic locks, 3 threads, verified on SC and on the weak mode.
func TestInductionStep(t *testing.T) {
	for _, mode := range []Mode{SC, WMM} {
		res := Check(InductionProgram(1, false, "tkt", "tkt"), Config{Mode: mode})
		if !res.OK {
			t.Fatalf("%v: %s (witness %v)", mode, res.Violation, res.Witness)
		}
		t.Logf("%v: states=%d execs=%d", mode, res.States, res.Executions)
	}
}

// TestInductionStepOtherLocks broadens the induction step to heterogeneous
// compositions, mirroring CLoF's claim that any verified basic lock
// composes.
func TestInductionStepOtherLocks(t *testing.T) {
	for _, pair := range [][2]string{{"mcs", "tkt"}, {"tkt", "mcs"}, {"clh", "tkt"}} {
		pair := pair
		t.Run(pair[0]+"-"+pair[1], func(t *testing.T) {
			res := Check(InductionProgram(1, false, pair[0], pair[1]), Config{Mode: SC})
			if !res.OK {
				t.Fatalf("%s (witness %v)", res.Violation, res.Witness)
			}
		})
	}
}

// TestFastPathVerified: the §6 TAS fast-path extension preserves mutual
// exclusion, deadlock freedom and termination (fairness is forfeited by
// design).
func TestFastPathVerified(t *testing.T) {
	for _, mode := range []Mode{SC, WMM} {
		res := Check(FastPathProgram(1), Config{Mode: mode})
		if !res.OK {
			t.Fatalf("%v: %s (witness %v)", mode, res.Violation, res.Witness)
		}
		t.Logf("%v: states=%d execs=%d", mode, res.States, res.Executions)
	}
}

// TestReleaseOrderBugDeadlocks is the §4.1.3 negative result: inverting the
// release order of low and high locks violates the context invariant and
// the checker must find a violation (deadlock or mutual exclusion).
func TestReleaseOrderBugDeadlocks(t *testing.T) {
	res := Check(InductionProgram(2, true, "mcs", "mcs"), Config{Mode: SC})
	if res.OK {
		t.Fatal("inverted release order verified clean; expected a violation")
	}
	if res.Truncated {
		t.Fatalf("search truncated before finding the violation")
	}
	t.Logf("found: %s after %d executions (witness length %d)", res.Violation, res.Executions, len(res.Witness))
}

// TestBrokenBarrierCaughtOnlyOnWMM: the missing release barrier is
// invisible under SC and must be caught under WMM; restoring the barrier
// must verify clean on both.
func TestBrokenBarrierCaughtOnlyOnWMM(t *testing.T) {
	if res := Check(BrokenTicketProgram(2, 2), Config{Mode: SC}); !res.OK {
		t.Fatalf("SC flagged the relaxed-release ticket: %s", res.Violation)
	}
	res := Check(BrokenTicketProgram(2, 2), Config{Mode: WMM})
	if res.OK {
		t.Fatal("WMM mode missed the relaxed-release bug")
	}
	t.Logf("wmm caught: %s", res.Violation)
	if res := Check(FixedTicketProgram(2, 2), Config{Mode: WMM}); !res.OK {
		t.Fatalf("release-store ticket flagged on WMM: %s (witness %v)", res.Violation, res.Witness)
	}
}

// TestTSOForgivesRelaxedRelease is the paper's §1/§3.3 observation in
// miniature: the x86-like TSO model orders same-thread stores FIFO, so a
// lock missing its release barrier still works there — which is exactly why
// x86-only locks "tend to ignore WMM issues" until they hang on Armv8. The
// same lock fails under the weaker mode (TestBrokenBarrierCaughtOnlyOnWMM).
func TestTSOForgivesRelaxedRelease(t *testing.T) {
	res := Check(BrokenTicketProgram(2, 2), Config{Mode: TSO})
	if !res.OK {
		t.Fatalf("TSO flagged the relaxed-release ticket: %s (witness %v)", res.Violation, res.Witness)
	}
	if res2 := Check(FixedTicketProgram(2, 2), Config{Mode: TSO}); !res2.OK {
		t.Fatalf("TSO flagged the correct ticket: %s", res2.Violation)
	}
}

// TestTTASUnfair finds a bounded-bypass (starvation) witness for TTAS and
// must find none for the FIFO Ticketlock.
func TestTTASUnfair(t *testing.T) {
	cfg := Config{Mode: SC, FairnessK: 2, MaxStates: 500_000}
	res := Check(LockProgram("ttas", 2, 3, lk("ttas")), cfg)
	if res.OK {
		t.Fatal("no bypass witness found for TTAS")
	}
	t.Logf("ttas witness: %s", res.Violation)

	res = Check(LockProgram("tkt", 2, 3, lk("tkt")), cfg)
	if !res.OK {
		t.Fatalf("ticket flagged unfair: %s (witness %v, truncated=%v)", res.Violation, res.Witness, res.Truncated)
	}
}

// TestMutexViolationDetected: a broken "lock" that excludes nothing must be
// caught immediately.
func TestMutexViolationDetected(t *testing.T) {
	res := Check(LockProgram("none", 2, 1, func() lockapi.Lock { return noLock{} }), Config{Mode: SC})
	if res.OK {
		t.Fatal("no-op lock verified clean")
	}
}

type noLock struct{}

func (noLock) NewCtx() lockapi.Ctx                   { return nil }
func (noLock) Acquire(p lockapi.Proc, _ lockapi.Ctx) {}
func (noLock) Release(p lockapi.Proc, _ lockapi.Ctx) {}

// TestDeadlockDetected: a self-deadlocking program.
func TestDeadlockDetected(t *testing.T) {
	prog := Program{
		Name: "await-forever",
		Make: func() []func(p *Proc) {
			var flag lockapi.Cell
			return []func(p *Proc){func(p *Proc) {
				for p.Load(&flag, lockapi.Acquire) == 0 {
					p.Spin()
				}
			}}
		},
	}
	res := Check(prog, Config{Mode: SC})
	if res.OK || res.Violation == "" {
		t.Fatalf("deadlock not detected: %+v", res)
	}
}

// TestVerificationScaling records the checker's growth with thread count —
// the repository's analog of the paper's §3.3/§4.2 observation that whole-
// lock verification explodes with depth while the CLoF induction step stays
// fixed at 3 threads.
func TestVerificationScaling(t *testing.T) {
	var prev int
	for _, n := range []int{2, 3} {
		res := Check(LockProgram("tkt", n, 1, lk("tkt")), Config{Mode: SC})
		if !res.OK {
			t.Fatalf("%d threads: %s", n, res.Violation)
		}
		t.Logf("ticket %d threads: %d states, %d executions", n, res.States, res.Executions)
		if res.States <= prev {
			t.Errorf("state count did not grow with threads (%d -> %d)", prev, res.States)
		}
		prev = res.States
	}
}

// TestDeterministicResults: the checker itself must be deterministic.
func TestDeterministicResults(t *testing.T) {
	a := Check(LockProgram("mcs", 2, 2, lk("mcs")), Config{Mode: SC})
	b := Check(LockProgram("mcs", 2, 2, lk("mcs")), Config{Mode: SC})
	if a.States != b.States || a.Executions != b.Executions || a.OK != b.OK {
		t.Errorf("two identical checks diverged: %+v vs %+v", a, b)
	}
}
