package mcheck

// White-box tests of the checker's execution semantics: store-buffer rules
// per memory model, await collapsing, and state deduplication. These pin the
// machinery the lock-verification results rest on.

import (
	"testing"

	"github.com/clof-go/clof/internal/lockapi"
)

// twoThreads builds a program from two explicit bodies plus a final check.
func twoThreads(a, b func(p *Proc), final func(read func(*lockapi.Cell) uint64) string) Program {
	return Program{
		Name:  "unit",
		Make:  func() []func(p *Proc) { return []func(p *Proc){a, b} },
		Final: final,
	}
}

// TestSBOutcomes enumerates SB outcomes explicitly: a third cell records
// r0*2 + r1 per execution; the final check whitelists per-mode outcomes and
// we assert the weak outcome's reachability via a violating canary program.
func TestSBOutcomes(t *testing.T) {
	build := func() (Program, *lockapi.Cell, *lockapi.Cell) {
		var x, y lockapi.Cell
		var r0cell, r1cell lockapi.Cell
		prog := twoThreads(
			func(p *Proc) {
				p.Store(&x, 1, lockapi.Relaxed)
				v := p.Load(&y, lockapi.Relaxed)
				p.Store(&r0cell, v+1, lockapi.SeqCst) // +1: distinguish "ran"
			},
			func(p *Proc) {
				p.Store(&y, 1, lockapi.Relaxed)
				v := p.Load(&x, lockapi.Relaxed)
				p.Store(&r1cell, v+1, lockapi.SeqCst)
			},
			nil,
		)
		return prog, &r0cell, &r1cell
	}

	// Under SC, r0==0 && r1==0 must be unreachable: make it a violation and
	// expect a clean pass.
	prog, r0, r1 := build()
	prog.Final = func(read func(*lockapi.Cell) uint64) string {
		if read(r0) == 1 && read(r1) == 1 {
			return "weak SB outcome under SC"
		}
		return ""
	}
	if res := Check(prog, Config{Mode: SC}); !res.OK {
		t.Fatalf("SC reached the weak SB outcome: %s", res.Violation)
	}

	// Under TSO the weak outcome must be reachable: same canary must trip.
	prog, r0, r1 = build()
	prog.Final = func(read func(*lockapi.Cell) uint64) string {
		if read(r0) == 1 && read(r1) == 1 {
			return "weak outcome reached (expected)"
		}
		return ""
	}
	if res := Check(prog, Config{Mode: TSO}); res.OK {
		t.Fatal("TSO did not reach the weak SB outcome")
	}
}

// TestMPlitmus is message passing (MP): T0 writes data then sets a flag;
// T1 awaits the flag then reads data. With a Release flag-store the stale
// read must be impossible even under WMM; with Relaxed stores WMM must
// reach it.
func TestMPLitmus(t *testing.T) {
	build := func(flagOrder lockapi.Order) Program {
		var data, flag, out lockapi.Cell
		return twoThreads(
			func(p *Proc) {
				p.Store(&data, 42, lockapi.Relaxed)
				p.Store(&flag, 1, flagOrder)
			},
			func(p *Proc) {
				for p.Load(&flag, lockapi.Acquire) == 0 {
					p.Spin()
				}
				p.Store(&out, p.Load(&data, lockapi.Relaxed)+1, lockapi.SeqCst)
			},
			func(read func(*lockapi.Cell) uint64) string {
				if read(&out) == 1 { // data read as 0
					return "stale data after flag observed"
				}
				return ""
			},
		)
	}
	if res := Check(build(lockapi.Release), Config{Mode: WMM}); !res.OK {
		t.Fatalf("WMM broke MP despite Release flag store: %s", res.Violation)
	}
	if res := Check(build(lockapi.Relaxed), Config{Mode: WMM}); res.OK {
		t.Fatal("WMM did not reorder relaxed MP stores")
	}
	// TSO keeps same-thread stores in order: relaxed MP is still safe.
	if res := Check(build(lockapi.Relaxed), Config{Mode: TSO}); !res.OK {
		t.Fatalf("TSO reordered same-thread stores: %s", res.Violation)
	}
}

// TestRMWDrainsBuffer: an RMW must flush the thread's own store buffer
// before acting (atomics are ordering points).
func TestRMWDrainsBuffer(t *testing.T) {
	var x, y lockapi.Cell
	prog := twoThreads(
		func(p *Proc) {
			p.Store(&x, 1, lockapi.Relaxed) // buffered
			p.Add(&y, 1, lockapi.AcqRel)    // must flush x first
		},
		func(p *Proc) {
			// If y is visible (post-RMW), x must be visible too.
			if p.Load(&y, lockapi.Acquire) == 1 {
				p.Assert(p.Load(&x, lockapi.Relaxed) == 1, "RMW did not drain the store buffer")
			}
		},
		nil,
	)
	for _, mode := range []Mode{TSO, WMM} {
		if res := Check(prog, Config{Mode: mode}); !res.OK {
			t.Fatalf("%v: %s (witness %v)", mode, res.Violation, res.Witness)
		}
	}
}

// TestSameLocationCoherence: WMM must not reorder two stores to the same
// cell (per-location coherence).
func TestSameLocationCoherence(t *testing.T) {
	var x lockapi.Cell
	prog := twoThreads(
		func(p *Proc) {
			p.Store(&x, 1, lockapi.Relaxed)
			p.Store(&x, 2, lockapi.Relaxed)
		},
		func(p *Proc) {},
		func(read func(*lockapi.Cell) uint64) string {
			if v := read(&x); v != 2 {
				return "stores to one location reordered"
			}
			return ""
		},
	)
	if res := Check(prog, Config{Mode: WMM}); !res.OK {
		t.Fatalf("%s (witness %v)", res.Violation, res.Witness)
	}
}

// TestAwaitCollapsing: a spin loop must not blow up the state space — the
// waiter is disabled until the flag is written, so the exploration stays
// tiny.
func TestAwaitCollapsing(t *testing.T) {
	var flag lockapi.Cell
	prog := twoThreads(
		func(p *Proc) {
			for p.Load(&flag, lockapi.Acquire) == 0 {
				p.Spin()
			}
		},
		func(p *Proc) {
			p.Store(&flag, 1, lockapi.Release)
		},
		nil,
	)
	res := Check(prog, Config{Mode: SC})
	if !res.OK {
		t.Fatal(res.Violation)
	}
	if res.States > 20 {
		t.Errorf("await collapsing ineffective: %d states for one flag wait", res.States)
	}
}

// TestDedupPrunes: two threads doing commutative independent work must
// explore far fewer executions than the factorial schedule count, thanks to
// state deduplication.
func TestDedupPrunes(t *testing.T) {
	var a, b lockapi.Cell
	prog := twoThreads(
		func(p *Proc) {
			for i := 0; i < 6; i++ {
				p.Add(&a, 1, lockapi.Relaxed)
			}
		},
		func(p *Proc) {
			for i := 0; i < 6; i++ {
				p.Add(&b, 1, lockapi.Relaxed)
			}
		},
		func(read func(*lockapi.Cell) uint64) string {
			if read(&a) != 6 || read(&b) != 6 {
				return "lost increments"
			}
			return ""
		},
	)
	res := Check(prog, Config{Mode: SC})
	if !res.OK {
		t.Fatal(res.Violation)
	}
	// Unpruned interleavings of 7+7 steps ≈ C(14,7) = 3432 executions
	// minimum; with dedup the state lattice is (8x8)-ish.
	if res.States > 200 {
		t.Errorf("dedup ineffective: %d states", res.States)
	}
}

// TestFenceFlushes: a SeqCst fence drains the buffer like an RMW.
func TestFenceFlushes(t *testing.T) {
	var x, flag lockapi.Cell
	prog := twoThreads(
		func(p *Proc) {
			p.Store(&x, 1, lockapi.Relaxed)
			p.Fence(lockapi.SeqCst)
			p.Store(&flag, 1, lockapi.Relaxed)
		},
		func(p *Proc) {
			if p.Load(&flag, lockapi.Acquire) == 1 {
				p.Assert(p.Load(&x, lockapi.Relaxed) == 1, "fence did not order stores")
			}
		},
		nil,
	)
	if res := Check(prog, Config{Mode: WMM}); !res.OK {
		t.Fatalf("%s (witness %v)", res.Violation, res.Witness)
	}
}
