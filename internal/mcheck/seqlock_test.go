package mcheck

import (
	"strings"
	"testing"

	"github.com/clof-go/clof/internal/lockapi"
)

// TestSeqlockVerifiedSC: the intact protocol under SC (loads always
// current) — a smoke baseline for the WMM runs below.
func TestSeqlockVerifiedSC(t *testing.T) {
	res := Check(SeqlockProgram(2, 2, false), Config{Mode: SC})
	if !res.OK {
		t.Fatalf("seqlock SC: %s (witness %v, %d states)", res.Violation, res.Witness, res.States)
	}
	t.Logf("seqlock SC: %d states, %d executions", res.States, res.Executions)
}

// TestSeqlockVerifiedWMM: the acceptance check — the intact read-validation
// protocol at 3 threads (1 writer + 2 readers) under WMM with the
// stale-load relaxation on. Every snapshot a validation certifies must be
// consistent even when Relaxed loads can return the reader's last-seen
// values.
func TestSeqlockVerifiedWMM(t *testing.T) {
	res := Check(SeqlockProgram(2, 2, false), Config{Mode: WMM, StaleLoads: true})
	if !res.OK {
		t.Fatalf("seqlock WMM+stale: %s (witness %v, %d states)", res.Violation, res.Witness, res.States)
	}
	t.Logf("seqlock WMM+stale: %d states, %d executions", res.States, res.Executions)
}

// TestSeqlockMissingReadFenceCaught: the seeded bug — ReadValidate without
// its Acquire fence — MUST be reported under WMM+StaleLoads: the stale
// version re-read certifies a torn snapshot and the reader's assertion
// fires. This is the negative result that makes the positive one above
// meaningful.
func TestSeqlockMissingReadFenceCaught(t *testing.T) {
	res := Check(SeqlockProgram(2, 2, true), Config{Mode: WMM, StaleLoads: true})
	if res.OK || res.Violation == "" {
		t.Fatalf("missing read fence not caught (states=%d, truncated=%v)", res.States, res.Truncated)
	}
	if !strings.Contains(res.Violation, "torn snapshot") {
		t.Fatalf("unexpected violation %q (want the torn-snapshot assertion)", res.Violation)
	}
	t.Logf("caught: %s (witness %v)", res.Violation, res.Witness)
}

// TestSeqlockFenceBugInvisibleWithoutStaleLoads pins why StaleLoads exists:
// under plain WMM (store reordering only) the fenceless variant is
// indistinguishable from the correct one — the bug is a load observing the
// past, which store buffers cannot express. A model-strength regression
// that started "verifying" the bug away would break the Caught test above;
// this one breaks if someone makes plain WMM claim the catch.
func TestSeqlockFenceBugInvisibleWithoutStaleLoads(t *testing.T) {
	res := Check(SeqlockProgram(2, 2, true), Config{Mode: WMM})
	if !res.OK {
		t.Fatalf("plain WMM unexpectedly reports %q — update the model notes in mcheck.go", res.Violation)
	}
}

// TestStaleLoadCoherence: a thread that already observed a value never
// reads an older one — the stale fork only offers the thread's last-seen
// value, so two back-to-back reads r1, r2 of a monotonically bumped cell
// must satisfy r2 >= r1.
func TestStaleLoadCoherence(t *testing.T) {
	prog := corrProgram()
	res := Check(prog, Config{Mode: WMM, StaleLoads: true})
	if !res.OK {
		t.Fatalf("CoRR violated: %s (witness %v)", res.Violation, res.Witness)
	}
}

// corrProgram is the CoRR litmus shape: one thread bumps x through 1 then
// 2; another reads x twice with Relaxed loads and asserts monotonicity.
func corrProgram() Program {
	return Program{
		Name: "corr-relaxed",
		Make: func() []func(p *Proc) {
			x := &lockapi.Cell{}
			return []func(p *Proc){
				func(p *Proc) {
					p.Store(x, 1, lockapi.Relaxed)
					p.Store(x, 2, lockapi.Relaxed)
				},
				func(p *Proc) {
					r1 := p.Load(x, lockapi.Relaxed)
					r2 := p.Load(x, lockapi.Relaxed)
					p.Assert(r2 >= r1, "read went backwards in coherence order")
				},
			}
		},
	}
}
