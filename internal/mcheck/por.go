package mcheck

import "github.com/clof-go/clof/internal/lockapi"

// Partial-order reduction (Config.POR): dynamic partial-order reduction in
// the style of Flanagan & Godefroid (POPL 2005) with sleep sets, over the
// announce-before-execute executor.
//
// Two transitions are treated as dependent when they belong to the same
// thread, both apply monitor effects (critical-section or active fairness
// bookkeeping), or touch a common cell with at least one write; everything
// else commutes — independent transitions neither enable nor disable each
// other (awaits watch cell versions, which only writes advance, and an
// await's footprint names the watched cell) and lead to the same state in
// either order. The relation is a conservative superset of true dependence
// (a failed CAS is announced as a write; a drain names every buffered
// entry), which costs reduction but never soundness.
//
// The explorer replays prefixes statelessly like the exhaustive search, but
// maintains, per stack node, the F&G backtrack set (seeded with one enabled
// transition, grown by conflict analysis at every descendant state) and a
// sleep set (transitions already explored by a sibling whose independence
// from the taken edge proves re-exploring them here redundant). Per-event
// happens-before sets are bitsets over schedule indices: hb(j) is the union
// of hb(i) for every earlier dependent i, plus j itself. A pending
// transition's causal past is anchored at its thread's latest executed
// operation (or the issuing store, for a buffered flush); the conflict scan
// walks the trace backwards for the latest dependent event outside that
// past and marks the pending transition's process for back-tracking at the
// state before it.
//
// State-fingerprint deduplication is incompatible with DPOR — pruning a
// revisited state would hide the conflicts that seed ancestor backtrack
// sets — so the reduced search never prunes; fingerprints are still
// collected to report Result.States (distinct states visited) and enforce
// MaxStates. Verdicts are those of the exhaustive search (the equivalence
// matrix in por_test.go pins this across the lock-baseline suite);
// witnesses may differ, as any trace of the violating Mazurkiewicz class
// may be reported. The stale-load relaxation (Config.StaleLoads) forks
// transitions mid-execution, which the footprint protocol does not cover:
// Check falls back to exhaustive exploration for it.

// ckey is the stable identity of a schedulable transition's process: a
// thread (flush == 0) or one buffered store's flush pseudo-process (the
// issuing operation's index + 1). Buffer positions shift as entries commit;
// opIdx does not.
type ckey struct {
	tid   int
	flush uint64
	stale bool
}

// pendInfo is one pending transition at a state: its process identity, its
// (conservative) footprint, and the schedule index anchoring its causal
// past (-1 when it has none).
type pendInfo struct {
	key   ckey
	foot  footprint
	hbRef int
}

// dependent reports whether two transitions may fail to commute (see the
// package comment above for the relation).
func dependent(a, b *footprint) bool {
	if a.tid == b.tid {
		// Same thread: operations are program-ordered, flushes
		// buffer-ordered, and draining operations absorb pending flushes.
		// Treating a thread's own flushes as commuting with its
		// non-conflicting operations is a valid refinement but a practical
		// pessimization: flush pendings then scan past their own thread's
		// operations to old cross-thread conflicts, at nodes where the
		// flush pseudo-process did not exist yet, hitting the all-enabled
		// fallback — measured 20x+ worse on the TTAS/WMM baseline.
		return true
	}
	if a.mon && b.mon {
		return true
	}
	for _, ca := range a.cells {
		for _, cb := range b.cells {
			if ca.idx == cb.idx && (ca.write || cb.write) {
				return true
			}
		}
	}
	return false
}

// copyFoot detaches a footprint from the executor's reusable backing.
func copyFoot(f footprint) footprint {
	f.cells = append([]fpCell(nil), f.cells...)
	return f
}

// porState is what the reduced explorer needs after replaying a prefix.
type porState struct {
	violation string
	enabled   []Choice
	keys      []ckey
	pendings  []pendInfo
	allDone   bool
	fp        fingerprint
	lastFoot  footprint
	readFinal func(c *lockapi.Cell) uint64
}

// traceEv is one executed transition of the current schedule prefix.
type traceEv struct {
	foot footprint
	hb   []uint64 // bitset over schedule indices, including the event's own
}

// porNode is the explorer's per-state bookkeeping.
type porNode struct {
	enabled []Choice
	keys    []ckey
	// The backtrack set, insertion-ordered for deterministic exploration.
	bkeys   []ckey
	bchoice []Choice
	inB     map[ckey]bool
	done    map[ckey]bool
	sleep   map[ckey]footprint
	expl    map[ckey]footprint
	// pendFoot maps each process with a pending transition to its footprint
	// (the foot of the edge taken when that process is scheduled here).
	pendFoot map[ckey]footprint
}

func (n *porNode) addBacktrack(k ckey, ch Choice) {
	if n.inB[k] {
		return
	}
	n.inB[k] = true
	n.bkeys = append(n.bkeys, k)
	n.bchoice = append(n.bchoice, ch)
}

// porChecker is the reduced-search driver.
type porChecker struct {
	prog      Program
	cfg       Config
	seen      map[fingerprint]struct{}
	execs     int
	maxDepth  int
	violation string
	witness   []Choice
	truncated bool

	prefix []Choice
	stack  []*porNode
	trace  []traceEv
}

// checkPOR explores prog with dynamic partial-order reduction.
func checkPOR(prog Program, cfg Config) Result {
	c := &porChecker{prog: prog, cfg: cfg, seen: make(map[fingerprint]struct{})}
	c.explore(nil)
	res := Result{
		Violation:    c.violation,
		Witness:      c.witness,
		Executions:   c.execs,
		States:       len(c.seen),
		MaxDepthSeen: c.maxDepth,
		Truncated:    c.truncated,
		Reduced:      true,
	}
	res.OK = res.Violation == "" && !res.Truncated
	return res
}

// replay executes the current prefix on a fresh instance and captures the
// reduced explorer's view of the resulting state.
func (c *porChecker) replay() porState {
	ex := newExec(c.prog, c.cfg)
	defer ex.shutdown()
	for _, ch := range c.prefix {
		if ex.violation != "" {
			break
		}
		if ch.Flush >= 0 {
			ex.flush(ch.TID, ch.Flush)
		} else {
			ex.step(ch.TID, ch.Stale)
		}
	}
	st := porState{violation: ex.violation}
	if st.violation != "" {
		return st
	}
	st.lastFoot = copyFoot(ex.lastFoot)
	st.allDone = ex.allDone()
	if !st.allDone {
		st.enabled = ex.enabledChoices()
		for _, ch := range st.enabled {
			if ch.Flush >= 0 {
				e := ex.threads[ch.TID].buffer[ch.Flush]
				st.keys = append(st.keys, ckey{tid: ch.TID, flush: e.opIdx + 1})
			} else {
				st.keys = append(st.keys, ckey{tid: ch.TID, stale: ch.Stale})
			}
		}
		for t, p := range ex.threads {
			if !p.done {
				st.pendings = append(st.pendings, pendInfo{
					key:   ckey{tid: t},
					foot:  copyFoot(p.pend.foot),
					hbRef: ex.lastStepIdx[t],
				})
			}
			for i := range p.buffer {
				e := &p.buffer[i]
				st.pendings = append(st.pendings, pendInfo{
					key:   ckey{tid: t, flush: e.opIdx + 1},
					foot:  footprint{tid: t, isFlush: true, cells: []fpCell{{e.cell.idx, true}}},
					hbRef: e.issueIdx,
				})
			}
		}
	}
	st.fp = ex.fingerprint()
	st.readFinal = func(cl *lockapi.Cell) uint64 { return ex.cell(cl).value }
	return st
}

func bitGet(b []uint64, i int) bool { return i/64 < len(b) && b[i/64]&(1<<uint(i%64)) != 0 }

func bitSet(b []uint64, i int) { b[i/64] |= 1 << uint(i%64) }

func bitOr(dst, src []uint64) {
	for i := range src {
		dst[i] |= src[i]
	}
}

func (c *porChecker) fail(msg string) {
	c.violation = msg
	c.witness = append([]Choice(nil), c.prefix...)
}

// explore replays the current prefix, extends the trace, computes backtrack
// points for every pending transition, and recursively explores the
// backtrack set (which descendants may still grow). sleepCand is the
// parent's sleep set plus previously explored siblings; it is filtered
// against the just-executed edge before becoming this node's sleep set.
func (c *porChecker) explore(sleepCand map[ckey]footprint) {
	if c.violation != "" || c.truncated {
		return
	}
	c.execs++
	if len(c.prefix) > c.maxDepth {
		c.maxDepth = len(c.prefix)
	}
	st := c.replay()
	if st.violation != "" {
		c.fail(st.violation)
		return
	}
	sleep := make(map[ckey]footprint)
	if n := len(c.prefix); n > 0 {
		ev := traceEv{foot: st.lastFoot, hb: make([]uint64, (n+63)/64)}
		bitSet(ev.hb, n-1)
		for i := 0; i < n-1; i++ {
			f := c.trace[i].foot
			if dependent(&f, &ev.foot) {
				bitOr(ev.hb, c.trace[i].hb)
			}
		}
		c.trace = append(c.trace, ev)
		defer func() { c.trace = c.trace[:len(c.trace)-1] }()
		for k, f := range sleepCand {
			f := f
			if !dependent(&f, &ev.foot) {
				sleep[k] = f
			}
		}
	}
	if st.allDone {
		if c.prog.Final != nil {
			if msg := c.prog.Final(st.readFinal); msg != "" {
				c.fail("final state: " + msg)
			}
		}
		return
	}
	if len(st.enabled) == 0 {
		c.fail("deadlock (threads blocked with no enabled transition)")
		return
	}
	if _, ok := c.seen[st.fp]; !ok {
		c.seen[st.fp] = struct{}{}
		if len(c.seen) > c.cfg.MaxStates {
			c.truncated = true
			return
		}
	}
	if len(c.prefix) >= c.cfg.MaxDepth {
		c.fail("depth limit exceeded (potential non-termination)")
		return
	}
	for i := range st.pendings {
		c.addBacktracks(&st.pendings[i])
	}
	node := &porNode{
		enabled:  st.enabled,
		keys:     st.keys,
		inB:      make(map[ckey]bool),
		done:     make(map[ckey]bool),
		sleep:    sleep,
		expl:     make(map[ckey]footprint),
		pendFoot: make(map[ckey]footprint, len(st.pendings)),
	}
	for _, pi := range st.pendings {
		node.pendFoot[pi.key] = pi.foot
	}
	c.stack = append(c.stack, node)
	defer func() { c.stack = c.stack[:len(c.stack)-1] }()
	// Seed with the first enabled transition not covered by the sleep set;
	// if the sleep set covers everything, a sibling already explored an
	// equivalent linearization of every continuation from here.
	seeded := false
	for i, k := range node.keys {
		if _, slp := sleep[k]; !slp {
			node.addBacktrack(k, node.enabled[i])
			seeded = true
			break
		}
	}
	if !seeded {
		return
	}
	for i := 0; i < len(node.bkeys); i++ { // grows as descendants add backtracks
		k, ch := node.bkeys[i], node.bchoice[i]
		if node.done[k] {
			continue
		}
		node.done[k] = true
		if _, slp := node.sleep[k]; slp {
			continue
		}
		cand := make(map[ckey]footprint, len(node.sleep)+len(node.expl))
		for k2, f2 := range node.sleep {
			cand[k2] = f2
		}
		for k2, f2 := range node.expl {
			cand[k2] = f2
		}
		c.prefix = append(c.prefix, ch)
		c.explore(cand)
		c.prefix = c.prefix[:len(c.prefix)-1]
		if c.violation != "" || c.truncated {
			return
		}
		// The edge's footprint: for a thread step, the pending footprint of
		// that thread here; for a flush, its single committed cell.
		ek := ckey{tid: k.tid, flush: k.flush}
		if f, ok := node.pendFoot[ek]; ok {
			node.expl[k] = f
		}
	}
}

// addBacktracks implements the F&G conflict scan for one pending
// transition: find the latest executed event dependent with it and outside
// its causal past, and mark its process for exploration at the state before
// that event (falling back to every enabled transition there when the
// process had nothing enabled at that state).
func (c *porChecker) addBacktracks(pi *pendInfo) {
	var hbPast []uint64
	if pi.hbRef >= 0 {
		hbPast = c.trace[pi.hbRef].hb
	}
	for i := len(c.trace) - 1; i >= 0; i-- {
		f := c.trace[i].foot
		if !dependent(&f, &pi.foot) {
			continue
		}
		if bitGet(hbPast, i) {
			continue
		}
		nd := c.stack[i]
		found := false
		for j, k := range nd.keys {
			if k.tid == pi.key.tid && k.flush == pi.key.flush && !k.stale {
				nd.addBacktrack(k, nd.enabled[j])
				found = true
			}
		}
		if !found {
			for j := range nd.keys {
				nd.addBacktrack(nd.keys[j], nd.enabled[j])
			}
		}
		return
	}
}
