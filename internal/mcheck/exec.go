package mcheck

import (
	"github.com/clof-go/clof/internal/lockapi"
)

// stopExec unwinds thread goroutines at replay teardown.
type stopExec struct{}

// mcell is the checker's committed-memory state of one cell.
type mcell struct {
	value uint64
	// version counts committed writes (awaits watch it).
	version uint64
	// wTag identifies the last committing write: mix(tid+1, opIdx). Zero
	// means never written. Used for symmetry-free state fingerprints.
	wTag uint64
	// idx is the cell's registration order (first touch), a deterministic
	// identity for fingerprinting per-thread stale views (StaleLoads) and
	// for cross-replay footprint comparison (POR). Cells are registered when
	// an operation on them is *announced*, so every cell named by a pending
	// or executed transition of a schedule prefix was registered within that
	// prefix — registration order is a function of the prefix, which makes
	// idx a consistent identity across replays sharing the prefix.
	idx uint64
}

// bufEntry is one pending store in a thread's store buffer.
type bufEntry struct {
	cell  *mcell
	value uint64
	order lockapi.Order
	// opIdx is the issuing operation's thread-local index (fingerprints, and
	// the stable identity of this entry's flush pseudo-transition).
	opIdx uint64
	// issueIdx is the schedule index of the issuing store's transition; the
	// flush can causally depend on nothing later (POR happens-before anchor).
	issueIdx int
}

// Pending-transition kinds: what a parked thread does when next granted.
const (
	pkOp    int = iota // a shared-memory operation (load/store/rmw/fence)
	pkYield            // a plain yield (unarmed Spin)
	pkAwait            // an armed Spin: disabled until the watched cell changes
	pkStale            // a stale-read fork (Config.StaleLoads)
)

// fpCell is one cell of a transition footprint. Cells are identified by
// registration order (mcell.idx), not pointer, so footprints recorded in one
// replay compare correctly against footprints from a later replay of the
// same prefix.
type fpCell struct {
	idx   uint64
	write bool
}

// footprint describes what a transition touches: the issuing thread, the
// cells it may read or write, whether it applies monitor effects
// (critical-section or fairness bookkeeping), and whether it is a
// store-buffer flush pseudo-transition. Pending footprints are conservative
// over-approximations — a CAS is announced as a write whether or not it
// will succeed — which costs reduction, never soundness.
type footprint struct {
	tid     int
	mon     bool
	isFlush bool
	cells   []fpCell
}

// pending is a thread's announced next transition: kind, footprint, and (for
// awaits) the watched cell and version.
type pending struct {
	kind     int
	foot     footprint
	awaitOn  *mcell
	awaitVer uint64
}

// Monitor-call kinds (buffered between operations; see Proc.monQ).
const (
	monEnterCS int = iota
	monExitCS
	monBeginWait
	monEndWait
	monAssert
)

// monEntry is one buffered monitor call.
type monEntry struct {
	kind int
	cond bool
	msg  string
}

// Proc is the model checker's processor handle. In addition to lockapi.Proc
// it offers the critical-section and fairness hooks the verification
// programs use.
//
// Execution protocol: every operation *announces* itself (kind + footprint)
// and parks before applying any effect; the grant then applies buffered
// monitor calls and the operation's effects and runs the body to its next
// announce. Monitor calls made between two operations are therefore applied
// exactly when the later operation executes — the same instant they took
// effect when operations parked after their effects — so the protocol
// change is invisible to verdicts while giving the explorer the footprint
// of every pending transition (the enabler for partial-order reduction).
type Proc struct {
	ex     *exec
	tid    int
	resume chan struct{}

	done bool
	pend pending
	monQ []monEntry

	// footCells is the reusable backing for announced footprints; execFoot
	// is the footprint of the transition being (or last) executed, with the
	// mon bit set by drained monitor calls. execFoot keeps its own backing
	// (execCells): the thread announces its next operation — overwriting
	// footCells — before the scheduler reads the executed footprint.
	footCells []fpCell
	execCells []fpCell
	execFoot  footprint

	buffer []bufEntry

	// lastCell is the most recently accessed cell: the await target of the
	// next Spin. lastVer is the cell's version as observed by that access,
	// so a write landing between the poll and the Spin still counts as a
	// wake-up (no lost wake-ups).
	lastCell *mcell
	lastVer  uint64
	// spinArmed is set by memory operations and consumed by Spin; a Spin
	// with no new memory access since the last one is a plain yield, not an
	// await (prevents back-to-back backoff Spins from deadlocking).
	spinArmed bool

	// hist is the rolling hash of this thread's observation sequence; with
	// deterministic bodies it pins the thread's entire local state.
	hist  uint64
	opIdx uint64

	// Stale-load machinery (Config.StaleLoads, WMM only). seen caches the
	// value this thread last observed per cell — the value a Relaxed load
	// may still legally return after memory has moved on. A candidate stale
	// read is announced as a scheduling fork: the thread parks with a
	// pkStale pending, the explorer schedules Choice{Stale: true|false},
	// and staleTake carries the decision back.
	seen       map[*mcell]uint64
	pendingOld uint64
	staleTake  bool
}

// mix is a 64-bit hash combiner (splitmix-style finalization).
func mix(h uint64, vs ...uint64) uint64 {
	for _, v := range vs {
		h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	return h
}

// exec is one replayed program instance.
type exec struct {
	mode    Mode
	threads []*Proc
	yield   chan struct{}
	cells   map[*lockapi.Cell]*mcell

	violation string

	// inCS tracks threads inside the critical section (mutual exclusion).
	inCS int

	// Fairness bookkeeping (bounded bypass).
	fairK        int
	acqTotal     int
	waitingSince []int // -1 when not waiting

	// stale enables the stale-load relaxation (Config.StaleLoads ∧ WMM).
	stale bool

	// stepCount is the number of transitions executed (the trace length);
	// lastStepIdx[t] is the trace index of thread t's latest operation (-1
	// before its first), anchoring the causal past of t's next transition;
	// lastFoot is the footprint of the most recent transition.
	stepCount   int
	lastStepIdx []int
	lastFoot    footprint
}

// newExec instantiates the program and runs every thread to its first
// announced operation. Pre-operation body code is thread-local by
// construction (all shared accesses go through Proc), so sequential priming
// is schedule-neutral; monitor calls made before the first operation are
// buffered and take effect at its grant.
func newExec(prog Program, cfg Config) *exec {
	bodies := prog.Make()
	ex := &exec{
		mode:         cfg.Mode,
		yield:        make(chan struct{}),
		cells:        make(map[*lockapi.Cell]*mcell),
		fairK:        cfg.FairnessK,
		stale:        cfg.StaleLoads && cfg.Mode == WMM,
		waitingSince: make([]int, len(bodies)),
		lastStepIdx:  make([]int, len(bodies)),
	}
	for i := range ex.waitingSince {
		ex.waitingSince[i] = -1
		ex.lastStepIdx[i] = -1
	}
	for i, body := range bodies {
		p := &Proc{ex: ex, tid: i, resume: make(chan struct{}), hist: uint64(i) + 1}
		ex.threads = append(ex.threads, p)
		body := body
		go func() {
			defer func() {
				stopped := false
				if r := recover(); r != nil {
					if _, s := r.(stopExec); !s {
						panic(r)
					}
					stopped = true
				}
				if !stopped {
					// Trailing monitor calls after the last operation take
					// effect within that operation's grant.
					p.drainMon()
				}
				p.done = true
				ex.yield <- struct{}{}
			}()
			body(p)
		}()
		<-ex.yield
	}
	return ex
}

// cell registers (on first touch) and returns the checker state of c. The
// initial value is whatever the instance's setup code placed in the cell.
func (ex *exec) cell(c *lockapi.Cell) *mcell {
	m := ex.cells[c]
	if m == nil {
		m = &mcell{value: c.Raw().Load(), idx: uint64(len(ex.cells)) + 1}
		ex.cells[c] = m
	}
	return m
}

// step grants thread t its announced transition (t must be enabled). stale
// resolves a pending stale-read fork; it is ignored (and false) otherwise.
func (ex *exec) step(t int, stale bool) {
	p := ex.threads[t]
	p.staleTake = stale
	p.resume <- struct{}{}
	<-ex.yield
	ex.lastFoot = p.execFoot
	ex.lastStepIdx[t] = ex.stepCount
	ex.stepCount++
}

// flush commits buffer entry idx of thread t to memory.
func (ex *exec) flush(t, idx int) {
	p := ex.threads[t]
	e := p.buffer[idx]
	commit(e.cell, e.value, uint64(t), e.opIdx)
	p.buffer = append(p.buffer[:idx], p.buffer[idx+1:]...)
	ex.lastFoot = footprint{tid: t, isFlush: true, cells: []fpCell{{e.cell.idx, true}}}
	ex.stepCount++
}

// commit applies a write to memory. A write of the value already present is
// unobservable — no reader can distinguish it — so it does not bump the
// version (this keeps TAS waiters, whose Swap(1) re-writes 1, from waking
// each other forever).
func commit(m *mcell, v, tid, opIdx uint64) {
	if m.value == v {
		return
	}
	m.value = v
	m.version++
	m.wTag = mix(0, tid+1, opIdx)
}

// shutdown terminates all live thread goroutines.
func (ex *exec) shutdown() {
	for _, p := range ex.threads {
		if p.done {
			continue
		}
		close(p.resume)
		<-ex.yield
	}
}

// enabledChoices lists every schedulable transition.
func (ex *exec) enabledChoices() []Choice {
	var out []Choice
	for t, p := range ex.threads {
		switch {
		case p.done:
		case p.pend.kind == pkAwait:
			if p.pend.awaitOn.version != p.pend.awaitVer {
				out = append(out, Choice{TID: t, Flush: -1})
			}
		case p.pend.kind == pkStale:
			// The announced load forks: current value or last-seen.
			out = append(out, Choice{TID: t, Flush: -1})
			out = append(out, Choice{TID: t, Flush: -1, Stale: true})
		default:
			out = append(out, Choice{TID: t, Flush: -1})
		}
		for idx := range p.buffer {
			if ex.flushable(p, idx) {
				out = append(out, Choice{TID: t, Flush: idx})
			}
		}
	}
	return out
}

// flushable applies the memory-model ordering rules to buffer entries.
func (ex *exec) flushable(p *Proc, idx int) bool {
	if idx == 0 {
		return true
	}
	if ex.mode != WMM {
		return false // TSO: FIFO only
	}
	e := p.buffer[idx]
	if e.order != lockapi.Relaxed {
		return false // Release/SeqCst stores wait for predecessors
	}
	for i := 0; i < idx; i++ {
		if p.buffer[i].cell == e.cell {
			return false // same-location coherence
		}
	}
	return true
}

// allDone reports full quiescence.
func (ex *exec) allDone() bool {
	for _, p := range ex.threads {
		if !p.done || len(p.buffer) != 0 {
			return false
		}
	}
	return true
}

// fingerprint summarizes the state; equal fingerprints (with deterministic
// thread bodies) imply equal futures. A thread's pending operation needs no
// mixing of its own — it is a deterministic function of the observation
// history already pinned by hist — but the pending KIND must join the
// status: yields note at announce while operations note at grant, so when a
// backoff loop exhausts, "yield pending" and "next op pending" share the
// same hist and differ only in what is announced. Merging them undercounts
// states and can make the quotient-graph search skip reachable successors
// (observed on HBO, whose exponential backoff is exactly such a loop).
func (ex *exec) fingerprint() fingerprint {
	var fp fingerprint
	for seed := 0; seed < 2; seed++ {
		h := uint64(seed)*0xabcdef1234567891 + 1
		for t, p := range ex.threads {
			status := uint64(0)
			switch {
			case p.done:
				status = 2
			case p.pend.kind == pkAwait:
				status = 1
			case p.pend.kind == pkYield:
				status = 3
			}
			th := mix(p.hist, status)
			if !p.done && p.pend.kind == pkAwait {
				enabled := uint64(0)
				if p.pend.awaitOn.version != p.pend.awaitVer {
					enabled = 1
				}
				th = mix(th, enabled)
			}
			for _, e := range p.buffer {
				th = mix(th, uint64(e.order), e.value, e.opIdx)
			}
			if ex.fairK > 0 {
				// Bounded-bypass counters are state: a thread bypassed
				// twice is closer to a violation than one bypassed once.
				bypass := uint64(0)
				if since := ex.waitingSince[t]; since >= 0 {
					bypass = uint64(ex.acqTotal-since) + 1
				}
				th = mix(th, bypass)
			}
			if ex.stale {
				// The stale view is thread state: same memory, different
				// last-seen values ⇒ different reachable futures. Unordered
				// XOR, like the cell summary below.
				if p.pend.kind == pkStale {
					th = mix(th, 0x57a1e, p.pendingOld)
				}
				var sx uint64
				for m, v := range p.seen {
					sx ^= mix(uint64(seed)+11, m.idx, v)
				}
				th = mix(th, sx)
			}
			h = mix(h, th)
		}
		// Cells as an unordered XOR: each written cell contributes its
		// last-writer tag and value (never-written cells hold their initial
		// value in every reachable state, so they contribute a constant and
		// can be skipped).
		var cx uint64
		for _, m := range ex.cells {
			if m.wTag != 0 {
				cx ^= mix(uint64(seed)+7, m.wTag, m.value)
			}
		}
		fp[seed] = mix(h, cx)
	}
	return fp
}

// replayState is what the explorer needs after replaying a prefix.
type replayState struct {
	violation string
	enabled   []Choice
	allDone   bool
	fp        fingerprint
	readFinal func(c *lockapi.Cell) uint64
}

// replay executes the schedule prefix on a fresh instance.
func (c *checker) replay(prefix []Choice) replayState {
	ex := newExec(c.prog, c.cfg)
	defer ex.shutdown()
	for _, ch := range prefix {
		if ex.violation != "" {
			break
		}
		if ch.Flush >= 0 {
			ex.flush(ch.TID, ch.Flush)
		} else {
			ex.step(ch.TID, ch.Stale)
		}
	}
	st := replayState{violation: ex.violation}
	if st.violation != "" {
		return st
	}
	st.allDone = ex.allDone()
	if !st.allDone {
		st.enabled = ex.enabledChoices()
	}
	st.fp = ex.fingerprint()
	st.readFinal = func(cl *lockapi.Cell) uint64 { return ex.cell(cl).value }
	return st
}

// ---- Proc: lockapi.Proc implementation ----

func (p *Proc) waitTurn() {
	if _, ok := <-p.resume; !ok {
		panic(stopExec{})
	}
}

// fpReset/fpAdd build the next announcement's footprint in the reusable
// per-thread backing array.
func (p *Proc) fpReset()                { p.footCells = p.footCells[:0] }
func (p *Proc) fpAdd(m *mcell, wr bool) { p.footCells = append(p.footCells, fpCell{m.idx, wr}) }

// fpAddBuffer marks every buffered store as a potential write of this
// transition (drain footprints for RMWs, strong fences, SeqCst stores).
// Conservative: entries flushed between announce and grant shrink the real
// drain, never grow it.
func (p *Proc) fpAddBuffer() {
	for i := range p.buffer {
		p.fpAdd(p.buffer[i].cell, true)
	}
}

// announce parks the thread with its next transition and waits for a grant;
// on resume it records the executed footprint and applies the buffered
// monitor calls (see the Proc comment for why this preserves exact verdict
// timing).
func (p *Proc) announce(pd pending) {
	pd.foot = footprint{tid: p.tid, mon: p.monPending(), cells: p.footCells}
	p.pend = pd
	p.ex.yield <- struct{}{}
	p.waitTurn()
	p.execCells = append(p.execCells[:0], p.pend.foot.cells...)
	p.execFoot = footprint{tid: p.tid, mon: p.pend.foot.mon, cells: p.execCells}
	p.drainMon()
}

// monPending reports whether the buffered monitor calls will touch monitor
// state (critical-section nesting, or fairness counters when the
// bounded-bypass check is active) — the mon bit of the pending footprint.
func (p *Proc) monPending() bool {
	for _, e := range p.monQ {
		switch e.kind {
		case monEnterCS, monExitCS:
			return true
		case monBeginWait, monEndWait:
			if p.ex.fairK > 0 {
				return true
			}
		}
	}
	return false
}

// drainMon applies the buffered monitor calls in program order.
func (p *Proc) drainMon() {
	for _, e := range p.monQ {
		switch e.kind {
		case monEnterCS:
			p.ex.inCS++
			if p.ex.inCS > 1 {
				p.ex.violation = "mutual exclusion violated"
			}
			p.execFoot.mon = true
		case monExitCS:
			p.ex.inCS--
			p.execFoot.mon = true
		case monBeginWait:
			if p.ex.fairK > 0 {
				p.ex.waitingSince[p.tid] = p.ex.acqTotal
				p.execFoot.mon = true
			}
		case monEndWait:
			if p.ex.fairK > 0 {
				p.ex.waitingSince[p.tid] = -1
				p.ex.acqTotal++
				for _, since := range p.ex.waitingSince {
					if since >= 0 && p.ex.acqTotal-since >= p.ex.fairK {
						p.ex.violation = "bounded bypass violated (starvation witness)"
					}
				}
				p.execFoot.mon = true
			}
		case monAssert:
			if !e.cond && p.ex.violation == "" {
				p.ex.violation = "assertion failed: " + e.msg
			}
		}
	}
	p.monQ = p.monQ[:0]
}

// readView returns the value of m as seen by this thread (own store buffer
// first, then memory).
func (p *Proc) readView(m *mcell) uint64 {
	for i := len(p.buffer) - 1; i >= 0; i-- {
		if p.buffer[i].cell == m {
			return p.buffer[i].value
		}
	}
	return m.value
}

// drainBuffer commits this thread's buffered stores FIFO (RMWs and strong
// fences do this).
func (p *Proc) drainBuffer() {
	for len(p.buffer) > 0 {
		e := p.buffer[0]
		commit(e.cell, e.value, uint64(p.tid), e.opIdx)
		p.buffer = p.buffer[1:]
	}
}

// commitWrite writes through to memory.
func (p *Proc) commitWrite(m *mcell, v uint64) {
	commit(m, v, uint64(p.tid), p.opIdx)
}

const (
	opLoad uint64 = iota + 1
	opStore
	opAdd
	opSwap
	opCAS
	opFence
	opSpin
)

func (p *Proc) note(op uint64, vals ...uint64) {
	p.opIdx++
	p.hist = mix(p.hist, op, p.opIdx)
	p.hist = mix(p.hist, vals...)
}

// buffered reports whether this thread has a pending store to m (such a
// load must forward from the buffer, so it can never be stale).
func (p *Proc) buffered(m *mcell) bool {
	for i := range p.buffer {
		if p.buffer[i].cell == m {
			return true
		}
	}
	return false
}

// seenSet records the value this thread just observed (or wrote) at m.
func (p *Proc) seenSet(m *mcell, v uint64) {
	if p.seen == nil {
		p.seen = make(map[*mcell]uint64)
	}
	p.seen[m] = v
}

// Load implements lockapi.Proc. With StaleLoads active, a Relaxed load of a
// cell whose memory value moved past this thread's last observation forks:
// it announces the candidate (one scheduling step) and the explorer decides
// between the current value and the stale one. Coherence is respected — the
// only alternative offered is the thread's own last-seen value, so a thread
// never reads backwards past what it already observed. Acquire and SeqCst
// loads discard the thread's stale views and always read current memory.
func (p *Proc) Load(c *lockapi.Cell, o lockapi.Order) uint64 {
	m := p.ex.cell(c)
	p.fpReset()
	p.fpAdd(m, false)
	p.announce(pending{kind: pkOp})
	v := p.readView(m)
	if p.ex.stale {
		if o == lockapi.Relaxed && !p.buffered(m) {
			if old, ok := p.seen[m]; ok && old != v {
				// Announce the fork and park until the explorer decides.
				p.pendingOld = old
				p.fpReset()
				p.fpAdd(m, false)
				p.announce(pending{kind: pkStale})
				if p.staleTake {
					v = old
				} else {
					v = p.readView(m) // current as of the decision
				}
			}
		} else if o != lockapi.Relaxed {
			clear(p.seen)
		}
		p.seenSet(m, v)
	}
	p.lastCell = m
	p.lastVer = m.version
	p.spinArmed = true
	p.note(opLoad, v)
	return v
}

// Store implements lockapi.Proc. Under SC it writes through; under TSO/WMM
// it enters the store buffer (no memory effect at this transition — the
// commit belongs to the flush pseudo-transition) and commits at a later
// flush.
func (p *Proc) Store(c *lockapi.Cell, v uint64, o lockapi.Order) {
	m := p.ex.cell(c)
	writeThrough := p.ex.mode == SC || o == lockapi.SeqCst
	p.fpReset()
	if writeThrough {
		if o == lockapi.SeqCst {
			p.fpAddBuffer()
		}
		p.fpAdd(m, true)
	}
	p.announce(pending{kind: pkOp})
	p.lastCell = m
	p.spinArmed = true
	if p.ex.stale {
		// Own writes dominate the thread's view (readView forwards from the
		// buffer until the flush, and coherence after it).
		p.seenSet(m, v)
	}
	p.note(opStore, v)
	if writeThrough {
		if o == lockapi.SeqCst {
			p.drainBuffer()
		}
		p.commitWrite(m, v)
	} else {
		p.buffer = append(p.buffer, bufEntry{cell: m, value: v, order: o, opIdx: p.opIdx, issueIdx: p.ex.stepCount})
	}
	p.lastVer = m.version
}

// Add implements lockapi.Proc (returns the new value). RMWs drain the store
// buffer and act on memory, like hardware atomics.
func (p *Proc) Add(c *lockapi.Cell, delta uint64, _ lockapi.Order) uint64 {
	m := p.ex.cell(c)
	p.fpReset()
	p.fpAddBuffer()
	p.fpAdd(m, true)
	p.announce(pending{kind: pkOp})
	p.drainBuffer()
	nv := m.value + delta
	p.commitWrite(m, nv)
	p.rmwSeen(m, nv)
	p.lastCell = m
	p.lastVer = m.version
	p.spinArmed = true
	p.note(opAdd, nv)
	return nv
}

// Swap implements lockapi.Proc (returns the old value).
func (p *Proc) Swap(c *lockapi.Cell, v uint64, _ lockapi.Order) uint64 {
	m := p.ex.cell(c)
	p.fpReset()
	p.fpAddBuffer()
	p.fpAdd(m, true)
	p.announce(pending{kind: pkOp})
	p.drainBuffer()
	old := m.value
	p.commitWrite(m, v)
	p.rmwSeen(m, v)
	p.lastCell = m
	p.lastVer = m.version
	p.spinArmed = true
	p.note(opSwap, old)
	return old
}

// CAS implements lockapi.Proc. Announced as a write whether or not it will
// succeed (the outcome is unknown until execution).
func (p *Proc) CAS(c *lockapi.Cell, old, new uint64, _ lockapi.Order) bool {
	m := p.ex.cell(c)
	p.fpReset()
	p.fpAddBuffer()
	p.fpAdd(m, true)
	p.announce(pending{kind: pkOp})
	p.drainBuffer()
	ok := m.value == old
	if ok {
		p.commitWrite(m, new)
	}
	p.rmwSeen(m, m.value)
	p.lastCell = m
	p.lastVer = m.version
	p.spinArmed = true
	var okBit uint64
	if ok {
		okBit = 1
	}
	p.note(opCAS, okBit)
	return ok
}

// rmwSeen records an RMW's observation under StaleLoads: atomics read the
// current value, so the thread's stale views of every cell are discharged
// and its view of m is the RMW's result.
func (p *Proc) rmwSeen(m *mcell, v uint64) {
	if !p.ex.stale {
		return
	}
	clear(p.seen)
	p.seenSet(m, v)
}

// Fence implements lockapi.Proc: strong fences drain the store buffer, and
// under StaleLoads they also discharge the thread's stale views — the
// Acquire fence in seqlock's ReadValidate is exactly this edge.
func (p *Proc) Fence(o lockapi.Order) {
	p.fpReset()
	if o != lockapi.Relaxed {
		p.fpAddBuffer()
	}
	p.announce(pending{kind: pkOp})
	if o != lockapi.Relaxed {
		p.drainBuffer()
		if p.ex.stale {
			clear(p.seen)
		}
	}
	p.note(opFence, uint64(o))
}

// Spin implements lockapi.Proc: an armed Spin awaits a change of the last
// accessed cell (collapsing the spin loop); an unarmed Spin (no memory
// access since the previous one) is a plain yield. The await takes effect
// at the announcement — the thread parks disabled immediately, without a
// separate schedulable parking step (the old parking step had no shared
// effect, so eliding it preserves verdicts and shrinks the state space).
func (p *Proc) Spin() {
	p.note(opSpin)
	if p.spinArmed && p.lastCell != nil {
		p.spinArmed = false
		m, ver := p.lastCell, p.lastVer
		p.fpReset()
		p.fpAdd(m, false)
		p.announce(pending{kind: pkAwait, awaitOn: m, awaitVer: ver})
	} else {
		p.fpReset()
		p.announce(pending{kind: pkYield})
	}
}

// ID implements lockapi.Proc.
func (p *Proc) ID() int { return p.tid }

// EnterCS marks critical-section entry; two concurrent holders violate
// mutual exclusion. Like all monitor calls it is buffered and takes effect
// when the next operation executes (or at thread completion).
func (p *Proc) EnterCS() {
	p.monQ = append(p.monQ, monEntry{kind: monEnterCS})
}

// ExitCS marks critical-section exit.
func (p *Proc) ExitCS() {
	p.monQ = append(p.monQ, monEntry{kind: monExitCS})
}

// BeginWait marks the start of a lock acquisition (bounded-bypass check).
func (p *Proc) BeginWait() {
	p.monQ = append(p.monQ, monEntry{kind: monBeginWait})
}

// EndWait marks a successful acquisition; if any still-waiting thread has
// been bypassed FairnessK times, that is a fairness violation.
func (p *Proc) EndWait() {
	p.monQ = append(p.monQ, monEntry{kind: monEndWait})
}

// Assert reports a program-specific invariant violation (the condition is
// evaluated at the call site; the report lands with the next operation).
func (p *Proc) Assert(cond bool, msg string) {
	p.monQ = append(p.monQ, monEntry{kind: monAssert, cond: cond, msg: msg})
}

var _ lockapi.Proc = (*Proc)(nil)
