package xrand

import "math"

// This file adds the YCSB-style Zipfian item generator (Gray et al.,
// "Quickly Generating Billion-Record Synthetic Databases", SIGMOD'94 — the
// algorithm YCSB's ZipfianGenerator uses). The KV workload driver
// (internal/store, internal/figures' kv experiment) draws hot-key-skewed key
// indices from it; determinism follows from the underlying SplitMix64 stream
// and the platform-independent math.Pow software implementation.

// Zipf draws values in [0, n) with a Zipfian distribution: item rank r is
// drawn with probability proportional to 1/(r+1)^theta. theta in (0, 1)
// controls skew (YCSB's default is 0.99: ~10% of items receive ~80% of
// draws); theta = 0 would be uniform but is rejected — use Intn.
type Zipf struct {
	r     *Rand
	n     uint64
	theta float64
	// Precomputed constants of the Gray et al. inversion.
	alpha, zetan, eta, zeta2 float64
}

// NewZipf builds a generator over [0, n) with skew theta, drawing randomness
// from r. Construction is O(n) (it computes the harmonic normalizer); reuse
// one generator per worker rather than rebuilding per draw. It panics if
// n <= 0 or theta is outside (0, 1).
func NewZipf(r *Rand, n uint64, theta float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	if theta <= 0 || theta >= 1 {
		panic("xrand: NewZipf theta must be in (0, 1)")
	}
	z := &Zipf{r: r, n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

// zeta computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next value. Rank 0 is the hottest item; callers that want
// the hot set scattered across the keyspace should permute the result (e.g.
// multiply by a prime modulo n) rather than use ranks directly.
func (z *Zipf) Next() uint64 {
	u := z.r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	v := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n { // guard the open interval against float rounding
		v = z.n - 1
	}
	return v
}

// N returns the generator's item count.
func (z *Zipf) N() uint64 { return z.n }
