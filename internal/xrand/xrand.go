// Package xrand provides a small, fast, deterministic pseudo-random number
// generator (SplitMix64) for the simulator. Unlike math/rand it has an
// explicit, copyable state and identical output across platforms, which the
// reproducibility of simulation results depends on.
package xrand

// Rand is a SplitMix64 generator. The zero value is a valid generator seeded
// with 0; prefer New to decorrelate streams.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Uint64 returns the next 64-bit value of the stream.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value uniform in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a value uniform in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a value uniform in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Split returns a new generator deterministically derived from this one, for
// giving each simulated thread an independent stream.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}
