package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical values", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInt63nRange(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		v := r.Int63n(77)
		if v < 0 || v >= 77 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestSplitIndependence(t *testing.T) {
	r := New(11)
	a := r.Split()
	b := r.Split()
	if a.Uint64() == b.Uint64() {
		t.Error("split streams start identically")
	}
}

// Uniformity smoke test: buckets of Intn(8) over many draws are roughly even.
func TestRoughUniformity(t *testing.T) {
	r := New(123)
	var buckets [8]int
	const n = 80000
	for i := 0; i < n; i++ {
		buckets[r.Intn(8)]++
	}
	for i, c := range buckets {
		if c < n/8-n/40 || c > n/8+n/40 {
			t.Errorf("bucket %d count %d deviates from %d", i, c, n/8)
		}
	}
}
