package xrand

import "testing"

// TestZipfRange: every draw lands in [0, n).
func TestZipfRange(t *testing.T) {
	z := NewZipf(New(1), 100, 0.99)
	for i := 0; i < 10000; i++ {
		if v := z.Next(); v >= 100 {
			t.Fatalf("draw %d out of range: %d", i, v)
		}
	}
}

// TestZipfSkew: with YCSB's theta=0.99 the head of the distribution must
// dominate — rank 0 drawn far more than a uniform share, and the top 10% of
// ranks absorbing well over half the draws.
func TestZipfSkew(t *testing.T) {
	const n, draws = 1000, 200000
	z := NewZipf(New(7), n, 0.99)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	if uniform := draws / n; counts[0] < 20*uniform {
		t.Errorf("rank 0 drawn %d times, want >> uniform share %d", counts[0], uniform)
	}
	top := 0
	for _, c := range counts[:n/10] {
		top += c
	}
	if float64(top)/draws < 0.6 {
		t.Errorf("top 10%% of ranks got %.1f%% of draws, want > 60%%", 100*float64(top)/draws)
	}
	// Monotone head: rank 0 >= rank 1 >= rank 2 (with this many draws the
	// ordering of the head is stable).
	if counts[0] < counts[1] || counts[1] < counts[2] {
		t.Errorf("head not monotone: %d, %d, %d", counts[0], counts[1], counts[2])
	}
}

// TestZipfDeterminism: identical seeds give identical streams.
func TestZipfDeterminism(t *testing.T) {
	a := NewZipf(New(42), 500, 0.9)
	b := NewZipf(New(42), 500, 0.9)
	for i := 0; i < 1000; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("streams diverge at %d: %d vs %d", i, x, y)
		}
	}
}

// TestZipfPanics: the constructor rejects degenerate parameters.
func TestZipfPanics(t *testing.T) {
	for _, tc := range []struct {
		name  string
		n     uint64
		theta float64
	}{
		{"zero-n", 0, 0.99},
		{"theta-0", 10, 0},
		{"theta-1", 10, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewZipf did not panic", tc.name)
				}
			}()
			NewZipf(New(1), tc.n, tc.theta)
		}()
	}
}
