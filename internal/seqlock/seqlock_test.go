package seqlock

import (
	"testing"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/rwlock"
	"github.com/clof-go/clof/internal/topo"
)

// TestVersionProtocol pins the version-word state machine: even when idle,
// odd while a writer is inside, +2 per completed write, and ReadValidate
// failing for any sample that a writer overlapped.
func TestVersionProtocol(t *testing.T) {
	l := Wrap(locks.NewTicket(), Opts{}).(*Lock)
	p := lockapi.NewNativeProc(0)
	c := l.NewCtx()

	s := l.ReadSeq(p)
	if s&1 != 0 {
		t.Fatalf("idle ReadSeq returned odd version %d", s)
	}
	if !l.ReadValidate(p, s) {
		t.Fatal("validation failed with no writer activity")
	}

	l.Acquire(p, c)
	if l.ReadValidate(p, s) {
		t.Fatal("validation passed while a writer holds the lock")
	}
	l.Release(p, c)
	if l.ReadValidate(p, s) {
		t.Fatal("validation passed across a completed write")
	}

	s2 := l.ReadSeq(p)
	if s2 != s+2 {
		t.Fatalf("version advanced %d -> %d across one write, want +2", s, s2)
	}
	if !l.ReadValidate(p, s2) {
		t.Fatal("fresh sample failed validation")
	}
}

// TestTryAcquire pins trylock forwarding: a successful try opens the torn
// window exactly like Acquire, and TrySupported mirrors the inner lock.
func TestTryAcquire(t *testing.T) {
	l := Wrap(locks.NewTicket(), Opts{}).(*Lock)
	p := lockapi.NewNativeProc(0)
	c := l.NewCtx()
	if !l.TrySupported() {
		t.Fatal("seq over ticket lost TrySupported")
	}
	s := l.ReadSeq(p)
	if !l.TryAcquire(p, c) {
		t.Fatal("uncontended TryAcquire failed")
	}
	if l.ReadValidate(p, s) {
		t.Fatal("validation passed while a try-holder is inside")
	}
	l.Release(p, c)
	if got := l.ReadSeq(p); got != s+2 {
		t.Fatalf("try+release advanced version %d -> %d, want +2", s, got)
	}
	if !lockapi.Fair(locks.NewTicket()) || !l.Fair() {
		t.Fatal("Fair not forwarded from the fair inner lock")
	}
}

// TestWrapSelectsRWVariant: wrapping a shared-capable lock must preserve
// RWLocker, and shared holds must not advance the version (optimistic
// readers may overlap shared holders).
func TestWrapSelectsRWVariant(t *testing.T) {
	m := topo.X86Server()
	l := Wrap(rwlock.Adapt(rwlock.New(m, topo.CacheGroup, locks.NewMCS())), Opts{})
	rw, ok := l.(lockapi.RWLocker)
	if !ok {
		t.Fatal("seq over rwlock lost RWLocker")
	}
	sr, ok := l.(lockapi.SeqReader)
	if !ok {
		t.Fatal("RW variant lost SeqReader")
	}
	p := lockapi.NewNativeProc(0)
	c := l.NewCtx()
	s := sr.ReadSeq(p)
	rw.AcquireShared(p, c)
	if !sr.ReadValidate(p, s) {
		t.Fatal("shared hold advanced the version")
	}
	rw.ReleaseShared(p, c)

	if _, isRW := Wrap(locks.NewTicket(), Opts{}).(lockapi.RWLocker); isRW {
		t.Fatal("seq over a plain lock grew a phantom RWLocker")
	}
}

// TestOmitReadFenceFixture: the fixture flag must change only the fence, not
// the version arithmetic — the single-threaded protocol still validates.
func TestOmitReadFenceFixture(t *testing.T) {
	l := Wrap(locks.NewTicket(), Opts{OmitReadFence: true}).(*Lock)
	p := lockapi.NewNativeProc(0)
	c := l.NewCtx()
	s := l.ReadSeq(p)
	if !l.ReadValidate(p, s) {
		t.Fatal("fixture broke single-threaded validation")
	}
	l.Acquire(p, c)
	l.Release(p, c)
	if l.ReadValidate(p, s) {
		t.Fatal("fixture broke version-bump detection")
	}
}
