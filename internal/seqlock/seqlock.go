// Package seqlock wraps any catalog lock with a seqlock version word,
// giving its critical sections an optimistic (validated) read path
// (DESIGN.md S33, the catalog's `seq:` family).
//
// Writers take the inner lock as usual; the wrapper advances a version cell
// to odd before the critical section's stores and back to even after them.
// Readers never acquire anything: they sample the version with
// lockapi.SeqReader.ReadSeq, read the protected data with plain loads, and
// call ReadValidate — an Acquire fence plus version re-check — to learn
// whether the snapshot is consistent. A failed validation means a writer
// overlapped and every value read since ReadSeq may be torn; callers discard
// and retry, falling back to the pessimistic path after repeated failures
// (internal/store implements that fallback with a per-shard adaptive bound).
//
// The wrapper composes with the whole catalog: `seq:tkt` is a Ticketlock
// with an optimistic read path, `seq:clof:tkt-tkt-tkt-tkt` a CLoF
// composition with one. The read-validation fence discipline is verified by
// internal/mcheck's SeqlockProgram under SC and WMM, including a seeded
// missing-read-fence variant (Opts.OmitReadFence) the checker must catch.
package seqlock

import "github.com/clof-go/clof/internal/lockapi"

// Opts configures Wrap. The zero value is the correct production protocol.
type Opts struct {
	// OmitReadFence drops the Acquire fence from ReadValidate, seeding the
	// classic seqlock reader bug: data loads may be satisfied after the
	// version re-read, so a stale even version can certify a torn snapshot.
	// Fixture-only — it exists so mcheck's SeqlockProgram can demonstrate
	// the checker catches the missing fence (mcheck/program.go).
	OmitReadFence bool
}

// Lock is a seqlock wrapper around an inner lock. It implements
// lockapi.SeqReader for optimistic readers and forwards the inner lock's
// optional capabilities (TryLocker, WaiterDetector, FairnessInfo). Use Wrap
// to construct one: Wrap picks the RW variant when the inner lock supports
// shared mode.
type Lock struct {
	// Probe reports the wrapper's acquire/grant/release edges to an
	// attached observer (lockapi.Instrumented). The wrapper owns the edges:
	// catalog construction leaves the inner lock uninstrumented.
	lockapi.Probe
	inner lockapi.Lock
	seq   lockapi.Cell
	// omitReadFence is Opts.OmitReadFence (fixture-only, see Opts).
	omitReadFence bool
}

// Wrap returns inner with a seqlock version word wrapped around its
// exclusive path. If inner supports shared acquisitions (lockapi.RWLocker),
// the returned lock forwards them — shared holders exclude writers but do
// not advance the version, so optimistic readers overlap them freely.
func Wrap(inner lockapi.Lock, o Opts) lockapi.Lock {
	l := &Lock{inner: inner, omitReadFence: o.OmitReadFence}
	if rw, ok := inner.(lockapi.RWLocker); ok {
		return &RW{Lock: l, rw: rw}
	}
	return l
}

// Inner returns the wrapped lock (tests and diagnostics).
func (l *Lock) Inner() lockapi.Lock { return l.inner }

// NewCtx implements lockapi.Lock; the wrapper itself needs no per-thread
// state, so the context is the inner lock's.
func (l *Lock) NewCtx() lockapi.Ctx { return l.inner.NewCtx() }

// Acquire implements lockapi.Lock: take the inner lock, then advance the
// version to odd. The AcqRel RMW orders the bump after the inner acquire and
// before the critical section's stores, opening the torn window no earlier
// than necessary and no later than the first protected write.
func (l *Lock) Acquire(p lockapi.Proc, c lockapi.Ctx) {
	l.EmitAcquireStart(p)
	l.inner.Acquire(p, c)
	p.Add(&l.seq, 1, lockapi.AcqRel)
	l.EmitAcquired(p)
}

// Release implements lockapi.Lock: advance the version to even — the
// Release RMW publishes every critical-section store before the version
// flips — then release the inner lock.
func (l *Lock) Release(p lockapi.Proc, c lockapi.Ctx) {
	p.Add(&l.seq, 1, lockapi.Release)
	l.inner.Release(p, c)
	l.EmitReleased(p)
}

// TryAcquire implements lockapi.TryLocker by delegation; a successful try
// advances the version exactly as Acquire does. Callers must consult
// TrySupported first, as for any conditional TryLocker.
func (l *Lock) TryAcquire(p lockapi.Proc, c lockapi.Ctx) bool {
	tl, ok := l.inner.(lockapi.TryLocker)
	if !ok || !tl.TryAcquire(p, c) {
		return false
	}
	p.Add(&l.seq, 1, lockapi.AcqRel)
	// A trylock never waits: both acquire edges land at the success instant.
	l.EmitAcquireStart(p)
	l.EmitAcquired(p)
	return true
}

// TrySupported implements lockapi.TryInfo: the wrapper supports trylock
// exactly when the inner lock does.
func (l *Lock) TrySupported() bool { return lockapi.SupportsTry(l.inner) }

// HasWaiters implements lockapi.WaiterDetector by delegation; callers
// consult lockapi.DetectsWaiters first, as for any conditional detector.
func (l *Lock) HasWaiters(p lockapi.Proc, c lockapi.Ctx) bool {
	return l.inner.(lockapi.WaiterDetector).HasWaiters(p, c)
}

// WaitersDetectable implements lockapi.WaiterInfo: detection is usable
// exactly when the inner lock's is.
func (l *Lock) WaitersDetectable() bool { return lockapi.DetectsWaiters(l.inner) }

// Fair implements lockapi.FairnessInfo by delegation.
func (l *Lock) Fair() bool { return lockapi.Fair(l.inner) }

// ReadSeq implements lockapi.SeqReader: return an even version sample,
// spinning past in-flight writers. The Acquire load orders the caller's
// subsequent data reads after the sample.
func (l *Lock) ReadSeq(p lockapi.Proc) uint64 {
	for {
		s := p.Load(&l.seq, lockapi.Acquire)
		if s&1 == 0 {
			return s
		}
		p.Spin()
	}
}

// ReadValidate implements lockapi.SeqReader: an Acquire fence keeps the
// caller's preceding data loads from sinking past the version re-read, then
// the re-read confirms no writer entered since ReadSeq returned s. The
// re-read itself can be Relaxed: the fence already orders it against the
// data loads, and its value is only compared, never dereferenced.
func (l *Lock) ReadValidate(p lockapi.Proc, s uint64) bool {
	if !l.omitReadFence {
		p.Fence(lockapi.Acquire)
	}
	return p.Load(&l.seq, lockapi.Relaxed) == s
}

// RW is the Wrap variant for inner locks that support shared mode: it
// forwards AcquireShared/ReleaseShared to the inner lock unchanged. Shared
// holders do not advance the version — they exclude writers, exactly like
// the optimistic readers they may overlap with, so a validated optimistic
// snapshot taken during a shared hold is still consistent.
type RW struct {
	*Lock
	rw lockapi.RWLocker
}

// AcquireShared implements lockapi.RWLocker by delegation.
func (l *RW) AcquireShared(p lockapi.Proc, c lockapi.Ctx) { l.rw.AcquireShared(p, c) }

// ReleaseShared implements lockapi.RWLocker by delegation.
func (l *RW) ReleaseShared(p lockapi.Proc, c lockapi.Ctx) { l.rw.ReleaseShared(p, c) }

var (
	_ lockapi.Lock      = (*Lock)(nil)
	_ lockapi.TryInfo   = (*Lock)(nil)
	_ lockapi.SeqReader = (*Lock)(nil)
	_ lockapi.RWLocker  = (*RW)(nil)
	_ lockapi.SeqReader = (*RW)(nil)
)
