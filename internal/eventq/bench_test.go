package eventq

import "testing"

// The BenchmarkQueue suite covers the three shapes the simulator drives the
// queue with: the scheduler's requeue-and-grant cycle (PushPop vs the old
// Push+Pop pair) at steady sizes, pure growth/drain (wake storms), and the
// fast path's per-operation MinTime probe.

func benchCycle(b *testing.B, size int, pushPop bool) {
	var q Queue[int]
	for i := 0; i < size; i++ {
		q.Push(int64(i), i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	t := int64(size)
	for i := 0; i < b.N; i++ {
		if pushPop {
			q.PushPop(t, i)
		} else {
			q.Push(t, i)
			q.Pop()
		}
		t++
	}
}

func BenchmarkQueueCycle16(b *testing.B)   { benchCycle(b, 16, false) }
func BenchmarkQueueCycle256(b *testing.B)  { benchCycle(b, 256, false) }
func BenchmarkQueueCycle4096(b *testing.B) { benchCycle(b, 4096, false) }

func BenchmarkQueuePushPop16(b *testing.B)   { benchCycle(b, 16, true) }
func BenchmarkQueuePushPop256(b *testing.B)  { benchCycle(b, 256, true) }
func BenchmarkQueuePushPop4096(b *testing.B) { benchCycle(b, 4096, true) }

func BenchmarkQueueMinTime(b *testing.B) {
	var q Queue[int]
	for i := 0; i < 64; i++ {
		q.Push(int64(i), i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var acc int64
	for i := 0; i < b.N; i++ {
		t, _ := q.MinTime()
		acc += t
	}
	_ = acc
}

func BenchmarkQueueGrowDrain(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var q Queue[int]
		for j := 0; j < 1024; j++ {
			q.Push(int64((j*131)%977), j)
		}
		for q.Len() > 0 {
			q.Pop()
		}
	}
}
