package eventq

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyQueue(t *testing.T) {
	var q Queue[int]
	if q.Len() != 0 {
		t.Error("new queue not empty")
	}
	if _, _, ok := q.Pop(); ok {
		t.Error("Pop on empty queue returned ok")
	}
	if _, _, ok := q.Min(); ok {
		t.Error("Min on empty queue returned ok")
	}
}

func TestPopOrder(t *testing.T) {
	var q Queue[string]
	q.Push(30, "c")
	q.Push(10, "a")
	q.Push(20, "b")
	want := []struct {
		t int64
		v string
	}{{10, "a"}, {20, "b"}, {30, "c"}}
	for _, w := range want {
		tm, v, ok := q.Pop()
		if !ok || tm != w.t || v != w.v {
			t.Fatalf("Pop = (%d,%q,%v), want (%d,%q,true)", tm, v, ok, w.t, w.v)
		}
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 100; i++ {
		q.Push(5, i)
	}
	for i := 0; i < 100; i++ {
		_, v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("tie-broken pop %d = %d", i, v)
		}
	}
}

func TestMinMatchesPop(t *testing.T) {
	var q Queue[int]
	q.Push(7, 1)
	q.Push(3, 2)
	mt, mv, _ := q.Min()
	pt, pv, _ := q.Pop()
	if mt != pt || mv != pv {
		t.Errorf("Min (%d,%d) != Pop (%d,%d)", mt, mv, pt, pv)
	}
}

// Property: popping everything yields times in non-decreasing order and
// preserves the multiset of pushed times.
func TestHeapProperty(t *testing.T) {
	f := func(times []int64) bool {
		var q Queue[int64]
		for _, tm := range times {
			q.Push(tm, tm)
		}
		got := make([]int64, 0, len(times))
		prev := int64(math.MinInt64)
		for q.Len() > 0 {
			tm, v, ok := q.Pop()
			if !ok || tm != v || tm < prev {
				return false
			}
			prev = tm
			got = append(got, tm)
		}
		sorted := append([]int64(nil), times...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		if len(got) != len(sorted) {
			return false
		}
		for i := range got {
			if got[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestInterleavedPushPop(t *testing.T) {
	var q Queue[int]
	q.Push(10, 10)
	q.Push(5, 5)
	if _, v, _ := q.Pop(); v != 5 {
		t.Fatal("want 5 first")
	}
	q.Push(1, 1)
	q.Push(20, 20)
	if _, v, _ := q.Pop(); v != 1 {
		t.Fatal("want 1 after push")
	}
	if _, v, _ := q.Pop(); v != 10 {
		t.Fatal("want 10")
	}
	if _, v, _ := q.Pop(); v != 20 {
		t.Fatal("want 20")
	}
}
