// Package eventq implements the time-ordered event queue at the heart of the
// discrete-event simulator: a binary min-heap ordered by (time, sequence).
// The sequence number makes the pop order total and therefore the whole
// simulation deterministic even when events share a timestamp.
package eventq

// Queue is a deterministic min-priority queue of values with int64
// timestamps. The zero value is an empty, ready-to-use queue.
type Queue[T any] struct {
	items []entry[T]
	seq   uint64
}

type entry[T any] struct {
	time int64
	seq  uint64
	val  T
}

// Len returns the number of queued events.
func (q *Queue[T]) Len() int { return len(q.items) }

// Push enqueues val at the given virtual time. Events with equal times pop
// in Push order.
func (q *Queue[T]) Push(time int64, val T) {
	q.seq++
	q.items = append(q.items, entry[T]{time: time, seq: q.seq, val: val})
	q.up(len(q.items) - 1)
}

// Min returns the earliest event's time and value without removing it.
// The boolean is false if the queue is empty.
func (q *Queue[T]) Min() (int64, T, bool) {
	if len(q.items) == 0 {
		var zero T
		return 0, zero, false
	}
	e := q.items[0]
	return e.time, e.val, true
}

// Pop removes and returns the earliest event. The boolean is false if the
// queue is empty.
func (q *Queue[T]) Pop() (int64, T, bool) {
	if len(q.items) == 0 {
		var zero T
		return 0, zero, false
	}
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	var zero entry[T]
	q.items[last] = zero
	q.items = q.items[:last]
	if len(q.items) > 0 {
		q.down(0)
	}
	return top.time, top.val, true
}

func (q *Queue[T]) less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

func (q *Queue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *Queue[T]) down(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
}
