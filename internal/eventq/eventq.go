// Package eventq implements the time-ordered event queue at the heart of the
// discrete-event simulator: a cached-min 4-ary min-heap ordered by
// (time, sequence). The sequence number makes the pop order total and
// therefore the whole simulation deterministic even when events share a
// timestamp.
//
// Two properties matter for the simulator's run-ahead fast path
// (internal/memsim): MinTime is a single field read, because the running
// virtual CPU consults it after *every* simulated operation to decide
// whether it may keep executing inline; and the heap is 4-ary, because the
// shallower tree halves the pointer-chasing of the slow path's Push/Pop
// cycle relative to a binary heap.
package eventq

// shrinkFloor is the smallest backing-array capacity Pop will shrink to.
// Steady-state queues (one entry per virtual CPU) never reach it, so the
// shrink path costs nothing on the hot loop; only sweeps that ballooned the
// queue (chaos wake storms) pay a copy on the way back down.
const shrinkFloor = 1024

// Queue is a deterministic min-priority queue of values with int64
// timestamps. The zero value is an empty, ready-to-use queue.
//
// The minimum entry is cached outside the heap in head: Min and MinTime
// never touch the backing array, and a Push that supersedes the current
// minimum swaps with the cache instead of sifting the whole tree.
type Queue[T any] struct {
	head    entry[T]
	hasHead bool
	items   []entry[T] // 4-ary heap of everything except head
	seq     uint64
}

type entry[T any] struct {
	time int64
	seq  uint64
	val  T
}

func (e entry[T]) before(o entry[T]) bool {
	if e.time != o.time {
		return e.time < o.time
	}
	return e.seq < o.seq
}

// Len returns the number of queued events.
func (q *Queue[T]) Len() int {
	n := len(q.items)
	if q.hasHead {
		n++
	}
	return n
}

// Push enqueues val at the given virtual time. Events with equal times pop
// in Push order.
func (q *Queue[T]) Push(time int64, val T) {
	q.seq++
	e := entry[T]{time: time, seq: q.seq, val: val}
	if !q.hasHead {
		q.head = e
		q.hasHead = true
		return
	}
	if e.before(q.head) {
		e, q.head = q.head, e
	}
	q.heapPush(e)
}

// Min returns the earliest event's time and value without removing it.
// The boolean is false if the queue is empty.
func (q *Queue[T]) Min() (int64, T, bool) {
	if !q.hasHead {
		var zero T
		return 0, zero, false
	}
	return q.head.time, q.head.val, true
}

// MinTime returns the earliest event's time, or ok=false when empty. It is
// the simulator fast path's per-operation check and compiles to a pair of
// field reads.
func (q *Queue[T]) MinTime() (int64, bool) {
	return q.head.time, q.hasHead
}

// Pop removes and returns the earliest event. The boolean is false if the
// queue is empty.
func (q *Queue[T]) Pop() (int64, T, bool) {
	if !q.hasHead {
		var zero T
		return 0, zero, false
	}
	top := q.head
	if len(q.items) > 0 {
		q.head = q.heapPop()
	} else {
		q.hasHead = false
		var zero entry[T]
		q.head = zero
	}
	return top.time, top.val, true
}

// PushPop is Push(time, val) immediately followed by Pop, avoiding the
// double sift when one would undo the other. The scheduler's grant loop is
// exactly this shape: requeue the thread that just ran, hand the turn to
// whichever thread is now earliest.
func (q *Queue[T]) PushPop(time int64, val T) (int64, T) {
	q.seq++
	e := entry[T]{time: time, seq: q.seq, val: val}
	if !q.hasHead || e.before(q.head) {
		// The new event is the earliest (or the queue was empty): it pops
		// right back out and the heap is never touched.
		return e.time, e.val
	}
	top := q.head
	if len(q.items) == 0 || e.before(q.items[0]) {
		q.head = e
	} else {
		q.head = q.items[0]
		q.items[0] = e
		q.down(0)
	}
	return top.time, top.val
}

// heapPush inserts e into the 4-ary heap (not the head cache).
func (q *Queue[T]) heapPush(e entry[T]) {
	q.items = append(q.items, e)
	q.up(len(q.items) - 1)
}

// heapPop removes the heap's minimum (the queue's second-earliest event).
// When the backing array is large and three-quarters empty it is reallocated
// at half size, so one chaotic wake storm does not pin its high-water-mark
// allocation for the rest of a sweep.
func (q *Queue[T]) heapPop() entry[T] {
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	var zero entry[T]
	q.items[last] = zero
	q.items = q.items[:last]
	if len(q.items) > 0 {
		q.down(0)
	}
	if c := cap(q.items); c > shrinkFloor && len(q.items) < c/4 {
		shrunk := make([]entry[T], len(q.items), c/2)
		copy(shrunk, q.items)
		q.items = shrunk
	}
	return top
}

func (q *Queue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 4
		if !q.items[i].before(q.items[parent]) {
			return
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *Queue[T]) down(i int) {
	n := len(q.items)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		smallest := i
		last := first + 4
		if last > n {
			last = n
		}
		for c := first; c < last; c++ {
			if q.items[c].before(q.items[smallest]) {
				smallest = c
			}
		}
		if smallest == i {
			return
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
}
