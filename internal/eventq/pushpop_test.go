package eventq

import (
	"testing"
	"testing/quick"
)

// refQueue drives a Queue only through Push/Pop, as the pre-PushPop
// scheduler did; used as the semantic reference for PushPop.
func popAll[T any](q *Queue[T]) []entry[T] {
	var out []entry[T]
	for {
		tm, v, ok := q.Pop()
		if !ok {
			return out
		}
		out = append(out, entry[T]{time: tm, val: v})
	}
}

// TestPushPopEquivalence: PushPop must be indistinguishable from Push
// immediately followed by Pop, for any prior queue contents — the
// determinism of the simulator's grant order rests on this.
func TestPushPopEquivalence(t *testing.T) {
	f := func(pre []int64, x int64) bool {
		var a, b Queue[int64]
		for i, tm := range pre {
			a.Push(tm, int64(i))
			b.Push(tm, int64(i))
		}
		at, av := a.PushPop(x, -1)
		b.Push(x, -1)
		bt, bv, ok := b.Pop()
		if !ok || at != bt || av != bv {
			return false
		}
		ra, rb := popAll(&a), popAll(&b)
		if len(ra) != len(rb) {
			return false
		}
		for i := range ra {
			if ra[i].time != rb[i].time || ra[i].val != rb[i].val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPushPopEmpty: on an empty queue PushPop returns its own argument and
// leaves the queue empty.
func TestPushPopEmpty(t *testing.T) {
	var q Queue[string]
	tm, v := q.PushPop(7, "x")
	if tm != 7 || v != "x" {
		t.Fatalf("PushPop on empty = (%d,%q)", tm, v)
	}
	if q.Len() != 0 {
		t.Fatalf("queue not empty after PushPop, len=%d", q.Len())
	}
}

// TestPushPopTieBreak: an equal-time PushPop yields the OLDER entry (FIFO
// within a timestamp), exactly like Push+Pop.
func TestPushPopTieBreak(t *testing.T) {
	var q Queue[int]
	q.Push(5, 1)
	_, v := q.PushPop(5, 2)
	if v != 1 {
		t.Fatalf("tie PushPop returned %d, want the earlier-pushed 1", v)
	}
	if _, v, _ := q.Pop(); v != 2 {
		t.Fatalf("remaining entry = %d, want 2", v)
	}
}

// TestMinTimeMatchesMin across a mixed op sequence.
func TestMinTimeMatchesMin(t *testing.T) {
	var q Queue[int]
	if _, ok := q.MinTime(); ok {
		t.Fatal("MinTime ok on empty queue")
	}
	for i := 0; i < 200; i++ {
		q.Push(int64((i*37)%50), i)
		if i%3 == 0 {
			q.Pop()
		}
		mt, mv, mok := q.Min()
		tt, tok := q.MinTime()
		if mok != tok || (mok && mt != tt) {
			t.Fatalf("MinTime (%d,%v) disagrees with Min (%d,%d,%v)", tt, tok, mt, mv, mok)
		}
	}
}

// TestPopShrinksCapacity: after a wake storm drains, the backing array must
// be given back instead of pinning its high-water mark.
func TestPopShrinksCapacity(t *testing.T) {
	var q Queue[int]
	const n = 1 << 16
	for i := 0; i < n; i++ {
		q.Push(int64(i), i)
	}
	grown := cap(q.items)
	for i := 0; i < n-64; i++ {
		if _, v, ok := q.Pop(); !ok || v != i {
			t.Fatalf("pop %d = (%d,%v)", i, v, ok)
		}
	}
	if c := cap(q.items); c >= grown/4 {
		t.Errorf("capacity %d retained after draining to 64 entries (grew to %d)", c, grown)
	}
	// Drain the rest; order must survive the shrinks.
	for i := n - 64; i < n; i++ {
		if _, v, ok := q.Pop(); !ok || v != i {
			t.Fatalf("post-shrink pop %d = (%d,%v)", i, v, ok)
		}
	}
}

// TestSmallQueueNeverShrinks: simulator-sized queues (a few dozen entries)
// must never pay a shrink reallocation in steady state.
func TestSmallQueueNeverShrinks(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 128; i++ {
		q.Push(int64(i), i)
	}
	c0 := cap(q.items)
	for i := 0; i < 10000; i++ {
		tm, v, _ := q.Pop()
		q.Push(tm+1000, v)
	}
	if cap(q.items) != c0 {
		t.Errorf("steady-state capacity changed: %d -> %d", c0, cap(q.items))
	}
}
