// Package cna implements the Compact NUMA-Aware lock of Dice and Kogan
// (EuroSys'19), one of the paper's baselines. CNA is an MCS variant: the
// releasing owner scans the main queue for the first waiter on its own NUMA
// node, moves the skipped remote waiters onto a secondary queue, and passes
// the lock NUMA-locally; the secondary queue is spliced back periodically so
// remote waiters cannot starve.
//
// Implementation notes (documented simplifications, DESIGN.md §1):
//
//   - The original packs the secondary-queue head into the node's spin word;
//     we keep the secondary queue's head/tail in the lock itself. Both are
//     owner-only state protected by the lock, so behavior is unchanged.
//   - The original flushes the secondary queue pseudo-randomly (p≈1/256);
//     we flush deterministically every FlushPeriod handovers, which
//     preserves long-term fairness and keeps simulations reproducible.
//
// CNA understands exactly two levels — NUMA node and system (paper Table 1):
// it cannot exploit cache groups or packages, which is why CLoF outperforms
// it on deep hierarchies.
package cna

import (
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/topo"
)

// FlushPeriod is how many handovers may prefer NUMA-local waiters before the
// secondary queue is flushed FIFO (long-term fairness).
const FlushPeriod = 256

// node is a CNA queue node.
type node struct {
	next lockapi.Cell
	// spin is 0 while waiting, 1 when the lock is granted.
	spin lockapi.Cell
	// numa is the waiter's NUMA node, written by the waiter before
	// enqueueing and read by the scanning owner.
	numa lockapi.Cell
}

// Lock is a CNA lock. It implements lockapi.Lock; Proc.ID() must be the
// caller's CPU number (used to derive its NUMA node).
type Lock struct {
	mach *topo.Machine
	tail lockapi.Cell
	// secHead/secTail hold the secondary queue of bypassed remote waiters.
	// Owner-only state (protected by the lock itself).
	secHead lockapi.Cell
	secTail lockapi.Cell
	// handovers counts releases for the deterministic fairness flush.
	handovers lockapi.Cell
	nodes     []*node // handle table; slot 0 = nil
}

// New returns a CNA lock for the given machine. The owner-only secondary
// queue state shares one cache line; the tail has its own (it is hammered
// by arrivals).
func New(m *topo.Machine) *Lock {
	l := &Lock{mach: m, nodes: make([]*node, 1, 8)}
	lockapi.Colocate(&l.secHead, &l.secTail, &l.handovers)
	return l
}

// ctxT is the per-thread context: its queue-node handle.
type ctxT struct {
	id uint64
}

// NewCtx implements lockapi.Lock. Only safe during single-threaded setup.
func (l *Lock) NewCtx() lockapi.Ctx {
	n := &node{}
	lockapi.Colocate(&n.next, &n.spin, &n.numa) // one queue node = one line
	l.nodes = append(l.nodes, n)
	return &ctxT{id: uint64(len(l.nodes) - 1)}
}

func (l *Lock) node(h uint64) *node { return l.nodes[h] }

// Acquire implements lockapi.Lock.
func (l *Lock) Acquire(p lockapi.Proc, c lockapi.Ctx) {
	me := c.(*ctxT).id
	n := l.node(me)
	p.Store(&n.next, 0, lockapi.Relaxed)
	p.Store(&n.spin, 0, lockapi.Relaxed)
	p.Store(&n.numa, uint64(l.mach.CohortOf(p.ID(), topo.NUMA)), lockapi.Relaxed)
	pred := p.Swap(&l.tail, me, lockapi.AcqRel)
	if pred == 0 {
		return
	}
	p.Store(&l.node(pred).next, me, lockapi.Release)
	for p.Load(&n.spin, lockapi.Acquire) == 0 {
		p.Spin()
	}
}

// TryAcquire implements lockapi.TryLocker: succeed only when the queue is
// empty, exactly the Acquire fast path. A failed CAS published no node, so
// the releaser's scan can never reach an abandoned waiter.
func (l *Lock) TryAcquire(p lockapi.Proc, c lockapi.Ctx) bool {
	me := c.(*ctxT).id
	n := l.node(me)
	p.Store(&n.next, 0, lockapi.Relaxed)
	p.Store(&n.spin, 0, lockapi.Relaxed)
	p.Store(&n.numa, uint64(l.mach.CohortOf(p.ID(), topo.NUMA)), lockapi.Relaxed)
	return p.CAS(&l.tail, 0, me, lockapi.AcqRel)
}

// Release implements lockapi.Lock.
func (l *Lock) Release(p lockapi.Proc, c lockapi.Ctx) {
	me := c.(*ctxT).id
	n := l.node(me)
	//lint:order relaxed-ok handover counter is read and written only by the current holder
	flush := p.Add(&l.handovers, 1, lockapi.Relaxed)%FlushPeriod == 0

	succ := p.Load(&n.next, lockapi.Acquire)
	if succ == 0 {
		secHead := p.Load(&l.secHead, lockapi.Relaxed)
		if secHead == 0 {
			// Truly empty: classic MCS exit.
			if p.CAS(&l.tail, me, 0, lockapi.Release) {
				return
			}
		} else {
			// Main queue empty but remote waiters parked on the secondary
			// queue: promote it to be the main queue.
			secTail := p.Load(&l.secTail, lockapi.Relaxed)
			if p.CAS(&l.tail, me, secTail, lockapi.Release) {
				p.Store(&l.secHead, 0, lockapi.Relaxed) //lint:order relaxed-ok secondary-queue fields are holder-private; the pass() grant store publishes them
				p.Store(&l.secTail, 0, lockapi.Relaxed)
				l.pass(p, secHead)
				return
			}
		}
		// A successor is mid-enqueue; wait for the link.
		for {
			if succ = p.Load(&n.next, lockapi.Acquire); succ != 0 {
				break
			}
			p.Spin()
		}
	}

	secHead := p.Load(&l.secHead, lockapi.Relaxed)
	if flush && secHead != 0 {
		// Fairness flush: splice the secondary queue in front of the main
		// queue and hand over FIFO.
		l.spliceSecondaryBefore(p, succ)
		l.pass(p, secHead)
		return
	}

	// Scan the main queue for the first waiter on our NUMA node, moving the
	// skipped prefix to the secondary queue.
	myNuma := p.Load(&n.numa, lockapi.Relaxed)
	local, prefixHead, prefixTail := l.findLocal(p, succ, myNuma)
	if local != 0 {
		if prefixHead != 0 {
			l.appendSecondary(p, prefixHead, prefixTail)
		}
		l.pass(p, local)
		return
	}
	// No local waiter in the main queue. If the secondary queue has
	// waiters (all remote relative to us, but possibly local to each
	// other), splice it back in front and hand to its head; otherwise hand
	// to the first main-queue waiter.
	if secHead != 0 {
		l.spliceSecondaryBefore(p, succ)
		l.pass(p, secHead)
		return
	}
	l.pass(p, succ)
}

// pass grants the lock to queue node h.
func (l *Lock) pass(p lockapi.Proc, h uint64) {
	p.Store(&l.node(h).spin, 1, lockapi.Release)
}

// findLocal walks the linked main queue from `from` looking for the first
// node on `numa`. It returns that node (or 0) plus the skipped prefix's
// bounds (0,0 when the first waiter already matches). The walk stops at a
// missing link: a waiter mid-enqueue is treated as queue end, which is safe
// (it simply is not bypassed).
func (l *Lock) findLocal(p lockapi.Proc, from, numa uint64) (local, prefixHead, prefixTail uint64) {
	cur := from
	var prev uint64
	for cur != 0 {
		if p.Load(&l.node(cur).numa, lockapi.Relaxed) == numa {
			if prev != 0 {
				return cur, from, prev
			}
			return cur, 0, 0
		}
		prev = cur
		cur = p.Load(&l.node(cur).next, lockapi.Acquire)
	}
	return 0, 0, 0
}

// appendSecondary moves the prefix [head..tail] onto the secondary queue.
// The queue is touched only by the current lock holder, so all the surgery
// below is Relaxed; the eventual grant store (pass) publishes it.
func (l *Lock) appendSecondary(p lockapi.Proc, head, tail uint64) {
	//lint:order relaxed-ok secondary queue is holder-private; the grant store publishes it
	p.Store(&l.node(tail).next, 0, lockapi.Relaxed)
	if p.Load(&l.secHead, lockapi.Relaxed) == 0 {
		//lint:order relaxed-ok secondary queue is holder-private; the grant store publishes it
		p.Store(&l.secHead, head, lockapi.Relaxed)
	} else {
		oldTail := p.Load(&l.secTail, lockapi.Relaxed)
		//lint:order relaxed-ok secondary queue is holder-private; the grant store publishes it
		p.Store(&l.node(oldTail).next, head, lockapi.Relaxed)
	}
	//lint:order relaxed-ok secondary queue is holder-private; the grant store publishes it
	p.Store(&l.secTail, tail, lockapi.Relaxed)
}

// spliceSecondaryBefore links the secondary queue in front of main-queue
// node `succ` and clears it.
func (l *Lock) spliceSecondaryBefore(p lockapi.Proc, succ uint64) {
	secTail := p.Load(&l.secTail, lockapi.Relaxed)
	p.Store(&l.node(secTail).next, succ, lockapi.Release)
	p.Store(&l.secHead, 0, lockapi.Relaxed) //lint:order relaxed-ok secondary-queue fields are holder-private; the grant store publishes them
	p.Store(&l.secTail, 0, lockapi.Relaxed)
}

// Fair implements lockapi.FairnessInfo: the periodic flush bounds bypassing.
func (l *Lock) Fair() bool { return true }

var (
	_ lockapi.Lock         = (*Lock)(nil)
	_ lockapi.FairnessInfo = (*Lock)(nil)
	_ lockapi.TryLocker    = (*Lock)(nil)
)
