package cna

import (
	"testing"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/locktest"
	"github.com/clof-go/clof/internal/topo"
)

func TestNativeMutualExclusion(t *testing.T) {
	for _, m := range []*topo.Machine{topo.X86Server(), topo.Armv8Server()} {
		t.Run(m.Arch.String(), func(t *testing.T) {
			locktest.NativeStress(t, New(m), m, 12, 3000)
		})
	}
}

func TestSingleThreaded(t *testing.T) {
	m := topo.X86Server()
	l := New(m)
	c := l.NewCtx()
	p := lockapi.NewNativeProc(0)
	for i := 0; i < 100; i++ {
		l.Acquire(p, c)
		l.Release(p, c)
	}
}

func TestSimulatedProgressAndFairness(t *testing.T) {
	m := topo.Armv8Server()
	res := locktest.SimRun(t, func() lockapi.Lock { return New(m) }, locktest.SimConfig{
		Machine: m, Threads: 64, Horizon: 1_000_000, CSWork: 80, NCSWork: 120,
	})
	if res.Total == 0 {
		t.Fatal("no progress")
	}
	// The periodic flush must prevent starvation of remote waiters.
	for i, c := range res.PerThread {
		if c == 0 {
			t.Errorf("thread %d starved (0 acquisitions)", i)
		}
	}
}

// TestNUMALocalBatching: CNA's defining behavior — consecutive owners
// cluster within a NUMA node far more than with FIFO MCS.
func TestNUMALocalBatching(t *testing.T) {
	// 128 threads span both packages: FIFO MCS drags the lock (and the
	// protected data) across the 200ns socket link half the time, which is
	// where CNA's NUMA batching pays off (paper Fig. 4: CNA passes MCS
	// beyond 64 threads).
	m := topo.Armv8Server()
	cfg := locktest.SimConfig{
		Machine: m, Threads: 128, Horizon: 400_000, CSWork: 80, NCSWork: 120,
	}
	cna := locktest.SimRun(t, func() lockapi.Lock { return New(m) }, cfg)
	mcs := locktest.SimRun(t, func() lockapi.Lock { return locks.NewMCS() }, cfg)

	numaLocal := func(r locktest.SimResult) float64 {
		var local, total uint64
		for lvl, c := range r.HandoverLevels {
			total += c
			if topo.Level(lvl) <= topo.NUMA {
				local += c
			}
		}
		if total == 0 {
			return 0
		}
		return float64(local) / float64(total)
	}
	if numaLocal(cna) < 0.8 {
		t.Errorf("CNA numa-local handover fraction = %.2f, want > 0.8", numaLocal(cna))
	}
	if numaLocal(cna) < 1.5*numaLocal(mcs) {
		t.Errorf("CNA locality (%.2f) not clearly above MCS (%.2f)", numaLocal(cna), numaLocal(mcs))
	}
	if cna.Total <= mcs.Total {
		t.Errorf("CNA (%d) did not outperform MCS (%d) at 128 threads", cna.Total, mcs.Total)
	}
}

// TestTwoLevelOnly: unlike HMCS/CLoF, CNA cannot exploit cache groups; its
// sub-NUMA (cache-group-local) handover fraction should stay low under
// spread contention inside one NUMA node... it treats all waiters of a NUMA
// node alike, so within-node order remains FIFO-ish across cache groups.
func TestTwoLevelOnly(t *testing.T) {
	m := topo.Armv8Server()
	// 32 threads all inside NUMA node 0 (8 cache groups × 4 cores).
	res := locktest.SimRun(t, func() lockapi.Lock { return New(m) }, locktest.SimConfig{
		Machine: m, Threads: 32, Horizon: 300_000, CSWork: 80, NCSWork: 120,
	})
	var sub, total uint64
	for lvl, c := range res.HandoverLevels {
		total += c
		if topo.Level(lvl) < topo.NUMA {
			sub += c
		}
	}
	if total == 0 {
		t.Fatal("no handovers")
	}
	// With 32 threads in 8 cache groups, FIFO-within-node gives ~1/8
	// cache-group locality; anything above 0.5 would mean CNA secretly
	// exploits the cache level (it must not — that is CLoF's edge).
	if f := float64(sub) / float64(total); f > 0.5 {
		t.Errorf("CNA sub-NUMA handover fraction %.2f unexpectedly high", f)
	}
}

func TestFairnessDeclared(t *testing.T) {
	if !lockapi.Fair(New(topo.X86Server())) {
		t.Error("CNA must declare fairness (bounded bypass)")
	}
}
