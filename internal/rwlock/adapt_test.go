package rwlock

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/topo"
)

// TestAdaptedExclusiveMutex: the adapter's Acquire/Release path is a proper
// mutex (unprotected counter sees no lost updates).
func TestAdaptedExclusiveMutex(t *testing.T) {
	m := topo.Armv8Server()
	a := Adapt(New(m, topo.CacheGroup, locks.NewMCS()))
	const workers, iters = 4, 2000
	ctxs := make([]lockapi.Ctx, workers)
	for i := range ctxs {
		ctxs[i] = a.NewCtx()
	}
	var data int
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := lockapi.NewNativeProc(id * 4)
			for i := 0; i < iters; i++ {
				a.Acquire(p, ctxs[id])
				data++
				a.Release(p, ctxs[id])
			}
		}(w)
	}
	wg.Wait()
	if data != workers*iters {
		t.Fatalf("lost updates: %d, want %d", data, workers*iters)
	}
}

// TestAdaptedSharedExcludesWriter: shared holders block the exclusive path
// and overlap each other; the adapter forwards both capabilities.
func TestAdaptedSharedExcludesWriter(t *testing.T) {
	m := topo.Armv8Server()
	var a lockapi.RWLocker = Adapt(New(m, topo.CacheGroup, locks.NewMCS()))
	wctx := a.NewCtx()

	var inReaders, maxReaders atomic.Int64
	var data int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := lockapi.NewNativeProc(0)
		for i := 0; i < 500; i++ {
			a.Acquire(p, wctx)
			if inReaders.Load() != 0 {
				t.Error("writer held concurrently with a reader")
			}
			data++
			a.Release(p, wctx)
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := lockapi.NewNativeProc(8 + id*4)
			for i := 0; i < 2000; i++ {
				a.AcquireShared(p, nil)
				n := inReaders.Add(1)
				for {
					old := maxReaders.Load()
					if n <= old || maxReaders.CompareAndSwap(old, n) {
						break
					}
				}
				_ = data
				inReaders.Add(-1)
				a.ReleaseShared(p, nil)
			}
		}(r)
	}
	wg.Wait()
	if maxReaders.Load() < 2 {
		t.Logf("readers never observed overlapping (max %d) — legal but unusual", maxReaders.Load())
	}
}

// TestAdaptedProbe: the adapter is natively Instrumented — lockapi.Instrument
// must annotate it in place (not wrap it, which would strip RWLocker) and the
// exclusive path must emit balanced edges.
func TestAdaptedProbe(t *testing.T) {
	m := topo.Armv8Server()
	a := Adapt(New(m, topo.CacheGroup, locks.NewMCS()))
	var starts, acqs, rels int
	o := lockapi.ObserverFromFuncs(
		func(lockapi.Proc) { starts++ },
		func(lockapi.Proc) { acqs++ },
		func(lockapi.Proc) { rels++ },
	)
	got := lockapi.Instrument(a, o)
	if got != lockapi.Lock(a) {
		t.Fatal("Instrument wrapped the adapter instead of annotating in place")
	}
	if _, ok := got.(lockapi.RWLocker); !ok {
		t.Fatal("instrumented adapter lost the RWLocker capability")
	}
	p := lockapi.NewNativeProc(0)
	c := a.NewCtx()
	for i := 0; i < 5; i++ {
		a.Acquire(p, c)
		a.Release(p, c)
	}
	// Shared acquisitions emit no edges (documented: obs hold reconstruction
	// assumes mutual exclusion).
	a.AcquireShared(p, nil)
	a.ReleaseShared(p, nil)
	if starts != 5 || acqs != 5 || rels != 5 {
		t.Fatalf("edges = %d/%d/%d, want 5/5/5", starts, acqs, rels)
	}
}
