package rwlock

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/mcheck"
	"github.com/clof-go/clof/internal/memsim"
	"github.com/clof-go/clof/internal/topo"
)

func TestSingleThreadedBothModes(t *testing.T) {
	m := topo.Armv8Server()
	l := New(m, topo.CacheGroup, locks.NewMCS())
	c := l.NewCtx()
	p := lockapi.NewNativeProc(0)
	for i := 0; i < 50; i++ {
		l.RLock(p)
		l.RUnlock(p)
		l.Lock(p, c)
		l.Unlock(p, c)
	}
}

// TestWriterExclusion: writers exclude everyone; readers overlap with each
// other (observed at least once).
func TestWriterExclusion(t *testing.T) {
	m := topo.Armv8Server()
	l := New(m, topo.CacheGroup, locks.NewMCS())
	const writers, readers, iters = 2, 6, 1500

	wctxs := make([]*Ctx, writers)
	for i := range wctxs {
		wctxs[i] = l.NewCtx()
	}

	var data int // writer-owned; readers snapshot it twice per section
	var inReaders atomic.Int64
	var sawConcurrentReaders atomic.Bool
	var wg sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := lockapi.NewNativeProc(id * 8)
			for i := 0; i < iters; i++ {
				l.Lock(p, wctxs[id])
				data++ // unprotected increment: lost updates reveal overlap
				l.Unlock(p, wctxs[id])
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := lockapi.NewNativeProc(id*16 + 4)
			for i := 0; i < iters; i++ {
				l.RLock(p)
				if inReaders.Add(1) > 1 {
					sawConcurrentReaders.Store(true)
				}
				before := data
				after := data
				if before != after {
					t.Error("writer mutated data during a read section")
				}
				inReaders.Add(-1)
				l.RUnlock(p)
			}
		}(r)
	}
	wg.Wait()
	if data != writers*iters {
		t.Errorf("data = %d, want %d (writer-writer overlap)", data, writers*iters)
	}
	if !sawConcurrentReaders.Load() {
		t.Log("note: no reader overlap observed (scheduling-dependent, not a failure)")
	}
}

// TestReadSideLocalityOnSimulator: under a read-mostly load, each cohort's
// readers touch only their own counter line — reader throughput must scale
// far beyond a single exclusive lock's.
func TestReadSideLocalityOnSimulator(t *testing.T) {
	mach := topo.Armv8Server()
	run := func(readOnly bool) uint64 {
		sim := memsim.New(memsim.Config{Machine: mach})
		l := New(mach, topo.CacheGroup, locks.NewMCS())
		excl := locks.NewMCS()
		exclCtxs := make([]lockapi.Ctx, 16)
		for i := range exclCtxs {
			exclCtxs[i] = excl.NewCtx()
		}
		var total uint64
		for i := 0; i < 16; i++ {
			i := i
			sim.Spawn(i*8, func(p *memsim.Proc) {
				for !p.Expired() {
					if readOnly {
						l.RLock(p)
						p.Work(100)
						l.RUnlock(p)
					} else {
						excl.Acquire(p, exclCtxs[i])
						p.Work(100)
						excl.Release(p, exclCtxs[i])
					}
					p.Work(100)
					total++
				}
			})
		}
		sim.Run(200_000)
		return total
	}
	rw := run(true)
	mutex := run(false)
	if rw < 3*mutex {
		t.Errorf("read-side scaling too weak: rwlock %d vs mutex %d iterations", rw, mutex)
	}
}

// TestVerifiedWithModelChecker: 1 writer + 2 readers, exhaustively: the
// writer's section excludes readers and vice versa, on SC and the weak
// memory mode.
func TestVerifiedWithModelChecker(t *testing.T) {
	mach := mcheck.VerifyMachine()
	prog := mcheck.Program{
		Name: "rwlock-1w2r",
		Make: func() []func(p *mcheck.Proc) {
			l := New(mach, topo.CacheGroup, locks.NewTicket())
			wctx := l.NewCtx()
			wflag := &lockapi.Cell{}
			writer := func(p *mcheck.Proc) {
				for i := 0; i < 2; i++ {
					l.Lock(p, wctx)
					p.EnterCS()
					p.Store(wflag, 1, lockapi.Relaxed)
					p.Store(wflag, 0, lockapi.Relaxed)
					p.ExitCS()
					l.Unlock(p, wctx)
				}
			}
			reader := func(p *mcheck.Proc) {
				l.RLock(p)
				v := p.Load(wflag, lockapi.Relaxed)
				p.Assert(v == 0, "reader observed a writer mid-section")
				l.RUnlock(p)
			}
			return []func(p *mcheck.Proc){writer, reader, reader}
		},
	}
	for _, mode := range []mcheck.Mode{mcheck.SC, mcheck.WMM} {
		res := mcheck.Check(prog, mcheck.Config{Mode: mode})
		if !res.OK {
			t.Fatalf("%v: %s (witness %v)", mode, res.Violation, res.Witness)
		}
		t.Logf("%v: %d states, %d executions", mode, res.States, res.Executions)
	}
}

// TestWriterPreference: a continuous stream of readers must not starve a
// writer (the back-off on writerActive yields to it).
func TestWriterPreference(t *testing.T) {
	m := topo.Armv8Server()
	l := New(m, topo.CacheGroup, locks.NewMCS())
	c := l.NewCtx()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := lockapi.NewNativeProc(id * 4)
			for {
				select {
				case <-stop:
					return
				default:
				}
				l.RLock(p)
				l.RUnlock(p)
			}
		}(r)
	}
	p := lockapi.NewNativeProc(100)
	for i := 0; i < 50; i++ {
		l.Lock(p, c) // must complete despite the reader stream
		l.Unlock(p, c)
	}
	close(stop)
	wg.Wait()
}
