// Package rwlock implements a NUMA-aware reader-writer lock in the style of
// Calciu et al. (PPoPP'13) — the work whose distributed read indicator the
// CLoF paper's lock-passing borrows (§4.1.2). Readers register in a
// per-cache-group counter (one cache line per cohort, so read-side traffic
// stays inside the cohort); writers serialize through any lockapi.Lock —
// including a CLoF-composed NUMA-aware lock — then raise a writer flag and
// wait for every group's readers to drain. Writer-preference: readers that
// arrive while a writer is active or pending back off, so writers cannot
// starve.
package rwlock

import (
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/topo"
)

// RWLock is the NUMA-aware reader-writer lock.
type RWLock struct {
	mach  *topo.Machine
	level topo.Level
	// wlock serializes writers (and carries their NUMA-awareness).
	wlock lockapi.Lock
	// writerActive is raised while a writer holds or drains the lock.
	writerActive lockapi.Cell
	// readers[i] counts active readers of cohort i (own cache line each).
	readers []*lockapi.Cell
}

// New builds an RWLock over machine m with reader counters per cohort of
// `level` (CacheGroup in the original design). wlock serializes writers; a
// plain MCS works, a CLoF lock makes writer handovers NUMA-aware too.
func New(m *topo.Machine, level topo.Level, wlock lockapi.Lock) *RWLock {
	n := m.Cohorts(level)
	readers := make([]*lockapi.Cell, n)
	for i := range readers {
		readers[i] = &lockapi.Cell{} // one line per cohort (no colocation)
	}
	return &RWLock{mach: m, level: level, wlock: wlock, readers: readers}
}

// Ctx is the writer's context (readers need none).
type Ctx struct {
	w lockapi.Ctx
}

// NewCtx allocates a context. Only safe during single-threaded setup.
func (l *RWLock) NewCtx() *Ctx { return &Ctx{w: l.wlock.NewCtx()} }

// RLock acquires the lock for reading. Multiple readers of any cohort may
// hold it simultaneously; readers yield to active or draining writers.
func (l *RWLock) RLock(p lockapi.Proc) {
	group := l.readers[l.mach.CohortOf(p.ID(), l.level)]
	for {
		p.Add(group, 1, lockapi.Acquire)
		if p.Load(&l.writerActive, lockapi.Acquire) == 0 {
			return
		}
		// A writer is active or draining: undo and wait it out.
		p.Add(group, ^uint64(0), lockapi.Release)
		for p.Load(&l.writerActive, lockapi.Acquire) != 0 {
			p.Spin()
		}
	}
}

// RUnlock releases a read acquisition.
func (l *RWLock) RUnlock(p lockapi.Proc) {
	group := l.readers[l.mach.CohortOf(p.ID(), l.level)]
	p.Add(group, ^uint64(0), lockapi.Release)
}

// Lock acquires the lock for writing: serialize against other writers,
// raise the flag, then wait for every cohort's readers to drain.
func (l *RWLock) Lock(p lockapi.Proc, c *Ctx) {
	l.wlock.Acquire(p, c.w)
	p.Store(&l.writerActive, 1, lockapi.SeqCst)
	for _, group := range l.readers {
		for p.Load(group, lockapi.Acquire) != 0 {
			p.Spin()
		}
	}
}

// Unlock releases a write acquisition.
func (l *RWLock) Unlock(p lockapi.Proc, c *Ctx) {
	p.Store(&l.writerActive, 0, lockapi.Release)
	l.wlock.Release(p, c.w)
}
