package rwlock

import (
	"github.com/clof-go/clof/internal/lockapi"
)

// This file adapts RWLock's typed API (RLock/RUnlock, Lock/Unlock with a
// concrete *Ctx) to the lockapi.Lock interface plus the lockapi.RWLocker
// shared-acquisition capability, so the lock can sit in the catalog and
// guard a shard of the sharded store (internal/store). The adapter embeds a
// lockapi.Probe rather than relying on lockapi.Instrument's generic wrapper:
// the generic wrapper would not forward AcquireShared/ReleaseShared, so
// instrumenting it would silently strip the reader fast path.

// Adapted is an RWLock exposed as a lockapi.RWLocker. Only the exclusive
// (writer) path reports observer edges: the obs layer's handover and hold
// reconstruction assumes mutual exclusion, which overlapping shared holders
// would violate; callers that care about read traffic count shared
// acquisitions themselves.
type Adapted struct {
	lockapi.Probe
	l *RWLock
}

// Adapt wraps l. The adapter is stateless beyond the probe; one adapter may
// serve any number of contexts.
func Adapt(l *RWLock) *Adapted { return &Adapted{l: l} }

// NewCtx implements lockapi.Lock. Only safe during single-threaded setup.
func (a *Adapted) NewCtx() lockapi.Ctx { return a.l.NewCtx() }

// Acquire implements lockapi.Lock via the exclusive writer path.
func (a *Adapted) Acquire(p lockapi.Proc, c lockapi.Ctx) {
	a.EmitAcquireStart(p)
	a.l.Lock(p, c.(*Ctx))
	a.EmitAcquired(p)
}

// Release implements lockapi.Lock.
func (a *Adapted) Release(p lockapi.Proc, c lockapi.Ctx) {
	a.l.Unlock(p, c.(*Ctx))
	a.EmitReleased(p)
}

// AcquireShared implements lockapi.RWLocker via the reader path; the context
// is accepted for interface conformance (readers carry no state).
func (a *Adapted) AcquireShared(p lockapi.Proc, _ lockapi.Ctx) { a.l.RLock(p) }

// ReleaseShared implements lockapi.RWLocker.
func (a *Adapted) ReleaseShared(p lockapi.Proc, _ lockapi.Ctx) { a.l.RUnlock(p) }

var (
	_ lockapi.RWLocker     = (*Adapted)(nil)
	_ lockapi.Instrumented = (*Adapted)(nil)
)
