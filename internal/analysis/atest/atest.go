// Package atest is the golden-diagnostic test harness for the clof-lint
// analyzers, in the style of golang.org/x/tools/go/analysis/analysistest
// but standard-library-only.
//
// Fixture packages live under <analyzer>/testdata/src/<name>/ as ordinary
// non-test Go files (the go tool ignores testdata, so deliberately
// defective fixtures never break `go build ./...`). Expected findings are
// `// want "substring"` comments on the offending line; multiple quoted
// substrings may follow one want. The harness asserts an exact match both
// ways: every want must be hit by a diagnostic on its line, and every
// diagnostic must be covered by a want. Fixtures import the real
// repository packages (lockapi et al.) — the harness registers the
// repository as a second module with the loader.
package atest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/clof-go/clof/internal/analysis"
	"github.com/clof-go/clof/internal/analysis/loader"
)

// FixtureModule is the module path fixture packages are loaded under:
// testdata/src/<name> becomes import path "fix/<name>".
const FixtureModule = "fix"

// RepoRoot locates the repository root by walking up from dir (or the
// working directory if dir is "") until a go.mod is found.
func RepoRoot(t *testing.T, dir string) string {
	t.Helper()
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			t.Fatal(err)
		}
		dir = wd
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			t.Fatalf("no go.mod above %s", dir)
		}
		d = parent
	}
}

// Load loads fixture packages (by name under testdata/src) with the
// repository registered as a secondary module.
func Load(t *testing.T, fixtures ...string) []*loader.Package {
	t.Helper()
	root := RepoRoot(t, "")
	modPath, err := loader.MainModulePath(root)
	if err != nil {
		t.Fatal(err)
	}
	ld := loader.New(
		loader.Module{Path: FixtureModule, Dir: filepath.Join("testdata", "src")},
		loader.Module{Path: modPath, Dir: root},
	)
	var pats []string
	for _, fix := range fixtures {
		pats = append(pats, FixtureModule+"/"+fix)
	}
	pkgs, err := ld.Load(pats...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", fixtures, err)
	}
	return pkgs
}

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run loads the fixture packages, runs the analyzer, and asserts the
// diagnostics match the fixtures' want comments exactly.
func Run(t *testing.T, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	pkgs := Load(t, fixtures...)
	diags := analysis.Run(pkgs, []*analysis.Analyzer{a})

	type wantKey struct {
		file string
		line int
		idx  int
	}
	wants := map[wantKey]string{}
	used := map[wantKey]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for i, m := range wantRE.FindAllStringSubmatch(rest, -1) {
						wants[wantKey{pos.Filename, pos.Line, i}] = m[1]
					}
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for k, substr := range wants {
			if used[k] || k.file != d.Pos.Filename || k.line != d.Pos.Line {
				continue
			}
			if strings.Contains(d.Message, substr) {
				used[k] = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, substr := range wants {
		if !used[k] {
			t.Errorf("%s:%d: expected diagnostic containing %q, got none", k.file, k.line, substr)
		}
	}
}

// RunExpectClean asserts the analyzer reports nothing on the fixtures.
func RunExpectClean(t *testing.T, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	pkgs := Load(t, fixtures...)
	for _, d := range analysis.Run(pkgs, []*analysis.Analyzer{a}) {
		t.Errorf("unexpected diagnostic on clean fixture: %s", d)
	}
}

// Format renders diagnostics one per line (shared by the driver test).
func Format(diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintln(&b, d)
	}
	return b.String()
}
