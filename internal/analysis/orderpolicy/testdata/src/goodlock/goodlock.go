// Package goodlock is a correctly annotated ticket lock (the counterpart
// of the badrelease corpus): Acquire orders entry with an Acquire load,
// Release publishes with a Release increment. Must lint clean with no
// waivers.
package goodlock

import "github.com/clof-go/clof/internal/lockapi"

type ticket struct {
	ticket, grant lockapi.Cell
}

func (l *ticket) NewCtx() lockapi.Ctx { return nil }

func (l *ticket) Acquire(p lockapi.Proc, _ lockapi.Ctx) {
	t := p.Add(&l.ticket, 1, lockapi.Relaxed) - 1
	for p.Load(&l.grant, lockapi.Acquire) != t {
		p.Spin()
	}
}

func (l *ticket) Release(p lockapi.Proc, _ lockapi.Ctx) {
	p.Add(&l.grant, 1, lockapi.Release)
}

// helper reachability: Release paths through helpers are still checked.
type wrapped struct {
	inner ticket
}

func (w *wrapped) NewCtx() lockapi.Ctx { return nil }

func (w *wrapped) Acquire(p lockapi.Proc, c lockapi.Ctx) { w.inner.Acquire(p, c) }

func (w *wrapped) Release(p lockapi.Proc, c lockapi.Ctx) { w.inner.Release(p, c) }

var (
	_ lockapi.Lock = (*ticket)(nil)
	_ lockapi.Lock = (*wrapped)(nil)
)
