// Package relaxedpoll is a TTAS whose Relaxed spin poll carries no waiver:
// the poll is actually safe (the CAS below orders entry), but the policy
// demands the justification be written down at the site.
package relaxedpoll

import "github.com/clof-go/clof/internal/lockapi"

type ttas struct {
	word lockapi.Cell
}

func (l *ttas) NewCtx() lockapi.Ctx { return nil }

func (l *ttas) Acquire(p lockapi.Proc, _ lockapi.Ctx) {
	for {
		for p.Load(&l.word, lockapi.Relaxed) == 1 { // want "Relaxed load guards lock entry"
			p.Spin()
		}
		if p.CAS(&l.word, 0, 1, lockapi.Acquire) {
			return
		}
	}
}

func (l *ttas) Release(p lockapi.Proc, _ lockapi.Ctx) {
	p.Store(&l.word, 0, lockapi.Release)
}

var _ lockapi.Lock = (*ttas)(nil)
