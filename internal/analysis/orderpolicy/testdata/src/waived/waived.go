// Package waived is the same TTAS as the relaxedpoll fixture with the
// required waiver written down: it must lint clean.
package waived

import "github.com/clof-go/clof/internal/lockapi"

type ttas struct {
	word lockapi.Cell
}

func (l *ttas) NewCtx() lockapi.Ctx { return nil }

func (l *ttas) Acquire(p lockapi.Proc, _ lockapi.Ctx) {
	for {
		//lint:order relaxed-ok poll only; the CAS below orders entry
		for p.Load(&l.word, lockapi.Relaxed) == 1 {
			p.Spin()
		}
		if p.CAS(&l.word, 0, 1, lockapi.Acquire) {
			return
		}
	}
}

func (l *ttas) Release(p lockapi.Proc, _ lockapi.Ctx) {
	p.Store(&l.word, 0, lockapi.Release)
}

var _ lockapi.Lock = (*ttas)(nil)
