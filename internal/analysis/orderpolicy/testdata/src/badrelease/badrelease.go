// Package badrelease is the seeded missing-release-barrier corpus: the
// same defect internal/mcheck's relaxedReleaseTicket demonstrates
// dynamically under WMM. orderpolicy must flag both the Relaxed store and
// the barrier-free Release method.
package badrelease

import "github.com/clof-go/clof/internal/lockapi"

type ticket struct {
	ticket, grant lockapi.Cell
}

func (l *ticket) NewCtx() lockapi.Ctx { return nil }

func (l *ticket) Acquire(p lockapi.Proc, _ lockapi.Ctx) {
	t := p.Add(&l.ticket, 1, lockapi.Relaxed) - 1
	for p.Load(&l.grant, lockapi.Acquire) != t {
		p.Spin()
	}
}

func (l *ticket) Release(p lockapi.Proc, _ lockapi.Ctx) { // want "missing release barrier"
	g := p.Load(&l.grant, lockapi.Relaxed)
	p.Store(&l.grant, g+1, lockapi.Relaxed) // want "Relaxed Store on unlock path"
}

// relaxedAcquire never orders its entry: every operation is Relaxed, so the
// critical section can observe pre-lock state. Flagged at the declaration.
type relaxedAcquire struct {
	word lockapi.Cell
}

func (l *relaxedAcquire) NewCtx() lockapi.Ctx { return nil }

func (l *relaxedAcquire) Acquire(p lockapi.Proc, _ lockapi.Ctx) { // want "none with Acquire semantics"
	for p.Swap(&l.word, 1, lockapi.Relaxed) == 1 {
		p.Spin()
	}
}

func (l *relaxedAcquire) Release(p lockapi.Proc, _ lockapi.Ctx) {
	p.Store(&l.word, 0, lockapi.Release)
}

var (
	_ lockapi.Lock = (*ticket)(nil)
	_ lockapi.Lock = (*relaxedAcquire)(nil)
)
