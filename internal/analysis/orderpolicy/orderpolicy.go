// Package orderpolicy enforces the CLoF memory-order contract on lock
// acquire and release paths (paper §3.3/§4.2; Paolillo et al.'s CNA barrier
// bugs are exactly this class):
//
//  1. A Relaxed load must not guard lock entry: on any function reachable
//     from an Acquire/TryAcquire/Lock method, a Load with order Relaxed
//     appearing in a for- or if-condition is flagged. Intentionally relaxed
//     spin polls (whose ordering is provided by a later Acquire CAS) carry
//     an explicit per-site waiver: //lint:order relaxed-ok <reason>.
//  2. A Relaxed write must not appear on an unlock path: on any function
//     reachable from a Release/Unlock method, a Store/CAS/Add/Swap with
//     order Relaxed is flagged — the final store of an unlock must be
//     Release or stronger, and intermediate relaxed bookkeeping writes must
//     be individually justified by a waiver.
//  3. Barrier presence: an acquire root whose reachable code performs
//     ordered operations but none with Acquire semantics, or a release root
//     that writes but never with Release semantics, is flagged at the
//     method declaration ("missing release barrier" — the
//     relaxedReleaseTicket bug mcheck demonstrates dynamically).
//
// Reachability is the static intra-package call graph (interface calls,
// e.g. into component locks of a composition, are outside it: each lock
// package is checked on its own).
package orderpolicy

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/clof-go/clof/internal/analysis"
)

// Analyzer is the orderpolicy analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "orderpolicy",
	Tag:  "order",
	Doc:  "lock acquire paths must order entry with Acquire; unlock paths must publish with Release",
	Run:  run,
}

func isAcquireName(name string) bool {
	return strings.HasPrefix(name, "Acquire") || strings.HasPrefix(name, "TryAcquire") ||
		name == "Lock" || name == "TryLock" || name == "RLock" || name == "TryRLock"
}

func isReleaseName(name string) bool {
	return strings.HasPrefix(name, "Release") || name == "Unlock" || name == "RUnlock"
}

// hasProcParam reports whether the function takes a Proc handle (the
// lockapi.Proc interface or a concrete backend Proc) — the signature marker
// distinguishing lock-protocol methods from arbitrary Lock()/Unlock()
// methods (e.g. sync.Locker shims).
func hasProcParam(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Name() == "Proc" {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) {
	info := pass.Pkg.Info

	// Map every function/method declared in this package to its body.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Pkg.Syntax {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}

	// Static intra-package call graph.
	edges := map[*types.Func][]*types.Func{}
	for fn, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var callee types.Object
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				callee = info.Uses[fun]
			case *ast.SelectorExpr:
				callee = info.Uses[fun.Sel]
			}
			if cf, ok := callee.(*types.Func); ok {
				if _, local := decls[cf]; local {
					edges[fn] = append(edges[fn], cf)
				}
			}
			return true
		})
	}

	reachable := func(root *types.Func) []*types.Func {
		seen := map[*types.Func]bool{root: true}
		order := []*types.Func{root}
		for i := 0; i < len(order); i++ {
			for _, next := range edges[order[i]] {
				if !seen[next] {
					seen[next] = true
					order = append(order, next)
				}
			}
		}
		return order
	}

	// Classify roots and collect the acquire- and release-reachable sets.
	type root struct {
		fn      *types.Func
		fd      *ast.FuncDecl
		acquire bool
	}
	var roots []root
	acquireSet := map[*types.Func]bool{}
	releaseSet := map[*types.Func]bool{}
	for fn, fd := range decls {
		sig := fn.Type().(*types.Signature)
		if sig.Recv() == nil || !hasProcParam(sig) {
			continue
		}
		switch {
		case isAcquireName(fn.Name()):
			roots = append(roots, root{fn, fd, true})
			for _, r := range reachable(fn) {
				acquireSet[r] = true
			}
		case isReleaseName(fn.Name()):
			roots = append(roots, root{fn, fd, false})
			for _, r := range reachable(fn) {
				releaseSet[r] = true
			}
		}
	}

	// Rule 1: Relaxed loads guarding entry (in for/if conditions) on
	// acquire paths. Rule 2: Relaxed writes on release paths.
	reported := map[token.Pos]bool{}
	for fn, fd := range decls {
		if acquireSet[fn] {
			for _, cond := range conditions(fd.Body) {
				ast.Inspect(cond, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					op, ok := analysis.ClassifyProcOp(info, call)
					if ok && op.IsLoad() && op.Order == "Relaxed" && !reported[call.Pos()] {
						reported[call.Pos()] = true
						pass.Reportf(call.Pos(),
							"Relaxed load guards lock entry in %s; use Acquire or waive with //lint:order relaxed-ok <reason>",
							fn.Name())
					}
					return true
				})
			}
		}
		if releaseSet[fn] {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				op, ok := analysis.ClassifyProcOp(info, call)
				if ok && op.IsWrite() && op.Order == "Relaxed" && !reported[call.Pos()] {
					reported[call.Pos()] = true
					pass.Reportf(call.Pos(),
						"Relaxed %s on unlock path in %s; release-path writes need Release (or //lint:order relaxed-ok <reason>)",
						op.Name, fn.Name())
				}
				return true
			})
		}
	}

	// Rule 3: barrier presence per root.
	for _, r := range roots {
		var ops []analysis.ProcOp
		for _, fn := range reachable(r.fn) {
			fd := decls[fn]
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if op, ok := analysis.ClassifyProcOp(info, call); ok {
						ops = append(ops, op)
					}
				}
				return true
			})
		}
		if len(ops) == 0 {
			continue // pure delegator (or no-op lock): nothing to check here
		}
		if r.acquire {
			ok := false
			for _, op := range ops {
				// A non-constant order is treated as satisfying the policy:
				// the site is doing something deliberate we cannot see.
				if op.AcquireOrStronger() || op.Order == "" {
					ok = true
				}
			}
			if !ok {
				pass.Reportf(r.fd.Name.Pos(),
					"%s performs ordered operations but none with Acquire semantics: lock entry is unordered", r.fn.Name())
			}
		} else {
			writes, ok := false, false
			for _, op := range ops {
				if op.IsWrite() || op.Name == "Fence" {
					writes = true
					if op.ReleaseOrStronger() || op.Order == "" {
						ok = true
					}
				}
			}
			if writes && !ok {
				pass.Reportf(r.fd.Name.Pos(),
					"%s writes but never with Release semantics: missing release barrier (critical-section stores may become visible after the unlock)", r.fn.Name())
			}
		}
	}
}

// conditions collects the condition expressions of all for- and if-
// statements in body, excluding nested function literals.
func conditions(body *ast.BlockStmt) []ast.Expr {
	var out []ast.Expr
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if n.Cond != nil {
				out = append(out, n.Cond)
			}
		case *ast.IfStmt:
			out = append(out, n.Cond)
		}
		return true
	})
	return out
}
