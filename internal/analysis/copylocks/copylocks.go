// Package copylocks flags by-value copies of this repository's lock types:
// any type that transitively contains a lockapi.Cell (every lock in
// internal/catalog's families does). Backends key per-cell metadata — the
// simulator's cache-line state, the model checker's variable identity — off
// the Cell's address, so a copied lock silently splits into two locks that
// stop excluding each other.
//
// `go vet`'s copylocks catches many of these via Cell's embedded noCopy,
// but only where the copied type's method set is visible to vet's
// heuristic; this analyzer checks the Cell-containment property directly
// and uniformly: by-value parameters and results, assignments, and range
// statements. Composite literals are allowed (initialization before first
// use), as are pointers, slices, and maps of lock types.
//
// Intentional copies (there should be none) carry //lint:copylocks
// <verb> <reason> waivers.
package copylocks

import (
	"go/ast"
	"go/types"

	"github.com/clof-go/clof/internal/analysis"
)

// Analyzer is the copylocks analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "copylocks",
	Tag:  "copylocks",
	Doc:  "lock types (containing lockapi.Cell) must not be copied by value",
	Run:  run,
}

func run(pass *analysis.Pass) {
	info := pass.Pkg.Info

	hasCell := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		return ok && tv.Type != nil && analysis.HasCell(tv.Type)
	}

	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if hasCell(field.Type) {
				pass.Reportf(field.Type.Pos(),
					"%s passes lock type %s by value (it contains lockapi.Cell); use a pointer",
					what, typeString(info, field.Type))
			}
		}
	}

	for _, f := range pass.Pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFieldList(n.Type.Params, "parameter")
				checkFieldList(n.Type.Results, "result")
			case *ast.FuncLit:
				checkFieldList(n.Type.Params, "parameter")
				checkFieldList(n.Type.Results, "result")
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					// Discarding to blank produces no live copy.
					if len(n.Lhs) == len(n.Rhs) {
						if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							continue
						}
					}
					if copies(info, rhs) {
						pass.Reportf(rhs.Pos(),
							"assignment copies lock value of type %s (contains lockapi.Cell); use a pointer",
							typeString(info, rhs))
					}
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					if copies(info, v) {
						pass.Reportf(v.Pos(),
							"declaration copies lock value of type %s (contains lockapi.Cell); use a pointer",
							typeString(info, v))
					}
				}
			case *ast.RangeStmt:
				// In the `:=` form the loop variables are definitions, so
				// their types live in Defs, not Types.
				for _, v := range []ast.Expr{n.Key, n.Value} {
					if v == nil {
						continue
					}
					t := rangeVarType(info, v)
					if t != nil && analysis.HasCell(t) {
						pass.Reportf(v.Pos(),
							"range copies lock values of type %s (contains lockapi.Cell); range over pointers or indices",
							t.String())
					}
				}
			case *ast.CallExpr:
				for _, arg := range n.Args {
					if copies(info, arg) {
						pass.Reportf(arg.Pos(),
							"call copies lock value of type %s (contains lockapi.Cell); pass a pointer",
							typeString(info, arg))
					}
				}
			}
			return true
		})
	}
}

// copies reports whether evaluating e produces a by-value copy of a
// Cell-containing value that already exists elsewhere. Composite literals
// are fresh values (no prior identity), so they are allowed; everything
// else — variables, field selections, dereferences, index expressions,
// call results — is a copy.
func copies(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil || !analysis.HasCell(tv.Type) {
		return false
	}
	switch e := e.(type) {
	case *ast.CompositeLit:
		return false
	case *ast.ParenExpr:
		return copies(info, e.X)
	}
	return true
}

// rangeVarType resolves a range key/value variable's type, whether the
// statement defines it (`:=`, type in Defs) or assigns it (type in Types).
// Blank identifiers produce no live copy and resolve to nil.
func rangeVarType(info *types.Info, e ast.Expr) types.Type {
	if id, ok := e.(*ast.Ident); ok {
		if id.Name == "_" {
			return nil
		}
		if obj, ok := info.Defs[id]; ok && obj != nil {
			return obj.Type()
		}
	}
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func typeString(info *types.Info, e ast.Expr) string {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return tv.Type.String()
	}
	return "?"
}
