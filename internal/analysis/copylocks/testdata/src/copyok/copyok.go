// Package copyok is the copylocks clean corpus: pointers everywhere,
// composite-literal initialization, and ranging by index.
package copyok

import "github.com/clof-go/clof/internal/lockapi"

type spinLock struct {
	word lockapi.Cell
}

func newSpinLock() *spinLock {
	return &spinLock{}
}

func byPointer(l *spinLock) {}

func pointerSlice(ls []*spinLock) {
	for _, l := range ls {
		byPointer(l)
	}
}

func indexRange(ls []spinLock) {
	for i := range ls {
		byPointer(&ls[i])
	}
}

func fieldAccess(l *spinLock, p lockapi.Proc) uint64 {
	return p.Load(&l.word, lockapi.Acquire)
}
