// Package copyval is the copylocks bad corpus: every by-value copy shape
// of a Cell-containing lock type.
package copyval

import "github.com/clof-go/clof/internal/lockapi"

type spinLock struct {
	word lockapi.Cell
}

// wrapper embeds a lock by value: copying the wrapper copies the lock.
type wrapper struct {
	inner spinLock
	name  string
}

var global spinLock

func byValueParam(l spinLock) {} // want "parameter passes lock type"

func byValueResult() spinLock { // want "result passes lock type"
	return global
}

func assignCopy() {
	l := global        // want "assignment copies lock value"
	byValueParam(l)    // want "call copies lock value"
	var discard spinLock
	_ = discard // discarding to blank: no live copy, no finding
}

func derefCopy(p *spinLock) {
	l := *p // want "assignment copies lock value"
	byPointer(&l)
}

func byPointer(l *spinLock) {}

func wrapperCopy(w *wrapper) {
	v := *w // want "assignment copies lock value"
	_ = v.name
}

func rangeCopy(ls []spinLock) {
	for _, l := range ls { // want "range copies lock values"
		byPointer(&l)
	}
}

func callCopy() {
	byValueParam(global) // want "call copies lock value"
}
