// Package waiverfix is the waiver-parser regression fixture: the framework
// test runs a dummy analyzer that flags every function whose name starts
// with "Flagged", then asserts which findings the waivers below filter and
// which waiver comments are themselves reported.
package waiverfix

// FlaggedProperly carries a full waiver: tag, verb, and a reason. The
// finding must be filtered in Run and surface in Audit.
//
//lint:dummy allow the regression test wants this site waived with a reason
func FlaggedProperly() {}

// FlaggedBare carries a bare waiver — tag and verb but no reason. The
// waiver must NOT filter the finding, and must itself be reported.
//
//lint:dummy allow
func FlaggedBare() {}

//lint:dummy
// FlaggedMalformed sits under a waiver with no verb at all, which must be
// reported as malformed and must not filter the finding.
func FlaggedMalformed() {}

// Unflagged is control: no finding, no waiver.
func Unflagged() {}
