// Package escapes is the positive heldescape fixture: Counter.n and
// Counter.hi are written under Counter.mu, and the bare getters read them
// with no lock held.
package escapes

import "sync"

// Counter guards its fields with mu.
type Counter struct {
	mu sync.Mutex
	n  int
	hi int
}

// Incr updates both fields under the lock.
func (c *Counter) Incr() {
	c.mu.Lock()
	c.n++
	if c.n > c.hi {
		c.hi = c.n
	}
	c.mu.Unlock()
}

// Peek reads n bare: the seeded escape.
func (c *Counter) Peek() int {
	return c.n // want "lock-protected field escapes: escapes.Counter.n is written under escapes.Counter.mu but read here with no lock held"
}

// High reads hi bare, from a plain function rather than a method.
func High(c *Counter) int {
	return c.hi // want "lock-protected field escapes: escapes.Counter.hi is written under escapes.Counter.mu"
}
