// Package escclean is the negative heldescape fixture: guarded reads,
// helpers that are only called under the lock (the under-lock closure),
// atomic fields, and fields never guarded by their own struct's lock must
// all stay silent.
package escclean

import (
	"sync"
	"sync/atomic"
)

// Store guards data with mu and publishes hits through an atomic.
type Store struct {
	mu      sync.Mutex
	data    int
	hits    atomic.Uint64
	scratch int
}

// Update writes data through a helper while holding the lock.
func (s *Store) Update(v int) {
	s.mu.Lock()
	s.set(v)
	s.mu.Unlock()
	s.hits.Add(1)
}

// set is only ever called with s.mu held: the under-lock closure marks it
// guarded even though its own may-held set is empty.
func (s *Store) set(v int) {
	s.data = v
}

// Get reads data under the lock.
func (s *Store) Get() int {
	s.mu.Lock()
	v := s.data
	s.mu.Unlock()
	return v
}

// Hits reads the atomic bare — sanctioned: atomics are excluded.
func (s *Store) Hits() uint64 {
	return s.hits.Load()
}

// SetScratch writes scratch with no lock at all, so the field never
// qualifies as lock-protected...
func (s *Store) SetScratch(v int) {
	s.scratch = v
}

// Scratch ...and its bare read is not a finding.
func (s *Store) Scratch() int {
	return s.scratch
}

// pkgMu is an unrelated package-level lock.
var pkgMu sync.Mutex

// Loose has no lock of its own.
type Loose struct {
	v int
}

// SetLoose writes under pkgMu — not a same-struct guard, so Loose.v does
// not qualify as lock-protected.
func SetLoose(l *Loose, v int) {
	pkgMu.Lock()
	l.v = v
	pkgMu.Unlock()
}

// GetLoose reads bare; with no same-struct guarded write, no finding.
func GetLoose(l *Loose) int {
	return l.v
}
