// Package heldescape finds lock-protected state escaping its critical
// section: a struct field that is written somewhere under that struct's own
// lock, but read at a site where no lock is provably held. Such a read
// races with the guarded writers — the classic "stats getter reads the
// counters bare" bug — unless the call site is quiescent by construction,
// which is exactly what the //lint:escape waiver is for.
//
// The analysis is built on the lockfacts world (interprocedural may-held
// sets, cross-package) and is deliberately conservative about what counts
// as lock-protected, to keep the signal clean:
//
//   - A write is guarded only when a held class belongs to the *same
//     struct* as the field (the struct itself, "pkg.DB", or one of its
//     fields, "pkg.DB.lock"). A field only ever written under some
//     unrelated lock never qualifies, so its reads are never flagged.
//   - A read is unguarded only when the may-held set is empty AND the
//     enclosing function is not under-lock — reachable solely from call
//     sites that hold a lock (lockfacts.World.UnderLock), the
//     freezeLocked/compactLocked idiom.
//   - Fields that carry their own synchronization (lockapi.Cell-bearing
//     types, sync and sync/atomic values, lock types) are excluded upstream
//     by lockfacts and never reported here; using an atomic is the
//     sanctioned way to publish a counter out of a critical section.
//
// Findings are reported at the read site. Waive with
// //lint:escape <verb> <reason>.
package heldescape

import (
	"sort"
	"strings"

	"go/types"

	"github.com/clof-go/clof/internal/analysis"
	"github.com/clof-go/clof/internal/analysis/lockfacts"
)

// Analyzer is the heldescape analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "heldescape",
	Tag:  "escape",
	Doc:  "fields written under a lock must not be read with no lock held (and no atomic)",
	Run:  run,
}

// fieldInfo summarizes one field's guarded-write evidence.
type fieldInfo struct {
	// guards are the same-struct classes held at guarded writes.
	guards map[string]bool
	// guardedWrites counts them.
	guardedWrites int
}

func run(pass *analysis.Pass) {
	w := lockfacts.For(pass)
	summary := pass.Prog.Fact("heldescape/summary", func() any {
		return summarize(w)
	}).(map[*types.Var]*fieldInfo)

	for i := range w.Accesses {
		a := &w.Accesses[i]
		if a.PkgPath != pass.Pkg.PkgPath || a.Write {
			continue
		}
		fi := summary[a.Field]
		if fi == nil || fi.guardedWrites == 0 {
			continue
		}
		if len(a.Held) > 0 || w.UnderLock(a.Unit) {
			continue
		}
		guards := make([]string, 0, len(fi.guards))
		for g := range fi.guards {
			guards = append(guards, shortClass(w, g))
		}
		sort.Strings(guards)
		pass.Reportf(a.TokPos,
			"lock-protected field escapes: %s.%s is written under %s but read here with no lock held (use the guard, an atomic, or //lint:escape for quiescent reads)",
			a.OwnerShort, a.Field.Name(), strings.Join(guards, ", "))
	}
}

func shortClass(w *lockfacts.World, key string) string {
	if c := w.Classes[key]; c != nil {
		return c.Short
	}
	return key
}

// summarize collects, per field, the writes guarded by a same-struct class
// (directly held, or inherited through the under-lock closure).
func summarize(w *lockfacts.World) map[*types.Var]*fieldInfo {
	out := map[*types.Var]*fieldInfo{}
	for i := range w.Accesses {
		a := &w.Accesses[i]
		if !a.Write {
			continue
		}
		held := a.Held
		if len(held) == 0 && w.UnderLock(a.Unit) {
			held = w.GuardClasses(a.Unit)
		}
		var guards []string
		for _, h := range held {
			if sameStruct(h, a.OwnerKey) {
				guards = append(guards, h)
			}
		}
		if len(guards) == 0 {
			continue
		}
		fi := out[a.Field]
		if fi == nil {
			fi = &fieldInfo{guards: map[string]bool{}}
			out[a.Field] = fi
		}
		fi.guardedWrites++
		for _, g := range guards {
			fi.guards[g] = true
		}
	}
	return out
}

// sameStruct reports whether class key guards fields of the struct named by
// ownerKey: the class is the struct's own named type, or one of its fields.
func sameStruct(classKey, ownerKey string) bool {
	if ownerKey == "" {
		return false
	}
	return classKey == ownerKey || strings.HasPrefix(classKey, ownerKey+".")
}
