package heldescape

import (
	"testing"

	"github.com/clof-go/clof/internal/analysis/atest"
)

func TestFlagged(t *testing.T) {
	atest.Run(t, Analyzer, "escapes")
}

func TestClean(t *testing.T) {
	atest.RunExpectClean(t, Analyzer, "escclean")
}
