// Package lockfacts computes whole-module lock fact summaries: which
// functions acquire and release which lock classes, in what order, across
// package boundaries. It is the interprocedural substrate under the
// lockorder and heldescape analyzers — the piece PR 2's intra-package call
// graphs could not provide, and the reason acquisition-order cycles between
// composed locks (clof climbing its hierarchy, a kvstore shard holding its
// DB lock, a cohort wrapper taking local then global) are visible to
// clof-lint at all.
//
// # Lock classes
//
// Following lockdep, findings are per lock *class*, not per instance. The
// class of an acquisition site is resolved from the receiver expression of
// the Acquire/Lock call, most specific first:
//
//   - a package-level variable ("kvstore.globalMu"),
//   - a struct field ("kvstore.DB.lock" — every DB shares the class),
//   - otherwise the receiver's named type ("clof.Lock", "sync.Mutex").
//
// A class may declare its CLoF topology level with a directive comment on
// its type, package-level var, or struct field declaration:
//
//	//lock:level cache-group
//
// using the internal/topo level names (core, cache-group, numa, package,
// system). The lockorder analyzer checks declared levels against the CLoF
// climb order (low before high).
//
// # Summaries and propagation
//
// Every function body (and function literal) is walked with a branch-aware
// may-held lock set: acquire adds a class, release removes it, an if/switch
// merges the union of its non-returning branches, and a deferred release is
// held until function exit. Each walk records
//
//   - edges: "acquired class B while class A was held", with position;
//   - net effects: classes still held at return (a Lock() helper), and
//     releases of locks the function never acquired (an Unlock() helper);
//   - static calls, with the held set at the call site;
//   - plain struct-field reads and writes, with the held set (heldescape's
//     raw material).
//
// Call effects propagate interprocedurally: a call to g while holding A
// contributes edges from A to everything g transitively acquires (with the
// call chain retained for diagnostics), and g's net effects update the
// caller's held set. The walks repeat to a fixpoint, so summaries flow
// through arbitrarily deep, cross-package call chains; calls that are
// themselves lock-protocol operations (x.Acquire, mu.Lock) are treated as
// atomic acquisitions of their class rather than inlined.
package lockfacts

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/clof-go/clof/internal/analysis"
	"github.com/clof-go/clof/internal/analysis/loader"
	"github.com/clof-go/clof/internal/topo"
)

// Class is one lock class (see the package comment for resolution rules).
type Class struct {
	// Key is the globally unique class name, rooted at the full package
	// path ("github.com/.../internal/kvstore.DB.lock").
	Key string
	// Short is the human form used in diagnostics ("kvstore.DB.lock").
	Short string
	// Level is the declared CLoF topology level; valid iff HasLevel.
	Level    topo.Level
	HasLevel bool
}

// Edge is one "acquired To while holding From" fact.
type Edge struct {
	From, To *Class
	// Site is the position the inner acquisition became inevitable in the
	// holder's frame: the acquire call itself, or the static call that
	// transitively performs it. SitePos is the same position in token.Pos
	// form, resolvable against the loader's shared FileSet (for
	// Pass.Reportf).
	Site    token.Position
	SitePos token.Pos
	// PkgPath is the package containing Site.
	PkgPath string
	// Chain is the call chain from the function containing Site down to
	// the function performing the acquisition, for cross-package
	// diagnostics ("kvstore.Session.Put -> clof.Lock.acquireNode").
	Chain []string
}

// FieldAccess is one plain struct-field read or write with its lock
// context.
type FieldAccess struct {
	// Field is the accessed field object (shared across packages: the
	// loader type-checks the whole module with one importer).
	Field *types.Var
	// OwnerKey names the struct type declaring the field, in class-key
	// form ("<pkgpath>.DB") — "" when the owner is not a named type.
	OwnerKey string
	// OwnerShort is the diagnostic form of OwnerKey.
	OwnerShort string
	// Pos is the access position (TokPos its token.Pos form, for
	// Pass.Reportf); PkgPath the package containing it.
	Pos     token.Position
	TokPos  token.Pos
	PkgPath string
	// Held is the may-held class-key set at the access.
	Held []string
	// Unit is the enclosing function (or function literal).
	Unit *Unit
	// Write reports a store to the field (a compound assignment or x.f++
	// records both a read and a write access).
	Write bool
}

// Unit is one analyzed body: a declared function/method or a function
// literal.
type Unit struct {
	// Fn is the declared function, nil for a function literal.
	Fn *types.Func
	// Label is the diagnostic name ("kvstore.Session.Put",
	// "kvstore.func@readrandom.go:81").
	Label string
	pkg   *loader.Package
	body  *ast.BlockStmt
	pos   token.Pos
}

// World is the whole-module lock fact summary.
type World struct {
	// Classes indexes every lock class seen at an acquisition site (plus
	// classes that only declared a level), by Key.
	Classes map[string]*Class
	// Edges holds every held→acquired fact, sorted by site position.
	Edges []Edge
	// Accesses holds every plain struct-field access, sorted by position.
	Accesses []FieldAccess

	units      []*Unit
	underLock  map[*Unit]bool
	guardClass map[*Unit]map[string]bool
}

// UnderLock reports whether every static call path to u's function holds
// at least one lock — the "provably held" escape hatch heldescape grants
// helpers like kvstore's freezeLocked that are only ever invoked from
// inside a critical section. Units never called statically (exported API,
// goroutine bodies) are not under lock.
func (w *World) UnderLock(u *Unit) bool { return w.underLock[u] }

// GuardClasses returns the union of class keys held at u's static call
// sites (following under-lock callers), i.e. the locks that guard u's body
// when UnderLock(u) holds.
func (w *World) GuardClasses(u *Unit) []string {
	var out []string
	for k := range w.guardClass[u] {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

const factKey = "lockfacts/world"

// For returns the world for the pass's whole-program context, computing it
// on first use and sharing it across all passes of the run.
func For(pass *analysis.Pass) *World {
	return pass.Prog.Fact(factKey, func() any { return Build(pass.Prog) }).(*World)
}

// Build computes the world over the program's packages and all their
// module-owned dependencies.
func Build(prog *analysis.Program) *World {
	b := &builder{
		world:    &World{Classes: map[string]*Class{}},
		levels:   map[string]topo.Level{},
		units:    map[*types.Func]*Unit{},
		litUnits: map[*ast.FuncLit]*Unit{},
		transAcq: map[*Unit]map[string][]string{},
		transNet: map[*Unit]map[string]bool{},
		transRel: map[*Unit]map[string]bool{},
		edges:    map[string]*Edge{},
		accesses: map[token.Pos]*FieldAccess{},
	}
	b.collectPackages(prog)
	b.scanDirectives()
	b.collectUnits()
	for iter := 0; iter < 50; iter++ {
		b.changed = false
		b.calls = map[*Unit][]callRec{}
		for _, u := range b.world.units {
			b.walk(u)
		}
		if !b.changed {
			break
		}
	}
	b.finish()
	return b.world
}

// callRec is one static call site: callee with the caller's held set.
type callRec struct {
	caller *Unit
	held   []string
}

type builder struct {
	world *World
	pkgs  []*loader.Package
	// levels holds //lock:level directives by class key, including classes
	// with no acquisition site yet.
	levels map[string]topo.Level

	units    map[*types.Func]*Unit
	litUnits map[*ast.FuncLit]*Unit

	// Fixpoint state: per unit, the transitively acquired classes (with a
	// witness call chain), net held-at-return classes, and net releases of
	// locks acquired by a caller.
	transAcq map[*Unit]map[string][]string
	transNet map[*Unit]map[string]bool
	transRel map[*Unit]map[string]bool
	calls    map[*Unit][]callRec
	edges    map[string]*Edge
	accesses map[token.Pos]*FieldAccess
	changed  bool
}

// collectPackages gathers prog.Pkgs plus every module-owned transitive
// dependency (reachable through loader.Package.Dep), sorted by path.
func (b *builder) collectPackages(prog *analysis.Program) {
	seen := map[string]*loader.Package{}
	var visit func(p *loader.Package)
	visit = func(p *loader.Package) {
		if p == nil || seen[p.PkgPath] != nil {
			return
		}
		seen[p.PkgPath] = p
		for _, imp := range p.Types.Imports() {
			if d, ok := p.Dep(imp.Path()); ok {
				visit(d)
			}
		}
	}
	for _, p := range prog.Pkgs {
		visit(p)
	}
	paths := make([]string, 0, len(seen))
	for path := range seen {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		b.pkgs = append(b.pkgs, seen[path])
	}
}

// scanDirectives collects //lock:level comments from type, package-var and
// struct-field declarations.
func (b *builder) scanDirectives() {
	for _, pkg := range b.pkgs {
		for _, f := range pkg.Syntax {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						key := pkg.PkgPath + "." + s.Name.Name
						b.levelFrom(key, gd.Doc, s.Doc, s.Comment)
						if st, ok := s.Type.(*ast.StructType); ok {
							for _, fld := range st.Fields.List {
								for _, name := range fld.Names {
									b.levelFrom(key+"."+name.Name, fld.Doc, fld.Comment)
								}
							}
						}
					case *ast.ValueSpec:
						for _, name := range s.Names {
							b.levelFrom(pkg.PkgPath+"."+name.Name, gd.Doc, s.Doc, s.Comment)
						}
					}
				}
			}
		}
	}
}

// levelFrom parses the first //lock:level directive in the comment groups.
func (b *builder) levelFrom(key string, groups ...*ast.CommentGroup) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			rest, ok := strings.CutPrefix(c.Text, "//lock:level ")
			if !ok {
				continue
			}
			if lvl, err := topo.ParseLevel(strings.TrimSpace(rest)); err == nil {
				b.levels[key] = lvl
			}
		}
	}
}

// collectUnits registers every declared function with a body, in
// deterministic (package, file, declaration) order. Function literals are
// registered lazily during walks.
func (b *builder) collectUnits() {
	for _, pkg := range b.pkgs {
		for _, f := range pkg.Syntax {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				u := &Unit{Fn: fn, Label: funcLabel(pkg, fd, fn), pkg: pkg, body: fd.Body, pos: fd.Pos()}
				b.units[fn] = u
				b.world.units = append(b.world.units, u)
			}
		}
	}
}

// funcLabel renders "pkg.Recv.Name" / "pkg.Name".
func funcLabel(pkg *loader.Package, fd *ast.FuncDecl, fn *types.Func) string {
	name := pkg.Types.Name() + "."
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			name += id.Name + "."
		}
	}
	return name + fn.Name()
}

// litUnit returns (creating on first sight) the unit for a function
// literal.
func (b *builder) litUnit(pkg *loader.Package, lit *ast.FuncLit) *Unit {
	if u, ok := b.litUnits[lit]; ok {
		return u
	}
	pos := pkg.Fset.Position(lit.Pos())
	u := &Unit{
		Label: fmt.Sprintf("%s.func@%s:%d", pkg.Types.Name(), shortFile(pos.Filename), pos.Line),
		pkg:   pkg, body: lit.Body, pos: lit.Pos(),
	}
	b.litUnits[lit] = u
	b.world.units = append(b.world.units, u)
	return u
}

func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// class interns a class by key.
func (b *builder) class(key, short string) *Class {
	if c, ok := b.world.Classes[key]; ok {
		return c
	}
	c := &Class{Key: key, Short: short}
	b.world.Classes[key] = c
	return c
}

// finish attaches declared levels, sorts the outputs, and computes the
// under-lock closure.
func (b *builder) finish() {
	w := b.world
	for key, lvl := range b.levels {
		short := key
		if i := strings.LastIndex(key, "/"); i >= 0 {
			short = key[i+1:]
		}
		c := b.class(key, short)
		c.Level, c.HasLevel = lvl, true
	}
	for _, e := range b.edges {
		w.Edges = append(w.Edges, *e)
	}
	sort.Slice(w.Edges, func(i, j int) bool {
		a, c := w.Edges[i], w.Edges[j]
		if a.Site.Filename != c.Site.Filename {
			return a.Site.Filename < c.Site.Filename
		}
		if a.Site.Line != c.Site.Line {
			return a.Site.Line < c.Site.Line
		}
		if a.Site.Column != c.Site.Column {
			return a.Site.Column < c.Site.Column
		}
		if a.From.Key != c.From.Key {
			return a.From.Key < c.From.Key
		}
		return a.To.Key < c.To.Key
	})
	for _, a := range b.accesses {
		w.Accesses = append(w.Accesses, *a)
	}
	sort.Slice(w.Accesses, func(i, j int) bool {
		a, c := w.Accesses[i], w.Accesses[j]
		if a.Pos.Filename != c.Pos.Filename {
			return a.Pos.Filename < c.Pos.Filename
		}
		if a.Pos.Line != c.Pos.Line {
			return a.Pos.Line < c.Pos.Line
		}
		return a.Pos.Column < c.Pos.Column
	})

	// Under-lock closure: u is under lock iff it is statically called and
	// every call site either holds a lock or sits in an under-lock caller.
	// Iterated to a fixpoint (monotone: the set only grows).
	w.underLock = map[*Unit]bool{}
	w.guardClass = map[*Unit]map[string]bool{}
	for changed := true; changed; {
		changed = false
		for _, u := range w.units {
			if w.underLock[u] {
				continue
			}
			recs := b.calls[u]
			if len(recs) == 0 {
				continue
			}
			ok := true
			for _, r := range recs {
				if len(r.held) == 0 && !w.underLock[r.caller] {
					ok = false
					break
				}
			}
			if ok {
				w.underLock[u] = true
				changed = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, u := range w.units {
			if !w.underLock[u] {
				continue
			}
			gc := w.guardClass[u]
			if gc == nil {
				gc = map[string]bool{}
				w.guardClass[u] = gc
			}
			for _, r := range b.calls[u] {
				for _, h := range r.held {
					if !gc[h] {
						gc[h] = true
						changed = true
					}
				}
				for h := range w.guardClass[r.caller] {
					if !gc[h] {
						gc[h] = true
						changed = true
					}
				}
			}
		}
	}
}

// ---- per-unit walk ----

// walker carries one unit's traversal state.
type walker struct {
	b *builder
	u *Unit
	// held is the current may-held multiset of class keys.
	held map[string]int
	// exit accumulates the union of held sets at every return point.
	exit map[string]bool
	// deferredRel collects classes released by deferred calls (applied to
	// exit at the end).
	deferredRel []string
	// netRel collects releases of classes the unit never acquired.
	netRel map[string]bool
	// deferCtx is set while walking a deferred function literal's body, so
	// releases inside it count as deferred.
	deferCtx bool
}

func (b *builder) walk(u *Unit) {
	w := &walker{b: b, u: u, held: map[string]int{}, exit: map[string]bool{}, netRel: map[string]bool{}}
	terminated := w.stmts(u.body.List)
	if !terminated {
		w.ret()
	}
	// Deferred releases retire exit-held classes.
	exit := map[string]bool{}
	for k := range w.exit {
		exit[k] = true
	}
	for _, k := range w.deferredRel {
		delete(exit, k)
	}
	for k := range exit {
		b.setNet(b.transNet, u, k)
	}
	for k := range w.netRel {
		b.setNet(b.transRel, u, k)
	}
}

func (b *builder) setNet(m map[*Unit]map[string]bool, u *Unit, key string) {
	s := m[u]
	if s == nil {
		s = map[string]bool{}
		m[u] = s
	}
	if !s[key] {
		s[key] = true
		b.changed = true
	}
}

// ret records the current held set as a function exit.
func (w *walker) ret() {
	for k, n := range w.held {
		if n > 0 {
			w.exit[k] = true
		}
	}
}

func (w *walker) heldKeys() []string {
	var out []string
	for k, n := range w.held {
		if n > 0 {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func (w *walker) clone() map[string]int {
	c := make(map[string]int, len(w.held))
	for k, v := range w.held {
		c[k] = v
	}
	return c
}

// merge unions other into held (may-held join).
func (w *walker) merge(other map[string]int) {
	for k, v := range other {
		if v > w.held[k] {
			w.held[k] = v
		}
	}
}

// stmts walks a statement list; reports whether the list definitely
// terminates (ends in return) with no fall-through.
func (w *walker) stmts(list []ast.Stmt) bool {
	for _, s := range list {
		if w.stmt(s) {
			return true
		}
	}
	return false
}

// stmt walks one statement; reports whether control definitely leaves the
// enclosing function here.
func (w *walker) stmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		return w.stmts(s.List)
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.expr(r)
		}
		for _, l := range s.Lhs {
			w.lhs(l, s.Tok != token.ASSIGN && s.Tok != token.DEFINE)
		}
	case *ast.IncDecStmt:
		w.lhs(s.X, true)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r)
		}
		w.ret()
		return true
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		entry := w.clone()
		thenTerm := w.stmt(s.Body)
		thenExit := w.held
		w.held = entry
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.stmt(s.Else)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			// Continuation sees only the else/fall-through exit.
		case elseTerm:
			w.held = thenExit
		default:
			w.merge(thenExit)
		}
	case *ast.ForStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		entry := w.clone()
		w.stmt(s.Body)
		w.stmt(s.Post)
		w.merge(entry)
	case *ast.RangeStmt:
		w.expr(s.X)
		entry := w.clone()
		w.stmt(s.Body)
		w.merge(entry)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		w.expr(s.Tag)
		w.branches(s.Body)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		w.branches(s.Body)
	case *ast.SelectStmt:
		w.branches(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.expr(e)
		}
		return w.stmts(s.Body)
	case *ast.CommClause:
		w.stmt(s.Comm)
		return w.stmts(s.Body)
	case *ast.DeferStmt:
		w.call(s.Call, true)
	case *ast.GoStmt:
		// The goroutine runs concurrently: its body is analyzed as its own
		// unit with an empty held set, and contributes nothing here.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.b.walkLit(w.u.pkg, lit)
		} else if callee := w.staticCallee(s.Call); callee != nil {
			w.b.calls[callee] = append(w.b.calls[callee], callRec{caller: w.u, held: nil})
		}
		for _, a := range s.Call.Args {
			w.expr(a)
		}
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	}
	return false
}

// branches walks each clause of a switch/select body on a clone of the
// held set, then unions the non-terminating exits.
func (w *walker) branches(body *ast.BlockStmt) {
	entry := w.clone()
	merged := w.clone()
	for _, c := range body.List {
		w.held = cloneHeld(entry)
		if !w.stmt(c) {
			for k, v := range w.held {
				if v > merged[k] {
					merged[k] = v
				}
			}
		}
	}
	w.held = merged
}

func cloneHeld(m map[string]int) map[string]int {
	c := make(map[string]int, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// lhs records a field write (and for compound assignments the implied
// read) on assignment targets, then walks the base expression.
func (w *walker) lhs(e ast.Expr, alsoRead bool) {
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if f, owner := w.fieldOf(sel); f != nil {
			w.access(f, owner, sel.Sel.Pos(), true)
			if alsoRead {
				w.access(f, owner, sel.Sel.Pos(), false)
			}
		}
		w.expr(sel.X)
		return
	}
	w.expr(e)
}

// expr walks an expression, recording calls and field reads.
func (w *walker) expr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		w.call(e, false)
	case *ast.FuncLit:
		w.b.walkLit(w.u.pkg, e)
	case *ast.SelectorExpr:
		if f, owner := w.fieldOf(e); f != nil {
			w.access(f, owner, e.Sel.Pos(), false)
		}
		w.expr(e.X)
	case *ast.Ident, *ast.BasicLit:
	case *ast.ParenExpr:
		w.expr(e.X)
	case *ast.UnaryExpr:
		w.expr(e.X)
	case *ast.BinaryExpr:
		w.expr(e.X)
		w.expr(e.Y)
	case *ast.StarExpr:
		w.expr(e.X)
	case *ast.IndexExpr:
		w.expr(e.X)
		w.expr(e.Index)
	case *ast.SliceExpr:
		w.expr(e.X)
		w.expr(e.Low)
		w.expr(e.High)
		w.expr(e.Max)
	case *ast.TypeAssertExpr:
		w.expr(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.expr(el)
		}
	case *ast.KeyValueExpr:
		w.expr(e.Value)
	}
}

// walkLit analyzes a function literal as its own unit with an empty held
// set (it is not, in general, executed at its definition point).
func (b *builder) walkLit(pkg *loader.Package, lit *ast.FuncLit) {
	b.walk(b.litUnit(pkg, lit))
}

// call handles a call expression: a lock-protocol operation updates the
// held set and the edge graph; a static call to a module function applies
// that function's summary.
func (w *walker) call(c *ast.CallExpr, deferred bool) {
	b := w.b
	if cls, acquire, ok := w.lockCall(c); ok {
		if acquire {
			w.addEdges(cls, c.Pos(), nil)
			if !deferred {
				w.held[cls.Key]++
			}
			b.setTransAcq(w.u, cls.Key, []string{w.u.Label})
		} else {
			if deferred || w.deferCtx {
				w.deferredRel = append(w.deferredRel, cls.Key)
			} else if w.held[cls.Key] > 0 {
				w.held[cls.Key]--
			} else {
				w.netRel[cls.Key] = true
			}
		}
		// Still walk the receiver chain for field reads (x.mu.Lock reads x.mu).
		if sel, ok := c.Fun.(*ast.SelectorExpr); ok {
			w.expr(sel.X)
		}
		for _, a := range c.Args {
			w.expr(a)
		}
		return
	}

	if callee := w.staticCallee(c); callee != nil {
		b.calls[callee] = append(b.calls[callee], callRec{caller: w.u, held: w.heldKeys()})
		// Everything the callee transitively acquires is acquired while we
		// hold what we hold.
		acq := b.transAcq[callee]
		keys := make([]string, 0, len(acq))
		for k := range acq {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			w.addEdges(b.world.Classes[k], c.Pos(), acq[k])
		}
		if !deferred {
			for k := range b.transNet[callee] {
				w.held[k]++
			}
			for k := range b.transRel[callee] {
				if w.held[k] > 0 {
					w.held[k]--
				} else {
					w.netRel[k] = true
				}
			}
			for _, k := range keys {
				b.setTransAcq(w.u, k, append([]string{w.u.Label}, acq[k]...))
			}
		} else {
			for k := range b.transRel[callee] {
				w.deferredRel = append(w.deferredRel, k)
			}
		}
	} else if lit, ok := c.Fun.(*ast.FuncLit); ok {
		// An immediately invoked (or deferred) literal runs in this frame:
		// walk it inline, with deferred releases redirected.
		savedDefer := w.deferCtx
		if deferred {
			w.deferCtx = true
		}
		w.stmts(lit.Body.List)
		w.deferCtx = savedDefer
		for _, a := range c.Args {
			w.expr(a)
		}
		return
	}
	w.expr(c.Fun)
	for _, a := range c.Args {
		w.expr(a)
	}
}

// addEdges records held→to edges at site with the given callee chain.
func (w *walker) addEdges(to *Class, site token.Pos, calleeChain []string) {
	if to == nil {
		return
	}
	b := w.b
	pos := w.u.pkg.Fset.Position(site)
	for _, h := range w.heldKeys() {
		key := h + "\x00" + to.Key + "\x00" + pos.Filename + fmt.Sprintf(":%d:%d", pos.Line, pos.Column)
		if _, ok := b.edges[key]; ok {
			continue
		}
		chain := append([]string{w.u.Label}, calleeChain...)
		b.edges[key] = &Edge{
			From: b.world.Classes[h], To: to,
			Site: pos, SitePos: site, PkgPath: w.u.pkg.PkgPath, Chain: chain,
		}
		b.changed = true
	}
}

func (b *builder) setTransAcq(u *Unit, key string, chain []string) {
	s := b.transAcq[u]
	if s == nil {
		s = map[string][]string{}
		b.transAcq[u] = s
	}
	if _, ok := s[key]; !ok {
		if len(chain) > 8 {
			chain = chain[:8]
		}
		s[key] = chain
		b.changed = true
	}
}

// staticCallee resolves c to a module function with a body.
func (w *walker) staticCallee(c *ast.CallExpr) *Unit {
	var obj types.Object
	switch fun := c.Fun.(type) {
	case *ast.Ident:
		obj = w.u.pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = w.u.pkg.Info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return w.b.units[fn]
}

// ---- classification ----

// Lock-protocol method names are matched EXACTLY, not by prefix: the
// observability layer's Observer callbacks (AcquireStart, Acquired,
// Released) would otherwise classify as lock operations and paint phantom
// edges through every instrumented lock.
func isAcquireName(name string) bool {
	switch name {
	case "Acquire", "TryAcquire", "Lock", "TryLock", "RLock", "TryRLock":
		return true
	}
	return false
}

func isReleaseName(name string) bool {
	switch name {
	case "Release", "Unlock", "RUnlock":
		return true
	}
	return false
}

// lockCall classifies c as a lock-protocol method call and resolves the
// receiver's lock class.
func (w *walker) lockCall(c *ast.CallExpr) (cls *Class, acquire bool, ok bool) {
	sel, selOK := c.Fun.(*ast.SelectorExpr)
	if !selOK {
		return nil, false, false
	}
	fn, fnOK := w.u.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !fnOK {
		return nil, false, false
	}
	sig, sigOK := fn.Type().(*types.Signature)
	if !sigOK || sig.Recv() == nil {
		return nil, false, false
	}
	switch {
	case isAcquireName(fn.Name()):
		acquire = true
	case isReleaseName(fn.Name()):
	default:
		return nil, false, false
	}
	key, short := w.classOf(sel.X)
	if key == "" {
		return nil, false, false
	}
	return w.b.class(key, short), acquire, true
}

// classOf resolves the lock class of a receiver expression: package-level
// variable, struct field, then named type (see the package comment).
func (w *walker) classOf(e ast.Expr) (key, short string) {
	info := w.u.pkg.Info
	e = unwrap(e)
	switch x := e.(type) {
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok && !v.IsField() && v.Pkg() != nil &&
			v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name(), v.Pkg().Name() + "." + v.Name()
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[x]; ok && s.Kind() == types.FieldVal {
			if f, ok := s.Obj().(*types.Var); ok {
				if named := namedOf(s.Recv()); named != nil {
					obj := named.Obj()
					return obj.Pkg().Path() + "." + obj.Name() + "." + f.Name(),
						obj.Pkg().Name() + "." + obj.Name() + "." + f.Name()
				}
			}
		}
		// Qualified package-level var: otherpkg.Mu.
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && !v.IsField() && v.Pkg() != nil &&
			v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name(), v.Pkg().Name() + "." + v.Name()
		}
	}
	if tv, ok := info.Types[e]; ok {
		if named := namedOf(tv.Type); named != nil {
			obj := named.Obj()
			if obj.Pkg() != nil {
				return obj.Pkg().Path() + "." + obj.Name(), obj.Pkg().Name() + "." + obj.Name()
			}
			return obj.Name(), obj.Name()
		}
	}
	return "", ""
}

func unwrap(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return e
		}
	}
}

// ---- field accesses ----

// fieldOf resolves sel to a plain struct field worth tracking: not a
// lockapi.Cell (those are only touched through Proc operations), not a
// sync/atomic value, not a lock. Returns the field and its owner class
// prefix.
func (w *walker) fieldOf(sel *ast.SelectorExpr) (*types.Var, [2]string) {
	info := w.u.pkg.Info
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, [2]string{}
	}
	f, ok := s.Obj().(*types.Var)
	if !ok || excludedFieldType(f.Type()) {
		return nil, [2]string{}
	}
	named := namedOf(s.Recv())
	if named == nil || named.Obj().Pkg() == nil {
		return nil, [2]string{}
	}
	obj := named.Obj()
	return f, [2]string{obj.Pkg().Path() + "." + obj.Name(), obj.Pkg().Name() + "." + obj.Name()}
}

// excludedFieldType reports field types that carry their own
// synchronization (or are locks themselves) and are therefore outside
// heldescape's plain-field discipline.
func excludedFieldType(t types.Type) bool {
	if analysis.HasCell(t) {
		return true
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "sync", "sync/atomic":
		return true
	}
	return analysis.IsLockapiPackage(obj.Pkg())
}

// access records one field access with the current held set.
func (w *walker) access(f *types.Var, owner [2]string, pos token.Pos, write bool) {
	b := w.b
	// Writes and reads at the same position (compound assignment) are
	// distinguished in the key.
	mapKey := pos
	if write {
		mapKey = -pos
	}
	a := b.accesses[mapKey]
	if a == nil {
		p := w.u.pkg.Fset.Position(pos)
		a = &FieldAccess{
			Field: f, OwnerKey: owner[0], OwnerShort: owner[1],
			Pos: p, TokPos: pos, PkgPath: w.u.pkg.PkgPath, Unit: w.u, Write: write,
		}
		b.accesses[mapKey] = a
	}
	// Union the held set across fixpoint iterations.
	for _, h := range w.heldKeys() {
		found := false
		for _, have := range a.Held {
			if have == h {
				found = true
				break
			}
		}
		if !found {
			a.Held = append(a.Held, h)
			sort.Strings(a.Held)
		}
	}
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n
	}
	return nil
}
