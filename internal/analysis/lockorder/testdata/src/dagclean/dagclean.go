// Package dagclean is the negative fixture for lockorder: every function
// acquires the two locks in the same order (and one through a helper), so
// the acquisition graph is a DAG and nothing is reported.
package dagclean

import "sync"

// MuA is always taken before MuB.
var MuA sync.Mutex

// MuB is the inner lock.
var MuB sync.Mutex

// LockInner is a cross-function acquisition of the inner lock; lockorder
// must see through it without inventing a reverse edge.
func LockInner() {
	MuB.Lock()
}

// UnlockInner releases the inner lock for callers of LockInner.
func UnlockInner() {
	MuB.Unlock()
}

// Nested takes the locks in the canonical order directly.
func Nested() {
	MuA.Lock()
	MuB.Lock()
	MuB.Unlock()
	MuA.Unlock()
}

// NestedViaHelper takes the same order through the helper pair.
func NestedViaHelper() {
	MuA.Lock()
	LockInner()
	UnlockInner()
	MuA.Unlock()
}

// Sequential holds the locks one at a time: no edge at all.
func Sequential() {
	MuB.Lock()
	MuB.Unlock()
	MuA.Lock()
	MuA.Unlock()
}
