// Package abba is the seeded cross-package ABBA deadlock: Forward takes
// A then B (B through a helper in the abbalocks package, so the edge only
// exists interprocedurally), Backward takes B then A. Both edge sites must
// be reported, the Forward one with its cross-package call chain.
package abba

import "fix/abbalocks"

// Forward holds A while the abbalocks helper acquires B.
func Forward() {
	abbalocks.MuA.Lock()
	abbalocks.LockB() // want "lock-order cycle: abbalocks.MuA -> abbalocks.MuB -> abbalocks.MuA: acquiring abbalocks.MuB while holding abbalocks.MuA closes the cycle (potential ABBA deadlock; rerun with -litmus for an mcheck witness) (call chain abba.Forward -> abbalocks.LockB)"
	abbalocks.UnlockB()
	abbalocks.MuA.Unlock()
}

// Backward holds B while acquiring A: the reverse edge.
func Backward() {
	abbalocks.MuB.Lock()
	abbalocks.MuA.Lock() // want "lock-order cycle: abbalocks.MuB -> abbalocks.MuA -> abbalocks.MuB: acquiring abbalocks.MuA while holding abbalocks.MuB closes the cycle"
	abbalocks.MuA.Unlock()
	abbalocks.MuB.Unlock()
}
