// Package selfnest seeds the self-edge shape: a tree node's lock class is
// acquired again (on the parent node) while a child's instance of the same
// class is held. Per-class analysis cannot order instances, so this is
// reported as a potential self-deadlock — the finding clof's own hierarchy
// climb waives with its strictly-ascending argument.
package selfnest

import "sync"

// Node is a tree node guarding itself with mu.
type Node struct {
	mu     sync.Mutex
	parent *Node
	count  int
}

// ClimbLocked locks the node, then its parent: a nested same-class
// acquisition.
func (n *Node) ClimbLocked() {
	n.mu.Lock()
	if n.parent != nil {
		n.parent.mu.Lock() // want "lock-order cycle: selfnest.Node.mu is acquired while an instance of selfnest.Node.mu is already held"
		n.parent.count++
		n.parent.mu.Unlock()
	}
	n.mu.Unlock()
}
