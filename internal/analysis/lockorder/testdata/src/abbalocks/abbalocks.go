// Package abbalocks declares the two locks of the cross-package ABBA
// fixture, plus helpers so one direction of the cycle is only visible
// through an interprocedural, cross-package call chain.
package abbalocks

import "sync"

// MuA is one of the two locks of the seeded ABBA cycle.
var MuA sync.Mutex

// MuB is the other.
var MuB sync.Mutex

// LockB acquires MuB on behalf of callers in other packages; whatever they
// hold at the call site is held across this acquisition.
func LockB() {
	MuB.Lock()
}

// UnlockB releases MuB for LockB callers.
func UnlockB() {
	MuB.Unlock()
}
