// Package levelinv seeds a CLoF level inversion without a cycle: the
// declared levels put the leaf locks at cache-group and the socket lock at
// package, Climb respects the low-before-high order, and Descend inverts
// it against a second leaf (a distinct class, so no A→B/B→A pair forms).
package levelinv

import "sync"

// MuLeafA is a per-cache-group lock.
//
//lock:level cache-group
var MuLeafA sync.Mutex

// MuLeafB is another per-cache-group lock.
//
//lock:level cache-group
var MuLeafB sync.Mutex

// MuSocket is the per-package (socket) lock.
//
//lock:level package
var MuSocket sync.Mutex

// Climb follows the CLoF order: leaf before socket.
func Climb() {
	MuLeafA.Lock()
	MuSocket.Lock()
	MuSocket.Unlock()
	MuLeafA.Unlock()
}

// Descend acquires a leaf while holding the socket lock: the inversion.
func Descend() {
	MuSocket.Lock()
	MuLeafB.Lock() // want "level inversion: acquires levelinv.MuLeafB (level cache-group) while holding levelinv.MuSocket (level package)"
	MuLeafB.Unlock()
	MuSocket.Unlock()
}
