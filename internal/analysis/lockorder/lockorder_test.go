package lockorder

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"github.com/clof-go/clof/internal/analysis"
	"github.com/clof-go/clof/internal/analysis/atest"
	"github.com/clof-go/clof/internal/analysis/lockfacts"
)

func TestFlagged(t *testing.T) {
	atest.Run(t, Analyzer, "abba", "abbalocks", "levelinv", "selfnest")
}

func TestClean(t *testing.T) {
	atest.RunExpectClean(t, Analyzer, "dagclean")
}

// TestCyclesAndEmit pins the litmus bridge's static half: the ABBA fixture
// yields exactly one canonical cycle, and its emitted program is
// syntactically valid Go wired to mcheck.DeadlockProgram with the rotated
// chains.
func TestCyclesAndEmit(t *testing.T) {
	pkgs := atest.Load(t, "abba", "abbalocks")
	w := lockfacts.Build(analysis.NewProgram(pkgs))

	cycles := Cycles(w)
	if len(cycles) != 1 {
		t.Fatalf("Cycles = %d, want 1: %+v", len(cycles), cycles)
	}
	c := cycles[0]
	if len(c.Keys) != 2 || c.Keys[0] != "fix/abbalocks.MuA" || c.Keys[1] != "fix/abbalocks.MuB" {
		t.Fatalf("cycle keys = %v", c.Keys)
	}

	chains := c.Chains()
	if len(chains) != 2 || chains[0][0] != chains[1][1] || chains[0][1] != chains[1][0] {
		t.Fatalf("chains are not a 2-rotation: %v", chains)
	}

	name, src := EmitLitmus(c, "example.com/mod")
	if !strings.HasSuffix(name, ".go") {
		t.Fatalf("EmitLitmus name = %q", name)
	}
	for _, want := range []string{
		"mcheck.DeadlockProgram",
		`"example.com/mod/internal/mcheck"`,
		"//go:build ignore",
		`"abbalocks.MuA", "abbalocks.MuB"`,
		`"abbalocks.MuB", "abbalocks.MuA"`,
	} {
		if !strings.Contains(string(src), want) {
			t.Errorf("emitted program missing %q:\n%s", want, src)
		}
	}
	if _, err := parser.ParseFile(token.NewFileSet(), name, src, 0); err != nil {
		t.Fatalf("emitted program does not parse: %v\n%s", err, src)
	}
}

// TestSelfCycleChains pins the two-instance rendering of a self-edge.
func TestSelfCycleChains(t *testing.T) {
	c := Cycle{Keys: []string{"p.Node.mu"}, Shorts: []string{"p.Node.mu"}}
	chains := c.Chains()
	if len(chains) != 2 {
		t.Fatalf("chains = %v", chains)
	}
	if chains[0][0] != "p.Node.mu#0" || chains[0][1] != "p.Node.mu#1" ||
		chains[1][0] != "p.Node.mu#1" || chains[1][1] != "p.Node.mu#0" {
		t.Fatalf("self-cycle chains = %v", chains)
	}
}
