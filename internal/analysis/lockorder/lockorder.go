// Package lockorder is the static deadlock detector: it builds the
// whole-module lock-acquisition-order graph from the lockfacts summaries
// (nodes are lock classes, an edge A→B means some function acquired B while
// holding A, possibly through a cross-package call chain) and reports
//
//  1. cycles — an edge whose target can reach its source back, including
//     self-edges (a class acquired while an instance of the same class is
//     held). A cycle is a potential ABBA deadlock: two threads traversing
//     different edges of it can each hold one lock and await the other.
//     Every cycle finding can be replayed dynamically via clof-lint -litmus,
//     which emits an mcheck program whose exhaustive exploration exhibits
//     the deadlock (see EmitLitmus).
//  2. level inversions — an edge from a class declared (via //lock:level)
//     at a higher CLoF topology level to one declared lower. The CLoF climb
//     acquires low levels before high (paper §3.1: leaf to root), so a
//     high→low edge breaks composition with every lock that follows the
//     contract, even if no cycle exists yet within the analyzed module.
//
// Findings are reported at the edge site in whichever package contains it,
// with the call chain that makes the inner acquisition inevitable. Waive
// with //lint:lockorder <verb> <reason> — the canonical legitimate case is
// a strictly ordered climb within one class (clof's own hierarchy walk,
// where parent acquisition is ordered by tree height).
package lockorder

import (
	"go/token"
	"sort"
	"strings"

	"github.com/clof-go/clof/internal/analysis"
	"github.com/clof-go/clof/internal/analysis/lockfacts"
)

// Analyzer is the lockorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Tag:  "lockorder",
	Doc:  "lock acquisition order must be acyclic and respect declared CLoF levels",
	Run:  run,
}

func run(pass *analysis.Pass) {
	w := lockfacts.For(pass)
	adj := adjacency(w)
	for i := range w.Edges {
		e := &w.Edges[i]
		if e.PkgPath != pass.Pkg.PkgPath {
			continue
		}
		if e.From.Key == e.To.Key {
			pass.Reportf(e.SitePos,
				"lock-order cycle: %s is acquired while an instance of %s is already held (self-deadlock if the two holders can interleave)%s",
				e.To.Short, e.From.Short, chainSuffix(e))
		} else if back := path(adj, e.To.Key, e.From.Key); back != nil {
			pass.Reportf(e.SitePos,
				"lock-order cycle: %s: acquiring %s while holding %s closes the cycle (potential ABBA deadlock; rerun with -litmus for an mcheck witness)%s",
				renderCycle(w, e.From.Key, back), e.To.Short, e.From.Short, chainSuffix(e))
		}
		if e.From.HasLevel && e.To.HasLevel && e.To.Level < e.From.Level {
			pass.Reportf(e.SitePos,
				"level inversion: acquires %s (level %s) while holding %s (level %s); the CLoF climb takes low levels before high%s",
				e.To.Short, e.To.Level, e.From.Short, e.From.Level, chainSuffix(e))
		}
	}
}

// chainSuffix renders the cross-package call chain when the acquisition is
// transitive (chain length 1 is just the enclosing function).
func chainSuffix(e *lockfacts.Edge) string {
	if len(e.Chain) <= 1 {
		return ""
	}
	return " (call chain " + strings.Join(e.Chain, " -> ") + ")"
}

// adjacency builds the class-key successor map, successors sorted for
// deterministic traversal.
func adjacency(w *lockfacts.World) map[string][]string {
	set := map[string]map[string]bool{}
	for i := range w.Edges {
		e := &w.Edges[i]
		if set[e.From.Key] == nil {
			set[e.From.Key] = map[string]bool{}
		}
		set[e.From.Key][e.To.Key] = true
	}
	adj := make(map[string][]string, len(set))
	for from, tos := range set {
		for to := range tos {
			adj[from] = append(adj[from], to)
		}
		sort.Strings(adj[from])
	}
	return adj
}

// path returns the shortest class-key path from src to dst (inclusive on
// both ends; BFS, deterministic), or nil if dst is unreachable.
func path(adj map[string][]string, src, dst string) []string {
	if src == dst {
		return []string{src}
	}
	prev := map[string]string{src: ""}
	queue := []string{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range adj[cur] {
			if _, seen := prev[next]; seen {
				continue
			}
			prev[next] = cur
			if next == dst {
				var p []string
				for n := dst; n != ""; n = prev[n] {
					p = append(p, n)
				}
				for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
					p[i], p[j] = p[j], p[i]
				}
				return p
			}
			queue = append(queue, next)
		}
	}
	return nil
}

// renderCycle renders "A -> B -> ... -> A" in Short form: from, then the
// back-path (which starts at the edge target and ends at from).
func renderCycle(w *lockfacts.World, fromKey string, back []string) string {
	short := func(key string) string {
		if c := w.Classes[key]; c != nil {
			return c.Short
		}
		return key
	}
	parts := []string{short(fromKey)}
	for _, k := range back {
		parts = append(parts, short(k))
	}
	return strings.Join(parts, " -> ")
}

// Cycle is one elementary acquisition-order cycle, for the -litmus bridge.
type Cycle struct {
	// Keys are the class keys in acquisition order; the cycle closes from
	// the last back to the first. A self-edge yields length 1.
	Keys []string
	// Shorts are the diagnostic names, parallel to Keys.
	Shorts []string
	// Sites are the positions of every edge that closes this cycle — the
	// same positions the analyzer reports at. The -litmus emitter uses them
	// to honor waivers: a cycle whose closing edges are all waived is a
	// triaged non-finding and gets no witness program.
	Sites []token.Pos
}

// Cycles enumerates the distinct cycles in the world's acquisition graph,
// one per canonical rotation (lexicographically smallest key first), sorted.
// Each reported lock-order cycle finding corresponds to one of these.
func Cycles(w *lockfacts.World) []Cycle {
	adj := adjacency(w)
	seen := map[string]int{}
	var out []Cycle
	add := func(keys []string, site token.Pos) {
		keys = canonical(keys)
		id := strings.Join(keys, "\x00")
		if idx, dup := seen[id]; dup {
			out[idx].Sites = append(out[idx].Sites, site)
			return
		}
		seen[id] = len(out)
		c := Cycle{Keys: keys, Sites: []token.Pos{site}}
		for _, k := range keys {
			short := k
			if cl := w.Classes[k]; cl != nil {
				short = cl.Short
			}
			c.Shorts = append(c.Shorts, short)
		}
		out = append(out, c)
	}
	for i := range w.Edges {
		e := &w.Edges[i]
		if e.From.Key == e.To.Key {
			add([]string{e.From.Key}, e.SitePos)
		} else if back := path(adj, e.To.Key, e.From.Key); back != nil {
			// back = [To ... From]; the cycle is [From, To, ...] without the
			// duplicated From terminus.
			add(append([]string{e.From.Key}, back[:len(back)-1]...), e.SitePos)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].Keys, "\x00") < strings.Join(out[j].Keys, "\x00")
	})
	return out
}

// canonical rotates keys so the lexicographically smallest element is
// first, making rotations of one cycle compare equal.
func canonical(keys []string) []string {
	best := 0
	for i := range keys {
		if keys[i] < keys[best] {
			best = i
		}
	}
	out := make([]string, 0, len(keys))
	out = append(out, keys[best:]...)
	out = append(out, keys[:best]...)
	return out
}
