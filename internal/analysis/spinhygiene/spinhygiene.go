// Package spinhygiene checks spin-loop discipline on the native substrate
// (the Go-runtime hazard DESIGN.md names: GOMAXPROCS-pinned busy loops
// starve the scheduler, and the paper's locks all spin):
//
//  1. A for-loop whose condition polls shared state — an ordered Proc Load
//     or a sync/atomic load — must back off in its body: Proc.Spin,
//     ExpBackoff.Pause, runtime.Gosched, or time.Sleep. Natively, a poll
//     loop without a yield can deadlock workloads where waiters outnumber
//     GOMAXPROCS.
//  2. The dual hazard (documented on lockapi.Proc.Spin): an optimistic
//     CAS-retry loop — a CAS in the condition whose expected value is a
//     freshly loaded variable, not a constant — must NOT call Spin. There a
//     failed CAS proves the location just changed, and backends that park
//     Spin until the watched line changes (memsim, mcheck) would block on a
//     change that may never come. Lock-style waits (Swap, or CAS against a
//     constant like 0) are the opposite: a failure means "still held", so
//     they are poll loops under rule 1 and MUST back off.
//
// Deliberate exceptions carry //lint:spin <verb> <reason> waivers.
package spinhygiene

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/clof-go/clof/internal/analysis"
)

// Analyzer is the spinhygiene analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "spinhygiene",
	Tag:  "spin",
	Doc:  "atomic poll loops must back off (Spin/Pause/Gosched); CAS-retry loops must not call Spin",
	Run:  run,
}

func run(pass *analysis.Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Cond == nil {
				return true
			}
			polls, retries := condPolls(info, loop.Cond)
			if !polls && !retries {
				return true
			}
			relief := false
			ast.Inspect(loop.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok && analysis.IsSpinRelief(info, call) {
					relief = true
				}
				return true
			})
			switch {
			case retries && relief:
				pass.Reportf(loop.Pos(),
					"CAS-retry loop calls Spin/Pause: a failed RMW proves the location changed, and await-collapsing backends would block (see lockapi.Proc.Spin)")
			case polls && !retries && !relief:
				pass.Reportf(loop.Pos(),
					"busy-wait loop polls an atomic without backing off: call Proc.Spin, ExpBackoff.Pause, or runtime.Gosched in the body (or waive with //lint:spin <verb> <reason>)")
			}
			return true
		})
	}
}

// condPolls classifies the atomic accesses in a loop condition:
// polls = waiting for another thread (loads, waiting-style RMWs);
// retries = an optimistic CAS against a freshly observed value.
func condPolls(info *types.Info, cond ast.Expr) (polls, retries bool) {
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, ok := analysis.ClassifyProcOp(info, call); ok {
			switch op.Name {
			case "Load", "Swap", "Add":
				polls = true
			case "CAS":
				// Proc.CAS(c, old, new, o): a constant old (0, a handle
				// literal) is a lock-style wait; a variable old is an
				// optimistic retry.
				if len(op.Call.Args) >= 2 && isConst(info, op.Call.Args[1]) {
					polls = true
				} else {
					retries = true
				}
			}
			return true
		}
		// sync/atomic: package functions (LoadUint64, CompareAndSwap...)
		// and methods on atomic.Uint64 et al.
		if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
			name := fn.Name()
			switch {
			case strings.HasPrefix(name, "Load"), strings.HasPrefix(name, "Swap"), strings.HasPrefix(name, "Add"):
				polls = true
			case strings.HasPrefix(name, "CompareAndSwap"):
				if args := call.Args; len(args) >= 2 && isConst(info, args[len(args)-2]) {
					polls = true
				} else {
					retries = true
				}
			}
		}
		return true
	})
	return polls, retries
}

func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}
