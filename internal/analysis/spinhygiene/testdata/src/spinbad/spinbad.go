// Package spinbad is the spinhygiene bad corpus: scheduler-hostile busy
// loops and an optimistic CAS-retry loop that wrongly backs off.
package spinbad

import (
	"sync/atomic"

	"github.com/clof-go/clof/internal/lockapi"
)

// busyWait never yields: natively it pins its P and can deadlock workloads
// where waiters outnumber GOMAXPROCS.
func busyWait(p lockapi.Proc, c *lockapi.Cell) {
	for p.Load(c, lockapi.Acquire) == 1 { // want "busy-wait loop polls an atomic"
	}
}

// busyWaitAtomic is the same hazard via sync/atomic directly.
func busyWaitAtomic(v *atomic.Uint64) {
	for v.Load() == 0 { // want "busy-wait loop polls an atomic"
	}
}

// optimisticRetrySpins: the CAS expected value is freshly loaded, so a
// failure proves the cell just changed — Spin here makes await-collapsing
// backends block on a change that may never come.
func optimisticRetrySpins(p lockapi.Proc, c *lockapi.Cell) {
	v := p.Load(c, lockapi.Relaxed)
	for !p.CAS(c, v, v+1, lockapi.AcqRel) { // want "CAS-retry loop calls Spin"
		p.Spin()
		v = p.Load(c, lockapi.Relaxed)
	}
}
