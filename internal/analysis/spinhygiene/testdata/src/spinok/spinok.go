// Package spinok is the spinhygiene clean corpus: every waiting shape this
// repository uses, correctly disciplined.
package spinok

import (
	"runtime"
	"sync/atomic"

	"github.com/clof-go/clof/internal/lockapi"
)

// pollWithSpin is the canonical local-spin wait.
func pollWithSpin(p lockapi.Proc, c *lockapi.Cell) {
	for p.Load(c, lockapi.Acquire) == 1 {
		p.Spin()
	}
}

// pollWithBackoff waits through the shared backoff helper.
func pollWithBackoff(p lockapi.Proc, c *lockapi.Cell) {
	bo := lockapi.ExpBackoff{}
	for p.Load(c, lockapi.Relaxed) == 1 {
		bo.Pause(p)
	}
}

// tasWait: a failed Swap means "still held" — waiting, so Spin is correct.
func tasWait(p lockapi.Proc, c *lockapi.Cell) {
	for p.Swap(c, 1, lockapi.Acquire) == 1 {
		p.Spin()
	}
}

// casWait: CAS against the constant 0 is a lock-style wait, not an
// optimistic retry; it must (and does) back off.
func casWait(p lockapi.Proc, c *lockapi.Cell) {
	for !p.CAS(c, 0, 1, lockapi.Acquire) {
		p.Spin()
	}
}

// optimisticRetry: no Spin in a fresh-value CAS loop — correct.
func optimisticRetry(p lockapi.Proc, c *lockapi.Cell) {
	v := p.Load(c, lockapi.Relaxed)
	for !p.CAS(c, v, v+1, lockapi.AcqRel) {
		v = p.Load(c, lockapi.Relaxed)
	}
}

// goschedPoll yields to the Go scheduler directly.
func goschedPoll(v *atomic.Uint64) {
	for v.Load() == 0 {
		runtime.Gosched()
	}
}

// waivedHotPoll documents a deliberate hot loop (e.g. a two-iteration
// bounded wait) with the required waiver.
func waivedHotPoll(p lockapi.Proc, c *lockapi.Cell) {
	//lint:spin busy-ok bounded two-iteration wait measured in bench
	for p.Load(c, lockapi.Acquire) == 1 {
	}
}
