// Package occok is the occdiscipline clean corpus: the repository's real
// optimistic-read shapes, all of which certify their snapshots.
package occok

import "github.com/clof-go/clof/internal/lockapi"

// retryLoop is the canonical consumer shape (store.KVSession.Get): attempt,
// validate, return only on a passing validation, fall back after the budget.
func retryLoop(p lockapi.Proc, sq lockapi.SeqReader, c *lockapi.Cell) uint64 {
	for a := 0; a < 4; a++ {
		s := sq.ReadSeq(p)
		v := p.Load(c, lockapi.Relaxed)
		if sq.ReadValidate(p, s) {
			return v
		}
	}
	return fallback(p, c)
}

// collectClosure is store.scanShard's shape: a collection closure with its
// own `return` runs lexically between ReadSeq and ReadValidate, but closure
// scopes are separate — that return does not escape the optimistic attempt.
func collectClosure(p lockapi.Proc, sq lockapi.SeqReader, c *lockapi.Cell, scan func(func(uint64) bool)) []uint64 {
	var buf []uint64
	collect := func(v uint64) bool {
		buf = append(buf, v)
		return true
	}
	s := sq.ReadSeq(p)
	scan(collect)
	if sq.ReadValidate(p, s) {
		return buf
	}
	return nil
}

// validatingReturn delivers the verdict in the return expression itself:
// the return IS the validation, not an escape.
func validatingReturn(p lockapi.Proc, sq lockapi.SeqReader, c *lockapi.Cell) (uint64, bool) {
	s := sq.ReadSeq(p)
	v := p.Load(c, lockapi.Relaxed)
	return v, sq.ReadValidate(p, s)
}

// forwarder is the delegation shape (cr.RestrictedSeq.ReadSeq): a method
// named ReadSeq whose body is the forwarded call, exempt by name.
type forwarder struct{ sq lockapi.SeqReader }

func (f forwarder) ReadSeq(p lockapi.Proc) uint64 { return f.sq.ReadSeq(p) }

func (f forwarder) ReadValidate(p lockapi.Proc, s uint64) bool { return f.sq.ReadValidate(p, s) }

func fallback(p lockapi.Proc, c *lockapi.Cell) uint64 { return p.Load(c, lockapi.Acquire) }
