// Package occbad is the occdiscipline bad corpus: optimistic snapshots that
// escape their function without the certifying ReadValidate.
package occbad

import "github.com/clof-go/clof/internal/lockapi"

// neverValidated takes a snapshot and publishes the provisional value with
// no ReadValidate at all — the classic seqlock reader bug.
func neverValidated(p lockapi.Proc, sq lockapi.SeqReader, c *lockapi.Cell) uint64 {
	_ = sq.ReadSeq(p) // want "optimistic read is never validated"
	return p.Load(c, lockapi.Relaxed)
}

// escapesBeforeValidate validates on the slow path but returns the fast-path
// value while the snapshot is still provisional.
func escapesBeforeValidate(p lockapi.Proc, sq lockapi.SeqReader, c *lockapi.Cell) uint64 {
	s := sq.ReadSeq(p) // want "optimistic read may escape: return before the snapshot's ReadValidate"
	v := p.Load(c, lockapi.Relaxed)
	if v == 0 {
		return 0 // torn v==0 observations escape here
	}
	if sq.ReadValidate(p, s) {
		return v
	}
	return 0
}

// closureLeak: the ReadSeq lives in a closure, so its validation must too —
// the enclosing function's ReadValidate does not certify it.
func closureLeak(p lockapi.Proc, sq lockapi.SeqReader, c *lockapi.Cell) uint64 {
	read := func() uint64 {
		_ = sq.ReadSeq(p) // want "optimistic read is never validated"
		return p.Load(c, lockapi.Relaxed)
	}
	v := read()
	sq.ReadValidate(p, 0)
	return v
}
