package occdiscipline

import (
	"testing"

	"github.com/clof-go/clof/internal/analysis/atest"
)

func TestFlagged(t *testing.T) {
	atest.Run(t, Analyzer, "occbad")
}

func TestClean(t *testing.T) {
	atest.RunExpectClean(t, Analyzer, "occok")
}
