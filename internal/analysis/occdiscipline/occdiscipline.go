// Package occdiscipline checks the optimistic-read (seqlock/OCC) protocol
// statically: every lockapi.SeqReader.ReadSeq snapshot must be validated
// with ReadValidate before it can escape the taking function.
//
// The contract (lockapi/seq.go): any value read between ReadSeq and a
// passing ReadValidate is provisional — a writer may have overlapped, so the
// caller must treat it as garbage until validation certifies it. Two shapes
// violate that:
//
//  1. a ReadSeq with no subsequent ReadValidate in the same function — the
//     snapshot is never certified at all;
//  2. a return statement lexically between a ReadSeq and its first
//     ReadValidate — the provisional (possibly torn) values can leave the
//     function before certification.
//
// The check is lexical and per-function. Nested function literals are
// analyzed as their own scopes: a `return` inside a collection closure
// passed to an unlocked scan (store.scanShard's shape) is not an escape of
// the enclosing optimistic attempt, and a ReadSeq inside a closure must
// find its ReadValidate there. Methods themselves named ReadSeq are exempt
// — they are the forwarders (cr.RestrictedSeq, seqlock.RW) whose whole body
// is the delegation. A `return` whose expression contains the ReadValidate
// call ("return sq.ReadValidate(p, s) && ok") counts as the validation, not
// as an escape.
//
// Deliberate exceptions carry //lint:occ <verb> <reason> waivers (e.g. a
// version probe that samples ReadSeq purely to observe the counter, with no
// data reads to certify).
package occdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/clof-go/clof/internal/analysis"
)

// Analyzer is the occdiscipline analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "occdiscipline",
	Tag:  "occ",
	Doc:  "ReadSeq snapshots must reach a ReadValidate before any return (optimistic reads must not escape unvalidated)",
	Run:  run,
}

func run(pass *analysis.Pass) {
	for _, f := range pass.Pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				// A method named ReadSeq is a SeqReader forwarder: its body
				// IS the delegation, so the no-validate rule does not apply.
				if fn.Body != nil && fn.Name.Name != "ReadSeq" {
					checkBody(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkBody(pass, fn.Body)
			}
			return true
		})
	}
}

// eventKind tags the lexical events the discipline is defined over.
type eventKind int

const (
	evReadSeq eventKind = iota
	evValidate
	evReturn
)

type event struct {
	kind eventKind
	pos  token.Pos
}

// checkBody applies the two rules to one function body, treating nested
// function literals as separate scopes (they are visited by run itself).
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var events []event
	var collect func(n ast.Node) bool
	collect = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			// A return that itself computes the validation delivers the
			// certified verdict — record it as the validate, not an escape.
			if returnsValidation(pass.Pkg.Info, n) {
				events = append(events, event{evValidate, n.Pos()})
			} else {
				events = append(events, event{evReturn, n.Pos()})
			}
		case *ast.CallExpr:
			switch classifySeqCall(pass.Pkg.Info, n) {
			case "ReadSeq":
				events = append(events, event{evReadSeq, n.Pos()})
			case "ReadValidate":
				events = append(events, event{evValidate, n.Pos()})
			}
		}
		return true
	}
	ast.Inspect(body, collect)

	// events is in lexical order (Inspect is a preorder walk and a node's
	// children follow its position). For each ReadSeq, find the first
	// subsequent ReadValidate and any return in between.
	for i, e := range events {
		if e.kind != evReadSeq {
			continue
		}
		validated, escaped := false, false
		for _, later := range events[i+1:] {
			if later.kind == evValidate {
				validated = true
				break
			}
			if later.kind == evReturn {
				escaped = true
			}
		}
		switch {
		case !validated:
			pass.Reportf(e.pos,
				"optimistic read is never validated: no ReadValidate follows this ReadSeq in the function — the snapshot escapes uncertified (see lockapi.SeqReader)")
		case escaped:
			pass.Reportf(e.pos,
				"optimistic read may escape: return before the snapshot's ReadValidate — values read since ReadSeq are uncertified (see lockapi.SeqReader)")
		}
	}
}

// returnsValidation reports whether a ReadValidate call appears in ret's
// result expressions (outside nested function literals).
func returnsValidation(info *types.Info, ret *ast.ReturnStmt) bool {
	found := false
	for _, r := range ret.Results {
		ast.Inspect(r, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok && classifySeqCall(info, call) == "ReadValidate" {
				found = true
			}
			return !found
		})
	}
	return found
}

// classifySeqCall reports whether call is a SeqReader protocol operation:
// a method named ReadSeq(Proc) or ReadValidate(Proc, uint64) whose first
// parameter is lockapi.Proc (matching interface and concrete forwarders
// alike, the way ClassifyProcOp keys on lockapi.Order). Returns the method
// name, or "".
func classifySeqCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	name := fn.Name()
	if name != "ReadSeq" && name != "ReadValidate" {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return ""
	}
	first, ok := sig.Params().At(0).Type().(*types.Named)
	if !ok || first.Obj().Name() != "Proc" || !analysis.IsLockapiPackage(first.Obj().Pkg()) {
		return ""
	}
	return name
}
