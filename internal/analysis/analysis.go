// Package analysis is the core of clof-lint, the repository's static
// lock-discipline checker suite. It plays the role GenMC/VSync's static
// barrier checking plays in the paper's toolchain (§3.3/§4.2): where
// internal/mcheck verifies ordering discipline *dynamically* on small
// configurations, the analyzers here check it *statically* across all code,
// so a plain read of an atomically-written field, a Relaxed store on an
// unlock path, a lock struct copied by value, or a scheduler-hostile busy
// loop is rejected at lint time rather than surfacing (maybe) in a 2–4
// thread model check.
//
// The framework is deliberately shaped like golang.org/x/tools/go/analysis
// — an Analyzer with a Run(*Pass) hook reporting position-tagged
// diagnostics — but is built on the standard library alone (see
// internal/analysis/loader for why).
//
// # Waivers
//
// Every analyzer supports per-site waivers, because lock code has
// *intentional* relaxations (the Relaxed spin polls whose ordering is
// provided by a later CAS, the deliberately broken fixture locks that
// mcheck's negative tests depend on). A waiver is a comment on the flagged
// line or the line directly above it:
//
//	//lint:<tag> <verb> <reason>
//
// e.g. //lint:order relaxed-ok poll only; the CAS below orders entry
//
// The reason is mandatory: a waiver without one is itself reported. Tags
// are per-analyzer (order, atomic, copylocks, spin).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"github.com/clof-go/clof/internal/analysis/loader"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name labels diagnostics, e.g. "orderpolicy".
	Name string
	// Tag is the waiver tag accepted in //lint:<tag> comments.
	Tag string
	// Doc is a one-paragraph description.
	Doc string
	// Run inspects one package and reports findings on the pass.
	Run func(*Pass)
}

// Pass is one (analyzer, package) execution.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *loader.Package
	// Prog is the whole-program context shared by every pass of one Run:
	// all packages named in the run plus a memoized fact store, so
	// interprocedural analyzers (lockorder, heldescape) compute their
	// cross-package summaries once, not once per (analyzer, package).
	Prog  *Program
	diags []Diagnostic
}

// Program is the whole-program side of a Run: the packages under analysis
// and a store for facts computed over them (and their module-owned
// dependencies, reachable through loader.Package.Dep). Runs are
// single-threaded, so the store needs no locking.
type Program struct {
	// Pkgs are the packages named in the run, sorted by import path.
	Pkgs  []*loader.Package
	facts map[string]any
}

// NewProgram wraps pkgs as a whole-program context. The analysis driver
// builds one per Run; tools that need program-level facts outside a Run
// (the clof-lint -litmus bridge) build their own.
func NewProgram(pkgs []*loader.Package) *Program {
	return &Program{Pkgs: pkgs, facts: map[string]any{}}
}

// Fact returns the fact stored under key, computing and memoizing it with
// build on first use. Analyzers use it to share one whole-program summary
// (e.g. the lockfacts world) across every package pass of a run.
func (p *Program) Fact(key string, build func() any) any {
	if v, ok := p.facts[key]; ok {
		return v
	}
	v := build()
	p.facts[key] = v
	return v
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the conventional file:line:col style.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// waiver is one parsed //lint: comment.
type waiver struct {
	tag    string
	verb   string
	reason string
}

// waiversByLine parses all //lint: comments in f, keyed by line number.
// Malformed waivers (no verb, or no reason) are reported via report.
func waiversByLine(fset *token.FileSet, f *ast.File, report func(pos token.Pos, msg string)) map[int][]waiver {
	out := map[int][]waiver{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			body, ok := strings.CutPrefix(c.Text, "//lint:")
			if !ok {
				continue
			}
			fields := strings.Fields(body)
			if len(fields) == 2 {
				// A bare waiver — tag and verb but no reason — is the one
				// shape worth its own message: it parses as intentional but
				// records no justification, which defeats the audit trail the
				// waiver mechanism exists for. Report it and do NOT let it
				// filter findings.
				report(c.Pos(), fmt.Sprintf("bare waiver %q: a waiver must state its reason (//lint:<tag> <verb> <reason>)", c.Text))
				continue
			}
			if len(fields) < 2 {
				report(c.Pos(), fmt.Sprintf("malformed waiver %q: want //lint:<tag> <verb> <reason>", c.Text))
				continue
			}
			line := fset.Position(c.Pos()).Line
			out[line] = append(out[line], waiver{
				tag:    fields[0],
				verb:   fields[1],
				reason: strings.Join(fields[2:], " "),
			})
		}
	}
	return out
}

// Run executes analyzers over pkgs, filters findings through waivers, and
// returns the active diagnostics sorted by position. Malformed waiver
// comments are reported under the pseudo-analyzer "waiver".
func Run(pkgs []*loader.Package, analyzers []*Analyzer) []Diagnostic {
	return run(pkgs, analyzers, true)
}

// Audit is Run with waiver filtering disabled: waived findings are
// reported too. Used to enumerate every waived site (and by the
// lint-vs-mcheck cross-check, which asserts the deliberately broken
// fixture locks would be flagged were they not waived).
func Audit(pkgs []*loader.Package, analyzers []*Analyzer) []Diagnostic {
	return run(pkgs, analyzers, false)
}

func run(pkgs []*loader.Package, analyzers []*Analyzer, applyWaivers bool) []Diagnostic {
	var out []Diagnostic
	prog := NewProgram(pkgs)
	for _, pkg := range pkgs {
		// Waiver tables for this package, one per file.
		fset := pkg.Fset
		waivers := map[string]map[int][]waiver{}
		for _, f := range pkg.Syntax {
			name := fset.Position(f.Pos()).Filename
			waivers[name] = waiversByLine(fset, f, func(pos token.Pos, msg string) {
				out = append(out, Diagnostic{Pos: fset.Position(pos), Analyzer: "waiver", Message: msg})
			})
		}
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Fset: fset, Pkg: pkg, Prog: prog}
			a.Run(pass)
			for _, d := range pass.diags {
				if applyWaivers && waived(waivers[d.Pos.Filename], a.Tag, d.Pos.Line) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// waived reports whether a waiver for tag covers line (same line or the
// line directly above).
func waived(byLine map[int][]waiver, tag string, line int) bool {
	for _, l := range []int{line, line - 1} {
		for _, w := range byLine[l] {
			if w.tag == tag {
				return true
			}
		}
	}
	return false
}
