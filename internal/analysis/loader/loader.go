// Package loader loads and type-checks Go packages from source using only
// the standard library: go/parser for syntax, go/types for checking, and
// go/importer's source importer for the standard library.
//
// The go tool's own loader (golang.org/x/tools/go/packages) is off-limits —
// this repository takes no dependencies outside the standard library — and
// the stock source importer is module-unaware, so it cannot resolve this
// module's own import paths. The Loader fills exactly that gap: it is given
// an explicit set of (module path, directory) roots, resolves any import
// path under one of them by parsing and checking that directory (memoized,
// recursive), and delegates every other path to the stdlib source importer.
//
// Test files (_test.go) are never loaded: analyzers in this repository
// check production lock code, and fixtures live in testdata directories as
// ordinary non-test files (which the go tool ignores, so deliberately
// defective fixtures cannot break `go build ./...`).
package loader

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Module maps a module import path prefix to its root directory.
type Module struct {
	Path string // e.g. "github.com/clof-go/clof"
	Dir  string // absolute or cwd-relative root directory
}

// Package is one loaded, type-checked package. Fset is the Loader's shared
// FileSet; all positions in Syntax resolve against it.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Syntax  []*ast.File
	Types   *types.Package
	Info    *types.Info
	ld      *Loader
}

// Dep returns the loaded package for an import path this package's loader
// has already resolved (any module-owned dependency of a loaded package is).
// Standard-library paths are delegated to the stdlib importer and therefore
// have no source Package here: Dep reports false for them. This is the hook
// whole-program analyses use to reach the syntax and type info of
// dependencies that were pulled in transitively rather than named in the
// Load patterns.
func (p *Package) Dep(path string) (*Package, bool) {
	if p.ld == nil {
		return nil, false
	}
	d, ok := p.ld.pkgs[path]
	return d, ok
}

// Loader resolves and memoizes packages across a fixed set of modules.
// It implements types.Importer for its own type-checking passes.
type Loader struct {
	Fset    *token.FileSet
	modules []Module
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// New returns a Loader over the given modules. The first module is the
// primary one: relative patterns passed to Load resolve against its root.
func New(modules ...Module) *Loader {
	fset := token.NewFileSet()
	ms := make([]Module, len(modules))
	for i, m := range modules {
		abs, err := filepath.Abs(m.Dir)
		if err == nil {
			m.Dir = abs
		}
		ms[i] = m
	}
	return &Loader{
		Fset:    fset,
		modules: ms,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
}

// MainModulePath reads the module path from dir/go.mod.
func MainModulePath(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module line in %s/go.mod", dir)
}

// moduleFor returns the module owning path (longest prefix wins).
func (l *Loader) moduleFor(path string) (Module, bool) {
	var best Module
	found := false
	for _, m := range l.modules {
		if path == m.Path || strings.HasPrefix(path, m.Path+"/") {
			if !found || len(m.Path) > len(best.Path) {
				best, found = m, true
			}
		}
	}
	return best, found
}

// Import implements types.Importer: module-owned paths are loaded from
// source by this Loader; everything else (the standard library) goes to the
// stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if m, ok := l.moduleFor(path); ok {
		pkg, err := l.loadPath(m, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *Loader) loadPath(m Module, pkgPath string) (*Package, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(pkgPath, m.Path), "/")
	return l.loadDir(pkgPath, filepath.Join(m.Dir, filepath.FromSlash(rel)))
}

// loadDir parses and type-checks the package in dir under import path
// pkgPath, memoized by pkgPath.
func (l *Loader) loadDir(pkgPath, dir string) (*Package, error) {
	if p, ok := l.pkgs[pkgPath]; ok {
		return p, nil
	}
	if l.loading[pkgPath] {
		return nil, fmt.Errorf("import cycle through %s", pkgPath)
	}
	l.loading[pkgPath] = true
	defer delete(l.loading, pkgPath)

	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(pkgPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", pkgPath, err)
	}
	p := &Package{PkgPath: pkgPath, Dir: dir, Fset: l.Fset, Syntax: files, Types: tpkg, Info: info, ld: l}
	l.pkgs[pkgPath] = p
	return p, nil
}

// goFilesIn lists the buildable (non-test, non-ignored) Go files in dir,
// sorted for determinism.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Load resolves patterns against the primary module and returns the loaded
// packages sorted by import path. Supported pattern forms:
//
//	./...        every package under the primary module root
//	./sub/...    every package under that subtree
//	./sub/dir    the single package in that directory
//	import/path  a single package by import path (any registered module)
//
// Directories named testdata or vendor, and directories whose name starts
// with "." or "_", are skipped during ... expansion, matching the go tool.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(l.modules) == 0 {
		return nil, fmt.Errorf("loader has no modules")
	}
	primary := l.modules[0]
	seen := map[string]bool{}
	var out []*Package
	add := func(p *Package) {
		if !seen[p.PkgPath] {
			seen[p.PkgPath] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "..." || pat == "./...":
			pkgs, err := l.loadTree(primary, primary.Dir)
			if err != nil {
				return nil, err
			}
			for _, p := range pkgs {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			root := strings.TrimSuffix(pat, "/...")
			dir := filepath.Join(primary.Dir, filepath.FromSlash(strings.TrimPrefix(root, "./")))
			pkgs, err := l.loadTree(primary, dir)
			if err != nil {
				return nil, err
			}
			for _, p := range pkgs {
				add(p)
			}
		case strings.HasPrefix(pat, "./") || pat == ".":
			dir := filepath.Join(primary.Dir, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
			p, err := l.loadDir(importPathFor(primary, dir), dir)
			if err != nil {
				return nil, err
			}
			add(p)
		default:
			m, ok := l.moduleFor(pat)
			if !ok {
				return nil, fmt.Errorf("pattern %q is outside the registered modules", pat)
			}
			p, err := l.loadPath(m, pat)
			if err != nil {
				return nil, err
			}
			add(p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

func importPathFor(m Module, dir string) string {
	rel, err := filepath.Rel(m.Dir, dir)
	if err != nil || rel == "." {
		return m.Path
	}
	return m.Path + "/" + filepath.ToSlash(rel)
}

// loadTree loads every package in the subtree rooted at dir.
func (l *Loader) loadTree(m Module, dir string) ([]*Package, error) {
	var out []*Package
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := filepath.Base(path)
		if path != dir && (base == "testdata" || base == "vendor" ||
			strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
			return filepath.SkipDir
		}
		names, err := goFilesIn(path)
		if err != nil {
			return err
		}
		if len(names) == 0 {
			return nil
		}
		p, err := l.loadDir(importPathFor(m, path), path)
		if err != nil {
			return err
		}
		out = append(out, p)
		return nil
	})
	return out, err
}
