package loader

import (
	"path/filepath"
	"testing"
)

// repoRoot walks up from the working directory to the go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	for d := dir; ; {
		if _, err := MainModulePath(d); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			t.Fatalf("no go.mod above %s", dir)
		}
		d = parent
	}
}

func TestMainModulePath(t *testing.T) {
	root := repoRoot(t)
	got, err := MainModulePath(root)
	if err != nil {
		t.Fatal(err)
	}
	if got != "github.com/clof-go/clof" {
		t.Fatalf("MainModulePath(%s) = %q, want the repository module path", root, got)
	}
	if _, err := MainModulePath(t.TempDir()); err == nil {
		t.Fatal("MainModulePath on a directory without go.mod: want error")
	}
}

func TestLoadPatterns(t *testing.T) {
	root := repoRoot(t)
	modPath, err := MainModulePath(root)
	if err != nil {
		t.Fatal(err)
	}
	ld := New(Module{Path: modPath, Dir: root})

	// A single directory pattern loads exactly that package, type-checked.
	pkgs, err := ld.Load("./internal/lockapi")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].PkgPath != modPath+"/internal/lockapi" {
		t.Fatalf("Load(./internal/lockapi) = %+v, want the lockapi package alone", pkgs)
	}
	if pkgs[0].Types == nil || pkgs[0].Types.Scope().Lookup("Cell") == nil {
		t.Fatal("lockapi loaded without a type-checked Cell")
	}

	// A tree pattern loads subpackages but never testdata.
	pkgs, err = ld.Load("./internal/analysis/...")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range pkgs {
		seen[p.PkgPath] = true
		if filepath.Base(filepath.Dir(p.Dir)) == "testdata" || filepath.Base(p.Dir) == "testdata" {
			t.Errorf("tree walk descended into testdata: %s", p.Dir)
		}
	}
	for _, want := range []string{
		modPath + "/internal/analysis",
		modPath + "/internal/analysis/loader",
		modPath + "/internal/analysis/orderpolicy",
	} {
		if !seen[want] {
			t.Errorf("Load(./internal/analysis/...) missing %s; got %v", want, pkgs)
		}
	}
}
