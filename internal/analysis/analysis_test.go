package analysis_test

import (
	"go/ast"
	"strings"
	"testing"

	"github.com/clof-go/clof/internal/analysis"
	"github.com/clof-go/clof/internal/analysis/atest"
)

// dummy flags every function whose name starts with "Flagged" — a minimal
// analyzer for exercising the framework's waiver filtering.
var dummy = &analysis.Analyzer{
	Name: "dummy",
	Tag:  "dummy",
	Doc:  "flags functions named Flagged* (framework test only)",
	Run: func(pass *analysis.Pass) {
		for _, f := range pass.Pkg.Syntax {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "Flagged") {
					pass.Reportf(fd.Name.Pos(), "function %s is flagged", fd.Name.Name)
				}
			}
		}
	},
}

// TestWaiverReasonEnforcement is the regression test for the waiver parser:
// a reasoned waiver filters its finding, a bare waiver (no reason) filters
// nothing and is itself reported, and a verb-less comment is malformed.
func TestWaiverReasonEnforcement(t *testing.T) {
	pkgs := atest.Load(t, "waiverfix")
	diags := analysis.Run(pkgs, []*analysis.Analyzer{dummy})

	var got []string
	for _, d := range diags {
		got = append(got, d.String())
	}
	joined := strings.Join(got, "\n")

	if strings.Contains(joined, "FlaggedProperly") {
		t.Errorf("reasoned waiver did not filter its finding:\n%s", joined)
	}
	if !strings.Contains(joined, "FlaggedBare") {
		t.Errorf("bare waiver (missing reason) filtered a finding it must not:\n%s", joined)
	}
	if !strings.Contains(joined, "bare waiver") {
		t.Errorf("bare waiver was not itself reported:\n%s", joined)
	}
	if !strings.Contains(joined, "FlaggedMalformed") {
		t.Errorf("malformed waiver filtered a finding it must not:\n%s", joined)
	}
	if !strings.Contains(joined, "malformed waiver") {
		t.Errorf("verb-less waiver was not reported as malformed:\n%s", joined)
	}

	// Audit mode reports the properly waived finding too.
	audit := atest.Format(analysis.Audit(pkgs, []*analysis.Analyzer{dummy}))
	if !strings.Contains(audit, "FlaggedProperly") {
		t.Errorf("audit mode hid a waived finding:\n%s", audit)
	}
}

// TestProgramFactMemoizes pins the whole-program fact store: one build per
// key per Run, shared across passes.
func TestProgramFactMemoizes(t *testing.T) {
	prog := analysis.NewProgram(nil)
	builds := 0
	build := func() any { builds++; return builds }
	if v := prog.Fact("k", build); v.(int) != 1 {
		t.Fatalf("first Fact = %v, want 1", v)
	}
	if v := prog.Fact("k", build); v.(int) != 1 {
		t.Fatalf("second Fact = %v, want memoized 1", v)
	}
	if builds != 1 {
		t.Fatalf("build ran %d times, want 1", builds)
	}
	if v := prog.Fact("other", build); v.(int) != 2 {
		t.Fatalf("distinct key Fact = %v, want 2", v)
	}
}
