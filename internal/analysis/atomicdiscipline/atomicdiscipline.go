// Package atomicdiscipline enforces all-or-nothing atomic access per field:
// a struct field that is accessed atomically anywhere must be accessed
// atomically everywhere. A mixed plain read of an atomically-written field
// is a data race the Go compiler accepts silently and the race detector
// only catches if a test happens to interleave it — the exact bug class the
// weak-memory lock papers document (a plain read can be torn, hoisted, or
// served stale forever).
//
// Two access families are tracked:
//
//   - sync/atomic package functions: a field whose address is passed to
//     atomic.LoadUint64/StoreInt32/AddUint64/... is atomic; every other
//     syntactic use of that field is flagged. (Fields of type
//     atomic.Uint64 et al. are safe by construction — the value is
//     unexported behind methods — and need no analysis.)
//
//   - lockapi ordered operations: a lockapi.Cell field accessed through a
//     Proc (Load/Store/CAS/Add/Swap) is shared state; calling its
//     non-atomic Cell.Init outside single-threaded setup (functions named
//     init/New*/Init*/Reset*/Setup*, or NewCtx — the documented
//     setup-only surfaces) is flagged.
//
// Plain writes inside those setup functions are exempt for the sync/atomic
// family too: constructors initialize before publication. Intentional
// exceptions carry //lint:atomic <verb> <reason> waivers.
package atomicdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/clof-go/clof/internal/analysis"
)

// Analyzer is the atomicdiscipline analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomicdiscipline",
	Tag:  "atomic",
	Doc:  "fields accessed via sync/atomic or Proc ordered ops must be accessed that way everywhere",
	Run:  run,
}

// isSetupFunc reports whether accesses in fn are single-threaded setup.
func isSetupFunc(name string) bool {
	return name == "init" || name == "NewCtx" ||
		strings.HasPrefix(name, "New") || strings.HasPrefix(name, "Init") ||
		strings.HasPrefix(name, "Reset") || strings.HasPrefix(name, "Setup") ||
		strings.HasPrefix(name, "new") || strings.HasPrefix(name, "setup")
}

type access struct {
	pos  token.Pos
	desc string // enclosing function name ("" at package scope)
}

func run(pass *analysis.Pass) {
	info := pass.Pkg.Info

	// fieldOf resolves sel to the field variable it selects, if any.
	fieldOf := func(sel *ast.SelectorExpr) *types.Var {
		s, ok := info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return nil
		}
		return s.Obj().(*types.Var)
	}

	atomicUses := map[*types.Var][]access{} // via sync/atomic functions
	plainUses := map[*types.Var][]access{}  // every other syntactic use
	procUses := map[*types.Var]token.Pos{}  // Cell fields used via Proc ops
	initUses := map[*types.Var][]access{}   // Cell.Init outside setup

	for _, f := range pass.Pkg.Syntax {
		for _, d := range f.Decls {
			fd, isFunc := d.(*ast.FuncDecl)
			fnName := ""
			var body ast.Node = d
			if isFunc {
				if fd.Body == nil {
					continue
				}
				fnName = fd.Name.Name
				body = fd.Body
			}
			// Selector expressions consumed by an atomic/Proc call (the
			// &x.f argument) so the plain-use walk can skip them.
			consumed := map[*ast.SelectorExpr]bool{}
			ast.Inspect(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" && len(call.Args) > 0 {
					if sel := addrOperand(call.Args[0]); sel != nil {
						if fv := fieldOf(sel); fv != nil && fv.Pkg() == pass.Pkg.Types {
							consumed[sel] = true
							atomicUses[fv] = append(atomicUses[fv], access{call.Pos(), fnName})
						}
					}
				}
				if op, ok := analysis.ClassifyProcOp(info, call); ok && op.Name != "Fence" && len(call.Args) > 0 {
					if sel := addrOperand(call.Args[0]); sel != nil {
						if fv := fieldOf(sel); fv != nil && fv.Pkg() == pass.Pkg.Types {
							consumed[sel] = true
							procUses[fv] = call.Pos()
						}
					}
				}
				// Cell.Init / Cell.Raw on a field outside setup.
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					if m, ok := info.Uses[sel.Sel].(*types.Func); ok &&
						(m.Name() == "Init" || m.Name() == "Raw") && isCellMethod(m) {
						if inner, ok := sel.X.(*ast.SelectorExpr); ok {
							if fv := fieldOf(inner); fv != nil && fv.Pkg() == pass.Pkg.Types {
								consumed[inner] = true
								if !isSetupFunc(fnName) {
									initUses[fv] = append(initUses[fv], access{call.Pos(), fnName})
								}
							}
						}
					}
				}
				return true
			})
			ast.Inspect(body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || consumed[sel] {
					return true
				}
				fv := fieldOf(sel)
				if fv == nil || fv.Pkg() != pass.Pkg.Types {
					return true
				}
				if analysis.IsCellType(fv.Type()) {
					return true // Cell has no plain access surface beyond Init/Raw
				}
				plainUses[fv] = append(plainUses[fv], access{sel.Pos(), fnName})
				return true
			})
		}
	}

	for fv, atomics := range atomicUses {
		first := pass.Fset.Position(atomics[0].pos)
		for _, use := range plainUses[fv] {
			if isSetupFunc(use.desc) {
				continue
			}
			pass.Reportf(use.pos,
				"plain access to field %s, which is accessed via sync/atomic elsewhere (e.g. %s:%d); mixed plain/atomic access is a data race",
				fv.Name(), shortName(first.Filename), first.Line)
		}
	}
	for fv, uses := range initUses {
		procPos, shared := procUses[fv]
		if !shared {
			continue
		}
		first := pass.Fset.Position(procPos)
		for _, use := range uses {
			pass.Reportf(use.pos,
				"Cell.Init/Raw on field %s outside single-threaded setup (%s); the cell is accessed via Proc ops (e.g. %s:%d)",
				fv.Name(), use.desc, shortName(first.Filename), first.Line)
		}
	}
}

// addrOperand returns the selector expression x.f when e is &x.f.
func addrOperand(e ast.Expr) *ast.SelectorExpr {
	u, ok := e.(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	sel, _ := u.X.(*ast.SelectorExpr)
	return sel
}

func isCellMethod(m *types.Func) bool {
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return analysis.IsCellType(t)
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

func shortName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
