// Package cellinit is the lockapi half of the atomicdiscipline corpus: a
// Cell that lock code accesses through a Proc must not be re-initialized
// with the non-atomic Cell.Init outside single-threaded setup.
package cellinit

import "github.com/clof-go/clof/internal/lockapi"

type gate struct {
	word lockapi.Cell
}

// NewGate may Init: constructors run before publication.
func NewGate() *gate {
	g := &gate{}
	g.word.Init(1)
	return g
}

func (g *gate) open(p lockapi.Proc) {
	p.Store(&g.word, 0, lockapi.Release)
}

func (g *gate) slam(p lockapi.Proc) {
	g.word.Init(1) // want "outside single-threaded setup"
}
