// Package atclean is the atomicdiscipline clean corpus: disciplined
// sync/atomic use, setup-time plain writes, and one waived diagnostic.
package atclean

import "sync/atomic"

type counter struct {
	n     uint64
	typed atomic.Uint64
}

func (c *counter) inc() {
	atomic.AddUint64(&c.n, 1)
}

func (c *counter) read() uint64 {
	return atomic.LoadUint64(&c.n)
}

// typed fields are safe by construction: the word is behind methods.
func (c *counter) incTyped() { c.typed.Add(1) }

// NewCounter initializes plainly before publication.
func NewCounter(start uint64) *counter {
	c := &counter{}
	c.n = start
	return c
}

// drain documents a deliberate plain read: the caller guarantees all
// writers have quiesced.
func (c *counter) drain() uint64 {
	//lint:atomic plain-ok all writers joined before drain is called
	return c.n
}
