// Package mixed is the atomicdiscipline bad corpus: fields written with
// sync/atomic in one place and read plainly in another — the silent data
// race the analyzer exists for.
package mixed

import "sync/atomic"

type stats struct {
	hits   uint64
	misses uint64
	label  string
}

func (s *stats) bump() {
	atomic.AddUint64(&s.hits, 1)
}

func (s *stats) snapshot() uint64 {
	return s.hits // want "mixed plain/atomic access"
}

func (s *stats) clear() {
	s.hits = 0 // want "mixed plain/atomic access"
}

// misses is only ever accessed plainly: no finding.
func (s *stats) miss() { s.misses++ }

// label is not atomic at all: no finding.
func (s *stats) name() string { return s.label }

// NewStats initializes plainly before publication: setup is exempt.
func NewStats() *stats {
	s := &stats{}
	s.hits = 0
	return s
}
