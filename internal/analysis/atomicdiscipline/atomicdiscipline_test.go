package atomicdiscipline

import (
	"testing"

	"github.com/clof-go/clof/internal/analysis/atest"
)

func TestFlagged(t *testing.T) {
	atest.Run(t, Analyzer, "mixed", "cellinit")
}

func TestClean(t *testing.T) {
	atest.RunExpectClean(t, Analyzer, "atclean")
}
