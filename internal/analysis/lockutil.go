// lockutil.go — shared type-level helpers for the analyzers: recognizing
// the lockapi package, classifying ordered Proc operations, and detecting
// lock-bearing (Cell-containing) types.

package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// IsLockapiPackage reports whether p is this repository's lockapi package
// (matched by suffix so fixtures loaded under other module roots work too).
func IsLockapiPackage(p *types.Package) bool {
	return p != nil && (p.Path() == "lockapi" || strings.HasSuffix(p.Path(), "/lockapi"))
}

// ProcOp is one classified ordered memory operation: a call to a method
// named Load/Store/CAS/Add/Swap/Fence whose final parameter is
// lockapi.Order. The receiver may be the lockapi.Proc interface or any
// concrete backend (memsim.Proc, mcheck.Proc) — classification keys on the
// Order parameter, not the receiver.
type ProcOp struct {
	Call *ast.CallExpr
	// Name is the method name: Load, Store, CAS, Add, Swap, or Fence.
	Name string
	// Order is the order constant's name (Relaxed, Acquire, Release,
	// AcqRel, SeqCst), or "" when the order argument is not a constant.
	Order string
}

// IsLoad reports a pure read (no write side).
func (op ProcOp) IsLoad() bool { return op.Name == "Load" }

// IsWrite reports any operation with a store side (Store or an RMW).
func (op ProcOp) IsWrite() bool {
	switch op.Name {
	case "Store", "CAS", "Add", "Swap":
		return true
	}
	return false
}

// AcquireOrStronger reports whether the order includes acquire semantics.
func (op ProcOp) AcquireOrStronger() bool {
	switch op.Order {
	case "Acquire", "AcqRel", "SeqCst":
		return true
	}
	return false
}

// ReleaseOrStronger reports whether the order includes release semantics.
func (op ProcOp) ReleaseOrStronger() bool {
	switch op.Order {
	case "Release", "AcqRel", "SeqCst":
		return true
	}
	return false
}

var procOpNames = map[string]bool{
	"Load": true, "Store": true, "CAS": true, "Add": true, "Swap": true, "Fence": true,
}

// ClassifyProcOp reports whether call is an ordered Proc operation.
func ClassifyProcOp(info *types.Info, call *ast.CallExpr) (ProcOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ProcOp{}, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || !procOpNames[fn.Name()] {
		return ProcOp{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return ProcOp{}, false
	}
	last := sig.Params().At(sig.Params().Len() - 1).Type()
	named, ok := last.(*types.Named)
	if !ok || named.Obj().Name() != "Order" || !IsLockapiPackage(named.Obj().Pkg()) {
		return ProcOp{}, false
	}
	op := ProcOp{Call: call, Name: fn.Name()}
	if len(call.Args) > 0 {
		if tv, ok := info.Types[call.Args[len(call.Args)-1]]; ok && tv.Value != nil {
			if v, exact := constant.Int64Val(tv.Value); exact {
				op.Order = orderName(named.Obj().Pkg(), named, v)
			}
		}
	}
	return op, true
}

// orderName finds the Order constant in pkg with value v.
func orderName(pkg *types.Package, orderType *types.Named, v int64) string {
	if pkg == nil {
		return ""
	}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), orderType) {
			continue
		}
		if cv, exact := constant.Int64Val(c.Val()); exact && cv == v {
			return name
		}
	}
	return ""
}

// IsCellType reports whether t is lockapi.Cell.
func IsCellType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Cell" && IsLockapiPackage(named.Obj().Pkg())
}

// HasCell reports whether t transitively contains a lockapi.Cell by value
// (through struct fields, embedded fields, and arrays — not through
// pointers, slices, or maps). A value of such a type must not be copied
// after first use: backends key per-cell metadata off the Cell's address.
func HasCell(t types.Type) bool {
	return hasCell(t, map[*types.Named]bool{})
}

func hasCell(t types.Type, seen map[*types.Named]bool) bool {
	switch t := t.(type) {
	case *types.Named:
		if seen[t] {
			return false
		}
		seen[t] = true
		if IsCellType(t) {
			return true
		}
		return hasCell(t.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if hasCell(t.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return hasCell(t.Elem(), seen)
	}
	return false
}

// IsSpinRelief reports whether call yields or backs off inside a spin loop:
// Proc.Spin, ExpBackoff.Pause (any method named Spin or Pause), or
// runtime.Gosched / time.Sleep.
func IsSpinRelief(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	switch fn.Name() {
	case "Spin", "Pause":
		return true
	case "Gosched":
		return fn.Pkg() != nil && fn.Pkg().Path() == "runtime"
	case "Sleep":
		return fn.Pkg() != nil && fn.Pkg().Path() == "time"
	}
	return false
}
