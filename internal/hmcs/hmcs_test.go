package hmcs

import (
	"testing"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/locktest"
	"github.com/clof-go/clof/internal/topo"
)

func TestNativeMutualExclusionAllDepths(t *testing.T) {
	for name, h := range map[string]*topo.Hierarchy{
		"hmcs2-x86": topo.MustHierarchy(topo.X86Server(), topo.NUMA, topo.System),
		"hmcs3-x86": topo.X86Hierarchy3(),
		"hmcs4-x86": topo.X86Hierarchy4(),
		"hmcs4-arm": topo.ArmHierarchy4(),
	} {
		h := h
		t.Run(name, func(t *testing.T) {
			locktest.NativeStress(t, Must(h), h.Machine, 12, 2000)
		})
	}
}

func TestNativeSmallThreshold(t *testing.T) {
	h := topo.X86Hierarchy4()
	locktest.NativeStress(t, Must(h, WithThreshold(2)), h.Machine, 8, 2000)
}

func TestSimulatedProgress(t *testing.T) {
	h := topo.ArmHierarchy4()
	res := locktest.SimRun(t, func() lockapi.Lock { return Must(h) }, locktest.SimConfig{
		Machine: h.Machine, Threads: 32, Horizon: 300_000, CSWork: 80, NCSWork: 120,
	})
	if res.Total == 0 {
		t.Fatal("no progress")
	}
	if res.Jain() < 0.3 {
		t.Errorf("Jain index %.2f suspiciously unfair for threshold-bounded HMCS", res.Jain())
	}
}

// TestLocalityBeatsMCS: HMCS⟨4⟩ must keep most handovers below the NUMA
// level, unlike plain MCS whose FIFO order crosses the machine arbitrarily,
// and that must translate into higher throughput at high contention (the
// Fig. 2 effect).
func TestLocalityBeatsMCS(t *testing.T) {
	h := topo.X86Hierarchy4()
	cfg := locktest.SimConfig{
		Machine: h.Machine, Threads: 48, Horizon: 400_000, CSWork: 80, NCSWork: 120,
	}
	hm := locktest.SimRun(t, func() lockapi.Lock { return Must(h) }, cfg)
	mcs := locktest.SimRun(t, func() lockapi.Lock { return locks.NewMCS() }, cfg)

	frac := func(r locktest.SimResult) float64 {
		var local, total uint64
		for lvl, c := range r.HandoverLevels {
			total += c
			if topo.Level(lvl) < topo.NUMA {
				local += c
			}
		}
		if total == 0 {
			return 0
		}
		return float64(local) / float64(total)
	}
	if f := frac(hm); f < 0.8 {
		t.Errorf("HMCS<4> sub-NUMA handover fraction = %.2f, want > 0.8", f)
	}
	if f := frac(mcs); f > 0.5 {
		t.Errorf("MCS sub-NUMA handover fraction = %.2f, expected < 0.5 under spread placement", f)
	}
	if hm.Total <= mcs.Total {
		t.Errorf("HMCS<4> (%d) did not outperform MCS (%d) at 48 threads", hm.Total, mcs.Total)
	}
}

// TestThresholdBoundsLocalPassing: a tiny threshold must force more global
// handovers than the default.
func TestThresholdBoundsLocalPassing(t *testing.T) {
	h := topo.ArmHierarchy3()
	cfg := locktest.SimConfig{
		Machine: h.Machine, Threads: 32, Horizon: 300_000, CSWork: 80, NCSWork: 120,
	}
	tight := locktest.SimRun(t, func() lockapi.Lock { return Must(h, WithThreshold(2)) }, cfg)
	loose := locktest.SimRun(t, func() lockapi.Lock { return Must(h, WithThreshold(128)) }, cfg)
	cross := func(r locktest.SimResult) float64 {
		var far, total uint64
		for lvl, c := range r.HandoverLevels {
			total += c
			if topo.Level(lvl) >= topo.NUMA {
				far += c
			}
		}
		if total == 0 {
			return 0
		}
		return float64(far) / float64(total)
	}
	if cross(tight) <= cross(loose) {
		t.Errorf("threshold 2 cross-NUMA fraction %.3f not above threshold 128's %.3f",
			cross(tight), cross(loose))
	}
}

func TestReleaseWithoutAcquirePanics(t *testing.T) {
	h := topo.X86Hierarchy3()
	l := Must(h)
	c := l.NewCtx()
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	l.Release(lockapi.NewNativeProc(0), c)
}

func TestNameAndFairness(t *testing.T) {
	l := Must(topo.X86Hierarchy4())
	if l.Name() != "hmcs<4>" || l.Levels() != 4 {
		t.Errorf("Name/Levels = %s/%d", l.Name(), l.Levels())
	}
	if !lockapi.Fair(l) {
		t.Error("HMCS must declare fairness")
	}
}

func TestNewRejectsBadHierarchy(t *testing.T) {
	if _, err := New(&topo.Hierarchy{Machine: topo.X86Server(), Levels: []topo.Level{topo.NUMA}}); err == nil {
		t.Error("hierarchy not ending at System accepted")
	}
}
