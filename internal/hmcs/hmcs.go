// Package hmcs implements the HMCS lock of Chabbi, Fagan and Mellor-Crummey
// (PPoPP'15), the paper's strongest baseline: a tree of MCS locks mirroring
// the NUMA hierarchy, with a per-level threshold bounding consecutive local
// handovers. HMCS⟨n⟩ denotes the n-level configuration.
//
// Unlike CLoF, HMCS is level-homogeneous (MCS at every level) and passes the
// lock within a level through the MCS queue node's status word, which
// doubles as the local-handover counter.
//
// The memory-order annotations follow the HMCS-WMM corrections of
// Oberhauser et al. (NETYS'21) as discussed in the CLoF paper §1/§3.3:
// status handovers are release/acquire pairs and queue publication is
// releasing, which internal/mcheck verifies on its TSO mode.
package hmcs

import (
	"fmt"
	"math"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/topo"
)

// Queue-node status encoding (as in the original paper).
const (
	// statusWait marks a queue node whose owner must keep spinning.
	statusWait = math.MaxUint64
	// statusAcquireParent tells the successor it must acquire the parent
	// level itself.
	statusAcquireParent = math.MaxUint64 - 1
	// statusCohortStart is the pass count of a fresh cohort owner.
	statusCohortStart = 1
)

// DefaultThreshold is the per-level local-handover bound. The CLoF paper
// uses H=128 for both CLoF and HMCS so comparisons are threshold-equal.
const DefaultThreshold = 128

// hnode is one level's MCS lock within the tree.
type hnode struct {
	// tail is the MCS queue tail (queue-node handle; 0 = empty).
	tail lockapi.Cell
	// qnode is the handle of the node this hnode uses to enqueue itself
	// into the parent's queue.
	qnode uint64
	// threshold is this level's local-handover bound.
	threshold uint64
	parent    *hnode
}

// qnode is an MCS queue node with the HMCS status word.
type qnode struct {
	next   lockapi.Cell
	status lockapi.Cell
}

// Lock is an HMCS⟨n⟩ lock over a hierarchy configuration. It implements
// lockapi.Lock; Proc.ID() must be the caller's CPU number.
type Lock struct {
	// Probe reports acquire/grant/release edges to an attached observer
	// (lockapi.Instrumented); detached it is a nil check per edge.
	lockapi.Probe
	hier      *topo.Hierarchy
	threshold uint64
	nodes     []*qnode // handle table; slot 0 = nil
	leaves    []*hnode
}

// Option customizes New.
type Option func(*Lock)

// WithThreshold overrides the per-level local-handover bound.
func WithThreshold(h uint64) Option {
	return func(l *Lock) { l.threshold = h }
}

// New builds an HMCS lock whose tree mirrors the hierarchy configuration:
// one MCS lock per cohort per level.
func New(h *topo.Hierarchy, opts ...Option) (*Lock, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	l := &Lock{
		hier:      h,
		threshold: DefaultThreshold,
		nodes:     make([]*qnode, 1, 64),
	}
	for _, o := range opts {
		o(l)
	}

	m := h.Machine
	var parents []*hnode
	for li := len(h.Levels) - 1; li >= 0; li-- {
		level := h.Levels[li]
		n := m.Cohorts(level)
		nodes := make([]*hnode, n)
		for j := 0; j < n; j++ {
			hn := &hnode{threshold: l.threshold}
			if li < len(h.Levels)-1 {
				parentLevel := h.Levels[li+1]
				someCPU := m.CohortCPUs(level, j)[0]
				hn.parent = parents[m.CohortOf(someCPU, parentLevel)]
				hn.qnode = l.newQnode()
			}
			nodes[j] = hn
		}
		parents = nodes
	}
	l.leaves = parents
	return l, nil
}

// Must is New that panics on error.
func Must(h *topo.Hierarchy, opts ...Option) *Lock {
	l, err := New(h, opts...)
	if err != nil {
		panic(err)
	}
	return l
}

// Levels returns the ⟨n⟩ of this HMCS⟨n⟩.
func (l *Lock) Levels() int { return l.hier.Depth() }

// Name returns e.g. "hmcs<4>".
func (l *Lock) Name() string { return fmt.Sprintf("hmcs<%d>", l.Levels()) }

func (l *Lock) newQnode() uint64 {
	n := &qnode{}
	lockapi.Colocate(&n.next, &n.status) // one queue node = one cache line
	l.nodes = append(l.nodes, n)
	return uint64(len(l.nodes) - 1)
}

func (l *Lock) node(h uint64) *qnode { return l.nodes[h] }

// ctx is the per-thread context: one leaf queue node per leaf cohort.
type ctx struct {
	leafQ []uint64
	// held records the leaf used by the in-progress acquisition.
	held *hnode
	// heldQ is the queue-node handle enqueued at the leaf.
	heldQ uint64
}

// NewCtx implements lockapi.Lock. Only safe during single-threaded setup.
func (l *Lock) NewCtx() lockapi.Ctx {
	c := &ctx{leafQ: make([]uint64, len(l.leaves))}
	for i := range l.leaves {
		c.leafQ[i] = l.newQnode()
	}
	return c
}

// Acquire implements lockapi.Lock.
func (l *Lock) Acquire(p lockapi.Proc, c lockapi.Ctx) {
	l.EmitAcquireStart(p)
	tc := c.(*ctx)
	cohort := l.hier.Machine.CohortOf(p.ID(), l.hier.Levels[0])
	leaf := l.leaves[cohort]
	tc.held, tc.heldQ = leaf, tc.leafQ[cohort]
	l.acquire(p, leaf, tc.heldQ)
	l.EmitAcquired(p)
}

// acquire is AcquireHelper from the HMCS paper.
func (l *Lock) acquire(p lockapi.Proc, h *hnode, q uint64) {
	n := l.node(q)
	p.Store(&n.status, statusWait, lockapi.Relaxed)
	p.Store(&n.next, 0, lockapi.Relaxed)
	pred := p.Swap(&h.tail, q, lockapi.AcqRel)
	if pred != 0 {
		p.Store(&l.node(pred).next, q, lockapi.Release)
		for {
			s := p.Load(&n.status, lockapi.Acquire)
			if s == statusWait {
				p.Spin()
				continue
			}
			if s < statusAcquireParent {
				// The lock was passed within this cohort; status carries
				// the running local-handover count.
				return
			}
			break // told to acquire the parent
		}
	}
	// First of a new cohort (or instructed to climb): acquire upward.
	p.Store(&n.status, statusCohortStart, lockapi.Relaxed)
	if h.parent != nil {
		l.acquire(p, h.parent, h.qnode)
	}
}

// Release implements lockapi.Lock.
func (l *Lock) Release(p lockapi.Proc, c lockapi.Ctx) {
	tc := c.(*ctx)
	if tc.held == nil {
		panic("hmcs: Release without matching Acquire")
	}
	h, q := tc.held, tc.heldQ
	tc.held, tc.heldQ = nil, 0
	l.release(p, h, q)
	l.EmitReleased(p)
}

// release follows the HMCS paper's Release: pass within the cohort while
// under the threshold, otherwise release the parent first and tell the
// successor (if any) to acquire it.
func (l *Lock) release(p lockapi.Proc, h *hnode, q uint64) {
	n := l.node(q)
	if h.parent == nil {
		// Root: plain MCS handover. Any value below statusAcquireParent
		// unblocks the successor.
		l.releaseHelper(p, h, q, statusCohortStart)
		return
	}
	cur := p.Load(&n.status, lockapi.Relaxed)
	if cur < h.threshold {
		if succ := p.Load(&n.next, lockapi.Acquire); succ != 0 {
			p.Store(&l.node(succ).status, cur+1, lockapi.Release)
			return
		}
	}
	// Threshold reached or no local successor: hand the parent back, then
	// release this level telling any (late) successor to climb itself.
	l.release(p, h.parent, h.qnode)
	l.releaseHelper(p, h, q, statusAcquireParent)
}

// releaseHelper is the plain MCS release passing `val` to the successor.
func (l *Lock) releaseHelper(p lockapi.Proc, h *hnode, q, val uint64) {
	n := l.node(q)
	succ := p.Load(&n.next, lockapi.Acquire)
	if succ == 0 {
		if p.CAS(&h.tail, q, 0, lockapi.Release) {
			return
		}
		for {
			if succ = p.Load(&n.next, lockapi.Acquire); succ != 0 {
				break
			}
			p.Spin()
		}
	}
	p.Store(&l.node(succ).status, val, lockapi.Release)
}

// Fair implements lockapi.FairnessInfo: every level is FIFO with bounded
// local passing.
func (l *Lock) Fair() bool { return true }

// TrySupported implements lockapi.TryInfo: HMCS declines TryAcquire. A
// failed attempt would have to withdraw from a partially climbed tree, but
// an enqueued MCS node at any level cannot be unpublished without waiting
// for a possible mid-enqueue successor — which a trylock must never do.
func (l *Lock) TrySupported() bool { return false }

var (
	_ lockapi.Lock         = (*Lock)(nil)
	_ lockapi.FairnessInfo = (*Lock)(nil)
	_ lockapi.TryInfo      = (*Lock)(nil)
)
