package locks

import (
	"github.com/clof-go/clof/internal/lockapi"
)

// MCS is the Mellor-Crummey–Scott queue lock (§2.1): threads append their
// context node to a global queue and spin on a flag in their own node (local
// spinning), so each handover invalidates exactly one waiter's line. Fair.
//
// Nodes are addressed by integer handles into the lock's node table; handle 0
// is nil. Contexts must be allocated during single-threaded setup.
type MCS struct {
	// Probe reports acquire/grant/release edges to an attached observer
	// (lockapi.Instrumented); detached it is a nil check per edge.
	lockapi.Probe
	// tail holds the handle of the last enqueued node (0 = unheld, empty).
	tail lockapi.Cell
	// nodes[1:] are the queue nodes, one per context.
	nodes []*mcsNode
}

type mcsNode struct {
	// next holds the successor's handle (0 = none yet).
	next lockapi.Cell
	// locked is 1 while the owner of this node must wait.
	locked lockapi.Cell
}

// mcsCtx is the per-thread context: the handle of its queue node.
type mcsCtx struct {
	id uint64
}

// NewMCS returns an unheld MCS lock.
func NewMCS() *MCS {
	return &MCS{nodes: make([]*mcsNode, 1, 8)} // slot 0 = nil
}

// NewCtx implements lockapi.Lock: it allocates this thread's queue node.
// Only safe during single-threaded setup.
func (l *MCS) NewCtx() lockapi.Ctx {
	n := &mcsNode{}
	lockapi.Colocate(&n.next, &n.locked) // one queue node = one cache line
	l.nodes = append(l.nodes, n)
	return &mcsCtx{id: uint64(len(l.nodes) - 1)}
}

func (l *MCS) node(h uint64) *mcsNode { return l.nodes[h] }

// Acquire implements lockapi.Lock.
func (l *MCS) Acquire(p lockapi.Proc, c lockapi.Ctx) {
	l.EmitAcquireStart(p)
	ctx := c.(*mcsCtx)
	n := l.node(ctx.id)
	p.Store(&n.next, 0, lockapi.Relaxed)
	p.Store(&n.locked, 1, lockapi.Relaxed)
	prev := p.Swap(&l.tail, ctx.id, lockapi.AcqRel)
	if prev == 0 {
		l.EmitAcquired(p)
		return // queue was empty: lock acquired
	}
	// Publish ourselves to the predecessor, then spin on our own flag.
	p.Store(&l.node(prev).next, ctx.id, lockapi.Release)
	for p.Load(&n.locked, lockapi.Acquire) == 1 {
		p.Spin()
	}
	l.EmitAcquired(p)
}

// TryAcquire implements lockapi.TryLocker: succeed only when the queue is
// empty. On success our node becomes the tail exactly as on the Acquire fast
// path; on failure nothing was published, so the caller may walk away.
func (l *MCS) TryAcquire(p lockapi.Proc, c lockapi.Ctx) bool {
	ctx := c.(*mcsCtx)
	n := l.node(ctx.id)
	p.Store(&n.next, 0, lockapi.Relaxed)
	if !p.CAS(&l.tail, 0, ctx.id, lockapi.AcqRel) {
		return false
	}
	// A trylock never waits: report both acquire edges at the success
	// instant so edge counts stay balanced.
	l.EmitAcquireStart(p)
	l.EmitAcquired(p)
	return true
}

// Release implements lockapi.Lock.
func (l *MCS) Release(p lockapi.Proc, c lockapi.Ctx) {
	ctx := c.(*mcsCtx)
	n := l.node(ctx.id)
	if p.Load(&n.next, lockapi.Acquire) == 0 {
		// No visible successor: try to swing tail back to empty.
		if p.CAS(&l.tail, ctx.id, 0, lockapi.Release) {
			l.EmitReleased(p)
			return
		}
		// A successor is mid-enqueue; wait for it to link itself.
		for p.Load(&n.next, lockapi.Acquire) == 0 {
			p.Spin()
		}
	}
	succ := p.Load(&n.next, lockapi.Relaxed)
	p.Store(&l.node(succ).locked, 0, lockapi.Release)
	l.EmitReleased(p)
}

// HasWaiters implements lockapi.WaiterDetector: per the paper, for MCS "it
// suffices to check whether the next pointer is set". This may miss a waiter
// that is mid-enqueue, which is safe: CLoF then conservatively releases the
// high lock and the waiter re-acquires it itself.
func (l *MCS) HasWaiters(p lockapi.Proc, c lockapi.Ctx) bool {
	ctx := c.(*mcsCtx)
	return p.Load(&l.node(ctx.id).next, lockapi.Relaxed) != 0
}

// Fair implements lockapi.FairnessInfo: the queue is FIFO.
func (l *MCS) Fair() bool { return true }

var (
	_ lockapi.Lock           = (*MCS)(nil)
	_ lockapi.WaiterDetector = (*MCS)(nil)
	_ lockapi.FairnessInfo   = (*MCS)(nil)
	_ lockapi.TryLocker      = (*MCS)(nil)
)
