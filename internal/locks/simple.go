package locks

import (
	"github.com/clof-go/clof/internal/lockapi"
)

// TAS is the test-and-set spinlock: a single word swapped to 1 on acquire.
// Every acquisition attempt is a read-for-ownership, so contended TAS
// generates maximal coherence traffic. Unfair (no admission order).
type TAS struct {
	word lockapi.Cell
}

// NewTAS returns an unheld test-and-set lock.
func NewTAS() *TAS { return &TAS{} }

// NewCtx implements lockapi.Lock; TAS needs no context.
func (l *TAS) NewCtx() lockapi.Ctx { return nil }

// Acquire implements lockapi.Lock.
func (l *TAS) Acquire(p lockapi.Proc, _ lockapi.Ctx) {
	for p.Swap(&l.word, 1, lockapi.Acquire) == 1 {
		p.Spin()
	}
}

// TryAcquire implements lockapi.TryLocker: one CAS, no waiting.
func (l *TAS) TryAcquire(p lockapi.Proc, _ lockapi.Ctx) bool {
	return p.CAS(&l.word, 0, 1, lockapi.Acquire)
}

// Release implements lockapi.Lock.
func (l *TAS) Release(p lockapi.Proc, _ lockapi.Ctx) {
	p.Store(&l.word, 0, lockapi.Release)
}

// Fair implements lockapi.FairnessInfo: TAS admits in arbitrary order.
func (l *TAS) Fair() bool { return false }

// TTAS is the test-and-test-and-set spinlock: waiters spin with plain loads
// (staying in shared state) and only attempt the CAS when the lock looks
// free, which reduces — but does not eliminate — the release storm. Unfair.
type TTAS struct {
	word lockapi.Cell
}

// NewTTAS returns an unheld test-and-test-and-set lock.
func NewTTAS() *TTAS { return &TTAS{} }

// NewCtx implements lockapi.Lock; TTAS needs no context.
func (l *TTAS) NewCtx() lockapi.Ctx { return nil }

// Acquire implements lockapi.Lock.
func (l *TTAS) Acquire(p lockapi.Proc, _ lockapi.Ctx) {
	for {
		//lint:order relaxed-ok TTAS peek only; the CAS below provides Acquire on the winning entry
		for p.Load(&l.word, lockapi.Relaxed) == 1 {
			p.Spin()
		}
		if p.CAS(&l.word, 0, 1, lockapi.Acquire) {
			return
		}
	}
}

// TryAcquire implements lockapi.TryLocker: one CAS, no waiting.
func (l *TTAS) TryAcquire(p lockapi.Proc, _ lockapi.Ctx) bool {
	return p.CAS(&l.word, 0, 1, lockapi.Acquire)
}

// Release implements lockapi.Lock.
func (l *TTAS) Release(p lockapi.Proc, _ lockapi.Ctx) {
	p.Store(&l.word, 0, lockapi.Release)
}

// Fair implements lockapi.FairnessInfo.
func (l *TTAS) Fair() bool { return false }

// Backoff is TTAS with bounded exponential backoff (Agarwal & Cherian [1]),
// the "BO" lock that lock cohorting composes in C-BO-MCS. Backoff trades
// fairness and worst-case latency for reduced coherence traffic. Unfair.
type Backoff struct {
	word lockapi.Cell
	// maxDelay bounds the backoff in Spin() hints per failed attempt.
	maxDelay int
}

// NewBackoff returns an unheld backoff lock with the default delay cap.
func NewBackoff() *Backoff { return &Backoff{maxDelay: 64} }

// NewCtx implements lockapi.Lock; Backoff needs no context.
func (l *Backoff) NewCtx() lockapi.Ctx { return nil }

// Acquire implements lockapi.Lock.
func (l *Backoff) Acquire(p lockapi.Proc, _ lockapi.Ctx) {
	bo := lockapi.ExpBackoff{Base: 1, Cap: l.maxDelay}
	for {
		//lint:order relaxed-ok backoff peek only; the CAS below provides Acquire on the winning entry
		for p.Load(&l.word, lockapi.Relaxed) == 1 {
			bo.Pause(p)
		}
		if p.CAS(&l.word, 0, 1, lockapi.Acquire) {
			return
		}
	}
}

// TryAcquire implements lockapi.TryLocker: one CAS, no backoff.
func (l *Backoff) TryAcquire(p lockapi.Proc, _ lockapi.Ctx) bool {
	return p.CAS(&l.word, 0, 1, lockapi.Acquire)
}

// Release implements lockapi.Lock.
func (l *Backoff) Release(p lockapi.Proc, _ lockapi.Ctx) {
	p.Store(&l.word, 0, lockapi.Release)
}

// Fair implements lockapi.FairnessInfo.
func (l *Backoff) Fair() bool { return false }

var (
	_ lockapi.Lock         = (*TAS)(nil)
	_ lockapi.Lock         = (*TTAS)(nil)
	_ lockapi.Lock         = (*Backoff)(nil)
	_ lockapi.FairnessInfo = (*TAS)(nil)
	_ lockapi.FairnessInfo = (*TTAS)(nil)
	_ lockapi.FairnessInfo = (*Backoff)(nil)
	_ lockapi.TryLocker    = (*TAS)(nil)
	_ lockapi.TryLocker    = (*TTAS)(nil)
	_ lockapi.TryLocker    = (*Backoff)(nil)
)
