// Package locks implements the NUMA-oblivious spinlocks of the paper's §2.1:
// test-and-set (TAS), test-and-test-and-set (TTAS), exponential backoff (BO),
// Ticketlock, MCS, CLH, and Hemlock (with and without the x86-specific
// Coherence-Traffic-Reduction optimization).
//
// These are CLoF's "basic locks": simple enough to verify exhaustively on
// weak memory models (internal/mcheck does so) and composable by the CLoF
// generator into multi-level NUMA-aware locks.
//
// Every lock implements lockapi.Lock. Queue-based locks represent their nodes
// as integer handles into per-lock tables so the same code runs natively, on
// the NUMA simulator, and in the model checker. Handle 0 always means "nil".
package locks

import (
	"fmt"
	"sort"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/topo"
)

// Type describes a basic lock kind: its short name (used in composition
// notation like "tkt-clh-tkt-tkt"), a constructor, and whether the lock is
// starvation-free.
type Type struct {
	// Name is the abbreviation used throughout the paper's figures.
	Name string
	// New constructs a fresh, unheld lock instance.
	New func() lockapi.Lock
	// Fair reports starvation freedom (FIFO admission).
	Fair bool
}

// String returns the type's name.
func (t Type) String() string { return t.Name }

// allTypes maps every known basic-lock name to its constructor. The "hem"
// entry is architecture-dependent and therefore only present via BasicLocks.
var allTypes = map[string]Type{
	"tas":     {Name: "tas", New: func() lockapi.Lock { return NewTAS() }, Fair: false},
	"ttas":    {Name: "ttas", New: func() lockapi.Lock { return NewTTAS() }, Fair: false},
	"bo":      {Name: "bo", New: func() lockapi.Lock { return NewBackoff() }, Fair: false},
	"tkt":     {Name: "tkt", New: func() lockapi.Lock { return NewTicket() }, Fair: true},
	"mcs":     {Name: "mcs", New: func() lockapi.Lock { return NewMCS() }, Fair: true},
	"clh":     {Name: "clh", New: func() lockapi.Lock { return NewCLH() }, Fair: true},
	"hem":     {Name: "hem", New: func() lockapi.Lock { return NewHemlock(false) }, Fair: true},
	"hem-ctr": {Name: "hem-ctr", New: func() lockapi.Lock { return NewHemlock(true) }, Fair: true},
	"qspin":   {Name: "qspin", New: func() lockapi.Lock { return NewQSpin() }, Fair: false},
}

// ByName looks up a lock type by its abbreviation ("tkt", "mcs", "clh",
// "hem", "hem-ctr", "qspin", "tas", "ttas", "bo"). HBO is constructed
// directly with NewHBO (it needs the machine topology).
func ByName(name string) (Type, bool) {
	t, ok := allTypes[name]
	return t, ok
}

// Names returns all registered type names, sorted.
func Names() []string {
	names := make([]string, 0, len(allTypes))
	for n := range allTypes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// BasicLocks returns the paper's default basic-lock set for the CLoF
// generator — Ticketlock, MCS, CLH, and Hemlock — with Hemlock's CTR
// optimization enabled on x86 and disabled on Armv8, exactly as the paper
// does from §3.2 onward ("hem on x86 denotes Hemlock with CTR enabled,
// whereas hem on Armv8 denotes Hemlock with CTR disabled").
func BasicLocks(arch topo.Arch) []Type {
	hem := Type{Name: "hem", Fair: true}
	if arch == topo.X86 {
		hem.New = func() lockapi.Lock { return NewHemlock(true) }
	} else {
		hem.New = func() lockapi.Lock { return NewHemlock(false) }
	}
	return []Type{allTypes["tkt"], allTypes["mcs"], allTypes["clh"], hem}
}

// MustType is ByName that panics on unknown names; for tests and examples.
func MustType(name string) Type {
	t, ok := ByName(name)
	if !ok {
		panic(fmt.Sprintf("locks: unknown lock type %q", name))
	}
	return t
}
