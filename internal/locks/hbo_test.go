package locks

import (
	"testing"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/topo"
)

// spinMeter wraps a Proc and records Spin() bursts: a burst is a maximal run
// of consecutive Spin calls with no memory operation in between, which is
// exactly one ExpBackoff.Pause in HBO's acquire loop. onSpin, if set, is
// called with the running total — tests use it to release the lock after a
// chosen amount of backoff.
type spinMeter struct {
	inner  lockapi.Proc
	burst  int
	bursts []int
	total  int
	onSpin func(total int)
}

func (p *spinMeter) endBurst() {
	if p.burst > 0 {
		p.bursts = append(p.bursts, p.burst)
		p.burst = 0
	}
}

func (p *spinMeter) Load(c *lockapi.Cell, o lockapi.Order) uint64 {
	p.endBurst()
	return p.inner.Load(c, o)
}

func (p *spinMeter) Store(c *lockapi.Cell, v uint64, o lockapi.Order) {
	p.endBurst()
	p.inner.Store(c, v, o)
}

func (p *spinMeter) CAS(c *lockapi.Cell, old, new uint64, o lockapi.Order) bool {
	p.endBurst()
	return p.inner.CAS(c, old, new, o)
}

func (p *spinMeter) Add(c *lockapi.Cell, delta uint64, o lockapi.Order) uint64 {
	p.endBurst()
	return p.inner.Add(c, delta, o)
}

func (p *spinMeter) Swap(c *lockapi.Cell, v uint64, o lockapi.Order) uint64 {
	p.endBurst()
	return p.inner.Swap(c, v, o)
}

func (p *spinMeter) Fence(o lockapi.Order) { p.endBurst(); p.inner.Fence(o) }

func (p *spinMeter) Spin() {
	p.burst++
	p.total++
	if p.onSpin != nil {
		p.onSpin(p.total)
	}
}

func (p *spinMeter) ID() int { return p.inner.ID() }

var _ lockapi.Proc = (*spinMeter)(nil)

// TestExpBackoffNeverExceedsCap: every Pause spins at most Cap times (at
// most DefaultBackoffCap when Cap is 0), for caps above, below, and equal to
// the base, and the pre-cap pauses double.
func TestExpBackoffNeverExceedsCap(t *testing.T) {
	cases := []struct{ base, cap int }{
		{0, 0}, {1, 64}, {3, 100}, {16, 1024}, {10, 4}, {64, 64},
	}
	for _, tc := range cases {
		bo := lockapi.ExpBackoff{Base: tc.base, Cap: tc.cap}
		lim := tc.cap
		if lim <= 0 {
			lim = lockapi.DefaultBackoffCap
		}
		p := &spinMeter{inner: lockapi.NewNativeProc(0)}
		prev := 0
		for i := 0; i < 20; i++ {
			n := bo.Pause(p)
			if n > lim {
				t.Fatalf("Base=%d Cap=%d: pause %d spun %d > cap %d", tc.base, tc.cap, i, n, lim)
			}
			if n < prev {
				t.Fatalf("Base=%d Cap=%d: pause shrank %d -> %d", tc.base, tc.cap, prev, n)
			}
			if prev > 0 && prev < lim && n != prev*2 && n != lim {
				t.Fatalf("Base=%d Cap=%d: pause %d is %d, want double %d or cap %d", tc.base, tc.cap, i, n, prev*2, lim)
			}
			prev = n
		}
		if prev != lim {
			t.Errorf("Base=%d Cap=%d: sequence never reached the cap (last %d)", tc.base, tc.cap, prev)
		}
	}
}

// TestHBOOptions: the option setters land in Delays() and out-of-range
// values clamp to 1.
func TestHBOOptions(t *testing.T) {
	m := topo.X86Server()
	l := NewHBO(m, WithHBOLocalDelay(5), WithHBORemoteDelay(40), WithHBOMaxDelay(200))
	if lo, re, mx := l.Delays(); lo != 5 || re != 40 || mx != 200 {
		t.Fatalf("Delays() = (%d,%d,%d), want (5,40,200)", lo, re, mx)
	}
	l = NewHBO(m)
	if lo, re, mx := l.Delays(); lo != DefaultHBOLocalDelay || re != DefaultHBORemoteDelay || mx != DefaultHBOMaxDelay {
		t.Fatalf("default Delays() = (%d,%d,%d)", lo, re, mx)
	}
	l = NewHBO(m, WithHBOLocalDelay(0), WithHBORemoteDelay(-3), WithHBOMaxDelay(0))
	if lo, re, mx := l.Delays(); lo != 1 || re != 1 || mx != 1 {
		t.Fatalf("clamped Delays() = (%d,%d,%d), want (1,1,1)", lo, re, mx)
	}
}

// measureHBOBursts acquires l on CPU 0 while the word is preset to `owner`,
// releasing the lock once `releaseAfter` total spins have elapsed, and
// returns the recorded pause lengths.
func measureHBOBursts(t *testing.T, l *HBO, owner uint64, releaseAfter int) []int {
	t.Helper()
	native := lockapi.NewNativeProc(0)
	native.Store(&l.word, owner, lockapi.Relaxed)
	p := &spinMeter{inner: native}
	p.onSpin = func(total int) {
		if total == releaseAfter {
			native.Store(&l.word, 0, lockapi.Release)
		}
	}
	l.Acquire(p, nil)
	l.Release(native, nil)
	p.endBurst()
	if len(p.bursts) == 0 {
		t.Fatal("lock acquired without any backoff pause")
	}
	return p.bursts
}

// TestHBOBackoffBounded: under a held lock, no single HBO pause ever exceeds
// min(64*base, MaxDelay) for the owner-distance base in effect, the pauses
// double up to that cap, and the cap is actually reached — for both the
// remote-owner and local-owner distances, with the options engaged.
func TestHBOBackoffBounded(t *testing.T) {
	m := topo.X86Server()
	myNuma := uint64(m.CohortOf(0, topo.NUMA))
	remoteNuma := uint64(0)
	if remoteNuma == myNuma {
		remoteNuma = 1
	}

	check := func(t *testing.T, bursts []int, bound int) {
		t.Helper()
		reached := false
		for i, b := range bursts {
			if b > bound {
				t.Fatalf("pause %d spun %d > cap %d (bursts %v)", i, b, bound, bursts)
			}
			if b == bound {
				reached = true
			}
			if i > 0 && b < bursts[i-1] && b != bursts[len(bursts)-1] {
				t.Fatalf("pause shrank before release: %v", bursts)
			}
		}
		if !reached {
			t.Fatalf("backoff never reached cap %d: %v", bound, bursts)
		}
	}

	t.Run("remote-owner-capped-by-max-delay", func(t *testing.T) {
		// 64*remote = 1024 would exceed MaxDelay 100: the cap must bind.
		l := NewHBO(m, WithHBORemoteDelay(16), WithHBOMaxDelay(100))
		bursts := measureHBOBursts(t, l, 1+remoteNuma, 3000)
		check(t, bursts, 100)
	})
	t.Run("local-owner-capped-by-64x-base", func(t *testing.T) {
		// 64*local = 128 is below MaxDelay: the distance cap binds.
		l := NewHBO(m, WithHBOLocalDelay(2), WithHBOMaxDelay(10_000))
		bursts := measureHBOBursts(t, l, 1+myNuma, 2000)
		check(t, bursts, 128)
	})
}
