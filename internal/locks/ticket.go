package locks

import (
	"github.com/clof-go/clof/internal/lockapi"
)

// Ticket is the classic fair Ticketlock (§2.1): a thread takes a ticket with
// fetch-and-add and waits for the grant counter to reach it. All waiters spin
// on the single grant word (global spinning), so every release invalidates
// every waiter — cheap at low contention, expensive at high contention.
type Ticket struct {
	// Probe reports acquire/grant/release edges to an attached observer
	// (lockapi.Instrumented); detached it is a nil check per edge.
	lockapi.Probe
	ticket lockapi.Cell
	grant  lockapi.Cell
}

// NewTicket returns an unheld Ticketlock. The two counters share a cache
// line, as in the classic two-field struct: every arriving fetch-and-add
// therefore disturbs the grant spinners — part of why Ticketlock degrades
// under contention (Fig. 3).
func NewTicket() *Ticket {
	l := &Ticket{}
	lockapi.Colocate(&l.ticket, &l.grant)
	return l
}

// NewCtx implements lockapi.Lock; Ticketlock needs no context.
func (l *Ticket) NewCtx() lockapi.Ctx { return nil }

// Acquire implements lockapi.Lock.
func (l *Ticket) Acquire(p lockapi.Proc, _ lockapi.Ctx) {
	l.EmitAcquireStart(p)
	// Add returns the new value; our ticket is the pre-increment value.
	t := p.Add(&l.ticket, 1, lockapi.Relaxed) - 1
	for p.Load(&l.grant, lockapi.Acquire) != t {
		p.Spin()
	}
	l.EmitAcquired(p)
}

// TryAcquire implements lockapi.TryLocker: claim the next ticket only if the
// lock looks free, with a CAS so no ticket is consumed on failure. The
// ticket is read before the grant: grant cannot pass an unclaimed ticket, so
// t==g and a successful CAS on ticket t together imply we are the owner.
func (l *Ticket) TryAcquire(p lockapi.Proc, _ lockapi.Ctx) bool {
	t := p.Load(&l.ticket, lockapi.Relaxed)
	g := p.Load(&l.grant, lockapi.Relaxed)
	if t != g {
		return false
	}
	if !p.CAS(&l.ticket, t, t+1, lockapi.Acquire) {
		return false
	}
	// A trylock never waits: both acquire edges land at the success instant.
	l.EmitAcquireStart(p)
	l.EmitAcquired(p)
	return true
}

// Release implements lockapi.Lock. Only the owner writes grant, so a plain
// store of grant+1 would do; the fetch-and-add matches the common
// implementation and is atomic on all backends.
func (l *Ticket) Release(p lockapi.Proc, _ lockapi.Ctx) {
	p.Add(&l.grant, 1, lockapi.Release)
	l.EmitReleased(p)
}

// HasWaiters implements lockapi.WaiterDetector (paper §4.1.2): with the lock
// held, grant names the owner's ticket, so waiters exist iff
// ticket > grant+1.
func (l *Ticket) HasWaiters(p lockapi.Proc, _ lockapi.Ctx) bool {
	g := p.Load(&l.grant, lockapi.Relaxed)
	t := p.Load(&l.ticket, lockapi.Relaxed)
	return t > g+1
}

// Fair implements lockapi.FairnessInfo: tickets are FIFO.
func (l *Ticket) Fair() bool { return true }

// TryObserveUnlocked reports whether the lock currently looks free
// (grant has caught up with ticket). Diagnostic only — the answer may be
// stale the moment it returns; tests use it to observe lock-passing.
func (l *Ticket) TryObserveUnlocked(p lockapi.Proc) bool {
	return p.Load(&l.grant, lockapi.Relaxed) == p.Load(&l.ticket, lockapi.Relaxed)
}

var (
	_ lockapi.Lock           = (*Ticket)(nil)
	_ lockapi.WaiterDetector = (*Ticket)(nil)
	_ lockapi.FairnessInfo   = (*Ticket)(nil)
	_ lockapi.TryLocker      = (*Ticket)(nil)
)
