package locks

import (
	"github.com/clof-go/clof/internal/lockapi"
)

// CLH is the Craig–Landin–Hagersten queue lock (§2.1): an implicit queue in
// which each thread spins on its *predecessor's* node. On release, the owner
// marks its own node free and recycles its predecessor's node for the next
// acquisition (node stealing). Used e.g. as seL4's big kernel lock. Fair,
// local-spinning.
type CLH struct {
	// Probe reports acquire/grant/release edges to an attached observer
	// (lockapi.Instrumented); detached it is a nil check per edge.
	lockapi.Probe
	// tail holds the handle of the most recently enqueued node. Initially a
	// released dummy node, so the first acquirer sees an unlocked
	// predecessor.
	tail  lockapi.Cell
	nodes []*clhNode
}

type clhNode struct {
	// locked is 1 from enqueue until the owning thread releases.
	locked lockapi.Cell
}

// clhCtx is the per-thread context. Unlike MCS, the node handle changes over
// time: after a release the thread adopts its predecessor's node.
type clhCtx struct {
	// node is the handle this thread will enqueue next.
	node uint64
	// pred is the predecessor handle recorded during the current hold.
	pred uint64
}

// NewCLH returns an unheld CLH lock.
func NewCLH() *CLH {
	l := &CLH{nodes: make([]*clhNode, 1, 8)} // slot 0 = nil
	// Dummy node representing "lock free".
	l.nodes = append(l.nodes, &clhNode{})
	l.tail.Init(1)
	return l
}

// NewCtx implements lockapi.Lock: allocates this thread's initial node.
// Only safe during single-threaded setup.
func (l *CLH) NewCtx() lockapi.Ctx {
	l.nodes = append(l.nodes, &clhNode{})
	return &clhCtx{node: uint64(len(l.nodes) - 1)}
}

func (l *CLH) node(h uint64) *clhNode { return l.nodes[h] }

// Acquire implements lockapi.Lock.
func (l *CLH) Acquire(p lockapi.Proc, c lockapi.Ctx) {
	l.EmitAcquireStart(p)
	ctx := c.(*clhCtx)
	n := l.node(ctx.node)
	p.Store(&n.locked, 1, lockapi.Relaxed)
	pred := p.Swap(&l.tail, ctx.node, lockapi.AcqRel)
	ctx.pred = pred
	for p.Load(&l.node(pred).locked, lockapi.Acquire) == 1 {
		p.Spin()
	}
	l.EmitAcquired(p)
}

// TrySupported implements lockapi.TryInfo: CLH declines TryAcquire. The
// obvious load-tail / check-released / CAS-tail attempt is unsound: node
// stealing recycles handles, so between the check and the CAS the same
// handle can come back as tail *re-armed* (locked=1) and the stale CAS would
// enqueue us behind a live owner while reporting success (ABA). A correct
// CLH trylock needs tri-state nodes (Scott's CLH-try), which would pollute
// the hot path this repo measures; we flag the capability off instead.
func (l *CLH) TrySupported() bool { return false }

// Release implements lockapi.Lock: free our node and adopt the
// predecessor's. Thread-oblivious as long as the same Ctx is used.
func (l *CLH) Release(p lockapi.Proc, c lockapi.Ctx) {
	ctx := c.(*clhCtx)
	p.Store(&l.node(ctx.node).locked, 0, lockapi.Release)
	ctx.node = ctx.pred
	l.EmitReleased(p)
}

// HasWaiters implements lockapi.WaiterDetector: with the lock held, the
// tail still naming our own node means nobody enqueued behind us (same
// spirit as the paper's MCS next-pointer and Ticketlock counter checks).
func (l *CLH) HasWaiters(p lockapi.Proc, c lockapi.Ctx) bool {
	return p.Load(&l.tail, lockapi.Relaxed) != c.(*clhCtx).node
}

// Fair implements lockapi.FairnessInfo: the implicit queue is FIFO.
func (l *CLH) Fair() bool { return true }

var (
	_ lockapi.Lock           = (*CLH)(nil)
	_ lockapi.WaiterDetector = (*CLH)(nil)
	_ lockapi.FairnessInfo   = (*CLH)(nil)
	_ lockapi.TryInfo        = (*CLH)(nil)
)
