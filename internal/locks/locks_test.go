package locks

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/topo"
)

// stress runs `workers` goroutines, each performing `iters` critical
// sections incrementing an unprotected counter. Any mutual-exclusion
// violation shows up as a lost update (and as a data race under -race).
func stress(t *testing.T, mk func() lockapi.Lock, workers, iters int) {
	t.Helper()
	l := mk()
	ctxs := make([]lockapi.Ctx, workers)
	for i := range ctxs {
		ctxs[i] = l.NewCtx()
	}
	var counter int
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := lockapi.NewNativeProc(id)
			for i := 0; i < iters; i++ {
				l.Acquire(p, ctxs[id])
				counter++
				l.Release(p, ctxs[id])
			}
		}(w)
	}
	wg.Wait()
	if counter != workers*iters {
		t.Errorf("counter = %d, want %d (mutual exclusion violated)", counter, workers*iters)
	}
}

func TestAllLocksMutualExclusion(t *testing.T) {
	workers := 2 * runtime.GOMAXPROCS(0)
	if workers > 16 {
		workers = 16
	}
	for _, name := range Names() {
		typ := MustType(name)
		t.Run(name, func(t *testing.T) {
			stress(t, typ.New, workers, 2000)
		})
	}
}

func TestAllLocksSingleThreaded(t *testing.T) {
	p := lockapi.NewNativeProc(0)
	for _, name := range Names() {
		typ := MustType(name)
		t.Run(name, func(t *testing.T) {
			l := typ.New()
			ctx := l.NewCtx()
			for i := 0; i < 100; i++ {
				l.Acquire(p, ctx)
				l.Release(p, ctx)
			}
		})
	}
}

// TestThreadObliviousness: a lock acquired by one thread must be releasable
// by another thread using the same context (required for CLoF's
// lock-passing, §4.1.3). Ticket, MCS, CLH and Hemlock all must support this.
func TestThreadObliviousness(t *testing.T) {
	for _, name := range []string{"tkt", "mcs", "clh", "hem", "hem-ctr"} {
		typ := MustType(name)
		t.Run(name, func(t *testing.T) {
			l := typ.New()
			ctxA := l.NewCtx()
			ctxB := l.NewCtx()
			pMain := lockapi.NewNativeProc(0)

			l.Acquire(pMain, ctxA) // thread 0 acquires with ctxA

			// Thread 1 queues up behind us with ctxB.
			acquired := make(chan struct{})
			done := make(chan struct{})
			go func() {
				p := lockapi.NewNativeProc(1)
				l.Acquire(p, ctxB)
				close(acquired)
				l.Release(p, ctxB)
				close(done)
			}()

			// Thread 2 releases with ctxA (not the acquiring thread).
			rel := make(chan struct{})
			go func() {
				p := lockapi.NewNativeProc(2)
				l.Release(p, ctxA)
				close(rel)
			}()
			<-rel
			<-acquired
			<-done
		})
	}
}

func TestTicketHasWaiters(t *testing.T) {
	l := NewTicket()
	p := lockapi.NewNativeProc(0)
	l.Acquire(p, nil)
	if l.HasWaiters(p, nil) {
		t.Error("HasWaiters true with no waiters")
	}
	queued := make(chan struct{})
	done := make(chan struct{})
	go func() {
		p2 := lockapi.NewNativeProc(1)
		// Manually take a ticket so the waiter is visible before blocking.
		close(queued)
		l.Acquire(p2, nil)
		l.Release(p2, nil)
		close(done)
	}()
	<-queued
	// Wait until the waiter's ticket is visible.
	for !l.HasWaiters(p, nil) {
		runtime.Gosched()
	}
	l.Release(p, nil)
	<-done
}

func TestMCSHasWaiters(t *testing.T) {
	l := NewMCS()
	ctxA := l.NewCtx()
	ctxB := l.NewCtx()
	p := lockapi.NewNativeProc(0)
	l.Acquire(p, ctxA)
	if l.HasWaiters(p, ctxA) {
		t.Error("HasWaiters true with empty queue")
	}
	done := make(chan struct{})
	go func() {
		p2 := lockapi.NewNativeProc(1)
		l.Acquire(p2, ctxB)
		l.Release(p2, ctxB)
		close(done)
	}()
	for !l.HasWaiters(p, ctxA) {
		runtime.Gosched()
	}
	l.Release(p, ctxA)
	<-done
}

// TestCLHNodeRecycling checks the node-stealing invariant: after k
// uncontended acquire/release pairs the context's node handle must cycle
// between its own node and the dummy, never aliasing another live node.
func TestCLHNodeRecycling(t *testing.T) {
	l := NewCLH()
	ctx := l.NewCtx().(*clhCtx)
	p := lockapi.NewNativeProc(0)
	seen := map[uint64]bool{}
	for i := 0; i < 10; i++ {
		l.Acquire(p, ctx)
		seen[ctx.node] = true
		l.Release(p, ctx)
	}
	if len(seen) > 2 {
		t.Errorf("uncontended CLH used %d distinct nodes, want <= 2", len(seen))
	}
}

func TestHemlockCTRFlag(t *testing.T) {
	if NewHemlock(true).CTR() != true || NewHemlock(false).CTR() != false {
		t.Error("CTR flag not preserved")
	}
	if NewHemlock(false).id == 0 {
		t.Error("Hemlock id must be non-zero (0 means \"no lock passing\")")
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		typ, ok := ByName(name)
		if !ok {
			t.Fatalf("ByName(%q) failed for a registered name", name)
		}
		l := typ.New()
		if l == nil {
			t.Fatalf("%s: New returned nil", name)
		}
		if lockapi.Fair(l) != typ.Fair {
			t.Errorf("%s: lock fairness %v != registry fairness %v", name, lockapi.Fair(l), typ.Fair)
		}
	}
	if _, ok := ByName("qspinlock"); ok {
		t.Error("ByName accepted an unregistered name")
	}
}

func TestBasicLocksPerArch(t *testing.T) {
	x86 := BasicLocks(topo.X86)
	arm := BasicLocks(topo.ArmV8)
	if len(x86) != 4 || len(arm) != 4 {
		t.Fatalf("BasicLocks must return the paper's 4 locks, got %d/%d", len(x86), len(arm))
	}
	wantNames := []string{"tkt", "mcs", "clh", "hem"}
	for i, want := range wantNames {
		if x86[i].Name != want || arm[i].Name != want {
			t.Errorf("BasicLocks[%d] = %s/%s, want %s", i, x86[i].Name, arm[i].Name, want)
		}
	}
	// The hem entry must have CTR enabled on x86 and disabled on Armv8.
	if !x86[3].New().(*Hemlock).CTR() {
		t.Error("x86 hem must enable CTR")
	}
	if arm[3].New().(*Hemlock).CTR() {
		t.Error("armv8 hem must disable CTR")
	}
	for _, typ := range x86 {
		if !typ.Fair {
			t.Errorf("basic lock %s must be fair (paper only composes fair locks)", typ.Name)
		}
	}
}

// TestAcquireReleaseSequenceProperty: any interleaving of sequential
// acquire/release pairs across a random subset of contexts keeps the lock
// consistent (single-threaded linearization property).
func TestAcquireReleaseSequenceProperty(t *testing.T) {
	p := lockapi.NewNativeProc(0)
	for _, name := range []string{"mcs", "clh", "hem", "tkt"} {
		typ := MustType(name)
		f := func(choices []uint8) bool {
			l := typ.New()
			ctxs := []lockapi.Ctx{l.NewCtx(), l.NewCtx(), l.NewCtx()}
			for _, ch := range choices {
				c := ctxs[int(ch)%len(ctxs)]
				l.Acquire(p, c)
				l.Release(p, c)
			}
			return true // reaching here without hanging is the property
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestMustTypePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustType did not panic on unknown name")
		}
	}()
	MustType("no-such-lock")
}
