package locks

import (
	"runtime"
	"sync"
	"testing"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/topo"
)

func TestQSpinUncontendedFastPath(t *testing.T) {
	l := NewQSpin()
	p := lockapi.NewNativeProc(0)
	ctx := l.NewCtx()
	for i := 0; i < 100; i++ {
		l.Acquire(p, ctx)
		if v := l.word.Raw().Load(); v&qLocked == 0 {
			t.Fatal("locked bit not set while held")
		}
		l.Release(p, ctx)
	}
	if v := l.word.Raw().Load(); v != 0 {
		t.Fatalf("word = %#x after uncontended use, want 0", v)
	}
}

func TestQSpinPendingPath(t *testing.T) {
	// One owner + one waiter must resolve through the pending bit without
	// any queue node traffic.
	l := NewQSpin()
	ctxA, ctxB := l.NewCtx(), l.NewCtx()
	pA := lockapi.NewNativeProc(0)
	l.Acquire(pA, ctxA)
	acquired := make(chan struct{})
	go func() {
		pB := lockapi.NewNativeProc(1)
		l.Acquire(pB, ctxB)
		close(acquired)
		l.Release(pB, ctxB)
	}()
	// Wait until the waiter set the pending bit.
	for l.word.Raw().Load()&qPending == 0 {
		runtime.Gosched()
	}
	l.Release(pA, ctxA)
	<-acquired
}

func TestQSpinDeepContention(t *testing.T) {
	l := NewQSpin()
	const workers, iters = 8, 3000
	ctxs := make([]lockapi.Ctx, workers)
	for i := range ctxs {
		ctxs[i] = l.NewCtx()
	}
	var counter int
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := lockapi.NewNativeProc(id)
			for i := 0; i < iters; i++ {
				l.Acquire(p, ctxs[id])
				counter++
				l.Release(p, ctxs[id])
			}
		}(w)
	}
	wg.Wait()
	if counter != workers*iters {
		t.Fatalf("counter = %d, want %d", counter, workers*iters)
	}
	if v := l.word.Raw().Load(); v != 0 {
		t.Fatalf("word = %#x after quiescence, want 0", v)
	}
}

func TestHBOBasics(t *testing.T) {
	m := topo.Armv8Server()
	l := NewHBO(m)
	p := lockapi.NewNativeProc(0)
	l.Acquire(p, nil)
	// The word must record the owner's NUMA node (+1).
	if v := l.word.Raw().Load(); v != 1 {
		t.Fatalf("word = %d while held by numa 0, want 1", v)
	}
	l.Release(p, nil)

	p2 := lockapi.NewNativeProc(100) // numa 3 on armv8
	l.Acquire(p2, nil)
	if v := l.word.Raw().Load(); v != 1+3 {
		t.Fatalf("word = %d while held by numa 3, want 4", v)
	}
	l.Release(p2, nil)
}

func TestHBOMutualExclusion(t *testing.T) {
	m := topo.Armv8Server()
	l := NewHBO(m)
	const workers, iters = 8, 2000
	var counter int
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := lockapi.NewNativeProc(id * 16)
			for i := 0; i < iters; i++ {
				l.Acquire(p, nil)
				counter++
				l.Release(p, nil)
			}
		}(w)
	}
	wg.Wait()
	if counter != workers*iters {
		t.Fatalf("counter = %d, want %d", counter, workers*iters)
	}
}

func TestUnfairLocksDeclared(t *testing.T) {
	if lockapi.Fair(NewQSpin()) {
		t.Error("qspin must declare unfair (pending-slot bypass)")
	}
	if lockapi.Fair(NewHBO(topo.X86Server())) {
		t.Error("HBO must declare unfair")
	}
}
