package locks

import (
	"github.com/clof-go/clof/internal/lockapi"
)

// hemlockID is the value a releaser writes into its grant field to name the
// lock being passed. The original algorithm uses the lock's address so one
// thread-local context can serve several locks at once; here every context
// belongs to exactly one lock instance (node tables are per-lock), so a
// constant non-zero identity is equivalent — and, unlike a global counter,
// keeps lock construction deterministic, which the model checker's replay
// depends on.
const hemlockID = 1

// Hemlock is Dice & Kogan's compact queue lock (SPAA'21, §2.1 of the CLoF
// paper): an implicit queue like CLH, but the *releaser* writes the lock's
// identity into its own grant field and the successor replies by resetting
// it. Mostly-local spinning with a single word per context.
//
// When ctr is true, the x86-specific Coherence-Traffic-Reduction optimization
// is applied: loads of the grant field become fetch_add(0) and stores become
// compare-and-swap. On MESI/MESIF machines this avoids shared→modified
// upgrades; on Armv8's load-/store-exclusive atomics the competing RMWs
// livelock against each other (paper Fig. 3: throughput near zero).
//
// As the paper notes (§4.1.3), Hemlock becomes thread-oblivious once the
// context is explicit and passed through the normal acquire/release
// interface, which is exactly what lockapi.Lock does.
type Hemlock struct {
	id uint64
	// tail holds the handle of the last enqueued context (0 = unheld).
	tail  lockapi.Cell
	nodes []*hemNode
	ctr   bool
}

type hemNode struct {
	// grant holds the id of a lock being handed over through this context,
	// or 0.
	grant lockapi.Cell
}

type hemCtx struct {
	id uint64
}

// NewHemlock returns an unheld Hemlock. ctr enables the x86 CTR
// optimization (fetch_add(0) loads, CAS stores).
func NewHemlock(ctr bool) *Hemlock {
	return &Hemlock{
		id:    hemlockID,
		nodes: make([]*hemNode, 1, 8), // slot 0 = nil
		ctr:   ctr,
	}
}

// CTR reports whether the coherence-traffic-reduction optimization is on.
func (l *Hemlock) CTR() bool { return l.ctr }

// NewCtx implements lockapi.Lock. Only safe during single-threaded setup.
func (l *Hemlock) NewCtx() lockapi.Ctx {
	l.nodes = append(l.nodes, &hemNode{})
	return &hemCtx{id: uint64(len(l.nodes) - 1)}
}

func (l *Hemlock) node(h uint64) *hemNode { return l.nodes[h] }

// loadGrant reads a grant field; with CTR it is a fetch_add(0), which takes
// the line exclusive instead of shared.
func (l *Hemlock) loadGrant(p lockapi.Proc, c *lockapi.Cell, o lockapi.Order) uint64 {
	if l.ctr {
		return p.Add(c, 0, o)
	}
	return p.Load(c, o)
}

// storeGrant writes a grant field; with CTR it is a CAS loop. The loop must
// not call Spin: both callers CAS against a value the grant protocol
// guarantees is current (the handover field is quiescent between the two
// parties), so a failed CAS is already a protocol violation and no other
// thread will ever change the cell — Spin would make await-collapsing
// backends block forever (see lockapi.Proc.Spin).
func (l *Hemlock) storeGrant(p lockapi.Proc, c *lockapi.Cell, old, v uint64, o lockapi.Order) {
	if l.ctr {
		for !p.CAS(c, old, v, o) {
		}
		return
	}
	p.Store(c, v, o)
}

// Acquire implements lockapi.Lock.
func (l *Hemlock) Acquire(p lockapi.Proc, c lockapi.Ctx) {
	ctx := c.(*hemCtx)
	prev := p.Swap(&l.tail, ctx.id, lockapi.AcqRel)
	if prev == 0 {
		return
	}
	pg := &l.node(prev).grant
	// Wait for the predecessor to pass this lock, then reply by resetting
	// its grant so the predecessor may reuse its context.
	for l.loadGrant(p, pg, lockapi.Acquire) != l.id {
		p.Spin()
	}
	l.storeGrant(p, pg, l.id, 0, lockapi.Release)
}

// TryAcquire implements lockapi.TryLocker: succeed only when the implicit
// queue is empty. A failed CAS enqueued nothing — the grant protocol is
// never entered.
func (l *Hemlock) TryAcquire(p lockapi.Proc, c lockapi.Ctx) bool {
	return p.CAS(&l.tail, 0, c.(*hemCtx).id, lockapi.AcqRel)
}

// Release implements lockapi.Lock.
func (l *Hemlock) Release(p lockapi.Proc, c lockapi.Ctx) {
	ctx := c.(*hemCtx)
	if p.CAS(&l.tail, ctx.id, 0, lockapi.Release) {
		return // no successor
	}
	g := &l.node(ctx.id).grant
	// Pass the lock by naming it in our grant; the successor replies by
	// resetting the field, after which our context is private again.
	l.storeGrant(p, g, 0, l.id, lockapi.Release)
	for l.loadGrant(p, g, lockapi.Acquire) != 0 {
		p.Spin()
	}
}

// HasWaiters implements lockapi.WaiterDetector: with the lock held, the
// tail still naming our own context means nobody enqueued behind us.
func (l *Hemlock) HasWaiters(p lockapi.Proc, c lockapi.Ctx) bool {
	return p.Load(&l.tail, lockapi.Relaxed) != c.(*hemCtx).id
}

// Fair implements lockapi.FairnessInfo: the implicit queue is FIFO.
func (l *Hemlock) Fair() bool { return true }

var (
	_ lockapi.Lock           = (*Hemlock)(nil)
	_ lockapi.WaiterDetector = (*Hemlock)(nil)
	_ lockapi.FairnessInfo   = (*Hemlock)(nil)
	_ lockapi.TryLocker      = (*Hemlock)(nil)
)
