package locks

import (
	"github.com/clof-go/clof/internal/lockapi"
)

// QSpin is a simplified Linux-qspinlock (the paper cites it among the ten
// NUMA-oblivious locks verified with VSync [32]): a compact lock word with
// locked and pending bits backed by an MCS queue. The first contender spins
// on the pending bit instead of enqueueing, so light contention never
// touches queue nodes; deeper contention degrades gracefully to MCS
// behavior. Fair beyond the single pending slot.
//
// Lock-word encoding: bit0 = locked, bit1 = pending, bits 2+ = MCS tail
// handle (shifted by tailShift).
type QSpin struct {
	word  lockapi.Cell
	nodes []*qspinNode
}

const (
	qLocked    = 1 << 0
	qPending   = 1 << 1
	qTailShift = 2
)

type qspinNode struct {
	next   lockapi.Cell
	locked lockapi.Cell
}

type qspinCtx struct {
	id uint64
}

// NewQSpin returns an unheld qspinlock.
func NewQSpin() *QSpin {
	return &QSpin{nodes: make([]*qspinNode, 1, 8)} // slot 0 = nil
}

// NewCtx implements lockapi.Lock. Only safe during single-threaded setup.
func (l *QSpin) NewCtx() lockapi.Ctx {
	n := &qspinNode{}
	lockapi.Colocate(&n.next, &n.locked)
	l.nodes = append(l.nodes, n)
	return &qspinCtx{id: uint64(len(l.nodes) - 1)}
}

func (l *QSpin) node(h uint64) *qspinNode { return l.nodes[h] }

// Acquire implements lockapi.Lock.
func (l *QSpin) Acquire(p lockapi.Proc, c lockapi.Ctx) {
	// Uncontended fast path: 0 -> locked.
	if p.CAS(&l.word, 0, qLocked, lockapi.Acquire) {
		return
	}
	// Pending path: if only the owner is present, become the single
	// spinning waiter via the pending bit.
	for {
		v := p.Load(&l.word, lockapi.Relaxed)
		if v == 0 {
			if p.CAS(&l.word, 0, qLocked, lockapi.Acquire) {
				return
			}
			continue
		}
		if v == qLocked { // owner only, no pending, no queue
			if !p.CAS(&l.word, qLocked, qLocked|qPending, lockapi.Acquire) {
				continue
			}
			// Spin until the owner clears the locked bit, then claim it.
			for {
				v = p.Load(&l.word, lockapi.Acquire)
				if v&qLocked == 0 {
					// locked clear; swap pending for locked (tail bits may
					// have appeared meanwhile and must be preserved).
					if p.CAS(&l.word, v, (v&^qPending)|qLocked, lockapi.Acquire) {
						return
					}
					continue
				}
				p.Spin()
			}
		}
		break // pending taken or queue present: enqueue
	}
	l.enqueue(p, c.(*qspinCtx).id)
}

// enqueue is the MCS slow path.
func (l *QSpin) enqueue(p lockapi.Proc, me uint64) {
	n := l.node(me)
	p.Store(&n.next, 0, lockapi.Relaxed)
	p.Store(&n.locked, 1, lockapi.Relaxed)

	// Publish ourselves as the tail (preserving locked/pending bits).
	// Plain CAS-retry loop: a failed CAS means the word just changed, so
	// retry immediately (no Spin — Spin means "wait for a change").
	var prevTail uint64
	for {
		v := p.Load(&l.word, lockapi.Relaxed)
		nv := (v & (qLocked | qPending)) | (me << qTailShift)
		if p.CAS(&l.word, v, nv, lockapi.AcqRel) {
			prevTail = v >> qTailShift
			break
		}
	}
	if prevTail != 0 {
		// Wait for our predecessor to pass queue headship.
		p.Store(&l.node(prevTail).next, me, lockapi.Release)
		for p.Load(&n.locked, lockapi.Acquire) == 1 {
			p.Spin()
		}
	}
	// Queue head: wait for owner AND pending waiter to drain, then take
	// the lock, removing ourselves from the tail if we are last.
	for {
		v := p.Load(&l.word, lockapi.Acquire)
		if v&(qLocked|qPending) != 0 {
			p.Spin()
			continue
		}
		if v>>qTailShift == me {
			// We are the last queued waiter: clear the tail too.
			if p.CAS(&l.word, v, qLocked, lockapi.Acquire) {
				return
			}
			continue
		}
		// More waiters behind us: take the lock, keep the tail, and hand
		// queue headship to our successor.
		if p.CAS(&l.word, v, v|qLocked, lockapi.Acquire) {
			for {
				if succ := p.Load(&n.next, lockapi.Acquire); succ != 0 {
					p.Store(&l.node(succ).locked, 0, lockapi.Release)
					return
				}
				p.Spin()
			}
		}
	}
}

// TryAcquire implements lockapi.TryLocker: the uncontended fast path only
// (word fully zero — no owner, no pending waiter, no queue).
func (l *QSpin) TryAcquire(p lockapi.Proc, _ lockapi.Ctx) bool {
	return p.CAS(&l.word, 0, qLocked, lockapi.Acquire)
}

// Release implements lockapi.Lock: clear the locked bit (pending/queued
// waiters claim it themselves).
func (l *QSpin) Release(p lockapi.Proc, _ lockapi.Ctx) {
	// CAS-retry loop (pending/tail bits may change concurrently); a failed
	// CAS means fresh state is already there, so no Spin.
	for {
		v := p.Load(&l.word, lockapi.Relaxed)
		if p.CAS(&l.word, v, v&^uint64(qLocked), lockapi.Release) {
			return
		}
	}
}

// Fair implements lockapi.FairnessInfo: the pending slot admits one bypass,
// so strict FIFO does not hold (like the real qspinlock).
func (l *QSpin) Fair() bool { return false }

var (
	_ lockapi.Lock         = (*QSpin)(nil)
	_ lockapi.FairnessInfo = (*QSpin)(nil)
	_ lockapi.TryLocker    = (*QSpin)(nil)
)
