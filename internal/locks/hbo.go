package locks

import (
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/topo"
)

// Default HBO tuning. LocalDelay/RemoteDelay are the backoff bases in Spin()
// hints; MaxDelay caps any single pause. The historical (pre-option)
// constants were localDelay=2, remoteDelay=16 with an implicit cap of
// 64*base, which these defaults reproduce: max(64*2, 64*16) = 1024.
const (
	DefaultHBOLocalDelay  = 2
	DefaultHBORemoteDelay = 16
	DefaultHBOMaxDelay    = 1024
)

// HBO is the Hierarchical Backoff lock of Radovic and Hagersten (HPCA'03),
// the earliest NUMA-aware lock the paper's related work cites [35]: a
// test-and-set lock whose word records the owner's NUMA node, and whose
// waiters back off proportionally to their distance from the owner — remote
// waiters back off longer, so the lock statistically stays within a node.
// Unfair (no admission order), like the original.
type HBO struct {
	mach *topo.Machine
	// word holds 0 when free, else 1 + the owner's NUMA node.
	word lockapi.Cell
	// localDelay/remoteDelay are the backoff bases in Spin() hints;
	// maxDelay bounds a single pause regardless of base.
	localDelay, remoteDelay, maxDelay int
}

// HBOOption tunes an HBO lock at construction time.
type HBOOption func(*HBO)

// WithHBOLocalDelay sets the backoff base used when the observed owner is on
// the waiter's own NUMA node.
func WithHBOLocalDelay(d int) HBOOption {
	return func(l *HBO) { l.localDelay = d }
}

// WithHBORemoteDelay sets the backoff base used when the observed owner is
// on a different NUMA node.
func WithHBORemoteDelay(d int) HBOOption {
	return func(l *HBO) { l.remoteDelay = d }
}

// WithHBOMaxDelay caps the spins of a single backoff pause. The effective
// per-pause cap is min(64*base, MaxDelay), so lowering MaxDelay below
// 64*RemoteDelay shortens the worst-case remote pause.
func WithHBOMaxDelay(d int) HBOOption {
	return func(l *HBO) { l.maxDelay = d }
}

// NewHBO returns an unheld hierarchical backoff lock for machine m.
func NewHBO(m *topo.Machine, opts ...HBOOption) *HBO {
	l := &HBO{
		mach:        m,
		localDelay:  DefaultHBOLocalDelay,
		remoteDelay: DefaultHBORemoteDelay,
		maxDelay:    DefaultHBOMaxDelay,
	}
	for _, o := range opts {
		o(l)
	}
	if l.localDelay < 1 {
		l.localDelay = 1
	}
	if l.remoteDelay < 1 {
		l.remoteDelay = 1
	}
	if l.maxDelay < 1 {
		l.maxDelay = 1
	}
	return l
}

// Delays reports the configured (local, remote, max) backoff parameters.
func (l *HBO) Delays() (local, remote, max int) {
	return l.localDelay, l.remoteDelay, l.maxDelay
}

// NewCtx implements lockapi.Lock; HBO needs no context.
func (l *HBO) NewCtx() lockapi.Ctx { return nil }

// capFor bounds one pause given the observed owner's backoff base.
func (l *HBO) capFor(base int) int {
	c := 64 * base
	if c > l.maxDelay {
		c = l.maxDelay
	}
	return c
}

// Acquire implements lockapi.Lock.
func (l *HBO) Acquire(p lockapi.Proc, _ lockapi.Ctx) {
	myNuma := uint64(l.mach.CohortOf(p.ID(), topo.NUMA))
	bo := lockapi.ExpBackoff{Base: l.localDelay}
	for {
		if p.CAS(&l.word, 0, 1+myNuma, lockapi.Acquire) {
			return
		}
		owner := p.Load(&l.word, lockapi.Relaxed)
		if owner == 0 {
			continue // released under us; retry immediately
		}
		// Distance-proportional backoff: remote waiters yield the ground.
		base := l.localDelay
		if owner-1 != myNuma {
			base = l.remoteDelay
		}
		bo.Cap = l.capFor(base)
		bo.Pause(p)
	}
}

// TryAcquire implements lockapi.TryLocker: the CAS fast path, no backoff.
func (l *HBO) TryAcquire(p lockapi.Proc, _ lockapi.Ctx) bool {
	myNuma := uint64(l.mach.CohortOf(p.ID(), topo.NUMA))
	return p.CAS(&l.word, 0, 1+myNuma, lockapi.Acquire)
}

// Release implements lockapi.Lock.
func (l *HBO) Release(p lockapi.Proc, _ lockapi.Ctx) {
	p.Store(&l.word, 0, lockapi.Release)
}

// Fair implements lockapi.FairnessInfo.
func (l *HBO) Fair() bool { return false }

var (
	_ lockapi.Lock         = (*HBO)(nil)
	_ lockapi.FairnessInfo = (*HBO)(nil)
	_ lockapi.TryLocker    = (*HBO)(nil)
)
