package locks

import (
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/topo"
)

// HBO is the Hierarchical Backoff lock of Radovic and Hagersten (HPCA'03),
// the earliest NUMA-aware lock the paper's related work cites [35]: a
// test-and-set lock whose word records the owner's NUMA node, and whose
// waiters back off proportionally to their distance from the owner — remote
// waiters back off longer, so the lock statistically stays within a node.
// Unfair (no admission order), like the original.
type HBO struct {
	mach *topo.Machine
	// word holds 0 when free, else 1 + the owner's NUMA node.
	word lockapi.Cell
	// localDelay/remoteDelay are the backoff bases in Spin() hints.
	localDelay, remoteDelay int
}

// NewHBO returns an unheld hierarchical backoff lock for machine m.
func NewHBO(m *topo.Machine) *HBO {
	return &HBO{mach: m, localDelay: 2, remoteDelay: 16}
}

// NewCtx implements lockapi.Lock; HBO needs no context.
func (l *HBO) NewCtx() lockapi.Ctx { return nil }

// Acquire implements lockapi.Lock.
func (l *HBO) Acquire(p lockapi.Proc, _ lockapi.Ctx) {
	myNuma := uint64(l.mach.CohortOf(p.ID(), topo.NUMA))
	delay := l.localDelay
	for {
		if p.CAS(&l.word, 0, 1+myNuma, lockapi.Acquire) {
			return
		}
		owner := p.Load(&l.word, lockapi.Relaxed)
		if owner == 0 {
			continue // released under us; retry immediately
		}
		// Distance-proportional backoff: remote waiters yield the ground.
		base := l.localDelay
		if owner-1 != myNuma {
			base = l.remoteDelay
		}
		for i := 0; i < delay; i++ {
			p.Spin()
		}
		if delay < 64*base {
			delay *= 2
		}
	}
}

// Release implements lockapi.Lock.
func (l *HBO) Release(p lockapi.Proc, _ lockapi.Ctx) {
	p.Store(&l.word, 0, lockapi.Release)
}

// Fair implements lockapi.FairnessInfo.
func (l *HBO) Fair() bool { return false }

var (
	_ lockapi.Lock         = (*HBO)(nil)
	_ lockapi.FairnessInfo = (*HBO)(nil)
)
