package workload

import (
	"testing"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/topo"
)

func mcs() lockapi.Lock { return locks.NewMCS() }

func TestRunBasics(t *testing.T) {
	cfg := LevelDB(topo.Armv8Server(), 8)
	res, err := Run(mcs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total == 0 || res.ThroughputOpsPerUs() <= 0 {
		t.Fatalf("no progress: %+v", res)
	}
	if len(res.PerThread) != 8 {
		t.Fatalf("PerThread = %d entries", len(res.PerThread))
	}
	if j := res.Jain(); j < 0.5 {
		t.Errorf("MCS Jain index %.2f unexpectedly unfair", j)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := LevelDB(topo.X86Server(), 16)
	a, err1 := Run(mcs, cfg)
	b, err2 := Run(mcs, cfg)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if a.Total != b.Total || a.Events != b.Events {
		t.Errorf("identical configs diverged: %d/%d vs %d/%d", a.Total, a.Events, b.Total, b.Events)
	}
}

func TestSeedDecorrelates(t *testing.T) {
	cfg := LevelDB(topo.X86Server(), 16)
	cfg2 := cfg
	cfg2.Seed = 99
	a, _ := Run(mcs, cfg)
	b, _ := Run(mcs, cfg2)
	if a.Events == b.Events && a.Total == b.Total {
		t.Error("different seeds produced identical runs")
	}
}

func TestExplicitCPUs(t *testing.T) {
	m := topo.Armv8Server()
	cfg := LevelDB(m, 0)
	cfg.CPUs = []int{0, 1, 2, 3} // one cache group
	res, err := Run(mcs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// All handovers must stay within the cache group.
	for lvl, c := range res.HandoverLevels {
		if topo.Level(lvl) > topo.CacheGroup && c > 0 {
			t.Errorf("handover at level %v despite single-group pinning", topo.Level(lvl))
		}
	}
}

// TestLevelDBShape: the preset must reproduce the paper's curve shape —
// throughput rises from 1 thread, saturates, and a NUMA-oblivious lock
// declines at full machine contention below its peak.
func TestLevelDBShape(t *testing.T) {
	m := topo.Armv8Server()
	tput := func(n int) float64 {
		res, err := Run(mcs, LevelDB(m, n))
		if err != nil {
			t.Fatal(err)
		}
		return res.ThroughputOpsPerUs()
	}
	t1, t8, t128 := tput(1), tput(8), tput(128)
	t.Logf("mcs leveldb: 1→%.2f 8→%.2f 128→%.2f iter/µs", t1, t8, t128)
	if t1 < 0.15 || t1 > 0.8 {
		t.Errorf("single-thread throughput %.2f outside the paper's ballpark (~0.35)", t1)
	}
	if t8 < 2*t1 {
		t.Errorf("no scaling: 8 threads %.2f vs 1 thread %.2f", t8, t1)
	}
	if t128 >= t8 {
		t.Errorf("MCS did not decline at full contention: 128→%.2f vs 8→%.2f", t128, t8)
	}
}

// TestKyotoMuchSlower: Kyoto's long critical sections must land an order of
// magnitude below LevelDB (paper Fig. 10's 0.1 vs 1.4 axis).
func TestKyotoMuchSlower(t *testing.T) {
	m := topo.X86Server()
	ldb, err := Run(mcs, LevelDB(m, 16))
	if err != nil {
		t.Fatal(err)
	}
	kyo, err := Run(mcs, Kyoto(m, 16))
	if err != nil {
		t.Fatal(err)
	}
	if kyo.ThroughputOpsPerUs() > ldb.ThroughputOpsPerUs()/4 {
		t.Errorf("kyoto %.3f not well below leveldb %.3f", kyo.ThroughputOpsPerUs(), ldb.ThroughputOpsPerUs())
	}
}

func TestPingPongDistance(t *testing.T) {
	m := topo.Armv8Server()
	group := PingPong(m, 0, 1, 100_000)
	sys := PingPong(m, 0, 64, 100_000)
	if group <= sys || sys <= 0 {
		t.Errorf("ping-pong not distance-sensitive: group %.2f, system %.2f", group, sys)
	}
	if PingPong(m, 3, 3, 100_000) != 0 {
		t.Error("same-CPU pair must report 0 (diagonal)")
	}
}

func TestRunRejectsBadThreads(t *testing.T) {
	if _, err := Run(mcs, LevelDB(topo.X86Server(), 1000)); err == nil {
		t.Error("oversubscribed placement accepted")
	}
}
