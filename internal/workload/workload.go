// Package workload drives lock benchmarks on the NUMA simulator: the
// two-thread ping-pong counter of §3.1 (hierarchy discovery) and the
// critical-section workloads that stand in for the paper's LevelDB
// readrandom and Kyoto Cabinet benchmarks (DESIGN.md §1).
//
// A workload iteration is: acquire the lock, touch the protected data cells,
// do critical-section think time, release, do out-of-lock think time. The
// presets' constants are calibrated so the simulated curves have the shape
// (not the absolute values) of the paper's figures: single-thread
// throughput, the contention level where throughput saturates, and the
// high-contention decline of NUMA-oblivious locks.
package workload

import (
	"fmt"

	"github.com/clof-go/clof/internal/faultinject"
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/memsim"
	"github.com/clof-go/clof/internal/topo"
)

// LockFactory builds a fresh lock instance for one run.
type LockFactory func() lockapi.Lock

// Config parameterizes a simulated contention run.
type Config struct {
	// Machine is the simulated platform.
	Machine *topo.Machine
	// Threads is the contention level; ignored when CPUs is set.
	Threads int
	// CPUs optionally pins threads explicitly (cohort experiments, Fig. 3);
	// when nil, the paper's placement policy (topo.Placement) is used.
	CPUs []int
	// Horizon is the virtual duration in nanoseconds.
	Horizon int64
	// CSWork / NCSWork are the critical/non-critical think times (ns).
	// NCSWork is randomized ±50% per iteration to avoid lockstep cycles.
	CSWork, NCSWork int64
	// DataCells is the number of protected data cells written per critical
	// section.
	DataCells int
	// Seed makes the run reproducible; different seeds decorrelate runs.
	Seed uint64
	// JitterNS is per-operation timing jitter (0 = off).
	JitterNS int64
	// CPUSpeed optionally scales per-CPU compute time (big.LITTLE).
	CPUSpeed []float64
	// Faults, when non-nil, runs the workload under the given fault plan
	// (internal/faultinject): lock-holder preemptions, stalls, CS jitter,
	// and abandoned bounded acquires, all derived deterministically from
	// Seed. nil reproduces the unfaulted run exactly (no extra randomness
	// is drawn and no operation changes).
	Faults *faultinject.Plan
	// Trace, when non-nil, receives every committed memory operation
	// (memsim.Config.Trace) — the raw feed of internal/obs traffic counters
	// and cmd/clof-trace timelines.
	Trace func(memsim.TraceEvent)
	// Observer, when non-nil, receives the lock's protocol edges: the lock
	// is attached via lockapi.Instrument before any context is created, so
	// natively instrumented locks report exact grant instants and everything
	// else is wrapped at the call boundary. Observation never changes the
	// simulated schedule (edges issue no memory operations).
	Observer lockapi.Observer
}

// Result summarizes a run.
type Result struct {
	// Total completed iterations and the per-thread split.
	Total     uint64
	PerThread []uint64
	// HandoverLevels histograms lock handovers by the sharing level of
	// consecutive owners (locality).
	HandoverLevels [5]uint64
	// Events / Now are simulator statistics.
	Events uint64
	Now    int64
	// ExclusionViolations counts critical sections entered while another
	// thread was still inside (must be 0 for a correct lock).
	ExclusionViolations uint64

	// Robustness statistics (all zero when Config.Faults is nil).
	//
	// Abandoned counts iterations whose bounded TryAcquire gave up;
	// Preemptions counts injected lock-holder preemptions; Stalls counts
	// injected out-of-lock stalls. MaxHandoverGapNS is the longest virtual
	// time between consecutive successful acquisitions across all threads —
	// the watchdog's max-handover-latency signal (a preempted holder shows
	// up here as a gap of roughly the preemption length).
	Abandoned        uint64
	Preemptions      uint64
	Stalls           uint64
	MaxHandoverGapNS int64
}

// ThroughputOpsPerUs returns iterations per virtual microsecond — the
// paper's y-axis unit ("iter./µs").
func (r Result) ThroughputOpsPerUs() float64 {
	if r.Now == 0 {
		return 0
	}
	return float64(r.Total) * 1000 / float64(r.Now)
}

// Starved returns the indices of threads that completed fewer than
// minShare of the mean per-thread iterations (e.g. minShare 0.05 flags
// threads below 5% of the mean). A non-empty result under a fault plan with
// a fair lock indicates starvation the lock should have prevented.
func (r Result) Starved(minShare float64) []int {
	n := len(r.PerThread)
	if n == 0 || r.Total == 0 {
		return nil
	}
	mean := float64(r.Total) / float64(n)
	var out []int
	for i, c := range r.PerThread {
		if float64(c) < minShare*mean {
			out = append(out, i)
		}
	}
	return out
}

// Jain returns Jain's fairness index of the per-thread counts.
func (r Result) Jain() float64 {
	var sum, sq float64
	for _, c := range r.PerThread {
		sum += float64(c)
		sq += float64(c) * float64(c)
	}
	if sq == 0 {
		return 0
	}
	n := float64(len(r.PerThread))
	return sum * sum / (n * sq)
}

// Run executes the workload and returns its result; it reports an error on
// deadlock (which would indicate a broken lock).
func Run(mk LockFactory, cfg Config) (Result, error) {
	cpus := cfg.CPUs
	if cpus == nil {
		var err error
		cpus, err = topo.Placement(cfg.Machine, cfg.Threads)
		if err != nil {
			return Result{}, err
		}
	}
	n := len(cpus)
	m := memsim.New(memsim.Config{Machine: cfg.Machine, Seed: cfg.Seed, JitterNS: cfg.JitterNS, CPUSpeed: cfg.CPUSpeed, Trace: cfg.Trace})
	l := lockapi.Instrument(mk(), cfg.Observer)
	ctxs := make([]lockapi.Ctx, n)
	for i := range ctxs {
		ctxs[i] = l.NewCtx()
	}
	nData := cfg.DataCells
	if nData <= 0 {
		nData = 4
	}
	data := make([]lockapi.Cell, nData)

	// Compile the fault plan once per run; all of its randomness derives
	// from cfg.Seed, so fault timing is as reproducible as the simulation.
	var sched *faultinject.Schedule
	if cfg.Faults != nil {
		sched = faultinject.Compile(cfg.Faults, cfg.Seed, cpus)
	}
	tryLock, _ := l.(lockapi.TryLocker)
	canTry := lockapi.SupportsTry(l)

	res := Result{PerThread: make([]uint64, n)}
	lastOwner := -1
	lastAcqAt := int64(-1)
	held := false
	for i := 0; i < n; i++ {
		i := i
		m.Spawn(cpus[i], func(p *memsim.Proc) {
			// Randomized start offset: real threads never arrive at a lock
			// in perfect CPU order, and FIFO queues would keep that
			// artificially local cycle forever.
			p.Work(1 + p.Rand().Int63n(1000))
			for !p.Expired() {
				// The zero Decision injects nothing, so the unfaulted run
				// executes the exact operation sequence it always did.
				var d faultinject.Decision
				if sched != nil {
					d = sched.Next(p.CPU())
				}
				if d.PreStall > 0 {
					res.Stalls++
					p.Preempt(d.PreStall)
				}
				if d.Abandon && canTry && tryLock != nil {
					// Bounded acquire with Work-based backoff. The generic
					// lockapi.AcquireBounded pauses with Spin(), which the
					// simulator may park on a line the releaser never
					// writes; charging the pause as local work keeps the
					// thread live and the cost deterministic.
					acquired := false
					backoff := int64(memsim.DefaultLatency(cfg.Machine.Arch).Hit) * lockapi.DefaultBackoffCap
					for a := 0; a < d.AbandonAttempts; a++ {
						if tryLock.TryAcquire(p, ctxs[i]) {
							acquired = true
							break
						}
						if a < d.AbandonAttempts-1 {
							p.Work(backoff)
							backoff *= 2
						}
					}
					if !acquired {
						res.Abandoned++
						if cfg.NCSWork > 0 {
							p.Work(cfg.NCSWork/2 + p.Rand().Int63n(cfg.NCSWork+1))
						}
						continue
					}
				} else {
					l.Acquire(p, ctxs[i])
				}
				if held {
					res.ExclusionViolations++
				}
				held = true
				if now := p.Time(); lastAcqAt >= 0 {
					if gap := now - lastAcqAt; gap > res.MaxHandoverGapNS {
						res.MaxHandoverGapNS = gap
					}
					lastAcqAt = now
				} else {
					lastAcqAt = now
				}
				if lastOwner >= 0 && lastOwner != p.CPU() {
					res.HandoverLevels[cfg.Machine.ShareLevel(lastOwner, p.CPU())]++
				}
				lastOwner = p.CPU()
				for d := range data {
					p.Add(&data[d], 1, lockapi.Relaxed)
				}
				if cfg.CSWork > 0 {
					p.Work(cfg.CSWork)
				}
				if d.CSJitter > 0 {
					p.Work(d.CSJitter)
				}
				if d.MidCS > 0 {
					// Lock-holder preemption: the OS deschedules us while
					// every waiter convoys behind the held lock.
					res.Preemptions++
					p.Preempt(d.MidCS)
				}
				held = false
				l.Release(p, ctxs[i])
				if cfg.NCSWork > 0 {
					p.Work(cfg.NCSWork/2 + p.Rand().Int63n(cfg.NCSWork+1))
				}
				res.PerThread[i]++
			}
		})
	}
	r := m.Run(cfg.Horizon)
	if r.Deadlock {
		return Result{}, fmt.Errorf("workload: deadlock, parked CPUs %v", r.ParkedCPUs)
	}
	for _, c := range res.PerThread {
		res.Total += c
	}
	res.Events = r.Events
	res.Now = r.Now
	return res, nil
}

// DefaultHorizon is the virtual duration used by the scripted benchmark
// (the paper's quick pass uses 1s wall time per point; 300µs of simulated
// time yields comparably stable medians at a fraction of the cost).
const DefaultHorizon = 300_000

// LevelDB returns the simulated LevelDB-readrandom preset: a short critical
// section (LevelDB holds its DB mutex only around memtable/version state)
// and ~2.4µs of out-of-lock read work, giving the paper's shape — ~0.35
// iter/µs single-threaded, saturation around 8–16 threads.
func LevelDB(m *topo.Machine, threads int) Config {
	return Config{
		Machine:   m,
		Threads:   threads,
		Horizon:   DefaultHorizon,
		CSWork:    300,
		NCSWork:   2400,
		DataCells: 4,
		JitterNS:  2,
	}
}

// Kyoto returns the simulated Kyoto-Cabinet preset: the global lock is held
// for the whole hash-table operation (long critical section), giving the
// paper's ~10× lower absolute throughput.
func Kyoto(m *topo.Machine, threads int) Config {
	return Config{
		Machine:   m,
		Threads:   threads,
		Horizon:   DefaultHorizon * 4,
		CSWork:    8000,
		NCSWork:   32000,
		DataCells: 12,
		JitterNS:  2,
	}
}

// PingPong is the §3.1 hierarchy-discovery microbenchmark: two threads
// alternate incrementing a shared counter for the horizon; the return value
// is increments per microsecond. Only the ratio between CPU placements
// matters (Fig. 1, Table 2).
func PingPong(m *topo.Machine, cpuA, cpuB int, horizon int64) float64 {
	if cpuA == cpuB {
		// Same CPU: the paper's diagonal. Two contexts cannot run on one
		// CPU in the simulator; the real machine's diagonal throughput is
		// minimal (reschedule-bound), so report 0.
		return 0
	}
	sim := memsim.New(memsim.Config{Machine: m})
	var counter lockapi.Cell
	var incs uint64
	turn := func(p *memsim.Proc, parity uint64) {
		for !p.Expired() {
			for p.Load(&counter, lockapi.Acquire)%2 != parity {
				p.Spin()
				if p.Expired() {
					return
				}
			}
			p.Add(&counter, 1, lockapi.AcqRel)
			incs++
		}
	}
	sim.Spawn(cpuA, func(p *memsim.Proc) { turn(p, 0) })
	sim.Spawn(cpuB, func(p *memsim.Proc) { turn(p, 1) })
	r := sim.Run(horizon)
	if r.Now == 0 {
		return 0
	}
	return float64(incs) * 1000 / float64(r.Now)
}
