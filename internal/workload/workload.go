// Package workload drives lock benchmarks on the NUMA simulator: the
// two-thread ping-pong counter of §3.1 (hierarchy discovery) and the
// critical-section workloads that stand in for the paper's LevelDB
// readrandom and Kyoto Cabinet benchmarks (DESIGN.md §1).
//
// A workload iteration is: acquire the lock, touch the protected data cells,
// do critical-section think time, release, do out-of-lock think time. The
// presets' constants are calibrated so the simulated curves have the shape
// (not the absolute values) of the paper's figures: single-thread
// throughput, the contention level where throughput saturates, and the
// high-contention decline of NUMA-oblivious locks.
package workload

import (
	"fmt"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/memsim"
	"github.com/clof-go/clof/internal/topo"
)

// LockFactory builds a fresh lock instance for one run.
type LockFactory func() lockapi.Lock

// Config parameterizes a simulated contention run.
type Config struct {
	// Machine is the simulated platform.
	Machine *topo.Machine
	// Threads is the contention level; ignored when CPUs is set.
	Threads int
	// CPUs optionally pins threads explicitly (cohort experiments, Fig. 3);
	// when nil, the paper's placement policy (topo.Placement) is used.
	CPUs []int
	// Horizon is the virtual duration in nanoseconds.
	Horizon int64
	// CSWork / NCSWork are the critical/non-critical think times (ns).
	// NCSWork is randomized ±50% per iteration to avoid lockstep cycles.
	CSWork, NCSWork int64
	// DataCells is the number of protected data cells written per critical
	// section.
	DataCells int
	// Seed makes the run reproducible; different seeds decorrelate runs.
	Seed uint64
	// JitterNS is per-operation timing jitter (0 = off).
	JitterNS int64
	// CPUSpeed optionally scales per-CPU compute time (big.LITTLE).
	CPUSpeed []float64
}

// Result summarizes a run.
type Result struct {
	// Total completed iterations and the per-thread split.
	Total     uint64
	PerThread []uint64
	// HandoverLevels histograms lock handovers by the sharing level of
	// consecutive owners (locality).
	HandoverLevels [5]uint64
	// Events / Now are simulator statistics.
	Events uint64
	Now    int64
	// ExclusionViolations counts critical sections entered while another
	// thread was still inside (must be 0 for a correct lock).
	ExclusionViolations uint64
}

// ThroughputOpsPerUs returns iterations per virtual microsecond — the
// paper's y-axis unit ("iter./µs").
func (r Result) ThroughputOpsPerUs() float64 {
	if r.Now == 0 {
		return 0
	}
	return float64(r.Total) * 1000 / float64(r.Now)
}

// Jain returns Jain's fairness index of the per-thread counts.
func (r Result) Jain() float64 {
	var sum, sq float64
	for _, c := range r.PerThread {
		sum += float64(c)
		sq += float64(c) * float64(c)
	}
	if sq == 0 {
		return 0
	}
	n := float64(len(r.PerThread))
	return sum * sum / (n * sq)
}

// Run executes the workload and returns its result; it reports an error on
// deadlock (which would indicate a broken lock).
func Run(mk LockFactory, cfg Config) (Result, error) {
	cpus := cfg.CPUs
	if cpus == nil {
		var err error
		cpus, err = topo.Placement(cfg.Machine, cfg.Threads)
		if err != nil {
			return Result{}, err
		}
	}
	n := len(cpus)
	m := memsim.New(memsim.Config{Machine: cfg.Machine, Seed: cfg.Seed, JitterNS: cfg.JitterNS, CPUSpeed: cfg.CPUSpeed})
	l := mk()
	ctxs := make([]lockapi.Ctx, n)
	for i := range ctxs {
		ctxs[i] = l.NewCtx()
	}
	nData := cfg.DataCells
	if nData <= 0 {
		nData = 4
	}
	data := make([]lockapi.Cell, nData)

	res := Result{PerThread: make([]uint64, n)}
	lastOwner := -1
	held := false
	for i := 0; i < n; i++ {
		i := i
		m.Spawn(cpus[i], func(p *memsim.Proc) {
			// Randomized start offset: real threads never arrive at a lock
			// in perfect CPU order, and FIFO queues would keep that
			// artificially local cycle forever.
			p.Work(1 + p.Rand().Int63n(1000))
			for !p.Expired() {
				l.Acquire(p, ctxs[i])
				if held {
					res.ExclusionViolations++
				}
				held = true
				if lastOwner >= 0 && lastOwner != p.CPU() {
					res.HandoverLevels[cfg.Machine.ShareLevel(lastOwner, p.CPU())]++
				}
				lastOwner = p.CPU()
				for d := range data {
					p.Add(&data[d], 1, lockapi.Relaxed)
				}
				if cfg.CSWork > 0 {
					p.Work(cfg.CSWork)
				}
				held = false
				l.Release(p, ctxs[i])
				if cfg.NCSWork > 0 {
					p.Work(cfg.NCSWork/2 + p.Rand().Int63n(cfg.NCSWork+1))
				}
				res.PerThread[i]++
			}
		})
	}
	r := m.Run(cfg.Horizon)
	if r.Deadlock {
		return Result{}, fmt.Errorf("workload: deadlock, parked CPUs %v", r.ParkedCPUs)
	}
	for _, c := range res.PerThread {
		res.Total += c
	}
	res.Events = r.Events
	res.Now = r.Now
	return res, nil
}

// DefaultHorizon is the virtual duration used by the scripted benchmark
// (the paper's quick pass uses 1s wall time per point; 300µs of simulated
// time yields comparably stable medians at a fraction of the cost).
const DefaultHorizon = 300_000

// LevelDB returns the simulated LevelDB-readrandom preset: a short critical
// section (LevelDB holds its DB mutex only around memtable/version state)
// and ~2.4µs of out-of-lock read work, giving the paper's shape — ~0.35
// iter/µs single-threaded, saturation around 8–16 threads.
func LevelDB(m *topo.Machine, threads int) Config {
	return Config{
		Machine:   m,
		Threads:   threads,
		Horizon:   DefaultHorizon,
		CSWork:    300,
		NCSWork:   2400,
		DataCells: 4,
		JitterNS:  2,
	}
}

// Kyoto returns the simulated Kyoto-Cabinet preset: the global lock is held
// for the whole hash-table operation (long critical section), giving the
// paper's ~10× lower absolute throughput.
func Kyoto(m *topo.Machine, threads int) Config {
	return Config{
		Machine:   m,
		Threads:   threads,
		Horizon:   DefaultHorizon * 4,
		CSWork:    8000,
		NCSWork:   32000,
		DataCells: 12,
		JitterNS:  2,
	}
}

// PingPong is the §3.1 hierarchy-discovery microbenchmark: two threads
// alternate incrementing a shared counter for the horizon; the return value
// is increments per microsecond. Only the ratio between CPU placements
// matters (Fig. 1, Table 2).
func PingPong(m *topo.Machine, cpuA, cpuB int, horizon int64) float64 {
	if cpuA == cpuB {
		// Same CPU: the paper's diagonal. Two contexts cannot run on one
		// CPU in the simulator; the real machine's diagonal throughput is
		// minimal (reschedule-bound), so report 0.
		return 0
	}
	sim := memsim.New(memsim.Config{Machine: m})
	var counter lockapi.Cell
	var incs uint64
	turn := func(p *memsim.Proc, parity uint64) {
		for !p.Expired() {
			for p.Load(&counter, lockapi.Acquire)%2 != parity {
				p.Spin()
				if p.Expired() {
					return
				}
			}
			p.Add(&counter, 1, lockapi.AcqRel)
			incs++
		}
	}
	sim.Spawn(cpuA, func(p *memsim.Proc) { turn(p, 0) })
	sim.Spawn(cpuB, func(p *memsim.Proc) { turn(p, 1) })
	r := sim.Run(horizon)
	if r.Now == 0 {
		return 0
	}
	return float64(incs) * 1000 / float64(r.Now)
}
