package workload

import (
	"fmt"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/memsim"
	"github.com/clof-go/clof/internal/obs"
	"github.com/clof-go/clof/internal/store"
	"github.com/clof-go/clof/internal/topo"
	"github.com/clof-go/clof/internal/xrand"
)

// This file is the simulator-side model of the sharded KV serving engine
// (internal/store, DESIGN.md S32). Like the LevelDB/Kyoto presets it models
// the lock protocol exactly and the engine work as calibrated think time:
// N shards, each a lock plus protected data cells; threads draw keys from a
// YCSB-style distribution, route to the owning shard, and run the mix's
// operation under the shard's lock — shared mode for reads when the lock is
// a lockapi.RWLocker, exclusive otherwise; scans visit consecutive shards
// ascending, one lock at a time, exactly like the native store's merged
// scan. Everything derives from Config.Seed, so the kv figures are
// byte-reproducible where native goroutine runs are not (DESIGN.md §1).

// KVConfig parameterizes a simulated sharded serving run.
type KVConfig struct {
	// Machine is the simulated platform.
	Machine *topo.Machine
	// Threads is the serving thread count (placed by topo.Placement).
	Threads int
	// Shards is the shard count (default 1).
	Shards int
	// NewShardLock builds one shard's lock; it is called Shards times. Locks
	// implementing lockapi.RWLocker serve reads in shared mode.
	NewShardLock func() lockapi.Lock
	// Horizon is the virtual duration in nanoseconds.
	Horizon int64
	// Mix is the operation mix (store.Mixes shapes; default store.ReadMostly).
	Mix store.Mix
	// Dist is the key distribution (store.DistUniform/Zipfian/Hotspot;
	// default uniform). Zipfian scatters hot ranks across shards; hotspot
	// concentrates 80% of keys in the first fifth of the keyspace, which
	// under RangePartition becomes a hot shard.
	Dist string
	// Theta is the Zipfian skew (default 0.99).
	Theta float64
	// Keys is the synthetic keyspace size (default 4096).
	Keys int
	// RangePartition routes key k to shard k*Shards/Keys (contiguous ranges,
	// ordered shards); false routes by multiplicative hash.
	RangePartition bool
	// ReadWork / WriteWork are the in-lock think times of point ops (ns);
	// ScanWork is charged per shard a scan visits. Defaults mirror the
	// LevelDB preset's short critical section.
	ReadWork, WriteWork, ScanWork int64
	// ScanShards is how many consecutive shards a scan visits (default 2,
	// clamped to Shards).
	ScanShards int
	// NCSWork is the out-of-lock think time (ns), randomized ±50%.
	NCSWork int64
	// Seed makes the run reproducible.
	Seed uint64
	// JitterNS is per-operation timing jitter (0 = off).
	JitterNS int64
	// Observer, when non-nil, supplies a per-shard observer: shard i's lock
	// is wrapped via lockapi.Instrument(lock, Observer(i)) before contexts
	// are created. Shared acquisitions emit no edges; KVResult's
	// SharedPerShard carries those counts instead.
	Observer func(shard int) lockapi.Observer
}

// KVResult reports a simulated serving run. The embedded Result's
// HandoverLevels stay zero — per-shard handover locality lives in the obs
// collectors attached via KVConfig.Observer.
type KVResult struct {
	Result
	// PerShard counts lock acquisitions per shard (exclusive + shared,
	// scan visits included) — the contention attribution the serving
	// experiments report. Validated optimistic reads acquire no lock and are
	// counted in OptimisticPerShard instead.
	PerShard []uint64
	// SharedPerShard counts the shared-mode subset of PerShard (0 for locks
	// without a shared path).
	SharedPerShard []uint64
	// OptimisticPerShard counts optimistic (seqlock-validated) read attempts
	// per shard — the seq: family's lock-free read sections, successful or
	// not. 0 for shard locks without a lockapi.SeqReader path.
	OptimisticPerShard []uint64
	// OCCValidationFailsPerShard counts optimistic attempts whose snapshot a
	// concurrent version bump invalidated (each is a retry or, once the
	// budget is spent, a fallback) — the obs layer's per-shard retry metric.
	OCCValidationFailsPerShard []uint64
	// OCCFallbacksPerShard counts reads that exhausted the shard's adaptive
	// attempt budget and fell back to the pessimistic shard lock.
	OCCFallbacksPerShard []uint64
	// Reads / Updates / RMWs / Scans split completed iterations by kind.
	Reads, Updates, RMWs, Scans uint64
	// SharedViolations counts shared acquisitions granted while a writer
	// held the shard, plus exclusive grants while readers were active (must
	// be 0 for a correct reader-writer lock).
	SharedViolations uint64
	// TornReads counts validated optimistic sections whose 4-cell equality
	// oracle observed mixed values — a read the seqlock protocol should have
	// discarded (must be 0 for a correct seqlock).
	TornReads uint64
}

// OCCStats folds the per-shard optimistic counters into one obs.OCCOps
// block per shard, ready for obs.CombineShards.
func (r *KVResult) OCCStats() []obs.OCCOps {
	out := make([]obs.OCCOps, len(r.OptimisticPerShard))
	for i := range out {
		out[i] = obs.OCCOps{
			Optimistic:         r.OptimisticPerShard[i],
			ValidationFailures: r.OCCValidationFailsPerShard[i],
			Fallbacks:          r.OCCFallbacksPerShard[i],
		}
	}
	return out
}

// Adaptive per-shard optimistic attempt budget — the same policy as the
// native store's occShard (internal/store): start at 4, halve on fallback,
// grow by one after 64 consecutive first-attempt validations, clamp [1, 8].
const (
	occKStart    = 4
	occKMin      = 1
	occKMax      = 8
	occGrowAfter = 64
)

// RunKV executes the simulated serving workload; it reports an error on
// deadlock.
func RunKV(cfg KVConfig) (KVResult, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 4096
	}
	if cfg.Mix.Name == "" {
		cfg.Mix = store.ReadMostly
	}
	if cfg.Dist == "" {
		cfg.Dist = store.DistUniform
	}
	if cfg.Theta == 0 {
		cfg.Theta = 0.99
	}
	if cfg.ReadWork == 0 {
		cfg.ReadWork = 300
	}
	if cfg.WriteWork == 0 {
		cfg.WriteWork = 450
	}
	if cfg.ScanWork == 0 {
		cfg.ScanWork = 600
	}
	if cfg.NCSWork == 0 {
		cfg.NCSWork = 2400
	}
	scanShards := cfg.ScanShards
	if scanShards <= 0 {
		scanShards = 2
	}
	if scanShards > cfg.Shards {
		scanShards = cfg.Shards
	}

	cpus, err := topo.Placement(cfg.Machine, cfg.Threads)
	if err != nil {
		return KVResult{}, err
	}
	n := len(cpus)
	m := memsim.New(memsim.Config{Machine: cfg.Machine, Seed: cfg.Seed, JitterNS: cfg.JitterNS})

	// Per-shard state: lock (instrumented before contexts), RW/seqlock
	// capability, data cells, exclusion bookkeeping, adaptive OCC budget.
	// The SeqReader capability is taken from the raw lock: optimistic reads
	// never touch Acquire/Release, so there is nothing for an observer to
	// see and no reason to lose the capability behind the instrument wrapper
	// (the workload reports them via OptimisticPerShard instead, the same
	// split as SharedPerShard).
	locks := make([]lockapi.Lock, cfg.Shards)
	rws := make([]lockapi.RWLocker, cfg.Shards)
	sqs := make([]lockapi.SeqReader, cfg.Shards)
	data := make([][]lockapi.Cell, cfg.Shards)
	held := make([]bool, cfg.Shards)
	readers := make([]int, cfg.Shards)
	occK := make([]int, cfg.Shards)
	occClean := make([]int, cfg.Shards)
	for i := range locks {
		l := cfg.NewShardLock()
		sqs[i], _ = l.(lockapi.SeqReader)
		if cfg.Observer != nil {
			l = lockapi.Instrument(l, cfg.Observer(i))
		}
		locks[i] = l
		rws[i], _ = l.(lockapi.RWLocker)
		data[i] = make([]lockapi.Cell, 4)
		occK[i] = occKStart
	}
	ctxs := make([][]lockapi.Ctx, n)
	for t := 0; t < n; t++ {
		ctxs[t] = make([]lockapi.Ctx, cfg.Shards)
		for i, l := range locks {
			ctxs[t][i] = l.NewCtx()
		}
	}

	res := KVResult{
		Result:                     Result{PerThread: make([]uint64, n)},
		PerShard:                   make([]uint64, cfg.Shards),
		SharedPerShard:             make([]uint64, cfg.Shards),
		OptimisticPerShard:         make([]uint64, cfg.Shards),
		OCCValidationFailsPerShard: make([]uint64, cfg.Shards),
		OCCFallbacksPerShard:       make([]uint64, cfg.Shards),
	}

	shardOf := func(key int) int {
		if cfg.RangePartition {
			return key * cfg.Shards / cfg.Keys
		}
		return int((uint64(key) * 2654435761) % uint64(cfg.Shards))
	}

	for t := 0; t < n; t++ {
		t := t
		m.Spawn(cpus[t], func(p *memsim.Proc) {
			rng := p.Rand()
			var zipf *xrand.Zipf
			if cfg.Dist == store.DistZipfian {
				zipf = xrand.NewZipf(rng.Split(), uint64(cfg.Keys), cfg.Theta)
			}
			nextKey := func() int {
				switch cfg.Dist {
				case store.DistZipfian:
					return int((zipf.Next() * 2654435761) % uint64(cfg.Keys))
				case store.DistHotspot:
					hot := cfg.Keys / 5
					if hot < 1 || hot == cfg.Keys {
						return rng.Intn(cfg.Keys)
					}
					if rng.Intn(100) < 80 {
						return rng.Intn(hot)
					}
					return hot + rng.Intn(cfg.Keys-hot)
				default:
					return rng.Intn(cfg.Keys)
				}
			}
			// sharedRead acquires shard i in shared mode when available and
			// charges work ns while reading the shard's record — the same
			// four cells the optimistic path loads, so the two read
			// disciplines differ only in their synchronization cost, not in
			// the data they observe. The first load is Acquire out of
			// discipline; the rest ride the lock's ordering.
			// Shard counts increment after the acquisition completes: a
			// thread can end the run parked inside Acquire (the horizon
			// expires while it waits), and such an attempt is neither
			// observed nor served.
			readRecord := func(i int) {
				p.Load(&data[i][0], lockapi.Acquire)
				p.Load(&data[i][1], lockapi.Relaxed)
				p.Load(&data[i][2], lockapi.Relaxed)
				p.Load(&data[i][3], lockapi.Relaxed)
			}
			sharedRead := func(i int, work int64) {
				if rw := rws[i]; rw != nil {
					rw.AcquireShared(p, ctxs[t][i])
					res.PerShard[i]++
					res.SharedPerShard[i]++
					if held[i] {
						res.SharedViolations++
					}
					readers[i]++
					readRecord(i)
					p.Work(work)
					readers[i]--
					rw.ReleaseShared(p, ctxs[t][i])
					return
				}
				locks[i].Acquire(p, ctxs[t][i])
				res.PerShard[i]++
				if held[i] {
					res.ExclusionViolations++
				}
				held[i] = true
				readRecord(i)
				p.Work(work)
				held[i] = false
				locks[i].Release(p, ctxs[t][i])
			}
			// occRead mirrors the native store's optimistic read discipline
			// (internal/store KVSession.Get): up to occK[i] unlocked attempts
			// bracketed by ReadSeq/ReadValidate, then a pessimistic fallback
			// through sharedRead. Each attempt reads all four shard cells
			// Relaxed; a writer bumps them together under the lock, so a
			// validated snapshot must see four equal values — unequal values
			// escaping validation are torn reads (TornReads, must be 0).
			// Optimistic attempts acquire no lock and so never touch
			// PerShard, held, or readers.
			occRead := func(i int, work int64) {
				sq := sqs[i]
				if sq == nil {
					sharedRead(i, work)
					return
				}
				k := occK[i]
				for a := 0; a < k; a++ {
					res.OptimisticPerShard[i]++
					s := sq.ReadSeq(p)
					v0 := p.Load(&data[i][0], lockapi.Relaxed)
					v1 := p.Load(&data[i][1], lockapi.Relaxed)
					v2 := p.Load(&data[i][2], lockapi.Relaxed)
					v3 := p.Load(&data[i][3], lockapi.Relaxed)
					p.Work(work)
					if sq.ReadValidate(p, s) {
						if v0 != v1 || v1 != v2 || v2 != v3 {
							res.TornReads++
						}
						if a == 0 {
							if occClean[i]++; occClean[i] >= occGrowAfter {
								occClean[i] = 0
								if occK[i] < occKMax {
									occK[i]++
								}
							}
						} else {
							occClean[i] = 0
						}
						return
					}
					res.OCCValidationFailsPerShard[i]++
				}
				res.OCCFallbacksPerShard[i]++
				occClean[i] = 0
				if occK[i] /= 2; occK[i] < occKMin {
					occK[i] = occKMin
				}
				sharedRead(i, work)
			}
			exclusiveWrite := func(i int, work int64) {
				locks[i].Acquire(p, ctxs[t][i])
				res.PerShard[i]++
				if held[i] {
					res.ExclusionViolations++
				}
				if readers[i] > 0 {
					res.SharedViolations++
				}
				held[i] = true
				for d := range data[i] {
					p.Add(&data[i][d], 1, lockapi.Relaxed)
				}
				p.Work(work)
				held[i] = false
				locks[i].Release(p, ctxs[t][i])
			}

			p.Work(1 + rng.Int63n(1000))
			for !p.Expired() {
				key := nextKey()
				sh := shardOf(key)
				roll := rng.Intn(100)
				switch {
				case roll < cfg.Mix.ReadPct:
					occRead(sh, cfg.ReadWork)
					res.Reads++
				case roll < cfg.Mix.ReadPct+cfg.Mix.UpdatePct:
					exclusiveWrite(sh, cfg.WriteWork)
					res.Updates++
				case roll < cfg.Mix.ReadPct+cfg.Mix.UpdatePct+cfg.Mix.RMWPct:
					occRead(sh, cfg.ReadWork)
					exclusiveWrite(sh, cfg.WriteWork)
					res.RMWs++
				default:
					// Merged scan: consecutive shards ascending, one shard at
					// a time (the native store's discipline; seqlock shards
					// collect optimistically, exactly like scanShard).
					last := sh + scanShards
					if last > cfg.Shards {
						last = cfg.Shards
					}
					for i := sh; i < last; i++ {
						occRead(i, cfg.ScanWork)
					}
					res.Scans++
				}
				if cfg.NCSWork > 0 {
					p.Work(cfg.NCSWork/2 + rng.Int63n(cfg.NCSWork+1))
				}
				res.PerThread[t]++
			}
		})
	}
	r := m.Run(cfg.Horizon)
	if r.Deadlock {
		return KVResult{}, fmt.Errorf("kv workload: deadlock, parked CPUs %v", r.ParkedCPUs)
	}
	for _, c := range res.PerThread {
		res.Total += c
	}
	res.Events = r.Events
	res.Now = r.Now
	return res, nil
}
