package workload

import (
	"reflect"
	"testing"

	"github.com/clof-go/clof/internal/faultinject"
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/topo"
)

func chaosCfg(t *testing.T, plan string, threads int) Config {
	t.Helper()
	cfg := LevelDB(topo.X86Server(), threads)
	cfg.Seed = 42
	if plan != "" {
		cfg.Faults = faultinject.MustByName(plan)
	}
	return cfg
}

func mkMCS() lockapi.Lock { return locks.NewMCS() }

// TestFaultedRunDeterministic: same seed, same plan ⇒ identical results,
// including every robustness counter.
func TestFaultedRunDeterministic(t *testing.T) {
	a, err := Run(mkMCS, chaosCfg(t, "mixed", 8))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mkMCS, chaosCfg(t, "mixed", 8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different results:\n%+v\n%+v", a, b)
	}
}

// TestNonePlanEqualsNoPlan: the "none" plan must reproduce the unfaulted
// run bit-for-bit — the zero Decision really injects nothing.
func TestNonePlanEqualsNoPlan(t *testing.T) {
	bare, err := Run(mkMCS, chaosCfg(t, "", 8))
	if err != nil {
		t.Fatal(err)
	}
	none, err := Run(mkMCS, chaosCfg(t, "none", 8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, none) {
		t.Fatalf("none plan diverged from unfaulted run:\n%+v\n%+v", bare, none)
	}
}

// TestHolderPreemptionHurts: preempting lock holders must cost throughput
// and must surface in the robustness stats, without breaking exclusion.
func TestHolderPreemptionHurts(t *testing.T) {
	base, err := Run(mkMCS, chaosCfg(t, "", 8))
	if err != nil {
		t.Fatal(err)
	}
	hurt, err := Run(mkMCS, chaosCfg(t, "holder-preempt", 8))
	if err != nil {
		t.Fatal(err)
	}
	if hurt.Preemptions == 0 {
		t.Fatal("holder-preempt plan injected no preemptions")
	}
	if hurt.ExclusionViolations != 0 {
		t.Fatalf("exclusion violated under preemption: %d", hurt.ExclusionViolations)
	}
	if hurt.ThroughputOpsPerUs() >= base.ThroughputOpsPerUs() {
		t.Fatalf("preemption did not reduce throughput: %.3f >= %.3f",
			hurt.ThroughputOpsPerUs(), base.ThroughputOpsPerUs())
	}
	// A 60µs preemption inside the CS must show as a handover gap of at
	// least that order (the waiters convoy behind the descheduled owner).
	if hurt.MaxHandoverGapNS < 45_000 {
		t.Fatalf("MaxHandoverGapNS = %d, want >= 45000 under 60µs holder preemption", hurt.MaxHandoverGapNS)
	}
}

// TestAbandonedAcquires: trylock-capable locks abandon under the abandon
// plan and stay mutually exclusive; per-thread progress continues.
func TestAbandonedAcquires(t *testing.T) {
	res, err := Run(mkMCS, chaosCfg(t, "abandon", 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Abandoned == 0 {
		t.Fatal("abandon plan produced no abandoned acquisitions")
	}
	if res.ExclusionViolations != 0 {
		t.Fatalf("exclusion violated with abandoned acquires: %d", res.ExclusionViolations)
	}
	if res.Total == 0 {
		t.Fatal("no iterations completed at all")
	}
}

// TestAbandonFallsBackWithoutTry: a lock that declines TryAcquire (CLH)
// must run the abandon plan via plain Acquire — no abandons, no breakage.
func TestAbandonFallsBackWithoutTry(t *testing.T) {
	res, err := Run(func() lockapi.Lock { return locks.NewCLH() }, chaosCfg(t, "abandon", 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Abandoned != 0 {
		t.Fatalf("CLH declines trylock but recorded %d abandons", res.Abandoned)
	}
	if res.Total == 0 {
		t.Fatal("no progress under abandon plan with non-try lock")
	}
}

// TestNoStarvationUnderMixedFaults: the paper-default configuration (fair
// MCS, LevelDB preset) must keep every thread progressing under the mixed
// plan — the acceptance criterion the watchdog gates on.
func TestNoStarvationUnderMixedFaults(t *testing.T) {
	res, err := Run(mkMCS, chaosCfg(t, "mixed", 16))
	if err != nil {
		t.Fatal(err)
	}
	if starved := res.Starved(0.05); len(starved) != 0 {
		t.Fatalf("threads starved under mixed faults: %v (per-thread %v)", starved, res.PerThread)
	}
}
