package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"testing"

	"github.com/clof-go/clof/internal/faultinject"
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/topo"
)

// Golden fingerprints of complete workload Results — every field, including
// per-thread splits, robustness counters and the simulator's event count —
// captured BEFORE the memsim run-ahead execution core landed. They pin the
// fault-injection path (ISSUE 4: fault-injection determinism under the fast
// path): injected preemptions, stalls and abandons are scheduled in virtual
// time, so a scheduling change in the simulator would move them and show up
// here immediately.
//
// Reprint with CLOF_GOLDEN_PRINT=1 after an intentional model change.
var goldenFaultedRuns = map[string]string{
	"mcs/none":           "3341b09b2714daf555986252591f2f5d35de0ee07e7668b5fb338faf283489f2",
	"mcs/mixed":          "b9f75a87460e91ada182627d14f98c828f24d46fa7e45b459339ccec17afcb2f",
	"mcs/holder-preempt": "2f193da5d37fed388667cc3722f055963f22ba86b0e284e1f6e670d35c214d70",
	"ticket/abandon":     "c943c2b0f9724df804ec267a29e0f8995c43a4a63ff41f6c3a2684abecf4d2d9",
}

// resultFingerprint digests the full Result struct, fields spelled out so
// that adding a field to Result forces this test to be looked at.
func resultFingerprint(r Result) string {
	s := fmt.Sprintf("total=%d per=%v handover=%v events=%d now=%d excl=%d aband=%d preempt=%d stalls=%d gap=%d",
		r.Total, r.PerThread, r.HandoverLevels, r.Events, r.Now,
		r.ExclusionViolations, r.Abandoned, r.Preemptions, r.Stalls, r.MaxHandoverGapNS)
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// TestGoldenFaultedRuns pins faulted and unfaulted simulated runs
// bit-for-bit across execution-core changes.
func TestGoldenFaultedRuns(t *testing.T) {
	cases := []struct {
		key  string
		mk   LockFactory
		plan string
	}{
		{"mcs/none", func() lockapi.Lock { return locks.NewMCS() }, ""},
		{"mcs/mixed", func() lockapi.Lock { return locks.NewMCS() }, "mixed"},
		{"mcs/holder-preempt", func() lockapi.Lock { return locks.NewMCS() }, "holder-preempt"},
		{"ticket/abandon", func() lockapi.Lock { return locks.NewTicket() }, "abandon"},
	}
	for _, c := range cases {
		cfg := LevelDB(topo.X86Server(), 8)
		cfg.Seed = 42
		if c.plan != "" {
			cfg.Faults = faultinject.MustByName(c.plan)
		}
		res, err := Run(c.mk, cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.key, err)
		}
		got := resultFingerprint(res)
		if os.Getenv("CLOF_GOLDEN_PRINT") != "" {
			fmt.Printf("golden %q: %q\n", c.key, got)
			continue
		}
		if want := goldenFaultedRuns[c.key]; got != want {
			t.Errorf("%s: faulted-run fingerprint drifted\n  got  %s\n  want %s\n  result: %+v",
				c.key, got, want, res)
		}
	}
}
