package workload

import (
	"testing"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/obs"
	"github.com/clof-go/clof/internal/rwlock"
	"github.com/clof-go/clof/internal/seqlock"
	"github.com/clof-go/clof/internal/store"
	"github.com/clof-go/clof/internal/topo"
)

// TestKVDeterministic: identical seeds reproduce the run exactly, per shard.
func TestKVDeterministic(t *testing.T) {
	m := topo.X86Server()
	run := func() KVResult {
		r, err := RunKV(KVConfig{
			Machine: m, Threads: 8, Shards: 4, Horizon: 150_000,
			NewShardLock: func() lockapi.Lock { return locks.NewTicket() },
			Mix:          store.WriteHeavy, Dist: store.DistZipfian, Seed: 42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Total != b.Total || a.Now != b.Now || a.Events != b.Events {
		t.Fatalf("runs diverge: %d/%d/%d vs %d/%d/%d", a.Total, a.Now, a.Events, b.Total, b.Now, b.Events)
	}
	for i := range a.PerShard {
		if a.PerShard[i] != b.PerShard[i] {
			t.Fatalf("shard %d diverges: %d vs %d", i, a.PerShard[i], b.PerShard[i])
		}
	}
}

// TestKVExclusionAcrossLocks: every catalog-style lock family keeps the
// per-shard critical sections exclusive under the serving mix.
func TestKVExclusionAcrossLocks(t *testing.T) {
	m := topo.X86Server()
	mks := map[string]func() lockapi.Lock{
		"tkt": func() lockapi.Lock { return locks.NewTicket() },
		"mcs": func() lockapi.Lock { return locks.NewMCS() },
		"rwlock": func() lockapi.Lock {
			return rwlock.Adapt(rwlock.New(m, topo.CacheGroup, locks.NewMCS()))
		},
	}
	for name, mk := range mks {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			r, err := RunKV(KVConfig{
				Machine: m, Threads: 12, Shards: 4, Horizon: 200_000,
				NewShardLock: mk,
				Mix:          store.ReadModifyWrite, Dist: store.DistZipfian, Seed: 7,
			})
			if err != nil {
				t.Fatal(err)
			}
			if r.Total == 0 {
				t.Fatal("no iterations completed")
			}
			if r.ExclusionViolations != 0 {
				t.Errorf("%d exclusion violations", r.ExclusionViolations)
			}
			if r.SharedViolations != 0 {
				t.Errorf("%d shared/exclusive overlap violations", r.SharedViolations)
			}
			if name == "rwlock" {
				var shared uint64
				for _, c := range r.SharedPerShard {
					shared += c
				}
				if shared == 0 {
					t.Error("rwlock shards served no shared acquisitions on a read-heavy mix")
				}
			}
		})
	}
}

// TestKVOptimisticReads: seqlock shard locks serve the read-mostly mix
// through the lock-free validated path — reads bypass the shard lock, the
// torn-read oracle stays clean, and the OCC counters are self-consistent.
func TestKVOptimisticReads(t *testing.T) {
	m := topo.X86Server()
	r, err := RunKV(KVConfig{
		Machine: m, Threads: 12, Shards: 4, Horizon: 200_000,
		NewShardLock: func() lockapi.Lock { return seqlock.Wrap(locks.NewTicket(), seqlock.Opts{}) },
		Mix:          store.ReadMostly, Dist: store.DistZipfian, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Total == 0 || r.Reads == 0 {
		t.Fatal("no reads completed")
	}
	if r.TornReads != 0 {
		t.Errorf("%d torn reads escaped seqlock validation", r.TornReads)
	}
	if r.ExclusionViolations != 0 || r.SharedViolations != 0 {
		t.Errorf("violations: %d exclusion, %d shared", r.ExclusionViolations, r.SharedViolations)
	}
	var opt, vfails, falls, acqs uint64
	for i := range r.OptimisticPerShard {
		opt += r.OptimisticPerShard[i]
		vfails += r.OCCValidationFailsPerShard[i]
		falls += r.OCCFallbacksPerShard[i]
		acqs += r.PerShard[i]
	}
	if opt == 0 {
		t.Fatal("seqlock shards served no optimistic reads")
	}
	// Read-mostly: lock-free read attempts must dominate lock acquisitions,
	// since only writes and fallbacks take the lock.
	if opt <= acqs {
		t.Errorf("optimistic attempts %d <= lock acquisitions %d on a read-mostly mix", opt, acqs)
	}
	// Every fallback spent a whole budget of failed validations first.
	if vfails < falls {
		t.Errorf("validation failures %d < fallbacks %d", vfails, falls)
	}
	// A plain ticket lock has no optimistic path: counters must stay zero.
	r2, err := RunKV(KVConfig{
		Machine: m, Threads: 12, Shards: 4, Horizon: 200_000,
		NewShardLock: func() lockapi.Lock { return locks.NewTicket() },
		Mix:          store.ReadMostly, Dist: store.DistZipfian, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range r2.OptimisticPerShard {
		if c != 0 {
			t.Errorf("shard %d: %d optimistic reads on a plain ticket lock", i, c)
		}
	}
}

// TestKVScanVisitsConsecutiveShards: the scan mix attributes acquisitions
// to multiple shards per iteration and stays deadlock-free.
func TestKVScanVisitsConsecutiveShards(t *testing.T) {
	m := topo.X86Server()
	r, err := RunKV(KVConfig{
		Machine: m, Threads: 8, Shards: 8, Horizon: 150_000,
		NewShardLock: func() lockapi.Lock { return locks.NewMCS() },
		Mix:          store.ScanHeavy, ScanShards: 3, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Scans == 0 {
		t.Fatal("scan mix ran no scans")
	}
	var acqs uint64
	for _, c := range r.PerShard {
		acqs += c
	}
	// Point ops acquire once; scans acquire up to 3 times — total shard
	// acquisitions must exceed completed ops (RMWs also double-acquire).
	if acqs <= r.Total {
		t.Errorf("acquisitions %d <= iterations %d; scans did not visit multiple shards", acqs, r.Total)
	}
}

// TestKVHotspotRangeSkew: a hotspot distribution over a range partition
// concentrates acquisitions on the first shard.
func TestKVHotspotRangeSkew(t *testing.T) {
	m := topo.X86Server()
	r, err := RunKV(KVConfig{
		Machine: m, Threads: 8, Shards: 4, Horizon: 150_000,
		NewShardLock:   func() lockapi.Lock { return locks.NewTicket() },
		Mix:            store.WriteHeavy, Dist: store.DistHotspot,
		RangePartition: true, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	var rest uint64
	for _, c := range r.PerShard[1:] {
		rest += c
	}
	if r.PerShard[0] <= rest {
		t.Errorf("hotspot: shard 0 got %d acquisitions vs %d elsewhere; want a hot shard", r.PerShard[0], rest)
	}
}

// TestKVObserverPerShard: per-shard obs collectors see the exclusive
// acquisitions; CombineShards' block matches the workload's own counts for
// exclusive-only locks.
func TestKVObserverPerShard(t *testing.T) {
	m := topo.X86Server()
	const shards = 4
	collectors := make([]*obs.Collector, shards)
	for i := range collectors {
		collectors[i] = obs.NewCollector(m, obs.Options{})
	}
	r, err := RunKV(KVConfig{
		Machine: m, Threads: 8, Shards: shards, Horizon: 150_000,
		NewShardLock: func() lockapi.Lock { return locks.NewTicket() },
		Mix:          store.WriteHeavy, Seed: 13,
		Observer:     func(i int) lockapi.Observer { return collectors[i] },
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := obs.CombineShards("tkt", collectors, r.SharedPerShard, r.OCCStats())
	if len(rep.Shards) != shards {
		t.Fatalf("report shards = %d", len(rep.Shards))
	}
	var fromObs uint64
	for i, s := range rep.Shards {
		// A ticket lock has no shared mode: the observer saw every
		// acquisition the workload routed to the shard.
		if s.Acquisitions != r.PerShard[i] {
			t.Errorf("shard %d: obs %d acquisitions, workload %d", i, s.Acquisitions, r.PerShard[i])
		}
		if s.SharedOps != 0 {
			t.Errorf("shard %d: shared ops %d on an exclusive-only lock", i, s.SharedOps)
		}
		fromObs += s.Acquisitions
	}
	if fromObs != rep.Acquisitions {
		t.Errorf("shard block sums to %d, aggregate says %d", fromObs, rep.Acquisitions)
	}
}
