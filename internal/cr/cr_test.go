package cr_test

import (
	"testing"

	"github.com/clof-go/clof/internal/cr"
	"github.com/clof-go/clof/internal/faultinject"
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/locktest"
	"github.com/clof-go/clof/internal/topo"
)

// noTry is a minimal Lock without TryAcquire, for capability-forwarding
// checks: the wrapper must decline trylock when the inner lock cannot.
type noTry struct{ inner lockapi.Lock }

func (l *noTry) NewCtx() lockapi.Ctx                 { return l.inner.NewCtx() }
func (l *noTry) Acquire(p lockapi.Proc, c lockapi.Ctx) { l.inner.Acquire(p, c) }
func (l *noTry) Release(p lockapi.Proc, c lockapi.Ctx) { l.inner.Release(p, c) }

func TestRestrictNativeStress(t *testing.T) {
	m := topo.X86Server()
	for _, target := range []int{1, 2, 4} {
		l := cr.Restrict(m, locks.NewTicket(), cr.Opts{Target: target, PassLimit: 2})
		locktest.NativeStress(t, l, m, 8, 2000)
	}
}

func TestRestrictSimRun(t *testing.T) {
	m := topo.OversubscribedServer()
	res := locktest.SimRun(t, func() lockapi.Lock {
		return cr.Restrict(m, locks.NewTicket(), cr.Opts{})
	}, locktest.SimConfig{
		Machine: m, Threads: 32, Horizon: 200_000,
		CSWork: 300, NCSWork: 2400, DataCells: 4, Seed: 1, JitterNS: 2,
	})
	if res.Total == 0 {
		t.Fatal("no acquisitions completed")
	}
	locktest.Watchdog{MinShare: 0.01}.Require(t, res)
}

func TestRestrictSimRunUnderPreemption(t *testing.T) {
	m := topo.OversubscribedServer()
	res := locktest.SimRun(t, func() lockapi.Lock {
		return cr.Restrict(m, locks.NewTicket(), cr.Opts{})
	}, locktest.SimConfig{
		Machine: m, Threads: 48, Horizon: 300_000,
		CSWork: 300, NCSWork: 2400, DataCells: 4, Seed: 7, JitterNS: 2,
		Faults: faultinject.MustByName("oversubscribed"),
	})
	if res.Total == 0 {
		t.Fatal("no acquisitions completed under preemption")
	}
	if starved := res.Starved(0.005); len(starved) > 0 {
		t.Errorf("threads %v starved below 0.5%% share (passive set must recirculate)", starved)
	}
}

func TestRestrictTryAcquire(t *testing.T) {
	m := topo.X86Server()
	l := cr.Restrict(m, locks.NewTicket(), cr.Opts{Target: 2})
	if !lockapi.SupportsTry(l) {
		t.Fatal("restricted ticket lock must support trylock")
	}
	tl := l.(lockapi.TryLocker)
	p0 := lockapi.NewNativeProc(0)
	c0, c1 := l.NewCtx(), l.NewCtx()
	if !tl.TryAcquire(p0, c0) {
		t.Fatal("uncontended TryAcquire failed")
	}
	p1 := lockapi.NewNativeProc(48)
	if tl.TryAcquire(p1, c1) {
		t.Fatal("TryAcquire succeeded while inner lock held")
	}
	l.Release(p0, c0)
	if !tl.TryAcquire(p1, c1) {
		t.Fatal("TryAcquire failed on a free lock with a reused ctx")
	}
	l.Release(p1, c1)
}

func TestRestrictDeclinesTryWhenInnerCannot(t *testing.T) {
	m := topo.X86Server()
	l := cr.Restrict(m, &noTry{inner: locks.NewTicket()}, cr.Opts{})
	if lockapi.SupportsTry(l) {
		t.Fatal("wrapper must decline trylock when the inner lock lacks it")
	}
	if l.(lockapi.TryLocker).TryAcquire(lockapi.NewNativeProc(0), l.NewCtx()) {
		t.Fatal("TryAcquire must fail when unsupported")
	}
}

func TestRestrictCapabilityForwarding(t *testing.T) {
	m := topo.X86Server()
	l := cr.Restrict(m, locks.NewTicket(), cr.Opts{})
	if !lockapi.Fair(l) {
		t.Error("restricted ticket lock should report fair")
	}
	broken := cr.Restrict(m, locks.NewTicket(), cr.Opts{BreakRecirculation: true})
	if lockapi.Fair(broken) {
		t.Error("broken recirculation variant must not report fair")
	}
	p := lockapi.NewNativeProc(0)
	c := l.NewCtx()
	l.Acquire(p, c)
	if l.(lockapi.WaiterDetector).HasWaiters(p, c) {
		t.Error("HasWaiters true with a lone holder")
	}
	l.Release(p, c)
}

func TestRestrictObserverEdges(t *testing.T) {
	m := topo.X86Server()
	l := cr.Restrict(m, locks.NewTicket(), cr.Opts{})
	var starts, acqs, rels int
	obs := lockapi.ObserverFromFuncs(
		func(lockapi.Proc) { starts++ },
		func(lockapi.Proc) { acqs++ },
		func(lockapi.Proc) { rels++ },
	)
	got := lockapi.Instrument(l, obs)
	if got != l {
		t.Fatal("Instrument should annotate the wrapper in place (native hooks)")
	}
	p := lockapi.NewNativeProc(0)
	c := l.NewCtx()
	l.Acquire(p, c)
	l.Release(p, c)
	if !l.(lockapi.TryLocker).TryAcquire(p, c) {
		t.Fatal("uncontended TryAcquire failed")
	}
	l.Release(p, c)
	if starts != 2 || acqs != 2 || rels != 2 {
		t.Errorf("edges start/acq/rel = %d/%d/%d, want 2/2/2", starts, acqs, rels)
	}
}

func TestRestrictChaosAbandon(t *testing.T) {
	m := topo.X86Server()
	l := cr.Restrict(m, locks.NewTicket(), cr.Opts{Target: 2})
	locktest.ChaosNative(t, l, m, faultinject.MustByName("abandon"), 8, 500, 42)
}
