// Package cr implements a concurrency-restriction combinator in the style of
// Dice & Kogan, "Avoiding Scalability Collapse by Restricting Concurrency"
// (PAPERS.md): Restrict wraps any lockapi.Lock and caps how many threads may
// contend on it at once. Admitted threads (the *active set*, at most the
// adaptive target) contend on the inner lock as usual; excess arrivals park
// in per-cohort *passive queues* and are recirculated — granted back into the
// active set — one per release, with seeded-jitter backoff so recirculating
// waiters do not convoy.
//
// The combinator is NUMA-aware: passive waiters queue per topology cohort
// (default topo.NUMA), and a releasing holder prefers to grant a waiter from
// its own cohort (the cohort sharing the deepest topo.ShareLevel with it),
// bounded by a pass limit after which a rotation pointer forces the grant to
// the next waiting cohort — locality without starvation.
//
// The admission target adapts on backends that expose virtual time
// (memsim.Proc's Time method): a hold time far above the nominal critical
// section means the holder was preempted under the lock, so the target
// halves — fewer active waiters then burn coherence bandwidth convoying
// behind descheduled owners — and it grows back by one after a run of
// healthy releases.
//
// Restricted forwards the full capability surface (TryLocker, TryInfo,
// WaiterDetector, FairnessInfo, Instrumented), so chaos sweeps and the obs
// layer see through the wrapper. internal/catalog enumerates restricted
// variants under the "cr" family; internal/mcheck verifies mutual exclusion
// and bounded-bypass liveness, including that the deliberately broken
// recirculation variant (Opts.BreakRecirculation) is caught as starvation.
package cr

import (
	"fmt"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/topo"
	"github.com/clof-go/clof/internal/xrand"
)

// maxCohorts bounds the per-cohort queue count: cohort eligibility is scanned
// into a uint64 bitmask.
const maxCohorts = 64

// Default tuning values, exported so tests and docs can reference them.
const (
	// DefaultPassLimit is how many consecutive grants one cohort may
	// receive before the rotation pointer forces the next waiting cohort.
	DefaultPassLimit = 8
	// DefaultPreemptHoldNS is the hold time above which a release is
	// treated as a preempted-holder event (shrink signal): ~2.5× the
	// Kyoto-style 8µs critical section, ~67× the LevelDB-style 300ns one.
	DefaultPreemptHoldNS = 20_000
	// DefaultGrowEvery is how many consecutive healthy releases grow a
	// shrunken target back by one.
	DefaultGrowEvery = 64
)

// Opts tunes Restrict. The zero value selects sensible defaults for every
// field.
type Opts struct {
	// Level is the cohort granularity of the passive queues and of the
	// grant-locality preference. The zero value (topo.Core) is remapped to
	// topo.NUMA: per-core queues would make every waiter its own cohort and
	// restrict nothing about placement.
	Level topo.Level
	// Target is the steady-state admission target: the maximum number of
	// threads simultaneously holding or contending on the inner lock.
	// 0 means max(3, NumCPUs/32). The adaptive target never exceeds it.
	Target int
	// MinTarget is the shrink floor (0 means 1: a lone holder with every
	// waiter parked, the maximum restriction under heavy preemption).
	MinTarget int
	// PassLimit bounds consecutive grants to one cohort before rotation is
	// forced (0 means DefaultPassLimit).
	PassLimit int
	// PreemptHoldNS is the pathological hold-time threshold that halves
	// the target (0 means DefaultPreemptHoldNS).
	PreemptHoldNS int64
	// GrowEvery is the healthy-release run length that grows the target
	// back by one (0 means DefaultGrowEvery).
	GrowEvery int
	// BackoffBase / BackoffCap tune the passive waiters' recirculation
	// backoff (0 means 1 / lockapi.DefaultBackoffCap).
	BackoffBase int
	BackoffCap  int
	// BackoffSeed is the base seed for the per-context jittered backoff;
	// contexts derive distinct deterministic streams from it. 0 selects a
	// fixed default, so runs are reproducible either way.
	BackoffSeed uint64
	// DisableAdapt pins the target at Target even on backends with virtual
	// time.
	DisableAdapt bool
	// BreakRecirculation deliberately breaks the grant policy (a releaser
	// always favors its own cohort and heads barge without designation),
	// re-creating the starvation bug bounded rotation exists to prevent.
	// Test-only: internal/mcheck proves this variant starves remote
	// cohorts (unbounded bypass) while the correct policy stays bounded.
	BreakRecirculation bool
}

// Restricted is the concurrency-restriction wrapper returned by Restrict.
//
// Shared state:
//   - active: threads currently admitted (holding or contending inner);
//   - tgt: the adaptive admission target, in [MinTarget, Target];
//   - rota: packed grant-rotation state (last granted cohort, its streak
//     length, and the rotation pointer), colocated with tgt and the
//     grow counter as one metadata line;
//   - per-cohort ticket/grant pairs: the passive FIFO queues. Ticket and
//     grant deliberately do NOT share a line (unlike a Ticketlock):
//     arrivals then never disturb parked waiters, only grants do;
//   - per-cohort wake banks: passive waiter t parks on wake[t mod slots],
//     its own line, so a grant invalidates ONE waiter's line instead of
//     broadcasting to every parked waiter — local spinning is what keeps
//     the release path O(1) in the waiter count, the property the whole
//     combinator exists for. The bank cell holds "granted up to": w > t
//     means ticket t is granted, w == t means ticket t is the head (each
//     grant also pokes the next head's slot with the new grant value).
type Restricted struct {
	lockapi.Probe
	inner lockapi.Lock
	m     *topo.Machine
	o     Opts
	lvl   topo.Level
	nodes int
	slots int   // wake-bank width per cohort (>= CPUs per cohort)
	rep   []int // representative CPU per cohort, for ShareLevel tests

	active  lockapi.Cell
	tgt     lockapi.Cell
	rota    lockapi.Cell
	grow    lockapi.Cell
	qticket []lockapi.Cell
	qgrant  []lockapi.Cell
	wake    [][]lockapi.Cell

	ctxSeq uint64
}

// ctx is the per-thread context: the inner lock's context, the jittered
// recirculation backoff, and the acquisition timestamp the adaptive target
// reads back at release.
type ctx struct {
	inner      lockapi.Ctx
	bo         lockapi.ExpBackoff
	acquiredAt int64
	timed      bool
}

// Restrict wraps inner in a concurrency-restriction combinator for machine
// m. Only safe during single-threaded setup. Panics if the machine has more
// than 64 cohorts at the chosen level (use a coarser Level).
//
// The returned lock additionally forwards inner's lockapi.RWLocker and
// lockapi.SeqReader capabilities when inner has them (see forward.go for
// why those paths bypass admission control), which is why the result is an
// interface: the concrete type depends on inner's capability surface.
func Restrict(m *topo.Machine, inner lockapi.Lock, o Opts) lockapi.Lock {
	l := newRestricted(m, inner, o)
	rw, _ := inner.(lockapi.RWLocker)
	sq, _ := inner.(lockapi.SeqReader)
	switch {
	case rw != nil && sq != nil:
		return &RestrictedRWSeq{RestrictedRW: RestrictedRW{Restricted: l, rw: rw}, sq: sq}
	case rw != nil:
		return &RestrictedRW{Restricted: l, rw: rw}
	case sq != nil:
		return &RestrictedSeq{Restricted: l, sq: sq}
	}
	return l
}

// newRestricted is the single-threaded constructor behind Restrict.
func newRestricted(m *topo.Machine, inner lockapi.Lock, o Opts) *Restricted {
	if o.Level == topo.Core {
		o.Level = topo.NUMA
	}
	if o.Target <= 0 {
		// A small active set is the point: enough concurrency to overlap a
		// grant with the next holder's critical section, few enough spinners
		// that the inner lock's handover cost stays near its uncontended
		// floor. The floor of 3 — holder, one spinner, one grant in flight —
		// covers the active-set underflow window at shallow passive queues
		// (a refill that races a queue drain); NumCPUs/32 adds overlap slack
		// on larger machines.
		o.Target = m.NumCPUs() / 32
		if o.Target < 3 {
			o.Target = 3
		}
	}
	if o.MinTarget <= 0 {
		o.MinTarget = 1
	}
	if o.MinTarget > o.Target {
		o.MinTarget = o.Target
	}
	if o.PassLimit <= 0 {
		o.PassLimit = DefaultPassLimit
	}
	if o.PreemptHoldNS <= 0 {
		o.PreemptHoldNS = DefaultPreemptHoldNS
	}
	if o.GrowEvery <= 0 {
		o.GrowEvery = DefaultGrowEvery
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 1
	}
	if o.BackoffSeed == 0 {
		o.BackoffSeed = 0xC12C0F5EED
	}
	nodes := m.Cohorts(o.Level)
	if nodes > maxCohorts {
		panic(fmt.Sprintf("cr: %d cohorts at level %v exceeds %d; restrict at a coarser level", nodes, o.Level, maxCohorts))
	}
	slots := m.NumCPUs() / nodes
	if slots < 1 {
		slots = 1
	}
	l := &Restricted{
		inner:   inner,
		m:       m,
		o:       o,
		lvl:     o.Level,
		nodes:   nodes,
		slots:   slots,
		rep:     make([]int, nodes),
		qticket: make([]lockapi.Cell, nodes),
		qgrant:  make([]lockapi.Cell, nodes),
		wake:    make([][]lockapi.Cell, nodes),
	}
	for n := 0; n < nodes; n++ {
		l.rep[n] = m.CohortCPUs(o.Level, n)[0]
		l.wake[n] = make([]lockapi.Cell, slots)
	}
	l.tgt.Init(uint64(o.Target))
	// One grant-metadata line: the adaptive target, the rotation state and
	// the recovery counter travel together, like CLoF's per-level words.
	lockapi.Colocate(&l.tgt, &l.rota, &l.grow)
	return l
}

// Inner returns the wrapped lock (tests and the catalog use it to reason
// about capability forwarding).
func (l *Restricted) Inner() lockapi.Lock { return l.inner }

// NewCtx implements lockapi.Lock. Each context gets its own deterministic
// jitter stream, derived from BackoffSeed and the allocation order.
func (l *Restricted) NewCtx() lockapi.Ctx {
	l.ctxSeq++
	seed := xrand.New(l.o.BackoffSeed + l.ctxSeq).Uint64() | 1
	return &ctx{
		inner: l.inner.NewCtx(),
		bo: lockapi.ExpBackoff{
			Base: l.o.BackoffBase,
			Cap:  l.o.BackoffCap,
			Seed: seed,
		},
	}
}

// nodeOf maps p's CPU to its passive-queue cohort: the cohort whose
// representative shares at least the restriction level with it (the deepest
// topo.ShareLevel). Out-of-range native worker ids wrap onto the machine.
func (l *Restricted) nodeOf(p lockapi.Proc) int {
	cpu := p.ID()
	if cpu < 0 || cpu >= l.m.NumCPUs() {
		cpu = ((cpu % l.m.NumCPUs()) + l.m.NumCPUs()) % l.m.NumCPUs()
	}
	for n := 0; n < l.nodes; n++ {
		if l.m.ShareLevel(cpu, l.rep[n]) <= l.lvl {
			return n
		}
	}
	return 0
}

// rota packing: |turn:16|streak:16|rot:16| in the low 48 bits.

// packRota packs the rotation state into one cell value.
func packRota(turn, streak, rot int) uint64 {
	return uint64(turn)<<32 | uint64(streak)<<16 | uint64(rot)
}

// unpackRota unpacks a rotation-state cell value.
func unpackRota(rs uint64) (turn, streak, rot int) {
	return int(rs >> 32 & 0xFFFF), int(rs >> 16 & 0xFFFF), int(rs & 0xFFFF)
}

// target reads the current adaptive admission target. With adaptation off
// the target is the configured constant, so the shared load is skipped —
// that also keeps the model-checked configuration's op count down.
func (l *Restricted) target(p lockapi.Proc) uint64 {
	if l.o.DisableAdapt {
		return uint64(l.o.Target)
	}
	tg := p.Load(&l.tgt, lockapi.Acquire)
	if tg < 1 {
		tg = 1
	}
	return tg
}

// designate picks the cohort the next grant should go to, as a function of
// the rotation state and the queue occupancy: the caller's own cohort when
// it waits and is not streak-blocked (local handoff — the ShareLevel
// preference), else the first waiting cohort past the rotation pointer.
// Heads pass local=false and get the pure-rotation answer, so at most one
// cohort's head ever self-admits — the property the bounded-bypass proof
// needs. viaRot reports a rotation (non-local) pick.
//
// self >= 0 marks the caller's own cohort as known non-empty (a queue head
// knows it waits), skipping its queue loads; self-designating callers must
// then ignore qg. For self < 0 callers, qg is the designated cohort's
// observed grant position: granting with CAS(qgrant[des], qg, qg+1) is
// exactly as fresh as re-loading would be — the CAS fails if the queue
// moved — so no revalidation loads are needed.
//
// designate reads the rotation state itself, but only after the occupancy
// scan finds a waiter: the common empty-queues release exits without touching
// the rota line at all. The observed rs is returned for noteGrant.
func (l *Restricted) designate(p lockapi.Proc, local bool, self int) (des int, qg, rs uint64, viaRot, ok bool) {
	var mask uint64
	var gs [maxCohorts]uint64
	for n := 0; n < l.nodes; n++ {
		if n == self {
			mask |= 1 << uint(n)
			continue
		}
		t := p.Load(&l.qticket[n], lockapi.Acquire)
		g := p.Load(&l.qgrant[n], lockapi.Acquire)
		// Strictly greater, not != : the two loads are not a snapshot. A
		// ticket read that predates an enqueue-and-grant cycle pairs a
		// stale-low t with a fresh g > t, and != would fabricate a waiting
		// cohort out of an empty queue — granting a ticket nobody holds and
		// leaking an active slot. t > g is tear-proof: tickets only grow,
		// so t > g proves ticket g was issued and is still ungranted.
		if t > g {
			mask |= 1 << uint(n)
			gs[n] = g
		}
	}
	if mask == 0 {
		return 0, 0, 0, false, false
	}
	rs = p.Load(&l.rota, lockapi.Acquire)
	turn, streak, rot := unpackRota(rs)
	blocked := -1
	if streak >= l.o.PassLimit && !l.o.BreakRecirculation {
		blocked = turn
	}
	if mask&(mask-1) == 0 {
		// A sole waiting cohort is granted even when streak-blocked:
		// starving the only waiters would trade fairness for deadlock.
		for n := 0; n < l.nodes; n++ {
			if mask&(1<<uint(n)) != 0 {
				return n, gs[n], rs, false, true
			}
		}
	}
	if local || l.o.BreakRecirculation {
		mine := l.nodeOf(p)
		if mask&(1<<uint(mine)) != 0 && mine != blocked {
			return mine, gs[mine], rs, false, true
		}
	}
	for d := 1; d <= l.nodes; d++ {
		n := (rot + d) % l.nodes
		if mask&(1<<uint(n)) != 0 && n != blocked {
			return n, gs[n], rs, true, true
		}
	}
	// Unreachable: >= 2 waiting cohorts and at most one blocked.
	return turn, gs[turn], rs, false, true
}

// noteGrant folds a grant to cohort des into the rotation state. A lost CAS
// means a concurrent granter already advanced the state; the stale update is
// dropped (the state is a fairness heuristic, the hard bound comes from
// designate re-reading it).
func (l *Restricted) noteGrant(p lockapi.Proc, rs uint64, des int, viaRot bool) {
	turn, streak, rot := unpackRota(rs)
	if des == turn {
		if streak < 0xFFFF {
			streak++
		}
	} else {
		streak = 1
	}
	if viaRot {
		rot = des
	}
	p.CAS(&l.rota, rs, packRota(des, streak, rot), lockapi.AcqRel)
}

// pokeSlot advances a wake-bank cell to v, never backwards: concurrent
// granters (a releaser and a self-admitting head, or two releasers granting
// consecutive tickets whose slots collide) may race their wake writes, and a
// stale value landing late would strand an already-granted waiter parked on
// a cell nobody will write again. Values are monotonic tickets, so the CAS
// loop terminates.
func (l *Restricted) pokeSlot(p lockapi.Proc, cell *lockapi.Cell, v uint64) {
	for {
		cur := p.Load(cell, lockapi.Acquire)
		if cur >= v {
			return
		}
		if p.CAS(cell, cur, v, lockapi.Release) {
			return
		}
	}
}

// admitHead status codes.
const (
	admitWait     = iota // not designated or no slot: park on the grant word
	admitRetry           // active moved under the CAS: re-evaluate now
	admitAdmitted        // self-admitted: slot taken, grant advanced
	admitGranted         // lost the grant race to a releaser: slot pre-paid
)

// admitHead is one self-admission attempt by the head waiter (ticket t) of
// cohort n: if designation names this cohort and a slot is free, take the
// slot and advance the grant past our own ticket. Losing the grant CAS means
// a releaser granted us concurrently and already paid a slot, so ours is
// returned. Single attempt, no waiting — the caller owns the loop.
func (l *Restricted) admitHead(p lockapi.Proc, n int, t uint64) int {
	// Slot availability first: a head of a full active set parks after a
	// single load, without disturbing the queue or rotation lines.
	a := p.Load(&l.active, lockapi.Acquire)
	if a >= l.target(p) {
		return admitWait
	}
	des, _, rs, viaRot, ok := l.designate(p, false, n)
	if l.o.BreakRecirculation {
		// Broken variant: every head barges regardless of designation.
		des, viaRot, ok = n, false, true
	}
	if !ok || des != n {
		// Not this cohort's turn. Park; a releaser's maybeGrant rotates to
		// us within PassLimit handovers, and with the lock idle the
		// designated cohort's own head self-admits, releases, and grants us.
		return admitWait
	}
	if !p.CAS(&l.active, a, a+1, lockapi.AcqRel) {
		return admitRetry
	}
	if p.CAS(&l.qgrant[n], t, t+1, lockapi.AcqRel) {
		// Promote the next head: its wake slot learns the new grant value,
		// so it discovers headship on its own line (w == its ticket).
		l.pokeSlot(p, &l.wake[n][int((t+1)%uint64(l.slots))], t+1)
		l.noteGrant(p, rs, n, viaRot)
		return admitAdmitted
	}
	p.Add(&l.active, ^uint64(0), lockapi.AcqRel)
	return admitGranted
}

// Acquire implements lockapi.Lock: enqueue into the cohort's passive queue
// — the very first memory operation publishes the claim, which is what makes
// the bounded-bypass guarantee machine-checkable — then wait to be granted
// into the active set (by a releaser, or by self-admission when head and
// designated) and finally contend on the inner lock among at most target
// threads.
func (l *Restricted) Acquire(p lockapi.Proc, c lockapi.Ctx) {
	l.EmitAcquireStart(p)
	cc := c.(*ctx)
	n := l.nodeOf(p)
	t := p.Add(&l.qticket[n], 1, lockapi.AcqRel) - 1
	slot := &l.wake[n][int(t%uint64(l.slots))]
	cc.bo.Reset()
	for {
		w := p.Load(slot, lockapi.Acquire)
		if w > t {
			// A releaser granted us and pre-paid the active slot.
			break
		}
		if w != t {
			// Passive: recirculate with jittered backoff on our own wake
			// line. The first Spin of the pause parks on the slot just
			// loaded, so only a grant or head-poke aimed at us wakes us.
			cc.bo.Pause(p)
			continue
		}
		// w == t: we are the head of our cohort's queue.
		st := l.admitHead(p, n, t)
		if st == admitAdmitted || st == admitGranted {
			break
		}
		if st == admitRetry {
			continue
		}
		// Waiting head: park on our wake slot (re-load it so backends that
		// await the last-touched location watch the right cell — a grant
		// always lands on this slot, because releasers scan every queue
		// and rotation bounds how long ours is passed over).
		if p.Load(slot, lockapi.Acquire) == t {
			p.Spin()
		}
	}
	l.inner.Acquire(p, cc.inner)
	if tp, ok := p.(interface{ Time() int64 }); ok {
		cc.acquiredAt, cc.timed = tp.Time(), true
	} else {
		cc.timed = false
	}
	l.EmitAcquired(p)
}

// adapt runs the release-side target adaptation: a pathological hold time
// (preempted holder) halves the target; GrowEvery consecutive healthy
// releases grow it back by one, up to the configured Target.
func (l *Restricted) adapt(p lockapi.Proc, cc *ctx) {
	if l.o.DisableAdapt || !cc.timed {
		return
	}
	tp, ok := p.(interface{ Time() int64 })
	if !ok {
		return
	}
	hold := tp.Time() - cc.acquiredAt
	if hold > l.o.PreemptHoldNS {
		tg := p.Load(&l.tgt, lockapi.Acquire)
		if half := tg / 2; half >= uint64(l.o.MinTarget) && tg > uint64(l.o.MinTarget) {
			p.CAS(&l.tgt, tg, half, lockapi.AcqRel)
		} else if tg > uint64(l.o.MinTarget) {
			p.CAS(&l.tgt, tg, uint64(l.o.MinTarget), lockapi.AcqRel)
		}
		p.Store(&l.grow, 0, lockapi.Release)
		return
	}
	if g := p.Add(&l.grow, 1, lockapi.AcqRel); g >= uint64(l.o.GrowEvery) {
		tg := p.Load(&l.tgt, lockapi.Acquire)
		if tg < uint64(l.o.Target) {
			p.CAS(&l.tgt, tg, tg+1, lockapi.AcqRel)
		}
		p.Store(&l.grow, 0, lockapi.Release)
	}
}

// maybeGrant recirculates one passive waiter after a release, if a slot is
// free: pick the designated cohort, pay its active slot, then advance its
// grant word. The grant CAS is validated against a freshly re-read
// ticket/grant pair so a drained queue can never be over-granted (which
// would leak an active slot). Losing the grant CAS to a self-admitting head
// returns the slot and retries, bounded by the cohort count.
func (l *Restricted) maybeGrant(p lockapi.Proc, a uint64) {
	// Refill the active set back up to the target, not just by one: parked
	// heads sleep until their wake slot is written, so a slot lost here (CAS
	// race, queue emptied between designation and grant) is only recovered
	// by a later grant. Granting a single waiter per release would let the
	// active set decay to one and stay there — the lock would serialize on
	// the grant chain no matter what the target says.
	for attempt := 0; attempt <= 2*(l.nodes+2); attempt++ {
		if a >= l.target(p) {
			return
		}
		des, qg, rs, viaRot, ok := l.designate(p, true, -1)
		if !ok {
			return
		}
		if !p.CAS(&l.active, a, a+1, lockapi.AcqRel) {
			a = p.Load(&l.active, lockapi.Acquire)
			continue
		}
		if p.CAS(&l.qgrant[des], qg, qg+1, lockapi.AcqRel) {
			// Wake exactly the granted waiter on its own line, then
			// promote the next head on its line: two single-sharer writes
			// instead of a broadcast to every parked waiter.
			l.pokeSlot(p, &l.wake[des][int(qg%uint64(l.slots))], qg+1)
			l.pokeSlot(p, &l.wake[des][int((qg+1)%uint64(l.slots))], qg+1)
			l.noteGrant(p, rs, des, viaRot)
			a = p.Load(&l.active, lockapi.Acquire)
			continue
		}
		a = p.Add(&l.active, ^uint64(0), lockapi.AcqRel)
	}
}

// Release implements lockapi.Lock: adapt the target from the observed hold
// time, release the inner lock, leave the active set, and recirculate one
// passive waiter into the freed slot.
func (l *Restricted) Release(p lockapi.Proc, c lockapi.Ctx) {
	cc := c.(*ctx)
	l.adapt(p, cc)
	l.inner.Release(p, cc.inner)
	a := p.Add(&l.active, ^uint64(0), lockapi.Release)
	l.maybeGrant(p, a)
	l.EmitReleased(p)
}

// TryAcquire implements lockapi.TryLocker: a bounded admission attempt that
// never jumps passive waiters — any occupied queue fails the try — followed
// by the inner lock's TryAcquire, with the active slot returned on failure
// so no residual state remains.
func (l *Restricted) TryAcquire(p lockapi.Proc, c lockapi.Ctx) bool {
	tl, isTry := l.inner.(lockapi.TryLocker)
	if !isTry || !lockapi.SupportsTry(l.inner) {
		return false
	}
	cc := c.(*ctx)
	for n := 0; n < l.nodes; n++ {
		t := p.Load(&l.qticket[n], lockapi.Acquire)
		g := p.Load(&l.qgrant[n], lockapi.Acquire)
		if t > g {
			return false
		}
	}
	a := p.Load(&l.active, lockapi.Acquire)
	if a >= l.target(p) {
		return false
	}
	if !p.CAS(&l.active, a, a+1, lockapi.AcqRel) {
		return false
	}
	if !tl.TryAcquire(p, cc.inner) {
		p.Add(&l.active, ^uint64(0), lockapi.AcqRel)
		return false
	}
	if tp, ok := p.(interface{ Time() int64 }); ok {
		cc.acquiredAt, cc.timed = tp.Time(), true
	} else {
		cc.timed = false
	}
	l.EmitAcquireStart(p)
	l.EmitAcquired(p)
	return true
}

// TrySupported implements lockapi.TryInfo: the wrapper supports trylock
// exactly when the inner lock does.
func (l *Restricted) TrySupported() bool { return lockapi.SupportsTry(l.inner) }

// HasWaiters implements lockapi.WaiterDetector: waiters exist while any
// passive queue is occupied or another thread is admitted alongside the
// owner.
func (l *Restricted) HasWaiters(p lockapi.Proc, _ lockapi.Ctx) bool {
	for n := 0; n < l.nodes; n++ {
		t := p.Load(&l.qticket[n], lockapi.Relaxed)
		g := p.Load(&l.qgrant[n], lockapi.Relaxed)
		if t > g {
			return true
		}
	}
	return p.Load(&l.active, lockapi.Relaxed) > 1
}

// Fair implements lockapi.FairnessInfo: recirculation is bounded-bypass
// (per-cohort FIFO queues plus forced rotation), so the combination is
// starvation-free exactly when the inner lock is — unless the broken
// recirculation variant is selected, which starves by construction.
func (l *Restricted) Fair() bool {
	return !l.o.BreakRecirculation && lockapi.Fair(l.inner)
}

var (
	_ lockapi.Lock           = (*Restricted)(nil)
	_ lockapi.TryLocker      = (*Restricted)(nil)
	_ lockapi.TryInfo        = (*Restricted)(nil)
	_ lockapi.WaiterDetector = (*Restricted)(nil)
	_ lockapi.FairnessInfo   = (*Restricted)(nil)
	_ lockapi.Instrumented   = (*Restricted)(nil)
)
