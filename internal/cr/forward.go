package cr

import (
	"github.com/clof-go/clof/internal/lockapi"
)

// This file holds the capability-forwarding variants Restrict selects from
// when the inner lock offers a reader path. Both paths deliberately bypass
// the admission machinery:
//
//   - Shared (reader-writer) acquisitions go straight to the inner lock's
//     AcquireShared. Concurrency restriction exists to stop scalability
//     collapse on the exclusive path — spinner herds burning coherence
//     bandwidth behind one holder. A reader-writer lock's shared path has no
//     such collapse mode (readers ride per-cohort counters and never convoy
//     behind each other), so parking readers in the passive queues would add
//     handover latency without preventing anything. Writers still pay full
//     admission.
//
//   - Seqlock optimistic reads (ReadSeq/ReadValidate) only load the version
//     cell; there is nothing to restrict, and hiding the capability would
//     silently demote the sharded store's lock-free read path to queued
//     exclusive acquisitions — the opposite of what the combinator is for.
//
// The conformance gate for this forwarding is locktest.WrapperConformance,
// which internal/locktest's wrapper test runs for cr over every catalog
// entry, seq: and rwlock families included.

// RestrictedRW is a Restricted whose inner lock is a lockapi.RWLocker;
// shared acquisitions forward to the inner reader path unrestricted.
type RestrictedRW struct {
	*Restricted
	rw lockapi.RWLocker
}

// AcquireShared implements lockapi.RWLocker on the inner lock's reader path.
func (l *RestrictedRW) AcquireShared(p lockapi.Proc, c lockapi.Ctx) {
	l.rw.AcquireShared(p, c.(*ctx).inner)
}

// ReleaseShared implements lockapi.RWLocker.
func (l *RestrictedRW) ReleaseShared(p lockapi.Proc, c lockapi.Ctx) {
	l.rw.ReleaseShared(p, c.(*ctx).inner)
}

// RestrictedSeq is a Restricted whose inner lock is a lockapi.SeqReader;
// optimistic reads forward to the inner validated-read path unrestricted.
type RestrictedSeq struct {
	*Restricted
	sq lockapi.SeqReader
}

// ReadSeq implements lockapi.SeqReader.
func (l *RestrictedSeq) ReadSeq(p lockapi.Proc) uint64 { return l.sq.ReadSeq(p) }

// ReadValidate implements lockapi.SeqReader.
func (l *RestrictedSeq) ReadValidate(p lockapi.Proc, s uint64) bool {
	return l.sq.ReadValidate(p, s)
}

// RestrictedRWSeq forwards both reader capabilities (e.g. cr over
// seq:rwlock).
type RestrictedRWSeq struct {
	RestrictedRW
	sq lockapi.SeqReader
}

// ReadSeq implements lockapi.SeqReader.
func (l *RestrictedRWSeq) ReadSeq(p lockapi.Proc) uint64 { return l.sq.ReadSeq(p) }

// ReadValidate implements lockapi.SeqReader.
func (l *RestrictedRWSeq) ReadValidate(p lockapi.Proc, s uint64) bool {
	return l.sq.ReadValidate(p, s)
}

var (
	_ lockapi.RWLocker  = (*RestrictedRW)(nil)
	_ lockapi.SeqReader = (*RestrictedSeq)(nil)
	_ lockapi.RWLocker  = (*RestrictedRWSeq)(nil)
	_ lockapi.SeqReader = (*RestrictedRWSeq)(nil)
)
