package shfllock

import (
	"testing"

	"github.com/clof-go/clof/internal/cna"
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/locktest"
	"github.com/clof-go/clof/internal/topo"
)

func TestNativeMutualExclusion(t *testing.T) {
	for _, m := range []*topo.Machine{topo.X86Server(), topo.Armv8Server()} {
		t.Run(m.Arch.String(), func(t *testing.T) {
			locktest.NativeStress(t, New(m), m, 12, 3000)
		})
	}
}

func TestUncontendedFastPath(t *testing.T) {
	m := topo.X86Server()
	l := New(m)
	c := l.NewCtx()
	p := lockapi.NewNativeProc(0)
	for i := 0; i < 100; i++ {
		l.Acquire(p, c)
		l.Release(p, c)
	}
}

func TestSimulatedProgressNoStarvation(t *testing.T) {
	m := topo.Armv8Server()
	res := locktest.SimRun(t, func() lockapi.Lock { return New(m) }, locktest.SimConfig{
		Machine: m, Threads: 64, Horizon: 1_000_000, CSWork: 80, NCSWork: 120,
	})
	if res.Total == 0 {
		t.Fatal("no progress")
	}
	for i, c := range res.PerThread {
		if c == 0 {
			t.Errorf("thread %d starved", i)
		}
	}
}

// TestShufflingLocality: like CNA, ShflLock groups NUMA-local waiters.
func TestShufflingLocality(t *testing.T) {
	// Both packages in play (cf. the CNA test): shuffling pays off once
	// FIFO order would cross the socket link half the time.
	m := topo.Armv8Server()
	cfg := locktest.SimConfig{
		Machine: m, Threads: 128, Horizon: 400_000, CSWork: 80, NCSWork: 120,
	}
	shfl := locktest.SimRun(t, func() lockapi.Lock { return New(m) }, cfg)
	mcs := locktest.SimRun(t, func() lockapi.Lock { return locks.NewMCS() }, cfg)
	numaLocal := func(r locktest.SimResult) float64 {
		var local, total uint64
		for lvl, c := range r.HandoverLevels {
			total += c
			if topo.Level(lvl) <= topo.NUMA {
				local += c
			}
		}
		if total == 0 {
			return 0
		}
		return float64(local) / float64(total)
	}
	if numaLocal(shfl) < 0.7 {
		t.Errorf("ShflLock numa-local fraction %.2f, want > 0.7", numaLocal(shfl))
	}
	if shfl.Total <= mcs.Total {
		t.Errorf("ShflLock (%d) did not beat MCS (%d) at 128 threads", shfl.Total, mcs.Total)
	}
}

// TestComparableToCNA reproduces the paper's observation that ShflLock
// performs comparably to CNA (§5.3.2): within 2x either way.
func TestComparableToCNA(t *testing.T) {
	m := topo.Armv8Server()
	cfg := locktest.SimConfig{
		Machine: m, Threads: 96, Horizon: 400_000, CSWork: 80, NCSWork: 120,
	}
	shfl := locktest.SimRun(t, func() lockapi.Lock { return New(m) }, cfg)
	cnaPkg := locktest.SimRun(t, func() lockapi.Lock { return cna.New(m) }, cfg)
	lo, hi := float64(cnaPkg.Total)*0.5, float64(cnaPkg.Total)*2
	if f := float64(shfl.Total); f < lo || f > hi {
		t.Errorf("ShflLock (%d) not comparable to CNA (%d)", shfl.Total, cnaPkg.Total)
	}
}

func TestFairnessDeclared(t *testing.T) {
	if !lockapi.Fair(New(topo.X86Server())) {
		t.Error("ShflLock must declare fairness")
	}
}
