// Package shfllock implements a ShflLock-style shuffling lock after Kashyap
// et al. (SOSP'19), one of the paper's baselines. ShflLock decouples the
// lock word from the waiting queue: a test-and-set word is the actual lock,
// a queue orders the waiters, and "shuffling" reorders the queue so waiters
// on the owner's NUMA node run back to back.
//
// Implementation notes (documented simplifications, DESIGN.md §1):
//
//   - In the original, a waiter near the head becomes the "shuffler" and
//     relinks the queue in place. We realize the same reordering with the
//     head-owned secondary-queue technique (as in CNA): bypassed remote
//     waiters park on a side list and are spliced back periodically. The
//     observable policy — group NUMA-local waiters, bounded bypass — is the
//     same; only the data-structure choreography differs.
//   - Lock stealing (the TAS fast path) is attempted only when the queue is
//     empty, approximating the original's bounded stealing policy.
//
// Like CNA, ShflLock knows only the NUMA level (paper Table 1), so it leaves
// cache-group and package locality unexploited.
package shfllock

import (
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/topo"
)

// FlushPeriod bounds NUMA-preferential handovers between FIFO flushes.
const FlushPeriod = 256

type node struct {
	next lockapi.Cell
	// spin: 0 = waiting for queue-head role, 1 = head (may take the lock).
	spin lockapi.Cell
	numa lockapi.Cell
}

// Lock is a shuffling lock. It implements lockapi.Lock; Proc.ID() must be
// the caller's CPU number.
type Lock struct {
	mach *topo.Machine
	// glock is the test-and-set word actually protecting the critical
	// section.
	glock lockapi.Cell
	// tail is the waiter-queue tail.
	tail lockapi.Cell
	// secHead/secTail: bypassed remote waiters (head-owned, like CNA).
	secHead   lockapi.Cell
	secTail   lockapi.Cell
	handovers lockapi.Cell
	nodes     []*node
}

// New returns a ShflLock for the given machine. Head-owned secondary-queue
// state shares one cache line; glock and tail each get their own.
func New(m *topo.Machine) *Lock {
	l := &Lock{mach: m, nodes: make([]*node, 1, 8)}
	lockapi.Colocate(&l.secHead, &l.secTail, &l.handovers)
	return l
}

type ctxT struct {
	id uint64
}

// NewCtx implements lockapi.Lock. Only safe during single-threaded setup.
func (l *Lock) NewCtx() lockapi.Ctx {
	n := &node{}
	lockapi.Colocate(&n.next, &n.spin, &n.numa) // one queue node = one line
	l.nodes = append(l.nodes, n)
	return &ctxT{id: uint64(len(l.nodes) - 1)}
}

func (l *Lock) node(h uint64) *node { return l.nodes[h] }

// Acquire implements lockapi.Lock.
func (l *Lock) Acquire(p lockapi.Proc, c lockapi.Ctx) {
	// Fast path: steal the TAS word when nobody queues.
	if p.Load(&l.tail, lockapi.Relaxed) == 0 && //lint:order relaxed-ok fast-path peek; the CAS provides Acquire on success
		p.Load(&l.glock, lockapi.Relaxed) == 0 &&
		p.CAS(&l.glock, 0, 1, lockapi.Acquire) {
		return
	}

	me := c.(*ctxT).id
	n := l.node(me)
	p.Store(&n.next, 0, lockapi.Relaxed)
	p.Store(&n.spin, 0, lockapi.Relaxed)
	p.Store(&n.numa, uint64(l.mach.CohortOf(p.ID(), topo.NUMA)), lockapi.Relaxed)
	pred := p.Swap(&l.tail, me, lockapi.AcqRel)
	if pred != 0 {
		p.Store(&l.node(pred).next, me, lockapi.Release)
		for p.Load(&n.spin, lockapi.Acquire) == 0 {
			p.Spin()
		}
	}

	// We are the queue head: wait for the TAS word, then pass the head
	// role to the next waiter (shuffled NUMA-locally) before entering.
	for {
		if p.Load(&l.glock, lockapi.Relaxed) == 0 && //lint:order relaxed-ok TTAS peek; the CAS provides Acquire on the winning entry
			p.CAS(&l.glock, 0, 1, lockapi.Acquire) {
			break
		}
		p.Spin()
	}
	l.dequeueAndPassHead(p, me)
}

// dequeueAndPassHead removes our node from the queue and grants the head
// role to the next waiter, preferring one on our NUMA node (shuffling).
func (l *Lock) dequeueAndPassHead(p lockapi.Proc, me uint64) {
	n := l.node(me)
	flush := p.Add(&l.handovers, 1, lockapi.Relaxed)%FlushPeriod == 0

	succ := p.Load(&n.next, lockapi.Acquire)
	if succ == 0 {
		secHead := p.Load(&l.secHead, lockapi.Relaxed)
		if secHead == 0 {
			if p.CAS(&l.tail, me, 0, lockapi.Release) {
				return
			}
		} else {
			secTail := p.Load(&l.secTail, lockapi.Relaxed)
			if p.CAS(&l.tail, me, secTail, lockapi.Release) {
				p.Store(&l.secHead, 0, lockapi.Relaxed)
				p.Store(&l.secTail, 0, lockapi.Relaxed)
				l.passHead(p, secHead)
				return
			}
		}
		for {
			if succ = p.Load(&n.next, lockapi.Acquire); succ != 0 {
				break
			}
			p.Spin()
		}
	}

	secHead := p.Load(&l.secHead, lockapi.Relaxed)
	if flush && secHead != 0 {
		l.spliceSecondaryBefore(p, succ)
		l.passHead(p, secHead)
		return
	}

	myNuma := p.Load(&n.numa, lockapi.Relaxed)
	local, prefixHead, prefixTail := l.findLocal(p, succ, myNuma)
	if local != 0 {
		if prefixHead != 0 {
			l.appendSecondary(p, prefixHead, prefixTail)
		}
		l.passHead(p, local)
		return
	}
	if secHead != 0 {
		l.spliceSecondaryBefore(p, succ)
		l.passHead(p, secHead)
		return
	}
	l.passHead(p, succ)
}

func (l *Lock) passHead(p lockapi.Proc, h uint64) {
	p.Store(&l.node(h).spin, 1, lockapi.Release)
}

func (l *Lock) findLocal(p lockapi.Proc, from, numa uint64) (local, prefixHead, prefixTail uint64) {
	cur := from
	var prev uint64
	for cur != 0 {
		//lint:order relaxed-ok numa hint was published by the Release link store and read after the Acquire next load
		if p.Load(&l.node(cur).numa, lockapi.Relaxed) == numa {
			if prev != 0 {
				return cur, from, prev
			}
			return cur, 0, 0
		}
		prev = cur
		cur = p.Load(&l.node(cur).next, lockapi.Acquire)
	}
	return 0, 0, 0
}

func (l *Lock) appendSecondary(p lockapi.Proc, head, tail uint64) {
	p.Store(&l.node(tail).next, 0, lockapi.Relaxed)
	//lint:order relaxed-ok secondary queue is queue-head-private; the splice's Release link publishes it
	if p.Load(&l.secHead, lockapi.Relaxed) == 0 {
		p.Store(&l.secHead, head, lockapi.Relaxed)
	} else {
		oldTail := p.Load(&l.secTail, lockapi.Relaxed)
		p.Store(&l.node(oldTail).next, head, lockapi.Relaxed)
	}
	p.Store(&l.secTail, tail, lockapi.Relaxed)
}

func (l *Lock) spliceSecondaryBefore(p lockapi.Proc, succ uint64) {
	secTail := p.Load(&l.secTail, lockapi.Relaxed)
	p.Store(&l.node(secTail).next, succ, lockapi.Release)
	p.Store(&l.secHead, 0, lockapi.Relaxed)
	p.Store(&l.secTail, 0, lockapi.Relaxed)
}

// TryAcquire implements lockapi.TryLocker: the bounded-stealing fast path —
// grab the TAS word only when no waiter queues (stealing from a queued
// waiter would break the bounded-bypass policy). Never enqueues, so failure
// leaves no residual state.
func (l *Lock) TryAcquire(p lockapi.Proc, _ lockapi.Ctx) bool {
	//lint:order relaxed-ok queue peek only; the CAS below provides Acquire on success
	if p.Load(&l.tail, lockapi.Relaxed) != 0 {
		return false
	}
	return p.CAS(&l.glock, 0, 1, lockapi.Acquire)
}

// Release implements lockapi.Lock: drop the TAS word; the queue-head waiter
// (already selected) grabs it.
func (l *Lock) Release(p lockapi.Proc, _ lockapi.Ctx) {
	p.Store(&l.glock, 0, lockapi.Release)
}

// Fair implements lockapi.FairnessInfo: bounded bypass via the periodic
// flush; stealing only on an empty queue.
func (l *Lock) Fair() bool { return true }

var (
	_ lockapi.Lock         = (*Lock)(nil)
	_ lockapi.FairnessInfo = (*Lock)(nil)
	_ lockapi.TryLocker    = (*Lock)(nil)
)
