package clof

import (
	"github.com/clof-go/clof/internal/locks"
)

// Generate enumerates every composition of the given basic locks over
// `levels` hierarchy levels — the paper's exhaustive N^M generation (§4.3).
// The order is deterministic: the last level (system) varies slowest, so
// compositions sharing a system lock are adjacent.
func Generate(basics []locks.Type, levels int) []Composition {
	if levels <= 0 || len(basics) == 0 {
		return nil
	}
	n := len(basics)
	total := 1
	for i := 0; i < levels; i++ {
		total *= n
	}
	out := make([]Composition, 0, total)
	idx := make([]int, levels)
	for {
		comp := make(Composition, levels)
		for i, j := range idx {
			comp[i] = basics[j]
		}
		out = append(out, comp)
		// Odometer increment, lowest level fastest.
		k := 0
		for ; k < levels; k++ {
			idx[k]++
			if idx[k] < n {
				break
			}
			idx[k] = 0
		}
		if k == levels {
			return out
		}
	}
}
