// Package clof implements the paper's primary contribution: the
// Compositional Lock Framework (§4). Given a hierarchy configuration
// (internal/topo) and a set of verified NUMA-oblivious basic locks
// (internal/locks), it composes one basic lock per hierarchy level into a
// multi-level, level-heterogeneous, NUMA-aware lock that is correct by
// construction (the induction argument is model-checked in internal/mcheck).
//
// The paper composes locks with compile-time syntactic recursion (C macros).
// Go has no macros, so composition happens at runtime through the
// lockapi.Lock interface — a documented substitution (DESIGN.md §3.3): the
// dispatch overhead is identical for every composed lock and for the HMCS
// baseline, so all comparisons remain apples-to-apples. The recursive
// structure of the paper's lockgen (Fig. 8) is otherwise preserved verbatim
// in acquireNode/releaseNode below.
package clof

import (
	"fmt"
	"strings"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/topo"
)

// DefaultKeepLocalThreshold is H, the number of consecutive in-cohort
// handovers after which keep_local forces the high lock to be released to
// another cohort (§4.1.2). The paper uses 128 per level, matching HMCS.
const DefaultKeepLocalThreshold = 128

// Composition assigns one basic-lock type per hierarchy level, ordered from
// the lowest (most local) level to the system level — the paper's
// "tkt-clh-tkt-tkt" notation reads in the same order.
type Composition []locks.Type

// String renders the paper's notation, e.g. "hem-hem-mcs-clh".
func (c Composition) String() string {
	names := make([]string, len(c))
	for i, t := range c {
		names[i] = t.Name
	}
	return strings.Join(names, "-")
}

// Fair reports whether every component lock is fair; by Theorem 4.1 the
// composed lock is then starvation-free.
func (c Composition) Fair() bool {
	for _, t := range c {
		if !t.Fair {
			return false
		}
	}
	return true
}

// ParseComposition resolves a notation string like "tkt-clh-tkt" into a
// Composition.
func ParseComposition(s string) (Composition, error) {
	parts := strings.Split(s, "-")
	// "hem-ctr" contains a dash; re-join such fragments.
	var names []string
	for i := 0; i < len(parts); i++ {
		if parts[i] == "hem" && i+1 < len(parts) && parts[i+1] == "ctr" {
			names = append(names, "hem-ctr")
			i++
			continue
		}
		names = append(names, parts[i])
	}
	comp := make(Composition, 0, len(names))
	for _, n := range names {
		t, ok := locks.ByName(n)
		if !ok {
			return nil, fmt.Errorf("clof: unknown basic lock %q in %q", n, s)
		}
		comp = append(comp, t)
	}
	return comp, nil
}

// levelLock is one node of the unfolded hierarchy (paper Fig. 7): the basic
// lock protecting one cohort at one level, plus the metadata d that lockgen
// attaches to a low lock — the waiters counter, the has_high_lock flag, the
// keep_local counter, the context used for the high lock, and the pointer to
// the high lock itself.
type levelLock struct {
	lock lockapi.Lock
	// det is the custom has_waiters when the basic lock provides one; then
	// the waiters counter below is unused (paper §4.1.2).
	det lockapi.WaiterDetector
	// waiters is the inc_waiters/dec_waiters read-indicator counter (used
	// only for basic locks without a custom detector).
	waiters lockapi.Cell
	// highHeld fuses the has_high_lock flag with the keep_local counter:
	// 0 means the high lock is not held for this cohort; v > 0 means it is
	// held and has been passed locally v times. Carrying the count in the
	// flag (as HMCS carries it in the status word) removes a separate
	// counter line from the handover path; the keep_local semantics —
	// at most H consecutive local passes — are unchanged.
	highHeld lockapi.Cell
	// parent is the high lock's node; nil at the system root.
	parent *levelLock
	// highCtx is the context this cohort uses to acquire/release the high
	// lock. The context invariant (§4.1.3) holds because only the owner of
	// `lock` ever touches highCtx.
	highCtx lockapi.Ctx
}

// Lock is a CLoF-composed NUMA-aware lock: a tree of basic locks mirroring
// the hierarchy configuration, rooted at a single system-level lock. It
// implements lockapi.Lock; the Proc's ID() must be the acquiring thread's
// CPU number so the lock can locate the thread's leaf cohort.
type Lock struct {
	// Probe reports the composed lock's acquire/grant/release edges to an
	// attached observer (lockapi.Instrumented). The edges bracket the whole
	// hierarchy climb: acquire-start before the leaf enqueue (or fast-path
	// attempt), acquired once the root — or the passed high lock, or the TAS
	// word — is held. Detached, each edge is one nil check.
	lockapi.Probe
	hier      *topo.Hierarchy
	comp      Composition
	threshold uint64
	// leaves[i] is the level-0 lock of leaf cohort i.
	leaves []*levelLock
	// lowLevel caches hier.Levels[0].
	lowLevel topo.Level
	// releaseOrderBug, when set, inverts the release order of low and high
	// locks — the deadlock the paper warns about in §4.1.3. Only for
	// verification tests (see internal/mcheck); never enable otherwise.
	releaseOrderBug bool
	// noCustomDetector disables custom has_waiters detectors (ablation).
	noCustomDetector bool

	// fastPath enables the TAS fast path the paper's §6 suggests as a
	// simple extension (after ShflLock's stealing policy): `fast` is a
	// test-and-set word that is the innermost mutex; an uncontended
	// acquirer takes it directly, skipping the whole hierarchy climb. Slow
	// acquirers still climb, then claim `fast` with priority (stealing is
	// suppressed while slowActive > 0). Costs strict fairness, like every
	// fast-path extension.
	fastPath   bool
	fast       lockapi.Cell
	slowActive lockapi.Cell

	// canTry records whether every component lock supports TryAcquire, which
	// is what the composed TryAcquire needs to climb-and-roll-back.
	canTry bool
}

// Option customizes New.
type Option func(*Lock)

// WithThreshold overrides the keep_local threshold H (default 128).
func WithThreshold(h uint64) Option {
	return func(l *Lock) { l.threshold = h }
}

// WithReleaseOrderBug builds the intentionally broken variant that releases
// the low lock before the high lock, violating the context invariant
// (§4.1.3). It exists so the model checker can demonstrate the resulting
// deadlock; never use it in real code.
func WithReleaseOrderBug() Option {
	return func(l *Lock) { l.releaseOrderBug = true }
}

// WithoutCustomHasWaiters forces the generic inc_waiters/dec_waiters
// read-indicator counter even for locks offering a custom detector
// (§4.1.2). Used by the ablation benchmarks to quantify the custom
// has_waiters optimization.
func WithoutCustomHasWaiters() Option {
	return func(l *Lock) { l.noCustomDetector = true }
}

// WithTASFastPath enables the test-and-set fast path (§6: "Extending CLoF
// with the same TAS approach as ShflLock is rather simple"): single-thread
// and low-contention acquisitions bypass the hierarchy entirely. The
// resulting lock is no longer strictly FIFO (Fair reports false).
func WithTASFastPath() Option {
	return func(l *Lock) { l.fastPath = true }
}

// New composes a CLoF lock over the hierarchy h: comp[i] is the basic lock
// used at h.Levels[i]. One basic-lock instance is created per cohort per
// level and linked to its parent cohort's lock one level up.
func New(h *topo.Hierarchy, comp Composition, opts ...Option) (*Lock, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	if len(comp) != len(h.Levels) {
		return nil, fmt.Errorf("clof: composition %q has %d locks for %d levels", comp, len(comp), len(h.Levels))
	}
	l := &Lock{
		hier:      h,
		comp:      comp,
		threshold: DefaultKeepLocalThreshold,
		lowLevel:  h.Levels[0],
	}
	for _, o := range opts {
		o(l)
	}

	m := h.Machine
	// Build top-down: parents[j] holds the node for cohort j of the level
	// currently above the one being built.
	var parents []*levelLock
	for li := len(h.Levels) - 1; li >= 0; li-- {
		level := h.Levels[li]
		n := m.Cohorts(level)
		nodes := make([]*levelLock, n)
		for j := 0; j < n; j++ {
			basic := comp[li].New()
			node := &levelLock{lock: basic}
			if d, ok := basic.(lockapi.WaiterDetector); ok && !l.noCustomDetector {
				node.det = d
			}
			if li < len(h.Levels)-1 {
				// Parent cohort: the enclosing cohort at the level above.
				parentLevel := h.Levels[li+1]
				someCPU := m.CohortCPUs(level, j)[0]
				node.parent = parents[m.CohortOf(someCPU, parentLevel)]
				// The context this cohort uses for the high lock lives in
				// the low lock's metadata (context abstraction, §4.1.3).
				node.highCtx = node.parent.lock.NewCtx()
			}
			nodes[j] = node
		}
		parents = nodes
	}
	l.leaves = parents

	// The composition supports TryAcquire iff every level's basic lock does
	// (checked on one leaf-to-root chain; levels are type-homogeneous).
	l.canTry = true
	for n := l.leaves[0]; n != nil; n = n.parent {
		_, isTry := n.lock.(lockapi.TryLocker)
		if !isTry || !lockapi.SupportsTry(n.lock) {
			l.canTry = false
			break
		}
	}
	return l, nil
}

// Must is New that panics on error, for tests and examples.
func Must(h *topo.Hierarchy, comp Composition, opts ...Option) *Lock {
	l, err := New(h, comp, opts...)
	if err != nil {
		panic(err)
	}
	return l
}

// Hierarchy returns the hierarchy configuration the lock was built for.
func (l *Lock) Hierarchy() *topo.Hierarchy { return l.hier }

// Composition returns the per-level basic-lock assignment.
func (l *Lock) Composition() Composition { return l.comp }

// Name returns the paper notation for this lock, e.g. "tkt-clh-tkt-tkt".
func (l *Lock) Name() string { return l.comp.String() }

// Fair implements lockapi.FairnessInfo via Theorem 4.1; the TAS fast path
// forfeits strict fairness (bounded in practice by slowActive suppression,
// but not FIFO).
func (l *Lock) Fair() bool { return l.comp.Fair() && !l.fastPath }

// threadCtx is the per-thread context: one basic-lock context per leaf
// cohort (a thread uses the leaf of whatever CPU its Proc reports).
type threadCtx struct {
	leafCtxs []lockapi.Ctx
	// held remembers the leaf used by the in-progress acquisition so that
	// Release pairs correctly even if the caller migrates between CPUs of
	// different cohorts while holding the lock.
	held *levelLock
	// heldCtx is the leaf context used by the in-progress acquisition.
	heldCtx lockapi.Ctx
	// fastOnly marks an acquisition that took the TAS fast path and holds
	// no hierarchy locks.
	fastOnly bool
}

// NewCtx implements lockapi.Lock. Only safe during single-threaded setup.
func (l *Lock) NewCtx() lockapi.Ctx {
	tc := &threadCtx{leafCtxs: make([]lockapi.Ctx, len(l.leaves))}
	for i, leaf := range l.leaves {
		tc.leafCtxs[i] = leaf.lock.NewCtx()
	}
	return tc
}

// Acquire implements lockapi.Lock: climb from the leaf cohort of p's CPU to
// the system root (paper Fig. 7/8), unless the TAS fast path wins first.
func (l *Lock) Acquire(p lockapi.Proc, c lockapi.Ctx) {
	l.EmitAcquireStart(p)
	tc := c.(*threadCtx)
	if l.fastPath {
		// Steal only when the lock looks free AND nobody is in the slow
		// path (ShflLock-style bounded stealing).
		if p.Load(&l.fast, lockapi.Relaxed) == 0 && //lint:order relaxed-ok fast-path peek; the CAS provides Acquire on success
			p.Load(&l.slowActive, lockapi.Relaxed) == 0 &&
			p.CAS(&l.fast, 0, 1, lockapi.Acquire) {
			tc.fastOnly = true
			l.EmitAcquired(p)
			return
		}
		p.Add(&l.slowActive, 1, lockapi.Relaxed)
	}
	cohort := l.hier.Machine.CohortOf(p.ID(), l.lowLevel)
	leaf := l.leaves[cohort]
	tc.held = leaf
	tc.heldCtx = tc.leafCtxs[cohort]
	l.acquireNode(p, leaf, tc.heldCtx)
	if l.fastPath {
		// Hierarchy held: wait out any fast-path holder, then own the TAS
		// word. New stealers are suppressed by slowActive.
		for !p.CAS(&l.fast, 0, 1, lockapi.Acquire) {
			p.Spin()
		}
		p.Add(&l.slowActive, ^uint64(0), lockapi.Relaxed)
	}
	l.EmitAcquired(p)
}

// acquireNode is lockgen(acq(CLoF(l,L), c)) from Fig. 8.
func (l *Lock) acquireNode(p lockapi.Proc, n *levelLock, c lockapi.Ctx) {
	if n.parent == nil {
		// Base case: the system-level basic lock.
		n.lock.Acquire(p, c)
		return
	}
	if n.det == nil {
		p.Add(&n.waiters, 1, lockapi.Relaxed) // inc_waiters
	}
	n.lock.Acquire(p, c)
	if n.det == nil {
		p.Add(&n.waiters, ^uint64(0), lockapi.Relaxed) // dec_waiters
	}
	// If the previous owner passed the high lock within this cohort, it is
	// already ours; otherwise climb. All these auxiliary accesses are
	// relaxed: the paper's VSync analysis (§4.2.3) shows the basic locks'
	// own barriers provide all required ordering.
	//lint:order relaxed-ok highHeld is passed under the held low lock, whose barriers order it (§4.2.3)
	if p.Load(&n.highHeld, lockapi.Relaxed) == 0 {
		//lint:lockorder climb-ok nested levelLock instances are totally ordered by tree height — the climb only ascends parent-ward (§3.1) — and mcheck's induction program verifies the composition deadlock-free
		l.acquireNode(p, n.parent, n.highCtx)
	}
}

// TrySupported implements lockapi.TryInfo: the composition supports
// TryAcquire when every component lock does (the try climb must be able to
// roll back from any level), or unconditionally with the TAS fast path
// (which tries the fast word alone and never climbs).
func (l *Lock) TrySupported() bool { return l.fastPath || l.canTry }

// TryAcquire implements lockapi.TryLocker. With the fast path the attempt
// is a single bounded-stealing CAS on the TAS word. Otherwise it climbs
// leaf-to-root with each level's TryAcquire and rolls back — releasing the
// low lock — as soon as one level refuses; a successor then finds highHeld
// clear and climbs itself, so the rollback leaves ordinary lock state. The
// waiters read-indicator is skipped on the try path: releasers then at worst
// under-count waiters and conservatively give the high lock away, which is
// the safe direction (paper §4.1.2).
func (l *Lock) TryAcquire(p lockapi.Proc, c lockapi.Ctx) bool {
	tc := c.(*threadCtx)
	if l.fastPath {
		if p.Load(&l.fast, lockapi.Relaxed) == 0 && //lint:order relaxed-ok fast-path peek; the CAS provides Acquire on success
			p.Load(&l.slowActive, lockapi.Relaxed) == 0 &&
			p.CAS(&l.fast, 0, 1, lockapi.Acquire) {
			tc.fastOnly = true
			// A trylock never waits: both acquire edges land at the
			// success instant so edge counts stay balanced.
			l.EmitAcquireStart(p)
			l.EmitAcquired(p)
			return true
		}
		return false
	}
	if !l.canTry {
		return false
	}
	cohort := l.hier.Machine.CohortOf(p.ID(), l.lowLevel)
	leaf := l.leaves[cohort]
	ctx := tc.leafCtxs[cohort]
	if !l.tryAcquireNode(p, leaf, ctx) {
		return false
	}
	tc.held, tc.heldCtx = leaf, ctx
	l.EmitAcquireStart(p)
	l.EmitAcquired(p)
	return true
}

// tryAcquireNode is acquireNode with refusal instead of waiting.
func (l *Lock) tryAcquireNode(p lockapi.Proc, n *levelLock, c lockapi.Ctx) bool {
	if n.parent == nil {
		return n.lock.(lockapi.TryLocker).TryAcquire(p, c)
	}
	if !n.lock.(lockapi.TryLocker).TryAcquire(p, c) {
		return false
	}
	//lint:order relaxed-ok highHeld is passed under the held low lock, whose barriers order it (§4.2.3)
	if p.Load(&n.highHeld, lockapi.Relaxed) != 0 {
		return true // the high lock was passed within this cohort
	}
	//lint:lockorder climb-ok same strictly parent-ward climb as acquireNode: tree height orders nested instances, and the failure path below rolls the low lock back
	if l.tryAcquireNode(p, n.parent, n.highCtx) {
		return true
	}
	// Roll back: we hold the low lock but not the high one, and highHeld is
	// 0, so a plain low release restores ordinary state.
	n.lock.Release(p, c)
	return false
}

// Release implements lockapi.Lock.
func (l *Lock) Release(p lockapi.Proc, c lockapi.Ctx) {
	tc := c.(*threadCtx)
	if l.fastPath {
		// The TAS word is the innermost mutex: drop it first.
		p.Store(&l.fast, 0, lockapi.Release)
		if tc.fastOnly {
			tc.fastOnly = false
			l.EmitReleased(p)
			return
		}
	}
	n, ctx := tc.held, tc.heldCtx
	if n == nil {
		panic("clof: Release without matching Acquire")
	}
	tc.held, tc.heldCtx = nil, nil
	l.releaseNode(p, n, ctx)
	l.EmitReleased(p)
}

// releaseNode is lockgen(rel(CLoF(l,L), c)) from Fig. 8. keep_local and
// pass_high_lock are fused: the pass flag's value is the consecutive-pass
// count (see levelLock.highHeld).
func (l *Lock) releaseNode(p lockapi.Proc, n *levelLock, c lockapi.Ctx) {
	if n.parent == nil {
		n.lock.Release(p, c)
		return
	}
	if l.hasWaiters(p, n, c) {
		// keep_local: pass within the cohort unless the threshold of
		// consecutive local passes is reached.
		v := p.Load(&n.highHeld, lockapi.Relaxed)
		if v+1 < l.threshold {
			//lint:order relaxed-ok pass_high_lock happens before the low lock's Release, which publishes it (§4.2.3)
			p.Store(&n.highHeld, v+1, lockapi.Relaxed) // pass_high_lock
			n.lock.Release(p, c)
			return
		}
	}
	// Give the high lock away. The order is crucial (§4.1.3): the high lock
	// must be released BEFORE the low lock, otherwise a successor could
	// grab the low lock and race us on highCtx, violating the context
	// invariant and deadlocking.
	if p.Load(&n.highHeld, lockapi.Relaxed) != 0 {
		//lint:order relaxed-ok clear_high_lock happens before the high lock's Release, which publishes it (§4.2.3)
		p.Store(&n.highHeld, 0, lockapi.Relaxed) // clear_high_lock
	}
	if l.releaseOrderBug {
		n.lock.Release(p, c)                  // ← the §4.1.3 bug:
		l.releaseNode(p, n.parent, n.highCtx) //   low before high
		return
	}
	l.releaseNode(p, n.parent, n.highCtx) // 1: release L
	n.lock.Release(p, c)                  // 2: then release l
}

// hasWaiters is the paper's has_waiters: the custom detector when the basic
// lock offers one, the read-indicator counter otherwise.
func (l *Lock) hasWaiters(p lockapi.Proc, n *levelLock, c lockapi.Ctx) bool {
	if n.det != nil {
		return n.det.HasWaiters(p, c)
	}
	return p.Load(&n.waiters, lockapi.Relaxed) > 0
}

var (
	_ lockapi.Lock         = (*Lock)(nil)
	_ lockapi.FairnessInfo = (*Lock)(nil)
	_ lockapi.TryLocker    = (*Lock)(nil)
	_ lockapi.TryInfo      = (*Lock)(nil)
)
