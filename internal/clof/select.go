package clof

import (
	"fmt"
	"sort"
)

// Policy is a lock-selection policy (§4.3): how to collapse a throughput
// curve over contention levels into one score.
type Policy int

const (
	// HighContention ranks by weighted average throughput with weights
	// proportional to the thread count, favoring high-contention
	// performance (the paper's HC-best).
	HighContention Policy = iota
	// LowContention uses inverse weights, favoring low-contention
	// performance (the paper's LC-best).
	LowContention
)

// String returns the paper's abbreviation for the policy.
func (p Policy) String() string {
	if p == HighContention {
		return "HC"
	}
	return "LC"
}

// Point is one measured contention level of the scripted benchmark.
type Point struct {
	// Threads is the contention level (number of competing threads).
	Threads int
	// Throughput is the measured rate (operations per microsecond).
	Throughput float64
}

// Measurement is the scripted-benchmark result for one composition.
type Measurement struct {
	Comp   Composition
	Points []Point
}

// Score collapses the measurement under the given policy: the weighted
// average throughput with weights ∝ threads (HC) or ∝ 1/threads (LC).
func (m Measurement) Score(pol Policy) float64 {
	var num, den float64
	for _, pt := range m.Points {
		if pt.Threads <= 0 {
			continue
		}
		w := float64(pt.Threads)
		if pol == LowContention {
			w = 1 / w
		}
		num += w * pt.Throughput
		den += w
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Rank sorts measurements best-first under the policy. Ties break by
// composition name so the ranking is deterministic.
func Rank(ms []Measurement, pol Policy) []Measurement {
	out := append([]Measurement(nil), ms...)
	sort.Slice(out, func(i, j int) bool {
		si, sj := out[i].Score(pol), out[j].Score(pol)
		if si != sj {
			return si > sj
		}
		return out[i].Comp.String() < out[j].Comp.String()
	})
	return out
}

// Selection is the scripted benchmark's output: the best lock under each
// policy plus the overall worst (reported for information, as in Fig. 9).
type Selection struct {
	HCBest Measurement
	LCBest Measurement
	Worst  Measurement
	// All holds every measurement, HC-ranked.
	All []Measurement
}

// Select applies both selection policies to the scripted-benchmark results.
func Select(ms []Measurement) (Selection, error) {
	if len(ms) == 0 {
		return Selection{}, fmt.Errorf("clof: no measurements to select from")
	}
	hc := Rank(ms, HighContention)
	lc := Rank(ms, LowContention)
	return Selection{
		HCBest: hc[0],
		LCBest: lc[0],
		Worst:  hc[len(hc)-1],
		All:    hc,
	}, nil
}

// BenchFunc measures one lock construction at one contention level and
// returns its throughput in operations per microsecond. The workload package
// provides implementations backed by the NUMA simulator.
type BenchFunc func(comp Composition, threads int) float64

// RunScripted is the scripted benchmark (§4.3): it evaluates every
// composition at every contention level with the provided BenchFunc.
func RunScripted(comps []Composition, threadCounts []int, bench BenchFunc) []Measurement {
	ms := make([]Measurement, 0, len(comps))
	for _, comp := range comps {
		m := Measurement{Comp: comp}
		for _, n := range threadCounts {
			m.Points = append(m.Points, Point{Threads: n, Throughput: bench(comp, n)})
		}
		ms = append(ms, m)
	}
	return ms
}
