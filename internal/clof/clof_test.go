package clof

import (
	"sync"
	"testing"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/memsim"
	"github.com/clof-go/clof/internal/topo"
)

// tinyMachine is an 8-CPU two-package machine small enough for native
// goroutine stress tests: 2 packages × 1 NUMA × 2 cache groups × 2 cores.
func tinyMachine() *topo.Machine {
	return &topo.Machine{
		Name:           "tiny8",
		Arch:           topo.X86,
		Packages:       2,
		NUMAPerPackage: 1,
		GroupsPerNUMA:  2,
		CoresPerGroup:  2,
		ThreadsPerCore: 1,
	}
}

func tinyHierarchy() *topo.Hierarchy {
	return topo.MustHierarchy(tinyMachine(), topo.CacheGroup, topo.NUMA, topo.System)
}

func mustComp(t *testing.T, s string) Composition {
	t.Helper()
	c, err := ParseComposition(s)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestParseCompositionRoundTrip(t *testing.T) {
	for _, s := range []string{"tkt", "tkt-mcs", "hem-hem-mcs-clh", "tkt-clh-tkt-tkt", "hem-ctr-mcs", "mcs-hem-ctr"} {
		c, err := ParseComposition(s)
		if err != nil {
			t.Fatalf("ParseComposition(%q): %v", s, err)
		}
		if c.String() != s {
			t.Errorf("round trip %q -> %q", s, c.String())
		}
	}
	if _, err := ParseComposition("tkt-foo"); err == nil {
		t.Error("unknown lock accepted")
	}
}

func TestCompositionFair(t *testing.T) {
	if !mustComp(t, "tkt-mcs-clh").Fair() {
		t.Error("all-fair composition reported unfair")
	}
	if mustComp(t, "tkt-ttas-clh").Fair() {
		t.Error("composition with TTAS reported fair")
	}
}

func TestNewValidation(t *testing.T) {
	h := tinyHierarchy()
	if _, err := New(h, mustComp(t, "tkt-mcs")); err == nil {
		t.Error("composition/levels length mismatch accepted")
	}
	if _, err := New(h, mustComp(t, "tkt-mcs-clh")); err != nil {
		t.Errorf("valid construction rejected: %v", err)
	}
}

func TestTreeShape(t *testing.T) {
	h := topo.X86Hierarchy4() // core, cache-group, numa, system on 96 CPUs
	l := Must(h, mustComp(t, "tkt-mcs-clh-hem"))
	if got := len(l.leaves); got != 48 {
		t.Fatalf("leaf count = %d, want 48 (cores)", got)
	}
	// All leaves of one NUMA node must reach the same system root.
	root := func(n *levelLock) *levelLock {
		for n.parent != nil {
			n = n.parent
		}
		return n
	}
	r0 := root(l.leaves[0])
	for i, leaf := range l.leaves {
		if root(leaf) != r0 {
			t.Fatalf("leaf %d reaches a different root", i)
		}
		// Depth must equal the number of levels.
		depth := 1
		for n := leaf; n.parent != nil; n = n.parent {
			depth++
		}
		if depth != 4 {
			t.Fatalf("leaf %d depth = %d, want 4", i, depth)
		}
	}
	// Distinct leaves of distinct cache groups must share the numa-level
	// parent iff they are in the same NUMA node.
	if l.leaves[0].parent != l.leaves[1].parent {
		t.Error("cores 0,1 (same cache group) must share the cache-group lock")
	}
	if l.leaves[0].parent.parent != l.leaves[23].parent.parent {
		t.Error("cores 0 and 23 are in the same NUMA node; must share numa lock")
	}
	if l.leaves[0].parent.parent == l.leaves[24].parent.parent {
		// core 24 is the first core of package 2.
		t.Error("cores 0 and 24 are in different NUMA nodes; must not share numa lock")
	}
}

func TestNativeMutualExclusion(t *testing.T) {
	h := tinyHierarchy()
	for _, comp := range []string{"tkt-tkt-tkt", "mcs-mcs-mcs", "tkt-clh-mcs", "hem-mcs-tkt", "clh-clh-clh"} {
		comp := comp
		t.Run(comp, func(t *testing.T) {
			l := Must(h, mustComp(t, comp), WithThreshold(8))
			n := h.Machine.NumCPUs()
			ctxs := make([]lockapi.Ctx, n)
			for i := range ctxs {
				ctxs[i] = l.NewCtx()
			}
			var counter int
			var wg sync.WaitGroup
			const iters = 1500
			for w := 0; w < n; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					p := lockapi.NewNativeProc(id)
					for i := 0; i < iters; i++ {
						l.Acquire(p, ctxs[id])
						counter++
						l.Release(p, ctxs[id])
					}
				}(w)
			}
			wg.Wait()
			if counter != n*iters {
				t.Errorf("counter = %d, want %d", counter, n*iters)
			}
		})
	}
}

func TestSimulatedMutualExclusionAndProgress(t *testing.T) {
	mach := topo.Armv8Server()
	h := topo.ArmHierarchy4()
	l := Must(h, mustComp(t, "tkt-clh-tkt-tkt"))
	m := memsim.New(memsim.Config{Machine: mach})
	const n = 16
	ctxs := make([]lockapi.Ctx, n)
	for i := range ctxs {
		ctxs[i] = l.NewCtx()
	}
	var held int
	var total uint64
	for i := 0; i < n; i++ {
		i := i
		m.Spawn(i*8, func(p *memsim.Proc) {
			for !p.Expired() {
				l.Acquire(p, ctxs[i])
				if held != 0 {
					t.Error("mutual exclusion violated")
				}
				held = 1
				p.Work(80)
				held = 0
				l.Release(p, ctxs[i])
				p.Work(120)
				total++
			}
		})
	}
	res := m.Run(400_000)
	if res.Deadlock {
		t.Fatalf("deadlock, parked: %v", res.ParkedCPUs)
	}
	if total == 0 {
		t.Fatal("no progress")
	}
}

// TestLockPassingWhitebox drives the pass_high_lock protocol directly: with
// a waiter present and keep_local true, release must set the highHeld flag
// and keep the parent lock held; without waiters it must clear the flag and
// release the parent.
func TestLockPassingWhitebox(t *testing.T) {
	h := tinyHierarchy()
	// Disable custom detectors so the inc_waiters/dec_waiters counter
	// drives has_waiters and the test can fake a waiter by bumping it.
	l := Must(h, mustComp(t, "mcs-clh-tkt"), WithThreshold(100), WithoutCustomHasWaiters())
	p := lockapi.NewNativeProc(0)
	ctx := l.NewCtx()

	l.Acquire(p, ctx)
	leaf := l.leaves[0]
	root := leaf.parent.parent
	rootTkt := root.lock.(*locks.Ticket)
	if rootTkt.HasWaiters(p, nil) {
		t.Fatal("sanity: root should have no waiters")
	}

	// Simulate a waiter in our leaf cohort at the numa level.
	numa := leaf.parent
	p.Add(&numa.waiters, 1, lockapi.Relaxed)
	l.releaseNode(p, numa, leaf.highCtx) // release from the numa level down
	if got := p.Load(&numa.highHeld, lockapi.Relaxed); got == 0 {
		t.Error("release with waiters did not pass the high lock")
	}
	// The system lock must still be held (ticket not granted).
	if rootTkt.TryObserveUnlocked(p) {
		t.Error("system lock was released despite lock passing")
	}

	// Next acquire in the same cohort must skip the system lock.
	l.acquireNode(p, numa, leaf.highCtx)
	// Remove the fake waiter and release for real: flag must clear and the
	// system lock must become free.
	p.Add(&numa.waiters, ^uint64(0), lockapi.Relaxed)
	l.releaseNode(p, numa, leaf.highCtx)
	if got := p.Load(&numa.highHeld, lockapi.Relaxed); got != 0 {
		t.Error("release without waiters left the pass flag set")
	}
	if !rootTkt.TryObserveUnlocked(p) {
		t.Error("system lock still held after give-away release")
	}
	l.releaseNode(p, leaf, ctx.(*threadCtx).leafCtxs[0])
}

// TestKeepLocalThreshold: with a perpetual waiter, keep_local must force a
// global release every H handovers (the pass flag carries the count).
func TestKeepLocalThreshold(t *testing.T) {
	h := tinyHierarchy()
	const H = 4
	l := Must(h, mustComp(t, "tkt-tkt-tkt"), WithThreshold(H), WithoutCustomHasWaiters())
	p := lockapi.NewNativeProc(0)
	ctx := l.NewCtx().(*threadCtx)
	l.Acquire(p, ctx)
	leaf := l.leaves[0]
	// Fake a perpetual waiter in the leaf cohort.
	p.Add(&leaf.waiters, 1, lockapi.Relaxed)
	giveaways := 0
	const cycles = 3 * H
	for i := 0; i < cycles; i++ {
		l.releaseNode(p, leaf, ctx.leafCtxs[0])
		if p.Load(&leaf.highHeld, lockapi.Relaxed) == 0 {
			giveaways++
		}
		l.acquireNode(p, leaf, ctx.leafCtxs[0])
	}
	// Pass counts run 1..H-1, then the H-th handover gives away: one
	// giveaway per H cycles.
	if giveaways != cycles/H {
		t.Errorf("giveaways = %d over %d cycles with H=%d, want %d", giveaways, cycles, H, cycles/H)
	}
	p.Add(&leaf.waiters, ^uint64(0), lockapi.Relaxed)
	l.releaseNode(p, leaf, ctx.leafCtxs[0])
}

func TestReleaseWithoutAcquirePanics(t *testing.T) {
	l := Must(tinyHierarchy(), mustComp(t, "tkt-tkt-tkt"))
	p := lockapi.NewNativeProc(0)
	ctx := l.NewCtx()
	defer func() {
		if recover() == nil {
			t.Error("Release without Acquire did not panic")
		}
	}()
	l.Release(p, ctx)
}

func TestGenerate(t *testing.T) {
	basics := locks.BasicLocks(topo.X86)
	for levels, want := range map[int]int{1: 4, 2: 16, 3: 64, 4: 256} {
		comps := Generate(basics, levels)
		if len(comps) != want {
			t.Fatalf("Generate(%d levels) = %d comps, want %d", levels, len(comps), want)
		}
		seen := map[string]bool{}
		for _, c := range comps {
			if len(c) != levels {
				t.Fatalf("composition %q has %d levels, want %d", c, len(c), levels)
			}
			if seen[c.String()] {
				t.Fatalf("duplicate composition %q", c)
			}
			seen[c.String()] = true
		}
	}
	if Generate(basics, 0) != nil || Generate(nil, 3) != nil {
		t.Error("degenerate Generate inputs must return nil")
	}
}

func TestSelectionPolicies(t *testing.T) {
	mk := func(name string, tputs ...float64) Measurement {
		comp := mustComp(t, name)
		m := Measurement{Comp: comp}
		threads := []int{1, 8, 64}
		for i, tp := range tputs {
			m.Points = append(m.Points, Point{Threads: threads[i], Throughput: tp})
		}
		return m
	}
	// lowLock is great at 1 thread, poor at 64; highLock the reverse.
	lowLock := mk("tkt", 10, 5, 1)
	highLock := mk("mcs", 2, 5, 9)
	sel, err := Select([]Measurement{lowLock, highLock})
	if err != nil {
		t.Fatal(err)
	}
	if sel.HCBest.Comp.String() != "mcs" {
		t.Errorf("HC-best = %s, want mcs", sel.HCBest.Comp)
	}
	if sel.LCBest.Comp.String() != "tkt" {
		t.Errorf("LC-best = %s, want tkt", sel.LCBest.Comp)
	}
	if sel.Worst.Comp.String() != "tkt" {
		t.Errorf("worst (HC-ranked) = %s, want tkt", sel.Worst.Comp)
	}
	if _, err := Select(nil); err == nil {
		t.Error("Select(nil) must error")
	}
}

func TestRunScripted(t *testing.T) {
	comps := Generate(locks.BasicLocks(topo.X86), 2)
	calls := 0
	ms := RunScripted(comps, []int{1, 4}, func(c Composition, n int) float64 {
		calls++
		return float64(n)
	})
	if len(ms) != len(comps) {
		t.Fatalf("measurements = %d, want %d", len(ms), len(comps))
	}
	if calls != len(comps)*2 {
		t.Fatalf("bench calls = %d, want %d", calls, len(comps)*2)
	}
	for _, m := range ms {
		if len(m.Points) != 2 || m.Points[0].Throughput != 1 || m.Points[1].Throughput != 4 {
			t.Fatalf("bad points for %s: %+v", m.Comp, m.Points)
		}
	}
}

func TestFairnessDeclaration(t *testing.T) {
	h := tinyHierarchy()
	if !lockapi.Fair(Must(h, mustComp(t, "tkt-mcs-clh"))) {
		t.Error("fair composition must declare fairness")
	}
	if lockapi.Fair(Must(h, mustComp(t, "tkt-ttas-clh"))) {
		t.Error("composition with unfair component must not declare fairness")
	}
}

func TestGenerateFrom(t *testing.T) {
	tkt := locks.MustType("tkt")
	mcs := locks.MustType("mcs")
	clh := locks.MustType("clh")
	comps := GenerateFrom([][]locks.Type{{tkt, mcs}, {clh}, {tkt, mcs, clh}})
	if len(comps) != 2*1*3 {
		t.Fatalf("GenerateFrom = %d comps, want 6", len(comps))
	}
	for _, c := range comps {
		if c[1].Name != "clh" {
			t.Errorf("level 1 must be clh, got %s", c)
		}
	}
	if GenerateFrom(nil) != nil || GenerateFrom([][]locks.Type{{tkt}, {}}) != nil {
		t.Error("degenerate candidate sets must return nil")
	}
}

// TestPreselect: footnote 5's search-space reduction keeps the per-level
// winners and shrinks N^M to topK^M.
func TestPreselect(t *testing.T) {
	h := topo.ArmHierarchy3()
	basics := locks.BasicLocks(topo.ArmV8)
	// Synthetic scorer: clh best at every level, tkt second.
	score := func(typ locks.Type, lvl topo.Level) float64 {
		switch typ.Name {
		case "clh":
			return 3
		case "tkt":
			return 2
		case "mcs":
			return 1
		default:
			return 0
		}
	}
	comps := Preselect(basics, h, 2, score)
	if len(comps) != 8 { // 2^3
		t.Fatalf("Preselect(topK=2) = %d comps, want 8", len(comps))
	}
	for _, c := range comps {
		for _, typ := range c {
			if typ.Name != "clh" && typ.Name != "tkt" {
				t.Errorf("non-preselected lock %s in %s", typ.Name, c)
			}
		}
	}
	// topK >= N degenerates to the full sweep.
	if full := Preselect(basics, h, 99, score); len(full) != 64 {
		t.Errorf("Preselect(topK=99) = %d comps, want 64", len(full))
	}
}
