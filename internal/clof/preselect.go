package clof

import (
	"sort"

	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/topo"
)

// GenerateFrom enumerates compositions with an explicit candidate set per
// level (candidates[i] feeds level i). It generalizes Generate, which uses
// the same candidates at every level.
func GenerateFrom(candidates [][]locks.Type) []Composition {
	if len(candidates) == 0 {
		return nil
	}
	total := 1
	for _, c := range candidates {
		if len(c) == 0 {
			return nil
		}
		total *= len(c)
	}
	out := make([]Composition, 0, total)
	idx := make([]int, len(candidates))
	for {
		comp := make(Composition, len(candidates))
		for i, j := range idx {
			comp[i] = candidates[i][j]
		}
		out = append(out, comp)
		k := 0
		for ; k < len(candidates); k++ {
			idx[k]++
			if idx[k] < len(candidates[k]) {
				break
			}
			idx[k] = 0
		}
		if k == len(candidates) {
			return out
		}
	}
}

// LevelScorer rates a basic lock at one hierarchy level — typically the
// Fig. 3 experiment: the lock's throughput inside a single cohort of that
// level at maximum contention.
type LevelScorer func(t locks.Type, lvl topo.Level) float64

// Preselect implements the paper's footnote 5: before the exhaustive N^M
// sweep, keep only the topK best-scoring basic locks per level, shrinking
// the scripted benchmark's search space from N^M to at most topK^M
// compositions. With topK >= len(basics) it degenerates to Generate.
func Preselect(basics []locks.Type, h *topo.Hierarchy, topK int, score LevelScorer) []Composition {
	if topK <= 0 {
		topK = 1
	}
	candidates := make([][]locks.Type, len(h.Levels))
	for i, lvl := range h.Levels {
		ranked := append([]locks.Type(nil), basics...)
		sort.SliceStable(ranked, func(a, b int) bool {
			return score(ranked[a], lvl) > score(ranked[b], lvl)
		})
		k := topK
		if k > len(ranked) {
			k = len(ranked)
		}
		candidates[i] = ranked[:k]
	}
	return GenerateFrom(candidates)
}
