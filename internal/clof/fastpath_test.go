package clof

import (
	"testing"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locktest"
	"github.com/clof-go/clof/internal/topo"
	"github.com/clof-go/clof/internal/workload"
)

func TestFastPathNativeMutualExclusion(t *testing.T) {
	h := tinyHierarchy()
	l := Must(h, mustComp(t, "tkt-mcs-tkt"), WithTASFastPath(), WithThreshold(8))
	locktest.NativeStress(t, l, h.Machine, 8, 3000)
}

func TestFastPathUncontendedSkipsHierarchy(t *testing.T) {
	h := tinyHierarchy()
	l := Must(h, mustComp(t, "mcs-mcs-mcs"), WithTASFastPath())
	p := lockapi.NewNativeProc(0)
	ctx := l.NewCtx()
	for i := 0; i < 100; i++ {
		l.Acquire(p, ctx)
		if !ctx.(*threadCtx).fastOnly {
			t.Fatal("uncontended acquire did not take the fast path")
		}
		l.Release(p, ctx)
	}
	// The hierarchy must be untouched: the leaf's pass flag never set and
	// the root MCS tail still empty.
	if got := l.leaves[0].highHeld.Raw().Load(); got != 0 {
		t.Errorf("hierarchy touched by fast path: highHeld = %d", got)
	}
}

func TestFastPathFairnessForfeited(t *testing.T) {
	h := tinyHierarchy()
	if lockapi.Fair(Must(h, mustComp(t, "tkt-tkt-tkt"), WithTASFastPath())) {
		t.Error("fast-path lock must not declare fairness")
	}
	if !lockapi.Fair(Must(h, mustComp(t, "tkt-tkt-tkt"))) {
		t.Error("plain composed lock of fair basics must declare fairness")
	}
}

// TestFastPathLowContentionGain: on the simulator, single-thread throughput
// with the fast path must beat the full 4-level climb, and high contention
// must not collapse (the slow path takes over).
func TestFastPathLowContentionGain(t *testing.T) {
	h := topo.ArmHierarchy4()
	run := func(fast bool, threads int) float64 {
		opts := []Option{}
		if fast {
			opts = append(opts, WithTASFastPath())
		}
		cfg := workload.LevelDB(h.Machine, threads)
		cfg.Horizon /= 2
		comp := mustComp(t, "tkt-clh-tkt-tkt")
		res, err := workload.Run(func() lockapi.Lock {
			return Must(h, comp, opts...)
		}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.ExclusionViolations > 0 {
			t.Fatalf("mutual exclusion violated with fast=%v", fast)
		}
		return res.ThroughputOpsPerUs()
	}
	if gain := run(true, 1) / run(false, 1); gain < 1.02 {
		t.Errorf("fast path single-thread gain %.3fx, want > 1.02x", gain)
	}
	if ratio := run(true, 127) / run(false, 127); ratio < 0.85 {
		t.Errorf("fast path high-contention ratio %.3f, want >= 0.85 (no collapse)", ratio)
	}
}
