// Package discover implements the paper's §3.1 experimental hierarchy
// discovery: run the two-thread ping-pong counter over CPU pairs, render
// the Fig. 1 heatmap, compute the Table 2 cohort speedups, and derive a
// hierarchy configuration (the paper notes the manual heatmap reading "can
// be easily automated" — DetectHierarchy is that automation).
package discover

import (
	"fmt"
	"strings"

	"github.com/clof-go/clof/internal/topo"
	"github.com/clof-go/clof/internal/workload"
)

// DefaultHorizon is the per-pair virtual measurement duration. The paper
// uses 1s wall time; 100µs of simulated time is statistically equivalent
// here because the simulator is noise-free.
const DefaultHorizon = 100_000

// Row measures ping-pong throughput of `base` against every CPU.
func Row(m *topo.Machine, base int, horizon int64) []float64 {
	row := make([]float64, m.NumCPUs())
	for j := range row {
		row[j] = workload.PingPong(m, base, j, horizon)
	}
	return row
}

// Heatmap measures the full Fig. 1 matrix, sampling every stride-th CPU on
// both axes (stride 1 = complete; larger strides keep big machines cheap).
// The result is indexed [i][j] over the sampled CPUs, and Cpus lists them.
type Heatmap struct {
	Cpus []int
	Tput [][]float64
}

// Measure computes a heatmap.
func Measure(m *topo.Machine, horizon int64, stride int) Heatmap {
	if stride < 1 {
		stride = 1
	}
	var cpus []int
	for c := 0; c < m.NumCPUs(); c += stride {
		cpus = append(cpus, c)
	}
	h := Heatmap{Cpus: cpus, Tput: make([][]float64, len(cpus))}
	for i, a := range cpus {
		h.Tput[i] = make([]float64, len(cpus))
		for j, b := range cpus {
			if j < i {
				h.Tput[i][j] = h.Tput[j][i] // symmetric
				continue
			}
			h.Tput[i][j] = workload.PingPong(m, a, b, horizon)
		}
	}
	return h
}

// ASCII renders the heatmap with intensity characters (darker = higher
// throughput), mirroring Fig. 1's visual.
func (h Heatmap) ASCII() string {
	max := 0.0
	for _, row := range h.Tput {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	shades := []byte(" .:-=+*#%@")
	var b strings.Builder
	for i, row := range h.Tput {
		fmt.Fprintf(&b, "%4d ", h.Cpus[i])
		for _, v := range row {
			idx := 0
			if max > 0 {
				idx = int(v / max * float64(len(shades)-1))
			}
			b.WriteByte(shades[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Speedups computes the Table 2 numbers: for each hierarchy level, the
// average ping-pong throughput of CPU pairs sharing exactly that level,
// normalized to the system-level (cross-package) pairs.
func Speedups(m *topo.Machine, horizon int64) map[topo.Level]float64 {
	row := Row(m, 0, horizon)
	sums := map[topo.Level]float64{}
	counts := map[topo.Level]int{}
	for j := 1; j < len(row); j++ {
		lvl := m.ShareLevel(0, j)
		sums[lvl] += row[j]
		counts[lvl]++
	}
	base := sums[topo.System] / float64(counts[topo.System])
	out := map[topo.Level]float64{}
	for lvl, s := range sums {
		if counts[lvl] == 0 || base == 0 {
			continue
		}
		out[lvl] = (s / float64(counts[lvl])) / base
	}
	return out
}

// DetectHierarchy derives a hierarchy configuration from measurements: a
// level is kept when its cohort speedup exceeds the next coarser kept
// level's by at least `threshold` (levels whose latency is
// indistinguishable from the level above add lock overhead without
// locality, §5.2.1). The system level is always kept. threshold <= 1
// defaults to 1.25.
func DetectHierarchy(m *topo.Machine, horizon int64, threshold float64) (*topo.Hierarchy, error) {
	if threshold <= 1 {
		threshold = 1.25
	}
	sp := Speedups(m, horizon)
	levels := []topo.Level{topo.System}
	lastKept := 1.0 // system speedup is 1 by definition
	for lvl := topo.Package; lvl >= topo.Core; lvl-- {
		s, ok := sp[lvl]
		if !ok {
			continue // degenerate level on this machine (no such pairs)
		}
		if s >= lastKept*threshold {
			levels = append([]topo.Level{lvl}, levels...)
			lastKept = s
		}
	}
	return topo.NewHierarchy(m, levels...)
}
