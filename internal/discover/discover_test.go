package discover

import (
	"strings"
	"testing"

	"github.com/clof-go/clof/internal/topo"
)

const testHorizon = 40_000 // short but stable: the simulator is noise-free

func TestSpeedupsMatchTable2(t *testing.T) {
	check := func(name string, got, want float64) {
		t.Helper()
		if got < want*0.75 || got > want*1.25 {
			t.Errorf("%s: speedup %.2f, want %.2f ±25%%", name, got, want)
		}
	}
	x := Speedups(topo.X86Server(), testHorizon)
	check("x86 core", x[topo.Core], 12.18)
	check("x86 cache-group", x[topo.CacheGroup], 9.07)
	check("x86 numa", x[topo.NUMA], 1.54)

	a := Speedups(topo.Armv8Server(), testHorizon)
	check("armv8 cache-group", a[topo.CacheGroup], 7.04)
	check("armv8 numa", a[topo.NUMA], 2.98)
	check("armv8 package", a[topo.Package], 1.76)
}

func TestDetectHierarchyX86(t *testing.T) {
	h, err := DetectHierarchy(topo.X86Server(), testHorizon, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	// Paper's 4-level x86 config: core, cache-group, numa, system (the
	// package level coincides with NUMA on this machine — no Package pairs
	// distinct from NUMA exist, so it cannot and must not appear).
	want := "x86-epyc7352-2s[core,cache-group,numa,system]"
	if h.String() != want {
		t.Errorf("detected %s, want %s", h, want)
	}
}

func TestDetectHierarchyArmv8(t *testing.T) {
	h, err := DetectHierarchy(topo.Armv8Server(), testHorizon, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	// Paper's 4-level Armv8 config (no core level: no SMT).
	want := "armv8-kunpeng920-2s[cache-group,numa,package,system]"
	if h.String() != want {
		t.Errorf("detected %s, want %s", h, want)
	}
}

func TestDetectHierarchyHighThreshold(t *testing.T) {
	// A 2.0 threshold must drop Armv8's package level (1.76 over system)
	// — the paper's 3-level tuning rationale (§5.2.1).
	h, err := DetectHierarchy(topo.Armv8Server(), testHorizon, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range h.Levels {
		if l == topo.Package {
			t.Errorf("package level kept despite thin speedup: %s", h)
		}
	}
}

func TestHeatmapStructure(t *testing.T) {
	m := topo.Armv8Server()
	h := Measure(m, testHorizon, 16) // sampled: cpus 0,16,...,112
	if len(h.Cpus) != 8 || len(h.Tput) != 8 {
		t.Fatalf("unexpected sample size %d", len(h.Cpus))
	}
	// Symmetry and zero diagonal.
	for i := range h.Tput {
		if h.Tput[i][i] != 0 {
			t.Errorf("diagonal [%d][%d] = %f, want 0", i, i, h.Tput[i][i])
		}
		for j := range h.Tput {
			if h.Tput[i][j] != h.Tput[j][i] {
				t.Errorf("heatmap not symmetric at %d,%d", i, j)
			}
		}
	}
	// Same-package pairs (cpu 0 vs 16: same NUMA) must beat cross-package
	// (cpu 0 vs 112... index 0 vs 7).
	if h.Tput[0][1] <= h.Tput[0][7] {
		t.Errorf("intra-numa (%f) not above cross-package (%f)", h.Tput[0][1], h.Tput[0][7])
	}
	art := h.ASCII()
	if !strings.Contains(art, "\n") || len(art) < 60 {
		t.Errorf("ASCII rendering too small:\n%s", art)
	}
}

func TestRowLength(t *testing.T) {
	m := topo.X86Server()
	row := Row(m, 0, 20_000)
	if len(row) != 96 {
		t.Fatalf("row length %d", len(row))
	}
	if row[0] != 0 {
		t.Error("self-pair must be 0")
	}
	if row[1] <= row[48] {
		t.Error("hyperthread sibling not faster than cross-package")
	}
}
