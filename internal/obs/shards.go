package obs

// This file adds shard-resolved contention attribution for the sharded
// store experiments (internal/store, DESIGN.md S32): one Collector observes
// each shard's lock, and CombineShards folds them into a single Report
// whose Shards block breaks acquisitions down by shard. Shared (reader)
// acquisitions emit no protocol edges (the rwlock adapter documents why),
// so the workload counts them itself and passes them in as SharedOps.

// ShardStat is one shard's slice of a combined Report.
type ShardStat struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// Acquisitions counts exclusive acquisitions of the shard's lock.
	Acquisitions uint64 `json:"acquisitions"`
	// SharedOps counts workload-reported shared (reader) acquisitions, which
	// emit no observer edges; 0 when the shard lock has no shared mode.
	SharedOps uint64 `json:"shared_ops,omitempty"`
	// AcquireP50NS / HoldP50NS are the shard's median acquire latency and
	// hold time (bucket-resolution upper bounds, like the aggregate's).
	AcquireP50NS int64 `json:"acquire_p50_ns"`
	HoldP50NS    int64 `json:"hold_p50_ns"`
	// Jain is the shard lock's own per-CPU fairness index.
	Jain float64 `json:"jain"`
}

// Merge folds other into h: bucket-wise counts plus exact count/sum/min/max.
func (h *Hist) Merge(other *Hist) {
	if other.count == 0 {
		return
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	for b := range h.counts {
		h.counts[b] += other.counts[b]
	}
	h.count += other.count
	h.sum += other.sum
}

// CombineShards merges per-shard collectors into one Report labeled lock:
// summed acquisitions and handover levels, merged latency/hold histograms,
// fairness over the summed per-CPU counts, and one ShardStat per collector.
// sharedOps (optional, len = number of shards) supplies the workloads'
// shared-acquisition counts. All collectors must observe the same machine.
//
// The aggregate's fairness starvation window is the per-CPU maximum across
// shards — a CPU's longest wait on any single shard lock, not across the
// interleaving (a CPU served promptly by shard A while starving on shard B
// still reports B's gap).
func CombineShards(lock string, collectors []*Collector, sharedOps []uint64) Report {
	if len(collectors) == 0 {
		return Report{Lock: lock}
	}
	agg := *NewCollector(collectors[0].machine, Options{Lock: lock})
	shards := make([]ShardStat, len(collectors))
	for i, c := range collectors {
		agg.acquisitions += c.acquisitions
		agg.self += c.self // per-shard self-transfers stay self-transfers
		for l := range c.levels {
			agg.levels[l] += c.levels[l]
		}
		for cpu := range c.perCPU {
			agg.perCPU[cpu] += c.perCPU[cpu]
			if c.starveNS[cpu] > agg.starveNS[cpu] {
				agg.starveNS[cpu] = c.starveNS[cpu]
			}
		}
		agg.acquireLat.Merge(&c.acquireLat)
		agg.holdNS.Merge(&c.holdNS)
		shards[i] = ShardStat{
			Shard:        i,
			Acquisitions: c.acquisitions,
			AcquireP50NS: c.acquireLat.Quantile(0.50),
			HoldP50NS:    c.holdNS.Quantile(0.50),
			Jain:         c.fairness().Jain,
		}
		if i < len(sharedOps) {
			shards[i].SharedOps = sharedOps[i]
		}
	}
	r := agg.Report()
	r.Shards = shards
	return r
}
