package obs

// This file adds shard-resolved contention attribution for the sharded
// store experiments (internal/store, DESIGN.md S32): one Collector observes
// each shard's lock, and CombineShards folds them into a single Report
// whose Shards block breaks acquisitions down by shard. Shared (reader)
// acquisitions emit no protocol edges (the rwlock adapter documents why),
// so the workload counts them itself and passes them in as SharedOps.

// OCCOps carries one shard's workload-reported optimistic-read counters.
// Like shared acquisitions, optimistic (seqlock-validated) reads never pass
// through Acquire/Release and so emit no observer edges — the workload
// counts them and hands them to CombineShards.
type OCCOps struct {
	// Optimistic counts optimistic read attempts (successful or not).
	Optimistic uint64
	// ValidationFailures counts attempts discarded by a failed seqlock
	// validation — each is a retry or, once the budget is spent, a fallback.
	ValidationFailures uint64
	// Fallbacks counts reads that exhausted the adaptive attempt budget and
	// took the pessimistic shard lock.
	Fallbacks uint64
}

// ShardStat is one shard's slice of a combined Report.
type ShardStat struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// Acquisitions counts exclusive acquisitions of the shard's lock.
	Acquisitions uint64 `json:"acquisitions"`
	// SharedOps counts workload-reported shared (reader) acquisitions, which
	// emit no observer edges; 0 when the shard lock has no shared mode.
	SharedOps uint64 `json:"shared_ops,omitempty"`
	// OptimisticOps / OCCValidationFailures / OCCFallbacks are the
	// workload-reported optimistic-read counters (OCCOps); all 0 when the
	// shard lock has no seqlock read path.
	OptimisticOps         uint64 `json:"optimistic_ops,omitempty"`
	OCCValidationFailures uint64 `json:"occ_validation_failures,omitempty"`
	OCCFallbacks          uint64 `json:"occ_fallbacks,omitempty"`
	// AcquireP50NS / HoldP50NS are the shard's median acquire latency and
	// hold time (bucket-resolution upper bounds, like the aggregate's).
	AcquireP50NS int64 `json:"acquire_p50_ns"`
	HoldP50NS    int64 `json:"hold_p50_ns"`
	// Jain is the shard lock's own per-CPU fairness index.
	Jain float64 `json:"jain"`
}

// Merge folds other into h: bucket-wise counts plus exact count/sum/min/max.
func (h *Hist) Merge(other *Hist) {
	if other.count == 0 {
		return
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	for b := range h.counts {
		h.counts[b] += other.counts[b]
	}
	h.count += other.count
	h.sum += other.sum
}

// CombineShards merges per-shard collectors into one Report labeled lock:
// summed acquisitions and handover levels, merged latency/hold histograms,
// fairness over the summed per-CPU counts, and one ShardStat per collector.
// sharedOps and occOps (each optional, len = number of shards) supply the
// workloads' shared-acquisition and optimistic-read counts. All collectors
// must observe the same machine.
//
// The aggregate's fairness starvation window is the per-CPU maximum across
// shards — a CPU's longest wait on any single shard lock, not across the
// interleaving (a CPU served promptly by shard A while starving on shard B
// still reports B's gap).
func CombineShards(lock string, collectors []*Collector, sharedOps []uint64, occOps []OCCOps) Report {
	if len(collectors) == 0 {
		return Report{Lock: lock}
	}
	agg := *NewCollector(collectors[0].machine, Options{Lock: lock})
	shards := make([]ShardStat, len(collectors))
	for i, c := range collectors {
		agg.acquisitions += c.acquisitions
		agg.self += c.self // per-shard self-transfers stay self-transfers
		for l := range c.levels {
			agg.levels[l] += c.levels[l]
		}
		for cpu := range c.perCPU {
			agg.perCPU[cpu] += c.perCPU[cpu]
			if c.starveNS[cpu] > agg.starveNS[cpu] {
				agg.starveNS[cpu] = c.starveNS[cpu]
			}
		}
		agg.acquireLat.Merge(&c.acquireLat)
		agg.holdNS.Merge(&c.holdNS)
		shards[i] = ShardStat{
			Shard:        i,
			Acquisitions: c.acquisitions,
			AcquireP50NS: c.acquireLat.Quantile(0.50),
			HoldP50NS:    c.holdNS.Quantile(0.50),
			Jain:         c.fairness().Jain,
		}
		if i < len(sharedOps) {
			shards[i].SharedOps = sharedOps[i]
		}
		if i < len(occOps) {
			shards[i].OptimisticOps = occOps[i].Optimistic
			shards[i].OCCValidationFailures = occOps[i].ValidationFailures
			shards[i].OCCFallbacks = occOps[i].Fallbacks
		}
	}
	r := agg.Report()
	r.Shards = shards
	return r
}
