package obs

import "testing"

func TestHistBucketEdges(t *testing.T) {
	var h Hist
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 1023, 1024} {
		h.Record(v)
	}
	s := h.Summary()
	if s.Count != 9 || s.Min != 0 || s.Max != 1024 {
		t.Fatalf("summary totals: %+v", s)
	}
	// Expected buckets: [0,0]=1, [1,1]=1, [2,3]=2, [4,7]=2, [8,15]=1,
	// [512,1023]=1, [1024,2047]=1.
	want := []HistBucket{
		{Lo: 0, Hi: 0, Count: 1},
		{Lo: 1, Hi: 1, Count: 1},
		{Lo: 2, Hi: 3, Count: 2},
		{Lo: 4, Hi: 7, Count: 2},
		{Lo: 8, Hi: 15, Count: 1},
		{Lo: 512, Hi: 1023, Count: 1},
		{Lo: 1024, Hi: 2047, Count: 1},
	}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets: got %+v want %+v", s.Buckets, want)
	}
	for i := range want {
		if s.Buckets[i] != want[i] {
			t.Errorf("bucket %d: got %+v want %+v", i, s.Buckets[i], want[i])
		}
	}
}

func TestHistQuantiles(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty hist must report zeros")
	}
	for v := int64(1); v <= 1000; v++ {
		h.Record(v)
	}
	if got := h.Mean(); got != 500.5 {
		t.Errorf("mean: got %v want 500.5", got)
	}
	// Quantiles are bucket upper bounds: monotone in q, never below the
	// true quantile, never above the observed max.
	prev := int64(0)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		trueQ := int64(q * 1000)
		if v < trueQ {
			t.Errorf("q=%v: bound %d below true quantile %d", q, v, trueQ)
		}
		if v > 1000 {
			t.Errorf("q=%v: bound %d above max 1000", q, v)
		}
		if v < prev {
			t.Errorf("q=%v: bound %d not monotone (prev %d)", q, v, prev)
		}
		prev = v
	}
}

func TestHistNegativeClamps(t *testing.T) {
	var h Hist
	h.Record(-5)
	s := h.Summary()
	if s.Count != 1 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("negative value must clamp to 0: %+v", s)
	}
}
