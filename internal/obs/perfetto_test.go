package obs_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"

	"github.com/clof-go/clof/internal/catalog"
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/obs"
	"github.com/clof-go/clof/internal/topo"
	"github.com/clof-go/clof/internal/workload"
)

// goldenTraceSHA256 pins the exact bytes WriteTraceJSON emits for the seeded
// scenario below (3-thread MCS on the x86 platform). The export is pure over
// the simulated run, and the simulator is deterministic, so these bytes may
// only change when the simulation model, the lock, or the exporter changes —
// all of which deserve a conscious re-pin.
const goldenTraceSHA256 = "dccd76ca64f4d4846badfe9fb9a228839992a6216a3a5314f129661282a26380"

// goldenCollector runs the pinned scenario and returns its collector.
func goldenCollector(t *testing.T) *obs.Collector {
	t.Helper()
	m := topo.X86Server()
	e, err := catalog.Lookup("mcs")
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector(m, obs.Options{Lock: "mcs", Spans: true})
	cfg := workload.Config{
		Machine: m, Threads: 3, Horizon: 15_000,
		CSWork: 100, NCSWork: 400, DataCells: 2, Seed: 9,
		Observer: col,
	}
	if _, err := workload.Run(func() lockapi.Lock { return e.New(m) }, cfg); err != nil {
		t.Fatal(err)
	}
	return col
}

// TestWriteTraceJSONGolden pins the Perfetto export byte-for-byte and checks
// the output is well-formed Chrome trace JSON with the structure the
// exporter promises: named vCPU tracks, complete events for wait/hold spans,
// and paired flow events for handovers.
func TestWriteTraceJSONGolden(t *testing.T) {
	col := goldenCollector(t)
	var buf bytes.Buffer
	if err := obs.WriteTraceJSON(&buf, col); err != nil {
		t.Fatal(err)
	}

	sum := sha256.Sum256(buf.Bytes())
	if got := hex.EncodeToString(sum[:]); got != goldenTraceSHA256 {
		t.Errorf("trace bytes changed: sha256 %s, pinned %s\n"+
			"(if the simulation model or exporter changed intentionally, re-pin the constant)", got, goldenTraceSHA256)
	}

	var parsed struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			TID  int     `json:"tid"`
			ID   uint64  `json:"id"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if parsed.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", parsed.DisplayTimeUnit)
	}
	counts := map[string]int{}
	flowStarts := map[uint64]int{}
	flowEnds := map[uint64]int{}
	for _, ev := range parsed.TraceEvents {
		counts[ev.Ph]++
		switch ev.Ph {
		case "X":
			if ev.Dur < 0 {
				t.Errorf("negative span duration: %+v", ev)
			}
		case "s":
			flowStarts[ev.ID]++
		case "f":
			flowEnds[ev.ID]++
		}
	}
	if counts["M"] != 3 {
		t.Errorf("want 3 thread_name metadata events, got %d", counts["M"])
	}
	if counts["X"] == 0 {
		t.Error("no spans exported")
	}
	if counts["s"] == 0 || counts["s"] != counts["f"] {
		t.Errorf("unpaired flow events: %d starts, %d ends", counts["s"], counts["f"])
	}
	for id, n := range flowStarts {
		if n != 1 || flowEnds[id] != 1 {
			t.Errorf("flow id %d: %d starts, %d ends (want exactly one each)", id, n, flowEnds[id])
		}
	}
}

// TestWriteTraceJSONRequiresSpans pins the guard: a collector built without
// span retention cannot export a trace.
func TestWriteTraceJSONRequiresSpans(t *testing.T) {
	col := obs.NewCollector(topo.X86Server(), obs.Options{})
	if err := obs.WriteTraceJSON(&bytes.Buffer{}, col); err == nil {
		t.Fatal("want an error for a span-less collector")
	}
}
