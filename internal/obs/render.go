package obs

import (
	"fmt"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/memsim"
)

// Namer assigns stable display names ("cell0", "cell1", ...) to cells in
// first-observation order. Since the simulator is deterministic, the naming
// is reproducible across runs of the same scenario.
type Namer struct {
	names map[*lockapi.Cell]string
}

// NewNamer returns an empty namer.
func NewNamer() *Namer { return &Namer{names: map[*lockapi.Cell]string{}} }

// Name returns the cell's display name, assigning the next one on first
// sight; nil renders as "-".
func (n *Namer) Name(c *lockapi.Cell) string {
	if c == nil {
		return "-"
	}
	if s, ok := n.names[c]; ok {
		return s
	}
	s := fmt.Sprintf("cell%d", len(n.names))
	n.names[c] = s
	return s
}

// FormatEvent renders one trace event as the per-CPU timeline line used by
// cmd/clof-trace: virtual timestamp, CPU, operation, cell, value, cost.
func FormatEvent(ev memsim.TraceEvent, n *Namer) string {
	return fmt.Sprintf("%8dns cpu%-3d %-6s %-8s val=%-4d cost=%dns",
		ev.Time, ev.CPU, ev.Op, n.Name(ev.Cell), ev.Value, ev.Cost)
}
