package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// This file exports a collected run in the Chrome trace-event JSON format,
// which Perfetto (https://ui.perfetto.dev) and chrome://tracing both load:
// one track (tid) per virtual CPU under one process (pid 0), "X" complete
// events for wait and hold spans, and "s"/"f" flow events drawing an arrow
// for every cross-CPU handover. Timestamps are microseconds (the format's
// unit); virtual nanoseconds divide by 1000 exactly in the mantissa range
// simulations reach, so the export is lossless in practice.
//
// Output is deterministic: events are emitted in a fixed order (metadata by
// CPU, then spans and flows in collection order) and marshaled with
// encoding/json's stable struct field order, so goldens can pin the bytes.

// traceEvent is one Chrome trace-event record. Optional fields are omitted
// when zero so the output stays compact.
type traceEvent struct {
	Name string         `json:"name,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   uint64         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the top-level Chrome trace JSON object.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// usOf converts virtual nanoseconds to the format's microsecond unit.
func usOf(ns int64) float64 { return float64(ns) / 1000 }

// WriteTraceJSON writes the collector's retained spans and handover flows
// as Chrome trace-event JSON. The collector must have been built with
// Options.Spans; an empty collector yields a valid trace with only
// metadata. The writer receives a trailing newline so the artifact is a
// well-formed text file.
func WriteTraceJSON(w io.Writer, c *Collector) error {
	if !c.opt.Spans {
		return fmt.Errorf("obs: WriteTraceJSON needs a Collector with Options.Spans")
	}
	var f traceFile
	f.DisplayTimeUnit = "ns"

	// One named track per CPU that appears in any span.
	cpus := map[int]bool{}
	for _, s := range c.spans {
		cpus[s.CPU] = true
	}
	order := make([]int, 0, len(cpus))
	for cpu := range cpus {
		order = append(order, cpu)
	}
	sort.Ints(order)
	for _, cpu := range order {
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: cpu,
			Args: map[string]any{"name": fmt.Sprintf("vcpu%d", cpu)},
		})
	}

	for _, s := range c.spans {
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: s.Name, Cat: "lock", Ph: "X",
			TS: usOf(s.StartNS), Dur: usOf(s.EndNS - s.StartNS),
			PID: 0, TID: s.CPU,
			Args: map[string]any{"seq": s.Seq},
		})
	}

	// Flow arrows: "s" at the releasing end, "f" at the acquiring end with
	// binding point "e" (attach to the enclosing slice). The id+cat+name
	// triple ties each pair together.
	for _, fl := range c.flows {
		f.TraceEvents = append(f.TraceEvents,
			traceEvent{
				Name: "handover", Cat: "lock", Ph: "s",
				TS: usOf(fl.FromNS), PID: 0, TID: fl.FromCPU, ID: fl.ID,
			},
			traceEvent{
				Name: "handover", Cat: "lock", Ph: "f", BP: "e",
				TS: usOf(fl.ToNS), PID: 0, TID: fl.ToCPU, ID: fl.ID,
			},
		)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(f)
}
