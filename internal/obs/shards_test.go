package obs

import (
	"encoding/json"
	"testing"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/topo"
)

func TestHistMerge(t *testing.T) {
	var a, b Hist
	for _, v := range []int64{1, 5, 100} {
		a.Record(v)
	}
	for _, v := range []int64{0, 7, 3000} {
		b.Record(v)
	}
	a.Merge(&b)
	if a.Count() != 6 {
		t.Fatalf("merged count = %d", a.Count())
	}
	s := a.Summary()
	if s.Min != 0 || s.Max != 3000 {
		t.Errorf("merged min/max = %d/%d, want 0/3000", s.Min, s.Max)
	}
	if want := (1.0 + 5 + 100 + 0 + 7 + 3000) / 6; s.Mean != want {
		t.Errorf("merged mean = %f, want %f", s.Mean, want)
	}
	// Merging into an empty histogram copies.
	var c Hist
	c.Merge(&a)
	if c.Count() != 6 || c.Summary().Min != 0 {
		t.Errorf("merge into empty lost data: %+v", c.Summary())
	}
	// Merging an empty histogram is a no-op (min must not clobber).
	var empty Hist
	before := a.Summary()
	a.Merge(&empty)
	after := a.Summary()
	if after.Count != before.Count || after.Min != before.Min || after.Max != before.Max || after.Mean != before.Mean {
		t.Error("merging empty changed the histogram")
	}
}

// fakeProc is a minimal Proc with a virtual clock for driving collectors;
// its memory operations are never called (observer callbacks must not issue
// any).
type fakeProc struct {
	id  int
	now int64
}

func (f *fakeProc) ID() int     { return f.id }
func (f *fakeProc) Time() int64 { return f.now }

func (f *fakeProc) Load(*lockapi.Cell, lockapi.Order) uint64              { panic("unused") }
func (f *fakeProc) Store(*lockapi.Cell, uint64, lockapi.Order)            { panic("unused") }
func (f *fakeProc) CAS(*lockapi.Cell, uint64, uint64, lockapi.Order) bool { panic("unused") }
func (f *fakeProc) Add(*lockapi.Cell, uint64, lockapi.Order) uint64       { panic("unused") }
func (f *fakeProc) Swap(*lockapi.Cell, uint64, lockapi.Order) uint64      { panic("unused") }
func (f *fakeProc) Fence(lockapi.Order)                                   { panic("unused") }
func (f *fakeProc) Spin()                                                 { panic("unused") }

// TestCombineShards: two shard collectors fold into one report whose totals
// sum the shards and whose Shards block resolves each one.
func TestCombineShards(t *testing.T) {
	m := topo.Armv8Server()
	shard0 := NewCollector(m, Options{})
	shard1 := NewCollector(m, Options{})

	drive := func(c *Collector, cpu int, start, acq, rel int64) {
		p := &fakeProc{id: cpu}
		p.now = start
		c.AcquireStart(p)
		p.now = acq
		c.Acquired(p)
		p.now = rel
		c.Released(p)
	}
	drive(shard0, 0, 0, 10, 20)
	drive(shard0, 1, 15, 30, 40)
	drive(shard1, 2, 0, 5, 50)

	r := CombineShards("rwlock", []*Collector{shard0, shard1}, []uint64{100, 7},
		[]OCCOps{{Optimistic: 40, ValidationFailures: 3, Fallbacks: 1}})
	if r.Lock != "rwlock" {
		t.Errorf("lock label = %q", r.Lock)
	}
	if r.Acquisitions != 3 {
		t.Fatalf("acquisitions = %d, want 3", r.Acquisitions)
	}
	if len(r.Shards) != 2 {
		t.Fatalf("shards block has %d entries", len(r.Shards))
	}
	if r.Shards[0].Acquisitions != 2 || r.Shards[1].Acquisitions != 1 {
		t.Errorf("per-shard acquisitions = %d/%d, want 2/1",
			r.Shards[0].Acquisitions, r.Shards[1].Acquisitions)
	}
	if r.Shards[0].SharedOps != 100 || r.Shards[1].SharedOps != 7 {
		t.Errorf("shared ops = %d/%d, want 100/7", r.Shards[0].SharedOps, r.Shards[1].SharedOps)
	}
	// OCC counters land on shard 0 only (short slice); shard 1 stays zero.
	if s0 := r.Shards[0]; s0.OptimisticOps != 40 || s0.OCCValidationFailures != 3 || s0.OCCFallbacks != 1 {
		t.Errorf("shard 0 occ = %d/%d/%d, want 40/3/1",
			s0.OptimisticOps, s0.OCCValidationFailures, s0.OCCFallbacks)
	}
	if s1 := r.Shards[1]; s1.OptimisticOps != 0 || s1.OCCValidationFailures != 0 || s1.OCCFallbacks != 0 {
		t.Errorf("shard 1 occ = %d/%d/%d, want zeros", s1.OptimisticOps, s1.OCCValidationFailures, s1.OCCFallbacks)
	}
	if r.AcquireLatency.Count != 3 || r.Hold.Count != 3 {
		t.Errorf("merged histogram counts = %d/%d, want 3/3",
			r.AcquireLatency.Count, r.Hold.Count)
	}
	// Hold times: 10, 10, 45 → max 45.
	if r.Hold.Max != 45 {
		t.Errorf("merged hold max = %d, want 45", r.Hold.Max)
	}
	// The handover invariant holds per shard, and shard0's cross-CPU
	// handover (cpu0 → cpu1) survives the fold.
	if r.Handover.Crossings != 1 {
		t.Errorf("crossings = %d, want 1", r.Handover.Crossings)
	}
	// The block serializes under "shards".
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var m2 map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m2); err != nil {
		t.Fatal(err)
	}
	if _, ok := m2["shards"]; !ok {
		t.Error("report JSON missing shards block")
	}
}

// TestCombineShardsEmpty: no collectors yields a labeled empty report.
func TestCombineShardsEmpty(t *testing.T) {
	r := CombineShards("x", nil, nil, nil)
	if r.Lock != "x" || r.Acquisitions != 0 || r.Shards != nil {
		t.Errorf("empty combine = %+v", r)
	}
}
