package obs

import "math/bits"

// histBuckets is the bucket count of Hist: one power-of-two bucket per
// possible bit length of an int64 value, so Record never range-checks.
const histBuckets = 64

// Hist is an HDR-style log-bucketed latency histogram: bucket b counts
// values whose bit length is b, i.e. bucket 0 holds the value 0 and bucket
// b>0 covers [2^(b-1), 2^b). Recording is two adds and a bit scan — cheap
// enough for per-acquisition use — and quantiles are read back with
// power-of-two resolution, which is plenty for latencies spanning decades.
//
// The zero value is an empty histogram ready for use.
type Hist struct {
	counts [histBuckets]uint64
	count  uint64
	sum    int64
	min    int64
	max    int64
}

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int { return bits.Len64(uint64(v)) }

// Record adds one value. Negative values clamp to zero (they can only arise
// from a backend without a clock, where latency is meaningless anyway).
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[bucketOf(v)]++
	h.count++
	h.sum += v
}

// Count returns the number of recorded values.
func (h *Hist) Count() uint64 { return h.count }

// Mean returns the exact mean of the recorded values (0 when empty).
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the
// inclusive upper edge of the bucket containing it, clamped to the observed
// maximum. Monotone in q; 0 when empty.
func (h *Hist) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.count))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for b, n := range h.counts {
		cum += n
		if cum >= rank {
			hi := int64(1)<<uint(b) - 1 // inclusive upper edge of bucket b
			if hi > h.max {
				hi = h.max
			}
			return hi
		}
	}
	return h.max
}

// HistSummary is the serializable digest of a Hist: totals, the standard
// quantiles, and the sparse non-empty buckets for consumers that want the
// full shape.
type HistSummary struct {
	// Count is the number of recorded values.
	Count uint64 `json:"count"`
	// Min / Max are the exact observed extremes.
	Min int64 `json:"min"`
	Max int64 `json:"max"`
	// Mean is the exact mean.
	Mean float64 `json:"mean"`
	// P50 / P90 / P99 are bucket-resolution quantile upper bounds.
	P50 int64 `json:"p50"`
	P90 int64 `json:"p90"`
	P99 int64 `json:"p99"`
	// Buckets lists the non-empty buckets in ascending value order.
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// HistBucket is one non-empty histogram bucket.
type HistBucket struct {
	// Lo / Hi bound the bucket's value range, both inclusive.
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
	// Count is the number of values that fell in [Lo, Hi].
	Count uint64 `json:"count"`
}

// Summary digests the histogram.
func (h *Hist) Summary() HistSummary {
	s := HistSummary{
		Count: h.count,
		Min:   h.min,
		Max:   h.max,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
	for b, n := range h.counts {
		if n == 0 {
			continue
		}
		lo := int64(0)
		if b > 0 {
			lo = int64(1) << uint(b-1)
		}
		s.Buckets = append(s.Buckets, HistBucket{Lo: lo, Hi: int64(1)<<uint(b) - 1, Count: n})
	}
	return s
}
