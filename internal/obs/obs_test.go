package obs_test

import (
	"encoding/json"
	"testing"

	"github.com/clof-go/clof/internal/catalog"
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/obs"
	"github.com/clof-go/clof/internal/topo"
	"github.com/clof-go/clof/internal/workload"
)

// observe runs one short contended workload with a collector attached and
// returns the collector's report next to the workload's own result.
func observe(t *testing.T, e catalog.Entry, threads int, opt obs.Options) (obs.Report, workload.Result, *obs.Collector) {
	t.Helper()
	m := topo.X86Server()
	col := obs.NewCollector(m, opt)
	cfg := workload.Config{
		Machine:   m,
		Threads:   threads,
		Horizon:   40_000,
		CSWork:    150,
		NCSWork:   600,
		DataCells: 2,
		Seed:      11,
		Observer:  col,
	}
	res, err := workload.Run(func() lockapi.Lock { return e.New(m) }, cfg)
	if err != nil {
		t.Fatalf("%s: %v", e.Name, err)
	}
	return col.Report(), res, col
}

// TestHandoverCountsSum is the collector's core invariant, checked for every
// catalog lock: each acquisition after the first is either a self-transfer
// or a cross-CPU handover binned at exactly one level, so
// self + crossings + 1 == acquisitions. The per-level counts must also
// agree exactly with the workload's own independent HandoverLevels
// accounting (both observe the same acquisition sequence).
func TestHandoverCountsSum(t *testing.T) {
	for _, e := range catalog.Locks() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			rep, res, _ := observe(t, e, 6, obs.Options{Lock: e.Name})
			if rep.Acquisitions == 0 {
				t.Fatal("no acquisitions observed")
			}
			sum := rep.Handover.Self + 1
			var crossings uint64
			for i, lc := range rep.Handover.Levels {
				sum += lc.Count
				crossings += lc.Count
				if want := res.HandoverLevels[i]; lc.Count != want {
					t.Errorf("level %s: obs %d, workload %d", lc.Level, lc.Count, want)
				}
			}
			if crossings != rep.Handover.Crossings {
				t.Errorf("crossings: sum %d, reported %d", crossings, rep.Handover.Crossings)
			}
			if sum != rep.Acquisitions {
				t.Errorf("self+levels+first = %d, acquisitions = %d", sum, rep.Acquisitions)
			}
			if rep.AcquireLatency.Count != rep.Acquisitions {
				t.Errorf("latency samples %d != acquisitions %d", rep.AcquireLatency.Count, rep.Acquisitions)
			}
			if rep.Hold.Count > rep.Acquisitions {
				t.Errorf("hold samples %d > acquisitions %d", rep.Hold.Count, rep.Acquisitions)
			}
			if rep.Fairness.Jain <= 0 || rep.Fairness.Jain > 1.0000001 {
				t.Errorf("jain out of range: %v", rep.Fairness.Jain)
			}
		})
	}
}

// TestObservationDoesNotPerturb proves the layer's non-interference claim:
// the same seeded run completes identical iterations at identical virtual
// instants with and without a collector attached.
func TestObservationDoesNotPerturb(t *testing.T) {
	m := topo.X86Server()
	e, err := catalog.Lookup("clof:tkt-tkt-tkt-tkt")
	if err != nil {
		t.Fatal(err)
	}
	base := workload.Config{
		Machine: m, Threads: 8, Horizon: 60_000,
		CSWork: 150, NCSWork: 600, DataCells: 2, Seed: 3,
	}
	plain, err := workload.Run(func() lockapi.Lock { return e.New(m) }, base)
	if err != nil {
		t.Fatal(err)
	}
	observed := base
	observed.Observer = obs.NewCollector(m, obs.Options{})
	withObs, err := workload.Run(func() lockapi.Lock { return e.New(m) }, observed)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Total != withObs.Total || plain.Now != withObs.Now || plain.Events != withObs.Events {
		t.Errorf("observation perturbed the run: plain {total=%d now=%d events=%d}, observed {total=%d now=%d events=%d}",
			plain.Total, plain.Now, plain.Events, withObs.Total, withObs.Now, withObs.Events)
	}
}

// TestTrafficCounters checks the trace-stream half of the collector: cells
// get stable first-seen names and the per-op splits add up.
func TestTrafficCounters(t *testing.T) {
	m := topo.X86Server()
	e, err := catalog.Lookup("mcs")
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector(m, obs.Options{Lock: "mcs"})
	cfg := workload.Config{
		Machine: m, Threads: 4, Horizon: 20_000,
		CSWork: 100, NCSWork: 300, DataCells: 2, Seed: 5,
		Observer: col,
		Trace:    col.TraceFunc(),
	}
	if _, err := workload.Run(func() lockapi.Lock { return e.New(m) }, cfg); err != nil {
		t.Fatal(err)
	}
	rep := col.Report()
	if len(rep.Traffic) == 0 {
		t.Fatal("no traffic collected")
	}
	if rep.Traffic[0].Cell != "cell0" {
		t.Errorf("first-seen cell named %q, want cell0", rep.Traffic[0].Cell)
	}
	for _, tr := range rep.Traffic {
		var sum uint64
		for _, n := range tr.ByOp {
			sum += n
		}
		if sum != tr.Ops {
			t.Errorf("%s: by-op sum %d != ops %d", tr.Cell, sum, tr.Ops)
		}
	}
}

// TestReportJSONRoundTrip pins the report's serializability (it rides
// results.json manifests as the "obs" block).
func TestReportJSONRoundTrip(t *testing.T) {
	e, err := catalog.Lookup("tkt")
	if err != nil {
		t.Fatal(err)
	}
	rep, _, _ := observe(t, e, 4, obs.Options{Lock: "tkt"})
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back obs.Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Acquisitions != rep.Acquisitions || back.Handover.Self != rep.Handover.Self {
		t.Errorf("round trip lost data: %+v vs %+v", back, rep)
	}
}

// fakeProc is a clockless lockapi.Proc: timestamps are unavailable, so the
// collector must keep counting handovers while skipping latency statistics.
type fakeProc struct{ id int }

func (f fakeProc) Load(*lockapi.Cell, lockapi.Order) uint64              { return 0 }
func (f fakeProc) Store(*lockapi.Cell, uint64, lockapi.Order)            {}
func (f fakeProc) CAS(*lockapi.Cell, uint64, uint64, lockapi.Order) bool { return true }
func (f fakeProc) Add(*lockapi.Cell, uint64, lockapi.Order) uint64       { return 0 }
func (f fakeProc) Swap(*lockapi.Cell, uint64, lockapi.Order) uint64      { return 0 }
func (f fakeProc) Fence(lockapi.Order)                                   {}
func (f fakeProc) Spin()                                                 {}
func (f fakeProc) ID() int                                               { return f.id }

func TestCollectorWithoutClock(t *testing.T) {
	m := topo.X86Server()
	col := obs.NewCollector(m, obs.Options{})
	for i := 0; i < 3; i++ {
		for _, cpu := range []int{0, 1, 50} {
			p := fakeProc{id: cpu}
			col.AcquireStart(p)
			col.Acquired(p)
			col.Released(p)
		}
	}
	rep := col.Report()
	if rep.Acquisitions != 9 {
		t.Fatalf("acquisitions: %d", rep.Acquisitions)
	}
	// 0→1 and 1→50 cross each round, 50→0 crosses between rounds: 8 total.
	if rep.Handover.Crossings != 8 || rep.Handover.Self != 0 {
		t.Errorf("handover: %+v", rep.Handover)
	}
	if rep.AcquireLatency.Count != 0 || rep.Hold.Count != 0 {
		t.Errorf("clockless run must not record latencies: %+v", rep)
	}
}
