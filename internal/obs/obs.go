// Package obs is the lock observability layer (DESIGN.md S29): it turns the
// simulator's raw event streams into per-lock-site contention statistics.
//
// Two complementary inputs feed a Collector:
//
//   - lock-protocol edges (lockapi.Observer): acquire-start, acquired,
//     released — reported natively by instrumented locks or derived from the
//     Acquire/Release call boundaries by lockapi.Instrument's generic
//     wrapper. Edges yield acquisition-latency and hold-time histograms,
//     the handover-distance breakdown by hierarchy level, and per-CPU
//     fairness (Jain index, max-starvation window).
//   - memory-operation trace events (memsim.TraceEvent via TraceFunc):
//     cache-line traffic counters keyed by cell.
//
// The Collector is attachment-free by construction: locks carry one nil
// observer pointer when unobserved, so the off path costs a predictable
// branch per edge and nothing else (memsim's TestNoTraceZeroAllocs proves
// the guarantee). When attached, callbacks never issue Proc memory
// operations, so observation does not perturb virtual time — an observed
// run completes the same iterations at the same instants as an unobserved
// one.
//
// Results are exposed three ways: a Report struct (serialized into
// results.json manifests as an additive "obs" block), the cmd/clof-obs CLI
// (per-level handover tables), and a Perfetto/Chrome-trace JSON export
// (WriteTraceJSON) with one track per virtual CPU and flow arrows for
// cross-CPU handovers.
package obs

import (
	"sort"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/memsim"
	"github.com/clof-go/clof/internal/topo"
)

// numLevels mirrors topo's level count (Core..System).
const numLevels = int(topo.System) + 1

// Options configures a Collector.
type Options struct {
	// Lock labels the report (e.g. the catalog lock name).
	Lock string
	// Spans retains one wait/hold span pair per acquisition plus handover
	// flow records, enabling WriteTraceJSON. Off by default: a long run
	// holds millions of acquisitions.
	Spans bool
}

// Span is one rendered interval on a virtual CPU's track: the wait between
// acquire-start and acquired, or the hold between acquired and released.
type Span struct {
	// CPU is the track (virtual CPU number).
	CPU int
	// Name is "wait" or "hold".
	Name string
	// StartNS / EndNS bound the interval in virtual nanoseconds.
	StartNS, EndNS int64
	// Seq is the global acquisition sequence number the span belongs to.
	Seq uint64
}

// Flow is one cross-CPU handover arrow: from the previous owner's release
// instant to the next owner's acquired instant.
type Flow struct {
	// ID is the acquisition sequence number at the arrow head.
	ID uint64
	// FromCPU / FromNS locate the releasing end.
	FromCPU int
	FromNS  int64
	// ToCPU / ToNS locate the acquiring end.
	ToCPU int
	ToNS  int64
}

// cellTraffic accumulates trace-event statistics for one cell.
type cellTraffic struct {
	idx  int // first-seen order, for stable report output
	ops  uint64
	cost int64
	byOp map[string]uint64
}

// Collector consumes lock-protocol edges (as a lockapi.Observer) and,
// optionally, memsim trace events (via TraceFunc), and summarizes them as a
// Report. One Collector observes one lock instance over one run; it is not
// safe for concurrent use outside the simulator's deterministic scheduling.
type Collector struct {
	machine *topo.Machine
	opt     Options
	namer   *Namer

	// Per-CPU edge state: virtual-ns timestamps, -1 = none in flight.
	startNS   []int64 // acquire-start of the in-flight acquisition
	acqNS     []int64 // acquired instant of the current hold
	lastAcqNS []int64 // previous acquired instant (starvation windows)
	starveNS  []int64 // longest observed gap between acquisitions
	perCPU    []uint64

	acquireLat Hist
	holdNS     Hist

	acquisitions  uint64
	self          uint64
	levels        [numLevels]uint64
	lastOwner     int
	lastReleaseNS int64
	seq           uint64

	spans   []Span
	flows   []Flow
	traffic map[*lockapi.Cell]*cellTraffic
}

// NewCollector returns a Collector for a run on machine m.
func NewCollector(m *topo.Machine, o Options) *Collector {
	n := m.NumCPUs()
	c := &Collector{
		machine:       m,
		opt:           o,
		namer:         NewNamer(),
		startNS:       make([]int64, n),
		acqNS:         make([]int64, n),
		lastAcqNS:     make([]int64, n),
		starveNS:      make([]int64, n),
		perCPU:        make([]uint64, n),
		lastOwner:     -1,
		lastReleaseNS: -1,
		traffic:       map[*lockapi.Cell]*cellTraffic{},
	}
	for i := 0; i < n; i++ {
		c.startNS[i] = -1
		c.acqNS[i] = -1
		c.lastAcqNS[i] = -1
	}
	return c
}

// timeOf extracts virtual time from backends that expose it (memsim.Proc
// does); -1 means the backend keeps no clock and time-derived statistics
// are skipped.
func timeOf(p lockapi.Proc) int64 {
	if t, ok := p.(interface{ Time() int64 }); ok {
		return t.Time()
	}
	return -1
}

// AcquireStart implements lockapi.Observer.
func (c *Collector) AcquireStart(p lockapi.Proc) {
	c.startNS[p.ID()] = timeOf(p)
}

// Acquired implements lockapi.Observer: the bulk of the accounting happens
// here — latency, handover distance, fairness windows, and flow arrows.
func (c *Collector) Acquired(p lockapi.Proc) {
	cpu := p.ID()
	now := timeOf(p)
	c.acquisitions++
	c.perCPU[cpu]++
	if s := c.startNS[cpu]; s >= 0 && now >= s {
		c.acquireLat.Record(now - s)
		if c.opt.Spans {
			c.spans = append(c.spans, Span{CPU: cpu, Name: "wait", StartNS: s, EndNS: now, Seq: c.seq})
		}
	}
	if c.lastOwner >= 0 {
		if c.lastOwner == cpu {
			c.self++
		} else {
			c.levels[c.machine.ShareLevel(c.lastOwner, cpu)]++
			if c.opt.Spans && now >= 0 && c.lastReleaseNS >= 0 {
				c.flows = append(c.flows, Flow{
					ID:      c.seq,
					FromCPU: c.lastOwner, FromNS: c.lastReleaseNS,
					ToCPU: cpu, ToNS: now,
				})
			}
		}
	}
	if prev := c.lastAcqNS[cpu]; prev >= 0 && now > prev && now-prev > c.starveNS[cpu] {
		c.starveNS[cpu] = now - prev
	}
	c.lastAcqNS[cpu] = now
	c.lastOwner = cpu
	c.acqNS[cpu] = now
	c.seq++
}

// Released implements lockapi.Observer.
func (c *Collector) Released(p lockapi.Proc) {
	cpu := p.ID()
	now := timeOf(p)
	if a := c.acqNS[cpu]; a >= 0 && now >= a {
		c.holdNS.Record(now - a)
		if c.opt.Spans {
			// seq-1: the hold closes the acquisition Acquired just numbered.
			c.spans = append(c.spans, Span{CPU: cpu, Name: "hold", StartNS: a, EndNS: now, Seq: c.seq - 1})
		}
	}
	c.lastReleaseNS = now
	c.acqNS[cpu] = -1
	c.startNS[cpu] = -1
}

// TraceFunc returns a memsim.Config.Trace callback that feeds the per-cell
// traffic counters. Events without a cell (spin, work, park...) are ignored.
func (c *Collector) TraceFunc() func(memsim.TraceEvent) {
	return func(ev memsim.TraceEvent) {
		if ev.Cell == nil {
			return
		}
		t := c.traffic[ev.Cell]
		if t == nil {
			t = &cellTraffic{idx: len(c.traffic), byOp: map[string]uint64{}}
			c.traffic[ev.Cell] = t
			c.namer.Name(ev.Cell) // pin the display name in first-seen order
		}
		t.ops++
		t.cost += ev.Cost
		t.byOp[ev.Op]++
	}
}

// Namer returns the collector's cell namer (shared with TraceFunc), so a
// caller printing a live trace and collecting traffic uses one namespace.
func (c *Collector) Namer() *Namer { return c.namer }

// Report is the serializable summary of one observed run. It lands in
// results.json manifests as the additive "obs" block.
type Report struct {
	// Lock is the observed lock's label (Options.Lock).
	Lock string `json:"lock,omitempty"`
	// Machine names the simulated platform.
	Machine string `json:"machine,omitempty"`
	// Acquisitions counts acquired edges (= successful lock acquisitions).
	Acquisitions uint64 `json:"acquisitions"`
	// AcquireLatency is the acquire-start→acquired latency histogram.
	AcquireLatency HistSummary `json:"acquire_latency_ns"`
	// Hold is the acquired→released hold-time histogram.
	Hold HistSummary `json:"hold_ns"`
	// Handover breaks down consecutive-owner transitions by distance.
	Handover Handover `json:"handover"`
	// Fairness summarizes the per-CPU acquisition split.
	Fairness Fairness `json:"fairness"`
	// Traffic lists per-cell memory-operation counts (needs TraceFunc).
	Traffic []CellTraffic `json:"traffic,omitempty"`
	// Shards breaks acquisitions down by shard when the report aggregates a
	// sharded store's per-shard collectors (CombineShards); nil otherwise.
	Shards []ShardStat `json:"shards,omitempty"`
}

// Handover is the handover-distance breakdown: every acquisition after the
// first is either a self-transfer (same CPU re-acquires) or a cross-CPU
// handover binned by the sharing level of the two owners. The invariant
// Self + ΣLevels + min(Acquisitions,1) == Acquisitions always holds.
type Handover struct {
	// Self counts same-CPU back-to-back acquisitions.
	Self uint64 `json:"self"`
	// Levels has one entry per hierarchy level, Core..System, in order.
	Levels []LevelCount `json:"levels"`
	// Crossings is the total of the level counts (cross-CPU handovers).
	Crossings uint64 `json:"crossings"`
}

// LevelCount is one level's handover count.
type LevelCount struct {
	// Level is the topo level name ("core", "cache-group", ...).
	Level string `json:"level"`
	// Count is the number of handovers crossing exactly this level.
	Count uint64 `json:"count"`
}

// Fairness summarizes how evenly the lock served its CPUs.
type Fairness struct {
	// Jain is Jain's fairness index of per-CPU acquisition counts over the
	// CPUs that acquired at least once (1.0 = perfectly even).
	Jain float64 `json:"jain"`
	// MaxStarvationNS is the longest virtual-time window any single CPU
	// waited between two consecutive acquisitions of its own.
	MaxStarvationNS int64 `json:"max_starvation_ns"`
	// StarvedCPU is the CPU that suffered MaxStarvationNS (-1 if none).
	StarvedCPU int `json:"starved_cpu"`
	// PerCPU lists acquisition counts for CPUs with at least one.
	PerCPU []CPUShare `json:"per_cpu,omitempty"`
}

// CPUShare is one CPU's slice of the acquisitions.
type CPUShare struct {
	// CPU is the virtual CPU number.
	CPU int `json:"cpu"`
	// Acquisitions is how many times this CPU won the lock.
	Acquisitions uint64 `json:"acquisitions"`
	// MaxGapNS is this CPU's longest wait between consecutive wins.
	MaxGapNS int64 `json:"max_gap_ns,omitempty"`
}

// CellTraffic is one cell's memory-operation totals, in first-seen order.
type CellTraffic struct {
	// Cell is the display name assigned by the collector's Namer.
	Cell string `json:"cell"`
	// Ops is the total committed operations touching the cell.
	Ops uint64 `json:"ops"`
	// CostNS is the summed charged latency.
	CostNS int64 `json:"cost_ns"`
	// ByOp splits Ops by operation kind ("load", "store", "cas", ...).
	ByOp map[string]uint64 `json:"by_op"`
}

// Report summarizes everything collected so far. It may be called mid-run
// (statistics to date) or after memsim's Run returns (the full run).
func (c *Collector) Report() Report {
	r := Report{
		Lock:           c.opt.Lock,
		Machine:        c.machine.Name,
		Acquisitions:   c.acquisitions,
		AcquireLatency: c.acquireLat.Summary(),
		Hold:           c.holdNS.Summary(),
	}
	r.Handover.Self = c.self
	r.Handover.Levels = make([]LevelCount, numLevels)
	for i := 0; i < numLevels; i++ {
		r.Handover.Levels[i] = LevelCount{Level: topo.Level(i).String(), Count: c.levels[i]}
		r.Handover.Crossings += c.levels[i]
	}
	r.Fairness = c.fairness()
	r.Traffic = c.trafficReport()
	return r
}

// fairness computes the Jain index and starvation windows over active CPUs.
func (c *Collector) fairness() Fairness {
	f := Fairness{StarvedCPU: -1}
	var sum, sq float64
	n := 0
	for cpu, count := range c.perCPU {
		if count == 0 {
			continue
		}
		n++
		sum += float64(count)
		sq += float64(count) * float64(count)
		f.PerCPU = append(f.PerCPU, CPUShare{CPU: cpu, Acquisitions: count, MaxGapNS: c.starveNS[cpu]})
		if c.starveNS[cpu] > f.MaxStarvationNS {
			f.MaxStarvationNS = c.starveNS[cpu]
			f.StarvedCPU = cpu
		}
	}
	if sq > 0 {
		f.Jain = sum * sum / (float64(n) * sq)
	}
	return f
}

// trafficReport orders the per-cell counters by first observation.
func (c *Collector) trafficReport() []CellTraffic {
	if len(c.traffic) == 0 {
		return nil
	}
	type entry struct {
		idx int
		ct  CellTraffic
	}
	entries := make([]entry, 0, len(c.traffic))
	for cell, t := range c.traffic {
		entries = append(entries, entry{idx: t.idx, ct: CellTraffic{Cell: c.namer.Name(cell), Ops: t.ops, CostNS: t.cost, ByOp: t.byOp}})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].idx < entries[j].idx })
	out := make([]CellTraffic, len(entries))
	for i, e := range entries {
		out[i] = e.ct
	}
	return out
}

// Spans returns the retained spans (empty unless Options.Spans).
func (c *Collector) Spans() []Span { return c.spans }

// Flows returns the retained handover arrows (empty unless Options.Spans).
func (c *Collector) Flows() []Flow { return c.flows }

var _ lockapi.Observer = (*Collector)(nil)
