package cohort

import (
	"testing"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/locktest"
	"github.com/clof-go/clof/internal/topo"
)

func TestNativeMutualExclusion(t *testing.T) {
	m := topo.X86Server()
	for _, l := range []*Lock{NewBOMCS(m), NewTKTTKT(m), NewMCSMCS(m)} {
		t.Run(l.Name(), func(t *testing.T) {
			locktest.NativeStress(t, l, m, 12, 2000)
		})
	}
}

func TestNames(t *testing.T) {
	m := topo.Armv8Server()
	want := map[string]*Lock{
		"C-bo-mcs":  NewBOMCS(m),
		"C-tkt-tkt": NewTKTTKT(m),
		"C-mcs-mcs": NewMCSMCS(m),
	}
	for name, l := range want {
		if l.Name() != name {
			t.Errorf("Name = %q, want %q", l.Name(), name)
		}
	}
}

// TestFairnessMatchesComposition: C-BO-MCS is unfair (the cohorting paper's
// own caveat); C-TKT-TKT is fair. CLoF's Theorem 4.1 applied to 2 levels.
func TestFairnessMatchesComposition(t *testing.T) {
	m := topo.X86Server()
	if lockapi.Fair(NewBOMCS(m)) {
		t.Error("C-BO-MCS must be unfair (backoff global lock)")
	}
	if !lockapi.Fair(NewTKTTKT(m)) {
		t.Error("C-TKT-TKT must be fair")
	}
}

// TestCohortNUMALocality: a cohort lock keeps handovers NUMA-local.
func TestCohortNUMALocality(t *testing.T) {
	m := topo.Armv8Server()
	res := locktest.SimRun(t, func() lockapi.Lock { return NewMCSMCS(m) }, locktest.SimConfig{
		Machine: m, Threads: 64, Horizon: 300_000, CSWork: 80, NCSWork: 120,
	})
	var local, total uint64
	for lvl, c := range res.HandoverLevels {
		total += c
		if topo.Level(lvl) <= topo.NUMA {
			local += c
		}
	}
	if total == 0 {
		t.Fatal("no handovers")
	}
	if f := float64(local) / float64(total); f < 0.8 {
		t.Errorf("cohort numa-local handover fraction %.2f, want > 0.8", f)
	}
}

func TestNewRejectsBadLevel(t *testing.T) {
	m := topo.X86Server()
	tkt := locks.MustType("tkt")
	if _, err := New(m, topo.System, tkt, tkt); err == nil {
		t.Error("System as the local level must be rejected (duplicate levels)")
	}
}
