// Package cohort implements classic two-level lock cohorting after Dice,
// Marathe and Shavit (PPoPP'12): a global lock G plus one local lock per
// NUMA cohort, where the local releaser may pass ownership of G within its
// cohort. It exists as the paper's §2.3 baseline and to demonstrate that
// CLoF strictly generalizes cohorting: a cohort lock *is* a 2-level CLoF
// composition, which is exactly how this package builds it.
//
// The classic named variants are provided: C-BO-MCS (global backoff, local
// MCS — fast but unfair, as the cohorting paper concedes) and C-TKT-TKT
// (global and local ticket locks — fair).
package cohort

import (
	"fmt"

	"github.com/clof-go/clof/internal/clof"
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/topo"
)

// Lock is a two-level cohort lock over the NUMA and system levels.
type Lock struct {
	*clof.Lock
	global, local locks.Type
}

// New builds a cohort lock C-<global>-<local> on machine m, with local
// cohorts at the given level (the classic construction uses topo.NUMA).
func New(m *topo.Machine, level topo.Level, global, local locks.Type) (*Lock, error) {
	h, err := topo.NewHierarchy(m, level, topo.System)
	if err != nil {
		return nil, err
	}
	// Composition order is low→high: the local lock sits at `level`, the
	// global lock at the system level.
	inner, err := clof.New(h, clof.Composition{local, global})
	if err != nil {
		return nil, err
	}
	return &Lock{Lock: inner, global: global, local: local}, nil
}

// Must is New that panics on error.
func Must(m *topo.Machine, level topo.Level, global, local locks.Type) *Lock {
	l, err := New(m, level, global, local)
	if err != nil {
		panic(err)
	}
	return l
}

// NewBOMCS returns C-BO-MCS: global backoff lock, local MCS locks. Unfair
// (the backoff lock admits cohorts in arbitrary order).
func NewBOMCS(m *topo.Machine) *Lock {
	return Must(m, topo.NUMA, locks.MustType("bo"), locks.MustType("mcs"))
}

// NewTKTTKT returns C-TKT-TKT: ticket locks at both levels. Fair.
func NewTKTTKT(m *topo.Machine) *Lock {
	return Must(m, topo.NUMA, locks.MustType("tkt"), locks.MustType("tkt"))
}

// NewMCSMCS returns C-MCS-MCS, the level-homogeneous baseline the cohorting
// paper compares against.
func NewMCSMCS(m *topo.Machine) *Lock {
	return Must(m, topo.NUMA, locks.MustType("mcs"), locks.MustType("mcs"))
}

// Name returns the classic C-<GLOBAL>-<LOCAL> notation.
func (l *Lock) Name() string {
	return fmt.Sprintf("C-%s-%s", l.global.Name, l.local.Name)
}

var _ lockapi.Lock = (*Lock)(nil)
