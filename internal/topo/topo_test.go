package topo

import (
	"testing"
	"testing/quick"
)

func TestLevelStringRoundTrip(t *testing.T) {
	for l := Core; l <= System; l++ {
		got, err := ParseLevel(l.String())
		if err != nil {
			t.Fatalf("ParseLevel(%q): %v", l.String(), err)
		}
		if got != l {
			t.Errorf("round trip %v -> %q -> %v", l, l.String(), got)
		}
	}
	if _, err := ParseLevel("l4-tag"); err == nil {
		t.Error("ParseLevel accepted an unknown level name")
	}
}

func TestX86ServerDimensions(t *testing.T) {
	m := X86Server()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.NumCPUs(); got != 96 {
		t.Errorf("x86 NumCPUs = %d, want 96 (48 cores x 2 HT)", got)
	}
	wantCohorts := map[Level]int{Core: 48, CacheGroup: 16, NUMA: 2, Package: 2, System: 1}
	for l, want := range wantCohorts {
		if got := m.Cohorts(l); got != want {
			t.Errorf("x86 Cohorts(%v) = %d, want %d", l, got, want)
		}
	}
}

func TestArmv8ServerDimensions(t *testing.T) {
	m := Armv8Server()
	if got := m.NumCPUs(); got != 128 {
		t.Errorf("armv8 NumCPUs = %d, want 128", got)
	}
	wantCohorts := map[Level]int{Core: 128, CacheGroup: 32, NUMA: 4, Package: 2, System: 1}
	for l, want := range wantCohorts {
		if got := m.Cohorts(l); got != want {
			t.Errorf("armv8 Cohorts(%v) = %d, want %d", l, got, want)
		}
	}
}

func TestShareLevelX86(t *testing.T) {
	m := X86Server()
	tests := []struct {
		a, b int
		want Level
	}{
		{0, 0, Core},
		{0, 1, Core},       // hyperthread siblings
		{0, 2, CacheGroup}, // same CCX, different core
		{0, 5, CacheGroup},
		{0, 6, NUMA},  // next cache group
		{0, 47, NUMA}, // same socket
		{0, 48, System},
		{95, 48, Package}, // same second socket -> shares Package and NUMA; most local is NUMA
	}
	for _, tt := range tests {
		got := m.ShareLevel(tt.a, tt.b)
		// NUMA and Package coincide on this machine (1 NUMA per package):
		// accept the more local of the two for the {95,48} case.
		if tt.a == 95 && tt.b == 48 {
			if got != NUMA {
				t.Errorf("ShareLevel(%d,%d) = %v, want NUMA (most local shared)", tt.a, tt.b, got)
			}
			continue
		}
		if got != tt.want {
			t.Errorf("ShareLevel(%d,%d) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestShareLevelArmv8(t *testing.T) {
	m := Armv8Server()
	tests := []struct {
		a, b int
		want Level
	}{
		{0, 1, CacheGroup}, // no SMT: distinct cores share the cache group
		{0, 4, NUMA},
		{0, 32, Package}, // second NUMA node, same socket
		{0, 64, System},  // second socket
	}
	for _, tt := range tests {
		if got := m.ShareLevel(tt.a, tt.b); got != tt.want {
			t.Errorf("ShareLevel(%d,%d) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestShareLevelSymmetric(t *testing.T) {
	m := Armv8Server()
	f := func(a, b uint16) bool {
		x := int(a) % m.NumCPUs()
		y := int(b) % m.NumCPUs()
		return m.ShareLevel(x, y) == m.ShareLevel(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCohortCPUsPartition(t *testing.T) {
	for _, m := range []*Machine{X86Server(), Armv8Server()} {
		for l := Core; l <= System; l++ {
			seen := make(map[int]bool)
			for id := 0; id < m.Cohorts(l); id++ {
				for _, cpu := range m.CohortCPUs(l, id) {
					if seen[cpu] {
						t.Fatalf("%s level %v: cpu %d in two cohorts", m.Name, l, cpu)
					}
					seen[cpu] = true
					if m.CohortOf(cpu, l) != id {
						t.Fatalf("%s level %v: CohortOf(%d) != %d", m.Name, l, cpu, id)
					}
				}
			}
			if len(seen) != m.NumCPUs() {
				t.Fatalf("%s level %v: cohorts cover %d CPUs, want %d", m.Name, l, len(seen), m.NumCPUs())
			}
		}
	}
}

func TestHierarchyValidate(t *testing.T) {
	m := X86Server()
	if _, err := NewHierarchy(m, Core, CacheGroup, NUMA, System); err != nil {
		t.Errorf("valid hierarchy rejected: %v", err)
	}
	if _, err := NewHierarchy(m, NUMA, Core, System); err == nil {
		t.Error("descending levels accepted")
	}
	if _, err := NewHierarchy(m, Core, NUMA); err == nil {
		t.Error("hierarchy not ending at System accepted")
	}
	if _, err := NewHierarchy(m); err == nil {
		t.Error("empty hierarchy accepted")
	}
	if _, err := NewHierarchy(nil, System); err == nil {
		t.Error("nil machine accepted")
	}
	bad := *m
	bad.CoresPerGroup = 0
	if _, err := NewHierarchy(&bad, System); err == nil {
		t.Error("machine with zero dimension accepted")
	}
}

func TestHierarchyTextRoundTrip(t *testing.T) {
	for _, h := range []*Hierarchy{X86Hierarchy4(), X86Hierarchy3(), ArmHierarchy4(), ArmHierarchy3()} {
		b, err := h.MarshalText()
		if err != nil {
			t.Fatalf("%s: marshal: %v", h, err)
		}
		var got Hierarchy
		if err := got.UnmarshalText(b); err != nil {
			t.Fatalf("%s: unmarshal: %v", h, err)
		}
		if got.String() != h.String() {
			t.Errorf("round trip: got %s, want %s", got.String(), h.String())
		}
		if got.Machine.Arch != h.Machine.Arch {
			t.Errorf("round trip lost arch: got %v, want %v", got.Machine.Arch, h.Machine.Arch)
		}
	}
}

func TestPaperHierarchyDepths(t *testing.T) {
	if d := X86Hierarchy4().Depth(); d != 4 {
		t.Errorf("X86Hierarchy4 depth = %d", d)
	}
	if d := ArmHierarchy3().Depth(); d != 3 {
		t.Errorf("ArmHierarchy3 depth = %d", d)
	}
}

func TestUnmarshalRejectsBadConfig(t *testing.T) {
	var h Hierarchy
	if err := h.UnmarshalText([]byte(`{"machine":{"name":"m","arch":"x86","packages":1,"numaPerPackage":1,"groupsPerNuma":1,"coresPerGroup":1,"threadsPerCore":1},"levels":["numa","core","system"]}`)); err == nil {
		t.Error("descending-level config accepted")
	}
	if err := h.UnmarshalText([]byte(`{"machine":{"name":"m","arch":"vax"},"levels":["system"]}`)); err == nil {
		t.Error("unknown arch accepted")
	}
}

func TestBigLittleSoC(t *testing.T) {
	m := BigLittleSoC()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumCPUs() != 8 || m.Cohorts(CacheGroup) != 2 {
		t.Fatalf("SoC shape wrong: %d cpus, %d clusters", m.NumCPUs(), m.Cohorts(CacheGroup))
	}
	speeds := BigLittleSpeeds(m, 3.0)
	for cpu, s := range speeds {
		want := 1.0
		if cpu >= 4 {
			want = 3.0
		}
		if s != want {
			t.Errorf("cpu %d speed = %v, want %v", cpu, s, want)
		}
	}
}
