package topo

import "testing"

func TestPlacementX86FillsCoresFirst(t *testing.T) {
	m := X86Server()
	cpus, err := Placement(m, 96)
	if err != nil {
		t.Fatal(err)
	}
	// First 48 threads: one per physical core (even CPU ids).
	for i := 0; i < 48; i++ {
		if cpus[i]%2 != 0 {
			t.Fatalf("thread %d on cpu %d: expected first hyperthreads only", i, cpus[i])
		}
	}
	// Threads 48..95 take the second hyperthreads.
	for i := 48; i < 96; i++ {
		if cpus[i]%2 != 1 {
			t.Fatalf("thread %d on cpu %d: expected second hyperthreads", i, cpus[i])
		}
	}
	// 24 threads fill exactly package 0 (cores 0..23 = CPUs < 48).
	for i := 0; i < 24; i++ {
		if m.CohortOf(cpus[i], Package) != 0 {
			t.Fatalf("thread %d on cpu %d: expected package 0", i, cpus[i])
		}
	}
	if m.CohortOf(cpus[24], Package) != 1 {
		t.Fatalf("thread 24 on cpu %d: expected package 1", cpus[24])
	}
}

func TestPlacementNoDuplicates(t *testing.T) {
	for _, m := range []*Machine{X86Server(), Armv8Server()} {
		for _, n := range []int{1, 7, m.NumCPUs()} {
			cpus, err := Placement(m, n)
			if err != nil {
				t.Fatal(err)
			}
			seen := map[int]bool{}
			for _, c := range cpus {
				if c < 0 || c >= m.NumCPUs() || seen[c] {
					t.Fatalf("%s n=%d: bad/duplicate cpu %d", m.Name, n, c)
				}
				seen[c] = true
			}
		}
	}
}

func TestPlacementArmSequential(t *testing.T) {
	m := Armv8Server()
	cpus := MustPlacement(m, 8)
	for i, c := range cpus {
		if c != i {
			t.Fatalf("no-SMT machine must place sequentially: thread %d on cpu %d", i, c)
		}
	}
}

func TestPlacementErrors(t *testing.T) {
	m := X86Server()
	if _, err := Placement(m, 0); err == nil {
		t.Error("accepted 0 threads")
	}
	if _, err := Placement(m, 97); err == nil {
		t.Error("accepted more threads than CPUs")
	}
}
