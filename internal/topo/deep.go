package topo

// Deep topologies: the 256-1024-vCPU, 4-level machines used by the scaling
// experiments (`clof-figures -exp bigmachine`, `make bench-scale`). The
// paper's evaluation stops at 128 CPUs; these machines extrapolate its
// topology shape one generation out — many-die sockets populated with
// big.LITTLE clusters — which is where a compositional lock's level choice
// matters most: four genuinely distinct latency domains (cluster, die,
// socket, system) and a thousand waiters to keep off the global lock.
//
// All three share the cluster/die/socket shape and differ only in socket
// and die count, so cross-size comparisons isolate the effect of scale:
//
//	DeepServer256:  2 sockets x 2 dies x 8 clusters x 8 cores =  256 vCPUs
//	DeepServer512:  2 sockets x 4 dies x 8 clusters x 8 cores =  512 vCPUs
//	DeepServer1024: 4 sockets x 4 dies x 8 clusters x 8 cores = 1024 vCPUs
//
// The clusters are modeled as cache groups (one L3 partition per cluster,
// the Kunpeng/DynamIQ arrangement) with no SMT, so CacheGroup is the lowest
// non-degenerate level and DeepHierarchy uses all four distinct levels:
// cache-group, numa (die), package (socket), system.

// DeepServer256 returns a 256-vCPU deep machine: 2 sockets x 2 dies x
// 8 clusters x 8 cores, Armv8 (LL/SC atomics).
func DeepServer256() *Machine {
	return &Machine{
		Name:           "armv8-deep-256",
		Arch:           ArmV8,
		Packages:       2,
		NUMAPerPackage: 2,
		GroupsPerNUMA:  8,
		CoresPerGroup:  8,
		ThreadsPerCore: 1,
	}
}

// DeepServer512 returns a 512-vCPU deep machine: 2 sockets x 4 dies x
// 8 clusters x 8 cores, Armv8.
func DeepServer512() *Machine {
	return &Machine{
		Name:           "armv8-deep-512",
		Arch:           ArmV8,
		Packages:       2,
		NUMAPerPackage: 4,
		GroupsPerNUMA:  8,
		CoresPerGroup:  8,
		ThreadsPerCore: 1,
	}
}

// DeepServer1024 returns a 1024-vCPU deep machine: 4 sockets x 4 dies x
// 8 clusters x 8 cores, Armv8.
func DeepServer1024() *Machine {
	return &Machine{
		Name:           "armv8-deep-1024",
		Arch:           ArmV8,
		Packages:       4,
		NUMAPerPackage: 4,
		GroupsPerNUMA:  8,
		CoresPerGroup:  8,
		ThreadsPerCore: 1,
	}
}

// DeepServers returns the three deep machines in ascending size, for sweeps.
func DeepServers() []*Machine {
	return []*Machine{DeepServer256(), DeepServer512(), DeepServer1024()}
}

// DeepHierarchy returns the canonical 4-level configuration for a deep
// machine: cache-group (cluster), NUMA (die), package (socket), system.
// It is valid for any machine on which those levels are distinct.
func DeepHierarchy(m *Machine) *Hierarchy {
	return MustHierarchy(m, CacheGroup, NUMA, Package, System)
}

// DeepBigLittleSpeeds returns per-CPU compute-speed factors modeling
// big.LITTLE clusters at scale: within every die, the first half of the
// clusters are "big" (factor 1.0) and the second half "LITTLE" (factor
// littleFactor, > 1 = slower). Unlike BigLittleSpeeds — whose one-big-
// cluster split fits a handheld SoC — this keeps the big/LITTLE ratio and
// their relative placement identical in every die, so per-die behavior is
// homogeneous and differences across dies are attributable to topology.
func DeepBigLittleSpeeds(m *Machine, littleFactor float64) []float64 {
	speeds := make([]float64, m.NumCPUs())
	half := m.GroupsPerNUMA / 2
	for cpu := range speeds {
		groupInDie := m.CohortOf(cpu, CacheGroup) % m.GroupsPerNUMA
		if groupInDie < half || half == 0 {
			speeds[cpu] = 1.0
		} else {
			speeds[cpu] = littleFactor
		}
	}
	return speeds
}
