package topo

import "testing"

// TestDeepServerShapes pins the vCPU counts and 4-distinct-level structure
// of the deep machines.
func TestDeepServerShapes(t *testing.T) {
	want := map[string]int{
		"armv8-deep-256":  256,
		"armv8-deep-512":  512,
		"armv8-deep-1024": 1024,
	}
	ms := DeepServers()
	if len(ms) != 3 {
		t.Fatalf("DeepServers returned %d machines", len(ms))
	}
	for _, m := range ms {
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if got := m.NumCPUs(); got != want[m.Name] {
			t.Errorf("%s: NumCPUs = %d, want %d", m.Name, got, want[m.Name])
		}
		// All four hierarchy levels must be genuinely distinct (different
		// cohort counts), otherwise the "deep" claim is hollow.
		prev := m.Cohorts(CacheGroup)
		for _, l := range []Level{NUMA, Package, System} {
			c := m.Cohorts(l)
			if c >= prev {
				t.Errorf("%s: level %v has %d cohorts, not fewer than %d below it", m.Name, l, c, prev)
			}
			prev = c
		}
		h := DeepHierarchy(m)
		if h.Depth() != 4 {
			t.Errorf("%s: DeepHierarchy depth = %d, want 4", m.Name, h.Depth())
		}
	}
}

// TestDeepShareLevels spot-checks the share-level geometry of the 1024-vCPU
// machine: 8 CPUs per cluster, 64 per die, 256 per socket.
func TestDeepShareLevels(t *testing.T) {
	m := DeepServer1024()
	cases := []struct {
		a, b int
		want Level
	}{
		{0, 0, Core},
		{0, 7, CacheGroup},
		{0, 8, NUMA},
		{0, 63, NUMA},
		{0, 64, Package},
		{0, 255, Package},
		{0, 256, System},
		{512, 1023, System},
		{768, 1023, Package},
	}
	for _, c := range cases {
		if got := m.ShareLevel(c.a, c.b); got != c.want {
			t.Errorf("ShareLevel(%d, %d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestDeepBigLittleSpeeds pins the per-die big/LITTLE split: first half of
// every die's clusters big, second half slow, identically in every die.
func TestDeepBigLittleSpeeds(t *testing.T) {
	m := DeepServer256()
	speeds := DeepBigLittleSpeeds(m, 3.0)
	if len(speeds) != 256 {
		t.Fatalf("got %d speeds for %d CPUs", len(speeds), m.NumCPUs())
	}
	big, little := 0, 0
	for cpu, s := range speeds {
		switch s {
		case 1.0:
			big++
		case 3.0:
			little++
		default:
			t.Fatalf("cpu %d: unexpected speed %v", cpu, s)
		}
	}
	if big != little || big != 128 {
		t.Fatalf("big/LITTLE split %d/%d, want 128/128", big, little)
	}
	// Every die must see the same pattern: cluster 0 big, cluster 7 LITTLE.
	perDie := m.GroupsPerNUMA * m.CoresPerGroup
	for die := 0; die < m.Cohorts(NUMA); die++ {
		base := die * perDie
		if speeds[base] != 1.0 {
			t.Errorf("die %d: first cluster not big", die)
		}
		if speeds[base+perDie-1] != 3.0 {
			t.Errorf("die %d: last cluster not LITTLE", die)
		}
	}
}

// TestDeepPlacement pins that the core-first placement policy covers a deep
// machine: 1024 threads on 1024 cores places every CPU exactly once.
func TestDeepPlacement(t *testing.T) {
	m := DeepServer1024()
	cpus := MustPlacement(m, 1024)
	seen := make([]bool, 1024)
	for _, c := range cpus {
		if seen[c] {
			t.Fatalf("cpu %d placed twice", c)
		}
		seen[c] = true
	}
	// No SMT on the deep machines: the first n threads occupy cpus 0..n-1.
	for i, c := range MustPlacement(m, 100) {
		if c != i {
			t.Fatalf("thread %d placed on cpu %d, want %d", i, c, i)
		}
	}
}
