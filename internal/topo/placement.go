package topo

import "fmt"

// Placement returns the CPUs to pin n benchmark threads to, reproducing the
// paper's pinning policy (§5.1, observable in Fig. 2): physical cores are
// filled sequentially first — cores of one cache group, then the next cache
// group, NUMA node, package — and hyperthread siblings are used only once
// every core already runs one thread. On the paper's x86 server this makes
// 24 threads exactly fill package 0 (one hyperthread per core) and thread
// 49+ start doubling up on cores.
func Placement(m *Machine, n int) ([]int, error) {
	if n <= 0 || n > m.NumCPUs() {
		return nil, fmt.Errorf("topo: placement for %d threads on %d CPUs", n, m.NumCPUs())
	}
	cores := m.NumCPUs() / m.ThreadsPerCore
	cpus := make([]int, n)
	for t := 0; t < n; t++ {
		ht := t / cores
		core := t % cores
		cpus[t] = core*m.ThreadsPerCore + ht
	}
	return cpus, nil
}

// MustPlacement is Placement that panics on error.
func MustPlacement(m *Machine, n int) []int {
	p, err := Placement(m, n)
	if err != nil {
		panic(err)
	}
	return p
}
