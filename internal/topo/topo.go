// Package topo models the multi-level memory hierarchy of a NUMA machine:
// packages, NUMA nodes, L3 cache groups, cores, and hardware threads.
//
// The paper (§3.1) observes that vendors and the OS under-report the real
// hierarchy (lscpu misses L3 cache groups), so CLoF discovers it with a
// microbenchmark. This package provides the vocabulary for that discovery:
// sharing levels, cohorts, hierarchical CPU numbering, and the two reference
// servers from the paper's evaluation.
package topo

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Level identifies a layer of the memory hierarchy, ordered from the most
// local (Core: hyperthread siblings) to the most global (System).
type Level int

// Hierarchy levels, low (most sharing) to high (least sharing).
const (
	// Core groups hardware threads of one physical core (L1/L2 sharing).
	Core Level = iota
	// CacheGroup groups cores sharing an L3 partition (CCX on EPYC,
	// cluster on Kunpeng). Invisible to lscpu; discovered experimentally.
	CacheGroup
	// NUMA groups cache groups sharing a memory bank.
	NUMA
	// Package groups NUMA nodes on one socket.
	Package
	// System is the whole machine.
	System

	numLevels = int(System) + 1
)

var levelNames = [...]string{"core", "cache-group", "numa", "package", "system"}

// String returns the level's lower-case name as used in hierarchy configs.
func (l Level) String() string {
	if l < 0 || int(l) >= numLevels {
		return fmt.Sprintf("level(%d)", int(l))
	}
	return levelNames[l]
}

// ParseLevel converts a level name (as produced by String) back to a Level.
func ParseLevel(s string) (Level, error) {
	for i, n := range levelNames {
		if s == n {
			return Level(i), nil
		}
	}
	return 0, fmt.Errorf("topo: unknown level %q", s)
}

// MarshalJSON encodes the level as its string name.
func (l Level) MarshalJSON() ([]byte, error) { return json.Marshal(l.String()) }

// UnmarshalJSON decodes a level from its string name.
func (l *Level) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := ParseLevel(s)
	if err != nil {
		return err
	}
	*l = v
	return nil
}

// Arch distinguishes the two instruction-set architectures whose coherence
// behavior the paper contrasts (§3.2): x86's MESI/MESIF protocols versus
// Armv8's load-exclusive/store-exclusive atomics.
type Arch int

const (
	// X86 models a TSO machine with MESI/MESIF coherence; read-for-
	// ownership RMWs avoid shared→modified upgrades (the CTR optimization
	// helps).
	X86 Arch = iota
	// ArmV8 models a weakly ordered machine whose RMWs are implemented with
	// load-exclusive/store-exclusive pairs; competing RMWs on one line cause
	// retry storms (the CTR optimization collapses).
	ArmV8
)

// String returns the conventional architecture name.
func (a Arch) String() string {
	if a == X86 {
		return "x86"
	}
	return "armv8"
}

// MarshalJSON encodes the architecture as its string name.
func (a Arch) MarshalJSON() ([]byte, error) { return json.Marshal(a.String()) }

// UnmarshalJSON decodes an architecture from its string name.
func (a *Arch) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	switch strings.ToLower(s) {
	case "x86":
		*a = X86
	case "armv8", "arm":
		*a = ArmV8
	default:
		return fmt.Errorf("topo: unknown arch %q", s)
	}
	return nil
}

// Machine describes a multi-level NUMA machine as a regular tree of
// packages → NUMA nodes → cache groups → cores → hardware threads.
//
// CPUs are numbered hierarchically: CPU ids of one core are contiguous, cores
// of one cache group are contiguous, and so on. (Physical machines often
// interleave hyperthread numbering; the mapping is a relabeling and does not
// affect any experiment.)
type Machine struct {
	// Name identifies the machine in configs and reports.
	Name string `json:"name"`
	// Arch selects the coherence/atomics behavior model.
	Arch Arch `json:"arch"`
	// Packages is the number of sockets.
	Packages int `json:"packages"`
	// NUMAPerPackage is the number of NUMA nodes per socket.
	NUMAPerPackage int `json:"numaPerPackage"`
	// GroupsPerNUMA is the number of L3 cache groups per NUMA node.
	GroupsPerNUMA int `json:"groupsPerNuma"`
	// CoresPerGroup is the number of physical cores per cache group.
	CoresPerGroup int `json:"coresPerGroup"`
	// ThreadsPerCore is the SMT width (1 = no hyperthreading).
	ThreadsPerCore int `json:"threadsPerCore"`
}

// Validate reports an error if any dimension is non-positive.
func (m *Machine) Validate() error {
	for _, d := range []struct {
		name string
		v    int
	}{
		{"packages", m.Packages},
		{"numaPerPackage", m.NUMAPerPackage},
		{"groupsPerNuma", m.GroupsPerNUMA},
		{"coresPerGroup", m.CoresPerGroup},
		{"threadsPerCore", m.ThreadsPerCore},
	} {
		if d.v <= 0 {
			return fmt.Errorf("topo: machine %q: %s must be positive, got %d", m.Name, d.name, d.v)
		}
	}
	return nil
}

// NumCPUs returns the total number of hardware threads.
func (m *Machine) NumCPUs() int {
	return m.Packages * m.NUMAPerPackage * m.GroupsPerNUMA * m.CoresPerGroup * m.ThreadsPerCore
}

// cpusPer returns how many CPUs one cohort at the given level spans.
func (m *Machine) cpusPer(l Level) int {
	n := 1
	switch l {
	case System:
		n = m.NumCPUs()
	case Package:
		n = m.NUMAPerPackage * m.GroupsPerNUMA * m.CoresPerGroup * m.ThreadsPerCore
	case NUMA:
		n = m.GroupsPerNUMA * m.CoresPerGroup * m.ThreadsPerCore
	case CacheGroup:
		n = m.CoresPerGroup * m.ThreadsPerCore
	case Core:
		n = m.ThreadsPerCore
	}
	return n
}

// Cohorts returns the number of distinct cohorts at the given level (e.g.
// the number of NUMA nodes for Level NUMA; always 1 for System).
func (m *Machine) Cohorts(l Level) int { return m.NumCPUs() / m.cpusPer(l) }

// CohortOf returns the index of the cohort containing cpu at the given level.
// Cohort indices are dense in [0, Cohorts(l)).
func (m *Machine) CohortOf(cpu int, l Level) int { return cpu / m.cpusPer(l) }

// CohortCPUs returns the CPU ids belonging to cohort `id` at level l.
func (m *Machine) CohortCPUs(l Level, id int) []int {
	span := m.cpusPer(l)
	cpus := make([]int, span)
	for i := range cpus {
		cpus[i] = id*span + i
	}
	return cpus
}

// ShareLevel returns the most local level at which cpus a and b share a
// cohort: Core for hyperthread siblings, System for CPUs on different
// packages, and so on. ShareLevel(a, a) == Core.
func (m *Machine) ShareLevel(a, b int) Level {
	for l := Core; l < System; l++ {
		if m.CohortOf(a, l) == m.CohortOf(b, l) {
			return l
		}
	}
	return System
}

// X86Server returns the paper's x86 evaluation platform: a dual-socket AMD
// EPYC 7352 (2 packages × 1 NUMA node × 8 cache groups × 3 cores × 2
// hyperthreads = 96 CPUs). Cache groups of 3 cores match the EPYC CCX
// structure observed in Fig. 1a.
func X86Server() *Machine {
	return &Machine{
		Name:           "x86-epyc7352-2s",
		Arch:           X86,
		Packages:       2,
		NUMAPerPackage: 1,
		GroupsPerNUMA:  8,
		CoresPerGroup:  3,
		ThreadsPerCore: 2,
	}
}

// Armv8Server returns the paper's Armv8 evaluation platform: a dual-socket
// Huawei Kunpeng 920-6426 (2 packages × 2 NUMA nodes × 8 cache groups × 4
// cores × 1 thread = 128 CPUs). Cache groups of 4 cores match Fig. 1b.
func Armv8Server() *Machine {
	return &Machine{
		Name:           "armv8-kunpeng920-2s",
		Arch:           ArmV8,
		Packages:       2,
		NUMAPerPackage: 2,
		GroupsPerNUMA:  8,
		CoresPerGroup:  4,
		ThreadsPerCore: 1,
	}
}

// OversubscribedServer models a heavily oversubscribed host: a small
// dual-NUMA x86 machine (1 package × 2 NUMA nodes × 2 cache groups × 2
// cores × 8 SMT contexts = 64 CPUs over 8 physical cores). With the
// paper's core-first Placement, runnable threads outnumber physical cores
// past 8 threads — the regime where unrestricted waiter sets convoy behind
// preempted holders and throughput collapses (Dice & Kogan). Pair it with
// the faultinject "oversubscribed" preset for the figures collapse
// experiment.
func OversubscribedServer() *Machine {
	return &Machine{
		Name:           "x86-oversub-8c64t",
		Arch:           X86,
		Packages:       1,
		NUMAPerPackage: 2,
		GroupsPerNUMA:  2,
		CoresPerGroup:  2,
		ThreadsPerCore: 8,
	}
}

// BigLittleSoC models a handheld-class asymmetric SoC, the paper's §7
// future-work target: one package, one memory, two clusters (cache groups)
// of four cores — cluster 0 the "big" cores, cluster 1 the "LITTLE" cores.
// Which cores are slow is a property of execution speed, not topology; pair
// this machine with BigLittleSpeeds for the simulator.
func BigLittleSoC() *Machine {
	return &Machine{
		Name:           "biglittle-soc",
		Arch:           ArmV8,
		Packages:       1,
		NUMAPerPackage: 1,
		GroupsPerNUMA:  2,
		CoresPerGroup:  4,
		ThreadsPerCore: 1,
	}
}

// BigLittleSpeeds returns per-CPU compute-speed factors for a BigLittleSoC:
// 1.0 for the big cluster (cache group 0) and `littleFactor` (> 1 = slower)
// for every other cluster.
func BigLittleSpeeds(m *Machine, littleFactor float64) []float64 {
	speeds := make([]float64, m.NumCPUs())
	for cpu := range speeds {
		if m.CohortOf(cpu, CacheGroup) == 0 {
			speeds[cpu] = 1.0
		} else {
			speeds[cpu] = littleFactor
		}
	}
	return speeds
}

// Hierarchy is a hierarchy configuration (the tuning point of paper Fig. 5):
// the machine plus the ordered subset of its levels a composed lock should
// exploit, from most local to System. The paper's 4-level x86 configuration
// is [Core, CacheGroup, NUMA, System]; its 4-level Armv8 configuration is
// [CacheGroup, NUMA, Package, System].
type Hierarchy struct {
	Machine *Machine `json:"machine"`
	Levels  []Level  `json:"levels"`
}

// NewHierarchy validates and builds a hierarchy configuration.
func NewHierarchy(m *Machine, levels ...Level) (*Hierarchy, error) {
	h := &Hierarchy{Machine: m, Levels: levels}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return h, nil
}

// MustHierarchy is NewHierarchy that panics on error; for tests and the
// predefined configurations.
func MustHierarchy(m *Machine, levels ...Level) *Hierarchy {
	h, err := NewHierarchy(m, levels...)
	if err != nil {
		panic(err)
	}
	return h
}

// Validate checks that levels are strictly ascending, end at System, and are
// non-trivial on this machine (e.g. a Core level is rejected when
// ThreadsPerCore == 1, since every cohort would hold one CPU).
func (h *Hierarchy) Validate() error {
	if h.Machine == nil {
		return fmt.Errorf("topo: hierarchy has no machine")
	}
	if err := h.Machine.Validate(); err != nil {
		return err
	}
	if len(h.Levels) == 0 {
		return fmt.Errorf("topo: hierarchy has no levels")
	}
	if h.Levels[len(h.Levels)-1] != System {
		return fmt.Errorf("topo: hierarchy must end at the system level, ends at %v", h.Levels[len(h.Levels)-1])
	}
	for i := 1; i < len(h.Levels); i++ {
		if h.Levels[i] <= h.Levels[i-1] {
			return fmt.Errorf("topo: hierarchy levels must be strictly ascending, got %v before %v", h.Levels[i-1], h.Levels[i])
		}
	}
	for _, l := range h.Levels[:len(h.Levels)-1] {
		if h.Machine.Cohorts(l) == h.Machine.Cohorts(nextLevel(h.Machine, l)) {
			// Degenerate level: identical cohorts to the level above make
			// the extra lock pure overhead, but the user may still want it
			// (paper keeps NUMA==Package distinct on x86); allow it.
			continue
		}
	}
	return nil
}

// nextLevel returns the next non-degenerate level above l on machine m.
func nextLevel(m *Machine, l Level) Level {
	if l >= System {
		return System
	}
	return l + 1
}

// Depth returns the number of levels (the ⟨n⟩ in CLoF⟨n⟩/HMCS⟨n⟩ notation).
func (h *Hierarchy) Depth() int { return len(h.Levels) }

// String renders e.g. "x86-epyc7352-2s[core,cache-group,numa,system]".
func (h *Hierarchy) String() string {
	names := make([]string, len(h.Levels))
	for i, l := range h.Levels {
		names[i] = l.String()
	}
	return h.Machine.Name + "[" + strings.Join(names, ",") + "]"
}

// hierarchyJSON mirrors Hierarchy without its TextMarshaler methods, so the
// (Un)MarshalText implementations below can delegate to encoding/json
// without recursing into themselves.
type hierarchyJSON struct {
	Machine *Machine `json:"machine"`
	Levels  []Level  `json:"levels"`
}

// MarshalText serializes the hierarchy configuration as JSON (the on-disk
// "hierarchy configuration" file of paper Fig. 5).
func (h *Hierarchy) MarshalText() ([]byte, error) {
	return json.MarshalIndent(hierarchyJSON{Machine: h.Machine, Levels: h.Levels}, "", "  ")
}

// UnmarshalText parses a hierarchy configuration produced by MarshalText.
func (h *Hierarchy) UnmarshalText(b []byte) error {
	var j hierarchyJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	h.Machine, h.Levels = j.Machine, j.Levels
	return h.Validate()
}

// X86Hierarchy4 is the paper's 4-level x86 configuration (§5.2.1): core,
// cache group, NUMA node, system — the package level is skipped because the
// EPYC 7352 has one NUMA node per package.
func X86Hierarchy4() *Hierarchy {
	return MustHierarchy(X86Server(), Core, CacheGroup, NUMA, System)
}

// X86Hierarchy3 is the paper's 3-level x86 configuration: cache group, NUMA
// node, system — the core level is skipped (many applications disable SMT).
func X86Hierarchy3() *Hierarchy {
	return MustHierarchy(X86Server(), CacheGroup, NUMA, System)
}

// ArmHierarchy4 is the paper's 4-level Armv8 configuration: cache group,
// NUMA node, package, system — no core level (no SMT on Kunpeng 920).
func ArmHierarchy4() *Hierarchy {
	return MustHierarchy(Armv8Server(), CacheGroup, NUMA, Package, System)
}

// ArmHierarchy3 is the paper's 3-level Armv8 configuration: cache group,
// NUMA node, system — the package level is skipped because the
// package/system latency difference is thin (Table 2).
func ArmHierarchy3() *Hierarchy {
	return MustHierarchy(Armv8Server(), CacheGroup, NUMA, System)
}
