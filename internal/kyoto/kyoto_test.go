package kyoto

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
)

var p0 = lockapi.NewNativeProc(0)

func TestSetGetRemove(t *testing.T) {
	db := Open(Options{})
	s := db.NewSession()
	if _, ok := s.Get(p0, "a"); ok {
		t.Fatal("empty DB returned a value")
	}
	s.Set(p0, "a", []byte("1"))
	s.Set(p0, "b", []byte("2"))
	if v, ok := s.Get(p0, "a"); !ok || string(v) != "1" {
		t.Fatalf("Get(a) = %q,%v", v, ok)
	}
	s.Set(p0, "a", []byte("one"))
	if v, _ := s.Get(p0, "a"); string(v) != "one" {
		t.Fatalf("overwrite failed: %q", v)
	}
	if db.Count() != 2 {
		t.Errorf("Count = %d, want 2", db.Count())
	}
	if !s.Remove(p0, "a") {
		t.Error("Remove(a) = false")
	}
	if s.Remove(p0, "a") {
		t.Error("second Remove(a) = true")
	}
	if _, ok := s.Get(p0, "a"); ok {
		t.Error("removed key still present")
	}
	if db.Count() != 1 {
		t.Errorf("Count = %d, want 1", db.Count())
	}
}

func TestCollisionChains(t *testing.T) {
	// One bucket forces every key onto a single chain.
	db := Open(Options{Buckets: 1})
	s := db.NewSession()
	for i := 0; i < 100; i++ {
		s.Set(p0, fmt.Sprint(i), []byte{byte(i)})
	}
	for i := 0; i < 100; i++ {
		v, ok := s.Get(p0, fmt.Sprint(i))
		if !ok || v[0] != byte(i) {
			t.Fatalf("chained key %d = %v,%v", i, v, ok)
		}
	}
	for i := 0; i < 100; i += 2 {
		if !s.Remove(p0, fmt.Sprint(i)) {
			t.Fatalf("Remove(%d) failed", i)
		}
	}
	for i := 0; i < 100; i++ {
		_, ok := s.Get(p0, fmt.Sprint(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("after removals key %d present=%v want %v", i, ok, want)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	db := Open(Options{Capacity: 3})
	s := db.NewSession()
	s.Set(p0, "a", nil)
	s.Set(p0, "b", nil)
	s.Set(p0, "c", nil)
	s.Get(p0, "a") // refresh a; b is now LRU
	s.Set(p0, "d", nil)
	if _, ok := s.Get(p0, "b"); ok {
		t.Error("LRU victim b survived")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := s.Get(p0, k); !ok {
			t.Errorf("key %s wrongly evicted", k)
		}
	}
	if st := s.StatsSnapshot(p0); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if db.Count() != 3 {
		t.Errorf("Count = %d, want capacity 3", db.Count())
	}
}

// TestOracle: random operation sequences match a map oracle (no capacity).
func TestOracle(t *testing.T) {
	f := func(ops []uint16) bool {
		db := Open(Options{Buckets: 8})
		s := db.NewSession()
		oracle := map[string]string{}
		for i, op := range ops {
			k := fmt.Sprint(op % 23)
			switch op % 3 {
			case 0:
				v := fmt.Sprint(i)
				s.Set(p0, k, []byte(v))
				oracle[k] = v
			case 1:
				got, ok := s.Get(p0, k)
				want, wok := oracle[k]
				if ok != wok || (ok && string(got) != want) {
					return false
				}
			case 2:
				if s.Remove(p0, k) != (func() bool { _, ok := oracle[k]; return ok })() {
					return false
				}
				delete(oracle, k)
			}
		}
		return len(oracle) == db.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAccessWithLocks(t *testing.T) {
	for _, name := range []string{"tkt", "mcs"} {
		name := name
		t.Run(name, func(t *testing.T) {
			db := Open(Options{Lock: locks.MustType(name).New(), Capacity: 500})
			const workers = 8
			sessions := make([]*Session, workers)
			for i := range sessions {
				sessions[i] = db.NewSession()
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					p := lockapi.NewNativeProc(id)
					for i := 0; i < 2000; i++ {
						k := fmt.Sprint((id*31 + i) % 400)
						switch i % 4 {
						case 0:
							sessions[id].Set(p, k, []byte(k))
						case 3:
							sessions[id].Remove(p, k)
						default:
							sessions[id].Get(p, k)
						}
					}
				}(w)
			}
			wg.Wait()
			if db.Count() > 500 {
				t.Errorf("capacity exceeded: %d", db.Count())
			}
			// Structural integrity: every chained record reachable and LRU
			// list consistent with count.
			n := 0
			for cur := db.lruHead; cur != nil; cur = cur.lruNext {
				n++
				if n > db.Count()+1 {
					t.Fatal("LRU list longer than count (cycle?)")
				}
			}
			if n != db.Count() {
				t.Errorf("LRU list has %d records, count says %d", n, db.Count())
			}
		})
	}
}

func TestNativeBench(t *testing.T) {
	db := Open(Options{Lock: locks.NewMCS(), Capacity: 1000})
	res := Bench(db, BenchOptions{Keys: 500, Threads: 2, Duration: 50 * time.Millisecond})
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if res.ThroughputOpsPerUs() <= 0 {
		t.Fatal("throughput not positive")
	}
	if db.Count() > 1000 {
		t.Fatalf("capacity exceeded during bench: %d", db.Count())
	}
	st := db.NewSession().StatsSnapshot(p0)
	if st.Gets == 0 || st.Sets == 0 {
		t.Errorf("mixed workload missing op kinds: gets=%d sets=%d removes=%d", st.Gets, st.Sets, st.Removes)
	}
}
