// Package kyoto is a miniature Kyoto-Cabinet-flavored cache database: an
// in-memory hash table with separate chaining, LRU eviction at a record
// capacity, and one global lock around every operation — the structure that
// makes the real Kyoto Cabinet a popular lock benchmark (its CacheDB
// serializes operations on a global rwlock). It is the repository's native
// substitute for the paper's cross-validation benchmark (DESIGN.md §1).
package kyoto

import (
	"sync/atomic"

	"github.com/clof-go/clof/internal/lockapi"
)

// Options configures a CacheDB.
type Options struct {
	// Lock guards every operation. Nil defaults to a no-op lock.
	Lock lockapi.Lock
	// Buckets is the hash bucket count (default 1024).
	Buckets int
	// Capacity bounds the record count; 0 means unbounded. At capacity the
	// least recently used record is evicted.
	Capacity int
}

// record is a chained hash entry that is also an LRU list node.
type record struct {
	key        string
	value      []byte
	hashNext   *record
	lruPrev    *record
	lruNext    *record
	bucketSlot int
}

// CacheDB is the hash-table store.
type CacheDB struct {
	opts    Options
	lock    lockapi.Lock
	buckets []*record
	count   atomic.Int64
	// LRU list: head = most recent, tail = eviction candidate.
	lruHead, lruTail *record

	// Operation counters, atomic for the same reason as kvstore.DB's: the
	// sharded store snapshots them per shard under that shard's lock, and
	// Count stays readable from any thread without a quiescence argument.
	gets, sets, removes, evictions atomic.Uint64
}

// Open creates an empty CacheDB.
func Open(opts Options) *CacheDB {
	if opts.Buckets == 0 {
		opts.Buckets = 1024
	}
	lock := opts.Lock
	if lock == nil {
		lock = lockapi.Noop{}
	}
	return &CacheDB{opts: opts, lock: lock, buckets: make([]*record, opts.Buckets)}
}

// Session is a per-worker handle carrying the lock context.
type Session struct {
	db  *CacheDB
	ctx lockapi.Ctx
}

// NewSession allocates a worker session (single-threaded setup only).
func (db *CacheDB) NewSession() *Session {
	return &Session{db: db, ctx: db.lock.NewCtx()}
}

// fnv1a hashes a key.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Set inserts or overwrites a record.
func (s *Session) Set(p lockapi.Proc, key string, value []byte) {
	db := s.db
	db.lock.Acquire(p, s.ctx)
	db.sets.Add(1)
	slot := int(fnv1a(key) % uint64(len(db.buckets)))
	if r := db.findLocked(slot, key); r != nil {
		r.value = value
		db.touchLocked(r)
	} else {
		r := &record{key: key, value: value, bucketSlot: slot, hashNext: db.buckets[slot]}
		db.buckets[slot] = r
		db.count.Add(1)
		db.lruPushFrontLocked(r)
		if db.opts.Capacity > 0 && db.count.Load() > int64(db.opts.Capacity) {
			db.evictLocked()
		}
	}
	db.lock.Release(p, s.ctx)
}

// Get fetches a record and refreshes its recency.
func (s *Session) Get(p lockapi.Proc, key string) ([]byte, bool) {
	db := s.db
	db.lock.Acquire(p, s.ctx)
	db.gets.Add(1)
	var v []byte
	var ok bool
	slot := int(fnv1a(key) % uint64(len(db.buckets)))
	if r := db.findLocked(slot, key); r != nil {
		v, ok = r.value, true
		db.touchLocked(r)
	}
	db.lock.Release(p, s.ctx)
	return v, ok
}

// Remove deletes a record; it reports whether the key existed.
func (s *Session) Remove(p lockapi.Proc, key string) bool {
	db := s.db
	db.lock.Acquire(p, s.ctx)
	db.removes.Add(1)
	slot := int(fnv1a(key) % uint64(len(db.buckets)))
	ok := db.unlinkLocked(slot, key)
	db.lock.Release(p, s.ctx)
	return ok
}

// Count returns the record count. The load is atomic, so it is safe from any
// thread; it is a point sample, not a cut consistent with in-flight sessions
// (use StatsSnapshot for that).
func (db *CacheDB) Count() int { return int(db.count.Load()) }

// Stats is a point-in-time snapshot of one CacheDB's operation counters.
type Stats struct {
	// Gets / Sets / Removes count completed operations.
	Gets, Sets, Removes uint64
	// Evictions counts LRU capacity evictions.
	Evictions uint64
	// Count is the live record count at snapshot time.
	Count int
}

// Add accumulates other into s (aggregating per-shard snapshots).
func (s *Stats) Add(other Stats) {
	s.Gets += other.Gets
	s.Sets += other.Sets
	s.Removes += other.Removes
	s.Evictions += other.Evictions
	s.Count += other.Count
}

// StatsSnapshot returns the CacheDB's counters under the lock: the snapshot
// is a consistent cut even while other sessions are live, so phase drivers
// need no quiescence argument (this replaced the unlocked Stats readers and
// their lint waivers).
func (s *Session) StatsSnapshot(p lockapi.Proc) Stats {
	db := s.db
	db.lock.Acquire(p, s.ctx)
	st := Stats{
		Gets:      db.gets.Load(),
		Sets:      db.sets.Load(),
		Removes:   db.removes.Load(),
		Evictions: db.evictions.Load(),
		Count:     int(db.count.Load()),
	}
	db.lock.Release(p, s.ctx)
	return st
}

func (db *CacheDB) findLocked(slot int, key string) *record {
	for r := db.buckets[slot]; r != nil; r = r.hashNext {
		if r.key == key {
			return r
		}
	}
	return nil
}

func (db *CacheDB) unlinkLocked(slot int, key string) bool {
	var prev *record
	for r := db.buckets[slot]; r != nil; prev, r = r, r.hashNext {
		if r.key != key {
			continue
		}
		if prev == nil {
			db.buckets[slot] = r.hashNext
		} else {
			prev.hashNext = r.hashNext
		}
		db.lruUnlinkLocked(r)
		db.count.Add(-1)
		return true
	}
	return false
}

func (db *CacheDB) lruPushFrontLocked(r *record) {
	r.lruPrev = nil
	r.lruNext = db.lruHead
	if db.lruHead != nil {
		db.lruHead.lruPrev = r
	}
	db.lruHead = r
	if db.lruTail == nil {
		db.lruTail = r
	}
}

func (db *CacheDB) lruUnlinkLocked(r *record) {
	if r.lruPrev != nil {
		r.lruPrev.lruNext = r.lruNext
	} else {
		db.lruHead = r.lruNext
	}
	if r.lruNext != nil {
		r.lruNext.lruPrev = r.lruPrev
	} else {
		db.lruTail = r.lruPrev
	}
	r.lruPrev, r.lruNext = nil, nil
}

func (db *CacheDB) touchLocked(r *record) {
	if db.lruHead == r {
		return
	}
	db.lruUnlinkLocked(r)
	db.lruPushFrontLocked(r)
}

func (db *CacheDB) evictLocked() {
	victim := db.lruTail
	if victim == nil {
		return
	}
	db.unlinkLocked(victim.bucketSlot, victim.key)
	db.evictions.Add(1)
}
