package kyoto

import (
	"fmt"
	"sync"
	"time"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/xrand"
)

// BenchOptions configures the native Kyoto-style benchmark: a mixed
// get/set/remove workload over a bounded cache, the pattern the paper's
// Kyoto Cabinet cross-validation exercises (§5.1.2).
type BenchOptions struct {
	// Keys is the key-space size (default 4096).
	Keys int
	// Threads is the number of worker goroutines.
	Threads int
	// Duration bounds the run in wall-clock time.
	Duration time.Duration
	// WritePercent is the share of mutating operations (default 20).
	WritePercent int
	// Seed seeds per-worker op streams.
	Seed uint64
}

// BenchResult reports the benchmark outcome.
type BenchResult struct {
	Ops       uint64
	PerThread []uint64
	Elapsed   time.Duration
}

// ThroughputOpsPerUs returns operations per microsecond of wall time.
func (r BenchResult) ThroughputOpsPerUs() float64 {
	us := float64(r.Elapsed.Microseconds())
	if us == 0 {
		return 0
	}
	return float64(r.Ops) / us
}

// Bench runs the native mixed workload against db.
func Bench(db *CacheDB, o BenchOptions) BenchResult {
	if o.Keys == 0 {
		o.Keys = 4096
	}
	if o.Threads == 0 {
		o.Threads = 1
	}
	if o.Duration == 0 {
		o.Duration = 100 * time.Millisecond
	}
	if o.WritePercent == 0 {
		o.WritePercent = 20
	}
	sessions := make([]*Session, o.Threads)
	for i := range sessions {
		sessions[i] = db.NewSession()
	}
	res := BenchResult{PerThread: make([]uint64, o.Threads)}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < o.Threads; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := lockapi.NewNativeProc(id)
			rng := xrand.New(o.Seed + uint64(id)*104729)
			val := []byte("value-payload-0123456789")
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprint(rng.Intn(o.Keys))
				switch {
				case rng.Intn(100) < o.WritePercent:
					if rng.Intn(8) == 0 {
						sessions[id].Remove(p, k)
					} else {
						sessions[id].Set(p, k, val)
					}
				default:
					sessions[id].Get(p, k)
				}
				res.PerThread[id]++
			}
		}(w)
	}
	time.Sleep(o.Duration)
	close(stop)
	wg.Wait()
	res.Elapsed = time.Since(start)
	for _, c := range res.PerThread {
		res.Ops += c
	}
	return res
}
