// Package locktest provides shared test harnesses for exercising locks
// natively (goroutines, race detector) and on the NUMA simulator (through
// internal/workload), used by the test suites of every lock package. It also
// hosts the robustness harness: fault-plan-driven runs (SimConfig.Faults,
// ChaosNative) and the starvation/livelock watchdog.
//
// # Determinism contract
//
// Simulator runs (SimRun) are fully deterministic: every source of
// randomness — operation jitter, per-thread start offsets, think-time
// spread, and fault-plan timing — derives from the single SimConfig.Seed.
// Two SimRun calls with equal SimConfig and the same lock constructor
// produce equal SimResult values field for field, which is what the chaos
// CLI's byte-identical-CSV guarantee builds on. Mutating any SimConfig
// field, including attaching a fault plan, changes only the derived streams
// it must (a nil Faults plan draws nothing extra).
//
// Native runs (NativeStress, ChaosNative) are NOT deterministic and cannot
// be: goroutine interleaving belongs to the OS scheduler. The seed still
// fixes the fault *schedule* (which iterations of which worker are stalled,
// preempted, or abandoned — pre-drawn per worker before the goroutines
// start), so a native chaos failure reproduces with the same seed as often
// as the underlying thread interleaving does. Native harnesses verify
// safety (mutual exclusion, via the race detector and the counter check)
// and liveness (the watchdog); they do not verify timing.
package locktest

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/clof-go/clof/internal/faultinject"
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/topo"
	"github.com/clof-go/clof/internal/workload"
)

// NativeStress drives `workers` goroutines through `iters` critical sections
// each, incrementing an unprotected counter; lost updates (or -race reports)
// indicate a mutual-exclusion violation. Worker IDs are mapped to CPUs of
// the machine with the paper's placement policy so NUMA-aware locks resolve
// their cohorts.
//
// The final counter read is synchronized: every worker's last increment
// happens-before its wg.Done, and wg.Wait happens-before the read, so the
// check itself is race-free; it is the increments *between* workers that
// only the lock under test orders (that is the point of the harness — if
// the lock is broken, -race flags the counter and the total comes up short).
func NativeStress(t testing.TB, l lockapi.Lock, mach *topo.Machine, workers, iters int) {
	t.Helper()
	cpus := topo.MustPlacement(mach, workers)
	ctxs := make([]lockapi.Ctx, workers)
	for i := range ctxs {
		ctxs[i] = l.NewCtx()
	}
	var counter int
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := lockapi.NewNativeProc(cpus[id])
			for i := 0; i < iters; i++ {
				l.Acquire(p, ctxs[id])
				counter++
				l.Release(p, ctxs[id])
			}
		}(w)
	}
	wg.Wait()
	if counter != workers*iters {
		t.Errorf("counter = %d, want %d (mutual exclusion violated)", counter, workers*iters)
	}
}

// SimConfig parameterizes a simulated contention run (see workload.Config).
type SimConfig struct {
	Machine         *topo.Machine
	Threads         int
	Horizon         int64
	CSWork, NCSWork int64
	DataCells       int
	Seed            uint64
	JitterNS        int64
	// Faults optionally runs the workload under a fault plan; its schedule
	// derives from Seed (see the package determinism contract).
	Faults *faultinject.Plan
}

// SimResult is workload.Result under its historical test-facing name.
type SimResult = workload.Result

// SimRun runs the canonical lock benchmark loop on the simulator and fails
// the test on deadlock or mutual-exclusion violation.
func SimRun(t testing.TB, mk func() lockapi.Lock, cfg SimConfig) SimResult {
	t.Helper()
	res, err := workload.Run(workload.LockFactory(mk), workload.Config{
		Machine:   cfg.Machine,
		Threads:   cfg.Threads,
		Horizon:   cfg.Horizon,
		CSWork:    cfg.CSWork,
		NCSWork:   cfg.NCSWork,
		DataCells: cfg.DataCells,
		Seed:      cfg.Seed,
		JitterNS:  cfg.JitterNS,
		Faults:    cfg.Faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExclusionViolations > 0 {
		t.Errorf("mutual exclusion violated %d times", res.ExclusionViolations)
	}
	return res
}

// Watchdog asserts liveness properties of a simulated run. The zero value
// checks nothing; set the fields you want gated.
type Watchdog struct {
	// MaxHandoverGapNS fails the check if the longest gap between
	// consecutive acquisitions exceeds this bound (0 = no bound). Under
	// fault plans, size it from the injected preemption length — a fair
	// lock's gap should be the preemption plus a handover, not a multiple.
	MaxHandoverGapNS int64
	// MinShare fails the check if any thread completed fewer than this
	// fraction of the mean per-thread iterations (0 = no bound). 0.05 is
	// the paper-default anti-starvation gate.
	MinShare float64
}

// Check applies the watchdog to a result, returning a description of the
// first violation or "" when the run is live.
func (w Watchdog) Check(res SimResult) string {
	if w.MaxHandoverGapNS > 0 && res.MaxHandoverGapNS > w.MaxHandoverGapNS {
		return fmt.Sprintf("max handover gap %dns exceeds bound %dns", res.MaxHandoverGapNS, w.MaxHandoverGapNS)
	}
	if w.MinShare > 0 {
		if starved := res.Starved(w.MinShare); len(starved) != 0 {
			return fmt.Sprintf("threads %v below %.0f%% of mean progress (per-thread %v)", starved, w.MinShare*100, res.PerThread)
		}
	}
	return ""
}

// Require fails t if the watchdog finds a violation.
func (w Watchdog) Require(t testing.TB, res SimResult) {
	t.Helper()
	if msg := w.Check(res); msg != "" {
		t.Error("watchdog: " + msg)
	}
}

// ChaosStats summarizes a ChaosNative run.
type ChaosStats struct {
	// Completed is the total number of critical sections entered.
	Completed uint64
	// Abandoned counts bounded acquires that gave up.
	Abandoned uint64
	// Preemptions / Stalls count injected sleeps (in and out of the lock).
	Preemptions uint64
	Stalls      uint64
}

// nativeStallTimeout is how long ChaosNative's watchdog tolerates zero
// global progress before declaring a livelock/deadlock. Generous: the race
// detector and CI machines are slow, and injected sleeps park real workers.
const nativeStallTimeout = 10 * time.Second

// ChaosNative is NativeStress under a fault plan: injected sleeps stand in
// for preemptions and stalls, Abandon decisions use the lock's TryAcquire
// (skipped when the lock declines the capability), and a watchdog goroutine
// monitors per-worker progress counters, failing the test if global
// progress halts for nativeStallTimeout. The fault schedule is pre-drawn
// per worker from seed before any goroutine starts (see the package
// determinism contract).
func ChaosNative(t testing.TB, l lockapi.Lock, mach *topo.Machine, plan *faultinject.Plan, workers, iters int, seed uint64) ChaosStats {
	t.Helper()
	cpus := topo.MustPlacement(mach, workers)
	ctxs := make([]lockapi.Ctx, workers)
	for i := range ctxs {
		ctxs[i] = l.NewCtx()
	}
	// Pre-draw each worker's decision sequence: Schedule is single-stream
	// state, but its per-CPU decisions are independent, so a sequential
	// drain here equals any interleaved drain.
	sched := faultinject.Compile(plan, seed, cpus)
	decisions := make([][]faultinject.Decision, workers)
	for w := 0; w < workers; w++ {
		decisions[w] = make([]faultinject.Decision, iters)
		for i := 0; i < iters; i++ {
			decisions[w][i] = sched.Next(cpus[w])
		}
	}
	canTry := lockapi.SupportsTry(l)

	var counter uint64 // lock-protected; the mutual-exclusion oracle
	var stats ChaosStats
	progress := make([]uint64, workers) // atomic per-worker counters
	var abandoned, preempts, stalls uint64

	done := make(chan struct{})
	watchErr := make(chan string, 1)
	go func() {
		// Liveness watchdog: global progress must never stop while workers
		// remain. Per-worker counters let the failure name the stuck ones.
		lastTotal := uint64(0)
		lastChange := time.Now()
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				var total uint64
				for w := range progress {
					total += atomic.LoadUint64(&progress[w])
				}
				if total != lastTotal {
					lastTotal, lastChange = total, time.Now()
					continue
				}
				if time.Since(lastChange) > nativeStallTimeout {
					stuck := []int{}
					for w := range progress {
						if atomic.LoadUint64(&progress[w]) < uint64(iters) {
							stuck = append(stuck, w)
						}
					}
					select {
					case watchErr <- fmt.Sprintf("no progress for %v; stuck workers %v", nativeStallTimeout, stuck):
					default:
					}
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := lockapi.NewNativeProc(cpus[id])
			for i := 0; i < iters; i++ {
				d := decisions[id][i]
				if d.PreStall > 0 {
					atomic.AddUint64(&stalls, 1)
					time.Sleep(time.Duration(d.PreStall) * time.Nanosecond)
				}
				entered := false
				if d.Abandon && canTry {
					_, acquired := lockapi.AcquireBounded(l, p, ctxs[id], d.AbandonAttempts, nil)
					if acquired {
						entered = true
					} else {
						atomic.AddUint64(&abandoned, 1)
					}
				} else {
					l.Acquire(p, ctxs[id])
					entered = true
				}
				if entered {
					counter++
					if d.CSJitter > 0 || d.MidCS > 0 {
						if d.MidCS > 0 {
							atomic.AddUint64(&preempts, 1)
						}
						// Sleeping with the lock held: the injected
						// lock-holder preemption.
						time.Sleep(time.Duration(d.CSJitter+d.MidCS) * time.Nanosecond)
					}
					l.Release(p, ctxs[id])
				}
				atomic.AddUint64(&progress[id], 1)
			}
		}(w)
	}
	wg.Wait()
	close(done)
	select {
	case msg := <-watchErr:
		t.Error("chaos watchdog: " + msg)
	default:
	}

	stats.Completed = counter
	stats.Abandoned = atomic.LoadUint64(&abandoned)
	stats.Preemptions = atomic.LoadUint64(&preempts)
	stats.Stalls = atomic.LoadUint64(&stalls)
	if want := uint64(workers*iters) - stats.Abandoned; counter != want {
		t.Errorf("counter = %d, want %d (%d×%d - %d abandoned): mutual exclusion violated",
			counter, want, workers, iters, stats.Abandoned)
	}
	return stats
}
