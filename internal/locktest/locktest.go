// Package locktest provides shared test harnesses for exercising locks
// natively (goroutines, race detector) and on the NUMA simulator (through
// internal/workload), used by the test suites of every lock package.
package locktest

import (
	"sync"
	"testing"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/topo"
	"github.com/clof-go/clof/internal/workload"
)

// NativeStress drives `workers` goroutines through `iters` critical sections
// each, incrementing an unprotected counter; lost updates (or -race reports)
// indicate a mutual-exclusion violation. Worker IDs are mapped to CPUs of
// the machine with the paper's placement policy so NUMA-aware locks resolve
// their cohorts.
func NativeStress(t testing.TB, l lockapi.Lock, mach *topo.Machine, workers, iters int) {
	t.Helper()
	cpus := topo.MustPlacement(mach, workers)
	ctxs := make([]lockapi.Ctx, workers)
	for i := range ctxs {
		ctxs[i] = l.NewCtx()
	}
	var counter int
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := lockapi.NewNativeProc(cpus[id])
			for i := 0; i < iters; i++ {
				l.Acquire(p, ctxs[id])
				counter++
				l.Release(p, ctxs[id])
			}
		}(w)
	}
	wg.Wait()
	if counter != workers*iters {
		t.Errorf("counter = %d, want %d (mutual exclusion violated)", counter, workers*iters)
	}
}

// SimConfig parameterizes a simulated contention run (see workload.Config).
type SimConfig struct {
	Machine         *topo.Machine
	Threads         int
	Horizon         int64
	CSWork, NCSWork int64
	DataCells       int
	Seed            uint64
	JitterNS        int64
}

// SimResult is workload.Result under its historical test-facing name.
type SimResult = workload.Result

// SimRun runs the canonical lock benchmark loop on the simulator and fails
// the test on deadlock or mutual-exclusion violation.
func SimRun(t testing.TB, mk func() lockapi.Lock, cfg SimConfig) SimResult {
	t.Helper()
	res, err := workload.Run(workload.LockFactory(mk), workload.Config{
		Machine:   cfg.Machine,
		Threads:   cfg.Threads,
		Horizon:   cfg.Horizon,
		CSWork:    cfg.CSWork,
		NCSWork:   cfg.NCSWork,
		DataCells: cfg.DataCells,
		Seed:      cfg.Seed,
		JitterNS:  cfg.JitterNS,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExclusionViolations > 0 {
		t.Errorf("mutual exclusion violated %d times", res.ExclusionViolations)
	}
	return res
}
