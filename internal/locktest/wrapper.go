package locktest

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/topo"
)

// edgeCounter is the balance oracle for observer pass-through: every
// acquire-start must be matched by exactly one acquired and one released
// edge. Counters are atomic because conformance runs attach it while a
// second thread contends.
type edgeCounter struct {
	start, acquired, released uint64
}

func (e *edgeCounter) AcquireStart(lockapi.Proc) { atomic.AddUint64(&e.start, 1) }
func (e *edgeCounter) Acquired(lockapi.Proc)     { atomic.AddUint64(&e.acquired, 1) }
func (e *edgeCounter) Released(lockapi.Proc)     { atomic.AddUint64(&e.released, 1) }

func (e *edgeCounter) counts() (s, a, r uint64) {
	return atomic.LoadUint64(&e.start), atomic.LoadUint64(&e.acquired), atomic.LoadUint64(&e.released)
}

// WrapperConformance verifies that a combinator (a lock wrapping another
// lock — cr.Restrict, an instrumentation shim, a future adapter) forwards
// the optional capability surface of the lock it wraps instead of silently
// narrowing it. base must be a fresh instance of the same type and
// configuration as the lock inside wrapped; both must be unheld.
//
// Checked contracts:
//
//   - trylock capability equality: lockapi.SupportsTry answers the same for
//     wrapped and base — a wrapper may neither invent a try path its inner
//     lock cannot roll back, nor hide one it has;
//   - try behavior (when supported): uncontended success, failure while held
//     from a near and a far CPU, and no residual state after failures;
//   - fairness monotonicity: a wrapper must not declare Fair over an unfair
//     inner lock (the converse is allowed — wrappers may forfeit fairness);
//   - waiter detection: if base detects waiters (lockapi.WaiterDetector),
//     wrapped must too, report none on an uncontended hold, and detect a
//     real parked waiter;
//   - reader-path forwarding: if base serves shared acquisitions
//     (lockapi.RWLocker), wrapped must too, two shared holders must coexist
//     without blocking, and shared acquisitions must emit no observer edges
//     (the obs layer's handover reconstruction assumes mutual exclusion);
//     if base serves optimistic reads (lockapi.SeqReader), wrapped must
//     too, an unheld read must sample even and validate, and a write cycle
//     must invalidate an earlier sample (the version bump is forwarded);
//   - observer pass-through: wrapped must implement lockapi.Instrumented,
//     and its edge stream must stay balanced (starts == acquireds ==
//     releaseds) across blocking cycles, successful tries, and failed tries
//     (a failed try emits nothing).
func WrapperConformance(t testing.TB, mach *topo.Machine, wrapped, base lockapi.Lock) {
	t.Helper()

	if got, want := lockapi.SupportsTry(wrapped), lockapi.SupportsTry(base); got != want {
		t.Errorf("SupportsTry(wrapped) = %v, want %v (capability not forwarded)", got, want)
	}
	if lockapi.Fair(wrapped) && !lockapi.Fair(base) {
		t.Error("wrapper declares Fair over an unfair inner lock")
	}
	// Waiter detection is checked against base's usable capability
	// (lockapi.DetectsWaiters, not a bare type assertion): a delegating
	// wrapper keeps the HasWaiters method even when the lock at the bottom of
	// the stack cannot detect, and calling it there would panic. The
	// presence check and the behavioral exercise below both key on the
	// DetectsWaiters answer.
	baseDetects := lockapi.DetectsWaiters(base)
	if baseDetects && !lockapi.DetectsWaiters(wrapped) {
		t.Error("inner lock detects waiters but the wrapper dropped the capability (lockapi.DetectsWaiters)")
	}

	in, ok := wrapped.(lockapi.Instrumented)
	if !ok {
		t.Fatal("wrapper does not implement lockapi.Instrumented")
	}
	edges := &edgeCounter{}
	in.Instrument(edges)
	defer in.Instrument(nil)

	// Blocking cycles keep the edge stream balanced.
	const cycles = 16
	p0 := lockapi.NewNativeProc(0)
	c0 := wrapped.NewCtx()
	for i := 0; i < cycles; i++ {
		wrapped.Acquire(p0, c0)
		wrapped.Release(p0, c0)
	}
	if s, a, r := edges.counts(); s != cycles || a != cycles || r != cycles {
		t.Errorf("edge counts after %d blocking cycles = (%d,%d,%d), want balanced", cycles, s, a, r)
	}

	// Reader-path forwarding: shared acquisitions (RWLocker) and optimistic
	// reads (SeqReader) must survive the wrapper.
	if _, ok := base.(lockapi.RWLocker); ok {
		rw, ok := wrapped.(lockapi.RWLocker)
		if !ok {
			t.Error("inner lock serves shared acquisitions but the wrapper dropped lockapi.RWLocker")
		} else {
			s0, a0, r0 := edges.counts()
			pb := lockapi.NewNativeProc(1)
			ca, cb := wrapped.NewCtx(), wrapped.NewCtx()
			// Two shared holders coexist: if the wrapper routed shared
			// acquisitions to the exclusive path this would deadlock.
			rw.AcquireShared(p0, ca)
			rw.AcquireShared(pb, cb)
			rw.ReleaseShared(pb, cb)
			rw.ReleaseShared(p0, ca)
			if s, a, r := edges.counts(); s != s0 || a != a0 || r != r0 {
				t.Errorf("shared acquisitions emitted observer edges (+%d,+%d,+%d); the obs layer assumes exclusive-only edges",
					s-s0, a-a0, r-r0)
			}
			// The exclusive path still works after shared traffic.
			wrapped.Acquire(p0, ca)
			wrapped.Release(p0, ca)
		}
	}
	if _, ok := base.(lockapi.SeqReader); ok {
		sq, ok := wrapped.(lockapi.SeqReader)
		if !ok {
			t.Error("inner lock serves optimistic reads but the wrapper dropped lockapi.SeqReader")
		} else {
			s := sq.ReadSeq(p0)
			if s&1 != 0 {
				t.Errorf("ReadSeq sampled odd version %d on an unheld lock", s)
			}
			if !sq.ReadValidate(p0, s) {
				t.Error("ReadValidate failed with no intervening writer")
			}
			cs := wrapped.NewCtx()
			wrapped.Acquire(p0, cs)
			wrapped.Release(p0, cs)
			if sq.ReadValidate(p0, s) {
				t.Error("ReadValidate passed across a write cycle: the version bump is not forwarded")
			}
		}
	}

	// Waiter detection: none on an uncontended hold, one real parked waiter
	// detected while held.
	if wd, ok := wrapped.(lockapi.WaiterDetector); ok && baseDetects {
		wrapped.Acquire(p0, c0)
		if wd.HasWaiters(p0, c0) {
			t.Error("HasWaiters = true with no waiters")
		}
		// The waiter's context is allocated here, before its goroutine
		// starts: NewCtx is single-threaded-setup only, and a delegating
		// wrapper's HasWaiters may read the inner lock's context table.
		cw := wrapped.NewCtx()
		waiterDone := make(chan struct{})
		go func() {
			defer close(waiterDone)
			pw := lockapi.NewNativeProc(1)
			wrapped.Acquire(pw, cw)
			wrapped.Release(pw, cw)
		}()
		deadline := time.Now().Add(5 * time.Second)
		for !wd.HasWaiters(p0, c0) {
			if time.Now().After(deadline) {
				t.Error("HasWaiters never saw the parked waiter")
				break
			}
			runtime.Gosched()
		}
		wrapped.Release(p0, c0)
		<-waiterDone
	}

	// Try conformance and try-edge balance.
	if lockapi.SupportsTry(wrapped) {
		tl := wrapped.(lockapi.TryLocker)
		s0, a0, r0 := edges.counts()

		ct := wrapped.NewCtx()
		if !tl.TryAcquire(p0, ct) {
			t.Fatal("TryAcquire failed on a free lock")
		}
		wrapped.Release(p0, ct)
		if s, a, r := edges.counts(); s != s0+1 || a != a0+1 || r != r0+1 {
			t.Errorf("successful try edges = (%d,%d,%d), want (%d,%d,%d)", s, a, r, s0+1, a0+1, r0+1)
		}

		//lint:lockorder alias-ok wrapped and tl are one lock instance seen through the Lock and TryLocker interfaces; the class-level cycle has a single holder
		wrapped.Acquire(p0, c0)
		s1, a1, r1 := edges.counts()
		for _, cpu := range []int{1, mach.NumCPUs() - 1} {
			pt := lockapi.NewNativeProc(cpu)
			cf := wrapped.NewCtx()
			for i := 0; i < 3; i++ {
				//lint:lockorder alias-ok deliberate TryAcquire on the held single instance; the harness asserts it FAILS, so no nested hold exists
				if tl.TryAcquire(pt, cf) {
					t.Fatalf("TryAcquire from CPU %d succeeded while held", cpu)
				}
			}
			// The failed context must be reusable once the lock frees.
			wrapped.Release(p0, c0)
			//lint:lockorder alias-ok TryAcquire through the TryLocker view of the same instance just released through the Lock view; classes alias, instances do not nest
			if !tl.TryAcquire(pt, cf) {
				t.Fatalf("TryAcquire from CPU %d failed on a free lock after earlier failures (residual state)", cpu)
			}
			wrapped.Release(pt, cf)
			//lint:lockorder alias-ok reacquire of the single harness instance; the TryLocker class appears held only because its release went through the Lock view
			wrapped.Acquire(p0, c0)
		}
		// Failed tries must not have emitted edges; the loop above did 2
		// successful tries and 2 release/reacquire swaps, nothing else.
		if s, a, r := edges.counts(); s-s1 != 4 || a-a1 != 4 || r-r1 != 4 {
			t.Errorf("held-phase edge deltas = (%d,%d,%d), want (4,4,4): failed tries leaked edges", s-s1, a-a1, r-r1)
		}
		wrapped.Release(p0, c0)
	} else if supported, acquired := lockapi.TryAcquire(wrapped, p0, wrapped.NewCtx()); supported || acquired {
		t.Errorf("SupportsTry = false but TryAcquire reported (%v,%v)", supported, acquired)
	}

	// Whole-run balance: every start matched by one acquired and one
	// released, no edge invented or dropped anywhere above.
	if s, a, r := edges.counts(); s != a || a != r {
		t.Errorf("final edge counts = (%d,%d,%d), want balanced", s, a, r)
	}
}
