package locktest

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/topo"
)

// edgeCounter is the balance oracle for observer pass-through: every
// acquire-start must be matched by exactly one acquired and one released
// edge. Counters are atomic because conformance runs attach it while a
// second thread contends.
type edgeCounter struct {
	start, acquired, released uint64
}

func (e *edgeCounter) AcquireStart(lockapi.Proc) { atomic.AddUint64(&e.start, 1) }
func (e *edgeCounter) Acquired(lockapi.Proc)     { atomic.AddUint64(&e.acquired, 1) }
func (e *edgeCounter) Released(lockapi.Proc)     { atomic.AddUint64(&e.released, 1) }

func (e *edgeCounter) counts() (s, a, r uint64) {
	return atomic.LoadUint64(&e.start), atomic.LoadUint64(&e.acquired), atomic.LoadUint64(&e.released)
}

// WrapperConformance verifies that a combinator (a lock wrapping another
// lock — cr.Restrict, an instrumentation shim, a future adapter) forwards
// the optional capability surface of the lock it wraps instead of silently
// narrowing it. base must be a fresh instance of the same type and
// configuration as the lock inside wrapped; both must be unheld.
//
// Checked contracts:
//
//   - trylock capability equality: lockapi.SupportsTry answers the same for
//     wrapped and base — a wrapper may neither invent a try path its inner
//     lock cannot roll back, nor hide one it has;
//   - try behavior (when supported): uncontended success, failure while held
//     from a near and a far CPU, and no residual state after failures;
//   - fairness monotonicity: a wrapper must not declare Fair over an unfair
//     inner lock (the converse is allowed — wrappers may forfeit fairness);
//   - waiter detection: if base detects waiters (lockapi.WaiterDetector),
//     wrapped must too, report none on an uncontended hold, and detect a
//     real parked waiter;
//   - observer pass-through: wrapped must implement lockapi.Instrumented,
//     and its edge stream must stay balanced (starts == acquireds ==
//     releaseds) across blocking cycles, successful tries, and failed tries
//     (a failed try emits nothing).
func WrapperConformance(t testing.TB, mach *topo.Machine, wrapped, base lockapi.Lock) {
	t.Helper()

	if got, want := lockapi.SupportsTry(wrapped), lockapi.SupportsTry(base); got != want {
		t.Errorf("SupportsTry(wrapped) = %v, want %v (capability not forwarded)", got, want)
	}
	if lockapi.Fair(wrapped) && !lockapi.Fair(base) {
		t.Error("wrapper declares Fair over an unfair inner lock")
	}
	if _, ok := base.(lockapi.WaiterDetector); ok {
		if _, ok := wrapped.(lockapi.WaiterDetector); !ok {
			t.Error("inner lock detects waiters but the wrapper dropped lockapi.WaiterDetector")
		}
	}

	in, ok := wrapped.(lockapi.Instrumented)
	if !ok {
		t.Fatal("wrapper does not implement lockapi.Instrumented")
	}
	edges := &edgeCounter{}
	in.Instrument(edges)
	defer in.Instrument(nil)

	// Blocking cycles keep the edge stream balanced.
	const cycles = 16
	p0 := lockapi.NewNativeProc(0)
	c0 := wrapped.NewCtx()
	for i := 0; i < cycles; i++ {
		wrapped.Acquire(p0, c0)
		wrapped.Release(p0, c0)
	}
	if s, a, r := edges.counts(); s != cycles || a != cycles || r != cycles {
		t.Errorf("edge counts after %d blocking cycles = (%d,%d,%d), want balanced", cycles, s, a, r)
	}

	// Waiter detection: none on an uncontended hold, one real parked waiter
	// detected while held.
	if wd, ok := wrapped.(lockapi.WaiterDetector); ok {
		wrapped.Acquire(p0, c0)
		if wd.HasWaiters(p0, c0) {
			t.Error("HasWaiters = true with no waiters")
		}
		waiterDone := make(chan struct{})
		go func() {
			defer close(waiterDone)
			pw := lockapi.NewNativeProc(1)
			cw := wrapped.NewCtx()
			wrapped.Acquire(pw, cw)
			wrapped.Release(pw, cw)
		}()
		deadline := time.Now().Add(5 * time.Second)
		for !wd.HasWaiters(p0, c0) {
			if time.Now().After(deadline) {
				t.Error("HasWaiters never saw the parked waiter")
				break
			}
			runtime.Gosched()
		}
		wrapped.Release(p0, c0)
		<-waiterDone
	}

	// Try conformance and try-edge balance.
	if lockapi.SupportsTry(wrapped) {
		tl := wrapped.(lockapi.TryLocker)
		s0, a0, r0 := edges.counts()

		ct := wrapped.NewCtx()
		if !tl.TryAcquire(p0, ct) {
			t.Fatal("TryAcquire failed on a free lock")
		}
		wrapped.Release(p0, ct)
		if s, a, r := edges.counts(); s != s0+1 || a != a0+1 || r != r0+1 {
			t.Errorf("successful try edges = (%d,%d,%d), want (%d,%d,%d)", s, a, r, s0+1, a0+1, r0+1)
		}

		//lint:lockorder alias-ok wrapped and tl are one lock instance seen through the Lock and TryLocker interfaces; the class-level cycle has a single holder
		wrapped.Acquire(p0, c0)
		s1, a1, r1 := edges.counts()
		for _, cpu := range []int{1, mach.NumCPUs() - 1} {
			pt := lockapi.NewNativeProc(cpu)
			cf := wrapped.NewCtx()
			for i := 0; i < 3; i++ {
				//lint:lockorder alias-ok deliberate TryAcquire on the held single instance; the harness asserts it FAILS, so no nested hold exists
				if tl.TryAcquire(pt, cf) {
					t.Fatalf("TryAcquire from CPU %d succeeded while held", cpu)
				}
			}
			// The failed context must be reusable once the lock frees.
			wrapped.Release(p0, c0)
			//lint:lockorder alias-ok TryAcquire through the TryLocker view of the same instance just released through the Lock view; classes alias, instances do not nest
			if !tl.TryAcquire(pt, cf) {
				t.Fatalf("TryAcquire from CPU %d failed on a free lock after earlier failures (residual state)", cpu)
			}
			wrapped.Release(pt, cf)
			//lint:lockorder alias-ok reacquire of the single harness instance; the TryLocker class appears held only because its release went through the Lock view
			wrapped.Acquire(p0, c0)
		}
		// Failed tries must not have emitted edges; the loop above did 2
		// successful tries and 2 release/reacquire swaps, nothing else.
		if s, a, r := edges.counts(); s-s1 != 4 || a-a1 != 4 || r-r1 != 4 {
			t.Errorf("held-phase edge deltas = (%d,%d,%d), want (4,4,4): failed tries leaked edges", s-s1, a-a1, r-r1)
		}
		wrapped.Release(p0, c0)
	} else if supported, acquired := lockapi.TryAcquire(wrapped, p0, wrapped.NewCtx()); supported || acquired {
		t.Errorf("SupportsTry = false but TryAcquire reported (%v,%v)", supported, acquired)
	}

	// Whole-run balance: every start matched by one acquired and one
	// released, no edge invented or dropped anywhere above.
	if s, a, r := edges.counts(); s != a || a != r {
		t.Errorf("final edge counts = (%d,%d,%d), want balanced", s, a, r)
	}
}
