package locktest_test

import (
	"testing"

	"github.com/clof-go/clof/internal/catalog"
	"github.com/clof-go/clof/internal/cr"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/locktest"
	"github.com/clof-go/clof/internal/rwlock"
	"github.com/clof-go/clof/internal/seqlock"
	"github.com/clof-go/clof/internal/topo"
)

// TestCRWrapperConformance runs the wrapper-conformance harness for
// cr.Restrict over every catalog lock: whatever capability surface the inner
// lock has — trylock or an explicit declination, waiter detection, a
// fairness declaration — the restricted variant must forward it, and its
// observer edge stream must stay balanced through blocking, successful-try
// and failed-try paths. This is the regression gate for combinators
// narrowing the capability surface, which would silently change which code
// paths chaos sweeps and the obs layer exercise.
func TestCRWrapperConformance(t *testing.T) {
	m := topo.X86Server()
	for _, e := range catalog.Locks() {
		e := e
		t.Run("cr_over_"+e.Name, func(t *testing.T) {
			wrapped := cr.Restrict(m, e.New(m), cr.Opts{})
			locktest.WrapperConformance(t, m, wrapped, e.New(m))
		})
	}
}

// TestSeqWrapperConformance runs the same harness for seqlock.Wrap over
// every catalog lock: the version-bump wrapper must forward trylock, waiter
// detection, fairness, the reader-writer path (rwlock family), and — being
// the seq: family itself — serve a correct validated-read protocol.
func TestSeqWrapperConformance(t *testing.T) {
	m := topo.X86Server()
	for _, e := range catalog.Locks() {
		e := e
		t.Run("seq_over_"+e.Name, func(t *testing.T) {
			wrapped := seqlock.Wrap(e.New(m), seqlock.Opts{})
			locktest.WrapperConformance(t, m, wrapped, e.New(m))
		})
	}
}

// TestRWLockAdapterConformance pins the rwlock adapter itself through the
// shared harness (against a fresh instance of its own configuration): the
// adapter is the catalog's one native RWLocker, so this is where the
// shared-holders-coexist and shared-emits-no-edges contracts are anchored
// before any wrapper builds on them.
func TestRWLockAdapterConformance(t *testing.T) {
	m := topo.X86Server()
	mk := func() *rwlock.Adapted {
		return rwlock.Adapt(rwlock.New(m, topo.CacheGroup, locks.NewMCS()))
	}
	locktest.WrapperConformance(t, m, mk(), mk())
}
