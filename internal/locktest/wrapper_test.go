package locktest_test

import (
	"testing"

	"github.com/clof-go/clof/internal/catalog"
	"github.com/clof-go/clof/internal/cr"
	"github.com/clof-go/clof/internal/locktest"
	"github.com/clof-go/clof/internal/topo"
)

// TestCRWrapperConformance runs the wrapper-conformance harness for
// cr.Restrict over every catalog lock: whatever capability surface the inner
// lock has — trylock or an explicit declination, waiter detection, a
// fairness declaration — the restricted variant must forward it, and its
// observer edge stream must stay balanced through blocking, successful-try
// and failed-try paths. This is the regression gate for combinators
// narrowing the capability surface, which would silently change which code
// paths chaos sweeps and the obs layer exercise.
func TestCRWrapperConformance(t *testing.T) {
	m := topo.X86Server()
	for _, e := range catalog.Locks() {
		e := e
		t.Run("cr_over_"+e.Name, func(t *testing.T) {
			wrapped := cr.Restrict(m, e.New(m), cr.Opts{})
			locktest.WrapperConformance(t, m, wrapped, e.New(m))
		})
	}
}
