package locktest_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/clof-go/clof/internal/catalog"
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/topo"
)

// TestTryAcquireConformance drives every catalog lock through the TryLocker
// contract (lockapi.TryLocker): a lock either declines the capability via
// SupportsTry, or its TryAcquire must (1) succeed uncontended, (2) fail
// while the lock is held — from both a near and a far CPU, so hierarchical
// locks exercise their multi-level rollback — and (3) leave no residual
// published state on failure: after the holder releases, a plain Acquire
// with a fresh context must go straight through (a leaked queue node would
// deadlock here), and the failed context itself must be able to try again
// successfully.
func TestTryAcquireConformance(t *testing.T) {
	m := topo.X86Server()
	farCPU := m.NumCPUs() - 1
	for _, e := range catalog.Locks() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			l := e.New(m)
			if !lockapi.SupportsTry(l) {
				// Explicit declination (CLH's ABA hazard, HMCS's
				// non-rollbackable tree climb): the generic entry points
				// must agree and touch nothing.
				if supported, acquired := lockapi.TryAcquire(l, lockapi.NewNativeProc(0), l.NewCtx()); supported || acquired {
					t.Fatalf("SupportsTry=false but TryAcquire reported (%v,%v)", supported, acquired)
				}
				t.Logf("%s declines TryAcquire (documented)", e.Name)
				return
			}
			tl := l.(lockapi.TryLocker)

			// (1) Uncontended success.
			p0 := lockapi.NewNativeProc(0)
			c0 := l.NewCtx()
			if !tl.TryAcquire(p0, c0) {
				t.Fatal("TryAcquire failed on a free lock")
			}
			l.Release(p0, c0)

			// (2) Failure while held, near and far; (3) no residual state.
			l.Acquire(p0, c0)
			for _, cpu := range []int{1, farCPU} {
				pt := lockapi.NewNativeProc(cpu)
				ct := l.NewCtx()
				for i := 0; i < 3; i++ {
					if tl.TryAcquire(pt, ct) {
						t.Fatalf("TryAcquire from CPU %d succeeded while held (mutual-exclusion hole)", cpu)
					}
				}
				// The failed context must be reusable once the lock frees.
				l.Release(p0, c0)
				if !tl.TryAcquire(pt, ct) {
					t.Fatalf("TryAcquire from CPU %d failed on a free lock after earlier failures (residual state)", cpu)
				}
				l.Release(pt, ct)
				l.Acquire(p0, c0)
			}
			l.Release(p0, c0)

			// (3b) A blocking Acquire with a fresh context must not hang on
			// anything a failed try left behind.
			pf := lockapi.NewNativeProc(2)
			cf := l.NewCtx()
			l.Acquire(pf, cf)
			l.Release(pf, cf)
		})
	}
}

// TestTryAcquireNoExclusionHole stresses every try-capable catalog lock with
// a mix of blocking and bounded acquires under the race detector: half the
// workers Acquire, half AcquireBounded (abandoning on failure). The
// unprotected counter must come out at exactly the number of successful
// entries — a TryAcquire that "fails" while actually having published state
// (or that succeeds without excluding) shows up as a lost update or a -race
// report.
func TestTryAcquireNoExclusionHole(t *testing.T) {
	const workers, iters = 8, 400
	m := topo.X86Server()
	for _, e := range catalog.Locks() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			l := e.New(m)
			if !lockapi.SupportsTry(l) {
				t.Skipf("%s declines TryAcquire", e.Name)
			}
			cpus := topo.MustPlacement(m, workers)
			ctxs := make([]lockapi.Ctx, workers)
			for i := range ctxs {
				ctxs[i] = l.NewCtx()
			}
			var counter uint64 // lock-protected
			var abandoned uint64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					p := lockapi.NewNativeProc(cpus[id])
					for i := 0; i < iters; i++ {
						if id%2 == 0 {
							l.Acquire(p, ctxs[id])
						} else {
							_, acquired := lockapi.AcquireBounded(l, p, ctxs[id], 3, nil)
							if !acquired {
								atomic.AddUint64(&abandoned, 1)
								continue
							}
						}
						counter++
						l.Release(p, ctxs[id])
					}
				}(w)
			}
			wg.Wait()
			want := uint64(workers*iters) - abandoned
			if counter != want {
				t.Errorf("counter = %d, want %d (%d abandoned): exclusion hole", counter, want, abandoned)
			}
		})
	}
}
