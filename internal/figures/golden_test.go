package figures

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"testing"
)

// Golden SHA-256 digests of the quick fig9 (reduced Armv8 3-level panel)
// and fig10 CSVs, captured BEFORE the memsim run-ahead execution core
// landed. The rewrite is only allowed to change how fast the simulator
// runs, never what it computes: any drift in these digests means the
// virtual-time/seq schedule changed and the fast path broke determinism.
//
// To reprint the digests after an *intentional* model change, run with
// CLOF_GOLDEN_PRINT=1 and update the constants (and say why in the commit).
const (
	goldenFig9ArmL3Quick = "554e2d40c3a005e8cc24ce6ee2ce90a9cbaec37f12f2c66bac7c91fc2f36d3e4"

	goldenFig10LevelDBX86   = "2026412de402073a53ecbc22112ad371b23c658179d1fa587c2b5b72a7c040af"
	goldenFig10KyotoX86     = "3cfe58939546a7e1b291d98a1d9106c3200d7a4bb370d97a823381e27f1372a4"
	goldenFig10LevelDBArmv8 = "8c709185c900cd97dfc0f07dd0fcfed6986659e404acbae00683e603daf30703"
	goldenFig10KyotoArmv8   = "a06bdd3fba8d4fb001df99efb1f78513a6fe912f6130f215f3685468e2cfd293"
)

// csvSHA renders a figure the way cmd/clof-figures writes it and digests it.
func csvSHA(t *testing.T, f *Figure) string {
	t.Helper()
	sum := sha256.Sum256(csvBytes(t, f))
	return hex.EncodeToString(sum[:])
}

func checkGolden(t *testing.T, name, got, want string) {
	t.Helper()
	if os.Getenv("CLOF_GOLDEN_PRINT") != "" {
		fmt.Printf("golden %s = %q\n", name, got)
		return
	}
	if got != want {
		t.Errorf("%s CSV digest drifted:\n  got  %s\n  want %s\n"+
			"the simulated schedule changed — the execution core is no longer bit-identical", name, got, want)
	}
}

// TestGoldenFig9QuickCSV pins the quick fig9 reduced panel byte-for-byte,
// at -j 1 and -j 8 (ISSUE 4 acceptance: determinism preserved exactly).
func TestGoldenFig9QuickCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("composition sweep is expensive")
	}
	for _, jobs := range []int{1, 8} {
		o := quick
		o.Jobs = jobs
		res := Fig9Panel(Arm(), 3, o)
		checkGolden(t, fmt.Sprintf("fig9-arm-l3-quick (-j %d)", jobs), csvSHA(t, res.Figure), goldenFig9ArmL3Quick)
	}
}

// TestGoldenFig10QuickCSV pins all four quick fig10 panels byte-for-byte,
// at -j 1 and -j 8.
func TestGoldenFig10QuickCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("fig10 is expensive")
	}
	want := map[string]string{
		"fig10-leveldb-x86":   goldenFig10LevelDBX86,
		"fig10-kyoto-x86":     goldenFig10KyotoX86,
		"fig10-leveldb-armv8": goldenFig10LevelDBArmv8,
		"fig10-kyoto-armv8":   goldenFig10KyotoArmv8,
	}
	for _, jobs := range []int{1, 8} {
		o := quick
		o.Runs = 1
		o.Jobs = jobs
		for _, f := range Fig10(o) {
			w, ok := want[f.ID]
			if !ok {
				t.Fatalf("unexpected fig10 panel %q", f.ID)
			}
			checkGolden(t, fmt.Sprintf("%s (-j %d)", f.ID, jobs), csvSHA(t, f), w)
		}
	}
}
