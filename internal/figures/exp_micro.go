package figures

import (
	"fmt"

	"github.com/clof-go/clof/internal/discover"
	"github.com/clof-go/clof/internal/topo"
)

// Table1 reproduces the key-aspect coverage table: which of the paper's
// four aspects (A1 multi-level, A2 heterogeneity, A3 architecture-
// optimized, A4 WMM-correct) each algorithm in this repository covers.
// The values are structural facts about the implementations, asserted by
// TestTable1Aspects.
func Table1() *Figure {
	f := &Figure{
		ID:     "table1",
		Title:  "Key aspects coverage of NUMA-aware locks (1 = covered)",
		XLabel: "aspect A1..A4",
		YLabel: "covered",
	}
	for _, row := range Aspects() {
		f.Series = append(f.Series, Series{
			Name: row.Algorithm,
			X:    []int{1, 2, 3, 4},
			Y: []float64{
				b2f(row.MultiLevel), b2f(row.Heterogeneous),
				b2f(row.ArchOptimized), b2f(row.WMMCorrect),
			},
		})
	}
	f.Notes = append(f.Notes,
		"A1 multi-level, A2 heterogeneity, A3 architecture-optimized, A4 correctness on WMMs")
	return f
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// AspectRow is one algorithm's coverage of the paper's four key aspects.
type AspectRow struct {
	Algorithm     string
	MultiLevel    bool // A1: supports arbitrary hierarchy depth
	Heterogeneous bool // A2: different lock kinds per level
	ArchOptimized bool // A3: can exploit arch-specific basic locks
	WMMCorrect    bool // A4: verified on weak memory models
}

// Aspects returns the paper's Table 1 as implemented here. CNA and ShflLock
// know only the NUMA level; HMCS is multi-level but homogeneous (MCS only);
// cohorting is heterogeneous but 2-level; CLoF covers all four (A4 via the
// internal/mcheck induction argument).
func Aspects() []AspectRow {
	return []AspectRow{
		{Algorithm: "cna"},
		{Algorithm: "shfllock"},
		{Algorithm: "hmcs", MultiLevel: true},
		{Algorithm: "hmcs-wmm", MultiLevel: true, WMMCorrect: true},
		{Algorithm: "cohort", Heterogeneous: true, ArchOptimized: true},
		{Algorithm: "clof", MultiLevel: true, Heterogeneous: true, ArchOptimized: true, WMMCorrect: true},
	}
}

// Fig1 measures the pairwise ping-pong heatmaps of both platforms (§3.1).
// stride subsamples CPUs (1 = full matrix); Quick mode uses a coarse grid.
func Fig1(o Options) (x86, arm discover.Heatmap) {
	horizon := int64(discover.DefaultHorizon)
	strideX, strideA := 1, 1
	if o.Quick {
		horizon = 30_000
		strideX, strideA = 6, 8
	}
	o.progress("fig1: measuring x86 heatmap")
	x86 = discover.Measure(topo.X86Server(), horizon, strideX)
	o.progress("fig1: measuring armv8 heatmap")
	arm = discover.Measure(topo.Armv8Server(), horizon, strideA)
	return x86, arm
}

// Table2 computes the cohort speedups over the system cohort and pairs them
// with the paper's reported values.
func Table2(o Options) *Figure {
	horizon := int64(discover.DefaultHorizon)
	if o.Quick {
		horizon = 40_000
	}
	f := &Figure{
		ID:     "table2",
		Title:  "Cohort speedups over the system cohort (measured vs paper)",
		XLabel: "level(core=0..system=4)",
		YLabel: "speedup",
	}
	paper := map[string]map[topo.Level]float64{
		"x86":   {topo.System: 1.00, topo.Package: 1.54, topo.NUMA: 1.54, topo.CacheGroup: 9.07, topo.Core: 12.18},
		"armv8": {topo.System: 1.00, topo.Package: 1.76, topo.NUMA: 2.98, topo.CacheGroup: 7.04},
	}
	for _, pl := range []struct {
		name string
		m    *topo.Machine
	}{{"x86", topo.X86Server()}, {"armv8", topo.Armv8Server()}} {
		o.progress("table2: measuring %s speedups", pl.name)
		sp := discover.Speedups(pl.m, horizon)
		// Machines with one NUMA node per package have no package-distinct
		// pairs; the paper reports the NUMA value for both rows (its Table 2
		// note), so mirror it.
		if _, ok := sp[topo.Package]; !ok {
			if v, ok := sp[topo.NUMA]; ok && pl.m.Cohorts(topo.Package) == pl.m.Cohorts(topo.NUMA) {
				sp[topo.Package] = v
			}
		}
		var meas, ref Series
		meas.Name = pl.name + "-measured"
		ref.Name = pl.name + "-paper"
		for lvl := topo.Core; lvl <= topo.System; lvl++ {
			if v, ok := sp[lvl]; ok {
				meas.X = append(meas.X, int(lvl))
				meas.Y = append(meas.Y, v)
			}
			if v, ok := paper[pl.name][lvl]; ok {
				ref.X = append(ref.X, int(lvl))
				ref.Y = append(ref.Y, v)
			}
		}
		f.Series = append(f.Series, meas, ref)
	}
	f.Notes = append(f.Notes, "x86 has one NUMA node per package, so no distinct package-level pairs exist")
	return f
}

// DetectedHierarchies runs the §3.1 automation on both platforms and
// reports the hierarchy configurations it would hand to the generator.
func DetectedHierarchies(o Options) []string {
	horizon := int64(discover.DefaultHorizon)
	if o.Quick {
		horizon = 40_000
	}
	var out []string
	for _, m := range []*topo.Machine{topo.X86Server(), topo.Armv8Server()} {
		h, err := discover.DetectHierarchy(m, horizon, 1.25)
		if err != nil {
			out = append(out, fmt.Sprintf("%s: detection failed: %v", m.Name, err))
			continue
		}
		out = append(out, h.String())
	}
	return out
}
