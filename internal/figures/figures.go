// Package figures regenerates every table and figure of the paper's
// evaluation (the per-experiment index in DESIGN.md §4): the hierarchy
// heatmaps and speedups (Fig. 1, Table 2), the LevelDB comparison curves
// (Fig. 2, 3, 4), the exhaustive composition sweeps with lock selection
// (Fig. 9a–d), the cross-benchmark validation (Fig. 10), the fairness and
// composition analyses (§5.2.2, §5.2.3), and the verification-scaling table
// (§3.3/§4.2). All measurements run on the NUMA simulator and are
// reproducible bit-for-bit for a given options set.
package figures

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/clof-go/clof/internal/clof"
	"github.com/clof-go/clof/internal/cna"
	"github.com/clof-go/clof/internal/exp"
	"github.com/clof-go/clof/internal/hmcs"
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/shfllock"
	"github.com/clof-go/clof/internal/topo"
	"github.com/clof-go/clof/internal/workload"
)

// Series is one named curve: throughput (iter/µs) over thread counts.
type Series struct {
	Name string
	X    []int
	Y    []float64
}

// At returns the Y value at thread count x (NaN-free: 0 when absent).
func (s Series) At(x int) float64 {
	for i, xv := range s.X {
		if xv == x {
			return s.Y[i]
		}
	}
	return 0
}

// Figure is one regenerated table or figure panel.
type Figure struct {
	// ID is the experiment identifier, e.g. "fig9b".
	ID string
	// Title describes the panel (axis of comparison, platform).
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Notes carries derived observations (selected locks, speedup checks).
	Notes []string
}

// Get returns the series with the given name, if present.
func (f *Figure) Get(name string) (Series, bool) {
	for _, s := range f.Series {
		if s.Name == name {
			return s, true
		}
	}
	return Series{}, false
}

// WriteCSV emits the panel as CSV: header "threads,<series...>" then rows.
func (f *Figure) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\n", f.ID, f.Title); err != nil {
		return err
	}
	xs := f.unionX()
	cols := make([]string, 0, len(f.Series)+1)
	cols = append(cols, f.XLabel)
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, x := range xs {
		row := []string{fmt.Sprint(x)}
		for _, s := range f.Series {
			row = append(row, fmt.Sprintf("%.4f", s.At(x)))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	for _, n := range f.Notes {
		if _, err := fmt.Fprintf(w, "# note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// WriteASCII emits a fixed-width table for terminals.
func (f *Figure) WriteASCII(w io.Writer) error {
	fmt.Fprintf(w, "%s — %s (%s vs %s)\n", f.ID, f.Title, f.YLabel, f.XLabel)
	xs := f.unionX()
	fmt.Fprintf(w, "%-28s", f.XLabel)
	for _, x := range xs {
		fmt.Fprintf(w, "%9d", x)
	}
	fmt.Fprintln(w)
	for _, s := range f.Series {
		fmt.Fprintf(w, "%-28s", s.Name)
		for _, x := range xs {
			fmt.Fprintf(w, "%9.3f", s.At(x))
		}
		fmt.Fprintln(w)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	_, err := fmt.Fprintln(w)
	return err
}

func (f *Figure) unionX() []int {
	set := map[int]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			set[x] = true
		}
	}
	xs := make([]int, 0, len(set))
	for x := range set {
		xs = append(xs, x)
	}
	sort.Ints(xs)
	return xs
}

// Options scales the experiments: Quick produces the same shapes on reduced
// grids and shorter horizons for tests; the default reproduces the paper's
// grids.
type Options struct {
	// Quick reduces grids/horizons (tests, smoke runs).
	Quick bool
	// Runs is the per-point repetition count (median taken); 0 = paper
	// defaults (1 for the scripted benchmark, 3 for Fig. 10).
	Runs int
	// Progress, if non-nil, receives one line per completed measurement.
	Progress func(string)
	// Jobs is the experiment engine's worker-pool width (the CLIs' -j
	// flag); <= 0 means GOMAXPROCS. Results are identical at any width.
	Jobs int
	// Manifest, when non-nil, collects every grid point as a results.json
	// record and serves as the resume cache (internal/exp).
	Manifest *exp.Manifest
}

// runner builds the engine runner these options describe.
func (o Options) runner() *exp.Runner {
	return &exp.Runner{Jobs: o.Jobs, Manifest: o.Manifest, Progress: o.Progress}
}

func (o Options) progress(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(fmt.Sprintf(format, args...))
	}
}

// Platform bundles a machine with its paper hierarchies and thread grid.
type Platform struct {
	Machine *topo.Machine
	H4, H3  *topo.Hierarchy
	Grid    []int
}

// X86 is the paper's x86 evaluation platform.
func X86() Platform {
	return Platform{
		Machine: topo.X86Server(),
		H4:      topo.X86Hierarchy4(),
		H3:      topo.X86Hierarchy3(),
		Grid:    []int{1, 4, 8, 16, 24, 32, 48, 64, 95},
	}
}

// Arm is the paper's Armv8 evaluation platform.
func Arm() Platform {
	return Platform{
		Machine: topo.Armv8Server(),
		H4:      topo.ArmHierarchy4(),
		H3:      topo.ArmHierarchy3(),
		Grid:    []int{1, 4, 8, 16, 24, 32, 48, 64, 95, 127},
	}
}

// grid returns the (possibly reduced) thread grid.
func (o Options) grid(p Platform) []int {
	if !o.Quick {
		return p.Grid
	}
	max := p.Grid[len(p.Grid)-1]
	return []int{1, 8, 32, max}
}

// horizonScale shortens runs in Quick mode.
func (o Options) adjust(cfg workload.Config) workload.Config {
	if o.Quick {
		cfg.Horizon /= 2
	}
	return cfg
}

// The paper's reported best compositions (§5.2.1, Fig. 9/10 captions); used
// as the default CLoF locks in Figs. 2/4/10 so those figures do not require
// a full Fig. 9 sweep first. Fig. 9 derives this repository's own
// selections and reports both.
const (
	PaperLC4X86 = "tkt-tkt-mcs-mcs"
	PaperLC3X86 = "tkt-mcs-mcs"
	PaperLC4Arm = "tkt-clh-tkt-tkt"
	PaperLC3Arm = "tkt-clh-tkt"
	PaperHC4X86 = "hem-hem-mcs-clh"
	PaperHC3X86 = "hem-mcs-tkt"
	PaperHC4Arm = "tkt-clh-clh-clh"
	PaperHC3Arm = "tkt-clh-tkt"
)

// --- lock factories ---

// clofFactory builds a CLoF lock from paper notation over h.
func clofFactory(h *topo.Hierarchy, comp string, opts ...clof.Option) workload.LockFactory {
	c, err := clof.ParseComposition(comp)
	if err != nil {
		panic(err)
	}
	return func() lockapi.Lock { return clof.Must(h, c, opts...) }
}

func compFactory(h *topo.Hierarchy, c clof.Composition) workload.LockFactory {
	return func() lockapi.Lock { return clof.Must(h, c) }
}

func hmcsFactory(h *topo.Hierarchy) workload.LockFactory {
	return func() lockapi.Lock { return hmcs.Must(h) }
}

func basicFactory(name string) workload.LockFactory {
	t := locks.MustType(name)
	return func() lockapi.Lock { return t.New() }
}

func cnaFactory(m *topo.Machine) workload.LockFactory {
	return func() lockapi.Lock { return cna.New(m) }
}

func shflFactory(m *topo.Machine) workload.LockFactory {
	return func() lockapi.Lock { return shfllock.New(m) }
}

// --- measurement helpers (backed by the experiment engine) ---

// lockEntry is one named factory in a sweep.
type lockEntry struct {
	name string
	mk   workload.LockFactory
}

// measure executes one workload run and converts it to an engine sample. A
// deadlocking lock would already have failed its own tests; report it as
// zero throughput rather than aborting a whole sweep.
func measure(mk workload.LockFactory, cfg workload.Config) exp.Sample {
	res, err := workload.Run(mk, cfg)
	if err != nil {
		return exp.Sample{Err: err.Error()}
	}
	return exp.Sample{Throughput: res.ThroughputOpsPerUs(), Jain: res.Jain(), Total: res.Total}
}

// curvePoint builds the engine job for one (lock, threads) grid point.
func curvePoint(name string, mk workload.LockFactory, cfgFor func(threads int) workload.Config, threads int) exp.Point {
	return exp.Point{
		Key: fmt.Sprintf("lock=%s/threads=%d", name, threads),
		Run: func(seed uint64) exp.Sample {
			cfg := cfgFor(threads)
			cfg.Seed = seed
			return measure(mk, cfg)
		},
	}
}

// runCurves measures entries×grid as one engine spec — every point is an
// independent job on the worker pool — and returns one Series per entry, in
// entry order. The assembled series depend only on the spec (seeds are
// hash-derived per point), never on Options.Jobs.
func runCurves(o Options, spec exp.Spec, entries []lockEntry, cfgFor func(threads int) workload.Config, grid []int) []Series {
	spec.Threads = grid
	for _, e := range entries {
		spec.Locks = append(spec.Locks, e.name)
	}
	spec.Quick = o.Quick
	if spec.Runs == 0 {
		spec.Runs = o.Runs
	}
	points := make([]exp.Point, 0, len(entries)*len(grid))
	for _, e := range entries {
		for _, n := range grid {
			points = append(points, curvePoint(e.name, e.mk, cfgFor, n))
		}
	}
	results := o.runner().Run(spec, points)
	series := make([]Series, len(entries))
	i := 0
	for ei, e := range entries {
		series[ei].Name = e.name
		for _, n := range grid {
			series[ei].X = append(series[ei].X, n)
			series[ei].Y = append(series[ei].Y, results[i].Throughput())
			i++
		}
	}
	return series
}
