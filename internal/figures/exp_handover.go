package figures

import (
	"encoding/json"
	"fmt"

	"github.com/clof-go/clof/internal/exp"
	"github.com/clof-go/clof/internal/obs"
	"github.com/clof-go/clof/internal/topo"
	"github.com/clof-go/clof/internal/workload"
)

// measureObs is measure with the observability layer attached: the run is
// watched by an obs.Collector, whose report rides the sample both as the
// opaque results.json "obs" block and as handover-share metrics the figure
// reads back. Observation does not perturb the schedule, so throughput
// matches an unobserved run of the same seed.
func measureObs(name string, mk workload.LockFactory, cfg workload.Config) exp.Sample {
	col := obs.NewCollector(cfg.Machine, obs.Options{Lock: name})
	cfg.Observer = col
	res, err := workload.Run(mk, cfg)
	if err != nil {
		return exp.Sample{Err: err.Error()}
	}
	rep := col.Report()
	raw, err := json.Marshal(rep)
	if err != nil {
		return exp.Sample{Err: err.Error()}
	}
	s := exp.Sample{
		Throughput: res.ThroughputOpsPerUs(),
		Jain:       res.Jain(),
		Total:      res.Total,
		Obs:        raw,
		Metrics:    map[string]float64{},
	}
	denom := float64(rep.Handover.Self + rep.Handover.Crossings)
	if denom > 0 {
		s.Metrics["handover_self_pct"] = 100 * float64(rep.Handover.Self) / denom
		for _, lc := range rep.Handover.Levels {
			s.Metrics["handover_"+lc.Level+"_pct"] = 100 * float64(lc.Count) / denom
		}
	}
	return s
}

// Handover is the observability figure: the handover-distance mix versus
// thread count, contrasting a NUMA-oblivious queue lock (MCS) with the
// paper's x86 LC-best CLoF composition. MCS hands the lock to whoever is
// next in global FIFO order, so its mix follows the thread placement; CLoF's
// keep_local policy converts most transfers into core/cache-group passes —
// the locality that Figs. 2–4's throughput gap comes from, here made
// directly visible. Shares are percentages of all owner transitions.
func Handover(o Options) *Figure {
	p := X86()
	grid := o.grid(p)
	cfgFor := func(n int) workload.Config { return o.adjust(workload.LevelDB(p.Machine, n)) }
	f := &Figure{
		ID:     "handover",
		Title:  "handover-distance mix vs threads (mcs vs clof:" + PaperLC4X86 + ", x86, % of transfers)",
		XLabel: "threads",
		YLabel: "share-pct",
	}
	entries := []lockEntry{
		{"mcs", basicFactory("mcs")},
		{"clof", clofFactory(p.H4, PaperLC4X86)},
	}
	spec := exp.Spec{
		Name: f.ID, Platform: "x86", Workload: "leveldb",
		Threads: grid, Runs: o.Runs, Quick: o.Quick,
		Locks: []string{"mcs", "clof:" + PaperLC4X86},
		Notes: "handover-distance shares from the internal/obs collector; obs reports in results.json",
	}
	var points []exp.Point
	for _, e := range entries {
		e := e
		for _, n := range grid {
			n := n
			points = append(points, exp.Point{
				Key: fmt.Sprintf("lock=%s/threads=%d", e.name, n),
				Run: func(seed uint64) exp.Sample {
					cfg := cfgFor(n)
					cfg.Seed = seed
					return measureObs(e.name, e.mk, cfg)
				},
			})
		}
	}
	results := o.runner().Run(spec, points)

	// One series per (lock, distance): self plus every hierarchy level.
	distances := []string{"self"}
	for l := topo.Core; l <= topo.System; l++ {
		distances = append(distances, l.String())
	}
	i := 0
	for _, e := range entries {
		series := make([]Series, len(distances))
		for di, d := range distances {
			series[di].Name = e.name + ":" + d
		}
		for _, n := range grid {
			for di, d := range distances {
				series[di].X = append(series[di].X, n)
				series[di].Y = append(series[di].Y, results[i].Metrics["handover_"+d+"_pct"])
			}
			i++
		}
		f.Series = append(f.Series, series...)
	}
	return f
}
