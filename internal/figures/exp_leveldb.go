package figures

import (
	"fmt"

	"github.com/clof-go/clof/internal/clof"
	"github.com/clof-go/clof/internal/exp"
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/topo"
	"github.com/clof-go/clof/internal/workload"
)

// Fig2 reproduces the x86 LevelDB comparison of HMCS configurations and
// CLoF⟨4⟩ (paper Fig. 2): MCS vs HMCS⟨2⟩/⟨3⟩/⟨4⟩ vs CLoF⟨4⟩-x86.
func Fig2(o Options) *Figure {
	p := X86()
	grid := o.grid(p)
	cfgFor := func(n int) workload.Config { return o.adjust(workload.LevelDB(p.Machine, n)) }
	h2 := topo.MustHierarchy(p.Machine, topo.NUMA, topo.System)
	h3 := topo.MustHierarchy(p.Machine, topo.Core, topo.NUMA, topo.System) // original HMCS config
	f := &Figure{
		ID:     "fig2",
		Title:  "LevelDB on x86: HMCS configurations vs CLoF<4>",
		XLabel: "threads",
		YLabel: "iter/us",
	}
	entries := []lockEntry{
		{"mcs", basicFactory("mcs")},
		{"hmcs<2>", hmcsFactory(h2)},
		{"hmcs<3>", hmcsFactory(h3)},
		{"hmcs<4>", hmcsFactory(p.H4)},
		{"clof<4>-x86 (" + PaperLC4X86 + ")", clofFactory(p.H4, PaperLC4X86)},
	}
	spec := exp.Spec{Name: "fig2", Platform: "x86", Workload: "leveldb", Runs: comparisonRuns(o)}
	f.Series = runCurves(o, spec, entries, cfgFor, grid)
	return f
}

// comparisonRuns is the repetition default for the head-to-head comparison
// figures (2, 4, 10): median of 3, so a single unlucky jitter seed cannot
// move a curve at the parity tolerances the shape tests assert.
func comparisonRuns(o Options) int {
	if o.Runs != 0 {
		return o.Runs
	}
	return 3
}

// cohortCPUs returns the Fig. 3 pinning for one cohort at `level`: one
// thread on the first CPU of each child cohort (the next finer level),
// inside cohort 0 of `level`. At the system level that is one thread per
// package (or NUMA node when packages coincide).
func cohortCPUs(m *topo.Machine, level topo.Level) []int {
	child := level - 1
	for child > topo.Core && m.Cohorts(child) == m.Cohorts(level) {
		child--
	}
	if level == topo.Core {
		return m.CohortCPUs(topo.Core, 0) // hyperthread pair
	}
	var cpus []int
	span := m.CohortCPUs(level, 0)
	childSize := len(m.CohortCPUs(child, 0))
	for i := 0; i < len(span); i += childSize {
		cpus = append(cpus, span[i])
	}
	return cpus
}

// Fig3 reproduces the per-cohort basic-lock comparison (paper Fig. 3):
// LevelDB throughput of each NUMA-oblivious lock inside single cohorts of
// every level, at maximum (one thread per child cohort) contention. One
// Figure per platform. The X axis is the hierarchy level, so the grid
// points carry level keys instead of thread counts.
func Fig3(o Options) []*Figure {
	var out []*Figure
	lockNames := []string{"tkt", "mcs", "clh", "hem", "hem-ctr"}
	for _, pl := range []struct {
		name   string
		m      *topo.Machine
		levels []topo.Level
	}{
		{"x86", topo.X86Server(), []topo.Level{topo.Core, topo.CacheGroup, topo.NUMA, topo.System}},
		{"armv8", topo.Armv8Server(), []topo.Level{topo.CacheGroup, topo.NUMA, topo.Package, topo.System}},
	} {
		f := &Figure{
			ID:     "fig3-" + pl.name,
			Title:  "LevelDB per-cohort throughput of NUMA-oblivious locks on " + pl.name,
			XLabel: "level(core=0..system=4)",
			YLabel: "iter/us",
		}
		spec := exp.Spec{
			Name: f.ID, Platform: pl.name, Workload: "leveldb",
			Locks: lockNames, Runs: o.Runs, Quick: o.Quick,
			Notes: "one thread per child cohort inside a single cohort of each level",
		}
		var points []exp.Point
		for _, lockName := range lockNames {
			for _, lvl := range pl.levels {
				lockName, lvl, m := lockName, lvl, pl.m
				points = append(points, exp.Point{
					Key: fmt.Sprintf("lock=%s/level=%d", lockName, int(lvl)),
					Run: func(seed uint64) exp.Sample {
						cfg := o.adjust(workload.LevelDB(m, 0))
						cfg.CPUs = cohortCPUs(m, lvl)
						cfg.Seed = seed
						return measure(basicFactory(lockName), cfg)
					},
				})
			}
		}
		results := o.runner().Run(spec, points)
		i := 0
		for _, lockName := range lockNames {
			s := Series{Name: lockName}
			for _, lvl := range pl.levels {
				s.X = append(s.X, int(lvl))
				s.Y = append(s.Y, results[i].Throughput())
				i++
			}
			f.Series = append(f.Series, s)
		}
		f.Notes = append(f.Notes, fmt.Sprintf("threads per level: one per child cohort; levels measured: %v", pl.levels))
		out = append(out, f)
	}
	return out
}

// CohortScorer returns the paper's footnote-5 pre-selection scorer: a basic
// lock's score at a level is its Fig. 3 throughput — LevelDB inside a single
// cohort of that level at maximum contention. The scorer runs inline (the
// pre-selection pass is tiny compared to the sweep it prunes).
func CohortScorer(m *topo.Machine, o Options) clof.LevelScorer {
	cache := map[string]float64{}
	return func(typ locks.Type, lvl topo.Level) float64 {
		key := typ.Name + "@" + lvl.String()
		if v, ok := cache[key]; ok {
			return v
		}
		runs := o.Runs
		if runs <= 0 {
			runs = 1
		}
		vals := make([]float64, 0, runs)
		for r := 0; r < runs; r++ {
			cfg := o.adjust(workload.LevelDB(m, 0))
			cfg.CPUs = cohortCPUs(m, lvl)
			cfg.Seed = uint64(r) * 1315423911
			vals = append(vals, measure(func() lockapi.Lock { return typ.New() }, cfg).Throughput)
		}
		v := exp.Median(vals)
		cache[key] = v
		return v
	}
}

// Fig4 reproduces the Armv8 state-of-the-art comparison (paper Fig. 4):
// CLoF⟨4⟩-Arm vs HMCS⟨4⟩, MCS, CNA and ShflLock.
func Fig4(o Options) *Figure {
	p := Arm()
	grid := o.grid(p)
	cfgFor := func(n int) workload.Config { return o.adjust(workload.LevelDB(p.Machine, n)) }
	f := &Figure{
		ID:     "fig4",
		Title:  "LevelDB on Armv8: CLoF<4> vs state-of-the-art NUMA-aware locks",
		XLabel: "threads",
		YLabel: "iter/us",
	}
	entries := []lockEntry{
		{"clof<4>-arm (" + PaperLC4Arm + ")", clofFactory(p.H4, PaperLC4Arm)},
		{"hmcs<4>", hmcsFactory(p.H4)},
		{"mcs", basicFactory("mcs")},
		{"cna", cnaFactory(p.Machine)},
		{"shfllock", shflFactory(p.Machine)},
	}
	spec := exp.Spec{Name: "fig4", Platform: "armv8", Workload: "leveldb", Runs: comparisonRuns(o)}
	f.Series = runCurves(o, spec, entries, cfgFor, grid)
	return f
}
