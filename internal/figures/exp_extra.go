package figures

import (
	"fmt"
	"time"

	"github.com/clof-go/clof/internal/clof"
	"github.com/clof-go/clof/internal/exp"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/mcheck"
	"github.com/clof-go/clof/internal/workload"
)

// AblationKeepLocal sweeps the keep_local threshold H (paper default 128,
// DESIGN.md §6.1): throughput and fairness as the local-handover bound
// varies. Tiny H forfeits locality; huge H trades short-term fairness.
func AblationKeepLocal(o Options) *Figure {
	p := Arm()
	n := 64
	if o.Quick {
		n = 32
	}
	f := &Figure{
		ID:     "ablation-keeplocal",
		Title:  fmt.Sprintf("keep_local threshold sweep (%s, %d threads, tput and 10x jain)", PaperLC4Arm, n),
		XLabel: "threshold",
		YLabel: "iter/us",
	}
	thresholds := []uint64{1, 8, 32, 128, 512}
	spec := exp.Spec{
		Name: f.ID, Platform: "armv8", Workload: "leveldb",
		Threads: []int{n}, Runs: o.Runs, Quick: o.Quick,
		Locks: []string{PaperLC4Arm},
		Notes: "keep_local threshold sweep over H in {1,8,32,128,512}",
	}
	var points []exp.Point
	for _, h := range thresholds {
		h := h
		points = append(points, exp.Point{
			Key: fmt.Sprintf("h=%d/threads=%d", h, n),
			Run: func(seed uint64) exp.Sample {
				cfg := o.adjust(workload.LevelDB(p.Machine, n))
				cfg.Seed = seed
				return measure(clofFactory(p.H4, PaperLC4Arm, clof.WithThreshold(h)), cfg)
			},
		})
	}
	results := o.runner().Run(spec, points)
	tput := Series{Name: "throughput"}
	jain := Series{Name: "jain-x10"}
	for i, h := range thresholds {
		if len(results[i].Errors) > 0 {
			continue
		}
		tput.X = append(tput.X, int(h))
		tput.Y = append(tput.Y, results[i].Throughput())
		jain.X = append(jain.X, int(h))
		jain.Y = append(jain.Y, results[i].Jain.Median*10)
	}
	f.Series = append(f.Series, tput, jain)
	return f
}

// AblationHasWaiters compares the custom has_waiters fast path (§4.1.2)
// against the generic waiters counter for a composition whose locks offer
// detectors (Ticket/MCS).
func AblationHasWaiters(o Options) *Figure {
	p := X86()
	grid := o.grid(p)
	comp := PaperLC4X86 // tkt-tkt-mcs-mcs: every level has a detector
	cfgFor := func(n int) workload.Config { return o.adjust(workload.LevelDB(p.Machine, n)) }
	f := &Figure{
		ID:     "ablation-haswaiters",
		Title:  "custom has_waiters vs waiters counter (" + comp + ", x86)",
		XLabel: "threads",
		YLabel: "iter/us",
	}
	entries := []lockEntry{
		{"custom-detector", clofFactory(p.H4, comp)},
		{"waiters-counter", clofFactory(p.H4, comp, clof.WithoutCustomHasWaiters())},
	}
	spec := exp.Spec{Name: f.ID, Platform: "x86", Workload: "leveldb", Notes: "composition " + comp}
	f.Series = runCurves(o, spec, entries, cfgFor, grid)
	return f
}

// AblationFastPath measures the §6 TAS fast-path extension: gain at low
// contention (the hierarchy climb is skipped) vs behavior under load (the
// slow path takes over).
func AblationFastPath(o Options) *Figure {
	p := Arm()
	grid := o.grid(p)
	cfgFor := func(n int) workload.Config { return o.adjust(workload.LevelDB(p.Machine, n)) }
	f := &Figure{
		ID:     "ablation-fastpath",
		Title:  "TAS fast path (§6 extension) on " + PaperLC4Arm + ", Armv8",
		XLabel: "threads",
		YLabel: "iter/us",
	}
	entries := []lockEntry{
		{"plain", clofFactory(p.H4, PaperLC4Arm)},
		{"tas-fastpath", clofFactory(p.H4, PaperLC4Arm, clof.WithTASFastPath())},
	}
	spec := exp.Spec{Name: f.ID, Platform: "armv8", Workload: "leveldb", Notes: "composition " + PaperLC4Arm}
	f.Series = runCurves(o, spec, entries, cfgFor, grid)
	return f
}

// VerificationRow is one model-checking result for the §3.3/§4.2 table.
type VerificationRow struct {
	Program string
	Mode    mcheck.Mode
	Result  mcheck.Result
	Elapsed time.Duration
}

// VerificationTable runs the §4.2 verification suite and reports state
// counts and times — the repository's analog of the paper's observation
// that whole-lock checking explodes with depth while CLoF's induction step
// stays at 3 threads. ExpectViolation rows are the negative results.
func VerificationTable(o Options) []VerificationRow {
	type job struct {
		name string
		prog mcheck.Program
		mode mcheck.Mode
	}
	jobs := []job{}
	for _, l := range []string{"tkt", "mcs", "clh", "hem"} {
		jobs = append(jobs, job{"base " + l + " 3x1", mcheck.LockProgram(l, 3, 1, locks.MustType(l).New), mcheck.SC})
		jobs = append(jobs, job{"base " + l + " 2x2 wmm", mcheck.LockProgram(l, 2, 2, locks.MustType(l).New), mcheck.WMM})
	}
	jobs = append(jobs,
		job{"base qspin 3x1", mcheck.LockProgram("qspin", 3, 1, locks.MustType("qspin").New), mcheck.SC},
		job{"induction tkt-tkt", mcheck.InductionProgram(1, false, "tkt", "tkt"), mcheck.SC},
		job{"induction tkt-tkt wmm", mcheck.InductionProgram(1, false, "tkt", "tkt"), mcheck.WMM},
		job{"extension tas-fastpath", mcheck.FastPathProgram(1), mcheck.SC},
		job{"NEGATIVE release-order bug", mcheck.InductionProgram(2, true, "mcs", "mcs"), mcheck.SC},
		job{"NEGATIVE relaxed release wmm", mcheck.BrokenTicketProgram(2, 2), mcheck.WMM},
		job{"tso forgives relaxed release", mcheck.BrokenTicketProgram(2, 2), mcheck.TSO},
	)
	if !o.Quick {
		jobs = append(jobs,
			job{"induction mcs-tkt", mcheck.InductionProgram(1, false, "mcs", "tkt"), mcheck.SC},
			job{"induction clh-tkt", mcheck.InductionProgram(1, false, "clh", "tkt"), mcheck.SC},
		)
	}
	var rows []VerificationRow
	for _, j := range jobs {
		o.progress("verify: %s (%s)", j.name, j.mode)
		start := time.Now()
		res := mcheck.Check(j.prog, mcheck.Config{Mode: j.mode})
		rows = append(rows, VerificationRow{Program: j.name, Mode: j.mode, Result: res, Elapsed: time.Since(start)})
	}
	return rows
}

// ScalingRow records checker growth with thread count (whole-lock
// verification cost, §4.2.3's super-exponential observation).
type ScalingRow struct {
	Threads int
	States  int
	Elapsed time.Duration
}

// VerificationScaling measures whole-lock checking cost for Ticketlock at
// increasing thread counts, contrasted with the fixed-size induction step.
func VerificationScaling(o Options) []ScalingRow {
	max := 4
	if o.Quick {
		max = 3
	}
	var rows []ScalingRow
	for n := 2; n <= max; n++ {
		start := time.Now()
		res := mcheck.Check(mcheck.LockProgram("tkt", n, 1, locks.MustType("tkt").New), mcheck.Config{Mode: mcheck.SC})
		rows = append(rows, ScalingRow{Threads: n, States: res.States, Elapsed: time.Since(start)})
	}
	return rows
}
