package figures

import (
	"fmt"

	"github.com/clof-go/clof/internal/catalog"
	"github.com/clof-go/clof/internal/exp"
	"github.com/clof-go/clof/internal/faultinject"
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/topo"
	"github.com/clof-go/clof/internal/workload"
)

// Saturation geometry of the collapse experiment, shared with its tests.
const (
	// collapseHorizonNS is the virtual run length. It must dwarf the
	// oversubscribed plan's 60µs preemption slices: at the scripted
	// benchmark's default 300µs horizon a sweep point completes only tens of
	// acquisitions and the curves are sampling noise.
	collapseHorizonNS = 3_000_000
	// CollapseSaturation is the first thread count counted as "past
	// saturation" on the oversubscribed platform: twice its 8 physical
	// cores, i.e. every core already multiplexes at least two threads.
	CollapseSaturation = 16
	// collapseMinShare is the per-thread progress share below which a
	// thread counts as starved (the paper-default watchdog gate).
	collapseMinShare = 0.05
)

// CollapseLocks names the catalog entries the collapse experiment sweeps:
// each raw lock next to its concurrency-restricted wrapping, for the global
// spinning baseline and the full CLoF composition.
var CollapseLocks = []string{"tkt", "cr:tkt", "clof:tkt-tkt-tkt-tkt", "cr:clof:tkt-tkt-tkt-tkt"}

// Collapse measures saturation behavior on the oversubscribed platform (8
// physical cores exposing 64 hardware threads): throughput curves for raw
// locks against their cr.Restrict wrappings, once undisturbed and once under
// the "oversubscribed" fault plan (periodic 60µs lock-holder preemptions —
// the involuntary-descheduling regime of Dice & Kogan). The expected shape,
// asserted by the Notes and by TestCollapseQuick: the raw Ticketlock
// collapses past saturation (every spinner burns a core the holder needs),
// while the restricted variant parks the excess and keeps throughput within
// a bounded fraction of its peak — and nobody starves doing so.
func Collapse(o Options) []*Figure {
	mach := topo.OversubscribedServer()
	grid := []int{1, 2, 4, 8, 16, 32, 48, 64}
	horizon := int64(collapseHorizonNS)
	if o.Quick {
		grid = []int{1, 4, 8, 16, 32, 64}
		horizon /= 2
	}
	plans := []struct {
		name string
		plan *faultinject.Plan
	}{
		{"none", nil},
		{"oversubscribed", mustPlan("oversubscribed")},
	}

	var figs []*Figure
	for _, pl := range plans {
		pl := pl
		f := &Figure{
			ID:     "collapse-" + pl.name,
			Title:  fmt.Sprintf("saturation on %s, fault plan %s (raw vs concurrency-restricted)", mach.Name, pl.name),
			XLabel: "threads",
			YLabel: "iter/us",
		}
		spec := exp.Spec{
			Name: f.ID, Platform: "oversub", Workload: "leveldb",
			Threads: grid, Runs: o.Runs, Quick: o.Quick,
			Locks: CollapseLocks,
			Notes: fmt.Sprintf("fault plan %s; horizon=%dns; saturation at %d threads", pl.name, horizon, CollapseSaturation),
		}
		var points []exp.Point
		for _, name := range CollapseLocks {
			e, err := catalog.Lookup(name)
			if err != nil {
				panic(err)
			}
			for _, n := range grid {
				e, n := e, n
				points = append(points, exp.Point{
					Key: fmt.Sprintf("lock=%s/threads=%d", e.Name, n),
					Run: func(seed uint64) exp.Sample {
						cfg := workload.LevelDB(mach, n)
						cfg.Horizon = horizon
						cfg.Seed = seed
						cfg.Faults = pl.plan
						res, err := workload.Run(func() lockapi.Lock { return e.New(mach) }, cfg)
						if err != nil {
							return exp.Sample{Err: err.Error()}
						}
						return exp.Sample{
							Throughput: res.ThroughputOpsPerUs(),
							Jain:       res.Jain(),
							Total:      res.Total,
							Metrics: map[string]float64{
								"starved":    float64(len(res.Starved(collapseMinShare))),
								"violations": float64(res.ExclusionViolations),
							},
						}
					},
				})
			}
		}
		results := o.runner().Run(spec, points)

		starved := map[string]int{}
		i := 0
		for _, name := range CollapseLocks {
			s := Series{Name: name}
			for _, n := range grid {
				r := results[i]
				i++
				s.X = append(s.X, n)
				s.Y = append(s.Y, r.Throughput())
				starved[name] += int(r.Metrics["starved"])
			}
			f.Series = append(f.Series, s)
		}
		f.Notes = append(f.Notes, collapseNotes(f, starved)...)
		figs = append(figs, f)
	}
	return figs
}

// CollapseStats summarizes one series of a collapse figure: the peak over
// the whole grid and the floor past saturation, whose ratio is the
// collapse/retention measure the experiment is about.
type CollapseStats struct {
	Peak, TailFloor float64
}

// Retention is the past-saturation floor as a fraction of the peak (0 when
// the series never peaked).
func (c CollapseStats) Retention() float64 {
	if c.Peak == 0 {
		return 0
	}
	return c.TailFloor / c.Peak
}

// SeriesStats computes the collapse statistics of one series.
func SeriesStats(s Series) CollapseStats {
	var st CollapseStats
	first := true
	for i, x := range s.X {
		if s.Y[i] > st.Peak {
			st.Peak = s.Y[i]
		}
		if x >= CollapseSaturation {
			if first || s.Y[i] < st.TailFloor {
				st.TailFloor = s.Y[i]
			}
			first = false
		}
	}
	return st
}

// collapseNotes derives the figure's self-describing observations: the raw
// baselines' collapse factors, the restricted variants' retention, and the
// per-lock starvation tally (the watchdog's count of threads below 5% of
// mean progress, summed over the grid).
func collapseNotes(f *Figure, starved map[string]int) []string {
	var notes []string
	for _, pair := range [][2]string{
		{"tkt", "cr:tkt"},
		{"clof:tkt-tkt-tkt-tkt", "cr:clof:tkt-tkt-tkt-tkt"},
	} {
		raw, ok1 := f.Get(pair[0])
		cr, ok2 := f.Get(pair[1])
		if !ok1 || !ok2 {
			continue
		}
		rs, cs := SeriesStats(raw), SeriesStats(cr)
		collapse := 0.0
		if rs.TailFloor > 0 {
			collapse = rs.Peak / rs.TailFloor
		}
		notes = append(notes, fmt.Sprintf(
			"%s: peak %.4f, floor %.4f past %d threads (collapse %.2fx); %s: peak %.4f, floor %.4f (retains %.0f%%)",
			pair[0], rs.Peak, rs.TailFloor, CollapseSaturation, collapse,
			pair[1], cs.Peak, cs.TailFloor, cs.Retention()*100))
	}
	for _, name := range CollapseLocks {
		if n := starved[name]; n > 0 {
			notes = append(notes, fmt.Sprintf("starved threads (<5%% of mean progress): %s=%d", name, n))
		}
	}
	notes = append(notes, fmt.Sprintf(
		"starved threads under cr wrappers: cr:tkt=%d cr:clof:tkt-tkt-tkt-tkt=%d (restriction parks waiters without starving them)",
		starved["cr:tkt"], starved["cr:clof:tkt-tkt-tkt-tkt"]))
	return notes
}

// mustPlan resolves a fault-injection preset by name.
func mustPlan(name string) *faultinject.Plan {
	p, ok := faultinject.ByName(name)
	if !ok {
		panic(fmt.Sprintf("unknown fault plan %q", name))
	}
	return p
}
