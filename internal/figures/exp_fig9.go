package figures

import (
	"fmt"

	"github.com/clof-go/clof/internal/clof"
	"github.com/clof-go/clof/internal/exp"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/workload"
)

// Fig9Result is one composition-sweep panel: every generated lock's curve,
// plus the HC-best/LC-best/worst selection and the HMCS baseline.
type Fig9Result struct {
	Figure    *Figure
	Selection clof.Selection
}

// Fig9Panel runs the scripted benchmark (§4.3) for one platform/hierarchy:
// generate all N^M compositions, measure each across the contention grid as
// one engine spec (every (composition, threads) point is an independent
// parallel job), rank under both policies. Panels: ("x86",4)=fig9a,
// ("armv8",4)=fig9b, ("x86",3)=fig9c, ("armv8",3)=fig9d.
func Fig9Panel(p Platform, levels int, o Options) Fig9Result {
	h := p.H4
	if levels == 3 {
		h = p.H3
	}
	basics := locks.BasicLocks(p.Machine.Arch)
	comps := clof.Generate(basics, levels)
	grid := o.grid(p)
	cfgFor := func(n int) workload.Config { return o.adjust(workload.LevelDB(p.Machine, n)) }

	id := map[string]string{
		"x86/4": "fig9a", "armv8/4": "fig9b",
		"x86/3": "fig9c", "armv8/3": "fig9d",
	}[fmt.Sprintf("%s/%d", p.Machine.Arch, levels)]

	hmcsName := fmt.Sprintf("hmcs<%d>", levels)
	spec := exp.Spec{
		Name:      id,
		Platform:  p.Machine.Arch.String(),
		Hierarchy: h.String(),
		Workload:  "leveldb",
		Threads:   grid,
		Runs:      o.Runs,
		Quick:     o.Quick,
		Notes:     fmt.Sprintf("scripted benchmark: all %d compositions at %d levels plus the %s baseline", len(comps), levels, hmcsName),
	}
	for _, comp := range comps {
		spec.Locks = append(spec.Locks, comp.String())
	}
	spec.Locks = append(spec.Locks, hmcsName)

	points := make([]exp.Point, 0, (len(comps)+1)*len(grid))
	for _, comp := range comps {
		for _, n := range grid {
			comp, n := comp, n
			points = append(points, exp.Point{
				Key: fmt.Sprintf("comp=%s/threads=%d", comp, n),
				Run: func(seed uint64) exp.Sample {
					cfg := cfgFor(n)
					cfg.Seed = seed
					return measure(compFactory(h, comp), cfg)
				},
			})
		}
	}
	for _, n := range grid {
		points = append(points, curvePoint(hmcsName, hmcsFactory(h), cfgFor, n))
	}
	results := o.runner().Run(spec, points)

	ms := make([]clof.Measurement, len(comps))
	i := 0
	for ci, comp := range comps {
		ms[ci] = clof.Measurement{Comp: comp}
		for _, n := range grid {
			ms[ci].Points = append(ms[ci].Points, clof.Point{Threads: n, Throughput: results[i].Throughput()})
			i++
		}
	}
	hmcsSeries := Series{Name: hmcsName}
	for _, n := range grid {
		hmcsSeries.X = append(hmcsSeries.X, n)
		hmcsSeries.Y = append(hmcsSeries.Y, results[i].Throughput())
		i++
	}
	sel, err := clof.Select(ms)
	if err != nil {
		panic(err) // comps is never empty here
	}

	f := &Figure{
		ID:     id,
		Title:  fmt.Sprintf("all %d CLoF compositions, %d levels, %s", len(comps), levels, p.Machine.Arch),
		XLabel: "threads",
		YLabel: "iter/us",
	}

	// Highlighted series first: HC-best, LC-best, HMCS baseline, worst.
	toSeries := func(prefix string, m clof.Measurement) Series {
		s := Series{Name: prefix + " (" + m.Comp.String() + ")"}
		for _, pt := range m.Points {
			s.X = append(s.X, pt.Threads)
			s.Y = append(s.Y, pt.Throughput)
		}
		return s
	}
	f.Series = append(f.Series,
		toSeries("HC-best", sel.HCBest),
		toSeries("LC-best", sel.LCBest),
		hmcsSeries,
		toSeries("worst", sel.Worst),
	)
	// Then the full beam of gray lines.
	for _, m := range sel.All {
		f.Series = append(f.Series, toSeries("", m))
	}
	f.Notes = append(f.Notes,
		fmt.Sprintf("HC-best=%s LC-best=%s worst=%s", sel.HCBest.Comp, sel.LCBest.Comp, sel.Worst.Comp))
	return Fig9Result{Figure: f, Selection: sel}
}

// Fig9 runs all four panels (a–d). Expensive: 2×(256+64) compositions; use
// Options.Quick for smoke runs.
func Fig9(o Options) []Fig9Result {
	var out []Fig9Result
	for _, pl := range []Platform{X86(), Arm()} {
		for _, levels := range []int{4, 3} {
			o.progress("fig9: %s %d-level sweep", pl.Machine.Arch, levels)
			out = append(out, Fig9Panel(pl, levels, o))
		}
	}
	return out
}

// CompositionAnalysis reproduces §5.2.2: replacing the NUMA level of a good
// Armv8 composition with Ticketlock must crater its high-contention
// throughput (the paper's "worst lock" observation).
func CompositionAnalysis(o Options) *Figure {
	p := Arm()
	grid := o.grid(p)
	cfgFor := func(n int) workload.Config { return o.adjust(workload.LevelDB(p.Machine, n)) }
	f := &Figure{
		ID:     "composition-analysis",
		Title:  "§5.2.2: Ticketlock at the NUMA level on Armv8",
		XLabel: "threads",
		YLabel: "iter/us",
	}
	var entries []lockEntry
	for _, comp := range []string{PaperLC4Arm /* tkt-clh-tkt-tkt */, "tkt-tkt-tkt-tkt", "mcs-tkt-tkt-tkt"} {
		entries = append(entries, lockEntry{comp, clofFactory(p.H4, comp)})
	}
	spec := exp.Spec{Name: f.ID, Platform: "armv8", Workload: "leveldb"}
	f.Series = runCurves(o, spec, entries, cfgFor, grid)
	f.Notes = append(f.Notes, "series 2 and 3 put Ticketlock at the NUMA level (position 2 of 4)")
	return f
}
