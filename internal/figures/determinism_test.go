package figures

import (
	"bytes"
	"testing"
)

// csvBytes renders a figure the way cmd/clof-figures writes it to disk.
func csvBytes(t *testing.T, f *Figure) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := f.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestFig9DeterministicAcrossJobs is the ISSUE acceptance criterion: the
// quick fig9 sweep must produce byte-identical CSVs at -j 1 and -j 8, and
// across repeated parallel runs (worker scheduling must not leak into
// results). Uses the same reduced panel as TestFig9PanelShape.
func TestFig9DeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("composition sweep is expensive")
	}
	run := func(jobs int) ([]byte, string) {
		o := quick
		o.Jobs = jobs
		res := Fig9Panel(Arm(), 3, o)
		return csvBytes(t, res.Figure), res.Selection.HCBest.Comp.String()
	}
	seq, seqBest := run(1)
	par1, par1Best := run(8)
	par2, _ := run(8)
	if !bytes.Equal(seq, par1) {
		t.Errorf("fig9 CSV differs between -j 1 and -j 8")
	}
	if !bytes.Equal(par1, par2) {
		t.Errorf("fig9 CSV differs across two -j 8 runs")
	}
	if seqBest != par1Best {
		t.Errorf("HC-best selection differs: %s (-j 1) vs %s (-j 8)", seqBest, par1Best)
	}
}

// TestFig10DeterministicAcrossJobs: the four quick fig10 panels are
// byte-identical at -j 1 and -j 8.
func TestFig10DeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("fig10 is expensive")
	}
	run := func(jobs int) [][]byte {
		o := quick
		o.Runs = 1
		o.Jobs = jobs
		figs := Fig10(o)
		out := make([][]byte, len(figs))
		for i, f := range figs {
			out[i] = csvBytes(t, f)
		}
		return out
	}
	seq, par := run(1), run(8)
	if len(seq) != len(par) {
		t.Fatalf("panel count differs: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if !bytes.Equal(seq[i], par[i]) {
			t.Errorf("fig10 panel %d CSV differs between -j 1 and -j 8", i)
		}
	}
}
