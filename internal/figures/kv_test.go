package figures

import "testing"

// TestKVQuick asserts the sharded-serving refactor's acceptance criterion at
// reduced scale: on the read-mostly mix, the sharded rwlock configuration
// (shared fast path × per-shard locks) beats the single global ticket lock —
// the pre-refactor engine — and the per-shard exclusion invariants hold
// across every mix. The full-scale committed artifacts (figures-out/kv-*.csv)
// record the same comparison in their notes.
func TestKVQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-millisecond simulated horizons")
	}
	figs := KV(quick)
	if len(figs) != 4 {
		t.Fatalf("KV returned %d figures, want 4", len(figs))
	}
	grid := []int{1, 4, 16} // the Quick shard grid
	for _, f := range figs {
		for _, s := range f.Series {
			for i, y := range s.Y {
				if y <= 0 {
					t.Errorf("%s %s: zero throughput at %d shards", f.ID, s.Name, s.X[i])
				}
			}
		}
		for _, n := range f.Notes {
			t.Logf("%s note: %s", f.ID, n)
		}
	}

	rm := figs[0]
	if rm.ID != "kv-read-mostly" {
		t.Fatalf("first figure is %s, want kv-read-mostly", rm.ID)
	}
	// The acceptance criterion: sharding the read-mostly store behind
	// reader-writer shard locks must beat the single global spinlock. Quick
	// mode halves the horizon, so assert a margin below the full-scale gap.
	if sp := KVSpeedup(rm, "rwlock", "tkt", grid); sp < 1.2 {
		t.Errorf("read-mostly sharded rwlock speedup %.2fx over global tkt, want >= 1.2x", sp)
	}
	// More shards must not lose throughput for the plain spinlock either:
	// sharding splits the contention domain.
	if tkt, ok := rm.Get("tkt"); !ok || tkt.At(16) <= tkt.At(1) {
		t.Errorf("read-mostly tkt at 16 shards (%.4f) does not beat 1 shard (%.4f)",
			tkt.At(16), tkt.At(1))
	}
}
