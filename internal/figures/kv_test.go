package figures

import "testing"

// TestKVQuick asserts the sharded-serving acceptance criteria at reduced
// scale. From the sharding refactor: on the read-mostly mix, the sharded
// rwlock configuration (shared fast path × per-shard locks) beats the single
// global ticket lock — the pre-refactor engine — and the per-shard exclusion
// invariants hold across every mix. From the optimistic-read work: on the
// read-mostly mix at the largest shard count, the seq:tkt row (validated
// lock-free reads) beats EVERY pessimistic catalog lock, rwlock's shared
// path included, on BOTH modeled architectures. The full-scale committed
// artifacts (figures-out/kv-*.csv) record the same comparisons in their
// notes.
func TestKVQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-millisecond simulated horizons")
	}
	figs := KV(quick)
	if len(figs) != 5 {
		t.Fatalf("KV returned %d figures, want 5 (4 x86 mixes + armv8 read-mostly)", len(figs))
	}
	grid := []int{1, 4, 16} // the Quick shard grid
	for _, f := range figs {
		for _, s := range f.Series {
			for i, y := range s.Y {
				if y <= 0 {
					t.Errorf("%s %s: zero throughput at %d shards", f.ID, s.Name, s.X[i])
				}
			}
		}
		for _, n := range f.Notes {
			t.Logf("%s note: %s", f.ID, n)
		}
	}

	rm := figs[0]
	if rm.ID != "kv-read-mostly" {
		t.Fatalf("first figure is %s, want kv-read-mostly", rm.ID)
	}
	// The sharding criterion: sharding the read-mostly store behind
	// reader-writer shard locks must beat the single global spinlock. Quick
	// mode halves the horizon, so assert a margin below the full-scale gap.
	if sp := KVSpeedup(rm, "rwlock", "tkt", grid); sp < 1.2 {
		t.Errorf("read-mostly sharded rwlock speedup %.2fx over global tkt, want >= 1.2x", sp)
	}
	// More shards must not lose throughput for the plain spinlock either:
	// sharding splits the contention domain.
	if tkt, ok := rm.Get("tkt"); !ok || tkt.At(16) <= tkt.At(1) {
		t.Errorf("read-mostly tkt at 16 shards (%.4f) does not beat 1 shard (%.4f)",
			tkt.At(16), tkt.At(1))
	}

	// The optimistic-read criterion, on both modeled architectures: the
	// seq:tkt row at the grid maximum beats every pessimistic lock at the
	// same shard count — the read path validates a version word instead of
	// acquiring, so on a 95%-read mix no pessimistic reader (rwlock's shared
	// RMWs included) should keep up.
	arm := figs[4]
	if arm.ID != "kv-read-mostly-armv8" {
		t.Fatalf("last figure is %s, want kv-read-mostly-armv8", arm.ID)
	}
	max := grid[len(grid)-1]
	for _, f := range []*Figure{rm, arm} {
		for _, p := range KVPessimisticLocks {
			if r := KVRatioAt(f, "seq:tkt", p, max); r <= 1.0 {
				t.Errorf("%s: optimistic seq:tkt does not beat pessimistic %s at %d shards (%.2fx)",
					f.ID, p, max, r)
			}
		}
	}
}
