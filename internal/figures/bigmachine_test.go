package figures

import "testing"

// TestBigMachineQuick asserts the scaling claim at reduced scale: on every
// deep machine the sweep produces live (nonzero) full-occupancy throughput
// for every lock, and the canonical CLoF composition beats the flat
// global-spinning ticket lock at full occupancy — the advantage the deep
// topologies exist to demonstrate. The full-scale committed artifacts
// (figures-out/bigmachine-*.csv) record the headline ratios in their notes.
func TestBigMachineQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full-machine simulated sweeps")
	}
	figs := BigMachine(quick)
	if len(figs) != 3 {
		t.Fatalf("BigMachine returned %d figures, want 3", len(figs))
	}
	wantN := []int{256, 512, 1024}
	for i, f := range figs {
		n := wantN[i]
		if len(f.Series) != len(BigMachineLocks) {
			t.Fatalf("%s: %d series, want %d", f.ID, len(f.Series), len(BigMachineLocks))
		}
		for _, s := range f.Series {
			if s.At(n) <= 0 {
				t.Errorf("%s: %s has zero throughput at full occupancy (%d threads)", f.ID, s.Name, n)
			}
		}
		clofS, ok1 := f.Get("clof:tkt-tkt-tkt-tkt")
		tktS, ok2 := f.Get("tkt")
		if !ok1 || !ok2 {
			t.Fatalf("%s: headline series missing", f.ID)
		}
		if clofS.At(n) <= tktS.At(n) {
			t.Errorf("%s: clof:tkt-tkt-tkt-tkt (%.4f) does not beat tkt (%.4f) at %d threads",
				f.ID, clofS.At(n), tktS.At(n), n)
		}
		for _, note := range f.Notes {
			t.Logf("%s note: %s", f.ID, note)
		}
	}
}
