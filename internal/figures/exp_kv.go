package figures

import (
	"encoding/json"
	"fmt"

	"github.com/clof-go/clof/internal/catalog"
	"github.com/clof-go/clof/internal/exp"
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/obs"
	"github.com/clof-go/clof/internal/store"
	"github.com/clof-go/clof/internal/topo"
	"github.com/clof-go/clof/internal/workload"
)

// Geometry of the sharded-serving experiment, shared with its tests.
const (
	// kvHorizonNS is the virtual run length. Two milliseconds at ~3µs per
	// iteration gives every grid point hundreds of completed operations per
	// thread, enough to resolve the shard-scaling shapes.
	kvHorizonNS = 2_000_000
	// KVThreads is the fixed serving thread count: enough contention that a
	// single global lock is the bottleneck, well under the x86 platform's 96
	// hardware threads so placement stays dense.
	KVThreads = 32
	// kvKeys is the synthetic keyspace size.
	kvKeys = 4096
)

// KVShards is the shard grid — the x-axis of every kv figure. 1 shard is the
// pre-refactor engine: one global lock.
var KVShards = []int{1, 2, 4, 8, 16}

// KVLocks names the catalog entries swept as shard locks: the plain spinlock
// baselines, the reader-writer adapter (shared fast path for the read-heavy
// mixes), the full CLoF composition, and the concurrency-restricted ticket
// lock.
var KVLocks = []string{"tkt", "mcs", "rwlock", "clof:tkt-tkt-tkt-tkt", "cr:tkt"}

// KV measures the sharded serving engine (internal/store, DESIGN.md S32) on
// the simulator: one figure per YCSB-style mix, throughput over shard count
// for each lock family, at a fixed KVThreads serving threads on the x86
// platform. Keys are drawn Zipfian (theta 0.99, hot ranks hash-scattered as
// in YCSB) and routed by hash partition, except the scan mix, which runs
// range-partitioned so merged scans visit consecutive shards the way the
// native store's range router does. Every point attaches a shard-resolved
// obs report (obs.CombineShards) to its manifest record, so results.json
// carries per-shard acquisition counts, hold times, and fairness alongside
// the curves. The headline note — and TestKVQuick's assertion — is the
// refactor's acceptance criterion: sharded rwlock beats the single global
// lock on the read-mostly mix.
func KV(o Options) []*Figure {
	mach := topo.X86Server()
	grid := KVShards
	horizon := int64(kvHorizonNS)
	if o.Quick {
		grid = []int{1, 4, 16}
		horizon /= 2
	}

	var figs []*Figure
	for _, mix := range store.Mixes() {
		mix := mix
		dist, rangePart := store.DistZipfian, false
		if mix.ScanPct > 0 {
			dist, rangePart = store.DistUniform, true
		}
		f := &Figure{
			ID: "kv-" + mix.Name,
			Title: fmt.Sprintf("sharded serving on %s, mix %s (%s keys, %d threads)",
				mach.Name, mix.Name, dist, KVThreads),
			XLabel: "shards",
			YLabel: "iter/us",
		}
		spec := exp.Spec{
			Name: f.ID, Platform: "x86", Workload: "kv",
			Threads: []int{KVThreads}, Runs: o.Runs, Quick: o.Quick,
			Locks: KVLocks,
			Notes: fmt.Sprintf("shard grid %v; dist=%s range=%v; horizon=%dns; keys=%d",
				grid, dist, rangePart, horizon, kvKeys),
		}
		var points []exp.Point
		for _, name := range KVLocks {
			e, err := catalog.Lookup(name)
			if err != nil {
				panic(err)
			}
			for _, s := range grid {
				e, s := e, s
				points = append(points, exp.Point{
					Key: fmt.Sprintf("lock=%s/shards=%d", e.Name, s),
					Run: func(seed uint64) exp.Sample {
						collectors := make([]*obs.Collector, s)
						for i := range collectors {
							collectors[i] = obs.NewCollector(mach, obs.Options{})
						}
						res, err := workload.RunKV(workload.KVConfig{
							Machine: mach, Threads: KVThreads, Shards: s,
							NewShardLock:   func() lockapi.Lock { return e.New(mach) },
							Horizon:        horizon,
							Mix:            mix,
							Dist:           dist,
							RangePartition: rangePart,
							Keys:           kvKeys,
							Seed:           seed,
							Observer:       func(i int) lockapi.Observer { return collectors[i] },
						})
						if err != nil {
							return exp.Sample{Err: err.Error()}
						}
						rep := obs.CombineShards(e.Name, collectors, res.SharedPerShard)
						raw, err := json.Marshal(rep)
						if err != nil {
							return exp.Sample{Err: err.Error()}
						}
						return exp.Sample{
							Throughput: res.ThroughputOpsPerUs(),
							Jain:       res.Jain(),
							Total:      res.Total,
							Metrics:    kvMetrics(res),
							Obs:        raw,
						}
					},
				})
			}
		}
		results := o.runner().Run(spec, points)

		i := 0
		violations := 0.0
		for _, name := range KVLocks {
			s := Series{Name: name}
			for _, n := range grid {
				r := results[i]
				i++
				s.X = append(s.X, n)
				s.Y = append(s.Y, r.Throughput())
				violations += r.Metrics["violations"]
			}
			f.Series = append(f.Series, s)
		}
		f.Notes = append(f.Notes, kvNotes(f, grid, violations)...)
		figs = append(figs, f)
	}
	return figs
}

// kvMetrics extracts the per-point scalars recorded in the manifest: the
// exclusion/shared invariant tally (must be 0), the shared-mode share of all
// shard acquisitions, and the hot shard's fraction of them (attribution skew;
// 1/shards would be a perfectly even split).
func kvMetrics(res workload.KVResult) map[string]float64 {
	var acq, shared, hot uint64
	for i, c := range res.PerShard {
		acq += c
		shared += res.SharedPerShard[i]
		if c > hot {
			hot = c
		}
	}
	m := map[string]float64{
		"violations": float64(res.ExclusionViolations + res.SharedViolations),
	}
	if acq > 0 {
		m["shared_frac"] = float64(shared) / float64(acq)
		m["hot_shard_frac"] = float64(hot) / float64(acq)
	}
	return m
}

// KVSpeedup returns f's throughput ratio of lock at the grid's largest shard
// count over the single-shard (global lock) baseline series — the "what did
// sharding buy" measure. Zero when either series is absent or degenerate.
func KVSpeedup(f *Figure, lock, baseline string, grid []int) float64 {
	s, ok1 := f.Get(lock)
	b, ok2 := f.Get(baseline)
	if !ok1 || !ok2 {
		return 0
	}
	max := grid[len(grid)-1]
	if b.At(1) == 0 {
		return 0
	}
	return s.At(max) / b.At(1)
}

// kvNotes derives the figure's observations: each lock's scaling from 1 shard
// to the grid maximum, the acceptance-criterion headline (sharded rwlock vs
// the 1-shard tkt global lock), and the invariant tally.
func kvNotes(f *Figure, grid []int, violations float64) []string {
	max := grid[len(grid)-1]
	var notes []string
	for _, s := range f.Series {
		scale := 0.0
		if s.At(1) > 0 {
			scale = s.At(max) / s.At(1)
		}
		notes = append(notes, fmt.Sprintf("%s: %.4f at 1 shard, %.4f at %d shards (%.2fx)",
			s.Name, s.At(1), s.At(max), max, scale))
	}
	notes = append(notes, fmt.Sprintf(
		"sharded rwlock (%d shards) vs single global tkt lock: %.2fx",
		max, KVSpeedup(f, "rwlock", "tkt", grid)))
	notes = append(notes, fmt.Sprintf("exclusion/shared violations across the sweep: %.0f", violations))
	return notes
}
