package figures

import (
	"encoding/json"
	"fmt"

	"github.com/clof-go/clof/internal/catalog"
	"github.com/clof-go/clof/internal/exp"
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/obs"
	"github.com/clof-go/clof/internal/store"
	"github.com/clof-go/clof/internal/topo"
	"github.com/clof-go/clof/internal/workload"
)

// Geometry of the sharded-serving experiment, shared with its tests.
const (
	// kvHorizonNS is the virtual run length. Two milliseconds at ~3µs per
	// iteration gives every grid point hundreds of completed operations per
	// thread, enough to resolve the shard-scaling shapes.
	kvHorizonNS = 2_000_000
	// KVThreads is the fixed serving thread count: enough contention that a
	// single global lock is the bottleneck, well under either platform's
	// hardware thread count so placement stays dense.
	KVThreads = 32
	// kvKeys is the synthetic keyspace size.
	kvKeys = 4096
)

// KVShards is the shard grid — the x-axis of every kv figure. 1 shard is the
// pre-refactor engine: one global lock.
var KVShards = []int{1, 2, 4, 8, 16}

// KVPessimisticLocks names the catalog entries whose every read takes a shard
// lock (exclusive or shared): the plain spinlock baselines, the reader-writer
// adapter (shared fast path for the read-heavy mixes), the full CLoF
// composition, and the concurrency-restricted ticket lock. The optimistic
// acceptance criterion (TestKVQuick) quantifies over exactly this list.
var KVPessimisticLocks = []string{"tkt", "mcs", "rwlock", "clof:tkt-tkt-tkt-tkt", "cr:tkt"}

// KVSeqLocks names the seq: family entries swept alongside them: readers
// validate a version word instead of acquiring, so the read path performs no
// atomic read-modify-write at all (DESIGN.md S33).
var KVSeqLocks = []string{"seq:tkt", "seq:clof:tkt-tkt-tkt-tkt"}

// KVLocks is the full lock sweep of every kv figure.
var KVLocks = append(append([]string{}, KVPessimisticLocks...), KVSeqLocks...)

// KV measures the sharded serving engine (internal/store, DESIGN.md S32) on
// the simulator: one figure per YCSB-style mix, throughput over shard count
// for each lock family, at a fixed KVThreads serving threads on the x86
// platform — plus the read-mostly mix repeated on the Armv8 platform, the
// figure the optimistic-read acceptance criterion quantifies over on both
// modeled architectures. Keys are drawn Zipfian (theta 0.99, hot ranks
// hash-scattered as in YCSB) and routed by hash partition, except the scan
// mix, which runs range-partitioned so merged scans visit consecutive shards
// the way the native store's range router does. Every point attaches a
// shard-resolved obs report (obs.CombineShards) to its manifest record, so
// results.json carries per-shard acquisition counts, hold times, OCC
// retry/fallback tallies, and fairness alongside the curves. The headline
// notes — and TestKVQuick's assertions — are the acceptance criteria: sharded
// rwlock beats the single global lock on the read-mostly mix, and the
// optimistic seq: rows beat every pessimistic lock there, rwlock included.
func KV(o Options) []*Figure {
	var figs []*Figure
	for _, mix := range store.Mixes() {
		figs = append(figs, kvFigure(o, topo.X86Server(), "x86", "", mix))
	}
	figs = append(figs, kvFigure(o, topo.Armv8Server(), "armv8", "-armv8", store.ReadMostly))
	return figs
}

// KVOCC is the focused alias behind `clof-figures -exp occ`: just the two
// read-mostly sweeps (x86 and Armv8) the optimistic-read acceptance criterion
// is asserted on, skipping the write-heavy/rmw/scan panels. Figure IDs match
// KV's, so the emitted CSVs are the same artifacts.
func KVOCC(o Options) []*Figure {
	return []*Figure{
		kvFigure(o, topo.X86Server(), "x86", "", store.ReadMostly),
		kvFigure(o, topo.Armv8Server(), "armv8", "-armv8", store.ReadMostly),
	}
}

// kvFigure runs one mix on one platform. idSuffix distinguishes the non-x86
// repeats ("" for the x86 panels, "-armv8" for the Kunpeng read-mostly one).
func kvFigure(o Options, mach *topo.Machine, platform, idSuffix string, mix store.Mix) *Figure {
	grid := KVShards
	horizon := int64(kvHorizonNS)
	if o.Quick {
		grid = []int{1, 4, 16}
		horizon /= 2
	}

	dist, rangePart := store.DistZipfian, false
	if mix.ScanPct > 0 {
		dist, rangePart = store.DistUniform, true
	}
	f := &Figure{
		ID: "kv-" + mix.Name + idSuffix,
		Title: fmt.Sprintf("sharded serving on %s, mix %s (%s keys, %d threads)",
			mach.Name, mix.Name, dist, KVThreads),
		XLabel: "shards",
		YLabel: "iter/us",
	}
	spec := exp.Spec{
		Name: f.ID, Platform: platform, Workload: "kv",
		Threads: []int{KVThreads}, Runs: o.Runs, Quick: o.Quick,
		Locks: KVLocks,
		Notes: fmt.Sprintf("shard grid %v; dist=%s range=%v; horizon=%dns; keys=%d",
			grid, dist, rangePart, horizon, kvKeys),
	}
	var points []exp.Point
	for _, name := range KVLocks {
		e, err := catalog.Lookup(name)
		if err != nil {
			panic(err)
		}
		for _, s := range grid {
			e, s := e, s
			points = append(points, exp.Point{
				Key: fmt.Sprintf("lock=%s/shards=%d", e.Name, s),
				Run: func(seed uint64) exp.Sample {
					collectors := make([]*obs.Collector, s)
					for i := range collectors {
						collectors[i] = obs.NewCollector(mach, obs.Options{})
					}
					res, err := workload.RunKV(workload.KVConfig{
						Machine: mach, Threads: KVThreads, Shards: s,
						NewShardLock:   func() lockapi.Lock { return e.New(mach) },
						Horizon:        horizon,
						Mix:            mix,
						Dist:           dist,
						RangePartition: rangePart,
						Keys:           kvKeys,
						Seed:           seed,
						Observer:       func(i int) lockapi.Observer { return collectors[i] },
					})
					if err != nil {
						return exp.Sample{Err: err.Error()}
					}
					rep := obs.CombineShards(e.Name, collectors, res.SharedPerShard, res.OCCStats())
					raw, err := json.Marshal(rep)
					if err != nil {
						return exp.Sample{Err: err.Error()}
					}
					return exp.Sample{
						Throughput: res.ThroughputOpsPerUs(),
						Jain:       res.Jain(),
						Total:      res.Total,
						Metrics:    kvMetrics(res),
						Obs:        raw,
					}
				},
			})
		}
	}
	results := o.runner().Run(spec, points)

	i := 0
	violations := 0.0
	for _, name := range KVLocks {
		s := Series{Name: name}
		for _, n := range grid {
			r := results[i]
			i++
			s.X = append(s.X, n)
			s.Y = append(s.Y, r.Throughput())
			violations += r.Metrics["violations"]
		}
		f.Series = append(f.Series, s)
	}
	f.Notes = append(f.Notes, kvNotes(f, grid, violations)...)
	return f
}

// kvMetrics extracts the per-point scalars recorded in the manifest: the
// invariant tally (exclusion and shared-mode violations plus torn optimistic
// reads certified by a passing validation — all must be 0), the shared-mode
// share of all shard acquisitions, the hot shard's fraction of them
// (attribution skew; 1/shards would be a perfectly even split), and — for the
// seq: rows — the optimistic-read volume with its validation-failure and
// pessimistic-fallback tallies.
func kvMetrics(res workload.KVResult) map[string]float64 {
	var acq, shared, hot uint64
	for i, c := range res.PerShard {
		acq += c
		shared += res.SharedPerShard[i]
		if c > hot {
			hot = c
		}
	}
	var opt, vfail, fall uint64
	for i := range res.OptimisticPerShard {
		opt += res.OptimisticPerShard[i]
		vfail += res.OCCValidationFailsPerShard[i]
		fall += res.OCCFallbacksPerShard[i]
	}
	m := map[string]float64{
		"violations": float64(res.ExclusionViolations + res.SharedViolations + res.TornReads),
	}
	if acq > 0 {
		m["shared_frac"] = float64(shared) / float64(acq)
		m["hot_shard_frac"] = float64(hot) / float64(acq)
	}
	if opt > 0 {
		m["occ_optimistic"] = float64(opt)
		m["occ_vfail_frac"] = float64(vfail) / float64(opt)
		m["occ_fallbacks"] = float64(fall)
	}
	return m
}

// KVSpeedup returns f's throughput ratio of lock at the grid's largest shard
// count over the single-shard (global lock) baseline series — the "what did
// sharding buy" measure. Zero when either series is absent or degenerate.
func KVSpeedup(f *Figure, lock, baseline string, grid []int) float64 {
	s, ok1 := f.Get(lock)
	b, ok2 := f.Get(baseline)
	if !ok1 || !ok2 {
		return 0
	}
	max := grid[len(grid)-1]
	if b.At(1) == 0 {
		return 0
	}
	return s.At(max) / b.At(1)
}

// KVRatioAt returns f's throughput ratio of lock a over lock b at the given
// shard count — the same-geometry comparison the optimistic-read criterion
// uses (seq: row over each pessimistic row at the grid maximum). Zero when
// either series is absent or b is degenerate there.
func KVRatioAt(f *Figure, a, b string, shards int) float64 {
	sa, ok1 := f.Get(a)
	sb, ok2 := f.Get(b)
	if !ok1 || !ok2 || sb.At(shards) == 0 {
		return 0
	}
	return sa.At(shards) / sb.At(shards)
}

// kvNotes derives the figure's observations: each lock's scaling from 1 shard
// to the grid maximum, the two acceptance-criterion headlines (sharded rwlock
// vs the 1-shard tkt global lock; the optimistic seq:tkt row vs the best-case
// pessimistic reader, rwlock, at equal shards), and the invariant tally.
func kvNotes(f *Figure, grid []int, violations float64) []string {
	max := grid[len(grid)-1]
	var notes []string
	for _, s := range f.Series {
		scale := 0.0
		if s.At(1) > 0 {
			scale = s.At(max) / s.At(1)
		}
		notes = append(notes, fmt.Sprintf("%s: %.4f at 1 shard, %.4f at %d shards (%.2fx)",
			s.Name, s.At(1), s.At(max), max, scale))
	}
	notes = append(notes, fmt.Sprintf(
		"sharded rwlock (%d shards) vs single global tkt lock: %.2fx",
		max, KVSpeedup(f, "rwlock", "tkt", grid)))
	notes = append(notes, fmt.Sprintf(
		"optimistic seq:tkt vs sharded rwlock at %d shards: %.2fx",
		max, KVRatioAt(f, "seq:tkt", "rwlock", max)))
	notes = append(notes, fmt.Sprintf("exclusion/shared/torn violations across the sweep: %.0f", violations))
	return notes
}
