package figures

import (
	"bytes"
	"strings"
	"testing"
)

// quick is the reduced-scale option set used by all shape tests.
var quick = Options{Quick: true}

func TestTable1Aspects(t *testing.T) {
	rows := Aspects()
	byName := map[string]AspectRow{}
	for _, r := range rows {
		byName[r.Algorithm] = r
	}
	clofRow := byName["clof"]
	if !(clofRow.MultiLevel && clofRow.Heterogeneous && clofRow.ArchOptimized && clofRow.WMMCorrect) {
		t.Error("CLoF must cover all four aspects")
	}
	if byName["cna"].MultiLevel || byName["shfllock"].MultiLevel {
		t.Error("CNA/ShflLock must not claim multi-level support")
	}
	if !byName["hmcs"].MultiLevel || byName["hmcs"].Heterogeneous {
		t.Error("HMCS is multi-level but homogeneous")
	}
	if !byName["cohort"].Heterogeneous || byName["cohort"].MultiLevel {
		t.Error("cohorting is heterogeneous but 2-level")
	}
	var buf bytes.Buffer
	if err := Table1().WriteASCII(&buf); err != nil || !strings.Contains(buf.String(), "clof") {
		t.Errorf("Table1 rendering broken: %v\n%s", err, buf.String())
	}
}

func TestFig1HeatmapShape(t *testing.T) {
	x86, arm := Fig1(quick)
	// Near-diagonal pairs must beat the farthest pairs on both platforms.
	last := len(x86.Tput) - 1
	if x86.Tput[0][1] <= x86.Tput[0][last] {
		t.Errorf("x86: near pair %.2f not above far pair %.2f", x86.Tput[0][1], x86.Tput[0][last])
	}
	lastA := len(arm.Tput) - 1
	if arm.Tput[0][1] <= arm.Tput[0][lastA] {
		t.Errorf("arm: near pair %.2f not above far pair %.2f", arm.Tput[0][1], arm.Tput[0][lastA])
	}
}

func TestTable2Shape(t *testing.T) {
	f := Table2(quick)
	for _, pl := range []string{"x86", "armv8"} {
		meas, ok1 := f.Get(pl + "-measured")
		ref, ok2 := f.Get(pl + "-paper")
		if !ok1 || !ok2 {
			t.Fatalf("%s series missing", pl)
		}
		for i, x := range ref.X {
			got := meas.At(x)
			want := ref.Y[i]
			if got < want*0.7 || got > want*1.3 {
				t.Errorf("%s level %d: measured %.2f vs paper %.2f (±30%%)", pl, x, got, want)
			}
		}
	}
}

func TestDetectedHierarchiesMatchPaper(t *testing.T) {
	got := DetectedHierarchies(quick)
	want := []string{
		"x86-epyc7352-2s[core,cache-group,numa,system]",
		"armv8-kunpeng920-2s[cache-group,numa,package,system]",
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("detected[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

// TestFig2Shape asserts the paper's Fig. 2 findings on x86:
//   - HMCS<2> outperforms MCS after the NUMA level is crossed;
//   - HMCS<4> is the best HMCS at high contention (cache-group level pays);
//   - CLoF<4> is at least on par with HMCS<4> at high contention.
func TestFig2Shape(t *testing.T) {
	f := Fig2(quick)
	at := func(name string, n int) float64 {
		s, ok := f.Get(name)
		if !ok {
			// series names embed compositions; search by prefix
			for _, ss := range f.Series {
				if strings.HasPrefix(ss.Name, name) {
					return ss.At(n)
				}
			}
			t.Fatalf("series %q missing", name)
		}
		return s.At(n)
	}
	max := 95
	if at("hmcs<2>", max) <= at("mcs", max) {
		t.Errorf("HMCS<2> (%.2f) not above MCS (%.2f) at %d threads", at("hmcs<2>", max), at("mcs", max), max)
	}
	if at("hmcs<4>", max) <= at("hmcs<3>", max) {
		t.Errorf("HMCS<4> (%.2f) not above HMCS<3> (%.2f) at %d threads: cache-group level should pay",
			at("hmcs<4>", max), at("hmcs<3>", max), max)
	}
	// Known deviation (EXPERIMENTS.md): the paper measures CLoF ahead of
	// HMCS by 4-33%; our in-order cost model cannot credit the memory-level
	// parallelism that hides CLoF's extra metadata-line accesses, so we
	// require parity within 10% instead.
	if at("clof<4>-x86", max) < 0.90*at("hmcs<4>", max) {
		t.Errorf("CLoF<4> (%.2f) clearly below HMCS<4> (%.2f) at high contention", at("clof<4>-x86", max), at("hmcs<4>", max))
	}
	if at("mcs", 1) < 0.15 || at("mcs", 1) > 0.8 {
		t.Errorf("single-thread throughput %.2f outside paper ballpark", at("mcs", 1))
	}
}

// TestFig3Shape asserts the paper's Fig. 3 findings:
//   - Ticketlock is competitive at the system level but weak at the NUMA
//     level (global spinning storm);
//   - Hemlock with CTR collapses on Armv8 but not on x86.
func TestFig3Shape(t *testing.T) {
	figs := Fig3(quick)
	get := func(figIdx int, lock string, lvl int) float64 {
		s, ok := figs[figIdx].Get(lock)
		if !ok {
			t.Fatalf("missing series %s", lock)
		}
		return s.At(lvl)
	}
	const numaLvl, sysLvl = 2, 4
	for i, pl := range []string{"x86", "armv8"} {
		// System level: only 2 threads; ticket must be within 10% of the
		// best (the paper shows it slightly ahead).
		best := 0.0
		for _, l := range []string{"tkt", "mcs", "clh", "hem"} {
			if v := get(i, l, sysLvl); v > best {
				best = v
			}
		}
		if tkt := get(i, "tkt", sysLvl); tkt < 0.9*best {
			t.Errorf("%s system level: ticket %.3f well below best %.3f", pl, tkt, best)
		}
		// NUMA level: ticket must be clearly below the best queue lock.
		bestQ := get(i, "mcs", numaLvl)
		if v := get(i, "clh", numaLvl); v > bestQ {
			bestQ = v
		}
		if tkt := get(i, "tkt", numaLvl); tkt > 0.8*bestQ {
			t.Errorf("%s numa level: ticket %.3f not clearly below best queue lock %.3f", pl, tkt, bestQ)
		}
	}
	// CTR asymmetry at the numa level.
	if ctr, plain := get(0, "hem-ctr", numaLvl), get(0, "hem", numaLvl); ctr < 0.85*plain {
		t.Errorf("x86 hem-ctr (%.3f) must not collapse vs hem (%.3f)", ctr, plain)
	}
	if ctr, plain := get(1, "hem-ctr", numaLvl), get(1, "hem", numaLvl); ctr > 0.4*plain {
		t.Errorf("armv8 hem-ctr (%.3f) must collapse vs hem (%.3f)", ctr, plain)
	}
}

// TestFig4Shape asserts the paper's Fig. 4 findings on Armv8:
//   - CNA/ShflLock trail MCS at low-mid contention (shuffling overhead)
//     and beat it at full contention;
//   - CLoF<4> tops everything at high contention and clearly beats
//     CNA/ShflLock (paper: up to ~2x).
func TestFig4Shape(t *testing.T) {
	f := Fig4(quick)
	at := func(prefix string, n int) float64 {
		for _, s := range f.Series {
			if strings.HasPrefix(s.Name, prefix) {
				return s.At(n)
			}
		}
		t.Fatalf("series %q missing", prefix)
		return 0
	}
	const max = 127
	if at("cna", 8) >= at("mcs", 8) {
		t.Errorf("CNA (%.2f) above MCS (%.2f) at 8 threads; expected shuffling overhead", at("cna", 8), at("mcs", 8))
	}
	if at("cna", max) <= at("mcs", max) {
		t.Errorf("CNA (%.2f) below MCS (%.2f) at %d threads", at("cna", max), at("mcs", max), max)
	}
	clofHigh, cnaHigh := at("clof<4>-arm", max), at("cna", max)
	// Parity-within-10% vs HMCS (see EXPERIMENTS.md deviation note).
	if clofHigh <= at("hmcs<4>", max)*0.90 {
		t.Errorf("CLoF<4> (%.2f) clearly below HMCS<4> (%.2f) at max contention", clofHigh, at("hmcs<4>", max))
	}
	if clofHigh < 1.3*cnaHigh {
		t.Errorf("CLoF<4> (%.2f) not clearly above CNA (%.2f) at max contention", clofHigh, cnaHigh)
	}
}

// TestFig9PanelShape runs one reduced sweep (Armv8, 3-level = 64 locks) and
// asserts the selection findings of §4.3/Fig. 9.
func TestFig9PanelShape(t *testing.T) {
	if testing.Short() {
		t.Skip("composition sweep is expensive")
	}
	res := Fig9Panel(Arm(), 3, quick)
	sel := res.Selection
	maxT := 127
	hcAtMax := sel.HCBest.Score(0) // HC policy
	worstAtMax := sel.Worst.Score(0)
	if hcAtMax <= worstAtMax {
		t.Errorf("HC-best score %.3f not above worst %.3f", hcAtMax, worstAtMax)
	}
	// The worst lock should place Ticketlock at the NUMA level (§5.2.2).
	if sel.Worst.Comp[1].Name != "tkt" {
		t.Logf("note: worst composition is %s (paper found tkt at numa)", sel.Worst.Comp)
	}
	// LC-best must win at 1 thread within tolerance of every composition.
	lc1 := sel.LCBest.Points[0].Throughput
	for _, m := range sel.All {
		if m.Points[0].Throughput > lc1*1.10 {
			t.Errorf("composition %s beats LC-best by >10%% at 1 thread", m.Comp)
			break
		}
	}
	// HC-best must beat HMCS at max contention.
	hm, ok := res.Figure.Get("hmcs<3>")
	if !ok {
		t.Fatal("hmcs series missing")
	}
	var hcSeries Series
	for _, s := range res.Figure.Series {
		if strings.HasPrefix(s.Name, "HC-best") {
			hcSeries = s
			break
		}
	}
	// Parity-within-10% vs HMCS (see EXPERIMENTS.md deviation note).
	if hcSeries.At(maxT) < 0.90*hm.At(maxT) {
		t.Errorf("HC-best (%.2f) clearly below HMCS<3> (%.2f) at %d threads", hcSeries.At(maxT), hm.At(maxT), maxT)
	}
}

// TestFig10Shape asserts cross-platform deterioration and the Kyoto axis.
func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig10 is expensive")
	}
	o := quick
	o.Runs = 1
	figs := Fig10(o)
	byID := map[string]*Figure{}
	for _, f := range figs {
		byID[f.ID] = f
	}
	at := func(f *Figure, prefix string, n int) float64 {
		for _, s := range f.Series {
			if strings.HasPrefix(s.Name, prefix) {
				return s.At(n)
			}
		}
		t.Fatalf("series %q missing in %s", prefix, f.ID)
		return 0
	}
	ldbX86 := byID["fig10-leveldb-x86"]
	ldbArm := byID["fig10-leveldb-armv8"]
	kyoX86 := byID["fig10-kyoto-x86"]
	// Native best must not lose to the cross-platform lock at high contention.
	if at(ldbX86, "clof<4>-x86", 95) < at(ldbX86, "clof<4>-arm", 95)*0.95 {
		t.Errorf("x86: native clof<4>-x86 (%.2f) loses to transplanted clof<4>-arm (%.2f)",
			at(ldbX86, "clof<4>-x86", 95), at(ldbX86, "clof<4>-arm", 95))
	}
	if at(ldbArm, "clof<4>-arm", 127) < at(ldbArm, "clof<4>-x86", 127)*0.95 {
		t.Errorf("arm: native clof<4>-arm (%.2f) loses to transplanted clof<4>-x86 (%.2f)",
			at(ldbArm, "clof<4>-arm", 127), at(ldbArm, "clof<4>-x86", 127))
	}
	// CLoF<4> must clearly beat CNA/Shfl at max contention (paper: ~2x).
	if at(ldbArm, "clof<4>-arm", 127) < 1.3*at(ldbArm, "cna", 127) {
		t.Errorf("arm leveldb: clof<4> (%.2f) not clearly above cna (%.2f)",
			at(ldbArm, "clof<4>-arm", 127), at(ldbArm, "cna", 127))
	}
	// Kyoto's absolute throughput is an order of magnitude below LevelDB.
	if at(kyoX86, "hmcs<4>", 32) > at(ldbX86, "hmcs<4>", 32)/4 {
		t.Errorf("kyoto (%.3f) not well below leveldb (%.3f)",
			at(kyoX86, "hmcs<4>", 32), at(ldbX86, "hmcs<4>", 32))
	}
}

// TestCompositionAnalysisShape: tkt at the NUMA level craters throughput at
// high contention (§5.2.2).
func TestCompositionAnalysisShape(t *testing.T) {
	f := CompositionAnalysis(quick)
	good, _ := f.Get(PaperLC4Arm)
	bad, _ := f.Get("tkt-tkt-tkt-tkt")
	// Direction check: Ticketlock at the NUMA level must cost clearly
	// measurable throughput (the paper's worst locks all share this trait;
	// the magnitude there is larger because its NUMA-level handovers are
	// more frequent under LD_PRELOAD-era LevelDB than under our preset).
	if bad.At(127) > 0.90*good.At(127) {
		t.Errorf("tkt-at-numa (%.2f) not below clh-at-numa (%.2f) at 127 threads", bad.At(127), good.At(127))
	}
}

// TestFairnessShape: CLoF's Jain index must track HMCS closely (§5.2.3).
func TestFairnessShape(t *testing.T) {
	f := Fairness(quick)
	for _, arch := range []string{"x86", "armv8"} {
		c, ok1 := f.Get("clof<4>-" + arch)
		h, ok2 := f.Get("hmcs<4>-" + arch)
		if !ok1 || !ok2 {
			t.Fatalf("%s fairness series missing", arch)
		}
		for i, x := range c.X {
			if d := c.Y[i] - h.At(x); d < -0.2 || d > 0.2 {
				t.Errorf("%s at %d threads: jain clof %.2f vs hmcs %.2f", arch, x, c.Y[i], h.At(x))
			}
		}
	}
}

// TestAblations: the keep_local threshold must matter (H=1 clearly worse
// than H=128 at contention) and the custom has_waiters path must not lose
// to the counter.
func TestAblations(t *testing.T) {
	kl := AblationKeepLocal(quick)
	tput, _ := kl.Get("throughput")
	if tput.At(1) >= tput.At(128) {
		t.Errorf("keep_local H=1 (%.2f) not below H=128 (%.2f)", tput.At(1), tput.At(128))
	}
	hw := AblationHasWaiters(quick)
	custom, _ := hw.Get("custom-detector")
	counter, _ := hw.Get("waiters-counter")
	if custom.At(95) < 0.9*counter.At(95) {
		t.Errorf("custom has_waiters (%.2f) clearly loses to counter (%.2f)", custom.At(95), counter.At(95))
	}
	fp := AblationFastPath(quick)
	plain, _ := fp.Get("plain")
	fast, _ := fp.Get("tas-fastpath")
	if fast.At(1) <= plain.At(1) {
		t.Errorf("fast path (%.2f) not above plain (%.2f) at 1 thread", fast.At(1), plain.At(1))
	}
	if fast.At(127) < 0.85*plain.At(127) {
		t.Errorf("fast path collapsed under load: %.2f vs %.2f", fast.At(127), plain.At(127))
	}
}

func TestVerificationTableQuick(t *testing.T) {
	rows := VerificationTable(quick)
	for _, r := range rows {
		negative := strings.HasPrefix(r.Program, "NEGATIVE")
		if negative && r.Result.OK {
			t.Errorf("%s: expected a violation, got clean verification", r.Program)
		}
		if !negative && !r.Result.OK {
			t.Errorf("%s: %s", r.Program, r.Result.Violation)
		}
	}
}

func TestCSVAndASCIIRendering(t *testing.T) {
	f := &Figure{
		ID: "t", Title: "x", XLabel: "threads", YLabel: "y",
		Series: []Series{{Name: "a", X: []int{1, 2}, Y: []float64{0.5, 1}}},
		Notes:  []string{"n1"},
	}
	var csv, ascii bytes.Buffer
	if err := f.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	out := csv.String()
	if !strings.Contains(out, "threads,a") || !strings.Contains(out, "1,0.5000") || !strings.Contains(out, "# note: n1") {
		t.Errorf("csv malformed:\n%s", out)
	}
	if err := f.WriteASCII(&ascii); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ascii.String(), "t — x") {
		t.Errorf("ascii malformed:\n%s", ascii.String())
	}
}
