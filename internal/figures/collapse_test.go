package figures

import "testing"

// TestCollapseQuick asserts the robustness claim of the collapse experiment
// at reduced scale: past the saturation point the raw Ticketlock loses a
// large fraction of its peak throughput, while the concurrency-restricted
// wrapping keeps its past-saturation floor close to its own peak — and no
// thread starves while the passive set waits. The full-scale committed
// artifact (figures-out/collapse-*.csv) asserts the paper-strength bounds
// (>= 2x collapse, >= 80% retention) in its notes.
func TestCollapseQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-millisecond simulated horizons")
	}
	figs := Collapse(quick)
	if len(figs) != 2 {
		t.Fatalf("Collapse returned %d figures, want 2", len(figs))
	}
	for _, f := range figs {
		raw, ok := f.Get("tkt")
		if !ok {
			t.Fatalf("%s: tkt series missing", f.ID)
		}
		cr, ok := f.Get("cr:tkt")
		if !ok {
			t.Fatalf("%s: cr:tkt series missing", f.ID)
		}
		rs, cs := SeriesStats(raw), SeriesStats(cr)
		t.Logf("%s: tkt peak %.4f floor %.4f; cr:tkt peak %.4f floor %.4f (retention %.2f)",
			f.ID, rs.Peak, rs.TailFloor, cs.Peak, cs.TailFloor, cs.Retention())
		for _, n := range f.Notes {
			t.Logf("%s note: %s", f.ID, n)
		}
		if rs.TailFloor <= 0 || cs.TailFloor <= 0 {
			t.Fatalf("%s: degenerate sweep (zero throughput past saturation)", f.ID)
		}
		// The raw lock must collapse harder than the restricted one retains:
		// quick mode halves the horizon, so assert with margin against the
		// full-scale bounds.
		if ratio := rs.Peak / rs.TailFloor; ratio < 1.5 {
			t.Errorf("%s: tkt collapse %.2fx, want >= 1.5x", f.ID, ratio)
		}
		if cs.Retention() < 0.7 {
			t.Errorf("%s: cr:tkt retention %.2f, want >= 0.7", f.ID, cs.Retention())
		}
		// Restriction must not trade throughput retention for starvation:
		// the per-lock watchdog tally for the cr wrappers must be zero.
		// (The raw clof baseline DOES starve SMT siblings on this topology —
		// that observation stays in the notes as part of the motivation.)
		wantNote := "starved threads under cr wrappers: cr:tkt=0 cr:clof:tkt-tkt-tkt-tkt=0 (restriction parks waiters without starving them)"
		found := false
		for _, n := range f.Notes {
			if n == wantNote {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: cr starvation note missing or nonzero; notes: %q", f.ID, f.Notes)
		}
	}
}
