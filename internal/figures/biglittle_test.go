package figures

import (
	"strings"
	"testing"
)

// TestBigLittleShape: on the asymmetric SoC, a cluster-aware composed lock
// must (a) not lose to the oblivious MCS at full contention, and (b) batch
// work onto whichever cluster holds the lock — visible as a larger big-
// cluster share than MCS's FIFO rotation gives.
func TestBigLittleShape(t *testing.T) {
	f := BigLittle(quick)
	at := func(prefix string, n int) float64 {
		for _, s := range f.Series {
			if strings.HasPrefix(s.Name, prefix) {
				return s.At(n)
			}
		}
		t.Fatalf("series %q missing", prefix)
		return 0
	}
	if at("clof tkt-tkt", 8) < 0.95*at("mcs", 8) {
		t.Errorf("cluster-aware clof (%.3f) loses to oblivious mcs (%.3f) at 8 threads",
			at("clof tkt-tkt", 8), at("mcs", 8))
	}
	if len(f.Notes) < 2 {
		t.Fatalf("per-cluster split notes missing: %v", f.Notes)
	}
	for _, n := range f.Notes {
		if !strings.Contains(n, "big cluster") {
			t.Errorf("malformed note: %s", n)
		}
	}
}
