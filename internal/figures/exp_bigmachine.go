package figures

import (
	"fmt"

	"github.com/clof-go/clof/internal/catalog"
	"github.com/clof-go/clof/internal/exp"
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/topo"
	"github.com/clof-go/clof/internal/workload"
)

// BigMachineLocks names the catalog entries the bigmachine experiment
// sweeps: the two flat baselines whose collapse motivates hierarchy, the
// NUMA-aware singles, the fixed hierarchical baselines, and three CLoF
// compositions (including the TAS fast path, whose single-thread win the
// low-contention grid points exercise).
var BigMachineLocks = []string{
	"tkt", "mcs",
	"hbo", "cna", "shfllock",
	"hmcs<4>", "c-tkt-tkt",
	"clof:tkt-tkt-tkt-tkt", "clof:mcs-mcs-mcs-mcs", "clof:tas-fastpath",
}

// bigMachineGrid is the thread grid for a deep machine of n vCPUs: the
// low-contention foot, one point per topology boundary (cluster, die,
// socket), and the full machine.
func bigMachineGrid(o Options, n int) []int {
	if o.Quick {
		return []int{1, 64, n}
	}
	grid := []int{1, 8, 64}
	for x := 256; x <= n; x *= 2 {
		grid = append(grid, x)
	}
	return grid
}

// BigMachine sweeps the lock catalog selection over the deep 256/512/1024-
// vCPU topologies (topo.DeepServers), one figure per machine: LevelDB-shaped
// contention from a single thread up to every vCPU on the box. This is the
// scaling experiment of EXPERIMENTS.md "Scaling the substrate": the paper's
// evaluation stops at 128 CPUs, and these panels extrapolate its central
// claim — compositional locks keep their advantage as machines deepen —
// one topology generation out, where a global-spinning baseline has a
// thousand waiters hammering one line.
func BigMachine(o Options) []*Figure {
	var figs []*Figure
	for _, mach := range topo.DeepServers() {
		mach := mach
		n := mach.NumCPUs()
		grid := bigMachineGrid(o, n)
		f := &Figure{
			ID:     fmt.Sprintf("bigmachine-%d", n),
			Title:  fmt.Sprintf("catalog locks on %s (%d vCPUs, 4 levels)", mach.Name, n),
			XLabel: "threads",
			YLabel: "iter/us",
		}
		var entries []lockEntry
		for _, name := range BigMachineLocks {
			e, err := catalog.Lookup(name)
			if err != nil {
				panic(err)
			}
			entries = append(entries, lockEntry{
				name: e.Name,
				mk:   func() lockapi.Lock { return e.New(mach) },
			})
		}
		spec := exp.Spec{
			Name: f.ID, Platform: mach.Name, Workload: "leveldb",
			Runs:  o.Runs,
			Notes: fmt.Sprintf("deep topology %s: %d vCPUs over 4 distinct levels", mach.Name, n),
		}
		f.Series = runCurves(o, spec, entries,
			func(threads int) workload.Config { return o.adjust(workload.LevelDB(mach, threads)) },
			grid)
		f.Notes = append(f.Notes, bigMachineNotes(f, n)...)
		figs = append(figs, f)
	}
	return figs
}

// bigMachineNotes derives the panel's observations: the best lock at full
// occupancy, and the full-machine advantage of the canonical CLoF
// composition over the flat ticket lock (the headline scaling claim).
func bigMachineNotes(f *Figure, n int) []string {
	var notes []string
	bestName, bestY := "", 0.0
	for _, s := range f.Series {
		if y := s.At(n); y > bestY {
			bestName, bestY = s.Name, y
		}
	}
	if bestName != "" {
		notes = append(notes, fmt.Sprintf("best at %d threads: %s (%.4f iter/us)", n, bestName, bestY))
	}
	clofS, ok1 := f.Get("clof:tkt-tkt-tkt-tkt")
	tktS, ok2 := f.Get("tkt")
	if ok1 && ok2 && tktS.At(n) > 0 {
		notes = append(notes, fmt.Sprintf(
			"clof:tkt-tkt-tkt-tkt vs tkt at %d threads: %.4f vs %.4f iter/us (%.1fx)",
			n, clofS.At(n), tktS.At(n), clofS.At(n)/tktS.At(n)))
	}
	return notes
}
