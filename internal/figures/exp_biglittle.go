package figures

import (
	"fmt"

	"github.com/clof-go/clof/internal/exp"
	"github.com/clof-go/clof/internal/topo"
	"github.com/clof-go/clof/internal/workload"
)

// BigLittle is the paper's §7 future-work investigation: CLoF on an
// asymmetric (big.LITTLE) SoC, where the two core clusters form cohorts
// with different compute speeds. The experiment contends all 8 cores on the
// LevelDB-shaped workload with the LITTLE cluster 3x slower and compares a
// cluster-oblivious MCS lock against cluster-aware composed locks, also
// reporting how throughput splits between the clusters.
func BigLittle(o Options) *Figure {
	m := topo.BigLittleSoC()
	h := topo.MustHierarchy(m, topo.CacheGroup, topo.System)
	speeds := topo.BigLittleSpeeds(m, 3.0)

	f := &Figure{
		ID:     "biglittle",
		Title:  "big.LITTLE SoC (§7 future work): cluster-aware vs oblivious locks, LITTLE 3x slower",
		XLabel: "threads",
		YLabel: "iter/us",
	}
	grid := []int{2, 4, 8}
	entries := []lockEntry{
		{"mcs (cluster-oblivious)", basicFactory("mcs")},
		{"clof tkt-tkt (cluster-aware)", clofFactory(h, "tkt-tkt")},
		{"clof clh-tkt (cluster-aware)", clofFactory(h, "clh-tkt")},
		{"hmcs<2>", hmcsFactory(h)},
	}
	cfgFor := func(n int) workload.Config {
		cfg := o.adjust(workload.LevelDB(m, n))
		cfg.CPUSpeed = speeds
		return cfg
	}
	spec := exp.Spec{
		Name: "biglittle", Platform: "biglittle", Workload: "leveldb",
		Notes: "asymmetric SoC, LITTLE cluster 3x slower",
	}
	f.Series = runCurves(o, spec, entries, cfgFor, grid)

	// Per-cluster throughput split at full contention for the two extremes.
	for _, e := range []struct {
		name string
		mk   workload.LockFactory
	}{
		{"mcs", basicFactory("mcs")},
		{"clof tkt-tkt", clofFactory(h, "tkt-tkt")},
	} {
		cfg := o.adjust(workload.LevelDB(m, 8))
		cfg.CPUSpeed = speeds
		res, err := workload.Run(e.mk, cfg)
		if err != nil {
			continue
		}
		var big, little uint64
		for i, c := range res.PerThread {
			if m.CohortOf(i, topo.CacheGroup) == 0 {
				big += c
			} else {
				little += c
			}
		}
		f.Notes = append(f.Notes, fmt.Sprintf(
			"%s at 8 threads: big cluster %d ops, LITTLE cluster %d ops (%.0f%% big)",
			e.name, big, little, 100*float64(big)/float64(big+little)))
	}
	return f
}
