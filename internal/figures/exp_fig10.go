package figures

import (
	"github.com/clof-go/clof/internal/topo"
	"github.com/clof-go/clof/internal/workload"
)

// Fig10 reproduces the cross-benchmark, cross-platform validation (paper
// Fig. 10): on each platform and for both workloads (LevelDB, Kyoto
// Cabinet), the LC-best CLoF locks of *both* platforms (3- and 4-level)
// against HMCS⟨4⟩, CNA and ShflLock. Running a lock selected for the other
// platform shows that best locks do not transfer (§5.3.1).
//
// Four panels: fig10-{leveldb,kyoto}-{x86,armv8}.
func Fig10(o Options) []*Figure {
	runs := o.Runs
	if runs == 0 {
		runs = 3 // the paper's #runs=3 for this experiment
	}
	var out []*Figure
	for _, pl := range []Platform{X86(), Arm()} {
		arch := pl.Machine.Arch
		// The 3-/4-level compositions of BOTH platforms, instantiated on
		// THIS platform's hierarchies.
		entries := []struct {
			name string
			mk   workload.LockFactory
		}{
			{"clof<3>-x86 (" + PaperLC3X86 + ")", clofFactory(pl.H3, PaperLC3X86)},
			{"clof<4>-x86 (" + PaperLC4X86 + ")", clofFactory(pl.H4, PaperLC4X86)},
			{"clof<3>-arm (" + PaperLC3Arm + ")", clofFactory(pl.H3, PaperLC3Arm)},
			{"clof<4>-arm (" + PaperLC4Arm + ")", clofFactory(pl.H4, PaperLC4Arm)},
			{"hmcs<4>", hmcsFactory(pl.H4)},
			{"cna", cnaFactory(pl.Machine)},
			{"shfllock", shflFactory(pl.Machine)},
		}
		for _, wl := range []struct {
			name   string
			cfgFor func(n int) workload.Config
		}{
			{"leveldb", func(n int) workload.Config { return o.adjust(workload.LevelDB(pl.Machine, n)) }},
			{"kyoto", func(n int) workload.Config { return o.adjust(workload.Kyoto(pl.Machine, n)) }},
		} {
			f := &Figure{
				ID:     "fig10-" + wl.name + "-" + arch.String(),
				Title:  wl.name + " on " + arch.String() + ": best CLoF locks vs state of the art",
				XLabel: "threads",
				YLabel: "iter/us",
			}
			grid := o.grid(pl)
			for _, e := range entries {
				o.progress("fig10 %s %s: %s", wl.name, arch, e.name)
				f.Series = append(f.Series, curve(e.name, e.mk, wl.cfgFor, grid, runs))
			}
			out = append(out, f)
		}
	}
	return out
}

// Fairness reproduces §5.2.3: per-thread throughput fairness (Jain index)
// of the best CLoF locks must closely match HMCS, since both use the same
// keep_local strategy.
func Fairness(o Options) *Figure {
	f := &Figure{
		ID:     "fairness",
		Title:  "§5.2.3: Jain fairness index, CLoF vs HMCS",
		XLabel: "threads",
		YLabel: "jain",
	}
	for _, pl := range []Platform{X86(), Arm()} {
		comp := PaperLC4X86
		if pl.Machine.Arch == topo.ArmV8 {
			comp = PaperLC4Arm
		}
		for _, e := range []struct {
			name string
			mk   workload.LockFactory
		}{
			{"clof<4>-" + pl.Machine.Arch.String(), clofFactory(pl.H4, comp)},
			{"hmcs<4>-" + pl.Machine.Arch.String(), hmcsFactory(pl.H4)},
		} {
			s := Series{Name: e.name}
			for _, n := range o.grid(pl) {
				if n < 8 {
					continue // fairness is only meaningful under contention
				}
				cfg := o.adjust(workload.LevelDB(pl.Machine, n))
				res, err := workload.Run(e.mk, cfg)
				if err != nil {
					continue
				}
				o.progress("fairness: %s at %d threads", e.name, n)
				s.X = append(s.X, n)
				s.Y = append(s.Y, res.Jain())
			}
			f.Series = append(f.Series, s)
		}
	}
	return f
}
