package figures

import (
	"fmt"

	"github.com/clof-go/clof/internal/exp"
	"github.com/clof-go/clof/internal/topo"
	"github.com/clof-go/clof/internal/workload"
)

// Fig10 reproduces the cross-benchmark, cross-platform validation (paper
// Fig. 10): on each platform and for both workloads (LevelDB, Kyoto
// Cabinet), the LC-best CLoF locks of *both* platforms (3- and 4-level)
// against HMCS⟨4⟩, CNA and ShflLock. Running a lock selected for the other
// platform shows that best locks do not transfer (§5.3.1).
//
// Four panels, one engine spec each: fig10-{leveldb,kyoto}-{x86,armv8}.
func Fig10(o Options) []*Figure {
	runs := comparisonRuns(o) // the paper's #runs=3 for this experiment
	var out []*Figure
	for _, pl := range []Platform{X86(), Arm()} {
		arch := pl.Machine.Arch
		// The 3-/4-level compositions of BOTH platforms, instantiated on
		// THIS platform's hierarchies.
		entries := []lockEntry{
			{"clof<3>-x86 (" + PaperLC3X86 + ")", clofFactory(pl.H3, PaperLC3X86)},
			{"clof<4>-x86 (" + PaperLC4X86 + ")", clofFactory(pl.H4, PaperLC4X86)},
			{"clof<3>-arm (" + PaperLC3Arm + ")", clofFactory(pl.H3, PaperLC3Arm)},
			{"clof<4>-arm (" + PaperLC4Arm + ")", clofFactory(pl.H4, PaperLC4Arm)},
			{"hmcs<4>", hmcsFactory(pl.H4)},
			{"cna", cnaFactory(pl.Machine)},
			{"shfllock", shflFactory(pl.Machine)},
		}
		for _, wl := range []struct {
			name   string
			cfgFor func(n int) workload.Config
		}{
			{"leveldb", func(n int) workload.Config { return o.adjust(workload.LevelDB(pl.Machine, n)) }},
			{"kyoto", func(n int) workload.Config { return o.adjust(workload.Kyoto(pl.Machine, n)) }},
		} {
			f := &Figure{
				ID:     "fig10-" + wl.name + "-" + arch.String(),
				Title:  wl.name + " on " + arch.String() + ": best CLoF locks vs state of the art",
				XLabel: "threads",
				YLabel: "iter/us",
			}
			spec := exp.Spec{Name: f.ID, Platform: arch.String(), Workload: wl.name, Runs: runs}
			f.Series = runCurves(o, spec, entries, wl.cfgFor, o.grid(pl))
			out = append(out, f)
		}
	}
	return out
}

// Fairness reproduces §5.2.3: per-thread throughput fairness (Jain index)
// of the best CLoF locks must closely match HMCS, since both use the same
// keep_local strategy.
func Fairness(o Options) *Figure {
	f := &Figure{
		ID:     "fairness",
		Title:  "§5.2.3: Jain fairness index, CLoF vs HMCS",
		XLabel: "threads",
		YLabel: "jain",
	}
	for _, pl := range []Platform{X86(), Arm()} {
		comp := PaperLC4X86
		if pl.Machine.Arch == topo.ArmV8 {
			comp = PaperLC4Arm
		}
		entries := []lockEntry{
			{"clof<4>-" + pl.Machine.Arch.String(), clofFactory(pl.H4, comp)},
			{"hmcs<4>-" + pl.Machine.Arch.String(), hmcsFactory(pl.H4)},
		}
		var grid []int
		for _, n := range o.grid(pl) {
			if n >= 8 { // fairness is only meaningful under contention
				grid = append(grid, n)
			}
		}
		spec := exp.Spec{
			Name:     "fairness-" + pl.Machine.Arch.String(),
			Platform: pl.Machine.Arch.String(),
			Workload: "leveldb",
			Threads:  grid,
			Runs:     o.Runs,
			Quick:    o.Quick,
			Locks:    []string{entries[0].name, entries[1].name},
			Notes:    "reported value is the Jain fairness index, not throughput",
		}
		var points []exp.Point
		for _, e := range entries {
			for _, n := range grid {
				e, n, m := e, n, pl.Machine
				points = append(points, exp.Point{
					Key: fmt.Sprintf("lock=%s/threads=%d", e.name, n),
					Run: func(seed uint64) exp.Sample {
						cfg := o.adjust(workload.LevelDB(m, n))
						cfg.Seed = seed
						return measure(e.mk, cfg)
					},
				})
			}
		}
		results := o.runner().Run(spec, points)
		i := 0
		for _, e := range entries {
			s := Series{Name: e.name}
			for _, n := range grid {
				if len(results[i].Errors) == 0 {
					s.X = append(s.X, n)
					s.Y = append(s.Y, results[i].Jain.Median)
				}
				i++
			}
			f.Series = append(f.Series, s)
		}
	}
	return f
}
