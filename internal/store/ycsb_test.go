package store

import (
	"testing"
	"time"

	"github.com/clof-go/clof/internal/kvstore"
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/rwlock"
	"github.com/clof-go/clof/internal/topo"
	"github.com/clof-go/clof/internal/xrand"
)

// TestYCSBMixes: every standard mix completes operations of the kinds it
// declares, with no misses on a preloaded keyspace.
func TestYCSBMixes(t *testing.T) {
	for _, mix := range Mixes() {
		mix := mix
		t.Run(mix.Name, func(t *testing.T) {
			kv := OpenKV(KVOptions{
				Shards:  4,
				NewLock: func(int) lockapi.Lock { return locks.NewTicket() },
			})
			PreloadKV(kv, 2000)
			res := RunYCSB(kv, YCSBOptions{
				Keys: 2000, Threads: 2, Duration: 60 * time.Millisecond, Mix: mix, Seed: 5,
			})
			if res.Ops == 0 {
				t.Fatal("no operations completed")
			}
			if res.Misses != 0 {
				t.Errorf("misses = %d on a preloaded keyspace", res.Misses)
			}
			if mix.ReadPct > 0 && res.Reads == 0 {
				t.Error("mix declares reads but none ran")
			}
			if mix.UpdatePct > 0 && res.Updates == 0 {
				t.Error("mix declares updates but none ran")
			}
			if mix.RMWPct > 0 && res.RMWs == 0 {
				t.Error("mix declares RMWs but none ran")
			}
			if mix.ScanPct > 0 && (res.Scans == 0 || res.ScannedKeys == 0) {
				t.Error("mix declares scans but none ran")
			}
			if got := res.Reads + res.Updates + res.RMWs + res.Scans; got != res.Ops {
				t.Errorf("kind split %d != total %d", got, res.Ops)
			}
		})
	}
}

// TestYCSBDistributions: the three key distributions run clean; zipfian and
// hotspot concentrate work (observable via per-shard stats skew under a
// range partition and a clustered hot range).
func TestYCSBDistributions(t *testing.T) {
	for _, dist := range []string{DistUniform, DistZipfian, DistHotspot} {
		dist := dist
		t.Run(dist, func(t *testing.T) {
			kv := OpenKV(KVOptions{Shards: 4, RangeKeys: 2000})
			PreloadKV(kv, 2000)
			res := RunYCSB(kv, YCSBOptions{
				Keys: 2000, Threads: 1, Duration: 40 * time.Millisecond,
				Mix: WriteHeavy, Dist: dist, Seed: 9,
			})
			if res.Ops == 0 {
				t.Fatal("no operations completed")
			}
			if res.Misses != 0 {
				t.Errorf("misses = %d", res.Misses)
			}
			if dist == DistHotspot {
				// 80% of ops target the first 20% of the range-partitioned
				// keyspace = shard 0 (plus some of shard 1's range).
				per := kv.NewSession().ShardStats(lockapi.NewNativeProc(0))
				hot := per[0].Gets + per[0].Puts
				var rest uint64
				for _, st := range per[1:] {
					rest += st.Gets + st.Puts
				}
				if hot <= rest {
					t.Errorf("hotspot: shard 0 served %d ops vs %d elsewhere; expected a hot shard", hot, rest)
				}
			}
		})
	}
}

// TestYCSBShardedRWLockBeatsGlobalLock is the acceptance check from the
// issue, in miniature: on a read-mostly mix, a sharded store with
// reader-writer shard locks must out-serve the single global exclusive
// lock. Native throughput is noisy (DESIGN.md §1), so require only strictly
// greater — the figures experiment measures the ratio deterministically.
func TestYCSBShardedRWLockBeatsGlobalLock(t *testing.T) {
	if testing.Short() {
		t.Skip("comparative timing test")
	}
	m := topo.Armv8Server()
	run := func(kv *KV) YCSBResult {
		PreloadKV(kv, 5000)
		return RunYCSB(kv, YCSBOptions{
			Keys: 5000, Threads: 4, Duration: 150 * time.Millisecond,
			Mix: ReadMostly, Dist: DistZipfian, Seed: 17,
		})
	}
	global := run(OpenKV(KVOptions{Shards: 1, NewLock: func(int) lockapi.Lock { return locks.NewTicket() }}))
	sharded := run(OpenKV(KVOptions{Shards: 8, NewLock: func(int) lockapi.Lock {
		return rwlock.Adapt(rwlock.New(m, topo.CacheGroup, locks.NewMCS()))
	}}))
	t.Logf("global tkt: %.3f ops/µs, sharded rwlock: %.3f ops/µs",
		global.ThroughputOpsPerUs(), sharded.ThroughputOpsPerUs())
	if sharded.Ops <= global.Ops {
		t.Errorf("sharded+rwlock (%d ops) did not beat global ticket lock (%d ops)", sharded.Ops, global.Ops)
	}
}

// TestZipfPickerSpreadsHotKeys: the scattered Zipfian picker must not leave
// whole shards idle (hot ranks are hashed across the keyspace).
func TestZipfPickerSpreadsHotKeys(t *testing.T) {
	kp := newKeyPicker(DistZipfian, 1000, 0.99, xrand.New(3))
	part := NewHashPartitioner(8)
	seen := map[int]int{}
	for i := 0; i < 5000; i++ {
		seen[part.Shard(kvstore.Key(kp.next()))]++
	}
	for sh := 0; sh < 8; sh++ {
		if seen[sh] == 0 {
			t.Errorf("shard %d never drawn under scattered zipfian", sh)
		}
	}
}
