package store

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"github.com/clof-go/clof/internal/kvstore"
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
)

// applyOps drives the same seeded op stream against any put/delete/get/scan
// surface; the oracle tests compare sharded stores against the unsharded
// engine through it.
type kvSurface interface {
	Put(p lockapi.Proc, key, value []byte)
	Get(p lockapi.Proc, key []byte) ([]byte, bool)
	Delete(p lockapi.Proc, key []byte)
	Scan(p lockapi.Proc, start, end []byte, fn func(k, v []byte) bool)
}

func scanAll(s kvSurface) []string {
	var out []string
	s.Scan(p0, kvstore.Key(0), nil, func(k, v []byte) bool {
		out = append(out, string(k)+"="+string(v))
		return true
	})
	return out
}

func openSharded(shards int, rangeKeys int) *KV {
	return OpenKV(KVOptions{
		Shards:    shards,
		RangeKeys: rangeKeys,
		NewLock:   func(int) lockapi.Lock { return locks.NewTicket() },
		Shard:     kvstore.Options{MemtableBytes: 400, MaxRuns: 2, Seed: 11},
	})
}

// TestShardedMatchesSingleShardGolden: for every partitioning, a seeded op
// stream leaves the sharded store exactly equal (scan output and stats) to
// the one-shard configuration, which in turn matches the raw engine.
func TestShardedMatchesSingleShardGolden(t *testing.T) {
	type target struct {
		name string
		s    kvSurface
	}
	raw := kvstore.Open(kvstore.Options{MemtableBytes: 400, MaxRuns: 2, Seed: 11})
	targets := []target{
		{"raw", raw.NewSession()},
		{"one-shard", openSharded(1, 0).NewSession()},
		{"hash-4", openSharded(4, 0).NewSession()},
		{"range-4", openSharded(4, 200).NewSession()},
	}
	for _, tg := range targets {
		rng := uint64(1)
		for i := 0; i < 600; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			k := kvstore.Key(int(rng>>33) % 200)
			switch (rng >> 20) % 3 {
			case 0:
				tg.s.Put(p0, k, []byte(fmt.Sprint(i)))
			case 1:
				tg.s.Delete(p0, k)
			case 2:
				tg.s.Get(p0, k)
			}
		}
	}
	want := scanAll(targets[0].s)
	for _, tg := range targets[1:] {
		got := scanAll(tg.s)
		if len(got) != len(want) {
			t.Fatalf("%s: %d live keys, want %d", tg.name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: scan[%d] = %s, want %s", tg.name, i, got[i], want[i])
			}
		}
	}
	// Operation counters aggregate identically (Runs/Compactions differ by
	// construction: per-shard memtables freeze at different times).
	wantStats := targets[0].s.(*kvstore.Session).StatsSnapshot(p0)
	for _, tg := range targets[1:] {
		st := tg.s.(*KVSession).StatsSnapshot(p0)
		if st.Gets != wantStats.Gets || st.Puts != wantStats.Puts || st.Deletes != wantStats.Deletes {
			t.Errorf("%s: ops %d/%d/%d, want %d/%d/%d", tg.name,
				st.Gets, st.Puts, st.Deletes, wantStats.Gets, wantStats.Puts, wantStats.Deletes)
		}
	}
}

// TestCrossShardScanMergedOrder: keys interleaved across hash shards come
// back in strict ascending order, merged across shard boundaries.
func TestCrossShardScanMergedOrder(t *testing.T) {
	for _, tc := range []struct {
		name string
		kv   *KV
	}{
		{"hash", openSharded(4, 0)},
		{"range", openSharded(4, 300)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.kv.NewSession()
			for i := 299; i >= 0; i-- {
				s.Put(p0, kvstore.Key(i), []byte(fmt.Sprint(i)))
			}
			var prev []byte
			n := 0
			s.Scan(p0, kvstore.Key(0), nil, func(k, v []byte) bool {
				if prev != nil && bytes.Compare(prev, k) >= 0 {
					t.Fatalf("scan out of order: %q after %q", k, prev)
				}
				prev = append(prev[:0], k...)
				n++
				return true
			})
			if n != 300 {
				t.Fatalf("scan visited %d keys, want 300", n)
			}
			// Bounded range [120, 180).
			n = 0
			s.Scan(p0, kvstore.Key(120), kvstore.Key(180), func(k, v []byte) bool {
				n++
				return true
			})
			if n != 60 {
				t.Fatalf("bounded scan visited %d keys, want 60", n)
			}
		})
	}
}

// TestCrossShardScanTombstones: deletes scattered across shards (and across
// a range-partition boundary) disappear from the merged scan, including
// tombstones frozen into runs.
func TestCrossShardScanTombstones(t *testing.T) {
	for _, tc := range []struct {
		name string
		kv   *KV
	}{
		{"hash", openSharded(3, 0)},
		{"range", openSharded(3, 90)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.kv.NewSession()
			for i := 0; i < 90; i++ {
				s.Put(p0, kvstore.Key(i), []byte("v"))
			}
			s.Flush(p0) // values into runs on every shard
			// Delete around the range split points (29/30, 59/60) and a
			// scatter of others; the tombstones land on whichever shard owns
			// each key.
			for _, i := range []int{0, 29, 30, 59, 60, 89, 7, 42} {
				s.Delete(p0, kvstore.Key(i))
			}
			s.Flush(p0) // tombstones frozen too
			got := map[string]bool{}
			s.Scan(p0, kvstore.Key(0), nil, func(k, v []byte) bool {
				got[string(k)] = true
				return true
			})
			deleted := map[int]bool{0: true, 29: true, 30: true, 59: true, 60: true, 89: true, 7: true, 42: true}
			for i := 0; i < 90; i++ {
				want := !deleted[i]
				if got[string(kvstore.Key(i))] != want {
					t.Errorf("key %d present=%v, want %v", i, !want, want)
				}
			}
			if len(got) != 90-len(deleted) {
				t.Errorf("scan returned %d keys, want %d", len(got), 90-len(deleted))
			}
		})
	}
}

// TestCrossShardScanEarlyStop: fn returning false stops the merged scan
// without visiting further keys or shards.
func TestCrossShardScanEarlyStop(t *testing.T) {
	for _, tc := range []struct {
		name string
		kv   *KV
	}{
		{"hash", openSharded(4, 0)},
		{"range", openSharded(4, 100)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.kv.NewSession()
			for i := 0; i < 100; i++ {
				s.Put(p0, kvstore.Key(i), []byte("v"))
			}
			n := 0
			s.Scan(p0, kvstore.Key(0), nil, func(k, v []byte) bool {
				if string(k) != string(kvstore.Key(n)) {
					t.Fatalf("scan[%d] = %q, want %q", n, k, kvstore.Key(n))
				}
				n++
				return n < 7
			})
			if n != 7 {
				t.Fatalf("early stop visited %d keys, want 7", n)
			}
		})
	}
}

// TestShardedOracle: the property-test satellite — random put/delete/get
// streams against hash- and range-sharded stores match a map oracle, across
// freezes and compactions, for several shard counts.
func TestShardedOracle(t *testing.T) {
	f := func(ops []uint16, hashPart bool) bool {
		shards := 1 + int(len(ops))%5
		rangeKeys := 0
		if !hashPart {
			rangeKeys = 53
		}
		kv := OpenKV(KVOptions{
			Shards:    shards,
			RangeKeys: rangeKeys,
			Shard:     kvstore.Options{MemtableBytes: 200, MaxRuns: 2, Seed: 3},
		})
		s := kv.NewSession()
		oracle := map[string]string{}
		for i, op := range ops {
			k := string(kvstore.Key(int(op % 53)))
			switch op % 4 {
			case 0, 3:
				v := fmt.Sprint(i)
				s.Put(p0, []byte(k), []byte(v))
				oracle[k] = v
			case 1:
				s.Delete(p0, []byte(k))
				delete(oracle, k)
			case 2:
				got, ok := s.Get(p0, []byte(k))
				want, wok := oracle[k]
				if ok != wok || (ok && string(got) != want) {
					return false
				}
			}
		}
		seen := map[string]string{}
		s.Scan(p0, kvstore.Key(0), nil, func(k, v []byte) bool {
			seen[string(k)] = string(v)
			return true
		})
		if len(seen) != len(oracle) {
			return false
		}
		for k, v := range oracle {
			if seen[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestShardStats: per-shard snapshots attribute operations to the shard
// that served them, and every shard of a uniform load serves some.
func TestShardStats(t *testing.T) {
	kv := openSharded(4, 200)
	s := kv.NewSession()
	for i := 0; i < 200; i++ {
		s.Put(p0, kvstore.Key(i), []byte("v"))
	}
	per := s.ShardStats(p0)
	if len(per) != 4 {
		t.Fatalf("ShardStats len = %d", len(per))
	}
	var puts uint64
	for i, st := range per {
		if st.Puts != 50 {
			t.Errorf("shard %d puts = %d, want 50 (uniform range partition)", i, st.Puts)
		}
		puts += st.Puts
	}
	if total := s.StatsSnapshot(p0); total.Puts != puts || total.Puts != 200 {
		t.Errorf("aggregate puts = %d, want 200", total.Puts)
	}
}
