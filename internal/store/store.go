// Package store is the sharded serving layer (DESIGN.md S32): a generic
// shard router that partitions a keyspace across N shards, each guarded by
// its own pluggable lockapi.Lock — any catalog entry, including the
// reader-writer lock (shared-mode reads via lockapi.RWLocker) and the cr:/
// clof: compositions. The repository's two store engines run behind it:
// kvstore.DB (the LSM, kv.go) and kyoto.CacheDB (the LRU cache, cache.go).
//
// Sharding is the classic serving-system answer to the global-lock collapse
// the paper measures: instead of making the one lock NUMA-aware, split the
// keyspace so most operations contend only within a shard. The two answers
// compose — each shard's lock can itself be a CLoF composition — and the kv
// experiment (internal/figures) sweeps exactly that product: shards × lock
// family × workload shape.
//
// Locking discipline: the router owns all locking. Backends are opened with
// lockapi.Noop and every operation runs bracketed by the owning shard's
// lock, exclusively or — when the shard lock implements lockapi.RWLocker and
// the operation is read-only — in shared mode. Single-shard configurations
// therefore behave bit-identically to the unsharded engines: the same lock
// brackets the same operations in the same order.
//
// Multi-shard operations (cross-shard scans, stats aggregation) visit shards
// in ascending index order and hold at most one shard lock at a time, so
// they cannot deadlock against each other; the price is that a cross-shard
// result is a sequence of per-shard snapshots, not one atomic cut (each
// shard is internally consistent; concurrent writers may land between shard
// visits).
package store

import (
	"bytes"
	"fmt"
	"sort"
	"sync/atomic"

	"github.com/clof-go/clof/internal/lockapi"
)

// Partitioner maps keys to shard indices. Implementations must be pure
// (same key, same shard — routing happens on every operation, unlocked).
type Partitioner interface {
	// Shards returns the shard count N; Shard returns values in [0, N).
	Shards() int
	// Shard routes a key.
	Shard(key []byte) int
}

// RangeInfo is implemented by partitioners whose shards cover contiguous,
// ascending key ranges; cross-shard scans use it to stream shards in key
// order instead of collect-and-merge.
type RangeInfo interface {
	// FirstShard returns the shard containing key (the routing shard), which
	// under a range partition is also the first shard a scan from key visits.
	FirstShard(key []byte) int
}

// HashPartitioner routes by FNV-1a hash modulo the shard count: keys
// interleave across shards, so uniform workloads spread evenly regardless of
// key locality, and range scans must merge all shards.
type HashPartitioner struct {
	n int
}

// NewHashPartitioner returns a hash partitioner over n shards (n >= 1).
func NewHashPartitioner(n int) HashPartitioner {
	if n < 1 {
		panic("store: partitioner needs at least one shard")
	}
	return HashPartitioner{n: n}
}

// Shards implements Partitioner.
func (h HashPartitioner) Shards() int { return h.n }

// Shard implements Partitioner (FNV-1a, the same hash kyoto buckets with).
func (h HashPartitioner) Shard(key []byte) int {
	sum := uint64(14695981039346656037)
	for _, b := range key {
		sum ^= uint64(b)
		sum *= 1099511628211
	}
	return int(sum % uint64(h.n))
}

// RangePartitioner routes by explicit split points: shard i covers
// [bounds[i-1], bounds[i]) with the first shard open below and the last open
// above. Contiguous key ranges stay on one shard, so range scans stream
// shard by shard — and skewed key ranges produce hot shards, the trade-off
// the kv experiment's hotspot workload measures.
type RangePartitioner struct {
	// bounds are the n-1 ascending split keys.
	bounds [][]byte
}

// NewRangePartitioner builds a range partitioner from ascending split
// points; len(bounds)+1 is the shard count. It rejects unsorted or
// duplicate bounds.
func NewRangePartitioner(bounds [][]byte) (RangePartitioner, error) {
	for i := 1; i < len(bounds); i++ {
		if bytes.Compare(bounds[i-1], bounds[i]) >= 0 {
			return RangePartitioner{}, fmt.Errorf("store: range bounds not strictly ascending at %d", i)
		}
	}
	return RangePartitioner{bounds: bounds}, nil
}

// Shards implements Partitioner.
func (r RangePartitioner) Shards() int { return len(r.bounds) + 1 }

// Shard implements Partitioner: binary search for the first bound above key.
func (r RangePartitioner) Shard(key []byte) int {
	return sort.Search(len(r.bounds), func(i int) bool {
		return bytes.Compare(key, r.bounds[i]) < 0
	})
}

// FirstShard implements RangeInfo.
func (r RangePartitioner) FirstShard(key []byte) int { return r.Shard(key) }

// UniformBounds returns split points dividing the canonical kvstore.Key
// space [0, keys) into shards equal ranges — the natural range partition
// for the benchmark keyspace (a linear byte-space split would be useless:
// canonical keys share long "0" prefixes).
func UniformBounds(keys, shards int, keyOf func(i int) []byte) [][]byte {
	if shards < 1 {
		panic("store: UniformBounds needs at least one shard")
	}
	bounds := make([][]byte, 0, shards-1)
	for i := 1; i < shards; i++ {
		bounds = append(bounds, keyOf(i*keys/shards))
	}
	return bounds
}

// Adaptive optimistic-read bounds (DESIGN.md S33): each shard starts with
// occKStart validation attempts per read, halves on every pessimistic
// fallback, and earns one attempt back after occGrowAfter consecutive
// first-try successes — so write-hot shards degrade to (cheap) pessimistic
// reads quickly while read-mostly shards keep the full optimistic budget.
const (
	occKStart    = 4
	occKMin      = 1
	occKMax      = 8
	occGrowAfter = 64
)

// occShard is one shard's optimistic-read state: the adaptive attempt
// budget plus the counters the obs layer attributes per shard. All fields
// are atomics — the fast path must stay allocation- and lock-free, and the
// budget adaptation is an intentionally racy heuristic (a lost update costs
// one adjustment, never correctness).
type occShard struct {
	k          atomic.Int32  // current attempt budget, in [occKMin, occKMax]
	clean      atomic.Uint32 // consecutive first-attempt successes
	optimistic atomic.Uint64 // optimistic attempts started
	vfails     atomic.Uint64 // failed validations (retries)
	fallbacks  atomic.Uint64 // reads that fell back to the shard lock
}

// noteSuccess records a validated read that took `attempt` retries before
// succeeding, growing the budget after a clean streak.
func (st *occShard) noteSuccess(attempt int) {
	if attempt != 0 {
		st.clean.Store(0)
		return
	}
	if st.clean.Add(1) >= occGrowAfter {
		st.clean.Store(0)
		if k := st.k.Load(); k < occKMax {
			st.k.Store(k + 1)
		}
	}
}

// noteFallback records an exhausted optimistic budget and halves it.
func (st *occShard) noteFallback() {
	st.fallbacks.Add(1)
	st.clean.Store(0)
	if nk := st.k.Load() / 2; nk >= occKMin {
		st.k.Store(nk)
	} else {
		st.k.Store(occKMin)
	}
}

// OCCShardStats is one shard's optimistic-read accounting, as exposed to
// the obs layer and the kv experiment (retry/validation-failure metrics per
// shard).
type OCCShardStats struct {
	// Optimistic counts optimistic read attempts (including retries).
	Optimistic uint64
	// ValidationFailures counts attempts whose validation failed.
	ValidationFailures uint64
	// Fallbacks counts reads that exhausted the budget and took the lock.
	Fallbacks uint64
	// K is the shard's current adaptive attempt budget.
	K int
}

// Router partitions a keyspace across shards of payload type S, guarding
// shard i with its own lock. It is the generic core both store engines wrap.
type Router[S any] struct {
	part   Partitioner
	rinfo  RangeInfo // non-nil when part orders shards by key range
	locks  []lockapi.Lock
	rws    []lockapi.RWLocker  // non-nil where locks[i] supports shared mode
	seqs   []lockapi.SeqReader // non-nil where locks[i] supports optimistic reads
	occ    []occShard
	shards []S
}

// NewRouter builds a router: newLock(i) supplies shard i's lock (nil — the
// function or its result — defaults to lockapi.Noop), newShard(i) its
// payload. Lock construction happens here so a fresh router always owns
// fresh, unheld locks.
func NewRouter[S any](part Partitioner, newLock func(shard int) lockapi.Lock, newShard func(shard int) S) *Router[S] {
	n := part.Shards()
	r := &Router[S]{
		part:   part,
		locks:  make([]lockapi.Lock, n),
		rws:    make([]lockapi.RWLocker, n),
		seqs:   make([]lockapi.SeqReader, n),
		occ:    make([]occShard, n),
		shards: make([]S, n),
	}
	r.rinfo, _ = part.(RangeInfo)
	for i := 0; i < n; i++ {
		var l lockapi.Lock
		if newLock != nil {
			l = newLock(i)
		}
		if l == nil {
			l = lockapi.Noop{}
		}
		r.locks[i] = l
		r.rws[i], _ = l.(lockapi.RWLocker)
		r.seqs[i], _ = l.(lockapi.SeqReader)
		r.occ[i].k.Store(occKStart)
		r.shards[i] = newShard(i)
	}
	return r
}

// OptimisticSupported reports whether any shard lock offers the optimistic
// read path (lockapi.SeqReader — the catalog's seq: family).
func (r *Router[S]) OptimisticSupported() bool {
	for _, sq := range r.seqs {
		if sq != nil {
			return true
		}
	}
	return false
}

// OCCStats returns every shard's optimistic-read counters (index = shard).
func (r *Router[S]) OCCStats() []OCCShardStats {
	out := make([]OCCShardStats, len(r.occ))
	for i := range r.occ {
		st := &r.occ[i]
		out[i] = OCCShardStats{
			Optimistic:         st.optimistic.Load(),
			ValidationFailures: st.vfails.Load(),
			Fallbacks:          st.fallbacks.Load(),
			K:                  int(st.k.Load()),
		}
	}
	return out
}

// Shards returns the shard count.
func (r *Router[S]) Shards() int { return len(r.shards) }

// Partitioner returns the routing function (for callers that pre-shard
// work, e.g. bulk loaders).
func (r *Router[S]) Partitioner() Partitioner { return r.part }

// LockAt returns shard i's lock, for single-threaded setup only (attaching
// an observer via lockapi.Instrument before any session exists).
func (r *Router[S]) LockAt(i int) lockapi.Lock { return r.locks[i] }

// Ordered reports whether shards cover ascending key ranges (RangeInfo), in
// which case cross-shard scans stream in shard order.
func (r *Router[S]) Ordered() bool { return r.rinfo != nil }

// Session is a per-worker router handle carrying one lock context per
// shard. Like the engines' sessions it must only be created during
// single-threaded setup.
type Session[S any] struct {
	r    *Router[S]
	ctxs []lockapi.Ctx
}

// NewSession allocates a worker session.
func (r *Router[S]) NewSession() *Session[S] {
	ctxs := make([]lockapi.Ctx, len(r.locks))
	for i, l := range r.locks {
		ctxs[i] = l.NewCtx()
	}
	return &Session[S]{r: r, ctxs: ctxs}
}

// Exclusive routes key to its shard and runs fn on the payload under the
// shard's exclusive lock.
func (s *Session[S]) Exclusive(p lockapi.Proc, key []byte, fn func(shard int, data S)) {
	s.ExclusiveAt(p, s.r.part.Shard(key), fn)
}

// Shared routes key to its shard and runs fn under a shared acquisition
// when the shard lock supports one, degrading to exclusive otherwise. fn
// must be read-only on the payload (up to operations the payload documents
// as shared-safe, like atomic counters).
func (s *Session[S]) Shared(p lockapi.Proc, key []byte, fn func(shard int, data S)) {
	s.SharedAt(p, s.r.part.Shard(key), fn)
}

// ExclusiveAt is Exclusive for an explicit shard index.
func (s *Session[S]) ExclusiveAt(p lockapi.Proc, i int, fn func(shard int, data S)) {
	r := s.r
	r.locks[i].Acquire(p, s.ctxs[i])
	fn(i, r.shards[i])
	r.locks[i].Release(p, s.ctxs[i])
}

// SharedAt is Shared for an explicit shard index.
func (s *Session[S]) SharedAt(p lockapi.Proc, i int, fn func(shard int, data S)) {
	r := s.r
	if rw := r.rws[i]; rw != nil {
		rw.AcquireShared(p, s.ctxs[i])
		fn(i, r.shards[i])
		rw.ReleaseShared(p, s.ctxs[i])
		return
	}
	s.ExclusiveAt(p, i, fn)
}

// Optimistic routes key to its shard and runs fn through OptimisticAt.
func (s *Session[S]) Optimistic(p lockapi.Proc, key []byte, fn func(shard int, data S)) bool {
	return s.OptimisticAt(p, s.r.part.Shard(key), fn)
}

// OptimisticAt runs fn against shard i's payload on the optimistic read
// path: no lock is taken; instead the read is bracketed by the shard
// seqlock's ReadSeq/ReadValidate and retried on validation failure, up to
// the shard's adaptive attempt budget, after which it degrades to SharedAt.
// The return value reports whether a validated optimistic attempt served
// the read (false means the pessimistic fallback ran).
//
// fn may therefore run several times and must be restartable: it must
// buffer its observations privately and the caller must publish them only
// after OptimisticAt returns — on the attempt that validation discards,
// fn has read torn state. fn must also be read-only in the SharedAt sense
// (payload-documented shared-safe operations only). When shard i's lock has
// no optimistic path (not a lockapi.SeqReader), this is exactly SharedAt.
func (s *Session[S]) OptimisticAt(p lockapi.Proc, i int, fn func(shard int, data S)) bool {
	r := s.r
	sq := r.seqs[i]
	if sq == nil {
		s.SharedAt(p, i, fn)
		return false
	}
	st := &r.occ[i]
	k := int(st.k.Load())
	for a := 0; a < k; a++ {
		st.optimistic.Add(1)
		seq := sq.ReadSeq(p)
		fn(i, r.shards[i])
		if sq.ReadValidate(p, seq) {
			st.noteSuccess(a)
			return true
		}
		st.vfails.Add(1)
	}
	st.noteFallback()
	s.SharedAt(p, i, fn)
	return false
}

// Ascending visits shards from index `from` upward, running fn on each
// payload under its shard lock (shared mode when shared is set and the lock
// supports it). fn returning false stops the walk. At most one shard lock
// is held at a time — deadlock-free, not atomic across shards.
func (s *Session[S]) Ascending(p lockapi.Proc, from int, shared bool, fn func(shard int, data S) bool) {
	r := s.r
	for i := from; i < len(r.shards); i++ {
		cont := true
		visit := func(_ int, data S) { cont = fn(i, data) }
		if shared {
			s.SharedAt(p, i, visit)
		} else {
			s.ExclusiveAt(p, i, visit)
		}
		if !cont {
			return
		}
	}
}
