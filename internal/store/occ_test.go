package store

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"github.com/clof-go/clof/internal/kvstore"
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/seqlock"
)

// openSeqSharded builds a KV whose shard locks are seq:tkt — every read
// takes the optimistic validated path first.
func openSeqSharded(shards, rangeKeys int) *KV {
	return OpenKV(KVOptions{
		Shards:    shards,
		RangeKeys: rangeKeys,
		NewLock:   func(int) lockapi.Lock { return seqlock.Wrap(locks.NewTicket(), seqlock.Opts{}) },
		Shard:     kvstore.Options{MemtableBytes: 400, MaxRuns: 2, Seed: 11},
	})
}

// TestOCCMatchesOracleQuiescent: with no concurrent writers every optimistic
// read validates on the first attempt, and the OCC Get/Scan results must
// match the map oracle exactly — same seeded stream discipline as
// TestShardedOracle, on seq:tkt shard locks.
func TestOCCMatchesOracleQuiescent(t *testing.T) {
	for _, cfg := range []struct {
		name      string
		rangeKeys int
	}{{"hash", 0}, {"range", 200}} {
		t.Run(cfg.name, func(t *testing.T) {
			kv := openSeqSharded(4, cfg.rangeKeys)
			s := kv.NewSession()
			oracle := map[string]string{}
			rng := uint64(7)
			for i := 0; i < 800; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				k := string(kvstore.Key(int(rng>>33) % 200))
				switch (rng >> 20) % 4 {
				case 0:
					v := fmt.Sprintf("v%d", i)
					s.Put(p0, []byte(k), []byte(v))
					oracle[k] = v
				case 1:
					s.Delete(p0, []byte(k))
					delete(oracle, k)
				default:
					got, ok := s.Get(p0, []byte(k))
					want, wok := oracle[k]
					if ok != wok || (ok && string(got) != want) {
						t.Fatalf("Get(%q) = %q,%v want %q,%v", k, got, ok, want, wok)
					}
				}
			}
			seen := map[string]string{}
			var prev []byte
			s.Scan(p0, kvstore.Key(0), nil, func(k, v []byte) bool {
				if prev != nil && bytes.Compare(prev, k) >= 0 {
					t.Fatalf("scan out of order: %q after %q", k, prev)
				}
				prev = append(prev[:0], k...)
				seen[string(k)] = string(v)
				return true
			})
			if len(seen) != len(oracle) {
				t.Fatalf("scan saw %d keys, oracle has %d", len(seen), len(oracle))
			}
			for k, v := range oracle {
				if seen[k] != v {
					t.Fatalf("scan %q = %q, want %q", k, seen[k], v)
				}
			}
			var opt uint64
			for _, st := range kv.OCCStats() {
				opt += st.Optimistic
				if st.ValidationFailures != 0 || st.Fallbacks != 0 {
					t.Fatalf("quiescent run failed validations: %+v", st)
				}
			}
			if opt == 0 {
				t.Fatal("no optimistic reads recorded — fast path not taken")
			}
		})
	}
}

// TestOCCConcurrentWriters is the property test behind the -race CI pass:
// reader goroutines hammer OCC Get/Scan while writers mutate the same keys.
// Every value is self-describing (its first KeyWidth bytes repeat its key),
// so any torn or misrouted read — a value escaping a failed validation, a
// key paired with another key's bytes — is detected, and the race detector
// checks the unlocked traversals are data-race-free.
func TestOCCConcurrentWriters(t *testing.T) {
	const (
		keys      = 128
		writers   = 2
		readers   = 4
		writerOps = 3000
	)
	for _, cfg := range []struct {
		name      string
		rangeKeys int
	}{{"hash", 0}, {"range", keys}} {
		t.Run(cfg.name, func(t *testing.T) {
			kv := openSeqSharded(4, cfg.rangeKeys)
			// Sessions and procs are set up single-threaded, one per worker.
			sessions := make([]*KVSession, writers+readers)
			for i := range sessions {
				sessions[i] = kv.NewSession()
			}
			legal := func(k, v []byte) bool { return bytes.HasPrefix(v, k) }

			var wg sync.WaitGroup
			done := make(chan struct{})
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					s := sessions[w]
					p := lockapi.NewNativeProc(w)
					rng := uint64(w + 1)
					for i := 0; i < writerOps; i++ {
						rng = rng*6364136223846793005 + 1442695040888963407
						key := kvstore.Key(int(rng>>33) % keys)
						if (rng>>20)%8 == 0 {
							s.Delete(p, key)
						} else {
							s.Put(p, key, append(key, fmt.Sprintf("#w%d.%d", w, i)...))
						}
					}
				}(w)
			}
			go func() { wg.Wait(); close(done) }()

			var rg sync.WaitGroup
			for rd := 0; rd < readers; rd++ {
				rg.Add(1)
				go func(rd int) {
					defer rg.Done()
					s := sessions[writers+rd]
					p := lockapi.NewNativeProc(writers + rd)
					rng := uint64(rd + 101)
					for alive := true; alive; {
						select {
						case <-done:
							alive = false
						default:
						}
						rng = rng*6364136223846793005 + 1442695040888963407
						key := kvstore.Key(int(rng>>33) % keys)
						if (rng>>20)%4 == 0 {
							var prev []byte
							s.Scan(p, key, nil, func(k, v []byte) bool {
								if prev != nil && bytes.Compare(prev, k) >= 0 {
									t.Errorf("scan out of order: %q after %q", k, prev)
									return false
								}
								prev = append(prev[:0], k...)
								if !legal(k, v) {
									t.Errorf("scan: torn value %q for key %q", v, k)
									return false
								}
								return true
							})
						} else if v, ok := s.Get(p, key); ok && !legal(key, v) {
							t.Errorf("get: torn value %q for key %q", v, key)
							alive = false
						}
					}
				}(rd)
			}
			rg.Wait()

			var st OCCShardStats
			for _, sh := range kv.OCCStats() {
				st.Optimistic += sh.Optimistic
				st.ValidationFailures += sh.ValidationFailures
				st.Fallbacks += sh.Fallbacks
			}
			if st.Optimistic == 0 {
				t.Fatal("no optimistic reads recorded")
			}
			t.Logf("%s: optimistic=%d vfails=%d fallbacks=%d",
				cfg.name, st.Optimistic, st.ValidationFailures, st.Fallbacks)
		})
	}
}

// TestNoTraceZeroAllocs pins the optimistic Get fast path at zero heap
// allocations — the same guarantee the memsim execution core pins for its
// uninstrumented hot loop. The budgeted loop (shard routing, ReadSeq,
// unlocked layer-merge read, validation, counter updates) must not allocate;
// only the pessimistic fallback may (it builds a closure for the lock-held
// read).
func TestNoTraceZeroAllocs(t *testing.T) {
	t.Run("occ-get", func(t *testing.T) {
		kv := openSeqSharded(4, 0)
		s := kv.NewSession()
		val := bytes.Repeat([]byte("x"), 40)
		for i := 0; i < 300; i++ {
			s.Put(p0, kvstore.Key(i), val)
		}
		s.Flush(p0) // exercise the run (SSTable) lookup path too
		keys := make([][]byte, 300)
		for i := range keys {
			keys[i] = kvstore.Key(i)
		}
		var i int
		allocs := testing.AllocsPerRun(2000, func() {
			if _, ok := s.Get(p0, keys[i%300]); !ok {
				t.Fatal("preloaded key missing")
			}
			i++
		})
		if allocs != 0 {
			t.Fatalf("optimistic Get fast path allocates %.1f per op, want 0", allocs)
		}
	})
}
