package store

import (
	"bytes"

	"github.com/clof-go/clof/internal/kvstore"
	"github.com/clof-go/clof/internal/lockapi"
)

// This file runs kvstore.DB behind the shard router. Reads (Get, Scan) are
// optimistic when the shard lock offers a seqlock read path (the catalog's
// seq: family): they run against kvstore's unlocked read paths bracketed by
// ReadSeq/ReadValidate, retry on version bump, and fall back to the
// pessimistic shard lock after the shard's adaptive attempt budget is
// exhausted (DESIGN.md S33). Without a seqlock they are shared-mode when the
// shard lock allows it — the LSM's read paths mutate nothing but its atomic
// counters. Put/Delete/Flush always take the exclusive path.
//
// The optimistic Get fast path is hand-rolled rather than routed through
// Session.OptimisticAt: keeping the hot loop closure-free is what pins it at
// zero heap allocations (TestNoTraceZeroAllocs); the generic closure-based
// path would cost an allocation per read.

// KVOptions configures a sharded LSM store.
type KVOptions struct {
	// Shards is the shard count (default 1).
	Shards int
	// RangeKeys, when > 0, selects range partitioning with uniform bounds
	// over the canonical kvstore.Key space [0, RangeKeys); 0 selects hash
	// partitioning.
	RangeKeys int
	// NewLock supplies shard i's lock (nil function or result: lockapi.Noop).
	// Shard locks implementing lockapi.RWLocker serve reads in shared mode.
	NewLock func(shard int) lockapi.Lock
	// Shard is the per-shard engine configuration. Its Lock field is ignored:
	// the router owns all locking and opens every shard with lockapi.Noop.
	Shard kvstore.Options
}

// KV is the sharded LSM store.
type KV struct {
	router *Router[*kvstore.DB]
}

// OpenKV builds the shards. Single-shard behavior is bit-identical to an
// unsharded kvstore.DB opened with the same lock: one lock brackets the
// same operations in the same order.
func OpenKV(opts KVOptions) *KV {
	if opts.Shards == 0 {
		opts.Shards = 1
	}
	var part Partitioner
	if opts.RangeKeys > 0 {
		rp, err := NewRangePartitioner(UniformBounds(opts.RangeKeys, opts.Shards, kvstore.Key))
		if err != nil {
			panic(err) // unreachable: UniformBounds emits ascending keys
		}
		part = rp
	} else {
		part = NewHashPartitioner(opts.Shards)
	}
	shardOpts := opts.Shard
	shardOpts.Lock = nil // router-owned locking; Open defaults to Noop
	return &KV{router: NewRouter(part, opts.NewLock,
		func(i int) *kvstore.DB {
			so := shardOpts
			so.Seed += uint64(i) // decorrelate shard skiplists
			return kvstore.Open(so)
		})}
}

// Shards returns the shard count.
func (kv *KV) Shards() int { return kv.router.Shards() }

// LockAt exposes shard i's lock for single-threaded instrumentation.
func (kv *KV) LockAt(i int) lockapi.Lock { return kv.router.LockAt(i) }

// OptimisticSupported reports whether any shard serves optimistic reads.
func (kv *KV) OptimisticSupported() bool { return kv.router.OptimisticSupported() }

// OCCStats returns the per-shard optimistic-read counters (index = shard).
func (kv *KV) OCCStats() []OCCShardStats { return kv.router.OCCStats() }

// KVSession is a per-worker handle: router contexts plus one inner engine
// session per shard (the inner sessions carry the shards' no-op lock
// contexts). Create only during single-threaded setup.
type KVSession struct {
	s     *Session[*kvstore.DB]
	inner []*kvstore.Session
}

// NewSession allocates a worker session.
func (kv *KV) NewSession() *KVSession {
	s := kv.router.NewSession()
	inner := make([]*kvstore.Session, kv.router.Shards())
	for i := range inner {
		inner[i] = kv.router.shards[i].NewSession()
	}
	return &KVSession{s: s, inner: inner}
}

// Put inserts or overwrites a key on its shard.
func (s *KVSession) Put(p lockapi.Proc, key, value []byte) {
	s.s.Exclusive(p, key, func(i int, _ *kvstore.DB) {
		s.inner[i].Put(p, key, value)
	})
}

// Get fetches a key from its shard: optimistically when the shard lock is a
// lockapi.SeqReader (validated unlocked read, adaptive retry, pessimistic
// fallback), in shared mode otherwise. The optimistic path performs zero
// heap allocations.
func (s *KVSession) Get(p lockapi.Proc, key []byte) (v []byte, ok bool) {
	r := s.s.r
	i := r.part.Shard(key)
	if sq := r.seqs[i]; sq != nil {
		st := &r.occ[i]
		db := r.shards[i]
		k := int(st.k.Load())
		for a := 0; a < k; a++ {
			st.optimistic.Add(1)
			seq := sq.ReadSeq(p)
			v, ok = db.GetUnlocked(key)
			if sq.ReadValidate(p, seq) {
				st.noteSuccess(a)
				return v, ok
			}
			st.vfails.Add(1)
		}
		st.noteFallback()
		v, ok = nil, false // discard the torn attempt before the locked read
	}
	s.s.SharedAt(p, i, func(i int, _ *kvstore.DB) {
		v, ok = s.inner[i].Get(p, key)
	})
	return v, ok
}

// Delete writes a tombstone on the key's shard. A key always routes to one
// shard, so its tombstone shadows its older values there; no cross-shard
// shadowing can arise.
func (s *KVSession) Delete(p lockapi.Proc, key []byte) {
	s.s.Exclusive(p, key, func(i int, _ *kvstore.DB) {
		s.inner[i].Delete(p, key)
	})
}

// Flush freezes every shard's memtable (ascending, one shard at a time).
func (s *KVSession) Flush(p lockapi.Proc) {
	s.s.Ascending(p, 0, false, func(i int, _ *kvstore.DB) bool {
		s.inner[i].Flush(p)
		return true
	})
}

// kvPair is one collected scan result (keys/values copied out of the
// engine so a later emission outlives any concurrent compaction).
type kvPair struct{ k, v []byte }

// scanShard collects shard i's live [start, end) range into buf (reset
// first). With a seqlock shard lock the collection runs unlocked and is
// validated — a failed validation discards the buffer and retries, then
// falls back to the shared lock, so torn observations never escape this
// function. Without one it is the plain shared-mode collect.
func (s *KVSession) scanShard(p lockapi.Proc, i int, start, end []byte, buf []kvPair) []kvPair {
	r := s.s.r
	collect := func(k, v []byte) bool {
		buf = append(buf, kvPair{k: append([]byte(nil), k...), v: append([]byte(nil), v...)})
		return true
	}
	if sq := r.seqs[i]; sq != nil {
		st := &r.occ[i]
		db := r.shards[i]
		kbudget := int(st.k.Load())
		for a := 0; a < kbudget; a++ {
			st.optimistic.Add(1)
			buf = buf[:0]
			seq := sq.ReadSeq(p)
			db.ScanUnlocked(start, end, collect)
			if sq.ReadValidate(p, seq) {
				st.noteSuccess(a)
				return buf
			}
			st.vfails.Add(1)
		}
		st.noteFallback()
	}
	buf = buf[:0]
	s.s.SharedAt(p, i, func(i int, _ *kvstore.DB) {
		s.inner[i].Scan(p, start, end, collect)
	})
	return buf
}

// Scan visits every live key in [start, end) in ascending key order, merged
// across shards; fn returning false stops the scan. Under a range partition
// the scan proceeds shard by shard in key order; under hash partitioning it
// collects each shard's range and k-way merges. Seqlock-guarded shards are
// collected optimistically (validate, retry, fall back — scanShard) and
// emitted to fn only after validation, with no lock held; other shards hold
// their lock at most one at a time (shared-mode when available, streaming
// in the ordered case). Either way the result interleaves per-shard
// snapshots taken at slightly different instants, not one atomic cut —
// each shard's contribution is internally consistent.
func (s *KVSession) Scan(p lockapi.Proc, start, end []byte, fn func(key, value []byte) bool) {
	r := s.s.r
	if r.Ordered() {
		from := r.rinfo.FirstShard(start)
		var buf []kvPair
		for i := from; i < r.Shards(); i++ {
			if r.seqs[i] == nil {
				// Pessimistic shard: stream under the shared lock (early
				// stop needs no buffering here).
				cont := true
				s.s.SharedAt(p, i, func(i int, _ *kvstore.DB) {
					s.inner[i].Scan(p, start, end, func(k, v []byte) bool {
						cont = fn(k, v)
						return cont
					})
				})
				if !cont {
					return
				}
				continue
			}
			buf = s.scanShard(p, i, start, end, buf)
			for _, pr := range buf {
				if !fn(pr.k, pr.v) {
					return
				}
			}
		}
		return
	}
	// Hash partition: per-shard collect, then merge. Shards hold disjoint
	// key sets, so the merge never sees duplicates, and the per-shard
	// collection has already applied tombstones.
	parts := make([][]kvPair, 0, r.Shards())
	for i := 0; i < r.Shards(); i++ {
		if part := s.scanShard(p, i, start, end, nil); len(part) > 0 {
			parts = append(parts, part)
		}
	}
	for {
		best := -1
		for i := range parts {
			if len(parts[i]) == 0 {
				continue
			}
			if best == -1 || bytes.Compare(parts[i][0].k, parts[best][0].k) < 0 {
				best = i
			}
		}
		if best == -1 {
			return
		}
		pair := parts[best][0]
		parts[best] = parts[best][1:]
		if !fn(pair.k, pair.v) {
			return
		}
	}
}

// StatsSnapshot aggregates every shard's counters (ascending shard order,
// one consistent per-shard cut at a time).
func (s *KVSession) StatsSnapshot(p lockapi.Proc) kvstore.Stats {
	var total kvstore.Stats
	for _, st := range s.ShardStats(p) {
		total.Add(st)
	}
	return total
}

// ShardStats returns one consistent counter snapshot per shard — the
// shard-resolved view the serving experiments report.
func (s *KVSession) ShardStats(p lockapi.Proc) []kvstore.Stats {
	out := make([]kvstore.Stats, s.s.r.Shards())
	s.s.Ascending(p, 0, false, func(i int, _ *kvstore.DB) bool {
		out[i] = s.inner[i].StatsSnapshot(p)
		return true
	})
	return out
}

// PreloadKV fills the store with keys sequential canonical keys and flushes
// (single-threaded, mirroring kvstore.Preload).
func PreloadKV(kv *KV, keys int) {
	p := lockapi.NewNativeProc(0)
	s := kv.NewSession()
	val := make([]byte, 100)
	for i := 0; i < keys; i++ {
		s.Put(p, kvstore.Key(i), val)
	}
	s.Flush(p)
}
