package store

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"github.com/clof-go/clof/internal/kyoto"
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
)

// TestCacheOracle: the sharded cache matches a map oracle for unbounded
// capacity (eviction is per shard, so only capacity-free runs compare
// exactly against a global oracle).
func TestCacheOracle(t *testing.T) {
	f := func(ops []uint16) bool {
		c := OpenCache(CacheOptions{Shards: 1 + int(len(ops))%4, Shard: kyoto.Options{Buckets: 8}})
		s := c.NewSession()
		oracle := map[string]string{}
		for i, op := range ops {
			k := fmt.Sprint(op % 31)
			switch op % 3 {
			case 0:
				v := fmt.Sprint(i)
				s.Set(p0, k, []byte(v))
				oracle[k] = v
			case 1:
				got, ok := s.Get(p0, k)
				want, wok := oracle[k]
				if ok != wok || (ok && string(got) != want) {
					return false
				}
			case 2:
				if s.Remove(p0, k) != (func() bool { _, ok := oracle[k]; return ok })() {
					return false
				}
				delete(oracle, k)
			}
		}
		return c.Count() == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestCachePerShardEviction: per-shard capacity bounds the total and
// evictions are attributed to the shard that performed them.
func TestCachePerShardEviction(t *testing.T) {
	c := OpenCache(CacheOptions{Shards: 4, Shard: kyoto.Options{Capacity: 10}})
	s := c.NewSession()
	for i := 0; i < 400; i++ {
		s.Set(p0, fmt.Sprint(i), nil)
	}
	if n := c.Count(); n > 40 {
		t.Errorf("count %d exceeds total capacity 40", n)
	}
	st := s.StatsSnapshot(p0)
	if st.Evictions == 0 {
		t.Error("no evictions despite 10x overload")
	}
	if st.Sets != 400 {
		t.Errorf("sets = %d, want 400", st.Sets)
	}
	per := s.ShardStats(p0)
	active := 0
	for _, sh := range per {
		if sh.Evictions > 0 {
			active++
		}
	}
	if active < 2 {
		t.Errorf("evictions concentrated on %d shards; hash routing should spread them", active)
	}
}

// TestCacheConcurrent: shard locks exclude concurrent mutators (structure
// integrity mirrors kyoto's own concurrency test, across shards).
func TestCacheConcurrent(t *testing.T) {
	c := OpenCache(CacheOptions{
		Shards:  4,
		NewLock: func(int) lockapi.Lock { return locks.NewMCS() },
		Shard:   kyoto.Options{Capacity: 100},
	})
	const workers = 4
	sessions := make([]*CacheSession, workers)
	for i := range sessions {
		sessions[i] = c.NewSession()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := lockapi.NewNativeProc(id)
			for i := 0; i < 2000; i++ {
				k := fmt.Sprint((id*31 + i) % 300)
				switch i % 4 {
				case 0:
					sessions[id].Set(p, k, []byte(k))
				case 3:
					sessions[id].Remove(p, k)
				default:
					sessions[id].Get(p, k)
				}
			}
		}(w)
	}
	wg.Wait()
	if n := c.Count(); n > 400 {
		t.Errorf("count %d exceeds total capacity 400", n)
	}
	st := c.NewSession().StatsSnapshot(p0)
	if got := st.Gets + st.Sets + st.Removes; got != workers*2000 {
		t.Errorf("ops accounted = %d, want %d", got, workers*2000)
	}
}
