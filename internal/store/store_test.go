package store

import (
	"testing"

	"github.com/clof-go/clof/internal/kvstore"
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/rwlock"
	"github.com/clof-go/clof/internal/topo"
)

var p0 = lockapi.NewNativeProc(0)

func TestHashPartitionerCoversAllShards(t *testing.T) {
	part := NewHashPartitioner(8)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		s := part.Shard(kvstore.Key(i))
		if s < 0 || s >= 8 {
			t.Fatalf("shard %d out of range", s)
		}
		seen[s] = true
	}
	if len(seen) != 8 {
		t.Errorf("1000 keys hit only %d/8 shards", len(seen))
	}
}

func TestRangePartitionerBounds(t *testing.T) {
	part, err := NewRangePartitioner(UniformBounds(100, 4, kvstore.Key))
	if err != nil {
		t.Fatal(err)
	}
	if part.Shards() != 4 {
		t.Fatalf("shards = %d", part.Shards())
	}
	for i := 0; i < 100; i++ {
		want := i / 25
		if got := part.Shard(kvstore.Key(i)); got != want {
			t.Fatalf("key %d routed to shard %d, want %d", i, got, want)
		}
	}
	// Keys past the last bound land on the last shard.
	if got := part.Shard(kvstore.Key(10_000)); got != 3 {
		t.Errorf("out-of-range key routed to %d, want last shard", got)
	}
	// Routing must be monotone in the key for a range partition.
	if part.FirstShard(kvstore.Key(0)) != 0 {
		t.Error("FirstShard(first key) != 0")
	}
}

func TestRangePartitionerRejectsUnsortedBounds(t *testing.T) {
	if _, err := NewRangePartitioner([][]byte{kvstore.Key(5), kvstore.Key(5)}); err == nil {
		t.Error("duplicate bounds accepted")
	}
	if _, err := NewRangePartitioner([][]byte{kvstore.Key(9), kvstore.Key(3)}); err == nil {
		t.Error("descending bounds accepted")
	}
}

// TestRouterSharedDegradesToExclusive: on a lock without shared mode,
// Shared must still exclude (it takes the exclusive path).
func TestRouterSharedDegradesToExclusive(t *testing.T) {
	r := NewRouter(NewHashPartitioner(2),
		func(int) lockapi.Lock { return locks.NewTicket() },
		func(int) *int { v := 0; return &v })
	s := r.NewSession()
	ran := false
	s.Shared(p0, []byte("k"), func(shard int, data *int) {
		ran = true
		*data++ // legal: the degraded path is exclusive
	})
	if !ran {
		t.Fatal("Shared never ran fn")
	}
}

// TestRouterSharedUsesRWLocker: with an rwlock shard lock, Shared takes the
// shared path (observable because the adapter emits no observer edges for
// shared acquisitions, while the exclusive path emits both).
func TestRouterSharedUsesRWLocker(t *testing.T) {
	m := topo.Armv8Server()
	edges := 0
	o := lockapi.ObserverFromFuncs(nil, func(lockapi.Proc) { edges++ }, nil)
	r := NewRouter(NewHashPartitioner(1),
		func(int) lockapi.Lock {
			a := rwlock.Adapt(rwlock.New(m, topo.CacheGroup, locks.NewMCS()))
			a.Instrument(o)
			return a
		},
		func(int) struct{} { return struct{}{} })
	s := r.NewSession()
	s.Shared(p0, []byte("k"), func(int, struct{}) {})
	if edges != 0 {
		t.Errorf("shared acquisition emitted %d exclusive edges", edges)
	}
	s.Exclusive(p0, []byte("k"), func(int, struct{}) {})
	if edges != 1 {
		t.Errorf("exclusive acquisition emitted %d acquired edges, want 1", edges)
	}
}

// TestAscendingEarlyStop: fn returning false stops the walk.
func TestAscendingEarlyStop(t *testing.T) {
	r := NewRouter[int](NewHashPartitioner(5), nil, func(i int) int { return i })
	s := r.NewSession()
	var visited []int
	s.Ascending(p0, 1, false, func(shard int, _ int) bool {
		visited = append(visited, shard)
		return shard < 3
	})
	if len(visited) != 3 || visited[0] != 1 || visited[2] != 3 {
		t.Errorf("visited %v, want [1 2 3]", visited)
	}
}
