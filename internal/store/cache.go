package store

import (
	"github.com/clof-go/clof/internal/kyoto"
	"github.com/clof-go/clof/internal/lockapi"
)

// This file runs kyoto.CacheDB behind the shard router. Unlike the LSM,
// every cache operation — including Get — takes the exclusive path: a kyoto
// Get refreshes the record's LRU recency, so reads mutate shard state and a
// shared acquisition would race the list splice. (That asymmetry is the
// point of keeping both engines behind one router: the serving layer, not
// the engine, decides which operations may share.)

// CacheOptions configures a sharded LRU cache.
type CacheOptions struct {
	// Shards is the shard count (default 1). Keys route by hash — an LRU
	// cache has no range scans, so range partitioning buys nothing.
	Shards int
	// NewLock supplies shard i's lock (nil function or result: lockapi.Noop).
	NewLock func(shard int) lockapi.Lock
	// Shard is the per-shard engine configuration; its Lock field is ignored
	// (router-owned locking) and its Capacity applies per shard, so the total
	// capacity is Shards × Capacity.
	Shard kyoto.Options
}

// Cache is the sharded LRU cache. Eviction is per shard: each shard evicts
// its own least-recent record at its own capacity, which approximates
// global LRU the way any sharded cache does (a globally-hot record can be
// evicted while a colder record on a quieter shard survives).
type Cache struct {
	router *Router[*kyoto.CacheDB]
}

// OpenCache builds the shards. Single-shard behavior is bit-identical to an
// unsharded kyoto.CacheDB opened with the same lock.
func OpenCache(opts CacheOptions) *Cache {
	if opts.Shards == 0 {
		opts.Shards = 1
	}
	shardOpts := opts.Shard
	shardOpts.Lock = nil // router-owned locking; Open defaults to Noop
	return &Cache{router: NewRouter(NewHashPartitioner(opts.Shards), opts.NewLock,
		func(int) *kyoto.CacheDB { return kyoto.Open(shardOpts) })}
}

// Shards returns the shard count.
func (c *Cache) Shards() int { return c.router.Shards() }

// LockAt exposes shard i's lock for single-threaded instrumentation.
func (c *Cache) LockAt(i int) lockapi.Lock { return c.router.LockAt(i) }

// Count sums the shards' record counts (atomic point samples).
func (c *Cache) Count() int {
	n := 0
	for _, db := range c.router.shards {
		n += db.Count()
	}
	return n
}

// CacheSession is a per-worker handle (router contexts plus per-shard
// engine sessions). Create only during single-threaded setup.
type CacheSession struct {
	s     *Session[*kyoto.CacheDB]
	inner []*kyoto.Session
}

// NewSession allocates a worker session.
func (c *Cache) NewSession() *CacheSession {
	s := c.router.NewSession()
	inner := make([]*kyoto.Session, c.router.Shards())
	for i := range inner {
		inner[i] = c.router.shards[i].NewSession()
	}
	return &CacheSession{s: s, inner: inner}
}

// Set inserts or overwrites a record on its key's shard.
func (s *CacheSession) Set(p lockapi.Proc, key string, value []byte) {
	s.s.Exclusive(p, []byte(key), func(i int, _ *kyoto.CacheDB) {
		s.inner[i].Set(p, key, value)
	})
}

// Get fetches a record and refreshes its recency (exclusive: see the file
// comment — kyoto reads mutate the LRU list).
func (s *CacheSession) Get(p lockapi.Proc, key string) (v []byte, ok bool) {
	s.s.Exclusive(p, []byte(key), func(i int, _ *kyoto.CacheDB) {
		v, ok = s.inner[i].Get(p, key)
	})
	return v, ok
}

// Remove deletes a record; it reports whether the key existed.
func (s *CacheSession) Remove(p lockapi.Proc, key string) (ok bool) {
	s.s.Exclusive(p, []byte(key), func(i int, _ *kyoto.CacheDB) {
		ok = s.inner[i].Remove(p, key)
	})
	return ok
}

// StatsSnapshot aggregates every shard's counters.
func (s *CacheSession) StatsSnapshot(p lockapi.Proc) kyoto.Stats {
	var total kyoto.Stats
	for _, st := range s.ShardStats(p) {
		total.Add(st)
	}
	return total
}

// ShardStats returns one consistent counter snapshot per shard.
func (s *CacheSession) ShardStats(p lockapi.Proc) []kyoto.Stats {
	out := make([]kyoto.Stats, s.s.r.Shards())
	s.s.Ascending(p, 0, false, func(i int, _ *kyoto.CacheDB) bool {
		out[i] = s.inner[i].StatsSnapshot(p)
		return true
	})
	return out
}
