package store

import (
	"sync"
	"time"

	"github.com/clof-go/clof/internal/kvstore"
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/xrand"
)

// This file is the YCSB-style workload driver for the sharded LSM: the
// standard serving-benchmark operation mixes (read-mostly, write-heavy,
// read-modify-write, scan) over uniform, Zipfian, or hotspot key
// distributions, run natively on goroutines. The simulator-side analog —
// deterministic, per-shard-observed — is internal/workload's KV model; this
// driver measures the real store on real hardware (with DESIGN.md §1's
// caveat that goroutine numbers reflect the Go scheduler as much as the
// lock).

// Mix is a YCSB-style operation mix; the percentages must sum to 100.
type Mix struct {
	// Name labels the mix in reports ("read-mostly", ...).
	Name string
	// ReadPct / UpdatePct / RMWPct / ScanPct split operations: point reads,
	// point writes, read-modify-writes (a read then a write of the same key,
	// two lock acquisitions like a real serving path), and range scans.
	ReadPct, UpdatePct, RMWPct, ScanPct int
	// ScanLen is the maximum scan length in keys (uniformly drawn per scan,
	// YCSB workload E style); 0 defaults to 50 when ScanPct > 0.
	ScanLen int
}

// The standard mixes, named after their YCSB analogs.
var (
	// ReadMostly is YCSB-B: 95% reads, 5% updates — the shape where shared
	// (reader) locks and sharding pay off most.
	ReadMostly = Mix{Name: "read-mostly", ReadPct: 95, UpdatePct: 5}
	// WriteHeavy is YCSB-A: 50% reads, 50% updates.
	WriteHeavy = Mix{Name: "write-heavy", ReadPct: 50, UpdatePct: 50}
	// ReadModifyWrite is YCSB-F: 50% reads, 50% read-modify-writes.
	ReadModifyWrite = Mix{Name: "rmw", ReadPct: 50, RMWPct: 50}
	// ScanHeavy is YCSB-E-flavored: 70% reads, 10% updates, 20% short scans
	// (the mix that exercises the cross-shard merge).
	ScanHeavy = Mix{Name: "scan", ReadPct: 70, UpdatePct: 10, ScanPct: 20, ScanLen: 50}
)

// Mixes lists the standard mixes in sweep order.
func Mixes() []Mix { return []Mix{ReadMostly, WriteHeavy, ReadModifyWrite, ScanHeavy} }

// Key distributions for YCSBOptions.Dist.
const (
	// DistUniform draws keys uniformly.
	DistUniform = "uniform"
	// DistZipfian draws Zipfian ranks (theta 0.99) scattered across the
	// keyspace by a multiplicative hash, YCSB-style: hot keys exist but are
	// spread over shards.
	DistZipfian = "zipfian"
	// DistHotspot sends 80% of operations to the first 20% of the keyspace —
	// a contiguous hot range, so a range-partitioned store develops hot
	// shards (the skew sharding alone cannot fix).
	DistHotspot = "hotspot"
)

// YCSBOptions configures a native workload run.
type YCSBOptions struct {
	// Keys is the preloaded keyspace size (default 10_000).
	Keys int
	// Threads is the worker goroutine count (default 1).
	Threads int
	// Duration bounds the run in wall time (default 100ms).
	Duration time.Duration
	// Mix is the operation mix (default ReadMostly).
	Mix Mix
	// Dist is the key distribution (default DistUniform).
	Dist string
	// Theta is the Zipfian skew for DistZipfian (default 0.99).
	Theta float64
	// ValueSize is the written value size (default 100, the db_bench value).
	ValueSize int
	// Seed decorrelates per-worker streams.
	Seed uint64
}

// YCSBResult reports a native run.
type YCSBResult struct {
	// Ops counts completed operations (an RMW counts once).
	Ops uint64
	// PerThread is the per-worker split of Ops.
	PerThread []uint64
	// Reads / Updates / RMWs / Scans split Ops by kind; ScannedKeys counts
	// keys the scans visited.
	Reads, Updates, RMWs, Scans uint64
	ScannedKeys                 uint64
	// Misses counts point reads of absent keys (0 on a preloaded keyspace).
	Misses uint64
	// Elapsed is the measured wall time.
	Elapsed time.Duration
}

// ThroughputOpsPerUs returns operations per microsecond of wall time.
func (r YCSBResult) ThroughputOpsPerUs() float64 {
	us := float64(r.Elapsed.Microseconds())
	if us == 0 {
		return 0
	}
	return float64(r.Ops) / us
}

// keyPicker draws key indices for one worker.
type keyPicker struct {
	dist string
	keys int
	rng  *xrand.Rand
	zipf *xrand.Zipf
}

func newKeyPicker(dist string, keys int, theta float64, rng *xrand.Rand) *keyPicker {
	kp := &keyPicker{dist: dist, keys: keys, rng: rng}
	if dist == DistZipfian {
		kp.zipf = xrand.NewZipf(rng, uint64(keys), theta)
	}
	return kp
}

// next returns the next key index in [0, keys).
func (kp *keyPicker) next() int {
	switch kp.dist {
	case DistZipfian:
		// Scatter ranks with a multiplicative hash so the hot set is spread
		// across the keyspace (and therefore across shards), as YCSB does.
		return int((kp.zipf.Next() * 2654435761) % uint64(kp.keys))
	case DistHotspot:
		hot := kp.keys / 5
		if hot < 1 || hot == kp.keys {
			return kp.rng.Intn(kp.keys)
		}
		if kp.rng.Intn(100) < 80 {
			return kp.rng.Intn(hot)
		}
		return hot + kp.rng.Intn(kp.keys-hot)
	default:
		return kp.rng.Intn(kp.keys)
	}
}

// RunYCSB drives kv with o's workload. The store must be preloaded (e.g.
// PreloadKV with o.Keys).
func RunYCSB(kv *KV, o YCSBOptions) YCSBResult {
	if o.Keys == 0 {
		o.Keys = 10_000
	}
	if o.Threads == 0 {
		o.Threads = 1
	}
	if o.Duration == 0 {
		o.Duration = 100 * time.Millisecond
	}
	if o.Mix.Name == "" {
		o.Mix = ReadMostly
	}
	if o.Dist == "" {
		o.Dist = DistUniform
	}
	if o.Theta == 0 {
		o.Theta = 0.99
	}
	if o.ValueSize == 0 {
		o.ValueSize = 100
	}
	scanLen := o.Mix.ScanLen
	if scanLen == 0 {
		scanLen = 50
	}

	sessions := make([]*KVSession, o.Threads)
	for i := range sessions {
		sessions[i] = kv.NewSession()
	}

	res := YCSBResult{PerThread: make([]uint64, o.Threads)}
	var mu sync.Mutex // folds per-worker tallies at the end
	stop := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < o.Threads; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := lockapi.NewNativeProc(id)
			rng := xrand.New(o.Seed + uint64(id)*7919 + 1)
			kp := newKeyPicker(o.Dist, o.Keys, o.Theta, rng.Split())
			s := sessions[id]
			val := make([]byte, o.ValueSize)
			keyBuf := make([]byte, 0, kvstore.KeyWidth)
			var reads, updates, rmws, scans, scanned, misses uint64
			for {
				select {
				case <-stop:
					mu.Lock()
					res.Reads += reads
					res.Updates += updates
					res.RMWs += rmws
					res.Scans += scans
					res.ScannedKeys += scanned
					res.Misses += misses
					mu.Unlock()
					return
				default:
				}
				k := kp.next()
				keyBuf = kvstore.AppendKey(keyBuf[:0], k)
				roll := rng.Intn(100)
				switch {
				case roll < o.Mix.ReadPct:
					if _, ok := s.Get(p, keyBuf); !ok {
						misses++
					}
					reads++
				case roll < o.Mix.ReadPct+o.Mix.UpdatePct:
					s.Put(p, keyBuf, val)
					updates++
				case roll < o.Mix.ReadPct+o.Mix.UpdatePct+o.Mix.RMWPct:
					if _, ok := s.Get(p, keyBuf); !ok {
						misses++
					}
					s.Put(p, keyBuf, val)
					rmws++
				default:
					n := 1 + rng.Intn(scanLen)
					end := kvstore.Key(min(k+n, o.Keys))
					got := 0
					s.Scan(p, keyBuf, end, func([]byte, []byte) bool {
						got++
						return got < n
					})
					scanned += uint64(got)
					scans++
				}
				res.PerThread[id]++
			}
		}(w)
	}
	time.Sleep(o.Duration)
	close(stop)
	wg.Wait()
	res.Elapsed = time.Since(start)
	for _, c := range res.PerThread {
		res.Ops += c
	}
	return res
}
