// Package kvstore is a miniature LevelDB-flavored key-value store: an
// LSM-style engine with a skiplist memtable that is frozen into immutable
// sorted runs. It exists as the repository's native substitute for the
// paper's LevelDB benchmark substrate (DESIGN.md §1): its global mutex is a
// pluggable lockapi.Lock, so any lock in this repository — basic, CLoF,
// HMCS, CNA, ShflLock — can serve as the DB lock, exactly as the paper
// swaps LevelDB's pthread mutex via LD_PRELOAD.
package kvstore

import (
	"bytes"

	"github.com/clof-go/clof/internal/xrand"
)

const maxHeight = 12

// skiplist is a single-writer skiplist keyed by []byte. Readers require
// external synchronization (the DB lock), matching LevelDB's memtable
// discipline under our global-lock benchmark.
type skiplist struct {
	head   *skipNode
	height int
	rng    *xrand.Rand
	n      int
	bytes  int
}

type skipNode struct {
	key, value []byte
	tombstone  bool
	next       [maxHeight]*skipNode
}

func newSkiplist(seed uint64) *skiplist {
	return &skiplist{head: &skipNode{}, height: 1, rng: xrand.New(seed)}
}

// randomHeight grows with probability 1/4 per level, as in LevelDB.
func (s *skiplist) randomHeight() int {
	h := 1
	for h < maxHeight && s.rng.Intn(4) == 0 {
		h++
	}
	return h
}

// findGreaterOrEqual returns the first node with key >= key, filling prev
// with the predecessor at every level when prev is non-nil.
func (s *skiplist) findGreaterOrEqual(key []byte, prev *[maxHeight]*skipNode) *skipNode {
	x := s.head
	for level := s.height - 1; level >= 0; level-- {
		for x.next[level] != nil && bytes.Compare(x.next[level].key, key) < 0 {
			x = x.next[level]
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.next[0]
}

// putEntry inserts or overwrites an entry (possibly a tombstone).
func (s *skiplist) putEntry(e entry) {
	var prev [maxHeight]*skipNode
	if x := s.findGreaterOrEqual(e.key, &prev); x != nil && bytes.Equal(x.key, e.key) {
		s.bytes += len(e.value) - len(x.value)
		x.value = e.value
		x.tombstone = e.tombstone
		return
	}
	h := s.randomHeight()
	if h > s.height {
		for level := s.height; level < h; level++ {
			prev[level] = s.head
		}
		s.height = h
	}
	node := &skipNode{key: e.key, value: e.value, tombstone: e.tombstone}
	for level := 0; level < h; level++ {
		node.next[level] = prev[level].next[level]
		prev[level].next[level] = node
	}
	s.n++
	s.bytes += len(e.key) + len(e.value) + 1
}

// get returns the entry for key; found is false if the key was never
// written (a tombstone IS found).
func (s *skiplist) get(key []byte) (e entry, found bool) {
	x := s.findGreaterOrEqual(key, nil)
	if x != nil && bytes.Equal(x.key, key) {
		return entry{key: x.key, value: x.value, tombstone: x.tombstone}, true
	}
	return entry{}, false
}

// entries returns all entries in key order (for freezing).
func (s *skiplist) entries() []entry {
	return s.entriesFrom(nil)
}

// entriesFrom returns entries with key >= start in key order.
func (s *skiplist) entriesFrom(start []byte) []entry {
	var x *skipNode
	if len(start) == 0 {
		x = s.head.next[0]
	} else {
		x = s.findGreaterOrEqual(start, nil)
	}
	var out []entry
	for ; x != nil; x = x.next[0] {
		out = append(out, entry{key: x.key, value: x.value, tombstone: x.tombstone})
	}
	return out
}
