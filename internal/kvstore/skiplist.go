// Package kvstore is a miniature LevelDB-flavored key-value store: an
// LSM-style engine with a skiplist memtable that is frozen into immutable
// sorted runs. It exists as the repository's native substitute for the
// paper's LevelDB benchmark substrate (DESIGN.md §1): its global mutex is a
// pluggable lockapi.Lock, so any lock in this repository — basic, CLoF,
// HMCS, CNA, ShflLock — can serve as the DB lock, exactly as the paper
// swaps LevelDB's pthread mutex via LD_PRELOAD.
//
// Readers come in two disciplines. The locked paths (Session.Get/Scan) hold
// the DB lock, exclusive or shared. The unlocked paths (DB.GetUnlocked,
// DB.ScanUnlocked) support the sharded store's optimistic-read fast path
// (DESIGN.md S33): all reader-visible state — skiplist links, value slots,
// the memtable and run-stack pointers — is published through atomics, so an
// unlocked reader is data-race-free and always observes structurally sound
// memory. What it may observe is a *mixed* state (half of a concurrent
// write); callers must certify every unlocked result through seqlock
// validation and discard it on failure.
package kvstore

import (
	"bytes"
	"sync/atomic"

	"github.com/clof-go/clof/internal/xrand"
)

const maxHeight = 12

// skiplist is a single-writer skiplist keyed by []byte. Writers require
// external synchronization (the DB lock); readers may traverse without the
// lock — links and value slots are atomically published, LevelDB-memtable
// style — provided they validate what they read (see the package comment).
type skiplist struct {
	head *skipNode
	// height is the current index height; racily read by unlocked readers
	// (a stale height only costs extra comparisons, never misses keys,
	// because level 0 is always complete).
	height atomic.Int32
	rng    *xrand.Rand
	n      int
	bytes  int
}

// valSlot is an immutable value+tombstone pair. Overwrites swap the node's
// slot pointer instead of mutating in place, so an unlocked reader sees
// either the old pair or the new pair, never a value/tombstone mix.
type valSlot struct {
	value     []byte
	tombstone bool
}

type skipNode struct {
	key  []byte
	val  atomic.Pointer[valSlot]
	next [maxHeight]atomic.Pointer[skipNode]
}

func newSkiplist(seed uint64) *skiplist {
	s := &skiplist{head: &skipNode{}, rng: xrand.New(seed)}
	s.height.Store(1)
	return s
}

// randomHeight grows with probability 1/4 per level, as in LevelDB.
func (s *skiplist) randomHeight() int {
	h := 1
	for h < maxHeight && s.rng.Intn(4) == 0 {
		h++
	}
	return h
}

// findGreaterOrEqual returns the first node with key >= key, filling prev
// with the predecessor at every level when prev is non-nil.
func (s *skiplist) findGreaterOrEqual(key []byte, prev *[maxHeight]*skipNode) *skipNode {
	x := s.head
	for level := int(s.height.Load()) - 1; level >= 0; level-- {
		for {
			nx := x.next[level].Load()
			if nx == nil || bytes.Compare(nx.key, key) >= 0 {
				break
			}
			x = nx
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.next[0].Load()
}

// putEntry inserts or overwrites an entry (possibly a tombstone). Caller
// holds the DB lock (single writer); concurrent unlocked readers are
// tolerated by publishing the node bottom-up after its fields are complete.
func (s *skiplist) putEntry(e entry) {
	var prev [maxHeight]*skipNode
	if x := s.findGreaterOrEqual(e.key, &prev); x != nil && bytes.Equal(x.key, e.key) {
		old := x.val.Load()
		s.bytes += len(e.value) - len(old.value)
		x.val.Store(&valSlot{value: e.value, tombstone: e.tombstone})
		return
	}
	h := s.randomHeight()
	if cur := int(s.height.Load()); h > cur {
		for level := cur; level < h; level++ {
			prev[level] = s.head
		}
		s.height.Store(int32(h))
	}
	node := &skipNode{key: e.key}
	node.val.Store(&valSlot{value: e.value, tombstone: e.tombstone})
	for level := 0; level < h; level++ {
		node.next[level].Store(prev[level].next[level].Load())
		prev[level].next[level].Store(node)
	}
	s.n++
	s.bytes += len(e.key) + len(e.value) + 1
}

// get returns the entry for key; found is false if the key was never
// written (a tombstone IS found). Safe both under the DB lock and on the
// unlocked validated-read path.
func (s *skiplist) get(key []byte) (e entry, found bool) {
	x := s.findGreaterOrEqual(key, nil)
	if x != nil && bytes.Equal(x.key, key) {
		v := x.val.Load()
		return entry{key: x.key, value: v.value, tombstone: v.tombstone}, true
	}
	return entry{}, false
}

// entries returns all entries in key order (for freezing).
func (s *skiplist) entries() []entry {
	return s.entriesFrom(nil)
}

// entriesFrom returns entries with key >= start in key order.
func (s *skiplist) entriesFrom(start []byte) []entry {
	var x *skipNode
	if len(start) == 0 {
		x = s.head.next[0].Load()
	} else {
		x = s.findGreaterOrEqual(start, nil)
	}
	var out []entry
	for ; x != nil; x = x.next[0].Load() {
		v := x.val.Load()
		out = append(out, entry{key: x.key, value: v.value, tombstone: v.tombstone})
	}
	return out
}
