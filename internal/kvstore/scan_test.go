package kvstore

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestDeleteBasics(t *testing.T) {
	db := Open(Options{})
	s := db.NewSession()
	s.Put(p0, Key(1), []byte("v1"))
	s.Delete(p0, Key(1))
	if _, ok := s.Get(p0, Key(1)); ok {
		t.Fatal("deleted key still readable")
	}
	// Re-insert after delete.
	s.Put(p0, Key(1), []byte("v2"))
	if v, ok := s.Get(p0, Key(1)); !ok || string(v) != "v2" {
		t.Fatalf("reinserted key = %q,%v", v, ok)
	}
	// Deleting an absent key is a no-op read-wise.
	s.Delete(p0, Key(99))
	if _, ok := s.Get(p0, Key(99)); ok {
		t.Fatal("phantom key after deleting absent key")
	}
}

// TestTombstoneShadowsOlderRuns: a delete in the memtable must shadow a
// value frozen into an older run, and survive its own freeze.
func TestTombstoneShadowsOlderRuns(t *testing.T) {
	db := Open(Options{})
	s := db.NewSession()
	s.Put(p0, Key(5), []byte("old"))
	s.Flush(p0) // value now in a run
	s.Delete(p0, Key(5))
	if _, ok := s.Get(p0, Key(5)); ok {
		t.Fatal("tombstone did not shadow the run value")
	}
	s.Flush(p0) // tombstone itself frozen into a newer run
	if _, ok := s.Get(p0, Key(5)); ok {
		t.Fatal("frozen tombstone did not shadow the run value")
	}
}

// TestCompactionDropsTombstones: after a full compaction the tombstones are
// gone and so are the deleted keys.
func TestCompactionDropsTombstones(t *testing.T) {
	db := Open(Options{MaxRuns: 1})
	s := db.NewSession()
	for i := 0; i < 20; i++ {
		s.Put(p0, Key(i), []byte("v"))
	}
	s.Flush(p0)
	for i := 0; i < 20; i += 2 {
		s.Delete(p0, Key(i))
	}
	s.Flush(p0) // exceeds MaxRuns -> compaction
	if st := s.StatsSnapshot(p0); st.Compactions == 0 {
		t.Fatal("no compaction happened")
	}
	for i := 0; i < 20; i++ {
		_, ok := s.Get(p0, Key(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("key %d present=%v want %v after compaction", i, ok, want)
		}
	}
	// The surviving run must contain no tombstones.
	for _, e := range (*db.runs.Load())[0].entries {
		if e.tombstone {
			t.Fatalf("tombstone for %q survived full compaction", e.key)
		}
	}
}

func collect(s *Session, start, end []byte) []string {
	var out []string
	s.Scan(p0, start, end, func(k, v []byte) bool {
		out = append(out, string(k)+"="+string(v))
		return true
	})
	return out
}

func TestScanMergedAcrossLayers(t *testing.T) {
	db := Open(Options{})
	s := db.NewSession()
	// Layer 1 (oldest run): keys 0..9 = "old".
	for i := 0; i < 10; i++ {
		s.Put(p0, Key(i), []byte("old"))
	}
	s.Flush(p0)
	// Layer 2 (newer run): overwrite evens, delete key 1.
	for i := 0; i < 10; i += 2 {
		s.Put(p0, Key(i), []byte("new"))
	}
	s.Delete(p0, Key(1))
	s.Flush(p0)
	// Memtable: overwrite key 3, add key 10.
	s.Put(p0, Key(3), []byte("mem"))
	s.Put(p0, Key(10), []byte("mem"))

	got := collect(s, Key(0), nil)
	want := []string{}
	for i := 0; i <= 10; i++ {
		switch {
		case i == 1: // deleted
		case i == 3:
			want = append(want, string(Key(i))+"=mem")
		case i == 10:
			want = append(want, string(Key(i))+"=mem")
		case i%2 == 0:
			want = append(want, string(Key(i))+"=new")
		default:
			want = append(want, string(Key(i))+"=old")
		}
	}
	if len(got) != len(want) {
		t.Fatalf("scan returned %d entries, want %d:\n%v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("scan[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestScanRangeAndEarlyStop(t *testing.T) {
	db := Open(Options{})
	s := db.NewSession()
	for i := 0; i < 20; i++ {
		s.Put(p0, Key(i), []byte{byte(i)})
	}
	got := collect(s, Key(5), Key(8))
	if len(got) != 3 {
		t.Fatalf("range scan [5,8) returned %d entries: %v", len(got), got)
	}
	// Early stop after 2 entries.
	n := 0
	s.Scan(p0, Key(0), nil, func(k, v []byte) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("early stop visited %d entries, want 2", n)
	}
}

// TestOracleWithDeletesAndScans: random put/delete/get/scan sequences match
// a map oracle, across freezes and compactions.
func TestOracleWithDeletesAndScans(t *testing.T) {
	f := func(ops []uint16) bool {
		db := Open(Options{MemtableBytes: 300, MaxRuns: 2, Seed: 9})
		s := db.NewSession()
		oracle := map[string]string{}
		for i, op := range ops {
			k := string(Key(int(op % 29)))
			switch op % 4 {
			case 0:
				v := fmt.Sprint(i)
				s.Put(p0, []byte(k), []byte(v))
				oracle[k] = v
			case 1:
				s.Delete(p0, []byte(k))
				delete(oracle, k)
			case 2:
				got, ok := s.Get(p0, []byte(k))
				want, wok := oracle[k]
				if ok != wok || (ok && string(got) != want) {
					return false
				}
			case 3:
				seen := map[string]string{}
				s.Scan(p0, Key(0), nil, func(kk, vv []byte) bool {
					seen[string(kk)] = string(vv)
					return true
				})
				if len(seen) != len(oracle) {
					return false
				}
				for ok2, ov := range oracle {
					if seen[ok2] != ov {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
