package kvstore

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
)

var p0 = lockapi.NewNativeProc(0)

func put(s *skiplist, k, v string) { s.putEntry(entry{key: []byte(k), value: []byte(v)}) }

func TestSkiplistBasic(t *testing.T) {
	s := newSkiplist(1)
	if _, found := s.get([]byte("a")); found {
		t.Fatal("empty skiplist returned a value")
	}
	put(s, "b", "2")
	put(s, "a", "1")
	put(s, "c", "3")
	for k, v := range map[string]string{"a": "1", "b": "2", "c": "3"} {
		got, found := s.get([]byte(k))
		if !found || string(got.value) != v {
			t.Errorf("get(%q) = %q,%v want %q", k, got.value, found, v)
		}
	}
	put(s, "b", "two")
	if got, _ := s.get([]byte("b")); string(got.value) != "two" {
		t.Errorf("overwrite failed: %q", got.value)
	}
	if s.n != 3 {
		t.Errorf("n = %d, want 3", s.n)
	}
}

func TestSkiplistOrdered(t *testing.T) {
	s := newSkiplist(7)
	for i := 999; i >= 0; i-- {
		s.putEntry(entry{key: Key(i), value: []byte{byte(i)}})
	}
	es := s.entries()
	if len(es) != 1000 {
		t.Fatalf("entries = %d", len(es))
	}
	for i := 1; i < len(es); i++ {
		if bytes.Compare(es[i-1].key, es[i].key) >= 0 {
			t.Fatalf("entries out of order at %d", i)
		}
	}
}

func TestDBPutGet(t *testing.T) {
	db := Open(Options{})
	s := db.NewSession()
	for i := 0; i < 100; i++ {
		s.Put(p0, Key(i), []byte(fmt.Sprintf("v%d", i)))
	}
	for i := 0; i < 100; i++ {
		v, ok := s.Get(p0, Key(i))
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%d) = %q,%v", i, v, ok)
		}
	}
	if _, ok := s.Get(p0, Key(100)); ok {
		t.Error("absent key found")
	}
}

func TestDBFreezeAndReadThroughRuns(t *testing.T) {
	db := Open(Options{MemtableBytes: 1 << 10})
	s := db.NewSession()
	for i := 0; i < 500; i++ {
		s.Put(p0, Key(i), bytes.Repeat([]byte("x"), 50))
	}
	if st := s.StatsSnapshot(p0); st.Runs == 0 {
		t.Fatal("no runs frozen despite tiny memtable threshold")
	}
	for i := 0; i < 500; i++ {
		if _, ok := s.Get(p0, Key(i)); !ok {
			t.Fatalf("key %d lost after freeze", i)
		}
	}
}

func TestDBCompactionKeepsNewestValue(t *testing.T) {
	db := Open(Options{MemtableBytes: 512, MaxRuns: 2})
	s := db.NewSession()
	for round := 0; round < 6; round++ {
		for i := 0; i < 50; i++ {
			s.Put(p0, Key(i), []byte(fmt.Sprintf("r%d", round)))
		}
		s.Flush(p0)
	}
	st := s.StatsSnapshot(p0)
	if st.Compactions == 0 {
		t.Fatal("no compaction happened")
	}
	if st.Runs > 2+1 {
		t.Errorf("runs = %d after compaction", st.Runs)
	}
	for i := 0; i < 50; i++ {
		v, ok := s.Get(p0, Key(i))
		if !ok || string(v) != "r5" {
			t.Fatalf("key %d = %q,%v; want newest round r5", i, v, ok)
		}
	}
}

// TestDBOracle: random op sequences match a map oracle.
func TestDBOracle(t *testing.T) {
	f := func(ops []uint16) bool {
		db := Open(Options{MemtableBytes: 256, MaxRuns: 3, Seed: 42})
		s := db.NewSession()
		oracle := map[string]string{}
		for i, op := range ops {
			k := string(Key(int(op % 37)))
			if op%3 == 0 { // put
				v := fmt.Sprintf("v%d", i)
				s.Put(p0, []byte(k), []byte(v))
				oracle[k] = v
			} else { // get
				got, ok := s.Get(p0, []byte(k))
				want, wok := oracle[k]
				if ok != wok || (ok && string(got) != want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentReadRandomWithLocks(t *testing.T) {
	for _, name := range []string{"tkt", "mcs", "clh", "hem"} {
		name := name
		t.Run(name, func(t *testing.T) {
			db := Open(Options{Lock: locks.MustType(name).New()})
			Preload(db, 1000)
			// Scale workers to the host: spinning goroutines beyond
			// 2×GOMAXPROCS mostly measure the Go scheduler, and on small
			// hosts a worker may not even start within the window.
			threads := 2 * runtime.GOMAXPROCS(0)
			if threads > 8 {
				threads = 8
			}
			res := ReadRandom(db, ReadRandomOptions{
				Keys: 1000, Threads: threads, Duration: 100 * time.Millisecond,
			})
			if res.Ops == 0 {
				t.Fatal("no reads completed")
			}
			if res.Misses != 0 {
				t.Errorf("misses = %d on a preloaded key space", res.Misses)
			}
			// Per-thread starvation is not assertable natively: with
			// GOMAXPROCS=1 a late-starting goroutine may not run within the
			// window at all (the goroutine scheduler, not the lock, decides
			// — exactly the distortion DESIGN.md §1 documents). Require only
			// that a majority of workers progressed; fairness is measured on
			// the simulator instead.
			progressed := 0
			for _, c := range res.PerThread {
				if c > 0 {
					progressed++
				}
			}
			if progressed < len(res.PerThread)/2 {
				t.Errorf("only %d/%d workers progressed", progressed, len(res.PerThread))
			}
		})
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	// Writers and readers racing through the global lock must never lose a
	// committed key.
	db := Open(Options{Lock: locks.NewMCS(), MemtableBytes: 4 << 10})
	Preload(db, 200)
	sessions := make([]*Session, 4)
	for i := range sessions {
		sessions[i] = db.NewSession()
	}
	done := make(chan struct{})
	for w := 0; w < 3; w++ {
		w := w
		go func() {
			p := lockapi.NewNativeProc(w + 1)
			for i := 0; i < 3000; i++ {
				if i%4 == 0 {
					sessions[w].Put(p, Key(i%200), []byte("upd"))
				} else if _, ok := sessions[w].Get(p, Key(i%200)); !ok {
					t.Errorf("key %d vanished", i%200)
				}
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 3; i++ {
		<-done
	}
}

func TestKeyFormat(t *testing.T) {
	if string(Key(42)) != "0000000000000042" {
		t.Errorf("Key(42) = %q", Key(42))
	}
	if bytes.Compare(Key(9), Key(10)) >= 0 {
		t.Error("keys do not sort numerically")
	}
	// The fixed-width encoder must agree with the %016d format it replaced,
	// across digit-count boundaries and beyond the fixed field.
	for _, i := range []int{0, 1, 9, 10, 99, 12345, 1e9, 1e15, 1e16, 1e16 + 27} {
		if got, want := string(Key(i)), fmt.Sprintf("%016d", i); got != want {
			t.Errorf("Key(%d) = %q, want %q", i, got, want)
		}
	}
	buf := make([]byte, 0, KeyWidth)
	if got := string(AppendKey(buf, 7)); got != "0000000000000007" {
		t.Errorf("AppendKey = %q", got)
	}
}

// TestKeyAllocs guards the encoder satellite: AppendKey into a cap-sufficient
// buffer must not allocate, and Key must allocate exactly its result slice.
func TestKeyAllocs(t *testing.T) {
	buf := make([]byte, 0, KeyWidth)
	if n := testing.AllocsPerRun(100, func() { buf = AppendKey(buf[:0], 123456) }); n != 0 {
		t.Errorf("AppendKey allocates %.1f times per op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { _ = Key(123456) }); n > 1 {
		t.Errorf("Key allocates %.1f times per op, want <= 1", n)
	}
}

// BenchmarkKey pins the hot-path cost of the fixed-width encoder (it runs on
// every op of every KV workload; the fmt.Sprintf it replaced was ~10x).
func BenchmarkKey(b *testing.B) {
	b.Run("Key", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = Key(i)
		}
	})
	b.Run("AppendKey", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]byte, 0, KeyWidth)
		for i := 0; i < b.N; i++ {
			buf = AppendKey(buf[:0], i)
		}
	})
	b.Run("Sprintf", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = []byte(fmt.Sprintf("%016d", i))
		}
	})
}
