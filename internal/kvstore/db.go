package kvstore

import (
	"bytes"
	"sort"
	"strconv"
	"sync/atomic"

	"github.com/clof-go/clof/internal/lockapi"
)

// entry is one key/value pair of a sorted run. A tombstone marks a deletion
// that must shadow older runs until a full compaction drops it.
type entry struct {
	key, value []byte
	tombstone  bool
}

// run is an immutable sorted run (the in-memory analog of an SSTable).
type run struct {
	entries []entry
}

// get binary-searches the run; found distinguishes "present" (possibly as a
// tombstone) from "not in this run".
func (r *run) get(key []byte) (e entry, found bool) {
	i := sort.Search(len(r.entries), func(i int) bool {
		return bytes.Compare(r.entries[i].key, key) >= 0
	})
	if i < len(r.entries) && bytes.Equal(r.entries[i].key, key) {
		return r.entries[i], true
	}
	return entry{}, false
}

// Options configures a DB.
type Options struct {
	// Lock guards every DB operation (LevelDB's global DB mutex). Nil
	// defaults to an uncontended no-op lock for single-threaded use.
	Lock lockapi.Lock
	// MemtableBytes is the freeze threshold (default 1 MiB).
	MemtableBytes int
	// MaxRuns triggers a full-merge compaction when exceeded (default 8).
	MaxRuns int
	// Seed seeds the skiplist height generator.
	Seed uint64
}

// DB is a small LSM key-value store: one mutable skiplist memtable plus a
// stack of immutable sorted runs, merged when MaxRuns is exceeded. All
// mutating operations acquire the configured lock, making the DB the
// contended resource the paper's readrandom benchmark measures; read-only
// operations may additionally run unlocked under seqlock validation (the
// package comment describes the two reader disciplines).
type DB struct {
	opts Options
	lock lockapi.Lock

	// mem and runs are the reader-visible layer pointers, atomically
	// published so the unlocked read paths see a sound (if possibly mixed)
	// layer set. Only freezeLocked/compactLocked swap them, under the lock;
	// runs is published before mem is reset so no entry is ever absent from
	// both layers at once.
	mem  atomic.Pointer[skiplist]
	runs atomic.Pointer[[]*run] // newest first

	// Operation counters. Atomic so that read-only operations may run under
	// a shared (reader) acquisition of the DB lock — or with no lock at all
	// on the validated optimistic path — without racing each other;
	// mutating operations and StatsSnapshot still require the exclusive
	// lock.
	gets, puts, deletes, scans, compactions atomic.Uint64
}

// Open creates an empty DB.
func Open(opts Options) *DB {
	if opts.MemtableBytes == 0 {
		opts.MemtableBytes = 1 << 20
	}
	if opts.MaxRuns == 0 {
		opts.MaxRuns = 8
	}
	lock := opts.Lock
	if lock == nil {
		lock = lockapi.Noop{}
	}
	db := &DB{opts: opts, lock: lock}
	db.mem.Store(newSkiplist(opts.Seed))
	db.runs.Store(&[]*run{})
	return db
}

// Session is a per-worker handle carrying the lock context; every worker
// (goroutine or simulated thread) must use its own.
type Session struct {
	db  *DB
	ctx lockapi.Ctx
}

// NewSession allocates a worker session. Only safe during single-threaded
// setup (lock contexts are registered with the lock).
func (db *DB) NewSession() *Session {
	return &Session{db: db, ctx: db.lock.NewCtx()}
}

// Put inserts or overwrites a key.
func (s *Session) Put(p lockapi.Proc, key, value []byte) {
	db := s.db
	db.lock.Acquire(p, s.ctx)
	db.puts.Add(1)
	mem := db.mem.Load()
	mem.putEntry(entry{
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
	})
	if mem.bytes >= db.opts.MemtableBytes {
		db.freezeLocked()
	}
	db.lock.Release(p, s.ctx)
}

// getMerged is the layer-merge read: memtable first, then runs
// newest-to-oldest, a tombstone in a newer layer shadowing older values.
// Allocation-free; safe under the lock and on the unlocked validated path.
func (db *DB) getMerged(key []byte) ([]byte, bool) {
	if e, found := db.mem.Load().get(key); found {
		return e.value, !e.tombstone
	}
	for _, r := range *db.runs.Load() {
		if e, found := r.get(key); found {
			return e.value, !e.tombstone
		}
	}
	return nil, false
}

// Get fetches a key under the DB lock.
func (s *Session) Get(p lockapi.Proc, key []byte) ([]byte, bool) {
	db := s.db
	db.lock.Acquire(p, s.ctx)
	db.gets.Add(1)
	v, ok := db.getMerged(key)
	db.lock.Release(p, s.ctx)
	return v, ok
}

// GetUnlocked fetches a key with no lock held — the optimistic fast path of
// the sharded store. The read is data-race-free but unserialized: the
// caller MUST bracket it in seqlock ReadSeq/ReadValidate and discard the
// result when validation fails, because a concurrent writer may have left a
// mixed layer state behind the returned value. Allocation-free.
func (db *DB) GetUnlocked(key []byte) ([]byte, bool) {
	db.gets.Add(1)
	return db.getMerged(key)
}

// Delete removes a key by writing a tombstone (LSM deletion): the key
// disappears from reads immediately and from storage at the next full
// compaction.
func (s *Session) Delete(p lockapi.Proc, key []byte) {
	db := s.db
	db.lock.Acquire(p, s.ctx)
	db.deletes.Add(1)
	mem := db.mem.Load()
	mem.putEntry(entry{key: append([]byte(nil), key...), tombstone: true})
	if mem.bytes >= db.opts.MemtableBytes {
		db.freezeLocked()
	}
	db.lock.Release(p, s.ctx)
}

// scanMerged visits every live key in [start, end) in key order, merged
// across the memtable and all runs (newest value wins, tombstones skip). fn
// returning false stops the scan. Shared by the locked and unlocked scan
// paths.
func (db *DB) scanMerged(start, end []byte, fn func(key, value []byte) bool) {
	// Sources newest-first: memtable, then runs.
	runs := *db.runs.Load()
	sources := make([][]entry, 0, len(runs)+1)
	sources = append(sources, db.mem.Load().entriesFrom(start))
	for _, r := range runs {
		i := sort.Search(len(r.entries), func(i int) bool {
			return bytes.Compare(r.entries[i].key, start) >= 0
		})
		sources = append(sources, r.entries[i:])
	}
	pos := make([]int, len(sources))
	for {
		// Pick the smallest next key; the newest source wins ties.
		best := -1
		for si := range sources {
			if pos[si] >= len(sources[si]) {
				continue
			}
			k := sources[si][pos[si]].key
			if end != nil && bytes.Compare(k, end) >= 0 {
				pos[si] = len(sources[si]) // past the range
				continue
			}
			if best == -1 || bytes.Compare(k, sources[best][pos[best]].key) < 0 {
				best = si
			}
		}
		if best == -1 {
			break
		}
		e := sources[best][pos[best]]
		// Consume this key from every source (older duplicates shadowed).
		for si := range sources {
			if pos[si] < len(sources[si]) && bytes.Equal(sources[si][pos[si]].key, e.key) {
				pos[si]++
			}
		}
		if e.tombstone {
			continue
		}
		if !fn(e.key, e.value) {
			break
		}
	}
}

// Scan visits every live key in [start, end) in key order under the DB
// lock; see scanMerged for the merge discipline.
func (s *Session) Scan(p lockapi.Proc, start, end []byte, fn func(key, value []byte) bool) {
	db := s.db
	db.lock.Acquire(p, s.ctx)
	db.scans.Add(1)
	db.scanMerged(start, end, fn)
	db.lock.Release(p, s.ctx)
}

// ScanUnlocked is the optimistic counterpart of Scan: same merge, no lock.
// Like GetUnlocked it requires seqlock validation — and because a failed
// validation arrives only after the scan completes, callers must buffer
// fn's observations and publish them only if validation succeeds (the
// sharded store's Scan does exactly that).
func (db *DB) ScanUnlocked(start, end []byte, fn func(key, value []byte) bool) {
	db.scans.Add(1)
	db.scanMerged(start, end, fn)
}

// freezeLocked turns the memtable into a run; caller holds the lock. The
// new run stack is published before the memtable pointer is reset, so an
// unlocked reader interleaving with the freeze finds every entry in at
// least one layer (possibly both — validation, not the freeze, is what
// makes its snapshot consistent).
func (db *DB) freezeLocked() {
	mem := db.mem.Load()
	if mem.n == 0 {
		return
	}
	newRuns := append([]*run{{entries: mem.entries()}}, *db.runs.Load()...)
	db.runs.Store(&newRuns)
	db.mem.Store(newSkiplist(db.opts.Seed + uint64(len(newRuns))))
	if len(newRuns) > db.opts.MaxRuns {
		db.compactLocked()
	}
}

// compactLocked merges all runs into one (newest value wins) and drops
// tombstones — a full compaction, so shadowed deletions are safe to forget.
func (db *DB) compactLocked() {
	db.compactions.Add(1)
	runs := *db.runs.Load()
	merged := make(map[string]entry)
	for i := len(runs) - 1; i >= 0; i-- { // oldest first; newer overwrite
		for _, e := range runs[i].entries {
			merged[string(e.key)] = e
		}
	}
	entries := make([]entry, 0, len(merged))
	for _, e := range merged {
		if e.tombstone {
			continue
		}
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		return bytes.Compare(entries[i].key, entries[j].key) < 0
	})
	db.runs.Store(&[]*run{{entries: entries}})
}

// Flush freezes the current memtable (for tests and bulk loads).
func (s *Session) Flush(p lockapi.Proc) {
	s.db.lock.Acquire(p, s.ctx)
	s.db.freezeLocked()
	s.db.lock.Release(p, s.ctx)
}

// Stats is a point-in-time snapshot of one DB's operation counters.
type Stats struct {
	// Gets / Puts / Deletes / Scans count completed operations.
	Gets, Puts, Deletes, Scans uint64
	// Compactions counts full-merge compactions.
	Compactions uint64
	// Runs is the number of immutable runs at snapshot time.
	Runs int
}

// Add accumulates other into s (aggregating per-shard snapshots).
func (s *Stats) Add(other Stats) {
	s.Gets += other.Gets
	s.Puts += other.Puts
	s.Deletes += other.Deletes
	s.Scans += other.Scans
	s.Compactions += other.Compactions
	s.Runs += other.Runs
}

// StatsSnapshot returns the DB's counters under the exclusive lock: the
// snapshot is a consistent cut even while other sessions are live, so phase
// drivers need no quiescence argument (this replaced the unlocked Stats
// readers and their lint waivers).
func (s *Session) StatsSnapshot(p lockapi.Proc) Stats {
	db := s.db
	db.lock.Acquire(p, s.ctx)
	st := Stats{
		Gets:        db.gets.Load(),
		Puts:        db.puts.Load(),
		Deletes:     db.deletes.Load(),
		Scans:       db.scans.Load(),
		Compactions: db.compactions.Load(),
		Runs:        len(*db.runs.Load()),
	}
	db.lock.Release(p, s.ctx)
	return st
}

// KeyWidth is the canonical benchmark key width (LevelDB db_bench's 16-digit
// zero-padded decimal key space).
const KeyWidth = 16

// Key formats the canonical fixed-width benchmark key, like LevelDB's
// db_bench key space. It performs exactly one allocation (the returned
// slice); use AppendKey to amortize even that away on hot paths.
func Key(i int) []byte {
	return AppendKey(make([]byte, 0, KeyWidth), i)
}

// AppendKey appends the canonical fixed-width key for i to dst and returns
// the extended slice. It is allocation-free when dst has capacity — this
// encoder runs on every operation of every KV workload, where
// fmt.Sprintf("%016d", i) dominated the profile. Negative i panics (the
// benchmark key space is non-negative).
func AppendKey(dst []byte, i int) []byte {
	if i < 0 {
		panic("kvstore: negative benchmark key")
	}
	if i >= 1e16 {
		// Wider than the fixed field: widen like %016d would.
		return strconv.AppendInt(dst, int64(i), 10)
	}
	var buf [KeyWidth]byte
	for b := KeyWidth - 1; b >= 0; b-- {
		buf[b] = byte('0' + i%10)
		i /= 10
	}
	return append(dst, buf[:]...)
}
