package kvstore

import (
	"sync"
	"time"

	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/xrand"
)

// ReadRandomOptions configures the native readrandom benchmark (LevelDB
// db_bench's workload of the same name: uniformly random point reads over a
// preloaded key space).
type ReadRandomOptions struct {
	// Keys is the preloaded key-space size (default 10_000).
	Keys int
	// Threads is the number of worker goroutines.
	Threads int
	// Duration bounds the run in wall-clock time.
	Duration time.Duration
	// Seed seeds per-worker key streams.
	Seed uint64
}

// ReadRandomResult reports the benchmark outcome.
type ReadRandomResult struct {
	// Ops is the number of completed reads.
	Ops uint64
	// PerThread are per-worker counts (fairness).
	PerThread []uint64
	// Misses counts reads of absent keys (should be 0 with preload).
	Misses uint64
	// Elapsed is the measured wall time.
	Elapsed time.Duration
}

// ThroughputOpsPerUs returns reads per microsecond of wall time.
func (r ReadRandomResult) ThroughputOpsPerUs() float64 {
	us := float64(r.Elapsed.Microseconds())
	if us == 0 {
		return 0
	}
	return float64(r.Ops) / us
}

// Preload fills the DB with o.Keys sequential keys (single-threaded).
func Preload(db *DB, keys int) {
	p := lockapi.NewNativeProc(0)
	s := db.NewSession()
	val := make([]byte, 100) // LevelDB db_bench default value size
	for i := 0; i < keys; i++ {
		s.Put(p, Key(i), val)
	}
	s.Flush(p)
}

// ReadRandom runs the native goroutine benchmark against db. The db must
// have been Opened with the lock under test and preloaded.
func ReadRandom(db *DB, o ReadRandomOptions) ReadRandomResult {
	if o.Keys == 0 {
		o.Keys = 10_000
	}
	if o.Threads == 0 {
		o.Threads = 1
	}
	if o.Duration == 0 {
		o.Duration = 100 * time.Millisecond
	}
	sessions := make([]*Session, o.Threads)
	for i := range sessions {
		sessions[i] = db.NewSession()
	}

	res := ReadRandomResult{PerThread: make([]uint64, o.Threads)}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var missMu sync.Mutex
	start := time.Now()
	for w := 0; w < o.Threads; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := lockapi.NewNativeProc(id)
			rng := xrand.New(o.Seed + uint64(id)*7919)
			var misses uint64
			for {
				select {
				case <-stop:
					if misses > 0 {
						missMu.Lock()
						res.Misses += misses
						missMu.Unlock()
					}
					return
				default:
				}
				if _, ok := sessions[id].Get(p, Key(rng.Intn(o.Keys))); !ok {
					misses++
				}
				res.PerThread[id]++
			}
		}(w)
	}
	time.Sleep(o.Duration)
	close(stop)
	wg.Wait()
	res.Elapsed = time.Since(start)
	for _, c := range res.PerThread {
		res.Ops += c
	}
	return res
}
