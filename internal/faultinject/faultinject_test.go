package faultinject

import (
	"reflect"
	"testing"
)

// drain pulls n decisions per CPU in round-robin order.
func drain(s *Schedule, cpus []int, n int) []Decision {
	var out []Decision
	for i := 0; i < n; i++ {
		for _, c := range cpus {
			out = append(out, s.Next(c))
		}
	}
	return out
}

func TestCompileDeterministic(t *testing.T) {
	cpus := []int{0, 16, 32, 48}
	for _, name := range Names() {
		a := Compile(MustByName(name), 42, cpus)
		b := Compile(MustByName(name), 42, cpus)
		da, db := drain(a, cpus, 500), drain(b, cpus, 500)
		if !reflect.DeepEqual(da, db) {
			t.Errorf("plan %q: same seed produced different schedules", name)
		}
	}
}

func TestCompileCPUOrderIrrelevant(t *testing.T) {
	fwd := []int{0, 16, 32, 48}
	rev := []int{48, 32, 16, 0}
	a := Compile(MustByName("mixed"), 7, fwd)
	b := Compile(MustByName("mixed"), 7, rev)
	// Per-CPU sequences must match regardless of Compile input order.
	for _, c := range fwd {
		for i := 0; i < 300; i++ {
			da, db := a.Next(c), b.Next(c)
			if da != db {
				t.Fatalf("cpu %d iter %d: %+v != %+v across permuted Compile", c, i, da, db)
			}
		}
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	cpus := []int{0, 1, 2, 3}
	a := drain(Compile(MustByName("mixed"), 1, cpus), cpus, 500)
	b := drain(Compile(MustByName("mixed"), 2, cpus), cpus, 500)
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced identical mixed schedules")
	}
}

func TestNonePlanInjectsNothing(t *testing.T) {
	cpus := []int{0, 1}
	s := Compile(MustByName("none"), 3, cpus)
	for _, d := range drain(s, cpus, 100) {
		if !d.Zero() {
			t.Fatalf("none plan produced a fault: %+v", d)
		}
	}
}

func TestVictimCountRespected(t *testing.T) {
	cpus := []int{0, 1, 2, 3, 4, 5, 6, 7}
	plan := &Plan{Name: "v2", Faults: []Fault{{Kind: Preempt, Every: 1, Duration: 100, Victims: 2}}}
	s := Compile(plan, 9, cpus)
	hit := map[int]bool{}
	for i := 0; i < 50; i++ {
		for _, c := range cpus {
			if s.Next(c).MidCS > 0 {
				hit[c] = true
			}
		}
	}
	if len(hit) != 2 {
		t.Fatalf("Victims=2 but %d CPUs were preempted: %v", len(hit), hit)
	}
}

func TestEveryControlsRate(t *testing.T) {
	cpus := []int{0}
	plan := &Plan{Name: "e10", Faults: []Fault{{Kind: Stall, Every: 10, Duration: 100}}}
	s := Compile(plan, 11, cpus)
	fires := 0
	const iters = 1000
	for i := 0; i < iters; i++ {
		if s.Next(0).PreStall > 0 {
			fires++
		}
	}
	if fires != iters/10 {
		t.Fatalf("Every=10 fired %d times in %d iterations, want %d", fires, iters, iters/10)
	}
}

func TestDurationSpreadBounded(t *testing.T) {
	cpus := []int{0}
	const dur = 1000
	plan := &Plan{Name: "d", Faults: []Fault{{Kind: Preempt, Every: 1, Duration: dur}}}
	s := Compile(plan, 13, cpus)
	for i := 0; i < 500; i++ {
		d := s.Next(0).MidCS
		if d < dur-dur/4 || d > dur+dur/4 {
			t.Fatalf("duration %d outside ±25%% of %d", d, dur)
		}
	}
}

func TestAbandonDecision(t *testing.T) {
	cpus := []int{0}
	plan := &Plan{Name: "a", Faults: []Fault{{Kind: Abandon, Every: 1, Attempts: 5}}}
	s := Compile(plan, 17, cpus)
	d := s.Next(0)
	if !d.Abandon || d.AbandonAttempts != 5 {
		t.Fatalf("abandon decision = %+v, want Abandon with 5 attempts", d)
	}
}

func TestUnknownCPUIsZero(t *testing.T) {
	s := Compile(MustByName("mixed"), 19, []int{0, 1})
	if d := s.Next(99); !d.Zero() {
		t.Fatalf("unknown CPU got a fault: %+v", d)
	}
}

func TestPresetNamesResolve(t *testing.T) {
	names := Names()
	if len(names) < 5 {
		t.Fatalf("expected >= 5 presets, got %v", names)
	}
	for _, n := range names {
		if _, ok := ByName(n); !ok {
			t.Errorf("preset %q in Names() but not resolvable", n)
		}
	}
	if _, ok := ByName("no-such-plan"); ok {
		t.Error("bogus name resolved")
	}
}
