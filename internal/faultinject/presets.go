package faultinject

import (
	"fmt"
	"sort"
)

// Preset plans for cmd/clof-chaos. Durations are virtual nanoseconds, sized
// against the paper-default LevelDB workload (CS ≈ 300ns, NCS ≈ 2400ns): a
// preemption of 60µs ≈ 200 critical sections, which is the order of a
// scheduling quantum relative to a spinlock hold time.
var presets = map[string]func() *Plan{
	// none is the control: every lock must behave identically to an
	// unfaulted run (the zero Decision injects nothing).
	"none": func() *Plan {
		return &Plan{Name: "none"}
	},
	// holder-preempt deschedules two lock holders mid-critical-section
	// every ~50 acquisitions: Dice & Kogan's pathological case for queue
	// locks, where the whole queue convoys behind the preempted owner.
	"holder-preempt": func() *Plan {
		return &Plan{Name: "holder-preempt", Faults: []Fault{
			{Kind: Preempt, Every: 50, Duration: 60_000, Victims: 2},
		}}
	},
	// cpu-stall freezes a quarter of the CPUs outside the lock every ~20
	// iterations: throughput should degrade proportionally, not collapse.
	"cpu-stall": func() *Plan {
		return &Plan{Name: "cpu-stall", Faults: []Fault{
			{Kind: Stall, Every: 20, Duration: 30_000, Victims: 0},
		}}
	},
	// cs-jitter inflates every fourth critical section by up to 3µs (10×
	// the nominal CS): models interrupts and cache misses under the lock.
	"cs-jitter": func() *Plan {
		return &Plan{Name: "cs-jitter", Faults: []Fault{
			{Kind: Jitter, Every: 4, Duration: 3_000, Victims: 0},
		}}
	},
	// abandon turns a third of the CPUs into trylock callers that give up
	// after 3 attempts: exercises the no-residual-state contract of
	// TryAcquire under contention.
	"abandon": func() *Plan {
		return &Plan{Name: "abandon", Faults: []Fault{
			{Kind: Abandon, Every: 3, Attempts: 3, Victims: 0},
		}}
	},
	// oversubscribed models threads ≫ cores: with more runnable threads
	// than physical cores every CPU periodically loses its timeslice, and
	// losing it *inside* the critical section is what collapses unrestricted
	// locks (Dice & Kogan). Every CPU is a victim, preempted mid-CS for a
	// scheduling quantum (~60µs ≈ 200 LevelDB critical sections) about once
	// per 40 acquisitions — pair with topo.OversubscribedServer in the
	// figures "collapse" experiment.
	"oversubscribed": func() *Plan {
		return &Plan{Name: "oversubscribed", Faults: []Fault{
			{Kind: Preempt, Every: 40, Duration: 60_000, Victims: 0},
		}}
	},
	// mixed is all of the above at once — the "as many scenarios as you
	// can imagine" stress.
	"mixed": func() *Plan {
		return &Plan{Name: "mixed", Faults: []Fault{
			{Kind: Preempt, Every: 80, Duration: 60_000, Victims: 2},
			{Kind: Stall, Every: 40, Duration: 30_000, Victims: 4},
			{Kind: Jitter, Every: 8, Duration: 3_000, Victims: 0},
			{Kind: Abandon, Every: 6, Attempts: 3, Victims: 2},
		}}
	},
}

// ByName returns a fresh copy of the named preset plan.
func ByName(name string) (*Plan, bool) {
	f, ok := presets[name]
	if !ok {
		return nil, false
	}
	return f(), true
}

// MustByName is ByName that panics on unknown names.
func MustByName(name string) *Plan {
	p, ok := ByName(name)
	if !ok {
		panic(fmt.Sprintf("faultinject: unknown plan %q", name))
	}
	return p
}

// Names lists the preset plans in sorted order.
func Names() []string {
	out := make([]string, 0, len(presets))
	for n := range presets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
