// Package faultinject defines the fault plans of the robustness harness:
// declarative descriptions of the adversity a lock workload runs under —
// lock-holder preemption, per-CPU stalls, critical-section jitter, and
// abandoned (bounded) acquires — plus the deterministic, seeded schedule
// that realizes a plan for a concrete set of CPUs.
//
// The package is backend-agnostic: it draws no time and performs no waiting
// itself. A Schedule answers, per worker iteration, "what misfortune happens
// now" (a Decision); the workload driver (internal/workload for memsim,
// internal/locktest for the native backend) is what turns a Decision into
// simulator preemptions or real sleeps. cmd/clof-chaos sweeps plans across
// the lock catalog.
//
// # Determinism
//
// Compile derives every random choice from (plan, seed, cpus) through
// per-CPU SplitMix64 streams (internal/xrand), keyed by the CPU's *rank* in
// the Compile call rather than global state. Two Schedules compiled with the
// same inputs therefore produce identical Decision sequences, regardless of
// what any other schedule or simulator consumed — the property the chaos
// CLI's byte-identical-CSV contract rests on.
package faultinject

import (
	"fmt"
	"sort"
	"strings"

	"github.com/clof-go/clof/internal/xrand"
)

// Kind enumerates the fault classes.
type Kind int

const (
	// Preempt suspends the victim CPU *inside* the critical section
	// (lock-holder preemption): every waiter is stuck behind a descheduled
	// owner for Duration.
	Preempt Kind = iota
	// Stall suspends the victim CPU outside the critical section for
	// Duration (a descheduled or throttled core that holds no lock).
	Stall
	// Jitter inflates the victim's critical-section length by a random
	// amount in [0, Duration] (cache misses, interrupts taken while
	// holding the lock).
	Jitter
	// Abandon converts the victim's acquisition into a bounded TryAcquire
	// loop of Attempts tries; on failure the iteration is abandoned
	// (trylock callers that give up — the paper's locks must tolerate
	// waiters that vanish).
	Abandon
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Preempt:
		return "preempt"
	case Stall:
		return "stall"
	case Jitter:
		return "jitter"
	default:
		return "abandon"
	}
}

// Fault is one fault source within a plan.
type Fault struct {
	Kind Kind
	// Every triggers the fault once per Every iterations of a victim CPU
	// (jittered by the schedule's stream so victims do not stay in
	// lock-step). Every <= 0 means every iteration.
	Every int
	// Duration is the fault length in virtual nanoseconds (Preempt, Stall)
	// or the jitter bound (Jitter). Ignored by Abandon.
	Duration int64
	// Victims bounds how many CPUs the fault targets (chosen by seeded
	// shuffle of the compiled CPU set). 0 means all CPUs.
	Victims int
	// Attempts is the bounded-acquire budget for Abandon (default 3).
	Attempts int
}

// Plan is a named set of fault sources applied together.
type Plan struct {
	Name   string
	Faults []Fault
}

// String renders a compact description, e.g.
// "holder-preempt{preempt/50:60000ns/2cpus}".
func (pl *Plan) String() string {
	parts := make([]string, len(pl.Faults))
	for i, f := range pl.Faults {
		parts[i] = fmt.Sprintf("%s/%d:%dns/%dcpus", f.Kind, f.Every, f.Duration, f.Victims)
	}
	return pl.Name + "{" + strings.Join(parts, ",") + "}"
}

// Decision is what a Schedule injects into one worker iteration. The zero
// value means "no fault", so drivers may consult a nil-safe zero Decision on
// the unfaulted path without branching on plan presence.
type Decision struct {
	// PreStall suspends the CPU for this many virtual ns before it attempts
	// the lock (Kind Stall).
	PreStall int64
	// MidCS suspends the CPU for this many virtual ns while it holds the
	// lock (Kind Preempt — lock-holder preemption).
	MidCS int64
	// CSJitter lengthens the critical section by this many virtual ns
	// (Kind Jitter).
	CSJitter int64
	// Abandon asks the driver to use a bounded TryAcquire of
	// AbandonAttempts tries and to skip the iteration when it fails.
	Abandon         bool
	AbandonAttempts int
}

// Zero reports whether the decision injects nothing.
func (d Decision) Zero() bool {
	return d == Decision{}
}

// compiled is one fault source bound to its victims and stream.
type compiled struct {
	fault   Fault
	victim  map[int]bool
	nextAt  map[int]int64 // iteration (per CPU) at which the fault next fires
	periods map[int]*xrand.Rand
}

// Schedule realizes a Plan for a concrete CPU set. Not safe for concurrent
// use: drivers must either consult it from one goroutine (memsim, whose
// workers interleave deterministically on one OS thread) or pre-draw
// per-worker sequences (native chaos runs).
type Schedule struct {
	plan    *Plan
	sources []*compiled
	iter    map[int]int64
}

// Compile binds plan to the given CPUs with all randomness derived from
// seed. The cpus slice is not retained; its order does not matter (victim
// choice keys off a sorted copy, so permuted inputs compile identically).
func Compile(plan *Plan, seed uint64, cpus []int) *Schedule {
	sorted := append([]int(nil), cpus...)
	sort.Ints(sorted)
	root := xrand.New(seed ^ 0xFA017)
	s := &Schedule{plan: plan, iter: make(map[int]int64, len(sorted))}
	for _, c := range sorted {
		s.iter[c] = 0
	}
	for _, f := range plan.Faults {
		src := &compiled{
			fault:   f,
			victim:  make(map[int]bool, len(sorted)),
			nextAt:  make(map[int]int64, len(sorted)),
			periods: make(map[int]*xrand.Rand, len(sorted)),
		}
		// Victim selection: seeded Fisher–Yates over the sorted CPUs.
		stream := root.Split()
		perm := append([]int(nil), sorted...)
		for i := len(perm) - 1; i > 0; i-- {
			j := stream.Intn(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		n := f.Victims
		if n <= 0 || n > len(perm) {
			n = len(perm)
		}
		for _, c := range perm[:n] {
			src.victim[c] = true
		}
		for _, c := range sorted {
			r := stream.Split()
			src.periods[c] = r
			src.nextAt[c] = src.firstAt(c, r)
		}
		s.sources = append(s.sources, src)
	}
	return s
}

// period returns the fault's effective trigger period.
func (c *compiled) period() int64 {
	if c.fault.Every <= 0 {
		return 1
	}
	return int64(c.fault.Every)
}

// firstAt draws the first trigger iteration for cpu: uniform in [0, period)
// so victims with equal periods do not fire in phase.
func (c *compiled) firstAt(cpu int, r *xrand.Rand) int64 {
	p := c.period()
	if p == 1 {
		return 0
	}
	return r.Int63n(p)
}

// Next returns the Decision for cpu's next iteration and advances the
// schedule. Unknown CPUs (not in the Compile set) get the zero Decision.
func (s *Schedule) Next(cpu int) Decision {
	it, known := s.iter[cpu]
	if !known {
		return Decision{}
	}
	s.iter[cpu] = it + 1
	var d Decision
	for _, src := range s.sources {
		if !src.victim[cpu] || it < src.nextAt[cpu] {
			continue
		}
		r := src.periods[cpu]
		src.nextAt[cpu] = it + src.period()
		switch src.fault.Kind {
		case Preempt:
			d.MidCS += durationOf(src.fault, r)
		case Stall:
			d.PreStall += durationOf(src.fault, r)
		case Jitter:
			if src.fault.Duration > 0 {
				d.CSJitter += r.Int63n(src.fault.Duration + 1)
			}
		case Abandon:
			d.Abandon = true
			a := src.fault.Attempts
			if a <= 0 {
				a = 3
			}
			if a > d.AbandonAttempts {
				d.AbandonAttempts = a
			}
		}
	}
	return d
}

// durationOf draws a fault duration: fixed Duration, ±25% spread from the
// per-CPU stream so repeated hits differ.
func durationOf(f Fault, r *xrand.Rand) int64 {
	if f.Duration <= 0 {
		return 0
	}
	spread := f.Duration / 4
	if spread == 0 {
		return f.Duration
	}
	return f.Duration - spread + r.Int63n(2*spread+1)
}

// Plan returns the plan this schedule was compiled from.
func (s *Schedule) Plan() *Plan { return s.plan }
