package lockapi

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestOrderString(t *testing.T) {
	want := map[Order]string{
		Relaxed: "rlx", Acquire: "acq", Release: "rel",
		AcqRel: "acq_rel", SeqCst: "seq_cst",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("Order(%d).String() = %q, want %q", o, o.String(), s)
		}
	}
	if Order(99).String() != "order(?)" {
		t.Errorf("invalid order string = %q", Order(99).String())
	}
}

func TestNativeProcBasicOps(t *testing.T) {
	p := NewNativeProc(7)
	if p.ID() != 7 {
		t.Fatalf("ID() = %d, want 7", p.ID())
	}
	var c Cell
	c.Init(10)
	if got := p.Load(&c, Acquire); got != 10 {
		t.Errorf("Load = %d, want 10", got)
	}
	p.Store(&c, 20, Release)
	if got := p.Load(&c, Relaxed); got != 20 {
		t.Errorf("Load after Store = %d, want 20", got)
	}
	if !p.CAS(&c, 20, 30, AcqRel) {
		t.Error("CAS(20->30) failed")
	}
	if p.CAS(&c, 20, 40, AcqRel) {
		t.Error("CAS with stale expected value succeeded")
	}
	if got := p.Add(&c, 5, AcqRel); got != 35 {
		t.Errorf("Add returned %d, want new value 35", got)
	}
	if got := p.Swap(&c, 100, AcqRel); got != 35 {
		t.Errorf("Swap returned %d, want old value 35", got)
	}
	if got := p.Load(&c, SeqCst); got != 100 {
		t.Errorf("final value = %d, want 100", got)
	}
	p.Fence(SeqCst) // must not panic
}

func TestNativeProcSpinYields(t *testing.T) {
	// Spin must not block forever and must be callable many times.
	p := NewNativeProc(0)
	for i := 0; i < 1000; i++ {
		p.Spin()
	}
}

// TestNativeAddConcurrent checks that Add through the Proc interface is
// linearizable the way a counter expects.
func TestNativeAddConcurrent(t *testing.T) {
	var c Cell
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := NewNativeProc(id)
			for i := 0; i < per; i++ {
				p.Add(&c, 1, AcqRel)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Raw().Load(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
}

// TestCellArithmetic property: Add acts as modular uint64 addition.
func TestCellArithmetic(t *testing.T) {
	p := NewNativeProc(0)
	f := func(init, delta uint64) bool {
		var c Cell
		c.Init(init)
		return p.Add(&c, delta, Relaxed) == init+delta
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

type fairLock struct{ fair bool }

func (f fairLock) NewCtx() Ctx           { return nil }
func (f fairLock) Acquire(p Proc, c Ctx) {}
func (f fairLock) Release(p Proc, c Ctx) {}
func (f fairLock) Fair() bool            { return f.fair }

type plainLock struct{}

func (plainLock) NewCtx() Ctx           { return nil }
func (plainLock) Acquire(p Proc, c Ctx) {}
func (plainLock) Release(p Proc, c Ctx) {}

func TestFairHelper(t *testing.T) {
	if !Fair(fairLock{fair: true}) {
		t.Error("Fair() = false for a fair lock")
	}
	if Fair(fairLock{fair: false}) {
		t.Error("Fair() = true for an unfair lock")
	}
	if Fair(plainLock{}) {
		t.Error("Fair() = true for a lock without FairnessInfo")
	}
}

func TestColocate(t *testing.T) {
	var a, b, c, d Cell
	if a.LineKey() != &a {
		t.Error("uncolocated cell must key on itself")
	}
	Colocate(&a, &b)
	if a.LineKey() != b.LineKey() {
		t.Error("colocated cells must share a line key")
	}
	if a.LineKey() == &a {
		t.Error("colocated cell must not key on itself")
	}
	// Joining an existing group keeps one shared tag.
	Colocate(&a, &c)
	if c.LineKey() != b.LineKey() {
		t.Error("joining a group must adopt its tag")
	}
	if d.LineKey() == a.LineKey() {
		t.Error("independent cell joined a group")
	}
	Colocate() // no-op, must not panic
}
