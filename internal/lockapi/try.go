package lockapi

// This file extends the lock interface with the *bounded acquire* surface
// used by the fault-injection substrate (internal/faultinject and
// cmd/clof-chaos): a non-blocking TryAcquire capability, a runtime
// capability flag for locks that support it only conditionally (or decline
// it outright), and the shared bounded exponential-backoff helper that both
// the backoff-family locks and bounded acquisition loops build on.

import "github.com/clof-go/clof/internal/xrand"

// TryLocker is implemented by locks that support a non-blocking acquire.
//
// TryAcquire performs a bounded number of memory operations and never calls
// Proc.Spin. On success the caller holds the lock exactly as after Acquire
// and must release it with Release using the same Ctx. On failure the lock's
// shared state is semantically unchanged: in particular no queue node
// remains published, so the failed caller may walk away (an "abandoned
// acquire") without ever touching the lock again — the property the chaos
// harness relies on.
//
// Locks whose support is conditional (CLoF compositions: every component
// lock must itself support trylock) additionally implement TryInfo; callers
// must consult SupportsTry rather than type-asserting TryLocker directly.
type TryLocker interface {
	TryAcquire(p Proc, c Ctx) bool
}

// TryInfo reports at runtime whether TryAcquire is usable on this instance.
// Two uses: compositions whose capability depends on their components, and
// locks that cannot support trylock at all (HMCS, whose tree acquisition
// cannot be rolled back without waiting) and implement TryInfo alone as an
// explicit declination flag.
type TryInfo interface {
	TrySupported() bool
}

// SupportsTry reports whether l supports non-blocking acquisition: the
// TryInfo answer when the lock provides one, the presence of TryLocker
// otherwise.
func SupportsTry(l Lock) bool {
	if ti, ok := l.(TryInfo); ok {
		return ti.TrySupported()
	}
	_, ok := l.(TryLocker)
	return ok
}

// TryAcquire attempts a non-blocking acquisition of l and reports
// (supported, acquired). supported=false means the lock declines the
// capability and its state was not touched.
func TryAcquire(l Lock, p Proc, c Ctx) (supported, acquired bool) {
	if !SupportsTry(l) {
		return false, false
	}
	return true, l.(TryLocker).TryAcquire(p, c)
}

// DefaultBackoffCap is the spin cap an ExpBackoff with Cap==0 uses; it
// matches the historical cap of the BO lock.
const DefaultBackoffCap = 64

// ExpBackoff is the shared bounded exponential-backoff helper: each Pause
// spins (Proc.Spin) for a doubling number of iterations, never exceeding
// Cap per pause. The zero value starts at one spin and caps at
// DefaultBackoffCap. Callers may retarget Base/Cap between pauses (HBO does,
// by owner distance); the doubling progress is kept across such changes.
//
// A non-zero Seed enables deterministic jitter: each pause draws its spin
// count uniformly from the upper half of the doubling schedule's current
// value instead of using it exactly. Without jitter, waiters that entered a
// backoff loop together pause for identical counts and re-collide on the
// lock word in lock-step convoys (the failure mode the CR combinator's
// recirculation must avoid); with it, equal seeds still reproduce equal
// spin sequences, preserving the simulator's determinism contract.
//
// ExpBackoff is per-thread state and must not be shared.
type ExpBackoff struct {
	// Base is the first pause's spin count (minimum 1).
	Base int
	// Cap bounds the spins of a single pause (0 = DefaultBackoffCap).
	Cap int
	// Seed, when non-zero, turns on seeded jitter: pause i spins a
	// deterministic pseudo-random count in [ceil(n/2), n] where n is the
	// un-jittered count pause i would have used. Zero keeps the exact
	// doubling schedule.
	Seed uint64
	cur  int
	rng  *xrand.Rand
}

// Pause backs off once: Spin between Base and Cap times, then double the
// next pause. It returns the number of spins issued (tests assert the
// bound).
func (b *ExpBackoff) Pause(p Proc) int {
	base, lim := b.Base, b.Cap
	if base < 1 {
		base = 1
	}
	if lim <= 0 {
		lim = DefaultBackoffCap
	}
	if b.cur < base {
		b.cur = base
	}
	n := b.cur
	if n > lim {
		n = lim
	}
	// Grow from the issued (clamped) count so a Cap reduction takes effect
	// immediately and growth can never run away past 2*Cap. Jitter does not
	// feed back into the schedule: the doubling envelope stays identical
	// with and without it.
	b.cur = n * 2
	if b.Seed != 0 {
		if b.rng == nil {
			b.rng = xrand.New(b.Seed)
		}
		lo := (n + 1) / 2
		n = lo + b.rng.Intn(n-lo+1)
	}
	for i := 0; i < n; i++ {
		p.Spin()
	}
	return n
}

// Reset restarts the backoff sequence at Base. The jitter stream is not
// rewound: two waiters resetting at the same point still diverge afterwards,
// which is the point of jitter.
func (b *ExpBackoff) Reset() { b.cur = 0 }

// AcquireBounded attempts to acquire l at most `attempts` times with
// exponential backoff between failed attempts. It reports (supported,
// acquired); supported=false means the lock declines TryAcquire and nothing
// was attempted. bo may be nil, in which case a default ExpBackoff is used.
//
// On backends that fast-forward spin waits (memsim, mcheck) a backoff pause
// may sleep until the lock's state next changes, so `attempts` bounds the
// number of lock-state changes observed, not wall time.
func AcquireBounded(l Lock, p Proc, c Ctx, attempts int, bo *ExpBackoff) (supported, acquired bool) {
	if !SupportsTry(l) {
		return false, false
	}
	tl := l.(TryLocker)
	if bo == nil {
		bo = &ExpBackoff{}
	}
	for i := 0; i < attempts; i++ {
		if tl.TryAcquire(p, c) {
			return true, true
		}
		if i < attempts-1 {
			bo.Pause(p)
		}
	}
	return true, false
}
