package lockapi

// This file defines the optimistic-read (seqlock) capability surface used by
// the sharded store's OCC fast path (internal/store, DESIGN.md S33). A
// SeqReader exposes a version word that writers advance around their critical
// sections: odd while a writer is inside, even otherwise, +2 per completed
// write. Readers never touch the lock — they sample the version, read the
// protected data with plain loads, and validate that the version is unchanged
// and even; a failed validation means the data may be torn and must be
// discarded.
//
// The fence discipline is the load-bearing part, and it is what
// internal/mcheck's SeqlockProgram verifies under WMM (including a seeded
// fenceless variant that the checker must catch):
//
//   - ReadSeq loads the version with Acquire order, so the data reads that
//     follow cannot observe values older than the sampled version.
//   - ReadValidate issues an Acquire fence *before* re-reading the version,
//     so the data reads that precede it cannot be satisfied after the
//     re-read. Without that fence a stale version re-read can certify a torn
//     data read — the exact bug the seeded mcheck variant plants.
//   - Writers bump the version with an AcqRel RMW before their first data
//     write and a Release RMW after their last, so the odd window brackets
//     every store.
//
// Consumers (internal/store's Get/Scan, internal/workload's occRead) must
// treat any value read between ReadSeq and a failed ReadValidate as garbage:
// it may be torn, and it must not escape. clof-lint's occdiscipline analyzer
// enforces that statically.

// SeqReader is implemented by locks that publish a writer version word for
// optimistic (validated) reads — in this repo, every lock built by
// seqlock.Wrap (the catalog's `seq:` family). The protocol for a reader is:
//
//	s := l.ReadSeq(p)          // waits out in-flight writers
//	... plain (Relaxed) data reads ...
//	if l.ReadValidate(p, s) {  // acquire fence + version re-check
//	    // the data reads form a consistent snapshot
//	} else {
//	    // torn: discard everything and retry (or fall back to Acquire)
//	}
//
// Shared (RWLocker) acquisitions do not advance the version: they exclude
// writers, so optimistic readers may overlap them freely.
type SeqReader interface {
	// ReadSeq returns an even version sample, spinning past any in-flight
	// writer (odd version). The load carries Acquire order.
	ReadSeq(p Proc) uint64
	// ReadValidate reports whether the version still equals s, i.e. no
	// writer entered since ReadSeq returned s. It issues an Acquire fence
	// before the re-read so preceding data loads cannot sink past it.
	ReadValidate(p Proc, s uint64) bool
}
