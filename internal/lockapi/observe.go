package lockapi

// This file is the lock-protocol annotation surface of the observability
// layer (internal/obs, DESIGN.md S29): locks report their acquire-start /
// acquired / released edges to an optional Observer, so consumers can
// reconstruct acquisition latency, handover distance, and fairness without
// guessing from the raw memory-operation stream.
//
// The off path is free by design: an uninstrumented lock carries one nil
// pointer and every edge helper is a single predictable branch — no
// allocation, no Proc operation, no virtual-time charge on any backend
// (memsim's TestNoTraceZeroAllocs covers the guarantee with instrumentation
// compiled in but disabled).

// Observer receives lock-protocol edges from an instrumented lock. All three
// callbacks run on the acquiring/releasing thread, after the corresponding
// protocol step logically happened; they must not touch the lock and must
// not call Proc memory operations (they would perturb the measured run).
//
// Backends that expose virtual time do so via an optional
// `interface{ Time() int64 }` on their Proc (memsim.Proc does); observers
// that need timestamps assert for it and fall back gracefully.
type Observer interface {
	// AcquireStart marks the entry into Acquire, before any protocol step.
	AcquireStart(p Proc)
	// Acquired marks the instant the lock is held by the caller.
	Acquired(p Proc)
	// Released marks the completion of Release.
	Released(p Proc)
}

// Instrumented is implemented by locks with native annotation hooks on
// their grant paths. Instrument must only be called during single-threaded
// setup (like NewCtx); passing nil detaches the observer.
type Instrumented interface {
	Instrument(o Observer)
}

// Probe is the embeddable half of Instrumented: a lock embeds a Probe and
// calls the emit helpers on its grant paths. The zero value is detached and
// the helpers then cost one nil check — the zero-overhead-when-off
// guarantee of the observability layer.
type Probe struct {
	obs Observer
}

// Instrument implements Instrumented for the embedding lock.
func (pr *Probe) Instrument(o Observer) { pr.obs = o }

// Observed reports whether an observer is attached; grant paths with
// multi-step edge bookkeeping may use it to skip work wholesale.
func (pr *Probe) Observed() bool { return pr.obs != nil }

// EmitAcquireStart reports the acquire-start edge, if observed.
func (pr *Probe) EmitAcquireStart(p Proc) {
	if pr.obs != nil {
		pr.obs.AcquireStart(p)
	}
}

// EmitAcquired reports the acquired edge, if observed.
func (pr *Probe) EmitAcquired(p Proc) {
	if pr.obs != nil {
		pr.obs.Acquired(p)
	}
}

// EmitReleased reports the released edge, if observed.
func (pr *Probe) EmitReleased(p Proc) {
	if pr.obs != nil {
		pr.obs.Released(p)
	}
}

// Instrument attaches o to l and returns the lock to use. Locks with native
// hooks (Instrumented) are annotated in place and returned unchanged; any
// other lock is wrapped generically, with edges derived from the Acquire /
// Release call boundaries — equivalent for the top-level lock of a run,
// since Acquire returns exactly when the lock is held. Only safe during
// single-threaded setup. A nil observer returns l untouched.
func Instrument(l Lock, o Observer) Lock {
	if o == nil {
		return l
	}
	if in, ok := l.(Instrumented); ok {
		in.Instrument(o)
		return l
	}
	return &observedLock{inner: l, obs: o}
}

// observedLock is the generic wrapper Instrument applies to locks without
// native hooks. It forwards the optional capability interfaces the sweep
// harnesses consult (TryLocker, TryInfo, WaiterDetector, FairnessInfo), so
// wrapping never changes which code paths a workload takes.
type observedLock struct {
	inner Lock
	obs   Observer
}

// NewCtx implements Lock.
func (w *observedLock) NewCtx() Ctx { return w.inner.NewCtx() }

// Acquire implements Lock, bracketing the inner acquire with edges.
func (w *observedLock) Acquire(p Proc, c Ctx) {
	w.obs.AcquireStart(p)
	w.inner.Acquire(p, c)
	w.obs.Acquired(p)
}

// Release implements Lock, reporting the released edge after the inner
// release completes.
func (w *observedLock) Release(p Proc, c Ctx) {
	w.inner.Release(p, c)
	w.obs.Released(p)
}

// TryAcquire implements TryLocker by delegation. A successful try reports
// both acquire edges at the success instant (a trylock never waits); a
// failed try reports nothing, keeping acquired and released edge counts
// balanced. Callers must consult SupportsTry first, as for any conditional
// TryLocker.
func (w *observedLock) TryAcquire(p Proc, c Ctx) bool {
	tl, ok := w.inner.(TryLocker)
	if !ok || !tl.TryAcquire(p, c) {
		return false
	}
	w.obs.AcquireStart(p)
	w.obs.Acquired(p)
	return true
}

// TrySupported implements TryInfo: the wrapper supports trylock exactly
// when the wrapped lock does.
func (w *observedLock) TrySupported() bool { return SupportsTry(w.inner) }

// HasWaiters implements WaiterDetector by delegation; it must only be
// called when DetectsWaiters answers true (as for TryAcquire, capability
// consumers check first).
func (w *observedLock) HasWaiters(p Proc, c Ctx) bool {
	return w.inner.(WaiterDetector).HasWaiters(p, c)
}

// WaitersDetectable implements WaiterInfo: detection is usable exactly when
// the wrapped lock's is.
func (w *observedLock) WaitersDetectable() bool { return DetectsWaiters(w.inner) }

// Fair implements FairnessInfo by delegation.
func (w *observedLock) Fair() bool { return Fair(w.inner) }

var (
	_ Lock     = (*observedLock)(nil)
	_ TryInfo  = (*observedLock)(nil)
	_ Observer = (observerFuncs{})
)

// observerFuncs adapts three funcs to Observer; tests and small tools use
// ObserverFromFuncs instead of declaring a type.
type observerFuncs struct {
	start, acq, rel func(p Proc)
}

// AcquireStart implements Observer.
func (o observerFuncs) AcquireStart(p Proc) {
	if o.start != nil {
		o.start(p)
	}
}

// Acquired implements Observer.
func (o observerFuncs) Acquired(p Proc) {
	if o.acq != nil {
		o.acq(p)
	}
}

// Released implements Observer.
func (o observerFuncs) Released(p Proc) {
	if o.rel != nil {
		o.rel(p)
	}
}

// ObserverFromFuncs builds an Observer from up-to-three callbacks (nil
// callbacks are skipped).
func ObserverFromFuncs(start, acquired, released func(p Proc)) Observer {
	return observerFuncs{start: start, acq: acquired, rel: released}
}
